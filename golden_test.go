package smallbuffers_test

// Golden equivalence suite: every protocol runs fixed scenarios through the
// engine and the full execution — each round's applied moves and the
// post-round occupancy vector — is folded into an FNV-1a digest. The digests
// in testdata/golden_b1.json were captured from the engine *before* links
// became capacitated; the test replays the same scenarios at the default
// bandwidth B = 1 and requires bit-identical digests, proving that the
// generalized engine and protocols recover the paper's unit-capacity
// semantics round for round.
//
// Regenerate with: GOLDEN_UPDATE=1 go test -run TestGoldenB1 .

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	sb "smallbuffers"
)

// execDigest observes a run and folds every move and every post-round load
// vector into one 64-bit digest.
type execDigest struct {
	sb.NopObserver
	h interface {
		Write([]byte) (int, error)
		Sum64() uint64
	}
}

func newExecDigest() *execDigest { return &execDigest{h: fnv.New64a()} }

func (d *execDigest) OnForward(round int, moves []sb.Move) {
	for _, m := range moves {
		fmt.Fprintf(d.h, "F|%d|%d|%d|%d|%t|", round, m.Pkt.ID, m.From, m.To, m.Delivered)
	}
}

func (d *execDigest) OnRoundEnd(round int, v sb.View) {
	n := v.Net().Len()
	fmt.Fprintf(d.h, "R|%d|", round)
	for i := 0; i < n; i++ {
		fmt.Fprintf(d.h, "%d,", v.Load(sb.NodeID(i)))
	}
}

// goldenRecord is one scenario's captured outcome.
type goldenRecord struct {
	Digest    uint64 `json:"digest"`
	MaxLoad   int    `json:"max_load"`
	Injected  int    `json:"injected"`
	Delivered int    `json:"delivered"`
	MaxLat    int    `json:"max_latency"`
	TotalLat  int    `json:"total_latency"`
}

// scenario is one golden cell: a topology, protocol, and adversary factory.
type scenario struct {
	name   string
	rounds int
	build  func() (*sb.Network, sb.Protocol, sb.Adversary, error)
}

func pathScenario(name string, rounds int, proto func() sb.Protocol, adv func(nw *sb.Network) (sb.Adversary, error)) scenario {
	return scenario{name: name, rounds: rounds, build: func() (*sb.Network, sb.Protocol, sb.Adversary, error) {
		nw, err := sb.NewPath(48)
		if err != nil {
			return nil, nil, nil, err
		}
		a, err := adv(nw)
		if err != nil {
			return nil, nil, nil, err
		}
		return nw, proto(), a, nil
	}}
}

func goldenScenarios() []scenario {
	sinkDest := func(nw *sb.Network) (sb.Adversary, error) {
		return sb.NewRandomAdversary(nw, sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 2}, nil, 7)
	}
	multiDest := func(nw *sb.Network) (sb.Adversary, error) {
		n := nw.Len()
		dests := []sb.NodeID{sb.NodeID(n / 3), sb.NodeID(n / 2), sb.NodeID(n - 2), sb.NodeID(n - 1)}
		return sb.NewRandomAdversary(nw, sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 2}, dests, 11)
	}
	halfRate := func(nw *sb.Network) (sb.Adversary, error) {
		return sb.NewRandomAdversary(nw, sb.Bound{Rho: sb.NewRat(1, 2), Sigma: 1}, nil, 13)
	}

	scenarios := []scenario{
		pathScenario("pts/path48/random-sink", 400, func() sb.Protocol { return sb.NewPTS() }, sinkDest),
		pathScenario("pts-drain/path48/random-sink", 400, func() sb.Protocol { return sb.NewPTS(sb.PTSWithDrain()) }, sinkDest),
		pathScenario("ppts/path48/random-multi", 400, func() sb.Protocol { return sb.NewPPTS() }, multiDest),
		pathScenario("ppts-drain/path48/random-multi", 400, func() sb.Protocol { return sb.NewPPTS(sb.PPTSWithDrain()) }, multiDest),
		pathScenario("downhill/path48/random-sink", 400, func() sb.Protocol { return sb.NewDownhill() }, sinkDest),
		pathScenario("oddeven/path48/random-half", 400, func() sb.Protocol { return sb.NewOddEvenDownhill() }, halfRate),
	}
	greedy := []struct {
		tag    string
		policy sb.GreedyPolicy
	}{
		{"fifo", sb.FIFO}, {"lifo", sb.LIFO}, {"lis", sb.LIS},
		{"sis", sb.SIS}, {"ntg", sb.NTG}, {"ftg", sb.FTG},
	}
	for _, g := range greedy {
		policy := g.policy
		scenarios = append(scenarios, pathScenario(
			"greedy-"+g.tag+"/path48/random-multi", 400,
			func() sb.Protocol { return sb.NewGreedy(policy) }, multiDest))
	}
	// HPTS needs n = m^ℓ and ρ ≤ 1/ℓ.
	scenarios = append(scenarios, scenario{name: "hpts2/path64/random-half", rounds: 600,
		build: func() (*sb.Network, sb.Protocol, sb.Adversary, error) {
			nw, err := sb.NewPath(64)
			if err != nil {
				return nil, nil, nil, err
			}
			adv, err := sb.NewRandomAdversary(nw, sb.Bound{Rho: sb.NewRat(1, 2), Sigma: 2}, nil, 17)
			if err != nil {
				return nil, nil, nil, err
			}
			return nw, sb.NewHPTS(2), adv, nil
		}})
	// Tree protocols on non-path shapes.
	scenarios = append(scenarios, scenario{name: "tree-pts/spider4x5/random-root", rounds: 400,
		build: func() (*sb.Network, sb.Protocol, sb.Adversary, error) {
			nw, err := sb.SpiderTree(4, 5)
			if err != nil {
				return nil, nil, nil, err
			}
			adv, err := sb.NewRandomAdversary(nw, sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 2}, nil, 19)
			if err != nil {
				return nil, nil, nil, err
			}
			return nw, sb.NewTreePTS(), adv, nil
		}})
	scenarios = append(scenarios, scenario{name: "tree-ppts/caterpillar8x2/random-spine", rounds: 400,
		build: func() (*sb.Network, sb.Protocol, sb.Adversary, error) {
			nw, err := sb.CaterpillarTree(8, 2)
			if err != nil {
				return nil, nil, nil, err
			}
			dests := []sb.NodeID{3, 5, 7}
			adv, err := sb.NewRandomAdversary(nw, sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 1}, dests, 23)
			if err != nil {
				return nil, nil, nil, err
			}
			return nw, sb.NewTreePPTS(), adv, nil
		}})
	return scenarios
}

const goldenPath = "testdata/golden_b1.json"

func TestGoldenB1Equivalence(t *testing.T) {
	update := os.Getenv("GOLDEN_UPDATE") != ""
	got := make(map[string]goldenRecord)
	for _, sc := range goldenScenarios() {
		nw, proto, adv, err := sc.build()
		if err != nil {
			t.Fatalf("%s: build: %v", sc.name, err)
		}
		dig := newExecDigest()
		res, err := sb.RunContext(t.Context(),
			sb.NewSpec(nw, proto, adv, sc.rounds, sb.WithObservers(dig), sb.WithVerifyAdversary()))
		if err != nil {
			t.Fatalf("%s: run: %v", sc.name, err)
		}
		got[sc.name] = goldenRecord{
			Digest:    dig.h.Sum64(),
			MaxLoad:   res.MaxLoad,
			Injected:  res.Injected,
			Delivered: res.Delivered,
			MaxLat:    res.MaxLatency,
			TotalLat:  res.TotalLatency,
		}
	}

	if update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		// encoding/json sorts map keys, so the file is stable as written.
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden records to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with GOLDEN_UPDATE=1 to create): %v", err)
	}
	var want map[string]goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("scenario count mismatch: golden has %d, run produced %d", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: scenario missing from run", name)
			continue
		}
		if g != w {
			t.Errorf("%s: diverged from pre-bandwidth engine at B=1:\n got  %+v\n want %+v", name, g, w)
		}
	}
}
