// Package smallbuffers is a simulation library and reproduction of
// "With Great Speed Come Small Buffers: Space-Bandwidth Tradeoffs for
// Routing" (Miller, Patt-Shamir, Rosenbaum; PODC 2019).
//
// It provides, under one stable API:
//
//   - the adversarial-queuing model of the paper: synchronous store-and-
//     forward rounds on directed paths and in-trees, with (ρ,σ)-bounded
//     packet injections (Definition 2.1) and capacitated links — every
//     link has a bandwidth B ≥ 1 (the paper's unit capacity is the
//     default; WithUniformBandwidth/WithLinkBandwidth configure more), the
//     engine enforces "at most B(v) packets leave v per round", and demand
//     rates ρ are admissible up to the bottleneck bandwidth;
//   - the paper's forwarding algorithms: PTS (Alg. 1, ≤ 2+σ), PPTS
//     (Alg. 2, ≤ 1+d+σ), their directed-tree variants (App. B.2), and the
//     hierarchical HPTS (Algs. 3–5, ≤ ℓ·n^(1/ℓ)+σ+1 at rate ρ ≤ 1/ℓ);
//   - the Section 5 lower-bound adversary forcing Ω(((ℓ+1)ρ−1)/2ℓ·n^(1/ℓ))
//     space against every protocol, with the fresh/stale accounting of
//     Lemmas 5.2–5.4 as an executable tracker;
//   - classical greedy baselines (FIFO, LIFO, LIS, SIS, NTG, FTG);
//   - adversary construction kits: verified replay schedules, shaped random
//     patterns that are (ρ,σ)-bounded by construction, crafted worst cases;
//   - an experiment harness regenerating every theorem and figure of the
//     paper (see EXPERIMENTS.md), plus tracing and ASCII visualization;
//   - a declarative scenario layer: workloads as JSON files resolved
//     against a name-based component registry (LoadScenario,
//     Scenario.Run, RegisterProtocol/RegisterAdversary extension hooks;
//     see testdata/scenarios/ and the "Scenario files" section of
//     README.md);
//   - a metrics tier: measurement as data — typed collectors selected by
//     registry name (WithMetrics, the scenario "metrics" axis) distill
//     runs into deterministic integer summaries (bounded occupancy
//     series, occupancy/latency histograms with percentiles, link
//     utilization, drop rate, goodput) that flow through Result.Metrics,
//     sweep records, the service tier, and result digests (see the
//     "Metrics" section of README.md);
//   - deterministic fault injection: registry-named fault models — i.i.d.
//     packet drops, seeded link flaps, node-crash windows — whose
//     schedules are stateless keyed hashes of the cell seed, so lossy
//     runs reproduce exactly at any sweep parallelism and fold into
//     result digests (WithFaults, the scenario "faults" axis, aqtsim
//     -fault; see the "Faults" section of README.md).
//
// # Quick start
//
// Execution is a two-tier API. Tier 1 runs one scenario through the
// context-aware engine: describe the run with NewSpec and functional
// options, then execute it with RunContext (cancellation is honored
// between rounds):
//
//	nw, _ := smallbuffers.NewPath(64)
//	adv, _ := smallbuffers.NewRandomAdversary(nw, smallbuffers.Bound{
//		Rho: smallbuffers.NewRat(1, 1), Sigma: 2,
//	}, nil, 42)
//	res, _ := smallbuffers.RunContext(context.Background(),
//		smallbuffers.NewSpec(nw, smallbuffers.NewPPTS(), adv, 1000))
//	fmt.Println(res.MaxLoad) // ≤ 1 + d + σ per Proposition 3.2
//
// Tier 2 runs whole families of scenarios: a Sweep names the axes of a
// cartesian grid (protocols × topologies × bounds × adversaries × seeds ×
// rounds) and executes it on a bounded worker pool with deterministic
// per-cell seeds, streaming per-cell results and aggregating summaries:
//
//	sweep := &smallbuffers.Sweep{
//		Protocols:   []smallbuffers.SweepProtocol{smallbuffers.NewSweepProtocol("PPTS", func() smallbuffers.Protocol { return smallbuffers.NewPPTS() })},
//		Topologies:  []smallbuffers.SweepTopology{smallbuffers.SweepPath(64), smallbuffers.SweepPath(256)},
//		Bounds:      []smallbuffers.Bound{{Rho: smallbuffers.NewRat(1, 1), Sigma: 2}},
//		Adversaries: []smallbuffers.SweepAdversary{smallbuffers.SweepRandomAdversary(nil)},
//		Seeds:       []int64{1, 2, 3, 4},
//		Rounds:      []int{2000},
//	}
//	agg, _ := sweep.Run(ctx)
//	fmt.Println(agg.MaxLoad.Mean, agg.MaxLoad.Max)
//
// The struct-literal Config form, Run(Config), still works but is
// deprecated; new code should use NewSpec/RunContext and Sweep.
package smallbuffers

import (
	"context"
	"io"
	"math/rand"
	"time"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/baseline"
	"smallbuffers/internal/core"
	"smallbuffers/internal/experiments"
	"smallbuffers/internal/faults"
	"smallbuffers/internal/fleet"
	"smallbuffers/internal/harness"
	"smallbuffers/internal/live"
	"smallbuffers/internal/local"
	"smallbuffers/internal/lowerbound"
	"smallbuffers/internal/metrics"
	"smallbuffers/internal/network"
	"smallbuffers/internal/opt"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/registry"
	"smallbuffers/internal/scenario"
	"smallbuffers/internal/service"
	"smallbuffers/internal/sim"
	"smallbuffers/internal/stats"
	"smallbuffers/internal/store"
	"smallbuffers/internal/trace"
)

// Core model types, re-exported.
type (
	// NodeID identifies a node; nodes of an n-node network are 0…n−1.
	NodeID = network.NodeID
	// Network is an immutable directed in-forest (path or in-tree).
	Network = network.Network
	// Rat is an exact rational; injection rates ρ are Rats.
	Rat = rat.Rat
	// Bound is a (ρ,σ) demand bound (Definition 2.1).
	Bound = adversary.Bound
	// Injection is a packet-to-be emitted by an adversary.
	Injection = packet.Injection
	// Packet is a routed packet.
	Packet = packet.Packet
	// Adversary produces each round's injections.
	Adversary = adversary.Adversary
	// Protocol is a centralized online forwarding algorithm.
	Protocol = sim.Protocol
	// Config describes one simulation run as a struct literal.
	//
	// Deprecated: build a Spec with NewSpec and options and call
	// RunContext; Config supports neither cancellation nor engine reuse.
	Config = sim.Config
	// Spec describes one simulation run for the context-aware API; build
	// it with NewSpec and the With* options.
	Spec = sim.Spec
	// RunOption customizes a Spec (WithObservers, WithInvariants,
	// WithVerifyAdversary, WithDeadline).
	RunOption = sim.Option
	// Engine is the reusable simulation engine: Run(ctx) for whole runs,
	// Step/Reset for incremental driving and allocation-light reuse.
	Engine = sim.Engine
	// Result summarizes a run.
	Result = sim.Result
	// Summary aggregates a numeric sample (mean/max/percentiles); sweep
	// results report their per-cell metrics through it.
	Summary = stats.Summary
	// Sweep is a declarative cartesian grid of runs executed on a bounded
	// worker pool (Tier 2 of the execution API).
	Sweep = harness.Sweep
	// SweepResult aggregates an executed sweep.
	SweepResult = harness.SweepResult
	// SweepCell identifies one point of a sweep grid.
	SweepCell = harness.Cell
	// SweepCellResult pairs a cell with its run outcome.
	SweepCellResult = harness.CellResult
	// SweepProtocol is one point on a sweep's protocol axis.
	SweepProtocol = harness.ProtocolSpec
	// SweepTopology is one point on a sweep's topology axis.
	SweepTopology = harness.TopologySpec
	// SweepAdversary is one point on a sweep's adversary axis.
	SweepAdversary = harness.AdversarySpec
	// View is the read-only configuration protocols observe.
	View = sim.View
	// Forward is one forwarding decision.
	Forward = sim.Forward
	// Move is an applied forwarding decision, as seen by observers.
	Move = sim.Move
	// Observer receives engine events.
	Observer = sim.Observer
	// NopObserver is an embeddable no-op Observer.
	NopObserver = sim.NopObserver
	// Invariant is a per-round predicate checked by the engine.
	Invariant = sim.Invariant
	// Hierarchy is the base-m partition HPTS runs on (§4.1).
	Hierarchy = core.Hierarchy
	// Segment is one leg of a packet's virtual trajectory (Figure 1).
	Segment = core.Segment
	// Experiment is one unit of the reproduction suite.
	Experiment = experiments.Experiment
	// ExperimentOutcome is an experiment's structured result.
	ExperimentOutcome = experiments.Outcome
	// GreedyPolicy ranks packets within a buffer for greedy baselines.
	GreedyPolicy = baseline.Policy
	// LowerBoundAdversary is the Section 5 construction.
	LowerBoundAdversary = lowerbound.Adversary
	// StalenessTracker replays the Section 5 fresh/stale accounting.
	StalenessTracker = lowerbound.StalenessTracker
	// TraceRecorder captures events and occupancy matrices.
	TraceRecorder = trace.Recorder
)

// None is the sentinel "no node" value.
const None = network.None

// NewRat returns the exact rational p/q (panics if q = 0).
func NewRat(p, q int64) Rat { return rat.New(p, q) }

// ParseRat parses "p/q", an integer, or a decimal.
func ParseRat(s string) (Rat, error) { return rat.Parse(s) }

// --- Topologies ---

// NetworkOption configures a topology under construction; today's options
// set link bandwidths (WithUniformBandwidth, WithLinkBandwidth).
type NetworkOption = network.Option

// WithUniformBandwidth sets every link's bandwidth to b ≥ 1. The paper's
// unit-capacity model is b = 1, the default.
func WithUniformBandwidth(b int) NetworkOption { return network.WithUniformBandwidth(b) }

// WithLinkBandwidth sets the bandwidth of the link out of node v,
// overriding the uniform default for that link.
func WithLinkBandwidth(v NodeID, b int) NetworkOption { return network.WithLinkBandwidth(v, b) }

// NewPath returns the directed path 0 → 1 → … → n−1.
func NewPath(n int, opts ...NetworkOption) (*Network, error) { return network.NewPath(n, opts...) }

// NewTree builds an in-tree from a parent vector (exactly one root).
func NewTree(parent []NodeID, opts ...NetworkOption) (*Network, error) {
	return network.NewTree(parent, opts...)
}

// NewForest builds an in-forest from a parent vector (≥ 1 roots).
func NewForest(parent []NodeID, opts ...NetworkOption) (*Network, error) {
	return network.NewForest(parent, opts...)
}

// RandomTree returns a random in-tree on n nodes rooted at n−1.
func RandomTree(n int, rng *rand.Rand, opts ...NetworkOption) (*Network, error) {
	return network.RandomTree(n, rng, opts...)
}

// CaterpillarTree returns a spine path with `legs` leaves per spine node.
func CaterpillarTree(spine, legs int, opts ...NetworkOption) (*Network, error) {
	return network.CaterpillarTree(spine, legs, opts...)
}

// BinaryTree returns a complete binary in-tree of the given height.
func BinaryTree(height int, opts ...NetworkOption) (*Network, error) {
	return network.BinaryTree(height, opts...)
}

// SpiderTree returns `arms` directed paths merging into one root.
func SpiderTree(arms, length int, opts ...NetworkOption) (*Network, error) {
	return network.SpiderTree(arms, length, opts...)
}

// --- Protocols (the paper's algorithms) ---

// NewPTS returns Peak-to-Sink (Algorithm 1): single destination on a path,
// max load ≤ 2 + σ (Proposition 3.1, stated at unit capacity). On links of
// bandwidth B the activation rule is unchanged and forwarding follows the
// cascaded-rate discipline: drains accelerate up to B per round from the
// destination end, so the measured max load is non-increasing in B (E12).
func NewPTS(opts ...core.PTSOption) *core.PTS { return core.NewPTS(opts...) }

// PTSWithDrain enables forwarding on rounds with no bad buffer (liveness
// extension that preserves the bound).
func PTSWithDrain() core.PTSOption { return core.WithDrain() }

// NewPPTS returns Parallel Peak-to-Sink (Algorithm 2): d destinations on a
// path, max load ≤ 1 + d + σ (Proposition 3.2, at unit capacity). On
// bandwidth-B links each activated pseudo-buffer drains at up to B per
// round under the cascaded-rate discipline; the d pseudo-buffer term is
// structural (one interval per node) and does not shrink with B, but the
// backlog term does, so max load is non-increasing in B (E12).
func NewPPTS(opts ...core.PPTSOption) *core.PPTS { return core.NewPPTS(opts...) }

// PPTSWithDrain enables the drain-when-idle liveness extension.
func PPTSWithDrain() core.PPTSOption { return core.PPTSWithDrain() }

// NewTreePTS returns the directed-tree PTS (Proposition B.3: ≤ 2 + σ at
// unit capacity; on bandwidth-B links drains cascade root-ward at up to B).
func NewTreePTS(opts ...core.TreePTSOption) *core.TreePTS { return core.NewTreePTS(opts...) }

// TreePTSWithDrain enables drain-when-idle for TreePTS.
func TreePTSWithDrain() core.TreePTSOption { return core.TreePTSWithDrain() }

// NewTreePPTS returns the directed-tree PPTS (Proposition 3.5:
// ≤ 1 + d′ + σ, d′ = max destinations on a leaf-root path, at unit
// capacity; on bandwidth-B links drains cascade root-ward at up to B).
func NewTreePPTS() *core.TreePPTS { return core.NewTreePPTS() }

// NewHPTS returns Hierarchical Peak-to-Sink (Algorithms 3–5) with ℓ
// levels on a path of n = m^ℓ nodes: max load ≤ ℓ·n^(1/ℓ) + σ + 1 whenever
// ρ·ℓ ≤ 1 (Theorem 4.1, proven at unit capacity; B > 1 runs a best-effort
// capacitated generalization that recovers the theorem's algorithm at
// B = 1).
func NewHPTS(ell int, opts ...core.HPTSOption) *core.HPTS { return core.NewHPTS(ell, opts...) }

// HPTSAblatePreBad disables Algorithm 5 (ablation knob for experiments).
func HPTSAblatePreBad() core.HPTSOption { return core.HPTSAblatePreBad() }

// NewHierarchy returns the base-m, ℓ-level partition over m^ℓ nodes.
func NewHierarchy(m, ell int) (*Hierarchy, error) { return core.NewHierarchy(m, ell) }

// DestinationDepth returns d′(G, W): the maximum number of destinations on
// any leaf-root path (Proposition 3.5's parameter).
func DestinationDepth(nw *Network, dests []NodeID) int {
	return core.DestinationDepth(nw, dests)
}

// --- Baselines ---

// NewGreedy returns a work-conserving greedy protocol with the given
// intra-buffer policy.
func NewGreedy(p GreedyPolicy) *baseline.Greedy { return baseline.NewGreedy(p) }

// Greedy scheduling policies from classical AQT.
var (
	FIFO GreedyPolicy = baseline.FIFO{}
	LIFO GreedyPolicy = baseline.LIFO{}
	LIS  GreedyPolicy = baseline.LIS{}
	SIS  GreedyPolicy = baseline.SIS{}
	NTG  GreedyPolicy = baseline.NTG{}
	FTG  GreedyPolicy = baseline.FTG{}
)

// AllGreedy returns one greedy protocol per classical policy.
func AllGreedy() []*baseline.Greedy { return baseline.All() }

// --- Local protocols (the §1 locality context, [9]/[17]) ---

// NewDownhill returns the naive locality-1 protocol: a node forwards while
// its buffer is strictly larger than its next hop's, moving up to
// min(B(v), gradient) packets per round on capacitated links. Single
// destination (the sink). Under sustained full-rate traffic its steady
// state is the Θ(n) staircase — the gap experiment E10 measures against
// PTS's O(1+σ).
func NewDownhill() *local.Downhill { return local.NewDownhill() }

// NewOddEvenDownhill returns the parity-staggered downhill variant (in the
// spirit of the OED algorithm of [9,17]); it sustains rates ρ ≤ 1/2.
func NewOddEvenDownhill() *local.OddEven { return local.NewOddEven() }

// --- Adversaries ---

// NewRandomAdversary returns a randomized pattern that is (ρ,σ)-bounded by
// construction, injecting toward dests (the sinks if nil), deterministic in
// seed.
func NewRandomAdversary(nw *Network, bound Bound, dests []NodeID, seed int64) (Adversary, error) {
	return adversary.NewRandom(nw, bound, dests, seed)
}

// NewHotSpotAdversary returns an *adaptive* (ρ,σ)-bounded pattern that aims
// every admissible injection at the currently fullest buffer. The paper's
// bounds quantify over all patterns, so they hold against it — it is the
// sharpest stress test in the suite.
func NewHotSpotAdversary(nw *Network, bound Bound, dests []NodeID, seed int64) (Adversary, error) {
	return adversary.NewHotSpot(nw, bound, dests, seed)
}

// NewStream returns a smooth rate-ρ single-route stream src → dst.
func NewStream(bound Bound, src, dst NodeID) Adversary {
	return adversary.NewStream(bound, src, dst)
}

// NewRoundRobin returns a smooth aggregate rate-ρ flow from src cycling the
// given destinations.
func NewRoundRobin(bound Bound, src NodeID, dests []NodeID) Adversary {
	return adversary.NewRoundRobin(bound, src, dests)
}

// NewSchedule returns a fluent builder for explicit injection schedules.
func NewSchedule() *adversary.Schedule { return adversary.NewSchedule() }

// NewUnion merges adversaries; the derived bound is the sum of the parts'
// bounds, even past ρ = 1 (rates up to the bottleneck bandwidth are
// admissible on capacitated networks, and over-rate unions fail
// verification with a clear error instead of under-declaring). Use
// WithUnionBound on the result to declare a tighter bound for
// edge-disjoint parts.
func NewUnion(parts ...Adversary) *adversary.Union { return adversary.NewUnion(parts...) }

// NewDelayed time-shifts an adversary by `offset` silent rounds.
func NewDelayed(inner Adversary, offset int) Adversary {
	return adversary.NewDelayed(inner, offset)
}

// NewOnOff returns a bursty on-off source src → dst whose duty cycle is
// derived from (ρ,σ) so the pattern is bounded by construction.
func NewOnOff(bound Bound, src, dst NodeID) (Adversary, error) {
	return adversary.NewOnOff(bound, src, dst)
}

// PTSBurstAdversary is the crafted near-tight pattern for Proposition 3.1.
func PTSBurstAdversary(nw *Network, bound Bound, horizon int) (Adversary, error) {
	return adversary.PTSBurst(nw, bound, horizon)
}

// PPTSBurstAdversary is the crafted near-tight pattern for Proposition 3.2.
func PPTSBurstAdversary(nw *Network, bound Bound, d, horizon int) (Adversary, error) {
	return adversary.PPTSBurst(nw, bound, d, horizon)
}

// TreeBurstAdversary is the crafted pattern for Proposition 3.5.
func TreeBurstAdversary(nw *Network, bound Bound, dests []NodeID, horizon int) (Adversary, error) {
	return adversary.TreeBurst(nw, bound, dests, horizon)
}

// GreedyKillerAdversary is the multi-destination stress pattern of §1/[17].
func GreedyKillerAdversary(nw *Network, bound Bound, d, horizon int) (Adversary, error) {
	return adversary.GreedyKiller(nw, bound, d, horizon)
}

// NewLowerBoundAdversary returns the Section 5 construction with the given
// m, ℓ and rate ρ (ρ·m must be an integer).
func NewLowerBoundAdversary(m, ell int, rho Rat) (*LowerBoundAdversary, error) {
	return lowerbound.New(m, ell, rho)
}

// NewStalenessTracker returns an observer verifying Lemmas 5.2–5.4 during a
// run of the lower-bound pattern.
func NewStalenessTracker(adv *LowerBoundAdversary) *StalenessTracker {
	return lowerbound.NewStalenessTracker(adv)
}

// VerifyAdversary replays an adversary for `rounds` rounds through the
// exact (ρ,σ) verifier, returning the first violation if any. The bound is
// admitted against the network's bottleneck bandwidth (ρ ≤ B_min). The
// adversary is consumed.
func VerifyAdversary(nw *Network, adv Adversary, rounds int) error {
	return adversary.VerifyPrefix(nw, adv, rounds)
}

// --- Execution (Tier 1: one run) ---

// NewSpec assembles a run description: execute protocol p against
// adversary adv on nw for the given number of rounds. Options attach
// observers, invariants, adversary verification, and a wall-clock
// deadline.
func NewSpec(nw *Network, p Protocol, adv Adversary, rounds int, opts ...RunOption) Spec {
	return sim.NewSpec(nw, p, adv, rounds, opts...)
}

// WithObservers registers observers that receive the run's events.
func WithObservers(obs ...Observer) RunOption { return sim.WithObservers(obs...) }

// WithInvariants registers per-round predicates; a violation aborts the
// run.
func WithInvariants(invs ...Invariant) RunOption { return sim.WithInvariants(invs...) }

// WithVerifyAdversary re-checks every injection against the adversary's
// declared (ρ,σ) bound.
func WithVerifyAdversary() RunOption { return sim.WithVerifyAdversary() }

// WithMetrics selects the run's metric collectors; their summaries land
// in Result.Metrics keyed by collector name. Collectors are stateful and
// single-run — build fresh instances per run (NewMetric). Without this
// option the default {max_load, latency} set reports.
func WithMetrics(cs ...MetricCollector) RunOption { return sim.WithMetrics(cs...) }

// WithDeadline sets a wall-clock budget for the run; when it expires the
// run stops between rounds with context.DeadlineExceeded.
func WithDeadline(d time.Duration) RunOption { return sim.WithDeadline(d) }

// RunContext executes one simulation under ctx. Cancellation is honored
// between rounds; on cancellation the partial Result is returned together
// with the context's error.
func RunContext(ctx context.Context, spec Spec) (Result, error) { return sim.Run(ctx, spec) }

// NewEngine validates spec and prepares a reusable engine: Run(ctx)
// executes it, Step drives it one round at a time, and Reset rebinds it to
// another Spec while keeping its buffer allocations.
func NewEngine(spec Spec) (*Engine, error) { return sim.NewEngine(spec) }

// Run executes one simulation.
//
// Deprecated: use RunContext with a Spec built by NewSpec; Run supports
// neither cancellation nor engine reuse.
func Run(cfg Config) (Result, error) { return sim.RunConfig(cfg) }

// --- Execution (Tier 2: sweeps) ---

// NewSweepProtocol wraps a protocol constructor as a sweep axis entry;
// every cell gets a fresh instance.
func NewSweepProtocol(name string, mk func() Protocol) SweepProtocol {
	return harness.Protocol(name, mk)
}

// SweepPath is the path-topology axis entry on n nodes.
func SweepPath(n int) SweepTopology { return harness.Path(n) }

// SweepRandomAdversary is the adversary axis entry for the shaped random
// pattern injecting toward dests (the sinks if nil); each cell draws its
// own deterministically derived seed.
func SweepRandomAdversary(dests []NodeID) SweepAdversary {
	return harness.RandomAdversary(dests)
}

// MaxLoadInvariant returns an Invariant asserting every buffer stays at or
// below `bound` packets — the executable form of the space theorems.
func MaxLoadInvariant(nw *Network, bound int) Invariant {
	return core.MaxLoadInvariant(nw, bound)
}

// NewTraceRecorder returns an Observer capturing events and the per-round
// occupancy matrix (JSON export, heatmap rendering).
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// NewConservationCheck returns an Observer asserting packet conservation
// (delivered + buffered + staged = injected, nothing past its destination)
// after every round; inspect its Err field after the run.
func NewConservationCheck() *sim.ConservationCheck { return sim.NewConservationCheck() }

// RenderFigure1 draws the paper's Figure 1 for the given hierarchy and an
// optional packet trajectory (pass src ≥ dst to omit it).
func RenderFigure1(w io.Writer, h *Hierarchy, src, dst int) error {
	return trace.RenderFigure1(w, h, src, dst)
}

// RenderSparkline draws a compact per-round series (e.g. a recorder's
// MaxLoadSeries) as a unicode sparkline.
func RenderSparkline(w io.Writer, series []int, width int) error {
	return trace.RenderSparkline(w, series, width)
}

// RenderSeries draws an arbitrary integer series (e.g. a MetricSeries'
// Values) as a labeled unicode sparkline.
func RenderSeries(w io.Writer, label string, series []int, width int) error {
	return trace.RenderSeries(w, label, series, width)
}

// --- Metrics (measurement as data) ---
//
// Measurement is data, like workloads: a MetricCollector observes a run
// through typed hooks and distills it into a MetricSummary — an
// integer-only, deterministic record that rides Result.Metrics, sweep
// cell records, the service tier's streams, and result digests.
// Collectors are selected by registry name (the scenario "metrics" axis,
// aqtsim -metrics) or attached directly with WithMetrics.

type (
	// MetricCollector observes one run and distills it into a
	// MetricSummary; implementations register with RegisterMetric.
	MetricCollector = metrics.Collector
	// MetricSummary is a collector's canonical integer-only output:
	// named scalars, bounded series, and histograms.
	MetricSummary = metrics.Summary
	// MetricSeries is one bounded per-round series: stride-doubled
	// values over the whole run plus an exact recent tail.
	MetricSeries = metrics.SeriesRecord
	// MetricHist is a histogram with exact low buckets, a log2 tail, and
	// deterministic integer quantiles.
	MetricHist = metrics.HistRecord
	// RegistryMetric describes a registrable measurement collector.
	RegistryMetric = registry.Metric
	// HistBar is one labeled count of an ASCII histogram rendering.
	HistBar = stats.HistBar
	// MetricView is the read-only engine state a collector observes
	// (a narrow mirror of View, plus phased-staging counts).
	MetricView = metrics.View
	// MetricPoint identifies an occupancy sample point within a round
	// (MetricSampleLT, MetricSamplePostForward).
	MetricPoint = metrics.Point
	// MetricMove is one applied forwarding decision as collectors see
	// it. OnForward's moves slice is an engine-reused scratch buffer —
	// copy it if your collector retains it past the call.
	MetricMove = metrics.Move
	// MetricNopCollector is an embeddable no-op MetricCollector.
	MetricNopCollector = metrics.NopCollector
)

// Occupancy sample points, as passed to MetricCollector.OnSample.
const (
	// MetricSampleLT is the paper's measurement point L_t:
	// post-injection, pre-forwarding.
	MetricSampleLT = metrics.LT
	// MetricSamplePostForward samples after the forwarding step.
	MetricSamplePostForward = metrics.PostForward
)

// NewMetric builds a fresh collector from the registry by name, with the
// given parameters resolved against its schema (nil means defaults) —
// e.g. NewMetric("load_series", map[string]any{"cap": 256}).
func NewMetric(name string, params map[string]any) (MetricCollector, error) {
	e, err := registry.LookupMetric(name)
	if err != nil {
		return nil, err
	}
	p, err := e.Params.Resolve(params)
	if err != nil {
		return nil, err
	}
	return e.Build(p)
}

// RegisterMetric registers a measurement collector under a new stable
// name, selectable from scenario files and the CLIs.
func RegisterMetric(m RegistryMetric) error { return registry.RegisterMetric(m) }

// RegisteredMetrics enumerates the registered metric names, sorted.
func RegisteredMetrics() []string { return registry.MetricNames() }

// MergeMetricSummaries aggregates same-shaped summary maps from several
// runs: histograms merge bucket-wise with re-derived quantiles, scalars
// merge by maximum, series drop (no canonical cross-run alignment).
func MergeMetricSummaries(runs []map[string]MetricSummary) (map[string]MetricSummary, error) {
	return metrics.MergeAll(runs)
}

// RenderHistogram draws labeled counts as fixed-width ASCII bars (see
// MetricHist.Bars for histogram summaries).
func RenderHistogram(w io.Writer, title string, bars []HistBar, width int) error {
	return stats.Histogram(w, title, bars, width)
}

// --- Faults (deterministic fault injection) ---
//
// A FaultModel perturbs the forwarding fabric — dropping packets in
// transit or downing links for whole rounds — while leaving injections
// and protocol decisions untouched. Schedules are stateless keyed hashes
// of the bound seed, so faulted runs are exactly reproducible at any
// sweep parallelism, and a nil/absent model is byte-identical to the
// pre-fault engine. Models are selected by registry name (the scenario
// "faults" axis, aqtsim -fault) or attached directly with WithFaults.

type (
	// FaultModel decides, per round and link, whether the link is up and
	// which departing packets are lost; implementations register with
	// RegisterFault. Models must be Reset-bound to a topology and seed
	// before a run.
	FaultModel = faults.Model
	// SweepFault is one point on a sweep's fault axis; the axis is
	// excluded from seed derivation so fault cells replay identical
	// traffic (paired comparisons).
	SweepFault = harness.FaultSpec
	// RegistryFault describes a registrable fault model.
	RegistryFault = registry.Fault
)

// WithFaults attaches a fault model to a run. The model must already be
// bound (FaultModel.Reset) to the run's topology and seed; a Spec without
// this option runs loss-free, byte-identical to the pre-fault engine.
func WithFaults(m FaultModel) RunOption { return sim.WithFaults(m) }

// NewDropFault returns the i.i.d. per-link drop model: each packet
// leaving a buffer is lost in transit with exact probability p ∈ [0,1].
func NewDropFault(p Rat) (*faults.Drop, error) { return faults.NewDrop(p) }

// NewLinkFlapFault returns the transient-outage model: time is cut into
// windows of `period` rounds, and with probability p a window's first
// `down` rounds forward nothing on the affected link.
func NewLinkFlapFault(p Rat, period, down int) (*faults.LinkFlap, error) {
	return faults.NewLinkFlap(p, period, down)
}

// NewNodeCrashFault returns the crash-window model: node v forwards
// nothing during rounds [at, at+duration).
func NewNodeCrashFault(v NodeID, at, duration int) (*faults.NodeCrash, error) {
	return faults.NewNodeCrash(v, at, duration)
}

// NewFault builds a fresh fault model from the registry by name with the
// given parameters (nil means defaults), e.g.
// NewFault("drop", map[string]any{"p": "1/20"}). The model still needs
// FaultModel.Reset before use; the scenario layer and sweeps do this
// automatically.
func NewFault(name string, params map[string]any) (FaultModel, error) {
	e, err := registry.LookupFault(name)
	if err != nil {
		return nil, err
	}
	p, err := e.Params.Resolve(params)
	if err != nil {
		return nil, err
	}
	return e.Build(p)
}

// SweepDropFault is the fault-axis entry for an i.i.d. drop model with
// probability p, labeled "drop(p)".
func SweepDropFault(p Rat) SweepFault { return harness.DropFault(p) }

// RegisterFault registers a fault model under a new stable name,
// selectable from scenario files and the CLIs. Build must bound-check
// its parameters — they arrive over the network through the service
// tier.
func RegisterFault(f RegistryFault) error { return registry.RegisterFault(f) }

// RegisteredFaults enumerates the registered fault-model names, sorted.
func RegisteredFaults() []string { return registry.FaultNames() }

// --- Scenarios (workloads as data) ---
//
// A Scenario is a serializable description of a workload: topology,
// protocol, adversary, (ρ,σ) bound, horizon, bandwidths, seeds, and
// invariant set, each axis a single point or a list. Scenarios marshal to
// and from JSON, validate against the component registry, compile to a
// Spec when one-point, and lift to a Sweep otherwise — so reproducing an
// experiment means running a file (see testdata/scenarios/), not editing
// a program. cmd/aqtsim and cmd/aqtbench consume them via -scenario and
// -scenarios.

type (
	// Scenario is a declarative, serializable workload description; run it
	// with Scenario.Run, serialize with Scenario.Marshal, compile with
	// Scenario.Compile (one-point) or Scenario.Sweep (grids). Its content
	// address is Scenario.Digest() — SHA-256 of the canonical Marshal
	// form, stable across every JSON spelling of the same workload — the
	// key the service tier's result cache memoizes on.
	Scenario = scenario.Scenario
	// ScenarioComponent names one registered component plus parameters.
	ScenarioComponent = scenario.Component
	// ScenarioBound is the serializable (ρ,σ) bound: ρ is an exact
	// rational string such as "1/2".
	ScenarioBound = scenario.Bound
	// ScenarioSingle is a fully materialized one-point scenario.
	ScenarioSingle = scenario.Single
	// ScenarioFlags bridges a flag-style flat parameter namespace to a
	// one-point scenario (the CLIs' scenario constructor).
	ScenarioFlags = scenario.Flags
)

// LoadScenario decodes and validates a scenario from r.
func LoadScenario(r io.Reader) (*Scenario, error) { return scenario.Load(r) }

// LoadScenarioFile decodes and validates the scenario file at path ("-"
// reads standard input).
func LoadScenarioFile(path string) (*Scenario, error) { return scenario.LoadFile(path) }

// ParseScenario decodes and validates a scenario from JSON bytes.
func ParseScenario(data []byte) (*Scenario, error) { return scenario.Parse(data) }

// ScenarioFromFlags assembles and validates a one-point scenario from a
// flat flag namespace; each component keeps the parameters its registry
// schema declares.
func ScenarioFromFlags(f ScenarioFlags) (*Scenario, error) { return scenario.FromFlags(f) }

// --- Serving (Tier 3: the network execution tier) ---
//
// A Server is an http.Handler that accepts scenario JSON over HTTP
// (POST /v1/runs), executes it on a bounded worker pool, streams per-cell
// results (GET /v1/runs/{id}/stream, NDJSON or SSE), and memoizes
// results in a digest-keyed LRU cache so identical workloads never
// re-simulate. cmd/aqtserve is the ready-made daemon around it; embed a
// Server directly to serve scenarios from your own process.

type (
	// Server is the embeddable scenario-execution service (an
	// http.Handler); create it with NewServer and Drain/Close it on
	// shutdown.
	Server = service.Server
	// ServerConfig sizes a Server: worker pool, per-run sweep workers,
	// cache capacity in cells, and submit queue depth.
	ServerConfig = service.Config
	// ServerReport is the wire form of one served run: identity, status,
	// per-cell records, and the results digest.
	ServerReport = service.Report
	// SweepCellRecord is the deterministic wire form of one executed
	// cell — what the service streams and results digests hash over.
	SweepCellRecord = harness.CellRecord
	// RegistryCatalog is the serializable component catalog (the
	// /v1/registry document).
	RegistryCatalog = registry.CatalogDesc
)

// NewServer starts a scenario-execution service with cfg's bounds; the
// zero Config gets production-lean defaults (4 workers, 4096-cell
// cache).
func NewServer(cfg ServerConfig) *Server { return service.New(cfg) }

// Catalog snapshots the component registry in serializable form — every
// registered topology, protocol, adversary, policy, and invariant with
// its parameter schema (what a Server exposes at /v1/registry).
func Catalog() RegistryCatalog { return registry.Catalog() }

// SweepResultsDigest is the canonical content address of a set of cell
// records: "sha256:<hex>" over their JSON encodings sorted by cell
// index. Identical scenarios produce identical digests locally and
// behind the service tier, at any worker count.
func SweepResultsDigest(recs []SweepCellRecord) string { return harness.RecordsDigest(recs) }

// --- Distributed sweeps (fleet coordination) ---
//
// The fleet tier splits one scenario's sweep grid into deterministic
// index-range shards, dispatches them across a fleet of Servers
// (aqtserve daemons), and merges the streamed cells back into exactly
// the record set — and results digest — of a local run. cmd/aqtctl is
// the ready-made CLI around it.

type (
	// FleetConfig names the daemons and shapes sharding, retry backoff,
	// and work stealing; only Endpoints is required.
	FleetConfig = fleet.Config
	// FleetResult is a completed fleet run: every cell record in global
	// index order plus the fleet summary.
	FleetResult = fleet.Result
	// FleetSummary reports merged counters, grid-wide metric summaries,
	// and the distribution story (cells per daemon, retries, steals,
	// wall-clock vs. ideal).
	FleetSummary = fleet.Summary
	// FleetDaemonStats is one daemon's share of a fleet run.
	FleetDaemonStats = fleet.DaemonStats
	// FleetClock injects time into the coordinator's backoff, keeping
	// retry schedules testable; simulation results never depend on it.
	FleetClock = fleet.Clock
	// CellIndexRange is a half-open range of global sweep cell indices —
	// the fleet's unit of work.
	CellIndexRange = harness.IndexRange
	// ScenarioShard restricts a scenario to an index range of its grid
	// while keeping global cell indices (see Scenario.Slice).
	ScenarioShard = scenario.Shard
)

// RunFleet executes sc's whole grid across the configured daemons and
// returns the merged records: complete and exactly-once, or an error —
// never a partial result.
func RunFleet(ctx context.Context, cfg FleetConfig, sc *Scenario) (*FleetResult, error) {
	return fleet.Run(ctx, cfg, sc)
}

// VerifyFleetLocal re-runs sc in-process and errors unless its records
// digest equals fleetDigest — the end-to-end reproducibility gate.
func VerifyFleetLocal(ctx context.Context, sc *Scenario, fleetDigest string) error {
	return fleet.VerifyLocal(ctx, sc, fleetDigest)
}

// FleetSystemClock is the real-time FleetClock used outside tests.
func FleetSystemClock() FleetClock { return fleet.SystemClock() }

// --- Live observability ---
//
// The observation tier: merge-as-you-go views of runs still in flight.
// Server exposes them as GET /v1/runs/{id}/live; FleetLiveSnapshot
// merges every daemon's views into one fleet-wide progress/occupancy
// picture; cmd/aqtctl -live and the cmd/aqtviz dashboard are the
// ready-made CLIs around them.

type (
	// LiveView is one run's live snapshot: cells done/total, the merged
	// metric summaries so far, cells/sec (×1000), and ETA — integers
	// throughout, strictly observational.
	LiveView = live.View
	// FleetLiveView is the fleet-wide merge of every daemon's in-flight
	// run views (cells summed, metric summaries merged).
	FleetLiveView = fleet.FleetLive
	// DaemonLiveView is one daemon's contribution to a FleetLiveView.
	DaemonLiveView = fleet.DaemonLive
)

// FleetLiveSnapshot polls every configured daemon's run list and /live
// views and merges them into one fleet-wide snapshot. Unreachable
// daemons are recorded in the snapshot, not fatal.
func FleetLiveSnapshot(ctx context.Context, cfg FleetConfig) (*FleetLiveView, error) {
	return fleet.LiveSnapshot(ctx, cfg)
}

// FleetLiveWatch polls FleetLiveSnapshot every interval, invoking fn
// with each snapshot, until fn returns false or ctx is cancelled.
// Pacing flows through cfg.Clock.
func FleetLiveWatch(ctx context.Context, cfg FleetConfig, interval time.Duration, fn func(*FleetLiveView) bool) error {
	return fleet.LiveWatch(ctx, cfg, interval, fn)
}

// PartitionSweepCells splits the index space [0, total) into at most
// shards contiguous ranges covering it exactly, sizes within one of each
// other — the fleet's initial shard plan.
func PartitionSweepCells(total, shards int) []CellIndexRange {
	return harness.PartitionCells(total, shards)
}

// PartitionSweepCellsWeighted splits the index space [0, len(weights))
// into at most shards contiguous ranges balanced by total weight rather
// than cell count (weights are clamped to ≥ 1). The fleet uses it with
// Scenario.CellWeights so a shard of large-topology cells does not
// become the whole run's critical path.
func PartitionSweepCellsWeighted(weights []int, shards int) []CellIndexRange {
	return harness.PartitionCellsWeighted(weights, shards)
}

// --- Persistent results (the on-disk store) ---
//
// A ResultStore is a content-addressed, append-only on-disk set of sweep
// cell records keyed by scenario digest: each record is written exactly
// once as a checksummed NDJSON line, a manifest tracks the covered index
// ranges, and torn or bit-flipped tails are detected and truncated on
// open. It is the durability layer behind fleet checkpoint/resume
// (FleetConfig.Store, aqtctl -store/-resume), Sweep.Sink streaming, and
// the daemon's restart-surviving cache (ServerConfig.CacheDir,
// aqtserve -cache-dir).

type (
	// ResultStore is one scenario's durable record set; open it with
	// OpenResultStore and Close it when done.
	ResultStore = store.Store
	// ResultStoreOptions tunes an open store (sync cadence).
	ResultStoreOptions = store.Options
	// SweepRecordSink receives each completed cell record in completion
	// order (Sweep.Sink); returning an error aborts the sweep.
	SweepRecordSink = harness.RecordSink
	// SweepRecordsDigester computes SweepResultsDigest incrementally
	// from encoded records fed in ascending index order — O(1) memory
	// however large the grid.
	SweepRecordsDigester = harness.RecordsDigester
)

// OpenResultStore opens (creating or recovering) the record store for
// one scenario digest under root. span must be the scenario's full cell
// index range; reopening an entry with a different digest or span is an
// error, and any torn tail from a crashed writer is truncated away.
func OpenResultStore(root, scenarioDigest string, span CellIndexRange, opts ResultStoreOptions) (*ResultStore, error) {
	return store.Open(root, scenarioDigest, span, opts)
}

// RemoveResultStoreEntry deletes one scenario's store entry (no error if
// absent) — the recovery path for corrupt or stale entries.
func RemoveResultStoreEntry(root, scenarioDigest string) error {
	return store.Remove(root, scenarioDigest)
}

// StoreEntryDir returns the directory a scenario's store entry lives in
// under root (whether or not it exists yet).
func StoreEntryDir(root, scenarioDigest string) string {
	return store.EntryDir(root, scenarioDigest)
}

// NewSweepRecordsDigester returns an empty incremental digester.
func NewSweepRecordsDigester() *SweepRecordsDigester { return harness.NewRecordsDigester() }

// --- Component registry (extension hooks) ---
//
// Protocols, topologies, adversaries, greedy policies, and invariants
// live in a name-based registry with typed parameter schemas — the single
// source of truth the scenario layer and the CLIs resolve against.
// Downstream code can register additional components under new names and
// drive them from scenario files without touching this repository.

type (
	// RegistryTopology describes a registrable topology family.
	RegistryTopology = registry.Topology
	// RegistryProtocol describes a registrable forwarding protocol.
	RegistryProtocol = registry.Protocol
	// RegistryAdversary describes a registrable injection pattern.
	RegistryAdversary = registry.Adversary
	// RegistryPolicy describes a registrable greedy policy.
	RegistryPolicy = registry.Policy
	// RegistryInvariant describes a registrable per-round predicate.
	RegistryInvariant = registry.Invariant
	// RegistryParam declares one typed component parameter.
	RegistryParam = registry.Param
	// RegistrySchema is an ordered parameter declaration list.
	RegistrySchema = registry.Schema
	// RegistryParams holds resolved parameter values.
	RegistryParams = registry.Params
	// AdversaryContext carries the inputs an adversary constructor may
	// consume (topology, bound, seed, horizon).
	AdversaryContext = registry.AdversaryContext
	// PreparedAdversary is a self-hosting adversary's dictated topology,
	// bound, and horizon.
	PreparedAdversary = registry.Prepared
)

// RegisterProtocol registers a forwarding protocol under a new stable
// name, making it constructible from scenario files and the CLIs.
func RegisterProtocol(p RegistryProtocol) error { return registry.RegisterProtocol(p) }

// RegisterAdversary registers an injection pattern under a new stable
// name.
func RegisterAdversary(a RegistryAdversary) error { return registry.RegisterAdversary(a) }

// RegisterTopology registers a topology family under a new stable name.
func RegisterTopology(t RegistryTopology) error { return registry.RegisterTopology(t) }

// RegisterInvariant registers a named per-round predicate.
func RegisterInvariant(i RegistryInvariant) error { return registry.RegisterInvariant(i) }

// RegisteredProtocols enumerates the registered protocol names, sorted.
func RegisteredProtocols() []string { return registry.ProtocolNames() }

// RegisteredTopologies enumerates the registered topology names, sorted.
func RegisteredTopologies() []string { return registry.TopologyNames() }

// RegisteredAdversaries enumerates the registered adversary names,
// sorted.
func RegisteredAdversaries() []string { return registry.AdversaryNames() }

// RegisteredInvariants enumerates the registered invariant names, sorted.
func RegisteredInvariants() []string { return registry.InvariantNames() }

// --- Exact offline optimum (tiny instances) ---

// SolveOptimal computes the exact minimal achievable max buffer load for a
// fixed injection pattern on a small path instance.
func SolveOptimal(cfg opt.Config) (opt.Result, error) { return opt.Solve(cfg) }

// OptConfig configures SolveOptimal.
type OptConfig = opt.Config

// OptResult is SolveOptimal's report.
type OptResult = opt.Result

// --- Reproduction suite ---

// Experiments returns the full reproduction suite (F1, E1–E13).
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID finds one experiment ("E1" … "E13", "F1").
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }

// BandwidthExperiment returns the E12 space-vs-bandwidth experiment with a
// custom link-bandwidth axis; the suite default is {1, 2, 4, 8}.
func BandwidthExperiment(bandwidths ...int) Experiment {
	return experiments.E12Bandwidth(bandwidths...)
}

// FaultsExperiment returns the E13 headroom-under-loss experiment with a
// custom drop-probability axis; the suite default is
// {0, 1/100, 1/20, 1/10, 1/4}.
func FaultsExperiment(dropProbs ...Rat) Experiment {
	return experiments.E13Faults(dropProbs...)
}

// RunAllExperiments executes the suite under ctx, writing tables to w; it
// reports whether every bound assertion held. Cancelling ctx aborts the
// suite between simulation rounds.
func RunAllExperiments(ctx context.Context, w io.Writer) (bool, error) {
	return experiments.RunAll(ctx, w)
}
