package metrics

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestWindowRingMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, capN := range []int{1, 3, 8, 64} {
		for _, n := range []int{0, 1, 5, 64, 200} {
			w := newWindow(capN)
			full := make([]int, n)
			var evictions []int
			for i := range full {
				full[i] = rng.Intn(50)
				if old, ev := w.push(full[i]); ev {
					evictions = append(evictions, old)
				}
			}
			want := full
			if len(want) > capN {
				want = want[len(want)-capN:]
			}
			got := w.values()
			if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("cap=%d n=%d: values=%v want %v", capN, n, got, want)
			}
			wantSum, wantMax := 0, 0
			for _, v := range want {
				wantSum += v
				if v > wantMax {
					wantMax = v
				}
			}
			if w.sum != wantSum || w.max() != wantMax {
				t.Fatalf("cap=%d n=%d: sum/max=%d/%d want %d/%d", capN, n, w.sum, w.max(), wantSum, wantMax)
			}
			wantEv := full[:max(0, n-capN)]
			if !reflect.DeepEqual(evictions, wantEv) && !(len(evictions) == 0 && len(wantEv) == 0) {
				t.Fatalf("cap=%d n=%d: evictions=%v want %v", capN, n, evictions, wantEv)
			}
			// quantile matches nearest-rank on the sorted window.
			if len(want) > 0 {
				sorted := append([]int(nil), want...)
				sort.Ints(sorted)
				for _, p := range []int{1, 50, 90, 99, 100} {
					rank := (p*len(sorted) + 50) / 100
					if rank < 1 {
						rank = 1
					}
					if rank > len(sorted) {
						rank = len(sorted)
					}
					if got := w.quantile(p); got != sorted[rank-1] {
						t.Fatalf("cap=%d n=%d p%d: got %d want %d", capN, n, p, got, sorted[rank-1])
					}
				}
			}
		}
	}
}

// endRound drives the collector's per-round finalization directly: the
// View argument is unused by OnRoundEnd.
func windowLoadRounds(c *WindowLoadCollector, maxima []int) {
	for _, m := range maxima {
		c.roundMax = m
		c.OnRoundEnd(0, nil)
	}
}

func TestWindowLoadExactWindowScalars(t *testing.T) {
	c := NewWindowLoad(4, 500)
	windowLoadRounds(c, []int{9, 1, 2, 3, 4, 5})
	s := c.Summarize()
	// Window holds the last 4 rounds: 2,3,4,5.
	want := map[string]int{
		"rounds":        6,
		"window":        4,
		"window_rounds": 4,
		"window_max":    5,
		// mean = (2+3+4+5)·1000/4
		"window_mean_millis": 3500,
		"window_p99":         5,
		// evictions: 9 (decayed once by the next eviction), then 1:
		// max(9000·500/1000, 1·1000) = 4500.
		"decayed_max_millis": 4500,
	}
	for k, v := range want {
		if s.Scalars[k] != v {
			t.Errorf("%s = %d, want %d (scalars %v)", k, s.Scalars[k], v, s.Scalars)
		}
	}
	if s.Kind != KindSeries || len(s.Series) != 1 {
		t.Fatalf("kind/series = %s/%d", s.Kind, len(s.Series))
	}
	rec := s.Series[0]
	if rec.Key != "window_max" || rec.Stride != 1 || rec.Rounds != 6 ||
		!reflect.DeepEqual(rec.Tail, []int{2, 3, 4, 5}) {
		t.Fatalf("series record %+v", rec)
	}
}

// TestWindowLoadSummarizeRepeatable pins the live-view requirement:
// Summarize is a pure snapshot, callable any number of times mid-run
// without perturbing subsequent rounds or the final record.
func TestWindowLoadSummarizeRepeatable(t *testing.T) {
	a, b := NewWindowLoad(8, 900), NewWindowLoad(8, 900)
	maxima := []int{5, 0, 7, 3, 3, 9, 1, 2, 2, 4, 6, 0}
	for i, m := range maxima {
		a.roundMax, b.roundMax = m, m
		a.OnRoundEnd(0, nil)
		b.OnRoundEnd(0, nil)
		if i%2 == 0 {
			s1, s2 := a.Summarize(), a.Summarize()
			if !reflect.DeepEqual(s1, s2) {
				t.Fatalf("round %d: repeated Summarize differs: %v vs %v", i, s1, s2)
			}
		}
	}
	if !reflect.DeepEqual(a.Summarize(), b.Summarize()) {
		t.Fatal("mid-run Summarize calls perturbed the final summary")
	}
}

func TestWindowLoadDecayMonotone(t *testing.T) {
	c := NewWindowLoad(2, 990)
	windowLoadRounds(c, []int{100, 0, 0})
	first := c.Summarize().Scalars["decayed_max_millis"]
	if first != 100_000 {
		t.Fatalf("first eviction: decayed = %d, want 100000", first)
	}
	windowLoadRounds(c, []int{0, 0, 0, 0})
	later := c.Summarize().Scalars["decayed_max_millis"]
	if later >= first || later <= 0 {
		t.Fatalf("decayed tail %d not strictly decaying from %d", later, first)
	}
}

func TestGoodputWindowScalars(t *testing.T) {
	c := NewGoodputWindow(2)
	inj := func(n int) []Injection { return make([]Injection, n) }
	// Round 0: 3 injected, 1 delivered, 1 dropped.
	c.OnInject(0, inj(3))
	c.OnForward(0, []Move{{Delivered: true}, {Dropped: true}, {}})
	c.OnRoundEnd(0, nil)
	// Round 1: 2 injected, 2 delivered.
	c.OnInject(1, inj(2))
	c.OnForward(1, []Move{{Delivered: true}, {Delivered: true}})
	c.OnRoundEnd(1, nil)
	// Round 2: 1 injected, 1 dropped — round 0 ages out of the window.
	c.OnInject(2, inj(1))
	c.OnForward(2, []Move{{Dropped: true}})
	c.OnRoundEnd(2, nil)
	s := c.Summarize()
	want := map[string]int{
		"rounds": 3, "window": 2, "window_rounds": 2,
		"injected": 6, "delivered": 3, "dropped": 2,
		"window_injected": 3, "window_delivered": 2, "window_dropped": 1,
		"goodput_window_permille": 2000 / 3,
		"drop_window_permille":    1000 / 3,
	}
	for k, v := range want {
		if s.Scalars[k] != v {
			t.Errorf("%s = %d, want %d", k, s.Scalars[k], v)
		}
	}
	if len(s.Series) != 2 ||
		!reflect.DeepEqual(s.Series[0].Tail, []int{2, 1}) ||
		!reflect.DeepEqual(s.Series[1].Tail, []int{2, 0}) {
		t.Fatalf("series %+v", s.Series)
	}
}

// TestWindowSummariesMerge pins that the windowed summaries participate
// in cross-run merges like any collector: scalars fold element-wise max
// and the merged record stays integer-only.
func TestWindowSummariesMerge(t *testing.T) {
	a := NewWindowLoad(4, 990)
	windowLoadRounds(a, []int{1, 2, 3})
	b := NewWindowLoad(4, 990)
	windowLoadRounds(b, []int{7, 0, 0})
	m, err := Merge(a.Summarize(), b.Summarize())
	if err != nil {
		t.Fatal(err)
	}
	if m.Scalars["window_max"] != 7 || m.Scalars["window_mean_millis"] != 2333 {
		t.Fatalf("merged scalars %v", m.Scalars)
	}
	if len(m.Series) != 0 {
		t.Fatalf("merged summary kept series %v (series are per-run)", m.Series)
	}
}
