package metrics

import "smallbuffers/internal/network"

// Registry names of the built-in collectors.
const (
	NameMaxLoad        = "max_load"
	NameLoadSeries     = "load_series"
	NameLoadHist       = "load_hist"
	NameLatency        = "latency"
	NameLinkUtilSeries = "link_util_series"
)

// MaxLoadCollector reproduces the engine's historical headline scalars:
// the maximum visible occupancy over all rounds and nodes (sampled at L_t
// and post-forwarding), the first node/round attaining it, the physical
// maximum including staged packets, and the per-node maxima. It is the
// source of Result.MaxLoad and friends — always on, whether selected or
// not.
type MaxLoadCollector struct {
	NopCollector
	maxLoad     int
	node        network.NodeID
	round       int
	maxPhysical int
	perNode     []int
}

// NewMaxLoad returns an empty max_load collector.
func NewMaxLoad() *MaxLoadCollector { return &MaxLoadCollector{} }

// Name implements Collector.
func (c *MaxLoadCollector) Name() string { return NameMaxLoad }

// OnSample implements Collector: fold the configuration's occupancies
// into the maxima. Strictly-greater updates locate the *first* maximum
// (lowest round, then lowest node), matching the engine's historical
// behavior exactly.
func (c *MaxLoadCollector) OnSample(round int, _ Point, v View) {
	n := v.Net().Len()
	if len(c.perNode) < n {
		c.perNode = append(c.perNode, make([]int, n-len(c.perNode))...)
	}
	for u := 0; u < n; u++ {
		load := v.Load(network.NodeID(u))
		if load > c.perNode[u] {
			c.perNode[u] = load
		}
		if load > c.maxLoad {
			c.maxLoad = load
			c.node = network.NodeID(u)
			c.round = round
		}
		if phys := load + v.Staged(network.NodeID(u)); phys > c.maxPhysical {
			c.maxPhysical = phys
		}
	}
}

// MaxLoad returns the maximum visible occupancy so far.
func (c *MaxLoadCollector) MaxLoad() int { return c.maxLoad }

// MaxLoadNode returns the node of the first maximum.
func (c *MaxLoadCollector) MaxLoadNode() network.NodeID { return c.node }

// MaxLoadRound returns the round of the first maximum.
func (c *MaxLoadCollector) MaxLoadRound() int { return c.round }

// MaxPhysicalLoad returns the maximum occupancy including staged packets.
func (c *MaxLoadCollector) MaxPhysicalLoad() int { return c.maxPhysical }

// PerNodeMax returns the per-node maxima (shared; callers must copy
// before mutating).
func (c *MaxLoadCollector) PerNodeMax() []int { return c.perNode }

// Summarize implements Collector. The summary anchors node/round on
// max_load, so cross-run merges keep the argmax position attributed to
// the run the grid maximum actually occurred in; max_physical_load is an
// independent maximum and merges element-wise.
func (c *MaxLoadCollector) Summarize() Summary {
	return Summary{Name: NameMaxLoad, Kind: KindScalar,
		Anchor: "max_load", Anchored: []string{"max_load_node", "max_load_round"},
		Scalars: map[string]int{
			"max_load":          c.maxLoad,
			"max_load_node":     int(c.node),
			"max_load_round":    c.round,
			"max_physical_load": c.maxPhysical,
		}}
}

// LoadSeriesCollector records occupancy behavior over time as two bounded
// series: "max" (the per-round maximum node occupancy, over both sample
// points) and "total" (the visible L_t occupancy summed over nodes).
// Memory stays O(cap) regardless of the horizon — small buffers for the
// simulator itself.
type LoadSeriesCollector struct {
	NopCollector
	maxSeries   *BoundedSeries
	totalSeries *BoundedSeries
	roundMax    int
	roundTotal  int
}

// NewLoadSeries returns a load_series collector bounded to capPoints
// downsampled points and a tailCap-round exact tail per series.
func NewLoadSeries(capPoints, tailCap int) *LoadSeriesCollector {
	return &LoadSeriesCollector{
		maxSeries:   NewBoundedSeries("max", AggMax, capPoints, tailCap),
		totalSeries: NewBoundedSeries("total", AggMax, capPoints, tailCap),
	}
}

// Name implements Collector.
func (c *LoadSeriesCollector) Name() string { return NameLoadSeries }

// OnSample implements Collector.
func (c *LoadSeriesCollector) OnSample(_ int, p Point, v View) {
	n := v.Net().Len()
	total := 0
	for u := 0; u < n; u++ {
		load := v.Load(network.NodeID(u))
		if load > c.roundMax {
			c.roundMax = load
		}
		total += load
	}
	if p == LT {
		c.roundTotal = total
	}
}

// OnRoundEnd implements Collector: finalize the round's points.
func (c *LoadSeriesCollector) OnRoundEnd(int, View) {
	c.maxSeries.Append(c.roundMax)
	c.totalSeries.Append(c.roundTotal)
	c.roundMax, c.roundTotal = 0, 0
}

// Summarize implements Collector.
func (c *LoadSeriesCollector) Summarize() Summary {
	return Summary{Name: NameLoadSeries, Kind: KindSeries,
		Series: []SeriesRecord{c.maxSeries.Record(), c.totalSeries.Record()}}
}

// LoadHistCollector accumulates the occupancy distribution: every node's
// visible load at the paper's measurement point L_t, every round — n·T
// samples in O(1) memory. Where the max_load collector answers "how bad
// did it get", the histogram answers "how bad is it usually" (the lens
// of the buffer-sizing literature).
type LoadHistCollector struct {
	NopCollector
	hist *Hist
}

// NewLoadHist returns an empty load_hist collector.
func NewLoadHist() *LoadHistCollector { return &LoadHistCollector{hist: NewHist()} }

// Name implements Collector.
func (c *LoadHistCollector) Name() string { return NameLoadHist }

// OnSample implements Collector: fold every node's L_t occupancy.
func (c *LoadHistCollector) OnSample(_ int, p Point, v View) {
	if p != LT {
		return
	}
	n := v.Net().Len()
	for u := 0; u < n; u++ {
		c.hist.Add(v.Load(network.NodeID(u)))
	}
}

// Summarize implements Collector.
func (c *LoadHistCollector) Summarize() Summary {
	rec := c.hist.Record()
	return Summary{Name: NameLoadHist, Kind: KindHist, Hist: rec, Scalars: map[string]int{
		"p50": rec.Quantile(50),
		"p90": rec.Quantile(90),
		"p99": rec.Quantile(99),
	}}
}

// LatencyCollector accumulates the delivery-latency distribution
// (delivery round − injection round, per delivered packet) with exact
// count/sum/max and histogram-derived percentiles. It is the source of
// Result.MaxLatency and Result.TotalLatency — always on, whether
// selected or not.
//
// An optional exact window (NewLatencyWindowed) additionally tracks the
// last N rounds of deliveries — recent count/sum/max and the windowed
// mean in per-mille — plus an exponentially decayed maximum of rounds
// that have aged out, the same recent-history lens window_load applies
// to occupancy. With the window off the collector is byte-identical to
// its unwindowed form.
type LatencyCollector struct {
	NopCollector
	hist *Hist

	// Window state, all nil/zero when the window is disabled. The three
	// rings hold per-round delivery count, latency sum, and latency max.
	cntWin        *window
	sumWin        *window
	maxWin        *window
	decayPermille int
	roundCount    int
	roundSum      int
	roundMax      int
	decayedMillis int // fixed-point (×1000) decayed max of evicted rounds
}

// NewLatency returns an empty latency collector.
func NewLatency() *LatencyCollector { return &LatencyCollector{hist: NewHist()} }

// NewLatencyWindowed returns a latency collector that also keeps an
// exact window over the last windowRounds rounds, with the beyond-window
// decayed maximum retaining decayPermille/1000 per subsequent round.
// windowRounds < 1 disables the window entirely (identical to
// NewLatency). The window scalars are per-run views: cross-cell merges
// re-derive hist summaries from the merged buckets and drop them.
func NewLatencyWindowed(windowRounds, decayPermille int) *LatencyCollector {
	c := NewLatency()
	if windowRounds < 1 {
		return c
	}
	if decayPermille < 0 {
		decayPermille = 0
	}
	if decayPermille > 1000 {
		decayPermille = 1000
	}
	c.cntWin = newWindow(windowRounds)
	c.sumWin = newWindow(windowRounds)
	c.maxWin = newWindow(windowRounds)
	c.decayPermille = decayPermille
	return c
}

// Name implements Collector.
func (c *LatencyCollector) Name() string { return NameLatency }

// OnForward implements Collector: fold delivered moves.
func (c *LatencyCollector) OnForward(round int, moves []Move) {
	for _, m := range moves {
		if m.Delivered {
			lat := round - m.Inject
			c.hist.Add(lat)
			if c.cntWin != nil {
				c.roundCount++
				c.roundSum += lat
				if lat > c.roundMax {
					c.roundMax = lat
				}
			}
		}
	}
}

// OnRoundEnd implements Collector: with the window on, the round's
// delivery stats enter the rings and whatever the max ring evicts decays
// into the tail (same fixed-point rule as window_load).
func (c *LatencyCollector) OnRoundEnd(int, View) {
	if c.cntWin == nil {
		return
	}
	c.cntWin.push(c.roundCount)
	c.sumWin.push(c.roundSum)
	if old, evicted := c.maxWin.push(c.roundMax); evicted {
		c.decayedMillis = max(c.decayedMillis*c.decayPermille/1000, old*1000)
	}
	c.roundCount, c.roundSum, c.roundMax = 0, 0, 0
}

// Count returns the number of recorded deliveries.
func (c *LatencyCollector) Count() int { return c.hist.Count() }

// MaxLatency returns the exact maximum delivery latency.
func (c *LatencyCollector) MaxLatency() int { return c.hist.Max() }

// TotalLatency returns the exact sum of delivery latencies.
func (c *LatencyCollector) TotalLatency() int { return c.hist.Sum() }

// Quantile returns the p-th latency percentile, p an integer percent
// (see HistRecord.Quantile).
func (c *LatencyCollector) Quantile(p int) int { return c.hist.Quantile(p) }

// Summarize implements Collector. With the window on, the window_*
// scalars cover deliveries in the last window_rounds rounds exactly
// (window_mean_millis is the windowed mean latency ×1000) and
// decayed_max_millis is the ×1000 decayed maximum of everything older.
func (c *LatencyCollector) Summarize() Summary {
	rec := c.hist.Record()
	scalars := map[string]int{
		"count": rec.Count,
		"sum":   rec.Sum,
		"max":   rec.Max,
		"p50":   rec.Quantile(50),
		"p90":   rec.Quantile(90),
		"p99":   rec.Quantile(99),
	}
	if c.cntWin != nil {
		scalars["window"] = len(c.cntWin.buf)
		scalars["window_rounds"] = c.cntWin.n
		scalars["window_count"] = c.cntWin.sum
		scalars["window_sum"] = c.sumWin.sum
		scalars["window_max"] = c.maxWin.max()
		scalars["window_mean_millis"] = permille(c.sumWin.sum, c.cntWin.sum)
		scalars["decayed_max_millis"] = c.decayedMillis
	}
	return Summary{Name: NameLatency, Kind: KindHist, Hist: rec, Scalars: scalars}
}

// LinkUtilCollector records link activity over time: a bounded "forwards"
// series (packets forwarded per round, summed when downsampled, so every
// point is an exact interval total) plus the busiest link by utilization
// (total forwards relative to the link's rounds × bandwidth budget; ties
// break to the lowest NodeID, matching Result.MaxLinkUtilization).
//
// An optional exact window (NewLinkUtilSeriesWindowed) additionally
// tracks forwards over the last N rounds plus a decayed maximum of
// older rounds. With the window off the collector is byte-identical to
// its unwindowed form.
type LinkUtilCollector struct {
	NopCollector
	series        *BoundedSeries
	roundForwards int
	perLink       []int
	bandwidths    []int
	hasLink       []bool

	// Window state, nil/zero when the window is disabled.
	fwdWin        *window
	decayPermille int
	decayedMillis int // fixed-point (×1000) decayed max of evicted rounds
}

// NewLinkUtilSeries returns a link_util_series collector bounded to
// capPoints downsampled points and a tailCap-round exact tail.
func NewLinkUtilSeries(capPoints, tailCap int) *LinkUtilCollector {
	return &LinkUtilCollector{series: NewBoundedSeries("forwards", AggSum, capPoints, tailCap)}
}

// NewLinkUtilSeriesWindowed returns a link_util_series collector that
// also keeps an exact per-round forwards window over the last
// windowRounds rounds, with the beyond-window decayed maximum retaining
// decayPermille/1000 per subsequent round. windowRounds < 1 disables
// the window entirely (identical to NewLinkUtilSeries).
func NewLinkUtilSeriesWindowed(capPoints, tailCap, windowRounds, decayPermille int) *LinkUtilCollector {
	c := NewLinkUtilSeries(capPoints, tailCap)
	if windowRounds < 1 {
		return c
	}
	if decayPermille < 0 {
		decayPermille = 0
	}
	if decayPermille > 1000 {
		decayPermille = 1000
	}
	c.fwdWin = newWindow(windowRounds)
	c.decayPermille = decayPermille
	return c
}

// Name implements Collector.
func (c *LinkUtilCollector) Name() string { return NameLinkUtilSeries }

// OnSample implements Collector: capture the link structure once.
func (c *LinkUtilCollector) OnSample(_ int, p Point, v View) {
	if c.perLink != nil || p != LT {
		return
	}
	n := v.Net().Len()
	c.perLink = make([]int, n)
	c.bandwidths = make([]int, n)
	c.hasLink = make([]bool, n)
	for u := 0; u < n; u++ {
		if v.Net().Next(network.NodeID(u)) != network.None {
			c.hasLink[u] = true
			c.bandwidths[u] = v.Bandwidth(network.NodeID(u))
		}
	}
}

// OnForward implements Collector.
func (c *LinkUtilCollector) OnForward(_ int, moves []Move) {
	c.roundForwards += len(moves)
	for _, m := range moves {
		if int(m.From) < len(c.perLink) {
			c.perLink[m.From]++
		}
	}
}

// OnRoundEnd implements Collector.
func (c *LinkUtilCollector) OnRoundEnd(int, View) {
	c.series.Append(c.roundForwards)
	if c.fwdWin != nil {
		if old, evicted := c.fwdWin.push(c.roundForwards); evicted {
			c.decayedMillis = max(c.decayedMillis*c.decayPermille/1000, old*1000)
		}
	}
	c.roundForwards = 0
}

// Summarize implements Collector. busiest_link is −1 when the topology
// has no links or nothing was forwarded. The summary anchors the
// busiest-link identity on busiest_forwards, so cross-run merges report
// one coherent link picture (the run with the most-loaded busiest link)
// while total_forwards merges element-wise.
func (c *LinkUtilCollector) Summarize() Summary {
	busiest, total := -1, 0
	for u, f := range c.perLink {
		total += f
		if f == 0 || !c.hasLink[u] {
			continue
		}
		// Compare utilizations f/B exactly by cross-multiplication (the
		// shared rounds factor cancels); strict inequality keeps the
		// lowest NodeID on ties.
		if busiest < 0 || f*c.bandwidths[busiest] > c.perLink[busiest]*c.bandwidths[u] {
			busiest = u
		}
	}
	scalars := map[string]int{
		"busiest_link":   busiest,
		"total_forwards": total,
	}
	if busiest >= 0 {
		scalars["busiest_forwards"] = c.perLink[busiest]
		scalars["busiest_bandwidth"] = c.bandwidths[busiest]
	}
	if c.fwdWin != nil {
		// Windowed forwards: exact over the last window_rounds rounds,
		// mean ×1000, and the decayed maximum of older rounds. These
		// merge element-wise by maximum like every unanchored scalar.
		scalars["window"] = len(c.fwdWin.buf)
		scalars["window_rounds"] = c.fwdWin.n
		scalars["window_forwards"] = c.fwdWin.sum
		scalars["window_max"] = c.fwdWin.max()
		scalars["window_mean_millis"] = c.fwdWin.meanMillis()
		scalars["decayed_max_millis"] = c.decayedMillis
	}
	return Summary{Name: NameLinkUtilSeries, Kind: KindSeries,
		Anchor: "busiest_forwards", Anchored: []string{"busiest_link", "busiest_bandwidth"},
		Scalars: scalars, Series: []SeriesRecord{c.series.Record()}}
}
