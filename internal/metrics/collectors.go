package metrics

import "smallbuffers/internal/network"

// Registry names of the built-in collectors.
const (
	NameMaxLoad        = "max_load"
	NameLoadSeries     = "load_series"
	NameLoadHist       = "load_hist"
	NameLatency        = "latency"
	NameLinkUtilSeries = "link_util_series"
)

// MaxLoadCollector reproduces the engine's historical headline scalars:
// the maximum visible occupancy over all rounds and nodes (sampled at L_t
// and post-forwarding), the first node/round attaining it, the physical
// maximum including staged packets, and the per-node maxima. It is the
// source of Result.MaxLoad and friends — always on, whether selected or
// not.
type MaxLoadCollector struct {
	NopCollector
	maxLoad     int
	node        network.NodeID
	round       int
	maxPhysical int
	perNode     []int
}

// NewMaxLoad returns an empty max_load collector.
func NewMaxLoad() *MaxLoadCollector { return &MaxLoadCollector{} }

// Name implements Collector.
func (c *MaxLoadCollector) Name() string { return NameMaxLoad }

// OnSample implements Collector: fold the configuration's occupancies
// into the maxima. Strictly-greater updates locate the *first* maximum
// (lowest round, then lowest node), matching the engine's historical
// behavior exactly.
func (c *MaxLoadCollector) OnSample(round int, _ Point, v View) {
	n := v.Net().Len()
	if len(c.perNode) < n {
		c.perNode = append(c.perNode, make([]int, n-len(c.perNode))...)
	}
	for u := 0; u < n; u++ {
		load := v.Load(network.NodeID(u))
		if load > c.perNode[u] {
			c.perNode[u] = load
		}
		if load > c.maxLoad {
			c.maxLoad = load
			c.node = network.NodeID(u)
			c.round = round
		}
		if phys := load + v.Staged(network.NodeID(u)); phys > c.maxPhysical {
			c.maxPhysical = phys
		}
	}
}

// MaxLoad returns the maximum visible occupancy so far.
func (c *MaxLoadCollector) MaxLoad() int { return c.maxLoad }

// MaxLoadNode returns the node of the first maximum.
func (c *MaxLoadCollector) MaxLoadNode() network.NodeID { return c.node }

// MaxLoadRound returns the round of the first maximum.
func (c *MaxLoadCollector) MaxLoadRound() int { return c.round }

// MaxPhysicalLoad returns the maximum occupancy including staged packets.
func (c *MaxLoadCollector) MaxPhysicalLoad() int { return c.maxPhysical }

// PerNodeMax returns the per-node maxima (shared; callers must copy
// before mutating).
func (c *MaxLoadCollector) PerNodeMax() []int { return c.perNode }

// Summarize implements Collector. The summary anchors node/round on
// max_load, so cross-run merges keep the argmax position attributed to
// the run the grid maximum actually occurred in; max_physical_load is an
// independent maximum and merges element-wise.
func (c *MaxLoadCollector) Summarize() Summary {
	return Summary{Name: NameMaxLoad, Kind: KindScalar,
		Anchor: "max_load", Anchored: []string{"max_load_node", "max_load_round"},
		Scalars: map[string]int{
			"max_load":          c.maxLoad,
			"max_load_node":     int(c.node),
			"max_load_round":    c.round,
			"max_physical_load": c.maxPhysical,
		}}
}

// LoadSeriesCollector records occupancy behavior over time as two bounded
// series: "max" (the per-round maximum node occupancy, over both sample
// points) and "total" (the visible L_t occupancy summed over nodes).
// Memory stays O(cap) regardless of the horizon — small buffers for the
// simulator itself.
type LoadSeriesCollector struct {
	NopCollector
	maxSeries   *BoundedSeries
	totalSeries *BoundedSeries
	roundMax    int
	roundTotal  int
}

// NewLoadSeries returns a load_series collector bounded to capPoints
// downsampled points and a tailCap-round exact tail per series.
func NewLoadSeries(capPoints, tailCap int) *LoadSeriesCollector {
	return &LoadSeriesCollector{
		maxSeries:   NewBoundedSeries("max", AggMax, capPoints, tailCap),
		totalSeries: NewBoundedSeries("total", AggMax, capPoints, tailCap),
	}
}

// Name implements Collector.
func (c *LoadSeriesCollector) Name() string { return NameLoadSeries }

// OnSample implements Collector.
func (c *LoadSeriesCollector) OnSample(_ int, p Point, v View) {
	n := v.Net().Len()
	total := 0
	for u := 0; u < n; u++ {
		load := v.Load(network.NodeID(u))
		if load > c.roundMax {
			c.roundMax = load
		}
		total += load
	}
	if p == LT {
		c.roundTotal = total
	}
}

// OnRoundEnd implements Collector: finalize the round's points.
func (c *LoadSeriesCollector) OnRoundEnd(int, View) {
	c.maxSeries.Append(c.roundMax)
	c.totalSeries.Append(c.roundTotal)
	c.roundMax, c.roundTotal = 0, 0
}

// Summarize implements Collector.
func (c *LoadSeriesCollector) Summarize() Summary {
	return Summary{Name: NameLoadSeries, Kind: KindSeries,
		Series: []SeriesRecord{c.maxSeries.Record(), c.totalSeries.Record()}}
}

// LoadHistCollector accumulates the occupancy distribution: every node's
// visible load at the paper's measurement point L_t, every round — n·T
// samples in O(1) memory. Where the max_load collector answers "how bad
// did it get", the histogram answers "how bad is it usually" (the lens
// of the buffer-sizing literature).
type LoadHistCollector struct {
	NopCollector
	hist *Hist
}

// NewLoadHist returns an empty load_hist collector.
func NewLoadHist() *LoadHistCollector { return &LoadHistCollector{hist: NewHist()} }

// Name implements Collector.
func (c *LoadHistCollector) Name() string { return NameLoadHist }

// OnSample implements Collector: fold every node's L_t occupancy.
func (c *LoadHistCollector) OnSample(_ int, p Point, v View) {
	if p != LT {
		return
	}
	n := v.Net().Len()
	for u := 0; u < n; u++ {
		c.hist.Add(v.Load(network.NodeID(u)))
	}
}

// Summarize implements Collector.
func (c *LoadHistCollector) Summarize() Summary {
	rec := c.hist.Record()
	return Summary{Name: NameLoadHist, Kind: KindHist, Hist: rec, Scalars: map[string]int{
		"p50": rec.Quantile(50),
		"p90": rec.Quantile(90),
		"p99": rec.Quantile(99),
	}}
}

// LatencyCollector accumulates the delivery-latency distribution
// (delivery round − injection round, per delivered packet) with exact
// count/sum/max and histogram-derived percentiles. It is the source of
// Result.MaxLatency and Result.TotalLatency — always on, whether
// selected or not.
type LatencyCollector struct {
	NopCollector
	hist *Hist
}

// NewLatency returns an empty latency collector.
func NewLatency() *LatencyCollector { return &LatencyCollector{hist: NewHist()} }

// Name implements Collector.
func (c *LatencyCollector) Name() string { return NameLatency }

// OnForward implements Collector: fold delivered moves.
func (c *LatencyCollector) OnForward(round int, moves []Move) {
	for _, m := range moves {
		if m.Delivered {
			c.hist.Add(round - m.Inject)
		}
	}
}

// Count returns the number of recorded deliveries.
func (c *LatencyCollector) Count() int { return c.hist.Count() }

// MaxLatency returns the exact maximum delivery latency.
func (c *LatencyCollector) MaxLatency() int { return c.hist.Max() }

// TotalLatency returns the exact sum of delivery latencies.
func (c *LatencyCollector) TotalLatency() int { return c.hist.Sum() }

// Quantile returns the p-th latency percentile, p an integer percent
// (see HistRecord.Quantile).
func (c *LatencyCollector) Quantile(p int) int { return c.hist.Quantile(p) }

// Summarize implements Collector.
func (c *LatencyCollector) Summarize() Summary {
	rec := c.hist.Record()
	return Summary{Name: NameLatency, Kind: KindHist, Hist: rec, Scalars: map[string]int{
		"count": rec.Count,
		"sum":   rec.Sum,
		"max":   rec.Max,
		"p50":   rec.Quantile(50),
		"p90":   rec.Quantile(90),
		"p99":   rec.Quantile(99),
	}}
}

// LinkUtilCollector records link activity over time: a bounded "forwards"
// series (packets forwarded per round, summed when downsampled, so every
// point is an exact interval total) plus the busiest link by utilization
// (total forwards relative to the link's rounds × bandwidth budget; ties
// break to the lowest NodeID, matching Result.MaxLinkUtilization).
type LinkUtilCollector struct {
	NopCollector
	series        *BoundedSeries
	roundForwards int
	perLink       []int
	bandwidths    []int
	hasLink       []bool
}

// NewLinkUtilSeries returns a link_util_series collector bounded to
// capPoints downsampled points and a tailCap-round exact tail.
func NewLinkUtilSeries(capPoints, tailCap int) *LinkUtilCollector {
	return &LinkUtilCollector{series: NewBoundedSeries("forwards", AggSum, capPoints, tailCap)}
}

// Name implements Collector.
func (c *LinkUtilCollector) Name() string { return NameLinkUtilSeries }

// OnSample implements Collector: capture the link structure once.
func (c *LinkUtilCollector) OnSample(_ int, p Point, v View) {
	if c.perLink != nil || p != LT {
		return
	}
	n := v.Net().Len()
	c.perLink = make([]int, n)
	c.bandwidths = make([]int, n)
	c.hasLink = make([]bool, n)
	for u := 0; u < n; u++ {
		if v.Net().Next(network.NodeID(u)) != network.None {
			c.hasLink[u] = true
			c.bandwidths[u] = v.Bandwidth(network.NodeID(u))
		}
	}
}

// OnForward implements Collector.
func (c *LinkUtilCollector) OnForward(_ int, moves []Move) {
	c.roundForwards += len(moves)
	for _, m := range moves {
		if int(m.From) < len(c.perLink) {
			c.perLink[m.From]++
		}
	}
}

// OnRoundEnd implements Collector.
func (c *LinkUtilCollector) OnRoundEnd(int, View) {
	c.series.Append(c.roundForwards)
	c.roundForwards = 0
}

// Summarize implements Collector. busiest_link is −1 when the topology
// has no links or nothing was forwarded. The summary anchors the
// busiest-link identity on busiest_forwards, so cross-run merges report
// one coherent link picture (the run with the most-loaded busiest link)
// while total_forwards merges element-wise.
func (c *LinkUtilCollector) Summarize() Summary {
	busiest, total := -1, 0
	for u, f := range c.perLink {
		total += f
		if f == 0 || !c.hasLink[u] {
			continue
		}
		// Compare utilizations f/B exactly by cross-multiplication (the
		// shared rounds factor cancels); strict inequality keeps the
		// lowest NodeID on ties.
		if busiest < 0 || f*c.bandwidths[busiest] > c.perLink[busiest]*c.bandwidths[u] {
			busiest = u
		}
	}
	scalars := map[string]int{
		"busiest_link":   busiest,
		"total_forwards": total,
	}
	if busiest >= 0 {
		scalars["busiest_forwards"] = c.perLink[busiest]
		scalars["busiest_bandwidth"] = c.bandwidths[busiest]
	}
	return Summary{Name: NameLinkUtilSeries, Kind: KindSeries,
		Anchor: "busiest_forwards", Anchored: []string{"busiest_link", "busiest_bandwidth"},
		Scalars: scalars, Series: []SeriesRecord{c.series.Record()}}
}
