package metrics

import (
	"sort"

	"smallbuffers/internal/network"
)

// Registry names of the flow collectors (the fault-aware measurement
// family plus the injection-side concentration probe).
const (
	NameDropRate               = "drop_rate"
	NameGoodput                = "goodput"
	NameDelivery               = "delivery"
	NameInjectionConcentration = "injection_concentration"
)

// permille returns ⌊part·1000/whole⌋, the package's exact integer stand-in
// for a ratio (0 when whole is 0).
func permille(part, whole int) int {
	if whole == 0 {
		return 0
	}
	return part * 1000 / whole
}

// DropRateCollector measures the run's loss process: packets forwarded,
// packets lost in transit, and the per-round drop counts as a bounded
// series. Without a fault model every scalar is zero and the series is
// flat — the collector is fault-aware, not fault-requiring.
type DropRateCollector struct {
	NopCollector
	series     *BoundedSeries
	roundDrops int
	forwards   int
	dropped    int
}

// NewDropRate returns a drop_rate collector bounded to capPoints
// downsampled points and a tailCap-round exact tail.
func NewDropRate(capPoints, tailCap int) *DropRateCollector {
	return &DropRateCollector{series: NewBoundedSeries("drops", AggSum, capPoints, tailCap)}
}

// Name implements Collector.
func (c *DropRateCollector) Name() string { return NameDropRate }

// OnForward implements Collector.
func (c *DropRateCollector) OnForward(_ int, moves []Move) {
	c.forwards += len(moves)
	for _, m := range moves {
		if m.Dropped {
			c.roundDrops++
			c.dropped++
		}
	}
}

// OnRoundEnd implements Collector.
func (c *DropRateCollector) OnRoundEnd(int, View) {
	c.series.Append(c.roundDrops)
	c.roundDrops = 0
}

// Summarize implements Collector. drop_permille is ⌊dropped·1000/forwards⌋
// — on cross-run merges it maxes element-wise like any scalar, so an
// aggregate reports the worst per-run loss rate, not a re-derived ratio.
func (c *DropRateCollector) Summarize() Summary {
	return Summary{Name: NameDropRate, Kind: KindSeries,
		Scalars: map[string]int{
			"forwards":      c.forwards,
			"dropped":       c.dropped,
			"drop_permille": permille(c.dropped, c.forwards),
		},
		Series: []SeriesRecord{c.series.Record()}}
}

// GoodputCollector measures delivered-versus-injected flow: exact totals
// plus per-round bounded series of both, so the delivery curve can be laid
// over the injection curve. goodput_permille = ⌊delivered·1000/injected⌋
// is the run's throughput efficiency; under loss it falls below 1000 by
// the residual backlog plus everything the fault model ate.
type GoodputCollector struct {
	NopCollector
	injSeries      *BoundedSeries
	delSeries      *BoundedSeries
	roundInjected  int
	roundDelivered int
	injected       int
	delivered      int
}

// NewGoodput returns a goodput collector bounded to capPoints downsampled
// points and a tailCap-round exact tail per series.
func NewGoodput(capPoints, tailCap int) *GoodputCollector {
	return &GoodputCollector{
		injSeries: NewBoundedSeries("injected", AggSum, capPoints, tailCap),
		delSeries: NewBoundedSeries("delivered", AggSum, capPoints, tailCap),
	}
}

// Name implements Collector.
func (c *GoodputCollector) Name() string { return NameGoodput }

// OnInject implements Collector.
func (c *GoodputCollector) OnInject(_ int, injs []Injection) {
	c.roundInjected += len(injs)
	c.injected += len(injs)
}

// OnForward implements Collector.
func (c *GoodputCollector) OnForward(_ int, moves []Move) {
	for _, m := range moves {
		if m.Delivered {
			c.roundDelivered++
			c.delivered++
		}
	}
}

// OnRoundEnd implements Collector.
func (c *GoodputCollector) OnRoundEnd(int, View) {
	c.injSeries.Append(c.roundInjected)
	c.delSeries.Append(c.roundDelivered)
	c.roundInjected, c.roundDelivered = 0, 0
}

// Summarize implements Collector.
func (c *GoodputCollector) Summarize() Summary {
	return Summary{Name: NameGoodput, Kind: KindSeries,
		Scalars: map[string]int{
			"injected":         c.injected,
			"delivered":        c.delivered,
			"goodput_permille": permille(c.delivered, c.injected),
		},
		Series: []SeriesRecord{c.injSeries.Record(), c.delSeries.Record()}}
}

// DeliveryCollector is the conservation ledger: every injected packet is
// delivered, dropped, or still in flight, and the three counts always sum
// to injected. It is the cheapest way to see where a run's packets went.
type DeliveryCollector struct {
	NopCollector
	injected  int
	delivered int
	dropped   int
}

// NewDelivery returns an empty delivery collector.
func NewDelivery() *DeliveryCollector { return &DeliveryCollector{} }

// Name implements Collector.
func (c *DeliveryCollector) Name() string { return NameDelivery }

// OnInject implements Collector.
func (c *DeliveryCollector) OnInject(_ int, injs []Injection) { c.injected += len(injs) }

// OnForward implements Collector.
func (c *DeliveryCollector) OnForward(_ int, moves []Move) {
	for _, m := range moves {
		switch {
		case m.Delivered:
			c.delivered++
		case m.Dropped:
			c.dropped++
		}
	}
}

// Summarize implements Collector.
func (c *DeliveryCollector) Summarize() Summary {
	return Summary{Name: NameDelivery, Kind: KindScalar,
		Scalars: map[string]int{
			"injected":  c.injected,
			"delivered": c.delivered,
			"dropped":   c.dropped,
			"in_flight": c.injected - c.delivered - c.dropped,
		}}
}

// InjectionConcentrationCollector rides the OnInject hook to profile the
// adversary's spatial pattern: how many distinct sources inject, which
// source receives the most traffic, and what fraction of all injections
// lands there. A burst adversary concentrates near 1000‰ on one node; a
// uniform random one spreads toward 1000/n.
type InjectionConcentrationCollector struct {
	NopCollector
	perSource map[network.NodeID]int
	total     int
}

// NewInjectionConcentration returns an empty injection_concentration
// collector.
func NewInjectionConcentration() *InjectionConcentrationCollector {
	return &InjectionConcentrationCollector{perSource: make(map[network.NodeID]int)}
}

// Name implements Collector.
func (c *InjectionConcentrationCollector) Name() string { return NameInjectionConcentration }

// OnInject implements Collector.
func (c *InjectionConcentrationCollector) OnInject(_ int, injs []Injection) {
	for _, in := range injs {
		c.perSource[in.Src]++
		c.total += 1
	}
}

// Summarize implements Collector. top_source is −1 when nothing was
// injected; ties break to the lowest NodeID so the summary is
// deterministic. The summary anchors top_source on top_count, keeping the
// argmax attributed to the run it occurred in across merges.
func (c *InjectionConcentrationCollector) Summarize() Summary {
	// Iterate sources in sorted order: the argmax itself is
	// order-independent, but digest-path map loops are banned wholesale
	// (detmap), and ascending ids make the lowest-NodeID tie-break fall
	// out of the strict comparison.
	srcs := make([]network.NodeID, 0, len(c.perSource))
	for src := range c.perSource {
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	top, topCount := network.NodeID(-1), 0
	for _, src := range srcs {
		if n := c.perSource[src]; n > topCount {
			top, topCount = src, n
		}
	}
	return Summary{Name: NameInjectionConcentration, Kind: KindScalar,
		Anchor: "top_count", Anchored: []string{"top_source"},
		Scalars: map[string]int{
			"total":                  c.total,
			"distinct_sources":       len(c.perSource),
			"top_source":             int(top),
			"top_count":              topCount,
			"concentration_permille": permille(topCount, c.total),
		}}
}
