package metrics

import (
	"sort"
	"testing"
)

// naiveNearestRank is the reference rule the integer Quantile must match
// in the exact range: sort the sample, take the round-half-up nearest
// rank of p·n/100 (clamped to [1, n]), return that order statistic.
func naiveNearestRank(sample []int, p int) int {
	if len(sample) == 0 {
		return 0
	}
	s := append([]int(nil), sample...)
	sort.Ints(s)
	rank := (p*len(s) + 50) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// TestQuantileIntegerPinned pins the integer nearest-rank quantile at the
// boundary cases the old float formula (int(p/100·count + 0.5)) computed
// via float64 — the regression guard for the FMA-reproducibility rewrite:
// the values below are the exact integers every platform must produce.
func TestQuantileIntegerPinned(t *testing.T) {
	cases := []struct {
		name   string
		sample []int
		p      int
		want   int
	}{
		{"empty", nil, 50, 0},
		{"single p0", []int{7}, 0, 7},
		{"single p100", []int{7}, 100, 7},
		{"median odd", []int{1, 2, 3, 4, 5}, 50, 3},
		{"median even rounds up", []int{1, 2, 3, 4}, 50, 2},
		{"p99 of 100", pairs(0, 50), 99, 49},
		{"p100 of 100", pairs(0, 50), 100, 49},
		{"p0 clamps to first", pairs(0, 50), 0, 0},
		{"p90 of 10", seq(1, 11), 90, 9},
		{"p50 of 2", []int{10, 20}, 50, 10},
		{"log2 tail lower bound", []int{100}, 50, 64},
		{"log2 second bucket", []int{70, 200}, 100, 128},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHist()
			for _, v := range tc.sample {
				h.Add(v)
			}
			if got := h.Quantile(tc.p); got != tc.want {
				t.Errorf("Quantile(%d) over %v = %d, want %d", tc.p, tc.sample, got, tc.want)
			}
		})
	}
}

// TestQuantileMatchesNearestRankExactRange sweeps every whole percent
// over assorted exact-range samples and checks the histogram quantile
// equals the reference nearest-rank order statistic.
func TestQuantileMatchesNearestRankExactRange(t *testing.T) {
	samples := [][]int{
		seq(0, 1), seq(0, 2), seq(0, 3), seq(0, 7),
		seq(0, 63), seq(1, 50),
		{0, 0, 0, 1, 1, 5, 5, 5, 5, 9},
		{63, 63, 63},
	}
	for _, sample := range samples {
		h := NewHist()
		for _, v := range sample {
			h.Add(v)
		}
		for p := 0; p <= 100; p++ {
			want := naiveNearestRank(sample, p)
			if got := h.Quantile(p); got != want {
				t.Fatalf("sample %v: Quantile(%d) = %d, want %d", sample, p, got, want)
			}
		}
	}
}

// seq returns [lo, hi) as a slice.
func seq(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for v := lo; v < hi; v++ {
		out = append(out, v)
	}
	return out
}

// pairs returns each value of [lo, hi) twice — 2·(hi−lo) samples that
// stay inside the histogram's exact range.
func pairs(lo, hi int) []int {
	out := make([]int, 0, 2*(hi-lo))
	for v := lo; v < hi; v++ {
		out = append(out, v, v)
	}
	return out
}
