package metrics

import (
	"reflect"
	"testing"
)

// deliver emits one delivered move with the given latency at round r.
func deliver(c Collector, r, lat int) {
	c.OnForward(r, []Move{{Delivered: true, Inject: r - lat}})
}

func TestLatencyWindowedScalars(t *testing.T) {
	c := NewLatencyWindowed(2, 500)
	// Round 0: latencies 5, 3. Round 1: latency 10. Round 2: 1, 1.
	deliver(c, 0, 5)
	deliver(c, 0, 3)
	c.OnRoundEnd(0, nil)
	deliver(c, 1, 10)
	c.OnRoundEnd(1, nil)
	deliver(c, 2, 1)
	deliver(c, 2, 1)
	c.OnRoundEnd(2, nil)

	s := c.Summarize()
	want := map[string]int{
		// The whole-run histogram is untouched by the window.
		"count": 5, "sum": 20, "max": 10,
		// Window covers rounds 1..2: 3 deliveries, latencies 10,1,1.
		"window": 2, "window_rounds": 2,
		"window_count": 3, "window_sum": 12, "window_max": 10,
		"window_mean_millis": 4000,
		// Round 0 aged out with per-round max 5: max(0·500/1000, 5000).
		"decayed_max_millis": 5000,
	}
	for k, v := range want {
		if s.Scalars[k] != v {
			t.Errorf("%s = %d, want %d (scalars %v)", k, s.Scalars[k], v, s.Scalars)
		}
	}
	if s.Kind != KindHist || s.Hist == nil || s.Hist.Count != 5 {
		t.Fatalf("windowed latency changed the hist payload: %+v", s)
	}
}

// TestLatencyWindowOffIdentical pins the compatibility contract: window=0
// is byte-identical to the unwindowed collector, so every pinned corpus
// digest that selects latency without params survives the new schema.
func TestLatencyWindowOffIdentical(t *testing.T) {
	off, plain := NewLatencyWindowed(0, 990), NewLatency()
	for r, lat := range []int{4, 0, 7, 2} {
		deliver(off, r, lat)
		deliver(plain, r, lat)
		off.OnRoundEnd(r, nil)
		plain.OnRoundEnd(r, nil)
	}
	so, sp := off.Summarize(), plain.Summarize()
	if !reflect.DeepEqual(so, sp) {
		t.Fatalf("window=0 summary differs:\n%+v\n%+v", so, sp)
	}
	if _, ok := so.Scalars["window"]; ok {
		t.Fatal("window=0 still emitted window scalars")
	}
}

func TestLinkUtilWindowedScalars(t *testing.T) {
	c := NewLinkUtilSeriesWindowed(16, 8, 2, 1000)
	forwards := func(r, n int) {
		c.OnForward(r, make([]Move, n))
		c.OnRoundEnd(r, nil)
	}
	forwards(0, 4)
	forwards(1, 1)
	forwards(2, 3)
	s := c.Summarize()
	want := map[string]int{
		"window": 2, "window_rounds": 2,
		"window_forwards": 4, "window_max": 3,
		"window_mean_millis": 2000,
		// Round 0's 4 forwards aged out, decay 1000 keeps it whole.
		"decayed_max_millis": 4000,
	}
	for k, v := range want {
		if s.Scalars[k] != v {
			t.Errorf("%s = %d, want %d (scalars %v)", k, s.Scalars[k], v, s.Scalars)
		}
	}
	if rec, ok := s.SeriesByKey("forwards"); !ok || rec.Rounds != 3 {
		t.Fatalf("windowed link_util changed the series payload: %+v", s.Series)
	}
}

func TestLinkUtilWindowOffIdentical(t *testing.T) {
	off, plain := NewLinkUtilSeriesWindowed(16, 8, 0, 990), NewLinkUtilSeries(16, 8)
	for r, n := range []int{3, 0, 5} {
		off.OnForward(r, make([]Move, n))
		plain.OnForward(r, make([]Move, n))
		off.OnRoundEnd(r, nil)
		plain.OnRoundEnd(r, nil)
	}
	so, sp := off.Summarize(), plain.Summarize()
	if !reflect.DeepEqual(so, sp) {
		t.Fatalf("window=0 summary differs:\n%+v\n%+v", so, sp)
	}
	if _, ok := so.Scalars["window"]; ok {
		t.Fatal("window=0 still emitted window scalars")
	}
}
