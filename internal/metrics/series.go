package metrics

import "fmt"

// Aggregation names for downsampled series points.
const (
	AggMax = "max" // a point is the maximum of the rounds it covers
	AggSum = "sum" // a point is the sum over the rounds it covers
)

// SeriesRecord is the canonical wire form of one bounded per-round
// series: Values[i] aggregates rounds [i·Stride, (i+1)·Stride) under Agg
// (the final point may cover fewer rounds), and Tail holds the exact
// per-round values of the last min(len(Tail), Rounds) rounds so the most
// recent behavior is always available at full resolution.
type SeriesRecord struct {
	Key    string `json:"key"`
	Agg    string `json:"agg"`
	Stride int    `json:"stride"`
	Rounds int    `json:"rounds"`
	Values []int  `json:"values,omitempty"`
	Tail   []int  `json:"tail,omitempty"`
}

// BoundedSeries folds an unbounded per-round sequence into O(cap) memory:
// a stride-doubling downsampled view of the whole run (when the buffer
// fills, adjacent points merge pairwise and the stride doubles — the
// simulator's own small-buffers discipline) plus an exact ring-buffer
// tail of the most recent rounds. Appending is amortized O(1) and never
// allocates after construction, so a 10⁶-round run costs the same memory
// as a 10³-round one.
type BoundedSeries struct {
	key    string
	agg    string
	cap    int
	stride int
	vals   []int
	pend   int // accumulator for the in-progress point
	pendN  int // rounds folded into pend
	n      int // total values appended
	tail   []int
	tailN  int // values in the ring (≤ cap(tail))
	tailAt int // next write position
}

// NewBoundedSeries returns a bounded series with at most cap downsampled
// points (rounded up to the next even number, minimum 2) and an exact
// tail of tailCap rounds (0 disables the tail).
func NewBoundedSeries(key, agg string, capPoints, tailCap int) *BoundedSeries {
	if capPoints < 2 {
		capPoints = 2
	}
	if capPoints%2 == 1 {
		capPoints++
	}
	if tailCap < 0 {
		tailCap = 0
	}
	s := &BoundedSeries{key: key, agg: agg, cap: capPoints, stride: 1,
		vals: make([]int, 0, capPoints)}
	if tailCap > 0 {
		s.tail = make([]int, tailCap)
	}
	return s
}

// Append folds the next round's value into the series.
func (s *BoundedSeries) Append(v int) {
	s.n++
	if s.tail != nil {
		s.tail[s.tailAt] = v
		s.tailAt = (s.tailAt + 1) % len(s.tail)
		if s.tailN < len(s.tail) {
			s.tailN++
		}
	}
	if s.pendN == 0 {
		s.pend = v
	} else {
		s.pend = s.fold(s.pend, v)
	}
	s.pendN++
	if s.pendN < s.stride {
		return
	}
	s.vals = append(s.vals, s.pend)
	s.pendN = 0
	if len(s.vals) == s.cap {
		// Compact: merge adjacent pairs in place and double the stride.
		for i := 0; i < s.cap/2; i++ {
			s.vals[i] = s.fold(s.vals[2*i], s.vals[2*i+1])
		}
		s.vals = s.vals[:s.cap/2]
		s.stride *= 2
	}
}

func (s *BoundedSeries) fold(a, b int) int {
	if s.agg == AggSum {
		return a + b
	}
	return max(a, b)
}

// Len returns the number of values appended so far.
func (s *BoundedSeries) Len() int { return s.n }

// Record renders the series in canonical wire form. The in-progress
// partial point (covering the trailing n mod stride rounds) is included
// as the final value, so the record is a pure function of the appended
// sequence.
func (s *BoundedSeries) Record() SeriesRecord {
	rec := SeriesRecord{Key: s.key, Agg: s.agg, Stride: s.stride, Rounds: s.n}
	rec.Values = make([]int, 0, len(s.vals)+1)
	rec.Values = append(rec.Values, s.vals...)
	if s.pendN > 0 {
		rec.Values = append(rec.Values, s.pend)
	}
	if s.tailN > 0 {
		rec.Tail = make([]int, s.tailN)
		start := (s.tailAt - s.tailN + len(s.tail)) % len(s.tail)
		for i := 0; i < s.tailN; i++ {
			rec.Tail[i] = s.tail[(start+i)%len(s.tail)]
		}
	}
	return rec
}

// Cap returns the configured point bound (records never carry more than
// Cap values plus the partial point).
func (s *BoundedSeries) Cap() int { return s.cap }

// String renders a compact description for debugging.
func (s *BoundedSeries) String() string {
	return fmt.Sprintf("series(%s/%s: %d rounds, stride %d, %d points)", s.key, s.agg, s.n, s.stride, len(s.vals))
}
