package metrics

import "math/bits"

// HistExactLimit is the boundary of a histogram's exact range: values in
// [0, HistExactLimit) get one bucket each, larger values fall into log2
// buckets [2^j, 2^(j+1)). Small occupancies and latencies — the regime the
// paper's bounds live in — are therefore counted exactly, while the tail
// stays O(log max) wide.
const HistExactLimit = 64

// HistRecord is the canonical wire form of a histogram: exact low
// buckets, log2 tail buckets, and the exact count/sum/min/max totals.
// Exact[v] counts observations equal to v (trailing zeros trimmed);
// Log2[i] counts observations in [HistExactLimit·2^i, HistExactLimit·2^(i+1)).
type HistRecord struct {
	Count int   `json:"count"`
	Sum   int   `json:"sum"`
	Min   int   `json:"min"`
	Max   int   `json:"max"`
	Exact []int `json:"exact,omitempty"`
	Log2  []int `json:"log2,omitempty"`
}

// Hist accumulates a distribution of non-negative integers in O(1) per
// observation and O(HistExactLimit + log max) memory.
type Hist struct {
	count int
	sum   int
	min   int
	max   int
	exact [HistExactLimit]int
	log2  []int
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{} }

// Add folds one observation (negative values clamp to 0).
func (h *Hist) Add(v int) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if v < HistExactLimit {
		h.exact[v]++
		return
	}
	i := logBucket(v)
	for len(h.log2) <= i {
		h.log2 = append(h.log2, 0)
	}
	h.log2[i]++
}

// logBucket maps v ≥ HistExactLimit to its log2 bucket index:
// bucket i covers [HistExactLimit·2^i, HistExactLimit·2^(i+1)).
func logBucket(v int) int {
	return bits.Len(uint(v)) - bits.Len(uint(HistExactLimit))
}

// Count returns the number of observations.
func (h *Hist) Count() int { return h.count }

// Sum returns the exact sum of observations.
func (h *Hist) Sum() int { return h.sum }

// Max returns the exact maximum (0 when empty).
func (h *Hist) Max() int { return h.max }

// Record renders the histogram in canonical wire form.
func (h *Hist) Record() *HistRecord {
	rec := &HistRecord{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	last := -1
	for v, c := range h.exact {
		if c > 0 {
			last = v
		}
	}
	if last >= 0 {
		rec.Exact = append([]int(nil), h.exact[:last+1]...)
	}
	if len(h.log2) > 0 {
		rec.Log2 = append([]int(nil), h.log2...)
	}
	return rec
}

// Quantile on the live histogram (see HistRecord.Quantile).
func (h *Hist) Quantile(p int) int { return h.Record().Quantile(p) }

// Quantile returns the p-th percentile (an integer percent, 0 ≤ p ≤ 100)
// by nearest-rank: exact for values below HistExactLimit, the bucket's
// lower bound for the log2 tail, and 0 for an empty histogram. The rank
// rule is round-half-up of p·Count/100, computed in exact integer
// arithmetic: quantiles feed canonical integer-only wire records, and
// the float form of the same rounding (p/100·Count + 0.5) is not
// bit-reproducible across architectures — Go may fuse the multiply-add
// into an FMA. Exact-range quantiles agree with a nearest-rank pass over
// the full sample (stats.Summary.Percentile at whole percents).
func (r *HistRecord) Quantile(p int) int {
	if r == nil || r.Count == 0 {
		return 0
	}
	rank := (p*r.Count+50)/100 - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= r.Count {
		rank = r.Count - 1
	}
	cum := 0
	for v, c := range r.Exact {
		cum += c
		if rank < cum {
			return v
		}
	}
	for i, c := range r.Log2 {
		cum += c
		if rank < cum {
			return HistExactLimit << i
		}
	}
	// All mass accounted for above; reaching here means rank beyond the
	// last bucket, which the clamp prevents.
	return r.Max
}

// merge folds another record into r (nil and empty records are no-ops).
func (r *HistRecord) merge(o *HistRecord) {
	if o == nil || o.Count == 0 {
		return
	}
	if r.Count == 0 || o.Min < r.Min {
		r.Min = o.Min
	}
	if r.Count == 0 || o.Max > r.Max {
		r.Max = o.Max
	}
	r.Count += o.Count
	r.Sum += o.Sum
	for len(r.Exact) < len(o.Exact) {
		r.Exact = append(r.Exact, 0)
	}
	for v, c := range o.Exact {
		r.Exact[v] += c
	}
	for len(r.Log2) < len(o.Log2) {
		r.Log2 = append(r.Log2, 0)
	}
	for i, c := range o.Log2 {
		r.Log2[i] += c
	}
}
