// Package metrics is the measurement tier of the execution API: typed
// collectors observe a run through narrow hooks and distill it into
// Summary values — small, integer-only, deterministic records that travel
// unchanged through the harness, the service tier, and result digests.
//
// The paper's results are statements about buffer-occupancy behavior over
// time (L_t sampled every round, maxima versus bandwidth, delivery-latency
// distributions), so measurement cannot be a closed struct of scalars:
// every new question would mean editing sim, harness, service, and the
// CLIs in lockstep. Instead, a Collector is a value selected by name from
// the component registry, the engine drives whatever set the run's Spec
// names, and the distilled Summaries flow engine → harness → service →
// CLIs as data.
//
// The package deliberately depends only on the leaf model packages
// (network), never on sim: sim imports metrics to populate
// Result.Metrics, so the observation surface is mirrored here as the
// minimal View and Move types, which the engine satisfies and adapts.
//
// # Determinism
//
// Every Summary payload is integers: exact scalars, bounded integer
// series, and integer histogram buckets. Quantiles are derived from
// histograms by deterministic rules (exact below the histogram's exact
// range, bucket lower bounds above it). Two executions of the same
// workload — at any worker count, on any machine — produce byte-identical
// summaries, which is what lets metric records fold into results digests.
package metrics

import (
	"fmt"
	"sort"

	"smallbuffers/internal/network"
)

// View is the read-only slice of engine state collectors observe: a
// metrics-local mirror of sim.View (plus the staging count) so sim can
// depend on metrics without an import cycle. *sim.Engine satisfies it.
type View interface {
	// Round returns the current (0-based) round number.
	Round() int
	// Net returns the topology.
	Net() *network.Network
	// Load returns |L(v)|, the number of packets visibly buffered at v.
	Load(v network.NodeID) int
	// Bandwidth returns B(v), the capacity of v's outgoing link.
	Bandwidth(v network.NodeID) int
	// Staged returns the number of packets injected at v but not yet
	// visible to a phased protocol (zero for unphased protocols).
	Staged(v network.NodeID) int
}

// Point identifies an occupancy sample point within a round.
type Point int

const (
	// LT is the paper's measurement point: after the injection step,
	// before the forwarding step.
	LT Point = iota
	// PostForward samples after the forwarding step (receivers that did
	// not forward can peak here).
	PostForward
)

// Move mirrors sim.Move with exactly the fields collectors consume: the
// link it crossed, whether it was a delivery, and the packet's injection
// round (for latency accounting).
type Move struct {
	From, To  network.NodeID
	Delivered bool
	// Inject is the round the moved packet was injected.
	Inject int
	// Dropped marks a packet lost in transit by the run's fault model: it
	// left From's buffer and consumed the link, but never arrived (and
	// Delivered is false even if To was its destination).
	Dropped bool
}

// Injection mirrors packet.Injection with the fields collectors consume:
// the source node the adversary injected at and the packet's destination.
type Injection struct {
	Src, Dst network.NodeID
}

// Collector observes one run and distills it into a Summary. Collectors
// are stateful and single-run: build a fresh instance per run (the
// registry's Build does). Summarize must be pure and repeatable — the
// engine snapshots summaries mid-run for partial Results.
type Collector interface {
	// Name is the collector's registry name; it keys the Summary in
	// Result.Metrics.
	Name() string
	// OnInject fires after the injection step with the packets the
	// adversary injected this round; rounds that inject nothing skip the
	// call. Like OnForward's moves, the slice is an engine-owned scratch
	// buffer, valid only for the duration of the call.
	OnInject(round int, injs []Injection)
	// OnSample fires at each occupancy sample point: once at L_t and once
	// post-forwarding, every round, in that order.
	OnSample(round int, p Point, v View)
	// OnForward fires after the forwarding step with the applied moves.
	// Rounds that move no packets skip the call. The moves slice is a
	// scratch buffer the engine reuses every round: it is valid only for
	// the duration of the call, so collectors that need it later must
	// copy it.
	OnForward(round int, moves []Move)
	// OnRoundEnd fires at the end of each round with the post-forwarding
	// configuration; per-round series points are finalized here.
	OnRoundEnd(round int, v View)
	// Summarize distills the observations so far into a Summary.
	Summarize() Summary
}

// NopCollector is a Collector with no-op hooks, for embedding.
type NopCollector struct{}

// OnInject implements Collector.
func (NopCollector) OnInject(int, []Injection) {}

// OnSample implements Collector.
func (NopCollector) OnSample(int, Point, View) {}

// OnForward implements Collector.
func (NopCollector) OnForward(int, []Move) {}

// OnRoundEnd implements Collector.
func (NopCollector) OnRoundEnd(int, View) {}

// Summary kinds, as reported in the "kind" field of the wire form.
const (
	KindScalar = "scalar" // named integer scalars only
	KindSeries = "series" // bounded per-round series (plus scalars)
	KindHist   = "hist"   // histogram with derived quantile scalars
)

// Summary is a collector's distilled output in canonical wire form:
// named integer scalars, optional bounded series, and an optional
// histogram. All payloads are integers and all map keys marshal sorted,
// so the JSON encoding is deterministic and digest-stable.
type Summary struct {
	Name    string         `json:"name"`
	Kind    string         `json:"kind"`
	Scalars map[string]int `json:"scalars,omitempty"`
	Series  []SeriesRecord `json:"series,omitempty"`
	Hist    *HistRecord    `json:"hist,omitempty"`
	// Anchor optionally names the scalar that decides cross-run merges
	// of the Anchored key group: the run with the greater anchor value
	// contributes the anchor and every Anchored scalar, keeping
	// argmax-position scalars (max_load_node, busiest_link, …)
	// attributed to the run the maximum actually occurred in. All other
	// scalars merge element-wise by maximum.
	Anchor   string   `json:"anchor,omitempty"`
	Anchored []string `json:"anchored,omitempty"`
}

// Scalar returns the named scalar (zero if absent).
func (s Summary) Scalar(key string) int { return s.Scalars[key] }

// SeriesByKey returns the series with the given key, if present.
func (s Summary) SeriesByKey(key string) (SeriesRecord, bool) {
	for _, sr := range s.Series {
		if sr.Key == key {
			return sr, true
		}
	}
	return SeriesRecord{}, false
}

// Merge folds two same-name summaries from different runs into one
// aggregate — the cross-cell aggregation the harness, the service
// summary event, and aqtbench's corpus percentiles use. The rules are
// deterministic per payload:
//
//   - histograms merge bucket-wise, and every quantile scalar (p50, p90,
//     p99) plus count/sum/min/max is re-derived from the merged histogram;
//   - scalars merge by element-wise maximum (the aggregate of per-run
//     maxima is the grid maximum) — except the anchored group: when
//     Anchor names a scalar, the run with the greater anchor value
//     contributes the anchor and every Anchored key, so argmax-position
//     scalars (max_load_node, max_load_round, busiest_link, …) stay
//     attributed to the run the maximum actually occurred in; anchor
//     ties keep the first argument, so callers must fold in a canonical
//     order (the harness and service both fold in cell-index order);
//   - series are dropped — per-round series from different runs have no
//     canonical alignment, so an aggregate carries none.
//
// Merging summaries with different names or kinds is an error.
func Merge(a, b Summary) (Summary, error) {
	if a.Name != b.Name || a.Kind != b.Kind {
		return Summary{}, fmt.Errorf("metrics: cannot merge %s/%s with %s/%s", a.Name, a.Kind, b.Name, b.Kind)
	}
	out := Summary{Name: a.Name, Kind: a.Kind, Anchor: a.Anchor, Anchored: a.Anchored}
	if a.Hist != nil || b.Hist != nil {
		h := &HistRecord{}
		h.merge(a.Hist)
		h.merge(b.Hist)
		out.Hist = h
		out.Scalars = histScalars(h, scalarKeys(a.Scalars, b.Scalars))
		return out, nil
	}
	keys := scalarKeys(a.Scalars, b.Scalars)
	if len(keys) > 0 {
		out.Scalars = make(map[string]int, len(keys))
		for _, k := range keys {
			out.Scalars[k] = max(a.Scalars[k], b.Scalars[k])
		}
	}
	if anchor := a.Anchor; anchor != "" && anchor == b.Anchor && len(out.Scalars) > 0 {
		winner := a
		if b.Scalars[anchor] > a.Scalars[anchor] {
			winner = b
		}
		for _, k := range append([]string{anchor}, winner.Anchored...) {
			if v, ok := winner.Scalars[k]; ok {
				out.Scalars[k] = v
			} else {
				delete(out.Scalars, k)
			}
		}
	}
	return out, nil
}

// MergeAll folds a set of same-shaped summary maps (one per run) into one
// aggregate map. Runs that lack a name other runs carry still contribute
// to the names they have.
func MergeAll(runs []map[string]Summary) (map[string]Summary, error) {
	out := make(map[string]Summary)
	for _, m := range runs {
		// Fold names in sorted order: per-name folding is commutative
		// across names, but the canonical iteration order keeps the fold
		// deterministic by construction (and detmap-clean).
		for _, name := range SortedNames(m) {
			s := m[name]
			prev, ok := out[name]
			if !ok {
				out[name] = s
				continue
			}
			merged, err := Merge(prev, s)
			if err != nil {
				return nil, err
			}
			out[name] = merged
		}
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// scalarKeys is the sorted union of the two scalar key sets.
func scalarKeys(a, b map[string]int) []string {
	seen := make(map[string]bool, len(a)+len(b))
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// histScalars re-derives the conventional histogram scalars for the keys
// the inputs carried: quantiles from the merged buckets, count/sum/max
// from the merged totals. Unknown keys fall back to the merged maximum
// semantics and are simply dropped (they cannot be re-derived).
func histScalars(h *HistRecord, keys []string) map[string]int {
	if len(keys) == 0 {
		return nil
	}
	out := make(map[string]int, len(keys))
	for _, k := range keys {
		switch k {
		case "p50":
			out[k] = h.Quantile(50)
		case "p90":
			out[k] = h.Quantile(90)
		case "p99":
			out[k] = h.Quantile(99)
		case "count":
			out[k] = h.Count
		case "sum":
			out[k] = h.Sum
		case "min":
			out[k] = h.Min
		case "max":
			out[k] = h.Max
		}
	}
	return out
}

// SortedNames returns the summary map's keys in sorted order — the
// canonical iteration order for tables and wire records.
func SortedNames(m map[string]Summary) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Records renders a summary map as a canonical list, sorted by name —
// the wire form harness.CellRecord embeds.
func Records(m map[string]Summary) []Summary {
	if len(m) == 0 {
		return nil
	}
	out := make([]Summary, 0, len(m))
	for _, name := range SortedNames(m) {
		out = append(out, m[name])
	}
	return out
}
