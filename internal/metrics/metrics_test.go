package metrics

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// naiveDownsample reproduces a BoundedSeries record from the full
// sequence: aggregate strides of the final stride value, plus the tail.
func naiveDownsample(vals []int, stride int, agg string) []int {
	var out []int
	for i := 0; i < len(vals); i += stride {
		acc := vals[i]
		for j := i + 1; j < i+stride && j < len(vals); j++ {
			if agg == AggSum {
				acc += vals[j]
			} else if vals[j] > acc {
				acc = vals[j]
			}
		}
		out = append(out, acc)
	}
	return out
}

func TestBoundedSeriesMatchesNaiveDownsample(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, agg := range []string{AggMax, AggSum} {
		for _, n := range []int{0, 1, 7, 8, 9, 64, 1000, 12345} {
			s := NewBoundedSeries("k", agg, 8, 4)
			full := make([]int, n)
			for i := range full {
				full[i] = rng.Intn(100)
				s.Append(full[i])
			}
			rec := s.Record()
			if rec.Rounds != n {
				t.Fatalf("agg=%s n=%d: Rounds=%d", agg, n, rec.Rounds)
			}
			want := naiveDownsample(full, rec.Stride, agg)
			if !reflect.DeepEqual(rec.Values, want) && !(len(want) == 0 && len(rec.Values) == 0) {
				t.Fatalf("agg=%s n=%d stride=%d: values=%v want %v", agg, n, rec.Stride, rec.Values, want)
			}
			wantTail := full
			if len(wantTail) > 4 {
				wantTail = wantTail[len(wantTail)-4:]
			}
			if len(wantTail) > 0 && !reflect.DeepEqual(rec.Tail, wantTail) {
				t.Fatalf("agg=%s n=%d: tail=%v want %v", agg, n, rec.Tail, wantTail)
			}
		}
	}
}

// TestBoundedSeriesMemoryBound pins the acceptance criterion: a 10⁶-round
// series stays within its configured point cap (length and capacity), so
// memory is O(cap) regardless of horizon.
func TestBoundedSeriesMemoryBound(t *testing.T) {
	const capPoints, tailCap, rounds = 512, 64, 1_000_000
	s := NewBoundedSeries("max", AggMax, capPoints, tailCap)
	for i := 0; i < rounds; i++ {
		s.Append(i % 37)
	}
	if got := cap(s.vals); got > capPoints {
		t.Errorf("internal buffer grew to cap %d > %d", got, capPoints)
	}
	rec := s.Record()
	if len(rec.Values) > capPoints+1 {
		t.Errorf("record carries %d values > cap %d", len(rec.Values), capPoints)
	}
	if len(rec.Tail) != tailCap {
		t.Errorf("tail length %d, want %d", len(rec.Tail), tailCap)
	}
	if rec.Stride*len(rec.Values) < rounds {
		t.Errorf("stride %d × %d values does not cover %d rounds", rec.Stride, len(rec.Values), rounds)
	}
	// Appending must not allocate once the buffers exist.
	allocs := testing.AllocsPerRun(1000, func() { s.Append(5) })
	if allocs > 0 {
		t.Errorf("Append allocates %.1f times per call", allocs)
	}
}

func TestHistExactAndLog2(t *testing.T) {
	h := NewHist()
	for v := 0; v < 10; v++ {
		h.Add(v) // exact range
	}
	h.Add(64)   // first log2 bucket [64,128)
	h.Add(127)  // same bucket
	h.Add(128)  // [128,256)
	h.Add(5000) // [4096,8192)
	rec := h.Record()
	if rec.Count != 14 || rec.Min != 0 || rec.Max != 5000 {
		t.Fatalf("count/min/max = %d/%d/%d", rec.Count, rec.Min, rec.Max)
	}
	if rec.Sum != 45+64+127+128+5000 {
		t.Fatalf("sum = %d", rec.Sum)
	}
	if len(rec.Exact) != 10 {
		t.Fatalf("exact buckets = %v", rec.Exact)
	}
	if rec.Log2[0] != 2 || rec.Log2[1] != 1 {
		t.Fatalf("log2 buckets = %v", rec.Log2)
	}
	if got := rec.Log2[logBucket(5000)]; got != 1 {
		t.Fatalf("bucket for 5000 holds %d", got)
	}
}

func TestHistQuantileExactRangeMatchesNearestRank(t *testing.T) {
	h := NewHist()
	for v := 1; v <= 100; v++ {
		h.Add(v % 50) // all below HistExactLimit
	}
	rec := h.Record()
	// Nearest-rank on the sorted sample 0,0,1,1,…,49,49.
	if got := rec.Quantile(50); got != 24 {
		t.Errorf("p50 = %d, want 24", got)
	}
	if got := rec.Quantile(100); got != 49 {
		t.Errorf("p100 = %d, want 49", got)
	}
	if got := rec.Quantile(0); got != 0 {
		t.Errorf("p0 = %d, want 0", got)
	}
	if got := (&HistRecord{}).Quantile(50); got != 0 {
		t.Errorf("empty quantile = %d", got)
	}
}

func TestHistQuantileLogTailReturnsBucketFloor(t *testing.T) {
	h := NewHist()
	for i := 0; i < 100; i++ {
		h.Add(200) // bucket [128, 256)
	}
	if got := h.Quantile(50); got != 128 {
		t.Errorf("p50 = %d, want bucket floor 128", got)
	}
}

func TestMergeHistograms(t *testing.T) {
	a, b := NewHist(), NewHist()
	for i := 0; i < 60; i++ {
		a.Add(1)
	}
	for i := 0; i < 40; i++ {
		b.Add(9)
	}
	sa := Summary{Name: NameLatency, Kind: KindHist, Hist: a.Record(),
		Scalars: map[string]int{"count": 60, "sum": 60, "max": 1, "p50": a.Quantile(50), "p99": a.Quantile(99)}}
	sb := Summary{Name: NameLatency, Kind: KindHist, Hist: b.Record(),
		Scalars: map[string]int{"count": 40, "sum": 360, "max": 9, "p50": b.Quantile(50), "p99": b.Quantile(99)}}
	m, err := Merge(sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hist.Count != 100 || m.Hist.Sum != 420 || m.Hist.Max != 9 || m.Hist.Min != 1 {
		t.Fatalf("merged hist = %+v", m.Hist)
	}
	if m.Scalars["count"] != 100 || m.Scalars["sum"] != 420 || m.Scalars["max"] != 9 {
		t.Fatalf("merged scalars = %v", m.Scalars)
	}
	if m.Scalars["p50"] != 1 || m.Scalars["p99"] != 9 {
		t.Fatalf("merged quantiles = %v", m.Scalars)
	}
}

func TestMergeScalarsTakesMax(t *testing.T) {
	a := Summary{Name: NameMaxLoad, Kind: KindScalar, Scalars: map[string]int{"max_load": 3}}
	b := Summary{Name: NameMaxLoad, Kind: KindScalar, Scalars: map[string]int{"max_load": 7}}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Scalars["max_load"] != 7 {
		t.Fatalf("merged = %v", m.Scalars)
	}
	if _, err := Merge(a, Summary{Name: "other", Kind: KindScalar}); err == nil {
		t.Error("merging different names did not fail")
	}
}

// TestMergeAnchoredKeepsArgmaxCoherent pins the winner-takes-all rule:
// merged argmax-position scalars (node, round) come from the run that
// actually attained the maximum, never mixed across runs.
func TestMergeAnchoredKeepsArgmaxCoherent(t *testing.T) {
	a := NewMaxLoad()
	a.maxLoad, a.node, a.round, a.maxPhysical = 5, 2, 40, 6
	b := NewMaxLoad()
	b.maxLoad, b.node, b.round, b.maxPhysical = 3, 7, 390, 9
	m, err := Merge(a.Summarize(), b.Summarize())
	if err != nil {
		t.Fatal(err)
	}
	// The argmax position follows the winning run (cell A: load 5 at
	// node 2, round 40); max_physical_load is an independent maximum and
	// takes the element-wise max (cell B's staging spike of 9).
	want := map[string]int{"max_load": 5, "max_load_node": 2, "max_load_round": 40, "max_physical_load": 9}
	if !reflect.DeepEqual(m.Scalars, want) {
		t.Errorf("merged = %v, want %v", m.Scalars, want)
	}
	if m.Anchor != "max_load" {
		t.Errorf("merged anchor = %q", m.Anchor)
	}
	// Order-independent winner.
	rev, err := Merge(b.Summarize(), a.Summarize())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rev.Scalars, want) {
		t.Errorf("reversed merge = %v, want %v", rev.Scalars, want)
	}
}

func TestMergeAllAndRecords(t *testing.T) {
	runs := []map[string]Summary{
		{NameMaxLoad: {Name: NameMaxLoad, Kind: KindScalar, Scalars: map[string]int{"max_load": 2}}},
		{NameMaxLoad: {Name: NameMaxLoad, Kind: KindScalar, Scalars: map[string]int{"max_load": 5}}},
	}
	m, err := MergeAll(runs)
	if err != nil {
		t.Fatal(err)
	}
	if m[NameMaxLoad].Scalars["max_load"] != 5 {
		t.Fatalf("merged = %v", m)
	}
	recs := Records(map[string]Summary{
		"b": {Name: "b", Kind: KindScalar},
		"a": {Name: "a", Kind: KindScalar},
	})
	if len(recs) != 2 || recs[0].Name != "a" || recs[1].Name != "b" {
		t.Fatalf("records not name-sorted: %v", recs)
	}
	if Records(nil) != nil {
		t.Error("empty map should render nil records")
	}
}

// TestSummaryJSONDeterministic pins the wire form: marshaling the same
// summary twice yields identical bytes (scalars are a map, but
// encoding/json sorts map keys).
func TestSummaryJSONDeterministic(t *testing.T) {
	s := Summary{Name: NameLatency, Kind: KindHist,
		Scalars: map[string]int{"p99": 4, "count": 10, "max": 4, "p50": 1, "sum": 15, "p90": 3},
		Hist:    &HistRecord{Count: 10, Sum: 15, Max: 4, Exact: []int{2, 4, 2, 1, 1}},
	}
	a, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(s)
	if string(a) != string(b) {
		t.Error("summary JSON not deterministic")
	}
	var back Summary
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("round trip changed the summary: %+v vs %+v", s, back)
	}
}
