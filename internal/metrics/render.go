package metrics

import (
	"fmt"

	"smallbuffers/internal/stats"
)

// Bars renders the histogram as labeled counts for stats.Histogram: the
// exact range coarsened to at most 16 bars (wide distributions group
// into equal-width ranges), then one bar per log2 tail bucket
// ("64–127"). Interior zero-count bars are kept so the shape of the
// distribution stays visible.
func (r *HistRecord) Bars() []stats.HistBar {
	if r == nil {
		return nil
	}
	const maxExactBars = 16
	group := (len(r.Exact) + maxExactBars - 1) / maxExactBars
	if group < 1 {
		group = 1
	}
	var out []stats.HistBar
	for lo := 0; lo < len(r.Exact); lo += group {
		hi, count := lo, 0
		for v := lo; v < lo+group && v < len(r.Exact); v++ {
			count += r.Exact[v]
			hi = v
		}
		label := fmt.Sprintf("%d", lo)
		if hi > lo {
			label = fmt.Sprintf("%d–%d", lo, hi)
		}
		out = append(out, stats.HistBar{Label: label, Count: count})
	}
	for i, c := range r.Log2 {
		lo := HistExactLimit << i
		out = append(out, stats.HistBar{Label: fmt.Sprintf("%d–%d", lo, 2*lo-1), Count: c})
	}
	return out
}

// ScalarLine renders the summary's scalars as "k=v k=v …" in sorted key
// order — the one-line form the CLIs print.
func (s Summary) ScalarLine() string {
	line := ""
	for _, k := range scalarKeys(s.Scalars, nil) {
		if line != "" {
			line += "  "
		}
		line += fmt.Sprintf("%s=%d", k, s.Scalars[k])
	}
	return line
}
