package metrics

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// These property tests pin down the algebra the fan-out merge relies on:
// the fleet coordinator, the service summary event, and the harness all
// aggregate per-shard summary maps with MergeAll, and the distributed
// results digest is only sound if the grouping of that fold cannot
// change the wire bytes.
//
// The exact contract (mirrors the Merge doc comment):
//
//   - with no anchors, or with distinct anchor values, merging is a
//     commutative monoid: ANY grouping in ANY order yields byte-identical
//     wire records;
//   - anchor ties keep the first argument, so with ties the fold is
//     associative but only order-canonical: ANY grouping of a FIXED
//     (cell-index) order yields byte-identical wire records, which is
//     the discipline every caller follows.

// randSummaries builds one shard's summary map: a histogram summary, a
// plain scalar summary, and an anchored scalar summary. anchor fixes the
// anchored scalar's anchor value (so callers can force distinct values
// or ties across shards).
func randSummaries(rng *rand.Rand, anchor int) map[string]Summary {
	h := NewHist()
	for i, n := 0, 5+rng.Intn(40); i < n; i++ {
		h.Add(rng.Intn(300))
	}
	hr := h.Record()
	return map[string]Summary{
		"latency": {
			Name: "latency",
			Kind: KindHist,
			Hist: hr,
			Scalars: map[string]int{
				"count": hr.Count, "sum": hr.Sum, "min": hr.Min, "max": hr.Max,
				"p50": hr.Quantile(50), "p90": hr.Quantile(90), "p99": hr.Quantile(99),
			},
		},
		"occupancy": {
			Name: "occupancy",
			Kind: KindScalar,
			Scalars: map[string]int{
				"max_load": rng.Intn(100),
				"rounds":   rng.Intn(5000),
			},
		},
		"peak": {
			Name: "peak",
			Kind: KindScalar,
			Scalars: map[string]int{
				"max_load":       anchor,
				"max_load_node":  rng.Intn(64),
				"max_load_round": rng.Intn(5000),
			},
			Anchor:   "max_load",
			Anchored: []string{"max_load_node", "max_load_round"},
		},
	}
}

// wire renders the merged map in its canonical wire form — the byte
// string the digest sees.
func wire(t *testing.T, runs []map[string]Summary) string {
	t.Helper()
	merged, err := MergeAll(runs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(Records(merged))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// foldGrouped folds runs pairwise over a random binary grouping (still in
// slice order), exercising associativity: ((a·b)·(c·d)) vs (a·(b·(c·d)))
// and every shape in between.
func foldGrouped(t *testing.T, rng *rand.Rand, runs []map[string]Summary) string {
	t.Helper()
	var fold func(runs []map[string]Summary) map[string]Summary
	fold = func(runs []map[string]Summary) map[string]Summary {
		if len(runs) == 1 {
			// MergeAll over a singleton normalizes it the same way the
			// n-ary fold would.
			m, err := MergeAll(runs[:1])
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		cut := 1 + rng.Intn(len(runs)-1)
		left, right := fold(runs[:cut]), fold(runs[cut:])
		m, err := MergeAll([]map[string]Summary{left, right})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	b, err := json.Marshal(Records(fold(runs)))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMergeAnyGroupingAnyOrder is the strong property: with distinct
// anchor values, every permutation and every grouping of the shard
// summaries produces byte-identical wire records.
func TestMergeAnyGroupingAnyOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		nShards := 2 + rng.Intn(7)
		// Distinct anchor values: a random permutation of 10, 20, 30, …
		anchors := rng.Perm(nShards)
		runs := make([]map[string]Summary, nShards)
		for i := range runs {
			runs[i] = randSummaries(rng, 10*(anchors[i]+1))
		}
		want := wire(t, runs)

		for rep := 0; rep < 8; rep++ {
			perm := make([]map[string]Summary, nShards)
			for i, j := range rng.Perm(nShards) {
				perm[i] = runs[j]
			}
			if got := wire(t, perm); got != want {
				t.Fatalf("trial %d: linear fold over a permutation diverged:\n got %s\nwant %s", trial, got, want)
			}
			if got := foldGrouped(t, rng, perm); got != want {
				t.Fatalf("trial %d: grouped fold over a permutation diverged:\n got %s\nwant %s", trial, got, want)
			}
		}
	}
}

// TestMergeAnyGroupingFixedOrder is the property the fan-out actually
// needs when anchors can tie: folding in canonical cell-index order,
// every GROUPING — including the fleet's "merge shard sub-aggregates,
// then merge those" two-level shape — yields byte-identical wire
// records. Anchor values are drawn from a tiny range so ties are common.
func TestMergeAnyGroupingFixedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		nShards := 2 + rng.Intn(7)
		runs := make([]map[string]Summary, nShards)
		for i := range runs {
			runs[i] = randSummaries(rng, 5+rng.Intn(3)) // anchors in {5,6,7}: ties likely
		}
		want := wire(t, runs)

		for rep := 0; rep < 8; rep++ {
			if got := foldGrouped(t, rng, runs); got != want {
				t.Fatalf("trial %d: grouped fold in fixed order diverged:\n got %s\nwant %s", trial, got, want)
			}
		}
	}
}

// TestMergeTieKeepsFirst pins the tie rule itself: when two shards tie on
// the anchor, the FIRST argument's anchored scalars win. This is why
// ties demand a canonical fold order — and why every caller folds in
// cell-index order.
func TestMergeTieKeepsFirst(t *testing.T) {
	mk := func(node int) Summary {
		return Summary{
			Name:     "peak",
			Kind:     KindScalar,
			Scalars:  map[string]int{"max_load": 9, "max_load_node": node},
			Anchor:   "max_load",
			Anchored: []string{"max_load_node"},
		}
	}
	ab, err := Merge(mk(3), mk(7))
	if err != nil {
		t.Fatal(err)
	}
	if got := ab.Scalars["max_load_node"]; got != 3 {
		t.Errorf("tie merge kept node %d, want first argument's 3", got)
	}
	ba, err := Merge(mk(7), mk(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := ba.Scalars["max_load_node"]; got != 7 {
		t.Errorf("tie merge kept node %d, want first argument's 7", got)
	}
}

// TestMergeAllMismatchedNames checks that shards carrying disjoint metric
// names still aggregate: a name missing from one shard contributes only
// from the shards that have it (the fleet never requires every daemon to
// report every collector).
func TestMergeAllMismatchedNames(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randSummaries(rng, 10)
	b := randSummaries(rng, 20)
	delete(a, "latency")
	delete(b, "occupancy")
	merged, err := MergeAll([]map[string]Summary{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"latency", "occupancy", "peak"} {
		if _, ok := merged[name]; !ok {
			t.Errorf("merged map lost %q", name)
		}
	}
	if merged["latency"].Hist.Count != b["latency"].Hist.Count {
		t.Errorf("latency came from b alone, count %d want %d",
			merged["latency"].Hist.Count, b["latency"].Hist.Count)
	}
}

// TestMergeKindMismatch checks that shape confusion is an error, not a
// silent wrong answer.
func TestMergeKindMismatch(t *testing.T) {
	a := Summary{Name: "x", Kind: KindScalar}
	b := Summary{Name: "x", Kind: KindHist}
	if _, err := Merge(a, b); err == nil {
		t.Fatal("merging mismatched kinds succeeded")
	}
	if _, err := Merge(a, Summary{Name: "y", Kind: KindScalar}); err == nil {
		t.Fatal("merging mismatched names succeeded")
	}
}
