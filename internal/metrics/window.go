package metrics

import (
	"sort"

	"smallbuffers/internal/network"
)

// Registry names of the windowed collectors (the live-observability
// family: exact recent-history windows that stay meaningful while a run
// is still in flight).
const (
	NameWindowLoad    = "window_load"
	NameGoodputWindow = "goodput_window"
)

// window is a fixed-capacity ring over the last N per-round values with
// an O(1) running sum. It is the exact-window counterpart of
// BoundedSeries: no downsampling, no stride — the most recent N rounds
// at full resolution, everything older is the caller's problem (the
// window_load collector folds evictions into a decayed tail).
type window struct {
	buf []int
	at  int // next write position
	n   int // values in the ring (≤ len(buf))
	sum int
}

func newWindow(n int) *window {
	if n < 1 {
		n = 1
	}
	return &window{buf: make([]int, n)}
}

// push appends v; when the ring is full the oldest value is evicted and
// returned with evicted=true.
func (w *window) push(v int) (old int, evicted bool) {
	if w.n == len(w.buf) {
		old, evicted = w.buf[w.at], true
		w.sum -= old
	} else {
		w.n++
	}
	w.buf[w.at] = v
	w.at = (w.at + 1) % len(w.buf)
	w.sum += v
	return old, evicted
}

// values returns the window contents oldest-first (a fresh slice).
func (w *window) values() []int {
	out := make([]int, w.n)
	start := (w.at - w.n + len(w.buf)) % len(w.buf)
	for i := 0; i < w.n; i++ {
		out[i] = w.buf[(start+i)%len(w.buf)]
	}
	return out
}

// max returns the maximum value in the window (0 when empty).
func (w *window) max() int {
	m := 0
	for i := 0; i < w.n; i++ {
		if v := w.buf[i]; v > m {
			m = v
		}
	}
	return m
}

// meanMillis returns the window mean scaled by 1000 (0 when empty).
func (w *window) meanMillis() int { return permille(w.sum, w.n) }

// quantile returns the p-th percentile of the window under the same
// integer nearest-rank rule as HistRecord.Quantile: rank ⌊(p·n+50)/100⌋
// into the sorted window, clamped to [1, n]. 0 when the window is empty.
func (w *window) quantile(p int) int {
	if w.n == 0 {
		return 0
	}
	vals := w.values()
	sort.Ints(vals)
	rank := (p*w.n + 50) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > w.n {
		rank = w.n
	}
	return vals[rank-1]
}

// WindowLoadCollector measures *recent* occupancy: the exact per-round
// maximum over the last `window` rounds (max, mean, p99 — all integer,
// mean in per-mille) plus an exponentially-decayed maximum of every
// round that has aged out of the window. Where load_series answers
// "what happened over the whole run", window_load answers "what is
// happening right now" — the time-resolved lens the live views and the
// buffer-sizing literature want — while the decayed tail keeps old
// excursions visible without unbounded memory.
type WindowLoadCollector struct {
	NopCollector
	win           *window
	decayPermille int
	roundMax      int
	rounds        int
	decayedMillis int // fixed-point (×1000) decayed max of evicted rounds
}

// NewWindowLoad returns a window_load collector over the last
// windowRounds rounds, with the beyond-window decayed tail retaining
// decayPermille/1000 of its value per subsequent round.
func NewWindowLoad(windowRounds, decayPermille int) *WindowLoadCollector {
	if decayPermille < 0 {
		decayPermille = 0
	}
	if decayPermille > 1000 {
		decayPermille = 1000
	}
	return &WindowLoadCollector{win: newWindow(windowRounds), decayPermille: decayPermille}
}

// Name implements Collector.
func (c *WindowLoadCollector) Name() string { return NameWindowLoad }

// OnSample implements Collector: track the round's maximum node
// occupancy over both sample points, like load_series.
func (c *WindowLoadCollector) OnSample(_ int, _ Point, v View) {
	n := v.Net().Len()
	for u := 0; u < n; u++ {
		if load := v.Load(network.NodeID(u)); load > c.roundMax {
			c.roundMax = load
		}
	}
}

// OnRoundEnd implements Collector: the round's maximum enters the
// window; whatever it evicts decays into the tail. The decayed tail is
// a running maximum in ×1000 fixed point — each eviction first decays
// the tail by decayPermille (one round has passed since the previous
// eviction) and then folds the evicted value in at full scale.
func (c *WindowLoadCollector) OnRoundEnd(int, View) {
	c.rounds++
	if old, evicted := c.win.push(c.roundMax); evicted {
		c.decayedMillis = max(c.decayedMillis*c.decayPermille/1000, old*1000)
	}
	c.roundMax = 0
}

// Summarize implements Collector. All scalars are exact integers over
// the current window, so a mid-run summary is meaningful: window_max,
// window_mean_millis, and window_p99 describe the last window_rounds
// rounds only, and decayed_max_millis is the ×1000 decayed maximum of
// everything older. The series record carries the window itself as an
// exact tail for sparkline rendering.
func (c *WindowLoadCollector) Summarize() Summary {
	return Summary{Name: NameWindowLoad, Kind: KindSeries,
		Scalars: map[string]int{
			"rounds":             c.rounds,
			"window":             len(c.win.buf),
			"window_rounds":      c.win.n,
			"window_max":         c.win.max(),
			"window_mean_millis": c.win.meanMillis(),
			"window_p99":         c.win.quantile(99),
			"decayed_max_millis": c.decayedMillis,
		},
		Series: []SeriesRecord{{Key: "window_max", Agg: AggMax, Stride: 1,
			Rounds: c.rounds, Tail: c.win.values()}}}
}

// GoodputWindowCollector is the windowed companion of the goodput
// collector: exact injected/delivered/dropped counts over the last
// `window` rounds, riding the same delivery ledger (OnInject/OnForward).
// goodput_window_permille is the *recent* throughput efficiency — during
// an in-flight lossy sweep it shows the current loss regime where the
// whole-run goodput_permille only shows the average so far.
type GoodputWindowCollector struct {
	NopCollector
	injWin         *window
	delWin         *window
	dropWin        *window
	roundInjected  int
	roundDelivered int
	roundDropped   int
	injected       int
	delivered      int
	dropped        int
	rounds         int
}

// NewGoodputWindow returns a goodput_window collector over the last
// windowRounds rounds.
func NewGoodputWindow(windowRounds int) *GoodputWindowCollector {
	return &GoodputWindowCollector{
		injWin:  newWindow(windowRounds),
		delWin:  newWindow(windowRounds),
		dropWin: newWindow(windowRounds),
	}
}

// Name implements Collector.
func (c *GoodputWindowCollector) Name() string { return NameGoodputWindow }

// OnInject implements Collector.
func (c *GoodputWindowCollector) OnInject(_ int, injs []Injection) {
	c.roundInjected += len(injs)
	c.injected += len(injs)
}

// OnForward implements Collector.
func (c *GoodputWindowCollector) OnForward(_ int, moves []Move) {
	for _, m := range moves {
		switch {
		case m.Delivered:
			c.roundDelivered++
			c.delivered++
		case m.Dropped:
			c.roundDropped++
			c.dropped++
		}
	}
}

// OnRoundEnd implements Collector.
func (c *GoodputWindowCollector) OnRoundEnd(int, View) {
	c.rounds++
	c.injWin.push(c.roundInjected)
	c.delWin.push(c.roundDelivered)
	c.dropWin.push(c.roundDropped)
	c.roundInjected, c.roundDelivered, c.roundDropped = 0, 0, 0
}

// Summarize implements Collector. The window_* scalars cover the last
// window_rounds rounds exactly; goodput_window_permille and
// drop_window_permille are integer ratios against the windowed
// injection count. The series records carry both windows as exact tails.
func (c *GoodputWindowCollector) Summarize() Summary {
	winInj, winDel, winDrop := c.injWin.sum, c.delWin.sum, c.dropWin.sum
	return Summary{Name: NameGoodputWindow, Kind: KindSeries,
		Scalars: map[string]int{
			"rounds":                  c.rounds,
			"window":                  len(c.injWin.buf),
			"window_rounds":           c.injWin.n,
			"injected":                c.injected,
			"delivered":               c.delivered,
			"dropped":                 c.dropped,
			"window_injected":         winInj,
			"window_delivered":        winDel,
			"window_dropped":          winDrop,
			"goodput_window_permille": permille(winDel, winInj),
			"drop_window_permille":    permille(winDrop, winInj),
		},
		Series: []SeriesRecord{
			{Key: "window_injected", Agg: AggSum, Stride: 1, Rounds: c.rounds, Tail: c.injWin.values()},
			{Key: "window_delivered", Agg: AggSum, Stride: 1, Rounds: c.rounds, Tail: c.delWin.values()},
		}}
}
