package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// digestRootRE matches the names of functions that begin a digest or
// canonical-wire path: content addressing (RecordsDigest, Scenario.Digest),
// canonical marshalling (Marshal, appendCanonical, JSONMap, label),
// wire-record construction (Record/Records, Summarize, Merge), seed
// derivation (deriveSeed), and parameter canonicalization (Resolve).
// Everything statically reachable from such a function inside its package
// is "digest path" for detmap, nofloat, and hasherr.
var digestRootRE = regexp.MustCompile(
	`Digest|digest|Canonical|canonical|Summarize|deriveSeed|` +
		`^(Marshal|MarshalJSON|Merge|MergeAll|Record|Records|RecordsSorted|JSONMap|Resolve|label)$`)

// funcsOf indexes the package's function and method declarations by their
// type-checker object.
func funcsOf(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// digestReach returns the set of declarations statically reachable (via
// same-package calls) from any function whose name matches digestRootRE.
func digestReach(pass *Pass) map[*ast.FuncDecl]bool {
	decls := funcsOf(pass)
	reached := map[*types.Func]bool{}
	var queue []*types.Func
	for fn := range decls {
		if digestRootRE.MatchString(fn.Name()) {
			reached[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		decl := decls[fn]
		if decl == nil || decl.Body == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || reached[callee] {
				return true
			}
			if _, local := decls[callee]; local {
				reached[callee] = true
				queue = append(queue, callee)
			}
			return true
		})
	}
	out := map[*ast.FuncDecl]bool{}
	for fn := range reached {
		if d := decls[fn]; d != nil {
			out[d] = true
		}
	}
	return out
}

// deterministicPackages names the directories whose packages carry the
// determinism contract: no wall clock, no global rand, seeds must flow
// from the keyed derivation. Service, CLI, rendering, and experiment
// driver code is deliberately absent.
var deterministicPackages = map[string]bool{
	"sim": true, "faults": true, "harness": true, "metrics": true,
	"scenario": true, "registry": true, "adversary": true, "core": true,
	"buffer": true, "rat": true,
}

// isDeterministicPkg reports whether the import path is one of the
// packages under the determinism contract: an "internal/" path whose
// final element is in deterministicPackages.
func isDeterministicPkg(path string) bool {
	return internalPkgIn(path, deterministicPackages)
}

// wallClockPackages extends ONLY the nowallclock scope beyond the
// deterministic set. The fleet coordinator and the live observation
// tier are deliberately not deterministic packages — their views carry
// wall-clock durations and their digests come from the daemons, so
// nofloat/detmap/seedflow have nothing to enforce there — but their
// retry, backoff, steal, snapshot-timestamp, and poll-pacing decisions
// must never read the wall clock directly: all time flows through the
// injected live.Clock (fleet.Clock is its alias), so tests can drive
// schedules deterministically. internal/live carries the one sanctioned
// time.Now, behind an explicit allow directive in SystemClock.
var wallClockPackages = map[string]bool{
	"fleet": true,
	"live":  true,
}

// isWallClockPkg reports whether nowallclock covers the import path: the
// deterministic packages plus the wallClockPackages extension.
func isWallClockPkg(path string) bool {
	return isDeterministicPkg(path) || internalPkgIn(path, wallClockPackages)
}

// internalPkgIn reports whether path is an "internal/" import path whose
// final element is in the given set.
func internalPkgIn(path string, set map[string]bool) bool {
	i := strings.LastIndex(path, "internal/")
	if i < 0 {
		return false
	}
	rest := path[i+len("internal/"):]
	return set[rest]
}

// calleeOf resolves a call expression to the invoked function or method,
// if it is statically known.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// pkgPathOf returns the import path of the package a function belongs to
// ("" for builtins).
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
