package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// SeedFlow vets where RNG seeds come from in the deterministic packages.
// Every random decision in a run must trace back to the cell's derived
// seed (harness.deriveSeed → adversary constructors, faults.NewStream's
// domain-tagged splitmix64): that is what makes digests identical at any
// worker count and fault schedules nested across drop probabilities.
//
// A call to rand.NewSource / rand.New / rand.NewPCG / rand.NewChaCha8 is
// therefore only legal when its seed argument visibly flows from outside
// the function (a parameter, or a field of one — the caller got it from
// the derivation) or from a keyed derivation helper (a callee whose name
// matches derive/mix/split/stream/fold/seed). Literal seeds, package
// state, and locally invented values are flagged.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc:  "RNG construction must derive seeds from the keyed cell-seed hash, never ad hoc",
	Run:  runSeedFlow,
}

// seedDeriverRE matches the names of functions trusted to derive seeds
// from the keyed cell-seed hash.
var seedDeriverRE = regexp.MustCompile(`(?i)derive|mix|split|stream|fold|seed`)

// seededConstructors are the rand functions whose argument is (or wraps)
// a seed.
var seededConstructors = map[string]bool{
	"NewSource": true, "New": true, "NewPCG": true, "NewChaCha8": true,
}

func runSeedFlow(pass *Pass) error {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, decl := range funcsOf(pass) {
		if decl.Body == nil {
			continue
		}
		params := paramObjects(pass, decl)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(pass.Info, call)
			if callee == nil {
				return true
			}
			pkg := pkgPathOf(callee)
			if (pkg != "math/rand" && pkg != "math/rand/v2") || !seededConstructors[callee.Name()] {
				return true
			}
			for _, arg := range call.Args {
				if !seedFlows(pass, params, arg) {
					pass.Reportf(call.Pos(), "ad-hoc seed for rand.%s in deterministic package %s; derive it from the keyed cell-seed hash (or flow it in as a parameter)", callee.Name(), pass.Pkg.Path())
					return false
				}
			}
			return true
		})
	}
	return nil
}

// paramObjects collects the objects bound to a declaration's parameters
// and receiver.
func paramObjects(pass *Pass, decl *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	collect(decl.Recv)
	collect(decl.Type.Params)
	return out
}

// seedFlows reports whether the expression's value visibly derives from a
// flowed-in seed: it mentions a parameter (directly or through field
// selection and integer conversions), or calls a derivation helper.
// Nested rand constructors (rand.New(rand.NewSource(seed))) recurse: the
// inner call is vetted on its own, so the outer argument passes.
func seedFlows(pass *Pass, params map[types.Object]bool, e ast.Expr) bool {
	ok := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[x]; obj != nil && params[obj] {
				ok = true
				return false
			}
		case *ast.CallExpr:
			if callee := calleeOf(pass.Info, x); callee != nil {
				if seedDeriverRE.MatchString(callee.Name()) {
					ok = true
					return false
				}
				if p := pkgPathOf(callee); (p == "math/rand" || p == "math/rand/v2") && seededConstructors[callee.Name()] {
					// The nested constructor's own argument is checked at
					// its own call site.
					ok = true
					return false
				}
			}
		}
		return true
	})
	return ok
}
