package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates, parses, and type-checks the packages matching patterns
// (relative to dir, typically a module root). It shells out to
// `go list -json -export -deps`, which both resolves the patterns and
// materializes export data for every dependency in the build cache, then
// type-checks the matched packages from source against that export data —
// no tooling beyond the standard library and the go command itself.
//
// Test files are not loaded: the invariants the analyzers enforce are
// properties of shipped code, and tests legitimately use wall clocks,
// floats, and ad-hoc seeds.
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go %v: %v\n%s", args, err, stderr.String())
	}
	var targets []*listPackage
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s", p.Error.Err)
		}
		lp := p
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, &lp)
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, t *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
