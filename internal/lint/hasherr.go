package lint

import (
	"go/ast"
	"go/types"
)

// HashErr flags discarded hash and encoder errors in digest construction.
// hash.Hash.Write is documented never to fail, but "documented" is not
// "checked": a digest built through an interface that silently drops
// bytes (a short write, a failing encoder) would content-address the
// wrong record set. Inside functions reachable from digest roots, every
// hash write (h.Write, fmt.Fprintf(h, ...)) and every encoder Encode must
// have its error consumed — assigning all results to blanks still counts
// as discarding.
var HashErr = &Analyzer{
	Name: "hasherr",
	Doc:  "no discarded hash.Hash.Write or encoder errors in digest construction",
	Run:  runHashErr,
}

func runHashErr(pass *Pass) error {
	for decl := range digestReach(pass) {
		if decl.Body == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.AssignStmt:
				if len(st.Rhs) == 1 && allBlank(st.Lhs) {
					call, _ = ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
				}
			}
			if call == nil {
				return true
			}
			if msg := discardedDigestError(pass, call); msg != "" {
				pass.Reportf(call.Pos(), "%s in digest path %s; check the error (a dropped byte is a wrong digest)", msg, declName(decl))
			}
			return true
		})
	}
	return nil
}

// allBlank reports whether every lhs expression is the blank identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// discardedDigestError classifies a result-discarding call: a non-empty
// return value describes the violation.
func discardedDigestError(pass *Pass, call *ast.CallExpr) string {
	// h.Write(...) where h's static type is a hash. The receiver
	// expression's type is checked (not the method's declaring package)
	// because hash.Hash gets its Write from the embedded io.Writer.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Write" {
		if tv, ok := pass.Info.Types[sel.X]; ok && isHashType(tv.Type) {
			return "unchecked hash Write"
		}
	}
	fn := calleeOf(pass.Info, call)
	if fn == nil {
		return ""
	}
	pkg := pkgPathOf(fn)
	// fmt.Fprintf/Fprint/Fprintln(h, ...) writing into a hash.
	if pkg == "fmt" && (fn.Name() == "Fprintf" || fn.Name() == "Fprint" || fn.Name() == "Fprintln") && len(call.Args) > 0 {
		if tv, ok := pass.Info.Types[call.Args[0]]; ok && isHashType(tv.Type) {
			return "unchecked fmt." + fn.Name() + " into a hash"
		}
	}
	// Encoder errors: encoding/json and encoding/gob Encode.
	if fn.Name() == "Encode" && (pkg == "encoding/json" || pkg == "encoding/gob") {
		return "unchecked " + pkg + " Encode"
	}
	return ""
}

// isHashType reports whether t is (or points to) a type from package
// hash, or a named type from a crypto/* or hash/* package implementing a
// Write method — i.e. a hash state being written to.
func isHashType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if path == "hash" {
		return true
	}
	if len(path) >= 5 && path[:5] == "hash/" {
		return true
	}
	if len(path) >= 7 && path[:7] == "crypto/" {
		return true
	}
	return false
}
