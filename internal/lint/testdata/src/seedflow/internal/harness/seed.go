// Package harness sits at a deterministic import path, so every RNG
// seed must visibly flow from a parameter or a keyed derivation helper.
package harness

import "math/rand"

// baseline is package state: seeding from it is ad hoc.
var baseline int64

// NewAdversary flows the seed in as a parameter: the caller derived it,
// so construction here is legal.
func NewAdversary(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// deriveSeed is a recognized derivation helper (name matches the
// derive/mix/split/stream family).
func deriveSeed(base int64, cell int) int64 {
	return base ^ int64(cell)*0x9e3779b9
}

// FromDerivation seeds from the keyed derivation: legal.
func FromDerivation(base int64, cell int) *rand.Rand {
	return rand.New(rand.NewSource(deriveSeed(base, cell)))
}

// AdHocLiteral invents a constant seed: flagged.
func AdHocLiteral() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want "ad-hoc seed for rand.NewSource"
}

// AdHocGlobal seeds from package state: flagged.
func AdHocGlobal() rand.Source {
	return rand.NewSource(baseline) // want "ad-hoc seed for rand.NewSource"
}
