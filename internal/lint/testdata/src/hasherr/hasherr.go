// Package hasherr exercises the hasherr analyzer: digest construction
// must consume hash-write and encoder errors.
package hasherr

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
)

// RecordsDigest is a digest root.
func RecordsDigest(lines [][]byte) []byte {
	h := sha256.New()
	fmt.Fprintf(h, "v%d\n", 1) // want "unchecked fmt.Fprintf into a hash"
	for _, l := range lines {
		h.Write(l) // want "unchecked hash Write"
	}
	_, _ = h.Write(nil) // want "unchecked hash Write"
	if _, err := h.Write([]byte{'\n'}); err != nil {
		panic(err)
	}
	return h.Sum(nil)
}

// digestJSON is digest path by name; discarded encoder errors are
// flagged.
func digestJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.Encode(v) // want "unchecked encoding/json Encode"
}

var _ = digestJSON

// renderChecksum is not digest path: the unchecked write is vet's
// business, not aqtlint's.
func renderChecksum(b []byte) []byte {
	h := sha256.New()
	h.Write(b)
	return h.Sum(nil)
}

var _ = renderChecksum
