// Package metrics exercises the nofloat analyzer at a deterministic
// import path: wire records and digest-reachable code must be
// integer-only.
package metrics

// LoadSummary is a wire record (name ends in Summary): float fields are
// flagged wherever they appear.
type LoadSummary struct {
	Count int
	Mean  float64 // want "float field on wire record LoadSummary"
}

// RenderStats is neither a wire record nor digest path: floats are fine.
type RenderStats struct {
	Mean float64
}

// Summarize is a digest root; quantile becomes digest path by
// reachability.
func Summarize(counts []int) map[string]int {
	return map[string]int{"p50": quantile(len(counts), 50)}
}

func quantile(count int, p float64) int { // want "float64 in signature of digest-path quantile"
	rank := int(p/100*float64(count) + 0.5) // want "float arithmetic in digest path quantile"
	if rank >= count {
		rank = count - 1
	}
	return rank
}

// renderBar is unreachable from digest roots: display math floats freely.
func renderBar(frac float64) int {
	return int(frac * 10)
}

var _ = renderBar
