// Package render sits outside the deterministic packages: display
// statistics may use floats, even on types named like wire records.
package render

// BarSummary is rendering state, not a canonical wire record: its float
// field is legal here.
type BarSummary struct {
	Mean float64
}

// Scale is unreachable from digest roots and outside the deterministic
// packages: float math is fine.
func Scale(s BarSummary, width int) int {
	return int(s.Mean * float64(width))
}
