// Package detmap exercises the detmap analyzer: map iteration in
// digest-reachable functions must use the collect-and-sort idiom.
package detmap

import "sort"

// RecordsDigest is a digest root; everything it reaches is digest path.
func RecordsDigest(m map[string]int) string {
	out := ""
	for k, v := range m { // want "range over map with values in digest path RecordsDigest"
		out += k
		_ = v
	}
	for k := range m { // want "order-sensitive range over map in digest path RecordsDigest"
		out = out + k
	}
	// The collect-keys idiom is the permitted shape.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out += k
	}
	return out + helper(m)
}

// helper is reachable from the root, so its map loops are digest path too.
func helper(m map[string]int) string {
	s := ""
	for k := range m { // want "order-sensitive range over map in digest path helper"
		s = s + k
	}
	return s
}

// CountValues is unreachable from any digest root: maps iterate freely.
func CountValues(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// CanonicalKeys (a digest root by name) shows guarded collection:
// if-wrapped appends and counter bumps stay legal.
func CanonicalKeys(m map[string]bool) []string {
	var keys []string
	seen := 0
	for k := range m {
		if m[k] {
			keys = append(keys, k)
			seen++
		}
	}
	sort.Strings(keys)
	_ = seen
	return keys
}
