// Package tool sits outside the deterministic packages (a cmd/ path), so
// wall-clock and global rand use is legal: nowallclock must stay silent
// here.
package tool

import (
	"math/rand"
	"time"
)

// Uptime is service/CLI territory: wall clocks are fine.
func Uptime(start time.Time) time.Duration {
	_ = rand.Int()
	return time.Since(start)
}
