// Package fleet sits at the nowallclock-extension import path
// (.../internal/fleet): it is NOT a deterministic package (no digest or
// wire-record construction happens here), but its retry/backoff/steal
// scheduling must flow through an injected clock, so direct wall-clock
// reads and the global math/rand source are forbidden all the same.
package fleet

import (
	"context"
	"math/rand"
	"time"
)

// Clock mirrors the real coordinator's injected clock.
type Clock interface {
	Now() time.Time
	Sleep(ctx context.Context, d time.Duration) error
}

// Backoff shows the forbidden shapes: scheduling decisions reading the
// wall clock or the process-global RNG directly.
func Backoff(deadline time.Time) time.Duration {
	start := time.Now()      // want "time.Now in clock-injected package"
	_ = time.Since(start)    // want "time.Since in clock-injected package"
	_ = time.Until(deadline) // want "time.Until in clock-injected package"
	jitter := rand.Intn(100) // want "global rand.Intn in clock-injected package"
	return time.Duration(jitter) * time.Millisecond
}

// Wait shows the legal shapes: time flows through the injected Clock,
// and timers (which consume a caller-supplied duration rather than
// reading the clock) stay legal.
func Wait(ctx context.Context, c Clock, d time.Duration) error {
	_ = c.Now()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return c.Sleep(ctx, d)
	}
}

// sanctioned shows the one legal escape hatch: a written //aqtlint:allow
// with a reason, mirroring the real SystemClock implementation.
func sanctioned() time.Time {
	//aqtlint:allow nowallclock -- fixture mirror of SystemClock, the one sanctioned wall-clock read
	return time.Now()
}
