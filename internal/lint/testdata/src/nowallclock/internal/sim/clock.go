// Package sim sits at a deterministic import path
// (.../internal/sim), so wall-clock reads and the global math/rand
// source are forbidden here.
package sim

import (
	"math/rand"
	"time"
)

// Step shows the three forbidden shapes.
func Step() int64 {
	now := time.Now()                  // want "time.Now in deterministic package"
	_ = time.Since(now)                // want "time.Since in deterministic package"
	n := rand.Int63()                  // want "global rand.Int63 in deterministic package"
	rand.Shuffle(3, func(int, int) {}) // want "global rand.Shuffle"
	return n
}

// Seeded shows the legal shape: an explicitly seeded source (seedflow
// separately vets where the seed comes from).
func Seeded(seed int64) int64 {
	r := rand.New(rand.NewSource(seed))
	return r.Int63()
}
