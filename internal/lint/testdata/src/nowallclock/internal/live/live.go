// Package live sits at the second nowallclock-extension import path
// (.../internal/live): the observation tier is NOT a deterministic
// package (its views carry elapsed times and rates), but snapshot
// timestamps and poll pacing must flow through the injected Clock, so
// direct wall-clock reads and the global math/rand source are forbidden
// all the same.
package live

import (
	"context"
	"math/rand"
	"time"
)

// Clock mirrors the real observation tier's injected clock.
type Clock interface {
	Now() time.Time
	Sleep(ctx context.Context, d time.Duration) error
}

// Stamp shows the forbidden shapes: a snapshot timestamping itself from
// the wall clock or jittering its poll schedule off the global RNG.
func Stamp(started time.Time) time.Duration {
	now := time.Now()       // want "time.Now in clock-injected package"
	_ = time.Since(started) // want "time.Since in clock-injected package"
	jitter := rand.Intn(50) // want "global rand.Intn in clock-injected package"
	_ = time.Until(now)     // want "time.Until in clock-injected package"
	return time.Duration(jitter)
}

// Elapsed shows the legal shape: elapsed time computed from an injected
// Clock's reads, and pacing through its Sleep.
func Elapsed(ctx context.Context, c Clock, started time.Time) (time.Duration, error) {
	d := c.Now().Sub(started)
	return d, c.Sleep(ctx, time.Second)
}

// sanctioned mirrors live.SystemClock: the one legal wall-clock read,
// behind a written allow directive with a reason.
func sanctioned() time.Time {
	//aqtlint:allow nowallclock -- fixture mirror of live.SystemClock, the one sanctioned wall-clock read
	return time.Now()
}
