// Package sim exercises the //aqtlint:allow suppression path at a
// deterministic import path.
package sim

import "time"

// Deadline carries a well-formed suppression: the diagnostic on the next
// line is swallowed and the directive is "used".
func Deadline() time.Time {
	//aqtlint:allow nowallclock -- deadlines are wall-clock by design; never on the digest path
	return time.Now()
}

// SameLine suppresses on the flagged line itself.
func SameLine() time.Time {
	return time.Now() //aqtlint:allow nowallclock -- wall-clock by design
}

// MissingReason is malformed — no "-- reason" — so it suppresses nothing
// and is itself reported.
func MissingReason() time.Time {
	/* want "has no reason" */ //aqtlint:allow nowallclock
	return time.Now()          // want "time.Now in deterministic package"
}

// Stale names a real analyzer but covers no diagnostic: reported so
// exemptions cannot outlive the code they excused.
func Stale() int {
	/* want "suppresses nothing" */ //aqtlint:allow nowallclock -- premature suppression
	return 1
}
