package lint

import (
	"go/ast"
	"go/types"
)

// DetMap flags `for range` over a map inside any function statically
// reachable from digest, canonical-marshal, or wire-record code. Map
// iteration order is randomized per run, so any such loop whose effect
// depends on order silently breaks digest stability.
//
// The one permitted shape is the collect-keys idiom: a key-only range
// (`for k := range m`) whose body only accumulates into order-insensitive
// sinks — appends to a slice (sorted afterwards by convention), writes to
// another map, or counter bumps — optionally behind `if` guards:
//
//	keys := make([]string, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)
//
// Anything else — ranging with the value, indexing the map in the body,
// early returns, calls — must restructure to iterate sorted keys, or
// carry an //aqtlint:allow detmap with a written order-independence
// argument.
var DetMap = &Analyzer{
	Name: "detmap",
	Doc:  "map iteration in digest/canonical-marshal paths must collect and sort keys first",
	Run:  runDetMap,
}

func runDetMap(pass *Pass) error {
	reach := digestReach(pass)
	for decl := range reach {
		if decl.Body == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if rng.Value != nil {
				pass.Reportf(rng.Pos(), "range over map with values in digest path %s; iterate sorted keys instead", declName(decl))
				return true
			}
			if !isCollectBody(pass, rng) {
				pass.Reportf(rng.Pos(), "order-sensitive range over map in digest path %s; collect keys, sort, then iterate", declName(decl))
			}
			return true
		})
	}
	return nil
}

// declName renders a function declaration's name, with receiver type for
// methods.
func declName(decl *ast.FuncDecl) string {
	name := decl.Name.Name
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		t := decl.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + name
		}
		if ix, ok := t.(*ast.IndexExpr); ok {
			if id, ok := ix.X.(*ast.Ident); ok {
				return id.Name + "." + name
			}
		}
	}
	return name
}

// isCollectBody reports whether a key-only map range body is an
// order-insensitive collector: every statement (recursing through if
// blocks) is an append into a slice, a map-element write, a counter
// bump, or a bare continue.
func isCollectBody(pass *Pass, rng *ast.RangeStmt) bool {
	var stmtOK func(s ast.Stmt) bool
	stmtOK = func(s ast.Stmt) bool {
		switch st := s.(type) {
		case *ast.AssignStmt:
			return collectAssignOK(st)
		case *ast.IncDecStmt:
			return true
		case *ast.BranchStmt:
			return st.Label == nil && st.Tok.String() == "continue"
		case *ast.IfStmt:
			if st.Init != nil && !stmtOK(st.Init) {
				return false
			}
			for _, bs := range st.Body.List {
				if !stmtOK(bs) {
					return false
				}
			}
			switch e := st.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				for _, bs := range e.List {
					if !stmtOK(bs) {
						return false
					}
				}
			case *ast.IfStmt:
				return stmtOK(e)
			default:
				return false
			}
			return true
		default:
			return false
		}
	}
	for _, s := range rng.Body.List {
		if !stmtOK(s) {
			return false
		}
	}
	return true
}

// collectAssignOK accepts `x = append(x, ...)`, `m[k] = v`, compound
// counter updates (`n += 1`), and loop-local defines (`:=` introduces a
// fresh variable each iteration, so it cannot carry cross-iteration
// state; only plain `=` to an outer variable can).
func collectAssignOK(st *ast.AssignStmt) bool {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return false
	}
	switch st.Tok.String() {
	case ":=", "+=", "-=", "|=":
		return true
	}
	if _, ok := st.Lhs[0].(*ast.IndexExpr); ok {
		return true
	}
	if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			return true
		}
	}
	return false
}
