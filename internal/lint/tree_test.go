package lint

import (
	"path/filepath"
	"testing"
)

// TestModuleTreeClean runs every analyzer over the real module — the same
// sweep `go run ./cmd/aqtlint ./...` performs — and requires zero
// diagnostics. The suite ships green with no silent exemptions: every
// allow directive in the tree carries a written reason, and a new
// violation anywhere fails this test before it reaches CI's lint job.
func TestModuleTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module; skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	diags, err := Run(pkgs, Analyzers)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
