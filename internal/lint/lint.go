// Package lint is aqtlint: a suite of static analyzers that mechanically
// enforce the determinism and wire-record invariants this reproduction's
// guarantees rest on — served digests equal local digests at any worker
// count, fault schedules nest across drop probabilities, wire records are
// canonical and integer-only.
//
// The suite is built on a small self-contained analysis framework
// (Analyzer / Pass / Diagnostic, a `go list -export` package loader, and
// an analysistest-style fixture runner) so it needs nothing beyond the Go
// standard library and toolchain. The five analyzers are:
//
//	detmap      — map iteration in digest/canonical-marshal paths must
//	              collect-and-sort keys first
//	nowallclock — no time.Now/time.Since or global math/rand in the
//	              deterministic packages
//	nofloat     — no float types or arithmetic in wire-record and digest
//	              paths (rendering/Prometheus code stays legal)
//	seedflow    — RNG construction must derive from flowed-in seeds or
//	              keyed-hash derivers, never ad-hoc rand.NewSource values
//	hasherr     — no discarded hash.Hash.Write / encoder errors in digest
//	              construction
//
// A diagnostic can be suppressed — with a written reason — by a
// same-line or preceding-line comment:
//
//	//aqtlint:allow <name> -- <reason>
//
// Suppressions without a reason are themselves diagnostics: the point of
// the suite is zero silent exemptions.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzers is the full aqtlint suite, in reporting order.
var Analyzers = []*Analyzer{DetMap, NoWallClock, NoFloat, SeedFlow, HashErr}

// Analyzer is one named rule. Run inspects a single package and reports
// findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //aqtlint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the analyzer over one type-checked package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's syntax, parsed with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the package's type information (Defs, Uses, Types,
	// Selections are populated).
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: a position, the analyzer that produced it,
// and the message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// AllowPrefix is the suppression-comment marker. The full form is
// "//aqtlint:allow <name>[,<name>...] -- <reason>"; it suppresses the
// named analyzers' diagnostics on its own line and on the following line.
const AllowPrefix = "aqtlint:allow"

// allowDirective is one parsed suppression comment.
type allowDirective struct {
	names  []string
	reason string
	pos    token.Position
	used   bool
}

// covers reports whether the directive names the analyzer.
func (a *allowDirective) covers(analyzer string) bool {
	for _, n := range a.names {
		if n == analyzer {
			return true
		}
	}
	return false
}

// parseAllow parses a comment's text (without the leading "//"). It
// returns nil when the comment is not an aqtlint directive. A directive
// with no names or an empty reason is returned with those fields empty;
// the caller turns that into a diagnostic.
func parseAllow(text string) *allowDirective {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, AllowPrefix) {
		return nil
	}
	rest := strings.TrimPrefix(text, AllowPrefix)
	d := &allowDirective{}
	body, reason, ok := strings.Cut(rest, "--")
	if ok {
		d.reason = strings.TrimSpace(reason)
	}
	for _, f := range strings.FieldsFunc(strings.TrimSpace(body), func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		d.names = append(d.names, f)
	}
	return d
}

// Run executes every analyzer over every package, applies //aqtlint:allow
// suppressions, and returns the surviving diagnostics sorted by position.
// Malformed suppressions (no analyzer names, or a missing reason) are
// reported as diagnostics under the pseudo-analyzer "allow".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &pkgDiags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		diags = append(diags, applyAllows(pkg, pkgDiags)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// applyAllows filters a package's diagnostics through its suppression
// comments and appends diagnostics for malformed directives.
func applyAllows(pkg *Package, diags []Diagnostic) []Diagnostic {
	// file -> line -> directives anchored there.
	byLine := map[string]map[int][]*allowDirective{}
	var all []*allowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				d := parseAllow(text)
				if d == nil {
					continue
				}
				d.pos = pkg.Fset.Position(c.Pos())
				all = append(all, d)
				m := byLine[d.pos.Filename]
				if m == nil {
					m = map[int][]*allowDirective{}
					byLine[d.pos.Filename] = m
				}
				m[d.pos.Line] = append(m[d.pos.Line], d)
			}
		}
	}
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, dir := range byLine[d.Pos.Filename][line] {
				if dir.covers(d.Analyzer) && len(dir.names) > 0 && dir.reason != "" {
					dir.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, dir := range all {
		switch {
		case len(dir.names) == 0:
			out = append(out, Diagnostic{Pos: dir.pos, Analyzer: "allow",
				Message: "aqtlint:allow names no analyzer"})
		case dir.reason == "":
			out = append(out, Diagnostic{Pos: dir.pos, Analyzer: "allow",
				Message: fmt.Sprintf("aqtlint:allow %s has no reason; write \"//aqtlint:allow %s -- <why>\"",
					strings.Join(dir.names, ","), strings.Join(dir.names, ","))})
		case !dir.used:
			out = append(out, Diagnostic{Pos: dir.pos, Analyzer: "allow",
				Message: fmt.Sprintf("aqtlint:allow %s suppresses nothing here; delete the stale suppression",
					strings.Join(dir.names, ","))})
		}
	}
	return out
}
