package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Fixtures are analysistest-style golden trees under testdata/src/<name>:
// every directory holding .go files type-checks as one package whose
// import path is its path relative to testdata/src (so a fixture placed
// at nowallclock/internal/sim/ exercises the deterministic-package
// scoping). Lines carry expectations as trailing comments:
//
//	time.Now() // want "wall-clock"
//
// Each quoted string is a regexp that must match a diagnostic reported on
// that line; diagnostics and expectations must match one-to-one.

// wantRE extracts the quoted expectation regexps from a want comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// CheckFixture loads the fixture tree rooted at srcRoot/name, runs the
// analyzer over every package in it, and compares diagnostics against the
// tree's // want comments. It returns one human-readable string per
// mismatch (unexpected, missing, or wrongly-worded diagnostics); an empty
// slice means the fixture is golden.
func CheckFixture(srcRoot, name string, a *Analyzer) ([]string, error) {
	pkgs, err := LoadFixtureTree(srcRoot, name)
	if err != nil {
		return nil, err
	}
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		return nil, err
	}
	// Collect expectations: file -> line -> pending regexps.
	type exp struct {
		re   *regexp.Regexp
		used bool
	}
	expect := map[string]map[int][]*exp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
						pat, err := strconv.Unquote(`"` + m[1] + `"`)
						if err != nil {
							return nil, fmt.Errorf("lint: %s:%d: bad want pattern %q: %w", pos.Filename, pos.Line, m[1], err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							return nil, fmt.Errorf("lint: %s:%d: bad want regexp %q: %w", pos.Filename, pos.Line, pat, err)
						}
						if expect[pos.Filename] == nil {
							expect[pos.Filename] = map[int][]*exp{}
						}
						expect[pos.Filename][pos.Line] = append(expect[pos.Filename][pos.Line], &exp{re: re})
					}
				}
			}
		}
	}
	var problems []string
	for _, d := range diags {
		matched := false
		for _, e := range expect[d.Pos.Filename][d.Pos.Line] {
			if !e.used && e.re.MatchString(d.Message) {
				e.used = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic at %s", d))
		}
	}
	for file, lines := range expect {
		for line, exps := range lines {
			for _, e := range exps {
				if !e.used {
					problems = append(problems, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", file, line, e.re))
				}
			}
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// LoadFixtureTree parses and type-checks every package directory under
// srcRoot/name. Fixture packages may import only the standard library;
// their export data is materialized with one `go list -export` call.
func LoadFixtureTree(srcRoot, name string) ([]*Package, error) {
	root := filepath.Join(srcRoot, name)
	byDir := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			byDir[dir] = append(byDir[dir], path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walking fixture %s: %w", root, err)
	}
	if len(byDir) == 0 {
		return nil, fmt.Errorf("lint: fixture %s holds no Go files", root)
	}
	dirs := make([]string, 0, len(byDir))
	for dir := range byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	pkgFiles := map[string][]*ast.File{}
	imports := map[string]bool{}
	for _, dir := range dirs {
		sort.Strings(byDir[dir])
		for _, path := range byDir[dir] {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			pkgFiles[dir] = append(pkgFiles[dir], f)
			for _, imp := range f.Imports {
				p, _ := strconv.Unquote(imp.Path.Value)
				imports[p] = true
			}
		}
	}
	exports, err := stdlibExports(imports)
	if err != nil {
		return nil, err
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: fixture imports %q, which has no export data (fixtures may import only the standard library)", path)
		}
		return os.Open(f)
	})
	var pkgs []*Package
	for _, dir := range dirs {
		importPath, err := filepath.Rel(srcRoot, dir)
		if err != nil {
			return nil, err
		}
		importPath = filepath.ToSlash(importPath)
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(importPath, fset, pkgFiles[dir], info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking fixture %s: %w", importPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: importPath,
			Dir:        dir,
			Fset:       fset,
			Files:      pkgFiles[dir],
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// stdlibExports materializes export data for the named stdlib packages
// (and their dependencies) and returns importPath -> export file.
func stdlibExports(imports map[string]bool) (map[string]string, error) {
	exports := map[string]string{}
	if len(imports) == 0 {
		return exports, nil
	}
	args := []string{"list", "-json", "-export", "-deps"}
	for p := range imports {
		args = append(args, p)
	}
	sort.Strings(args[4:])
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go %v: %v\n%s", args, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
