package lint

import (
	"testing"
)

// TestFixtures runs every analyzer over its golden fixture tree: one
// positive and one negative shape per rule, plus the suppression paths.
func TestFixtures(t *testing.T) {
	cases := []struct {
		fixture  string
		analyzer *Analyzer
	}{
		{"detmap", DetMap},
		{"nowallclock", NoWallClock},
		{"nofloat", NoFloat},
		{"seedflow", SeedFlow},
		{"hasherr", HashErr},
		{"allow", NoWallClock},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			problems, err := CheckFixture("testdata/src", tc.fixture, tc.analyzer)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range problems {
				t.Error(p)
			}
		})
	}
}

// TestParseAllow pins the directive grammar.
func TestParseAllow(t *testing.T) {
	cases := []struct {
		text   string
		names  []string
		reason string
		nil_   bool
	}{
		{text: "aqtlint:allow detmap -- keys are sorted upstream", names: []string{"detmap"}, reason: "keys are sorted upstream"},
		{text: "aqtlint:allow detmap,nofloat -- shared reason", names: []string{"detmap", "nofloat"}, reason: "shared reason"},
		{text: "aqtlint:allow detmap", names: []string{"detmap"}},
		{text: "aqtlint:allow -- reason but no analyzer", reason: "reason but no analyzer"},
		{text: "just a comment", nil_: true},
		{text: "want \"not a directive\"", nil_: true},
	}
	for _, tc := range cases {
		d := parseAllow(tc.text)
		if tc.nil_ {
			if d != nil {
				t.Errorf("parseAllow(%q) = %+v, want nil", tc.text, d)
			}
			continue
		}
		if d == nil {
			t.Errorf("parseAllow(%q) = nil, want directive", tc.text)
			continue
		}
		if len(d.names) != len(tc.names) {
			t.Errorf("parseAllow(%q) names = %v, want %v", tc.text, d.names, tc.names)
			continue
		}
		for i := range tc.names {
			if d.names[i] != tc.names[i] {
				t.Errorf("parseAllow(%q) names = %v, want %v", tc.text, d.names, tc.names)
			}
		}
		if d.reason != tc.reason {
			t.Errorf("parseAllow(%q) reason = %q, want %q", tc.text, d.reason, tc.reason)
		}
	}
}
