package lint

import (
	"go/ast"
)

// NoWallClock forbids wall-clock reads and the global math/rand source in
// the deterministic packages (internal/{sim,faults,harness,metrics,
// scenario,registry,adversary,core,buffer,rat}) and, beyond them, in
// internal/fleet and internal/live (wallClockPackages): the
// coordinator's retry, backoff, and steal logic and the live tier's
// snapshot timestamps and poll pacing must draw all time from the
// injected live.Clock (fleet.Clock is its alias) so schedules replay
// deterministically under test. The single sanctioned time.Now lives in
// live.SystemClock behind an explicit allow directive. Wall-clock
// values and process-global RNG state are exactly the inputs that vary
// across runs, machines, and worker counts — nothing on a simulation,
// digest, wire-record, or scheduling-decision path may observe them.
// Service and CLI layers are outside the contract and free to use both.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc:  "no time.Now/time.Since or global math/rand in deterministic packages or internal/{fleet,live}",
	Run:  runNoWallClock,
}

// rngConstructors are the math/rand functions that build *explicitly
// seeded* sources and are therefore legal under nowallclock (seedflow
// separately vets where their seeds come from).
var rngConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runNoWallClock(pass *Pass) error {
	if !isWallClockPkg(pass.Pkg.Path()) {
		return nil
	}
	// Wording tracks why the package is in scope: the deterministic
	// packages carry the full replay contract; the wallClockPackages
	// extension (fleet, live) is in scope because its scheduling and
	// snapshot timestamps must flow through an injected clock.
	scope := "deterministic package"
	if !isDeterministicPkg(pass.Pkg.Path()) {
		scope = "clock-injected package"
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.Info, call)
			if fn == nil {
				return true
			}
			switch pkgPathOf(fn) {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(call.Pos(), "time.%s in %s %s; wall-clock reads break replay determinism", fn.Name(), scope, pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				sig := fn.Signature()
				if sig != nil && sig.Recv() != nil {
					return true // methods on an explicitly seeded *Rand are fine
				}
				if !rngConstructors[fn.Name()] {
					pass.Reportf(call.Pos(), "global rand.%s in %s %s; use an explicitly seeded source derived from the cell seed", fn.Name(), scope, pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}
