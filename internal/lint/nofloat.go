package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// NoFloat forbids floating-point types and arithmetic on wire-record and
// digest paths. Summaries and cell records are documented as canonical
// integer-only: float arithmetic is not bit-reproducible across
// architectures (Go may fuse multiply-adds into FMA), so a single float
// feeding a wire record can make the same scenario digest differently on
// different machines. Rendering, Prometheus, and display code — anything
// not reachable from a digest root — stays free to use floats.
//
// The analyzer flags, inside functions reachable from digest roots:
// float literals, conversions to float, float arithmetic, and float
// parameters or results; and, in the deterministic packages, float
// fields on wire-record struct types (names ending in Record or
// Summary).
var NoFloat = &Analyzer{
	Name: "nofloat",
	Doc:  "no float types or arithmetic in wire-record and digest paths",
	Run:  runNoFloat,
}

// wireRecordRE matches the names of struct types that are canonical wire
// records.
var wireRecordRE = regexp.MustCompile(`(Record|Summary)$`)

func runNoFloat(pass *Pass) error {
	checkWireRecordFields(pass)
	for decl := range digestReach(pass) {
		checkSignature(pass, decl)
		if decl.Body == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BasicLit:
				if e.Kind == token.FLOAT {
					pass.Reportf(e.Pos(), "float literal in digest path %s", declName(decl))
				}
			case *ast.CallExpr:
				if tv, ok := pass.Info.Types[e.Fun]; ok && tv.IsType() && isFloat(tv.Type) {
					pass.Reportf(e.Pos(), "conversion to %s in digest path %s", tv.Type, declName(decl))
					return false
				}
			case *ast.BinaryExpr:
				if tv, ok := pass.Info.Types[e]; ok && isFloat(tv.Type) && arithmeticOp(e.Op) {
					pass.Reportf(e.Pos(), "float arithmetic in digest path %s; use integer or exact-rational math", declName(decl))
					return false
				}
			case *ast.ValueSpec:
				if e.Type != nil {
					if tv, ok := pass.Info.Types[e.Type]; ok && isFloat(tv.Type) {
						pass.Reportf(e.Pos(), "float variable in digest path %s", declName(decl))
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkSignature flags float parameters and results on a digest-path
// function.
func checkSignature(pass *Pass, decl *ast.FuncDecl) {
	fn, ok := pass.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	sig := fn.Signature()
	for _, tup := range []*types.Tuple{sig.Params(), sig.Results()} {
		for v := range tup.Variables() {
			if isFloat(v.Type()) {
				pass.Reportf(decl.Name.Pos(), "%s in signature of digest-path %s; pass integers (e.g. percent as int)", v.Type(), declName(decl))
			}
		}
	}
}

// checkWireRecordFields flags float fields on wire-record structs. Only
// the deterministic packages are swept: a *Summary/*Record name outside
// them (stats.Summary's display statistics, the service tier's run
// report) is a rendering or reporting type where floats are documented
// as legal.
func checkWireRecordFields(pass *Pass) {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || !wireRecordRE.MatchString(ts.Name.Name) {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if tv, ok := pass.Info.Types[field.Type]; ok && isFloat(tv.Type) {
					pass.Reportf(field.Pos(), "float field on wire record %s; wire records are canonical integer-only", ts.Name.Name)
				}
			}
			return true
		})
	}
}

// isFloat reports whether t's underlying type is a floating-point or
// complex basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// arithmeticOp reports whether op computes a value (comparisons are fine:
// they yield bools, not floats).
func arithmeticOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
		return true
	}
	return false
}
