package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"smallbuffers/internal/harness"
)

const testDigest = "sha256:0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

func rec(i int) harness.CellRecord {
	return harness.CellRecord{
		Index:     i,
		Cell:      fmt.Sprintf("cell-%d", i),
		MaxLoad:   i%7 + 1,
		Injected:  10 * i,
		Delivered: 9 * i,
	}
}

func allRecs(n int) []harness.CellRecord {
	out := make([]harness.CellRecord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rec(i))
	}
	return out
}

func mustOpen(t *testing.T, root string, span harness.IndexRange, opts Options) *Store {
	t.Helper()
	s, err := Open(root, testDigest, span, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func appendAll(t *testing.T, s *Store, recs []harness.CellRecord) {
	t.Helper()
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatalf("Append(%d): %v", r.Index, err)
		}
	}
}

// fillRemainder resumes the entry and appends every still-uncovered cell,
// returning the final digest — the shape of every recovery test: whatever
// the damage, appending the uncovered remainder must reproduce the clean
// digest.
func fillRemainder(t *testing.T, root string, span harness.IndexRange) string {
	t.Helper()
	s := mustOpen(t, root, span, Options{})
	defer s.Close()
	for _, rng := range s.Uncovered() {
		for i := rng.Lo; i < rng.Hi; i++ {
			if err := s.Append(rec(i)); err != nil {
				t.Fatalf("resume Append(%d): %v", i, err)
			}
		}
	}
	if !s.Complete() {
		t.Fatalf("entry incomplete after filling remainder: %d of %d", s.Count(), span.Count())
	}
	d, err := s.Digest()
	if err != nil {
		t.Fatalf("Digest: %v", err)
	}
	return d
}

func segFiles(t *testing.T, root string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(EntryDir(root, testDigest), "seg-*.ndj"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	return names
}

func TestStoreRoundTrip(t *testing.T) {
	root := t.TempDir()
	span := harness.IndexRange{Lo: 0, Hi: 10}
	s := mustOpen(t, root, span, Options{SyncEvery: 3})
	if got := s.Count(); got != 0 {
		t.Fatalf("fresh entry covers %d cells", got)
	}
	// Out-of-order arrival, as the fleet merge produces.
	order := []int{3, 0, 7, 1, 9, 4, 2, 8, 5, 6}
	for _, i := range order {
		if err := s.Append(rec(i)); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if !s.Complete() {
		t.Fatalf("entry incomplete: %d of %d", s.Count(), span.Count())
	}

	// Scan streams in index order regardless of arrival order.
	var seen []int
	if err := s.Scan(func(r harness.CellRecord) error {
		seen = append(seen, r.Index)
		return nil
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	for i, idx := range seen {
		if idx != i {
			t.Fatalf("Scan order broken at %d: got index %d", i, idx)
		}
	}

	// The stored digest is byte-identical to the in-memory one.
	want := harness.RecordsDigest(allRecs(10))
	got, err := s.Digest()
	if err != nil {
		t.Fatalf("Digest: %v", err)
	}
	if got != want {
		t.Fatalf("digest diverged: store %s, memory %s", got, want)
	}
	if err := s.SetRecordsDigest(got); err != nil {
		t.Fatalf("SetRecordsDigest: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: complete, digest preserved, Opened reflects the baseline.
	s2 := mustOpen(t, root, span, Options{})
	defer s2.Close()
	if !s2.Complete() || s2.Opened() != 10 {
		t.Fatalf("reopen: complete=%v opened=%d", s2.Complete(), s2.Opened())
	}
	if s2.RecordsDigest() != want {
		t.Fatalf("reopen digest: got %s, want %s", s2.RecordsDigest(), want)
	}
	got2, err := s2.Digest()
	if err != nil || got2 != want {
		t.Fatalf("reopen re-derived digest: %s, %v", got2, err)
	}
}

func TestStoreAppendRejectsDuplicateAndOutOfSpan(t *testing.T) {
	s := mustOpen(t, t.TempDir(), harness.IndexRange{Lo: 2, Hi: 5}, Options{})
	defer s.Close()
	if err := s.Append(rec(3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec(3)); err == nil {
		t.Fatal("duplicate append accepted")
	}
	if err := s.Append(rec(7)); err == nil {
		t.Fatal("out-of-span append accepted")
	}
	if err := s.Append(rec(1)); err == nil {
		t.Fatal("below-span append accepted")
	}
}

func TestStoreCoverageRanges(t *testing.T) {
	s := mustOpen(t, t.TempDir(), harness.IndexRange{Lo: 0, Hi: 10}, Options{})
	defer s.Close()
	for _, i := range []int{0, 1, 4, 7, 8} {
		if err := s.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	wantCov := []harness.IndexRange{{Lo: 0, Hi: 2}, {Lo: 4, Hi: 5}, {Lo: 7, Hi: 9}}
	wantUnc := []harness.IndexRange{{Lo: 2, Hi: 4}, {Lo: 5, Hi: 7}, {Lo: 9, Hi: 10}}
	if got := s.Covered(); fmt.Sprint(got) != fmt.Sprint(wantCov) {
		t.Fatalf("Covered: %v, want %v", got, wantCov)
	}
	if got := s.Uncovered(); fmt.Sprint(got) != fmt.Sprint(wantUnc) {
		t.Fatalf("Uncovered: %v, want %v", got, wantUnc)
	}
	if got := s.UncoveredIn(harness.IndexRange{Lo: 3, Hi: 8}); fmt.Sprint(got) != fmt.Sprint([]harness.IndexRange{{Lo: 3, Hi: 4}, {Lo: 5, Hi: 7}}) {
		t.Fatalf("UncoveredIn: %v", got)
	}
	if !s.Has(4) || s.Has(5) {
		t.Fatalf("Has: 4=%v 5=%v", s.Has(4), s.Has(5))
	}
}

// TestStoreTruncatedSegment kills the entry mid-write: the final segment
// loses its tail mid-record. Recovery must keep the valid prefix, leave
// the torn cell uncovered, and a resumed fill must reproduce the clean
// digest exactly.
func TestStoreTruncatedSegment(t *testing.T) {
	root := t.TempDir()
	span := harness.IndexRange{Lo: 0, Hi: 8}
	cleanDigest := harness.RecordsDigest(allRecs(8))

	s := mustOpen(t, root, span, Options{SyncEvery: 1})
	appendAll(t, s, allRecs(8)[:6])
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs := segFiles(t, root)
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: drop its final 5 bytes.
	if err := os.WriteFile(segs[0], data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, root, span, Options{})
	if got, want := s2.Count(), 5; got != want {
		t.Fatalf("after torn tail: %d covered, want %d", got, want)
	}
	if s2.Has(5) {
		t.Fatal("torn record still served")
	}
	s2.Close()

	if got := fillRemainder(t, root, span); got != cleanDigest {
		t.Fatalf("resumed digest %s, clean %s", got, cleanDigest)
	}
}

// TestStoreBitFlippedRecord flips one payload byte in the middle of a
// synced segment. The per-record checksum must catch it; the flipped
// record and the segment tail after it fall out of coverage, and the
// resumed fill reproduces the clean digest.
func TestStoreBitFlippedRecord(t *testing.T) {
	root := t.TempDir()
	span := harness.IndexRange{Lo: 0, Hi: 8}
	cleanDigest := harness.RecordsDigest(allRecs(8))

	s := mustOpen(t, root, span, Options{SyncEvery: 1})
	appendAll(t, s, allRecs(8))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs := segFiles(t, root)
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside record 3's payload ("cell-3" is unique).
	at := strings.Index(string(data), "cell-3")
	if at < 0 {
		t.Fatal("record 3 not found in segment")
	}
	data[at+5] ^= 0x01
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	// The manifest's committed-prefix digest would also catch this and
	// discard the whole segment; remove the manifest to force the
	// per-record path — both roads end uncovered, never served.
	if err := os.Remove(filepath.Join(EntryDir(root, testDigest), manifestName)); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, root, span, Options{})
	if s2.Has(3) {
		t.Fatal("bit-flipped record still served")
	}
	if got := s2.Count(); got != 3 {
		t.Fatalf("after flip: %d covered, want 3 (scan stops at first damage)", got)
	}
	s2.Close()

	if got := fillRemainder(t, root, span); got != cleanDigest {
		t.Fatalf("resumed digest %s, clean %s", got, cleanDigest)
	}
}

// TestStoreStaleManifest rewrites a synced segment's committed prefix so
// it no longer matches the manifest digest — content changed under the
// manifest, which appends never do. The whole segment must be discarded
// (even though every line in it is self-consistent), and the resumed
// fill reproduces the clean digest.
func TestStoreStaleManifest(t *testing.T) {
	root := t.TempDir()
	span := harness.IndexRange{Lo: 0, Hi: 8}
	cleanDigest := harness.RecordsDigest(allRecs(8))

	s := mustOpen(t, root, span, Options{SyncEvery: 1})
	appendAll(t, s, allRecs(8)[:4])
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs := segFiles(t, root)
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Swap records 0 and 1: every line still passes its own checksum and
	// the file keeps its committed length, but the prefix digest no
	// longer matches the manifest.
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 4 {
		t.Fatalf("want ≥4 lines, got %d", len(lines))
	}
	lines[0], lines[1] = lines[1], lines[0]
	if err := os.WriteFile(segs[0], []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, root, span, Options{})
	if got := s2.Count(); got != 0 {
		t.Fatalf("mutated segment still serving %d records", got)
	}
	if got := segFiles(t, root); len(got) != 0 {
		t.Fatalf("mutated segment not discarded: %v", got)
	}
	s2.Close()

	if got := fillRemainder(t, root, span); got != cleanDigest {
		t.Fatalf("resumed digest %s, clean %s", got, cleanDigest)
	}
}

// TestStoreForeignIndexSkipped plants a valid record whose index lies
// outside the entry's span; recovery must not serve it.
func TestStoreForeignIndexSkipped(t *testing.T) {
	root := t.TempDir()
	s := mustOpen(t, root, harness.IndexRange{Lo: 0, Hi: 20}, Options{SyncEvery: 1})
	appendAll(t, s, []harness.CellRecord{rec(0), rec(15), rec(2)})
	s.Close()

	// Reopen under a narrower span: record 15 is now foreign.
	s2, err := Open(root, testDigest, harness.IndexRange{Lo: 0, Hi: 20}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if _, err := Open(root, testDigest, harness.IndexRange{Lo: 0, Hi: 4}, Options{}); err == nil {
		t.Fatal("span mismatch with manifest accepted")
	}
	// Drop the manifest so the narrower open succeeds and recovery itself
	// must reject the foreign index.
	if err := os.Remove(filepath.Join(EntryDir(root, testDigest), manifestName)); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(root, testDigest, harness.IndexRange{Lo: 0, Hi: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.Count(); got != 2 {
		t.Fatalf("narrow reopen covers %d cells, want 2", got)
	}
	if s3.Has(2) != true || s3.Has(3) {
		t.Fatalf("coverage wrong: 2=%v 3=%v", s3.Has(2), s3.Has(3))
	}
}

// TestStoreMultiSession verifies that each writing session appends to a
// fresh segment and coverage accumulates across sessions.
func TestStoreMultiSession(t *testing.T) {
	root := t.TempDir()
	span := harness.IndexRange{Lo: 0, Hi: 9}
	for round := 0; round < 3; round++ {
		s := mustOpen(t, root, span, Options{})
		if got := s.Opened(); got != round*3 {
			t.Fatalf("round %d opened %d, want %d", round, got, round*3)
		}
		appendAll(t, s, allRecs(9)[round*3:round*3+3])
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(segFiles(t, root)); got != 3 {
		t.Fatalf("want 3 segments, got %d", got)
	}
	s := mustOpen(t, root, span, Options{})
	defer s.Close()
	want := harness.RecordsDigest(allRecs(9))
	got, err := s.Digest()
	if err != nil || got != want {
		t.Fatalf("multi-session digest %s (%v), want %s", got, err, want)
	}
}

func TestStoreDigestGuard(t *testing.T) {
	for _, bad := range []string{"", "../escape", "sha256:ABC", "a/b", strings.Repeat("a", 300)} {
		if _, err := Open(t.TempDir(), bad, harness.IndexRange{Lo: 0, Hi: 1}, Options{}); err == nil {
			t.Fatalf("digest %q accepted", bad)
		}
	}
}

func TestStoreRemove(t *testing.T) {
	root := t.TempDir()
	s := mustOpen(t, root, harness.IndexRange{Lo: 0, Hi: 2}, Options{})
	appendAll(t, s, allRecs(2))
	s.Close()
	if err := Remove(root, testDigest); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(EntryDir(root, testDigest)); !os.IsNotExist(err) {
		t.Fatalf("entry survives Remove: %v", err)
	}
	if err := Remove(root, "../escape"); err == nil {
		t.Fatal("Remove accepted a malformed digest")
	}
}
