// Package store is the persistence tier: a content-addressed,
// append-only on-disk result store with checkpoint/resume semantics.
//
// An entry holds the cell records of one scenario (or one shard of one),
// keyed by the scenario's content digest — the same address the service
// tier's cache and the fleet's verification gates already speak. Records
// are appended as they complete, in any order, as self-validating framed
// lines (see encodeLine) in append-only segment files; a manifest tracks
// the committed state. Opening an entry recovers it: every segment is
// scanned record by record, torn or bit-flipped tails are truncated,
// segments whose committed prefix no longer matches their manifest
// digest are discarded, and whatever survives is exactly the set of
// durable cells — the uncovered remainder is what a resumed run still
// owes. Nothing in an entry is precious: every byte is derivable by
// re-running the scenario, so recovery always prefers dropping a
// suspect record over serving it.
//
// The store obeys the repo's determinism discipline end to end: record
// bytes are the canonical json.Marshal encoding (identical to what
// RecordsDigest hashes), the digest of a complete entry is re-derived
// from the records themselves via harness.RecordsDigester in O(1)
// memory, and the manifest carries only integers and strings.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"smallbuffers/internal/harness"
)

// DefaultSyncEvery is the default number of appends between automatic
// manifest syncs.
const DefaultSyncEvery = 64

// Options configures an entry.
type Options struct {
	// SyncEvery is the number of appends between automatic manifest
	// syncs (the segment bytes go straight to the file regardless; the
	// sync flushes buffers and commits the manifest's view of them).
	// 0 means DefaultSyncEvery.
	SyncEvery int
}

// recEntry locates one covered cell's record: the segment (index into
// segs/files), and the offset and length of its JSON payload. n == 0
// means the cell is not covered — a framed payload is never empty.
type recEntry struct {
	seg int32
	n   int32
	off int64
}

// Store is one open entry. It is safe for concurrent use; Append may be
// called from many goroutines (the fleet coordinator's daemon workers
// do), and every record is durable in the segment file as soon as
// Append returns, up to OS buffering — a killed process loses at most
// the records after the last buffer flush, never previously synced ones.
type Store struct {
	mu        sync.Mutex
	dir       string
	scenario  string
	span      harness.IndexRange
	syncEvery int

	segs  []segmentMeta
	files []*os.File // read handles, parallel to segs; the active one is last

	active     *os.File // write handle of the session's segment; nil until first append
	activeW    *bufio.Writer
	activeHash hash.Hash

	entries       []recEntry // indexed by cell index − span.Lo
	count         int
	opened        int // covered count at Open time (the resume baseline)
	unsynced      int
	recordsDigest string
	closed        bool
}

// EntryDir returns the directory of the entry for the given scenario
// digest under root.
func EntryDir(root, scenarioDigest string) string {
	return filepath.Join(root, strings.ReplaceAll(scenarioDigest, ":", "-"))
}

// Remove deletes the entry for the given scenario digest, if any — the
// corrupt-eviction path, and the manual reset.
func Remove(root, scenarioDigest string) error {
	if err := checkDigest(scenarioDigest); err != nil {
		return err
	}
	return os.RemoveAll(EntryDir(root, scenarioDigest))
}

// checkDigest guards the digest-to-path mapping: digests name
// directories, so anything outside the canonical "algo:hex" shape is
// rejected rather than joined into a path.
func checkDigest(d string) error {
	if d == "" || len(d) > 200 {
		return fmt.Errorf("store: malformed scenario digest %q", d)
	}
	for _, c := range d {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == ':':
		default:
			return fmt.Errorf("store: malformed scenario digest %q", d)
		}
	}
	return nil
}

// Open opens (creating or recovering) the entry for scenarioDigest under
// root, spanning the global cell-index range span — [0, gridSize) for a
// whole scenario, the shard's range for a slice. Recovery is total: any
// combination of torn final writes, flipped bits, and a manifest that
// lags or contradicts the segment files yields a store covering exactly
// the records that survive validation, with everything else uncovered
// (and therefore re-run on resume). An entry written for a different
// span or store format refuses to open rather than guessing.
func Open(root, scenarioDigest string, span harness.IndexRange, opts Options) (*Store, error) {
	if err := checkDigest(scenarioDigest); err != nil {
		return nil, err
	}
	if span.Lo < 0 || span.Count() <= 0 {
		return nil, fmt.Errorf("store: entry span %v is empty", span)
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	dir := EntryDir(root, scenarioDigest)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:       dir,
		scenario:  scenarioDigest,
		span:      span,
		syncEvery: opts.SyncEvery,
		entries:   make([]recEntry, span.Count()),
	}
	man, err := loadManifest(dir)
	if err != nil {
		// An unreadable manifest is recoverable — the segments are
		// self-validating — but only by treating every cross-check it
		// would have provided as failed: rebuild it from the segments.
		man = nil
	}
	if man != nil {
		if man.Format != FormatVersion {
			return nil, fmt.Errorf("store: entry %s has format %d, this build reads %d (delete the entry to recompute)", dir, man.Format, FormatVersion)
		}
		if man.Scenario != scenarioDigest {
			return nil, fmt.Errorf("store: entry %s holds scenario %s, not %s", dir, man.Scenario, scenarioDigest)
		}
		if man.Lo != span.Lo || man.Hi != span.Hi {
			return nil, fmt.Errorf("store: entry %s spans [%d,%d), caller wants %v", dir, man.Lo, man.Hi, span)
		}
	}
	if err := s.recover(man); err != nil {
		return nil, err
	}
	s.opened = s.count
	if man != nil && man.RecordsDigest != "" && s.count == s.span.Count() {
		s.recordsDigest = man.RecordsDigest
	}
	return s, nil
}

// recover scans the entry's segment files (discovered by glob, so a
// missing or stale manifest cannot hide a segment), validates every
// record, truncates damage, and rebuilds the coverage map.
func (s *Store) recover(man *manifest) error {
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*.ndj"))
	if err != nil {
		return err
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		base := filepath.Base(name)
		var meta *segmentMeta
		if man != nil {
			for i := range man.Segments {
				if man.Segments[i].File == base {
					meta = &man.Segments[i]
					break
				}
			}
		}
		// The manifest's committed prefix must hash to what the manifest
		// recorded: appends only ever extend a segment, so a divergent
		// prefix means the content changed underneath us — discard the
		// segment, its cells get recomputed.
		if meta != nil && meta.Bytes <= int64(len(data)) {
			sum := sha256.Sum256(data[:meta.Bytes])
			if "sha256:"+hex.EncodeToString(sum[:]) != meta.Digest {
				if err := os.Remove(name); err != nil {
					return err
				}
				continue
			}
		}
		recs, valid := scanSegment(data)
		if len(recs) == 0 {
			if err := os.Remove(name); err != nil {
				return err
			}
			continue
		}
		if valid < int64(len(data)) {
			if err := os.Truncate(name, valid); err != nil {
				return err
			}
		}
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		segIdx := int32(len(s.segs))
		kept := 0
		for _, r := range recs {
			if r.index < s.span.Lo || r.index >= s.span.Hi {
				continue // foreign index: never serve it
			}
			e := &s.entries[r.index-s.span.Lo]
			if e.n != 0 {
				continue // duplicate: first copy wins
			}
			*e = recEntry{seg: segIdx, n: int32(r.n), off: r.off}
			s.count++
			kept++
		}
		sum := sha256.Sum256(data[:valid])
		s.segs = append(s.segs, segmentMeta{
			File:    base,
			Records: kept,
			Bytes:   valid,
			Digest:  "sha256:" + hex.EncodeToString(sum[:]),
		})
		s.files = append(s.files, f)
	}
	return nil
}

// Span returns the entry's global cell-index span.
func (s *Store) Span() harness.IndexRange { return s.span }

// Scenario returns the scenario digest the entry is keyed by.
func (s *Store) Scenario() string { return s.scenario }

// Count returns the number of covered cells.
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Opened returns the number of cells that were already covered when the
// entry was opened — the cells a resumed run does not re-execute.
func (s *Store) Opened() int { return s.opened }

// Complete reports whether every cell of the span is covered.
func (s *Store) Complete() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count == s.span.Count()
}

// Has reports whether the cell with the given global index is covered.
func (s *Store) Has(index int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return index >= s.span.Lo && index < s.span.Hi && s.entries[index-s.span.Lo].n != 0
}

// Covered returns the covered cells as disjoint ascending index ranges.
func (s *Store) Covered() []harness.IndexRange {
	return s.ranges(true, s.span)
}

// Uncovered returns the span's still-missing cells as disjoint ascending
// index ranges — the work a resumed run owes.
func (s *Store) Uncovered() []harness.IndexRange {
	return s.ranges(false, s.span)
}

// UncoveredIn returns the uncovered cells within r (clamped to the
// span) — what remains of a dispatched shard after a partial delivery.
func (s *Store) UncoveredIn(r harness.IndexRange) []harness.IndexRange {
	if r.Lo < s.span.Lo {
		r.Lo = s.span.Lo
	}
	if r.Hi > s.span.Hi {
		r.Hi = s.span.Hi
	}
	if r.Count() <= 0 {
		return nil
	}
	return s.ranges(false, r)
}

func (s *Store) ranges(covered bool, within harness.IndexRange) []harness.IndexRange {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []harness.IndexRange
	lo := -1
	for i := within.Lo; i < within.Hi; i++ {
		if (s.entries[i-s.span.Lo].n != 0) == covered {
			if lo < 0 {
				lo = i
			}
			continue
		}
		if lo >= 0 {
			out = append(out, harness.IndexRange{Lo: lo, Hi: i})
			lo = -1
		}
	}
	if lo >= 0 {
		out = append(out, harness.IndexRange{Lo: lo, Hi: within.Hi})
	}
	return out
}

// Append makes one record durable. Records may arrive in any order (the
// fleet merges shards concurrently); an index outside the span or
// already covered is an error — the caller's bookkeeping, not the
// record, is wrong, and silently dropping either would hide it.
// Append implements harness.RecordSink.
func (s *Store) Append(rec harness.CellRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: record %d: %w", rec.Index, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: append to closed entry %s", s.dir)
	}
	if rec.Index < s.span.Lo || rec.Index >= s.span.Hi {
		return fmt.Errorf("store: record index %d outside span %v", rec.Index, s.span)
	}
	if s.entries[rec.Index-s.span.Lo].n != 0 {
		return fmt.Errorf("store: record %d appended twice", rec.Index)
	}
	if s.active == nil {
		if err := s.startSegmentLocked(); err != nil {
			return err
		}
	}
	framed := encodeLine(line)
	meta := &s.segs[len(s.segs)-1]
	off := meta.Bytes + int64(len(framed)-len(line)-1)
	if _, err := s.activeW.Write(framed); err != nil {
		return fmt.Errorf("store: segment %s: %w", meta.File, err)
	}
	hashWrite(s.activeHash, framed)
	meta.Bytes += int64(len(framed))
	meta.Records++
	meta.Digest = "sha256:" + hex.EncodeToString(s.activeHash.Sum(nil))
	s.entries[rec.Index-s.span.Lo] = recEntry{seg: int32(len(s.segs) - 1), n: int32(len(line)), off: off}
	s.count++
	s.unsynced++
	if s.unsynced >= s.syncEvery {
		return s.syncLocked()
	}
	return nil
}

// startSegmentLocked creates this session's append segment: recovery
// never extends an old segment (its manifest state is frozen at what the
// scan validated), so every writing session gets a fresh file.
func (s *Store) startSegmentLocked() error {
	var name string
	for n := len(s.segs) + 1; ; n++ {
		name = fmt.Sprintf("seg-%06d.ndj", n)
		clash := false
		for _, m := range s.segs {
			if m.File == name {
				clash = true
				break
			}
		}
		if !clash {
			break
		}
	}
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	s.active = f
	s.activeW = bufio.NewWriter(f)
	s.activeHash = sha256.New()
	sum := sha256.Sum256(nil)
	s.segs = append(s.segs, segmentMeta{File: name, Digest: "sha256:" + hex.EncodeToString(sum[:])})
	s.files = append(s.files, f)
	return nil
}

// Sync flushes buffered segment bytes and commits the manifest's view of
// every segment. After Sync returns, a kill -9 loses nothing appended
// before it.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.activeW != nil {
		if err := s.activeW.Flush(); err != nil {
			return err
		}
	}
	m := &manifest{
		Format:        FormatVersion,
		Scenario:      s.scenario,
		Lo:            s.span.Lo,
		Hi:            s.span.Hi,
		Segments:      s.segs,
		RecordsDigest: s.recordsDigest,
	}
	if err := saveManifest(s.dir, m); err != nil {
		return err
	}
	s.unsynced = 0
	return nil
}

// RecordsDigest returns the manifest-recorded digest of the complete
// record set, or "" when none has been recorded.
func (s *Store) RecordsDigest() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recordsDigest
}

// SetRecordsDigest records the digest of the complete record set in the
// manifest. It refuses an incomplete entry: the digest is a claim about
// the whole span.
func (s *Store) SetRecordsDigest(d string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count != s.span.Count() {
		return fmt.Errorf("store: digest recorded on incomplete entry (%d of %d cells)", s.count, s.span.Count())
	}
	s.recordsDigest = d
	return s.syncLocked()
}

// Scan streams the covered records in global index order, decoding each
// from its segment. Memory stays O(1) in cells: one record is alive at a
// time.
func (s *Store) Scan(fn func(harness.CellRecord) error) error {
	return s.scanLines(func(line []byte) error {
		var rec harness.CellRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("store: record decode: %w", err)
		}
		return fn(rec)
	})
}

// scanLines streams the covered records' raw canonical JSON lines in
// global index order.
func (s *Store) scanLines(fn func(line []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.activeW != nil {
		if err := s.activeW.Flush(); err != nil {
			return err
		}
	}
	var buf []byte
	for i := range s.entries {
		e := s.entries[i]
		if e.n == 0 {
			continue
		}
		if int(e.n) > cap(buf) {
			buf = make([]byte, e.n)
		}
		b := buf[:e.n]
		if _, err := s.files[e.seg].ReadAt(b, e.off); err != nil {
			return fmt.Errorf("store: segment %s: %w", s.segs[e.seg].File, err)
		}
		if err := fn(b); err != nil {
			return err
		}
	}
	return nil
}

// Digest re-derives the records digest of the covered cells from the
// stored bytes, streaming in index order through harness.RecordsDigester
// — O(1) memory at any entry size. On a complete entry this is the
// digest a fresh unsharded run of the scenario produces; callers holding
// a manifest digest (RecordsDigest) compare the two and treat a mismatch
// as corruption.
func (s *Store) Digest() (string, error) {
	d := harness.NewRecordsDigester()
	err := s.scanLines(func(line []byte) error {
		var probe struct {
			Index  int    `json:"index"`
			Faults string `json:"faults"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return fmt.Errorf("store: record decode: %w", err)
		}
		return d.AddEncoded(probe.Index, probe.Faults != "", line)
	})
	if err != nil {
		return "", err
	}
	return d.Sum(), nil
}

// Close syncs and releases the entry. The entry remains on disk; a later
// Open resumes from exactly this state.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.syncLocked()
	for _, f := range s.files {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	s.closed = true
	return err
}
