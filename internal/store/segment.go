package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// FormatVersion tags the on-disk layout. The compatibility contract: a
// store only opens entries whose manifest carries the version it was
// built with — there is no cross-version migration, because everything
// in an entry is derivable (re-running the scenario reproduces it
// byte-for-byte), so "wipe and recompute" is always a correct upgrade.
// Bump it whenever the segment framing, the manifest schema, or the
// entry layout changes shape.
const FormatVersion = 1

// manifestName is the per-entry manifest file; segments sit beside it.
const manifestName = "manifest.json"

// maxRecordBytes bounds a single record line. Records are engine output,
// not user input, but the length prefix is read off disk before
// allocation — a corrupt prefix must not provoke a giant allocation.
const maxRecordBytes = 1 << 28

// segmentMeta is one segment's manifest entry. Bytes and Digest describe
// the committed prefix of the file at the last sync: a crash can leave
// the file longer than Bytes (records appended after the sync — scanned
// and kept on open) or shorter (torn write — truncated to the valid
// prefix on open), and a Digest mismatch over the committed prefix means
// the segment's content changed after it was written, which no append
// ever does, so the whole segment is discarded.
type segmentMeta struct {
	File    string `json:"file"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
	Digest  string `json:"digest"`
}

// manifest is the entry's metadata file, written atomically
// (temp-and-rename) so a crash leaves either the previous or the next
// manifest, never a torn one. All fields are integers and strings — the
// store obeys the same nofloat discipline as the wire records it holds.
type manifest struct {
	Format   int    `json:"format"`
	Scenario string `json:"scenario"`
	Lo       int    `json:"lo"`
	Hi       int    `json:"hi"`
	// Segments lists the entry's segment files in recovery order.
	Segments []segmentMeta `json:"segments,omitempty"`
	// RecordsDigest is the harness.RecordsDigest of the complete record
	// set, recorded once the span is fully covered. Readers re-derive the
	// digest from the records themselves and treat a mismatch as
	// corruption (evict, never serve).
	RecordsDigest string `json:"records_digest,omitempty"`
}

// loadManifest reads the entry manifest; a missing file returns (nil,
// nil) and an unparseable one (nil, err) — callers recover the segments
// either way, the manifest only adds cross-checks.
func loadManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: manifest: %w", err)
	}
	return &m, nil
}

// saveManifest writes the manifest atomically.
func saveManifest(dir string, m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, manifestName))
}

// encodeLine frames one record's canonical JSON bytes for the segment
// file: "<len> <sum> <json>\n", where sum is the first 16 hex characters
// of sha256(json). Every record is self-validating — a bit flip anywhere
// in the line breaks the length, the checksum, or the checksum match —
// so recovery can always find the longest valid prefix of a segment
// without trusting anything outside the line itself.
func encodeLine(line []byte) []byte {
	sum := sha256.Sum256(line)
	return fmt.Appendf(nil, "%d %s %s\n", len(line), hex.EncodeToString(sum[:8]), line)
}

// scannedRec locates one validated record inside a segment: its global
// cell index, the offset and length of the JSON payload.
type scannedRec struct {
	index int
	off   int64
	n     int
}

// scanSegment walks a segment's bytes record by record, validating the
// framing and per-record checksum, and returns the validated records
// plus the length of the valid prefix. It stops at the first damage —
// a torn final write, a flipped bit, a short file — so valid < len(data)
// exactly when the tail must be truncated.
func scanSegment(data []byte) (recs []scannedRec, valid int64) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		sp := bytes.IndexByte(rest, ' ')
		if sp <= 0 || sp > 9 {
			break
		}
		n, err := strconv.Atoi(string(rest[:sp]))
		if err != nil || n <= 0 || n > maxRecordBytes {
			break
		}
		// Layout: len, space, 16 hex checksum chars, space, n payload
		// bytes, newline.
		bodyAt := sp + 1 + 16 + 1
		if len(rest) < bodyAt+n+1 || rest[sp+1+16] != ' ' || rest[bodyAt+n] != '\n' {
			break
		}
		body := rest[bodyAt : bodyAt+n]
		sum := sha256.Sum256(body)
		if !bytes.Equal(rest[sp+1:sp+1+16], []byte(hex.EncodeToString(sum[:8]))) {
			break
		}
		var probe struct {
			Index int `json:"index"`
		}
		if json.Unmarshal(body, &probe) != nil {
			break
		}
		recs = append(recs, scannedRec{index: probe.Index, off: int64(off + bodyAt), n: n})
		off += bodyAt + n + 1
	}
	return recs, int64(off)
}

// hashWrite feeds b to the hash and checks the error, like the harness's
// digest helper: hash.Hash documents Write as never failing, but a
// rolling segment digest is exactly where a silently dropped byte must
// be impossible rather than assumed.
func hashWrite(h io.Writer, b []byte) {
	if n, err := h.Write(b); err != nil || n != len(b) {
		panic(fmt.Sprintf("store: hash write: n=%d err=%v", n, err))
	}
}
