package experiments

import (
	"context"
	"fmt"
	"io"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/baseline"
	"smallbuffers/internal/core"
	"smallbuffers/internal/lowerbound"
	"smallbuffers/internal/network"
	"smallbuffers/internal/opt"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
	"smallbuffers/internal/stats"
)

// E5LowerBound reproduces Theorem 5.1: the Section 5 pattern forces every
// protocol to a max load of at least ((ℓ+1)ρ−1)/2ℓ · m.
func E5LowerBound() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "lower-bound adversary vs the protocol portfolio",
		Paper: "Theorem 5.1: any protocol needs Ω(((ℓ+1)ρ−1)/2ℓ · n^(1/ℓ)) space",
		Run: func(ctx context.Context, w io.Writer) (*Outcome, error) {
			ok := true
			var tables []*stats.Table
			for _, pc := range []struct {
				m, ell int
				rho    rat.Rat
			}{
				{4, 2, rat.New(3, 4)},
				{8, 2, rat.New(1, 2)},
				{8, 2, rat.New(3, 4)},
				{12, 2, rat.New(3, 4)},
				{4, 3, rat.New(1, 2)},
			} {
				probe, err := lowerbound.New(pc.m, pc.ell, pc.rho)
				if err != nil {
					return nil, err
				}
				nw, err := probe.Network()
				if err != nil {
					return nil, err
				}
				floor := probe.PredictedBound()
				floorInt := int(floor.Ceil())
				table := stats.NewTable(
					fmt.Sprintf("m=%d ℓ=%d ρ=%v (n=%d buffers, %d rounds): predicted floor %v",
						pc.m, pc.ell, pc.rho, probe.N(), probe.Rounds(), floor),
					"protocol", "measured", "floor", "ratio", "staleness lemmas", "ok")
				protos := []func() sim.Protocol{
					func() sim.Protocol { return core.NewPPTS() },
					func() sim.Protocol { return core.NewPPTS(core.PPTSWithDrain()) },
				}
				for _, g := range baseline.All() {
					g := g
					protos = append(protos, func() sim.Protocol { return baseline.NewGreedy(policyOf(g)) })
				}
				for _, mk := range protos {
					proto := mk()
					adv, err := lowerbound.New(pc.m, pc.ell, pc.rho)
					if err != nil {
						return nil, err
					}
					tracker := lowerbound.NewStalenessTracker(adv)
					res, err := sim.Run(ctx, sim.NewSpec(nw, proto, adv, adv.Rounds(),
						sim.WithObservers(tracker)))
					if err != nil {
						return nil, err
					}
					lemmaErr := tracker.Err
					if lemmaErr == nil {
						lemmaErr = tracker.Lemma55()
					}
					rowOK := res.MaxLoad >= floorInt && lemmaErr == nil
					ok = ok && rowOK
					lemmas := "5.2–5.5 hold"
					if lemmaErr != nil {
						lemmas = lemmaErr.Error()
					}
					table.AddRow(proto.Name(), res.MaxLoad, floorInt,
						stats.Ratio(res.MaxLoad, floorInt), lemmas, stats.CheckMark(rowOK))
				}
				tables = append(tables, table)
			}
			out := &Outcome{Tables: tables, OK: ok,
				Notes: []string{
					"expected shape: measured ≥ floor for every protocol; the ratio grows with ((ℓ+1)ρ−1)·m",
					"the paper's Ω hides a constant; ratios well above 1 are expected",
				}}
			return out, emit(w, out)
		},
	}
}

// policyOf recovers the policy from a prototype greedy protocol (baseline
// protocols are stateful per run, so E5 re-instantiates them).
func policyOf(g *baseline.Greedy) baseline.Policy {
	switch g.Name() {
	case "Greedy-FIFO":
		return baseline.FIFO{}
	case "Greedy-LIFO":
		return baseline.LIFO{}
	case "Greedy-LIS":
		return baseline.LIS{}
	case "Greedy-SIS":
		return baseline.SIS{}
	case "Greedy-NTG":
		return baseline.NTG{}
	case "Greedy-FTG":
		return baseline.FTG{}
	default:
		return baseline.LIS{}
	}
}

// E9Exact computes the exact offline optimum on tiny instances and places
// it between the Theorem 5.1 floor and the online protocols.
func E9Exact() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "exhaustive offline optimum on tiny instances",
		Paper: "Theorem 5.1 holds against *all* protocols — exact check at toy scale",
		Run: func(ctx context.Context, w io.Writer) (*Outcome, error) {
			table := stats.NewTable("exact optimum vs floor and PPTS",
				"instance", "rounds", "floor", "optimum", "PPTS", "states", "ok")
			ok := true

			// Instance 1: the smallest Section 5 pattern.
			lb, err := lowerbound.New(2, 2, rat.New(1, 2))
			if err != nil {
				return nil, err
			}
			nw, err := lb.Network()
			if err != nil {
				return nil, err
			}
			optRes, err := opt.Solve(opt.Config{
				Net: nw, Adversary: lb, Rounds: lb.Rounds(),
				MaxStates: 4_000_000, MaxBranch: 1 << 16,
			})
			if err != nil {
				return nil, err
			}
			lb2, err := lowerbound.New(2, 2, rat.New(1, 2))
			if err != nil {
				return nil, err
			}
			simRes, err := sim.Run(ctx, sim.NewSpec(nw, core.NewPPTS(), lb2, lb2.Rounds()))
			if err != nil {
				return nil, err
			}
			floor := int(lb.PredictedBound().Ceil())
			rowOK := optRes.OptMaxLoad >= floor && simRes.MaxLoad >= optRes.OptMaxLoad
			ok = ok && rowOK
			table.AddRow("LB(m=2,ℓ=2,ρ=1/2)", lb.Rounds(), floor, optRes.OptMaxLoad,
				simRes.MaxLoad, optRes.StatesExplored, stats.CheckMark(rowOK))

			// Instance 2: a crafted collision the optimum cannot dodge.
			nw2 := network.MustPath(6)
			mkAdv := func() adversary.Adversary {
				return adversary.NewSchedule().
					At(0, 0, 5).At(0, 0, 4).At(0, 0, 3).
					At(2, 1, 5).At(2, 1, 4).
					Build(adversary.Bound{Rho: rat.One, Sigma: 2})
			}
			optRes2, err := opt.Solve(opt.Config{Net: nw2, Adversary: mkAdv(), Rounds: 8})
			if err != nil {
				return nil, err
			}
			simRes2, err := sim.Run(ctx, sim.NewSpec(nw2, core.NewPPTS(), mkAdv(), 8))
			if err != nil {
				return nil, err
			}
			rowOK2 := optRes2.OptMaxLoad == 3 && simRes2.MaxLoad >= optRes2.OptMaxLoad
			ok = ok && rowOK2
			table.AddRow("triple collision", 8, 3, optRes2.OptMaxLoad,
				simRes2.MaxLoad, optRes2.StatesExplored, stats.CheckMark(rowOK2))

			out := &Outcome{Tables: []*stats.Table{table}, OK: ok,
				Notes: []string{
					"floor ≤ optimum ≤ every online protocol; at toy scale the Ω floor is small, the ordering is the point",
				}}
			return out, emit(w, out)
		},
	}
}
