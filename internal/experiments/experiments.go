// Package experiments defines the reproduction suite: one executable
// experiment per theorem/figure of the paper, each printing a table of
// parameters, measured values, and the paper's predicted bound. The
// cmd/aqtbench binary and the repository's benchmarks run these; their
// output is the source for EXPERIMENTS.md.
//
// Index (see DESIGN.md §4 for the full mapping):
//
//	F1  Figure 1        hierarchical partition and virtual trajectory
//	E1  Prop 3.1        PTS ≤ 2 + σ
//	E2  Prop 3.2        PPTS ≤ 1 + d + σ
//	E3  Props B.3/3.5   tree PTS ≤ 2 + σ; tree PPTS ≤ 1 + d′ + σ
//	E4  Thm 4.1         HPTS ≤ ℓ·n^(1/ℓ) + σ + 1
//	E5  Thm 5.1         lower-bound pattern forces Ω(((ℓ+1)ρ−1)/2ℓ·m)
//	E6  abstract        the space-vs-rate tradeoff curve k·d^(1/k)
//	E7  §1 / [17]       greedy baselines vs PPTS on d destinations
//	E8  design §4.2     ablations: ActivatePreBad; drain-when-idle
//	E9  Thm 5.1 (exact) exhaustive offline optimum on tiny instances
//	E10 §1 ([9],[17])   the price of locality: PTS vs downhill protocols
//	E11 complement      the latency price of space-optimal forwarding
//	E12 title/§1        space vs link bandwidth B on capacitated links
//	E13 Prop 3.1+faults buffer headroom under loss: drop p vs load/goodput
package experiments

import (
	"context"
	"fmt"
	"io"

	"smallbuffers/internal/sim"
	"smallbuffers/internal/stats"
)

// Outcome is the structured result of one experiment.
type Outcome struct {
	Tables []*stats.Table
	// OK reports whether every bound assertion in the experiment held.
	OK bool
	// Notes carries free-form observations (expected shapes, caveats).
	Notes []string
}

// Experiment is one reproducible unit of the evaluation. Run honors ctx:
// a cancelled context stops the experiment's simulations between rounds.
type Experiment struct {
	ID    string
	Title string
	// Paper identifies the artifact being reproduced.
	Paper string
	Run   func(ctx context.Context, w io.Writer) (*Outcome, error)
}

// All returns the full suite in presentation order.
func All() []Experiment {
	return []Experiment{
		Figure1(),
		E1PTS(),
		E2PPTS(),
		E3Trees(),
		E4HPTS(),
		E5LowerBound(),
		E6Tradeoff(),
		E7Greedy(),
		E8Ablations(),
		E9Exact(),
		E10Locality(),
		E11Latency(),
		E12Bandwidth(),
		E13Faults(),
	}
}

// ByID finds an experiment by its identifier ("E1" … "E13", "F1").
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q", id)
}

// RunAll executes the suite, writing every table to w, and reports whether
// all experiments passed. Cancelling ctx aborts the suite between rounds.
func RunAll(ctx context.Context, w io.Writer) (bool, error) {
	ok := true
	for _, e := range All() {
		if _, err := fmt.Fprintf(w, "\n%s — %s (%s)\n\n", e.ID, e.Title, e.Paper); err != nil {
			return false, err
		}
		out, err := e.Run(ctx, w)
		if err != nil {
			return false, fmt.Errorf("%s: %w", e.ID, err)
		}
		if !out.OK {
			ok = false
		}
	}
	return ok, nil
}

// emit renders an outcome's tables and notes.
func emit(w io.Writer, out *Outcome) error {
	for _, t := range out.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, n := range out.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// softInvariant wraps an invariant so violations are counted instead of
// aborting the run (used by the ablation experiment to measure how often an
// analysis invariant breaks).
func softInvariant(inv sim.Invariant, count *int) sim.Invariant {
	return func(v sim.View) error {
		if err := inv(v); err != nil {
			*count++
		}
		return nil
	}
}
