package experiments

import (
	"context"
	"io"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/baseline"
	"smallbuffers/internal/core"
	"smallbuffers/internal/metrics"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
	"smallbuffers/internal/stats"
)

// E11Latency measures the flip side the paper leaves implicit: the
// space-optimal peak-to-sink protocols move packets only to resolve
// badness, so their worst-case space comes at a delay cost relative to
// work-conserving greedy forwarding, which buys its low latency with
// unbounded worst-case buffers (E7). Same workload, both families.
func E11Latency() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "the latency price of space-optimal forwarding",
		Paper: "complement to §3 (space-optimality) and §1's greedy discussion",
		Run: func(ctx context.Context, w io.Writer) (*Outcome, error) {
			const n = 64
			const sigma = 2
			const d = 8
			nw := network.MustPath(n)
			bound := adversary.Bound{Rho: rat.New(1, 2), Sigma: sigma}
			dests := make([]network.NodeID, d)
			for k := 0; k < d; k++ {
				dests[k] = network.NodeID(n - d + k)
			}
			table := stats.NewTable("rate 1/2, d = 8 destinations, 3000 rounds + drain tail",
				"protocol", "max load", "delivered", "avg latency", "p50", "p99", "max")
			ok := true
			protos := []sim.Protocol{
				core.NewPPTS(core.PPTSWithDrain()),
				core.NewHPTS(2),
				baseline.NewGreedy(baseline.FIFO{}),
				baseline.NewGreedy(baseline.LIS{}),
			}
			type row struct {
				name    string
				maxLoad int
				avg     float64
			}
			var rows []row
			for _, proto := range protos {
				adv, err := adversary.NewRandom(nw, bound, dests, 12)
				if err != nil {
					return nil, err
				}
				// The default metric set carries the latency
				// distribution; no observer plumbing needed.
				res, err := sim.Run(ctx, sim.NewSpec(nw, proto, adv, 3000))
				if err != nil {
					return nil, err
				}
				if res.Delivered == 0 {
					ok = false
				}
				avg, _ := res.AvgLatency()
				lat := res.Metrics[metrics.NameLatency]
				table.AddRow(res.Protocol, res.MaxLoad, res.Delivered,
					avg, lat.Scalar("p50"), lat.Scalar("p99"), res.MaxLatency)
				rows = append(rows, row{res.Protocol, res.MaxLoad, avg})
			}
			// Expected shape: greedy latency ≤ peak-to-sink latency, and the
			// peak-to-sink protocols respect their space bounds.
			if rows[0].maxLoad > 1+d+sigma {
				ok = false
			}
			greedyBest, ptsWorst := rows[2].avg, rows[0].avg
			if rows[3].avg < greedyBest {
				greedyBest = rows[3].avg
			}
			if rows[1].avg > ptsWorst {
				ptsWorst = rows[1].avg
			}
			if greedyBest > ptsWorst {
				ok = false // greedy should not be slower than peak-to-sink
			}
			out := &Outcome{Tables: []*stats.Table{table}, OK: ok,
				Notes: []string{
					"expected shape: greedy is fastest (work-conserving) but pays in space on adversarial patterns (E7); the peak-to-sink family trades delay for its proved space bounds",
					"HPTS adds phase latency on top: it accepts injections only every ℓ rounds and serves one level per round",
				}}
			return out, emit(w, out)
		},
	}
}
