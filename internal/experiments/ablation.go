package experiments

import (
	"context"
	"io"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/core"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
	"smallbuffers/internal/stats"
	"smallbuffers/internal/trace"
)

// E8Ablations measures the two design choices DESIGN.md calls out:
// (a) HPTS's ActivatePreBad step — removing it should break the Lemma 4.8
// phase invariant and can raise the max load; (b) the drain-when-idle
// extension to PPTS — it must not raise the max load while restoring
// liveness.
func E8Ablations() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "ablations: ActivatePreBad (HPTS) and drain-when-idle (PPTS)",
		Paper: "Algorithm 5 / Lemma 4.8; §3 liveness discussion",
		Run: func(ctx context.Context, w io.Writer) (*Outcome, error) {
			ok := true

			// (a) HPTS with and without ActivatePreBad.
			hptsTable := stats.NewTable("HPTS ± ActivatePreBad (ρ = 1/ℓ)",
				"m", "ℓ", "variant", "max load", "bound ℓm+σ+1", "phase-invariant violations")
			prebadBroke := false
			for _, mc := range []struct{ m, ell int }{{3, 2}, {2, 3}, {4, 2}} {
				h, err := core.NewHierarchy(mc.m, mc.ell)
				if err != nil {
					return nil, err
				}
				n := h.N()
				nw := network.MustPath(n)
				rho := rat.New(1, int64(mc.ell))
				const sigma = 2
				bound := adversary.Bound{Rho: rho, Sigma: sigma}
				var dests []network.NodeID
				for v := 1; v < n; v += max(1, n/8) {
					dests = append(dests, network.NodeID(v))
				}
				dests = append(dests, network.NodeID(n-1))
				for _, ablate := range []bool{false, true} {
					adv, err := adversary.NewRandom(nw, bound, dests, 11)
					if err != nil {
						return nil, err
					}
					var proto sim.Protocol
					if ablate {
						proto = core.NewHPTS(mc.ell, core.HPTSAblatePreBad())
					} else {
						proto = core.NewHPTS(mc.ell)
					}
					check := core.NewHPTSBoundCheck(nw, h, rho)
					violations := 0
					res, err := sim.Run(ctx, sim.NewSpec(nw, proto, adv, 60*mc.ell*n,
						sim.WithObservers(check.Observer()),
						sim.WithInvariants(softInvariant(check.Invariant(), &violations))))
					if err != nil {
						return nil, err
					}
					if !ablate && violations != 0 {
						ok = false // the full algorithm must keep the invariant
					}
					if ablate && violations > 0 {
						prebadBroke = true
					}
					hptsTable.AddRow(mc.m, mc.ell, proto.Name(), res.MaxLoad,
						core.HPTSSpaceBound(h, sigma), violations)
				}
			}
			if !prebadBroke {
				// The ablation is only meaningful if it is observable.
				ok = false
			}

			// (b) PPTS strict vs drain-when-idle.
			drainTable := stats.NewTable("PPTS ± drain-when-idle (burst workload + idle tail)",
				"variant", "max load", "bound 1+d+σ", "delivered", "residual")
			const n = 32
			nw := network.MustPath(n)
			const d, sigma = 4, 2
			bound := adversary.Bound{Rho: rat.One, Sigma: sigma}
			for _, drain := range []bool{false, true} {
				adv, err := adversary.PPTSBurst(nw, bound, d, 6*n)
				if err != nil {
					return nil, err
				}
				var proto sim.Protocol
				if drain {
					proto = core.NewPPTS(core.PPTSWithDrain())
				} else {
					proto = core.NewPPTS()
				}
				// Horizon extends well past the pattern (6n rounds) so drain
				// can walk every leftover packet to its destination.
				res, err := sim.Run(ctx, sim.NewSpec(nw, proto, adv, 40*n))
				if err != nil {
					return nil, err
				}
				if res.MaxLoad > 1+d+sigma {
					ok = false
				}
				if drain && res.Residual > 0 {
					ok = false // drain must clear the line during the idle tail
				}
				drainTable.AddRow(proto.Name(), res.MaxLoad, 1+d+sigma, res.Delivered, res.Residual)
			}

			out := &Outcome{
				Tables: []*stats.Table{hptsTable, drainTable},
				OK:     ok,
				Notes: []string{
					"without ActivatePreBad, packets completing a segment stack onto occupied lower-level pseudo-buffers: the Lemma 4.8 phase invariant is violated (nonzero count expected)",
					"drain-when-idle restores liveness (residual 0) without raising the max load",
				},
			}
			return out, emit(w, out)
		},
	}
}

// Figure1 renders the paper's only figure.
func Figure1() Experiment {
	return Experiment{
		ID:    "F1",
		Title: "hierarchical partition and virtual trajectory (n=16, m=2, ℓ=4)",
		Paper: "Figure 1",
		Run: func(ctx context.Context, w io.Writer) (*Outcome, error) {
			h, err := core.NewHierarchy(2, 4)
			if err != nil {
				return nil, err
			}
			if err := trace.RenderFigure1(w, h, 0, 13); err != nil {
				return nil, err
			}
			segs := h.Segments(0, 13)
			table := stats.NewTable("virtual trajectory 0 → 13", "segment", "level", "from", "to")
			for i, s := range segs {
				table.AddRow(i+1, s.Level, s.From, s.To)
			}
			wantLevels := []int{3, 2, 0}
			ok := len(segs) == len(wantLevels)
			for i := range segs {
				if ok && segs[i].Level != wantLevels[i] {
					ok = false
				}
			}
			out := &Outcome{Tables: []*stats.Table{table}, OK: ok,
				Notes: []string{"matches Figure 1: the packet corrects digit 3 (to node 8), digit 2 (to 12), then digit 0 (to 13)"}}
			return out, emit(w, out)
		},
	}
}
