package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/core"
	"smallbuffers/internal/harness"
	"smallbuffers/internal/metrics"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
	"smallbuffers/internal/stats"
)

// DefaultDropProbs is the loss axis E13 sweeps: exact drop probabilities
// from loss-free to heavy loss.
var DefaultDropProbs = []rat.Rat{
	rat.New(0, 1), rat.New(1, 100), rat.New(1, 20), rat.New(1, 10), rat.New(1, 4),
}

// E13Faults measures buffer headroom under packet loss: PTS on the E1
// burst workload, swept over i.i.d. per-link drop probability p and link
// bandwidth B. Every (p, B) cell replays identical injections — both axes
// are excluded from seed derivation — and the drop schedules are nested
// across p (a packet lost at p=1/100 is also lost at every larger p), so
// each column is a paired comparison.
//
// Under the drop model a lost packet has already left its buffer: loss
// happens in transit, strictly after the occupancy peak it contributed
// to, so it can only starve downstream buffers. Measured max load is
// therefore non-increasing in p (the 2+σ bound keeps holding with
// growing headroom), while goodput — the delivered fraction — decays:
// loss buys buffer space at the price of throughput, the inverse of
// E12's bandwidth tradeoff.
func E13Faults(dropProbs ...rat.Rat) Experiment {
	if len(dropProbs) == 0 {
		dropProbs = DefaultDropProbs
	}
	return Experiment{
		ID:    "E13",
		Title: "buffer headroom under loss: drop probability vs max load and goodput",
		Paper: "Prop 3.1 under faults: loss preserves ≤ 2 + σ; goodput pays",
		Run: func(ctx context.Context, w io.Writer) (*Outcome, error) {
			const n = 64
			const sigma = 3
			const rounds = 6 * n

			faultAxis := make([]harness.FaultSpec, len(dropProbs))
			for i, p := range dropProbs {
				faultAxis[i] = harness.DropFault(p)
			}
			type cellOut struct {
				load, dropped, delivered, goodput int
				inadmissible                      bool
			}
			// run sweeps the drop axis × bandwidths under one bound and
			// appends a row block per bandwidth. With capped it asserts the
			// 2+σ cap and per-B headroom monotonicity in p (Prop 3.1's
			// regime, ρ ≤ 1, where a dropped packet can only starve
			// downstream); without, the direction column is observational —
			// under standing backlog loss perturbs the forwarding schedule
			// and exact coupling monotonicity no longer holds.
			run := func(table *stats.Table, bound adversary.Bound, advSpec harness.AdversarySpec, bandwidths []int, capped bool) (bool, error) {
				sweep := &harness.Sweep{
					Protocols: []harness.ProtocolSpec{
						harness.Protocol("PTS", func() sim.Protocol { return core.NewPTS() }),
					},
					Topologies:  []harness.TopologySpec{harness.Path(n)},
					Bounds:      []adversary.Bound{bound},
					Adversaries: []harness.AdversarySpec{advSpec},
					Bandwidths:  bandwidths,
					Rounds:      []int{rounds},
					BaseSeed:    1,
					Faults:      faultAxis,
					Metrics: func(harness.Cell, *network.Network) ([]metrics.Collector, error) {
						return []metrics.Collector{metrics.NewGoodput(512, 64)}, nil
					},
				}
				res, err := sweep.Run(ctx)
				if err != nil {
					return false, err
				}
				byCell := make(map[string]cellOut)
				for _, cr := range res.Cells {
					key := fmt.Sprintf("%d/%s", cr.Cell.Bandwidth, cr.Cell.Faults)
					if cr.Err != nil {
						if errors.Is(cr.Err, adversary.ErrRateInadmissible) {
							byCell[key] = cellOut{inadmissible: true}
							continue
						}
						return false, cr.Err
					}
					sum, ok := cr.Result.Metrics[metrics.NameGoodput]
					if !ok {
						return false, fmt.Errorf("cell %v lacks the goodput summary", cr.Cell)
					}
					byCell[key] = cellOut{
						load:      cr.Result.MaxLoad,
						dropped:   cr.Result.Dropped,
						delivered: cr.Result.Delivered,
						goodput:   sum.Scalar("goodput_permille"),
					}
				}
				ok := true
				limit := 2 + sigma
				for _, b := range bandwidths {
					prev := -1
					for i, p := range dropProbs {
						c := byCell[fmt.Sprintf("%d/%s", b, harness.DropFault(p).Name)]
						if c.inadmissible {
							table.AddRow(b, p, "—", "—", "—", "—", "—", "—", "inadmissible: ρ > B")
							continue
						}
						boundCell := "—"
						if capped {
							boundCell = fmt.Sprint(limit)
							if c.load > limit {
								ok = false
							}
						}
						headroom := limit - c.load
						mono := i == 0 || headroom >= prev
						dir := "↑"
						if !mono {
							dir = "↓"
						}
						if capped {
							ok = ok && mono
							dir = stats.CheckMark(mono)
						}
						table.AddRow(b, p, c.load, boundCell, headroom, c.delivered, c.dropped, c.goodput, dir)
						prev = headroom
					}
				}
				return ok, nil
			}

			baseCols := []string{"B", "drop p", "max load", "bound", "headroom vs 2+σ", "delivered", "dropped", "goodput ‰"}
			assertCols := append(append([]string{}, baseCols...), "headroom non-decreasing")
			observeCols := append(append([]string{}, baseCols...), "headroom trend")
			burst := harness.AdversarySpec{
				Name: "burst",
				New: func(nw *network.Network, bound adversary.Bound, _ int64, r int) (adversary.Adversary, error) {
					return adversary.PTSBurst(nw, bound, r)
				},
			}
			unit := adversary.Bound{Rho: rat.One, Sigma: sigma}
			t1 := stats.NewTable(
				fmt.Sprintf("unit demand: PTS on path(%d), burst adversary, %v, %d rounds, identical injections per p", n, unit, rounds),
				assertCols...)
			ok1, err := run(t1, unit, burst, []int{1}, true)
			if err != nil {
				return nil, err
			}

			super := adversary.Bound{Rho: rat.FromInt(2), Sigma: sigma}
			t2 := stats.NewTable(
				fmt.Sprintf("super-unit demand ρ=2 (needs B ≥ 2): PTS on path(%d), random adversary, %v, %d rounds, identical injections and drop schedules per (p,B) cell", n, super, rounds),
				observeCols...)
			ok2, err := run(t2, super, harness.RandomAdversary(nil), []int{1, 2, 4}, false)
			if err != nil {
				return nil, err
			}

			out := &Outcome{Tables: []*stats.Table{t1, t2}, OK: ok1 && ok2,
				Notes: []string{
					"expected shape at ρ ≤ 1: max load never grows with p (a dropped packet has already vacated its buffer — loss only starves downstream), so headroom against 2+σ is non-decreasing in p while goodput decays",
					"at ρ = 2 the headroom column is observational: under standing backlog loss perturbs the forwarding schedule and per-cell monotonicity can wobble by ±1, though heavy loss still collapses the backlog (12+ → 3)",
					fmt.Sprintf("per-link loss compounds over the path's %d hops: survival ≈ (1−p)^%d, so even p=1/100 roughly halves goodput — drops dominate deliveries long before buffers notice", n-1, n-1),
					"drop schedules are nested across p (coupled uniform draws) and blind to B, so every row block is a paired headroom curve, not independent noise",
					"the inverse of E12: there bandwidth buys buffer space at fixed demand; here loss buys headroom at the price of goodput — with great loss come small buffers",
				}}
			return out, emit(w, out)
		},
	}
}
