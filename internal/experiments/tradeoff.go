package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/baseline"
	"smallbuffers/internal/core"
	"smallbuffers/internal/harness"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
	"smallbuffers/internal/stats"
)

// E6Tradeoff reproduces the headline space-bandwidth tradeoff: on a fixed
// line with every node a potential destination (d ≈ n), running at rate
// ρ = 1/k buys buffer space k·d^(1/k) + σ + 1 instead of d. The k = 1 row
// is PPTS at full rate; k ≥ 2 rows are HPTS with ℓ = k.
func E6Tradeoff() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "space vs bandwidth: buffer need as a function of k = ⌊1/ρ⌋",
		Paper: "abstract: O(k·d^(1/k)) sufficient, Ω(d^(1/k)/k) necessary",
		Run: func(ctx context.Context, w io.Writer) (*Outcome, error) {
			const n = 256 // 2^8: admits ℓ ∈ {1,2,4,8}
			const sigma = 2
			table := stats.NewTable(
				fmt.Sprintf("n = %d, d = %d destinations, σ = %d", n, n-1, sigma),
				"k=⌊1/ρ⌋", "ρ", "protocol", "measured", "upper k·d^(1/k)+σ+1", "lower d^(1/k)/2k", "ok")
			ok := true
			nw := network.MustPath(n)
			// Destinations: every node (the regime where the tradeoff bites).
			dests := make([]network.NodeID, 0, n-1)
			for v := 1; v < n; v++ {
				dests = append(dests, network.NodeID(v))
			}
			for _, k := range []int{1, 2, 4, 8} {
				rho := rat.New(1, int64(k))
				bound := adversary.Bound{Rho: rho, Sigma: sigma}
				adv, err := adversary.NewRandom(nw, bound, dests, 6, adversary.WithAttempts(24))
				if err != nil {
					return nil, err
				}
				var proto sim.Protocol
				var upper int
				if k == 1 {
					proto = core.NewPPTS()
					upper = 1 + (n - 1) + sigma
				} else {
					proto = core.NewHPTS(k)
					h, err := core.HierarchyFor(n, k)
					if err != nil {
						return nil, err
					}
					upper = core.HPTSSpaceBound(h, sigma)
				}
				res, err := sim.Run(ctx, sim.NewSpec(nw, proto, adv, 10*k*n))
				if err != nil {
					return nil, err
				}
				lower := math.Pow(float64(n-1), 1/float64(k)) / float64(2*k)
				rowOK := res.MaxLoad <= upper
				ok = ok && rowOK
				table.AddRow(k, rho, proto.Name(), res.MaxLoad, upper,
					fmt.Sprintf("%.1f", lower), stats.CheckMark(rowOK))
			}
			out := &Outcome{Tables: []*stats.Table{table}, OK: ok,
				Notes: []string{
					"expected shape: the admissible space collapses exponentially in k — d at k=1, 2√d at k=2, …, ~2·log d at k=log d",
					"interpretation (paper §1): multiplying destinations by α costs either ×α buffers or ×O(log α) bandwidth headroom",
				}}
			return out, emit(w, out)
		},
	}
}

// E7Greedy reproduces the introduction's motivation (citing [17]): greedy
// policies are dragged to large buffers by multi-destination traffic that
// PPTS handles within its 1+d+σ budget.
func E7Greedy() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "greedy scheduling policies vs PPTS under d-destination stress",
		Paper: "§1 (and [17]): greedy forwarding needs Ω(d) buffers for ρ > 1/2",
		Run: func(ctx context.Context, w io.Writer) (*Outcome, error) {
			ok := true
			var tables []*stats.Table
			const n = 64
			// One parallel sweep per destination count: the whole protocol
			// portfolio races the same crafted pattern concurrently.
			protos := []harness.ProtocolSpec{
				harness.Protocol("PPTS", func() sim.Protocol { return core.NewPPTS() }),
			}
			for _, g := range baseline.All() {
				policy := policyOf(g)
				protos = append(protos, harness.Protocol(g.Name(), func() sim.Protocol {
					return baseline.NewGreedy(policy)
				}))
			}
			for _, d := range []int{8, 16} {
				d := d
				table := stats.NewTable(
					fmt.Sprintf("GreedyKiller workload: n=%d, d=%d, ρ=1, σ=1 (PPTS bound %d)", n, d, 1+d+1),
					"protocol", "measured max load", "PPTS bound 1+d+σ", "within PPTS bound")
				sweep := &harness.Sweep{
					Protocols:  protos,
					Topologies: []harness.TopologySpec{harness.Path(n)},
					Bounds:     []adversary.Bound{{Rho: rat.One, Sigma: 1}},
					Adversaries: []harness.AdversarySpec{
						{Name: "greedykiller", New: func(nw *network.Network, bound adversary.Bound, _ int64, rounds int) (adversary.Adversary, error) {
							return adversary.GreedyKiller(nw, bound, d, rounds)
						}},
					},
					Rounds: []int{24 * n},
				}
				res, err := sweep.Run(ctx)
				if err != nil {
					return nil, err
				}
				if err := res.FirstErr(); err != nil {
					return nil, err
				}
				for _, cell := range res.Cells {
					within := cell.Result.MaxLoad <= 1+d+1
					if cell.Cell.Protocol == "PPTS" {
						ok = ok && within // the bound must hold for PPTS
					}
					table.AddRow(cell.Cell.Protocol, cell.Result.MaxLoad, 1+d+1, stats.CheckMark(within))
				}
				tables = append(tables, table)
			}
			out := &Outcome{Tables: tables, OK: ok,
				Notes: []string{
					"PPTS must stay within 1+d+σ; greedy policies may exceed it (their load is workload-dependent — the paper's Ω(d) is for a worst-case pattern)",
				}}
			return out, emit(w, out)
		},
	}
}
