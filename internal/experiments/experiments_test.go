package experiments

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
)

func TestAllRegistered(t *testing.T) {
	all := All()
	wantIDs := []string{"F1", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}
	if len(all) != len(wantIDs) {
		t.Fatalf("All() = %d experiments, want %d", len(all), len(wantIDs))
	}
	seen := make(map[string]bool)
	for i, e := range all {
		if e.ID != wantIDs[i] {
			t.Errorf("experiment %d has ID %q, want %q", i, e.ID, wantIDs[i])
		}
		if seen[e.ID] {
			t.Errorf("duplicate ID %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("%s: incomplete definition", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E4")
	if err != nil || e.ID != "E4" {
		t.Errorf("ByID(E4) = %v, %v", e.ID, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("ByID(E99) succeeded")
	}
}

// Each experiment runs green and asserts its own bounds. The fast ones run
// in any mode; the heavier sweeps are guarded by -short.
func TestExperimentsPass(t *testing.T) {
	fast := map[string]bool{"F1": true, "E9": true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && !fast[e.ID] {
				t.Skip("heavy sweep; run without -short")
			}
			var buf bytes.Buffer
			out, err := e.Run(context.Background(), &buf)
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", e.ID, err, buf.String())
			}
			if !out.OK {
				t.Errorf("%s reports violated bounds:\n%s", e.ID, buf.String())
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", e.ID)
			}
		})
	}
}

func TestRunAllAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite")
	}
	ok, err := RunAll(context.Background(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("RunAll reports failures")
	}
}

func TestFigure1Output(t *testing.T) {
	var buf bytes.Buffer
	f1, err := ByID("F1")
	if err != nil {
		t.Fatal(err)
	}
	out, err := f1.Run(context.Background(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK {
		t.Error("F1 not OK")
	}
	text := buf.String()
	for _, want := range []string{"n = 16, m = 2, ℓ = 4", "0000", "1111", "virtual trajectory"} {
		if !strings.Contains(text, want) {
			t.Errorf("Figure 1 output missing %q:\n%s", want, text)
		}
	}
}
