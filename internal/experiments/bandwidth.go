package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/baseline"
	"smallbuffers/internal/core"
	"smallbuffers/internal/harness"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
	"smallbuffers/internal/stats"
)

// DefaultBandwidths is the link-capacity axis E12 sweeps when the caller
// does not override it (aqtbench's -bandwidths flag does).
var DefaultBandwidths = []int{1, 2, 4, 8}

// E12Bandwidth reproduces the other half of the space-bandwidth tradeoff:
// buffer space as a function of link bandwidth B at fixed demand. Each
// sweep replays an identical (ρ,σ)-bounded injection pattern over links of
// bandwidth B (the bandwidth axis is excluded from seed derivation, so
// every B-cell is a paired comparison); for PTS and PPTS the measured max
// load must be non-increasing in B.
//
// Two regimes are measured. At ρ ≤ 1 the unit-capacity links already keep
// up, so the curve is flat-ish: the peak is set by injection bursts that
// must be buffered before any forwarding can react. The tradeoff bites at
// super-unit demand ρ > 1 — admissible only on links with bottleneck
// bandwidth ≥ ρ, the regime the generalized Bound admits — where standing
// backlog forms and extra bandwidth visibly buys the buffers back.
func E12Bandwidth(bandwidths ...int) Experiment {
	if len(bandwidths) == 0 {
		bandwidths = DefaultBandwidths
	}
	return Experiment{
		ID:    "E12",
		Title: "space vs link bandwidth: max load under capacitated links",
		Paper: "title/§1: with great speed come small buffers — B ≥ 1 generalization",
		Run: func(ctx context.Context, w io.Writer) (*Outcome, error) {
			const n = 64
			const sigma = 3
			const rounds = 16 * n

			multiDests := func(nw *network.Network) []network.NodeID {
				d := 8
				out := make([]network.NodeID, d)
				for k := 0; k < d; k++ {
					out[k] = network.NodeID(nw.Len() - d + k)
				}
				return out
			}

			type cellOut struct {
				load int // −1: inadmissible (ρ above the bottleneck bandwidth)
				util float64
			}

			// run executes one sweep and appends a row block per protocol to
			// table, asserting monotonicity over the admissible cells of the
			// paper's protocols (greedy rows are informational).
			run := func(table *stats.Table, bound adversary.Bound, protos []harness.ProtocolSpec, order []string, dests func(*network.Network) []network.NodeID) (bool, error) {
				sweep := &harness.Sweep{
					Protocols:  protos,
					Topologies: []harness.TopologySpec{harness.Path(n)},
					Bounds:     []adversary.Bound{bound},
					Adversaries: []harness.AdversarySpec{
						{Name: "random", New: func(nw *network.Network, b adversary.Bound, seed int64, _ int) (adversary.Adversary, error) {
							var ds []network.NodeID
							if dests != nil {
								ds = dests(nw)
							}
							return adversary.NewRandom(nw, b, ds, seed)
						}},
					},
					Bandwidths:      bandwidths,
					Seeds:           []int64{1},
					Rounds:          []int{rounds},
					VerifyAdversary: true,
				}
				res, err := sweep.Run(ctx)
				if err != nil {
					return false, err
				}
				byProto := make(map[string]map[int]cellOut)
				for _, cr := range res.Cells {
					per := byProto[cr.Cell.Protocol]
					if per == nil {
						per = make(map[int]cellOut)
						byProto[cr.Cell.Protocol] = per
					}
					if cr.Err != nil {
						if errors.Is(cr.Err, adversary.ErrRateInadmissible) {
							per[cr.Cell.Bandwidth] = cellOut{load: -1}
							continue
						}
						return false, cr.Err
					}
					_, util, _ := cr.Result.MaxLinkUtilization()
					per[cr.Cell.Bandwidth] = cellOut{load: cr.Result.MaxLoad, util: util}
				}
				ok := true
				for _, proto := range order {
					per := byProto[proto]
					prev := -1
					for _, b := range bandwidths {
						c := per[b]
						if c.load < 0 {
							table.AddRow(proto, bound.Rho, b, "—", "—", "inadmissible: ρ > B")
							continue
						}
						mono := prev < 0 || c.load <= prev
						if proto == "PTS" || proto == "PPTS" {
							ok = ok && mono
						}
						table.AddRow(proto, bound.Rho, b, c.load, fmt.Sprintf("%.2f", c.util), stats.CheckMark(mono))
						prev = c.load
					}
				}
				return ok, nil
			}

			ptsSpec := harness.Protocol("PTS", func() sim.Protocol { return core.NewPTS() })
			pptsSpec := harness.Protocol("PPTS", func() sim.Protocol { return core.NewPPTS() })
			fifoSpec := harness.Protocol("Greedy-FIFO", func() sim.Protocol { return baseline.NewGreedy(baseline.FIFO{}) })
			cols := []string{"protocol", "ρ", "B", "max load", "peak link util", "non-increasing"}

			unit := adversary.Bound{Rho: rat.One, Sigma: sigma}
			t1 := stats.NewTable(
				fmt.Sprintf("single destination, unit demand: path(%d), %v, %d rounds, identical injections per B", n, unit, rounds),
				cols...)
			ok1, err := run(t1, unit, []harness.ProtocolSpec{ptsSpec, fifoSpec}, []string{"PTS", "Greedy-FIFO"}, nil)
			if err != nil {
				return nil, err
			}
			t2 := stats.NewTable(
				fmt.Sprintf("d=8 destinations, unit demand: path(%d), %v, %d rounds, identical injections per B", n, unit, rounds),
				cols...)
			ok2, err := run(t2, unit, []harness.ProtocolSpec{pptsSpec, fifoSpec}, []string{"PPTS", "Greedy-FIFO"}, multiDests)
			if err != nil {
				return nil, err
			}

			super := adversary.Bound{Rho: rat.FromInt(2), Sigma: sigma}
			t3 := stats.NewTable(
				fmt.Sprintf("super-unit demand ρ=2 (needs B ≥ 2): path(%d), %v, %d rounds", n, super, rounds),
				cols...)
			ok3, err := run(t3, super, []harness.ProtocolSpec{ptsSpec}, []string{"PTS"}, nil)
			if err != nil {
				return nil, err
			}
			ok4, err := run(t3, super, []harness.ProtocolSpec{pptsSpec, fifoSpec}, []string{"PPTS", "Greedy-FIFO"}, multiDests)
			if err != nil {
				return nil, err
			}

			out := &Outcome{Tables: []*stats.Table{t1, t2, t3}, OK: ok1 && ok2 && ok3 && ok4,
				Notes: []string{
					"expected shape: flat at ρ ≤ 1 (the peak is burst-driven; B=1 already keeps up), decreasing at ρ > 1 where standing backlog forms — bandwidth substitutes for buffer space",
					"the B axis replays identical injections (seed derivation excludes bandwidth), so each column is a paired comparison",
					"ρ=2 at B=1 is rejected by admissibility (ρ may range up to the bottleneck bandwidth) — the generalized Bound at work",
				}}
			return out, emit(w, out)
		},
	}
}
