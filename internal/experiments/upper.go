package experiments

import (
	"context"
	"fmt"
	"io"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/core"
	"smallbuffers/internal/harness"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
	"smallbuffers/internal/stats"
)

// E1PTS reproduces Proposition 3.1: PTS keeps every buffer at ≤ 2 + σ.
// The 30-cell grid (3 path lengths × 5 demand bounds × 2 adversaries) runs
// as a parallel harness sweep.
func E1PTS() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "PTS buffer bound on a path, single destination",
		Paper: "Proposition 3.1: max load ≤ 2 + σ",
		Run: func(ctx context.Context, w io.Writer) (*Outcome, error) {
			table := stats.NewTable("PTS max buffer load vs 2+σ",
				"n", "ρ", "σ", "adversary", "measured", "bound", "ratio", "ok")
			sweep := &harness.Sweep{
				Protocols: []harness.ProtocolSpec{
					harness.Protocol("PTS", func() sim.Protocol { return core.NewPTS() }),
				},
				Topologies: []harness.TopologySpec{harness.Path(16), harness.Path(64), harness.Path(256)},
				Bounds: []adversary.Bound{
					{Rho: rat.One, Sigma: 0}, {Rho: rat.One, Sigma: 2}, {Rho: rat.One, Sigma: 6},
					{Rho: rat.New(1, 2), Sigma: 3}, {Rho: rat.New(1, 4), Sigma: 2},
				},
				Adversaries: []harness.AdversarySpec{
					{Name: "burst", New: func(nw *network.Network, bound adversary.Bound, _ int64, rounds int) (adversary.Adversary, error) {
						return adversary.PTSBurst(nw, bound, rounds)
					}},
					harness.RandomAdversary(nil), // sinks = the single destination n−1
				},
				RoundsFor: func(nw *network.Network) int { return 6 * nw.Len() },
				BaseSeed:  1,
			}
			res, err := sweep.Run(ctx)
			if err != nil {
				return nil, err
			}
			if err := res.FirstErr(); err != nil {
				return nil, err
			}
			ok := true
			for _, cell := range res.Cells {
				n := len(cell.Result.PerNodeMax)
				limit := 2 + cell.Cell.Bound.Sigma
				rowOK := cell.Result.MaxLoad <= limit
				ok = ok && rowOK
				table.AddRow(n, cell.Cell.Bound.Rho, cell.Cell.Bound.Sigma, cell.Cell.Adversary,
					cell.Result.MaxLoad, limit, stats.Ratio(cell.Result.MaxLoad, limit), stats.CheckMark(rowOK))
			}
			out := &Outcome{Tables: []*stats.Table{table}, OK: ok,
				Notes: []string{"expected shape: measured ≤ 2+σ everywhere; crafted bursts approach the bound"}}
			return out, emit(w, out)
		},
	}
}

// E2PPTS reproduces Proposition 3.2: PPTS ≤ 1 + d + σ.
func E2PPTS() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "PPTS buffer bound on a path, d destinations",
		Paper: "Proposition 3.2: max load ≤ 1 + d + σ",
		Run: func(ctx context.Context, w io.Writer) (*Outcome, error) {
			table := stats.NewTable("PPTS max buffer load vs 1+d+σ",
				"n", "d", "σ", "adversary", "measured", "bound", "ratio", "ok")
			ok := true
			const n = 64
			nw := network.MustPath(n)
			for _, d := range []int{1, 2, 4, 8, 16, 32} {
				for _, sigma := range []int{0, 2} {
					bound := adversary.Bound{Rho: rat.One, Sigma: sigma}
					horizon := 8 * n
					burst, err := adversary.PPTSBurst(nw, bound, d, horizon)
					if err != nil {
						return nil, err
					}
					dests := make([]network.NodeID, d)
					for k := 0; k < d; k++ {
						dests[k] = network.NodeID(n - d + k)
					}
					rnd, err := adversary.NewRandom(nw, bound, dests, 2)
					if err != nil {
						return nil, err
					}
					for name, adv := range map[string]adversary.Adversary{"burst": burst, "random": rnd} {
						res, err := sim.Run(ctx, sim.NewSpec(nw, core.NewPPTS(), adv, horizon))
						if err != nil {
							return nil, err
						}
						limit := 1 + d + sigma
						rowOK := res.MaxLoad <= limit
						ok = ok && rowOK
						table.AddRow(n, d, sigma, name, res.MaxLoad, limit,
							stats.Ratio(res.MaxLoad, limit), stats.CheckMark(rowOK))
					}
				}
			}
			out := &Outcome{Tables: []*stats.Table{table}, OK: ok,
				Notes: []string{"expected shape: measured grows linearly with d (the Ω(d) regime of rate ρ > 1/2)"}}
			return out, emit(w, out)
		},
	}
}

// E3Trees reproduces Propositions B.3 and 3.5 on directed trees.
func E3Trees() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "tree PTS and PPTS buffer bounds on directed trees",
		Paper: "Prop B.3: ≤ 2 + σ (single dest); Prop 3.5: ≤ 1 + d′ + σ",
		Run: func(ctx context.Context, w io.Writer) (*Outcome, error) {
			single := stats.NewTable("TreePTS (all packets to the root) vs 2+σ",
				"tree", "nodes", "σ", "measured", "bound", "ok")
			multi := stats.NewTable("TreePPTS (chain destinations) vs 1+d′+σ",
				"tree", "nodes", "d′", "σ", "measured", "bound", "ok")
			ok := true

			type shape struct {
				name string
				nw   *network.Network
			}
			var shapes []shape
			if tr, err := network.CaterpillarTree(8, 2); err == nil {
				shapes = append(shapes, shape{"caterpillar(8,2)", tr})
			}
			if tr, err := network.BinaryTree(4); err == nil {
				shapes = append(shapes, shape{"binary(h=4)", tr})
			}
			if tr, err := network.SpiderTree(4, 4); err == nil {
				shapes = append(shapes, shape{"spider(4,4)", tr})
			}
			for _, sh := range shapes {
				for _, sigma := range []int{0, 3} {
					bound := adversary.Bound{Rho: rat.One, Sigma: sigma}
					adv, err := adversary.TreeBurst(sh.nw, bound, nil, 240)
					if err != nil {
						return nil, err
					}
					res, err := sim.Run(ctx, sim.NewSpec(sh.nw, core.NewTreePTS(), adv, 240))
					if err != nil {
						return nil, err
					}
					limit := 2 + sigma
					rowOK := res.MaxLoad <= limit
					ok = ok && rowOK
					single.AddRow(sh.name, sh.nw.Len(), sigma, res.MaxLoad, limit, stats.CheckMark(rowOK))
				}

				// Multi-destination: a chain of destinations up one deepest path.
				root := sh.nw.Sinks()[0]
				leaf := root
				for _, l := range sh.nw.Leaves() {
					if sh.nw.Depth(l) > sh.nw.Depth(leaf) {
						leaf = l
					}
				}
				var dests []network.NodeID
				for v := sh.nw.Next(leaf); v != network.None; v = sh.nw.Next(v) {
					dests = append(dests, v)
				}
				dprime := core.DestinationDepth(sh.nw, dests)
				for _, sigma := range []int{0, 2} {
					bound := adversary.Bound{Rho: rat.One, Sigma: sigma}
					adv, err := adversary.TreeBurst(sh.nw, bound, dests, 300)
					if err != nil {
						return nil, err
					}
					res, err := sim.Run(ctx, sim.NewSpec(sh.nw, core.NewTreePPTS(), adv, 300))
					if err != nil {
						return nil, err
					}
					limit := 1 + dprime + sigma
					rowOK := res.MaxLoad <= limit
					ok = ok && rowOK
					multi.AddRow(sh.name, sh.nw.Len(), dprime, sigma, res.MaxLoad, limit, stats.CheckMark(rowOK))
				}
			}
			out := &Outcome{Tables: []*stats.Table{single, multi}, OK: ok,
				Notes: []string{"d′ is the maximum number of destinations on any leaf-root path (not the total d)"}}
			return out, emit(w, out)
		},
	}
}

// E4HPTS reproduces Theorem 4.1: HPTS ≤ ℓ·n^(1/ℓ) + σ + 1 when ρ·ℓ ≤ 1.
func E4HPTS() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "HPTS hierarchical bound on a path of n = m^ℓ nodes",
		Paper: "Theorem 4.1: max load ≤ ℓ·n^(1/ℓ) + σ + 1 for ρ·ℓ ≤ 1",
		Run: func(ctx context.Context, w io.Writer) (*Outcome, error) {
			table := stats.NewTable("HPTS max buffer load vs ℓ·m+σ+1 (ρ = 1/ℓ)",
				"n", "m", "ℓ", "σ", "measured", "bound", "ratio", "phase-invariant", "ok")
			ok := true
			for _, mc := range []struct{ m, ell int }{
				{2, 2}, {2, 3}, {2, 4}, {4, 2}, {3, 3}, {8, 2},
			} {
				h, err := core.NewHierarchy(mc.m, mc.ell)
				if err != nil {
					return nil, err
				}
				n := h.N()
				nw := network.MustPath(n)
				rho := rat.New(1, int64(mc.ell))
				for _, sigma := range []int{0, 2} {
					bound := adversary.Bound{Rho: rho, Sigma: sigma}
					var dests []network.NodeID
					for v := 1; v < n; v += max(1, n/8) {
						dests = append(dests, network.NodeID(v))
					}
					dests = append(dests, network.NodeID(n-1))
					adv, err := adversary.NewRandom(nw, bound, dests, 11)
					if err != nil {
						return nil, err
					}
					check := core.NewHPTSBoundCheck(nw, h, rho)
					violations := 0
					res, err := sim.Run(ctx, sim.NewSpec(nw, core.NewHPTS(mc.ell), adv, 24*mc.ell*n,
						sim.WithObservers(check.Observer()),
						sim.WithInvariants(softInvariant(check.Invariant(), &violations))))
					if err != nil {
						return nil, err
					}
					limit := core.HPTSSpaceBound(h, sigma)
					rowOK := res.MaxLoad <= limit && violations == 0
					ok = ok && rowOK
					table.AddRow(n, mc.m, mc.ell, sigma, res.MaxLoad, limit,
						stats.Ratio(res.MaxLoad, limit),
						fmt.Sprintf("%d violations", violations), stats.CheckMark(rowOK))
				}
			}
			out := &Outcome{Tables: []*stats.Table{table}, OK: ok,
				Notes: []string{"phase-invariant counts rounds where end-of-phase badness exceeded the reduced excess (Lemma 4.8); 0 expected"}}
			return out, emit(w, out)
		},
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
