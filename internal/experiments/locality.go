package experiments

import (
	"context"
	"io"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/core"
	"smallbuffers/internal/local"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
	"smallbuffers/internal/stats"
)

// E10Locality measures the price of locality on the single-destination
// line, the context the paper builds on (§1, citing [9] and [17]).
// Three regimes:
//
//   - centralized (PTS): Θ(1 + σ) — flat in n (Proposition 3.1);
//   - naive local (plain downhill, locality 1): the full-rate steady state
//     is the staircase L(i) = n−1−i, i.e. Θ(n) at the head buffer;
//   - optimal local: Θ(ρ·log n + σ) by the algorithms of [9, 17] — between
//     the two extremes (not implemented here; the bound is the reference
//     line between the measured columns).
//
// The experiment measures the two implemented extremes under sustained
// full-rate traffic, and shows that with bandwidth headroom (ρ = 1/2) the
// naive local rule is flat too — locality only costs under pressure.
func E10Locality() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "the price of locality: centralized PTS vs local downhill",
		Paper: "§1 recent progress ([9], [17]): optimal-local is Θ(ρ·log n + σ)",
		Run: func(ctx context.Context, w io.Writer) (*Outcome, error) {
			ok := true

			// Full pressure: a sustained rate-1 stream from the head. The
			// naive local rule builds the full staircase (height n−1); the
			// centralized protocol stays at 2+σ = 2.
			pressure := stats.NewTable("full-rate head stream (ρ = 1, σ = 0): max load vs n",
				"n", "PTS (centralized)", "Downhill (naive local)", "staircase n−1", "PTS ≤ 2")
			for _, n := range []int{8, 16, 32} {
				nw := network.MustPath(n)
				rounds := 3 * n * n // enough to converge to the steady state
				measure := func(p sim.Protocol) (int, error) {
					adv := adversary.NewStream(adversary.Bound{Rho: rat.One, Sigma: 0}, 0, network.NodeID(n-1))
					res, err := sim.Run(ctx, sim.NewSpec(nw, p, adv, rounds))
					if err != nil {
						return 0, err
					}
					return res.MaxLoad, nil
				}
				pts, err := measure(core.NewPTS())
				if err != nil {
					return nil, err
				}
				down, err := measure(local.NewDownhill())
				if err != nil {
					return nil, err
				}
				rowOK := pts <= 2 && down >= (n-1)/2
				ok = ok && rowOK
				pressure.AddRow(n, pts, down, n-1, stats.CheckMark(rowOK))
			}

			// Headroom: ρ = 1/2 random traffic — all rules stay flat; the
			// locality cost is a full-pressure phenomenon (the ρ factor in
			// Θ(ρ·log n + σ)).
			headroom := stats.NewTable("half rate ρ = 1/2, σ = 2: max load vs n",
				"n", "PTS", "Downhill", "OddEven")
			for _, n := range []int{64, 256} {
				nw := network.MustPath(n)
				measure := func(p sim.Protocol) (int, error) {
					adv, err := adversary.NewRandom(nw, adversary.Bound{Rho: rat.New(1, 2), Sigma: 2},
						[]network.NodeID{network.NodeID(n - 1)}, 4)
					if err != nil {
						return 0, err
					}
					res, err := sim.Run(ctx, sim.NewSpec(nw, p, adv, 8*n))
					if err != nil {
						return 0, err
					}
					return res.MaxLoad, nil
				}
				pts, err := measure(core.NewPTS())
				if err != nil {
					return nil, err
				}
				down, err := measure(local.NewDownhill())
				if err != nil {
					return nil, err
				}
				oe, err := measure(local.NewOddEven())
				if err != nil {
					return nil, err
				}
				headroom.AddRow(n, pts, down, oe)
			}

			out := &Outcome{Tables: []*stats.Table{pressure, headroom}, OK: ok,
				Notes: []string{
					"expected shape: centralized flat at 2; naive-local tracks the staircase n−1 — the two extremes around the Θ(ρ·log n + σ) optimal-local bound of [9,17]",
					"with rate headroom every rule is flat: locality costs space only under sustained full pressure",
					"odd-even downhill (parity-staggered) sustains ρ ≤ 1/2; at ρ = 1 it diverges, so it appears in the headroom table only",
				}}
			return out, emit(w, out)
		},
	}
}
