package buffer

import (
	"testing"
	"testing/quick"

	"smallbuffers/internal/packet"
)

func mk(id packet.ID, dst int) packet.Packet {
	return packet.Packet{ID: id, Src: 0, Dst: 3, Inject: dst} // Dst fixed; Inject reused as payload
}

func TestBufferBasics(t *testing.T) {
	var b Buffer
	if b.Len() != 0 {
		t.Fatalf("zero-value Len = %d, want 0", b.Len())
	}
	b.Add(mk(1, 0))
	b.Add(mk(2, 0))
	b.Add(mk(3, 0))
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if !b.Contains(2) {
		t.Error("Contains(2) = false")
	}
	if b.Contains(9) {
		t.Error("Contains(9) = true")
	}
	p, err := b.Remove(2)
	if err != nil || p.ID != 2 {
		t.Fatalf("Remove(2) = %v, %v", p, err)
	}
	if b.Len() != 2 || b.Contains(2) {
		t.Error("Remove did not delete")
	}
	got := b.Packets()
	if got[0].ID != 1 || got[1].ID != 3 {
		t.Errorf("order after remove = %v, want [1 3]", got)
	}
	if _, err := b.Remove(99); err == nil {
		t.Error("Remove(99) succeeded, want error")
	}
}

func TestSnapshotIsOwned(t *testing.T) {
	var b Buffer
	b.Add(mk(1, 0))
	snap := b.Snapshot()
	snap[0].ID = 42
	if b.Packets()[0].ID != 1 {
		t.Error("Snapshot shares memory with buffer")
	}
}

func TestGroupAndPseudo(t *testing.T) {
	var b Buffer
	// Class by Dst parity: packets 1,3 in class (0,1); 2,4,6 in class (0,0).
	add := func(id packet.ID, dst int) {
		b.Add(packet.Packet{ID: id, Dst: 10, Inject: dst})
	}
	add(1, 1)
	add(2, 2)
	add(3, 3)
	add(4, 4)
	add(6, 6)
	g := Group(&b, func(p packet.Packet) Class {
		return Class{Minor: p.Inject % 2}
	})
	even, odd := g[Class{Minor: 0}], g[Class{Minor: 1}]
	if even.Len() != 3 || odd.Len() != 2 {
		t.Fatalf("group sizes = %d, %d, want 3, 2", even.Len(), odd.Len())
	}
	if !even.Bad() || even.BadCount() != 2 {
		t.Errorf("even badness = %v/%d, want true/2", even.Bad(), even.BadCount())
	}
	if odd.BadCount() != 1 {
		t.Errorf("odd BadCount = %d, want 1", odd.BadCount())
	}
	top, ok := even.Top()
	if !ok || top.ID != 6 {
		t.Errorf("even Top = %v, want packet 6 (LIFO)", top)
	}
	if BadTotal(g) != 3 {
		t.Errorf("BadTotal = %d, want 3", BadTotal(g))
	}

	var empty Pseudo
	if empty.Bad() || empty.BadCount() != 0 {
		t.Error("empty pseudo is bad")
	}
	if _, ok := empty.Top(); ok {
		t.Error("empty Top ok")
	}
	single := Pseudo{Pkts: []packet.Packet{mk(1, 0)}}
	if single.Bad() || single.BadCount() != 0 {
		t.Error("singleton pseudo is bad")
	}
}

func TestSortedClasses(t *testing.T) {
	g := map[Class]Pseudo{
		{1, 0}: {},
		{0, 2}: {},
		{0, 1}: {},
		{1, 1}: {},
	}
	got := SortedClasses(g)
	want := []Class{{0, 1}, {0, 2}, {1, 0}, {1, 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedClasses = %v, want %v", got, want)
		}
	}
}

func TestClassString(t *testing.T) {
	if got := (Class{2, 5}).String(); got != "(2,5)" {
		t.Errorf("String = %q", got)
	}
}

// Property: grouping preserves packets exactly — every packet appears in
// exactly one pseudo-buffer, in the same relative order.
func TestQuickGroupPartitions(t *testing.T) {
	f := func(classes []uint8) bool {
		var b Buffer
		for i, c := range classes {
			b.Add(packet.Packet{ID: packet.ID(i + 1), Inject: int(c % 4)})
		}
		g := Group(&b, func(p packet.Packet) Class {
			return Class{Minor: p.Inject}
		})
		total := 0
		for _, ps := range g {
			total += ps.Len()
			// Order within pseudo-buffer must be ascending by ID (arrival).
			for i := 1; i < len(ps.Pkts); i++ {
				if ps.Pkts[i-1].ID >= ps.Pkts[i].ID {
					return false
				}
			}
			// All packets in the class actually belong there.
			for _, p := range ps.Pkts {
				if p.Inject != ps.Class.Minor {
					return false
				}
			}
		}
		return total == b.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BadTotal = Len − #nonempty classes.
func TestQuickBadTotalIdentity(t *testing.T) {
	f := func(classes []uint8) bool {
		var b Buffer
		for i, c := range classes {
			b.Add(packet.Packet{ID: packet.ID(i + 1), Inject: int(c % 5)})
		}
		g := Group(&b, func(p packet.Packet) Class {
			return Class{Minor: p.Inject}
		})
		return BadTotal(g) == b.Len()-len(g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	var b Buffer
	b.Add(packet.Packet{ID: 1})
	b.Add(packet.Packet{ID: 2})
	b.Reset()
	if b.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", b.Len())
	}
	// Storage is retained: the next Add must not lose ordering semantics.
	b.Add(packet.Packet{ID: 3})
	if got := b.Packets(); len(got) != 1 || got[0].ID != 3 {
		t.Errorf("Packets after Reset+Add = %v", got)
	}
}
