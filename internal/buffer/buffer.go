// Package buffer implements the per-node packet stores of the simulation.
//
// A node's buffer holds packets in arrival order. The paper's algorithms
// never address the buffer as a whole: they partition it into LIFO
// pseudo-buffers ("virtual output queues", §3.2 footnote 2) keyed by an
// algorithm-specific class — the destination index for PPTS, the
// (level, intermediate-destination) pair for HPTS. This package provides
// both views: the flat buffer owned by the engine, and a Grouping helper
// that materializes pseudo-buffers on demand.
//
// Positions within a pseudo-buffer are 1-based to match the paper: a packet
// at position p ≥ 2 is "bad" (Definition 3.3), and LIFO priority forwards
// the packet at the greatest position.
package buffer

import (
	"fmt"
	"sort"

	"smallbuffers/internal/packet"
)

// Buffer is the ordered multiset of packets stored at one node. Packets are
// kept in arrival order (ties broken by injection order, i.e. packet ID,
// which the engine guarantees by appending injections in ID order). The
// zero value is an empty buffer ready to use.
type Buffer struct {
	pkts []packet.Packet
}

// Len returns the number of stored packets.
func (b *Buffer) Len() int { return len(b.pkts) }

// Add appends a packet (it becomes the newest / top-of-LIFO element of its
// pseudo-buffer).
func (b *Buffer) Add(p packet.Packet) { b.pkts = append(b.pkts, p) }

// Reset empties the buffer, retaining its backing storage so a reused
// engine run does not reallocate.
func (b *Buffer) Reset() { b.pkts = b.pkts[:0] }

// Packets returns the stored packets in arrival order. The returned slice
// is shared; callers must not modify it. Use Snapshot for an owned copy.
func (b *Buffer) Packets() []packet.Packet { return b.pkts }

// Snapshot returns an owned copy of the stored packets in arrival order.
func (b *Buffer) Snapshot() []packet.Packet {
	out := make([]packet.Packet, len(b.pkts))
	copy(out, b.pkts)
	return out
}

// Remove deletes the packet with the given ID, preserving order, and
// returns it. It returns an error if the packet is not present.
func (b *Buffer) Remove(id packet.ID) (packet.Packet, error) {
	for i, p := range b.pkts {
		if p.ID == id {
			b.pkts = append(b.pkts[:i], b.pkts[i+1:]...)
			return p, nil
		}
	}
	return packet.Packet{}, fmt.Errorf("buffer: packet #%d not present", id)
}

// Contains reports whether the packet with the given ID is stored here.
func (b *Buffer) Contains(id packet.ID) bool {
	for _, p := range b.pkts {
		if p.ID == id {
			return true
		}
	}
	return false
}

// Class names a pseudo-buffer within a node. Algorithms choose the meaning:
// PPTS uses Minor = destination index; HPTS uses Major = segment level and
// Minor = intermediate-destination index.
type Class struct {
	Major int
	Minor int
}

// String renders "(j,k)".
func (c Class) String() string { return fmt.Sprintf("(%d,%d)", c.Major, c.Minor) }

// Classifier maps a packet (at the node owning the buffer) to its
// pseudo-buffer class.
type Classifier func(p packet.Packet) Class

// Pseudo is a read-only view of one pseudo-buffer: the packets of a single
// class in arrival order (index 0 = position 1 = bottom; last = LIFO top).
type Pseudo struct {
	Class Class
	Pkts  []packet.Packet
}

// Len returns the pseudo-buffer's occupancy |L_{j,k}(i)|.
func (ps Pseudo) Len() int { return len(ps.Pkts) }

// Bad reports whether the pseudo-buffer is bad, i.e. holds ≥ 2 packets
// (Definitions 3.3 / 4.4).
func (ps Pseudo) Bad() bool { return len(ps.Pkts) >= 2 }

// BadCount returns β = max{|L| − 1, 0}, the number of bad packets here.
func (ps Pseudo) BadCount() int {
	if len(ps.Pkts) <= 1 {
		return 0
	}
	return len(ps.Pkts) - 1
}

// Top returns the LIFO head — the packet the pseudo-buffer would forward —
// and false if empty.
func (ps Pseudo) Top() (packet.Packet, bool) {
	if len(ps.Pkts) == 0 {
		return packet.Packet{}, false
	}
	return ps.Pkts[len(ps.Pkts)-1], true
}

// Group partitions a buffer into pseudo-buffers under the classifier. The
// result maps each non-empty class to its view; iteration order is not
// defined — use SortedClasses for determinism.
func Group(b *Buffer, classify Classifier) map[Class]Pseudo {
	out := make(map[Class]Pseudo)
	for _, p := range b.Packets() {
		c := classify(p)
		ps := out[c]
		ps.Class = c
		ps.Pkts = append(ps.Pkts, p)
		out[c] = ps
	}
	return out
}

// SortedClasses returns the classes of a grouping sorted by (Major, Minor),
// for deterministic iteration.
func SortedClasses(g map[Class]Pseudo) []Class {
	out := make([]Class, 0, len(g))
	for c := range g {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Major != out[j].Major {
			return out[i].Major < out[j].Major
		}
		return out[i].Minor < out[j].Minor
	})
	return out
}

// BadTotal returns Σ over classes of β, the total bad-packet count of the
// grouping (the per-node summand of Definitions 3.3 / 4.5).
func BadTotal(g map[Class]Pseudo) int {
	total := 0
	for _, ps := range g {
		total += ps.BadCount()
	}
	return total
}
