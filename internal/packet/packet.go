// Package packet defines the packet model of the AQT simulation. A packet is
// the paper's triple P = (t, i_P, w_P): injection round, injection site, and
// destination (§2). Packets additionally carry a unique ID so traces,
// staleness accounting, and delivery bookkeeping can refer to them stably,
// plus the arrival round at the current node, which greedy baselines (FIFO,
// LIFO) use for intra-buffer priority.
package packet

import (
	"fmt"

	"smallbuffers/internal/network"
)

// ID uniquely identifies a packet within one simulation run. IDs are
// assigned in injection order, so they also provide a deterministic
// tie-break for scheduling policies.
type ID uint64

// Packet is a routed packet. Fields are set at injection and never mutated;
// per-node position is tracked by the buffer layer.
type Packet struct {
	ID     ID
	Src    network.NodeID // injection site i_P
	Dst    network.NodeID // destination w_P
	Inject int            // injection round t

	// Arrived is the round at which the packet most recently entered the
	// buffer it currently occupies (== Inject at the injection site). The
	// engine updates it on every hop.
	Arrived int
}

// String renders the packet as "#id src→dst@t" for traces and test output.
func (p Packet) String() string {
	return fmt.Sprintf("#%d %d→%d@%d", p.ID, p.Src, p.Dst, p.Inject)
}

// Injection is a packet-to-be: what an adversary emits. The engine assigns
// the ID and stamps the round.
type Injection struct {
	Src network.NodeID
	Dst network.NodeID
}

// Validate checks that the injection names a real, non-trivial route in nw:
// both endpoints exist, src ≠ dst, and dst is reachable from src.
func (in Injection) Validate(nw *network.Network) error {
	if !nw.Valid(in.Src) || !nw.Valid(in.Dst) {
		return fmt.Errorf("packet: injection %d→%d: node out of range [0,%d)", in.Src, in.Dst, nw.Len())
	}
	if in.Src == in.Dst {
		return fmt.Errorf("packet: injection %d→%d: empty route", in.Src, in.Dst)
	}
	if !nw.Reaches(in.Src, in.Dst) {
		return fmt.Errorf("packet: injection %d→%d: destination not on route to sink", in.Src, in.Dst)
	}
	return nil
}
