package packet

import (
	"testing"

	"smallbuffers/internal/network"
)

func TestString(t *testing.T) {
	p := Packet{ID: 7, Src: 1, Dst: 4, Inject: 12}
	if got := p.String(); got != "#7 1→4@12" {
		t.Errorf("String = %q", got)
	}
}

func TestInjectionValidate(t *testing.T) {
	path := network.MustPath(5)
	tree, err := network.NewTree([]network.NodeID{2, 2, 4, 4, network.None})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		nw   *network.Network
		in   Injection
		ok   bool
	}{
		{"path forward", path, Injection{0, 4}, true},
		{"path one hop", path, Injection{2, 3}, true},
		{"path backward", path, Injection{3, 1}, false},
		{"path empty route", path, Injection{2, 2}, false},
		{"path src out of range", path, Injection{-1, 3}, false},
		{"path dst out of range", path, Injection{0, 9}, false},
		{"tree to root", tree, Injection{0, 4}, true},
		{"tree to ancestor", tree, Injection{1, 2}, true},
		{"tree to sibling", tree, Injection{0, 1}, false},
		{"tree to incomparable", tree, Injection{0, 3}, false},
		{"tree downward", tree, Injection{4, 0}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.in.Validate(tt.nw)
			if (err == nil) != tt.ok {
				t.Errorf("Validate(%v) err = %v, want ok=%v", tt.in, err, tt.ok)
			}
		})
	}
}
