package faults

import (
	"testing"

	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
)

func TestStreamIsPure(t *testing.T) {
	s := NewStream(42)
	a := s.Draw(keyDrop, 7, 3, 11)
	// Interleave unrelated queries; the original coordinate must not move.
	s.Draw(keyFlap, 1, 2)
	s.Draw(keyDrop, 7, 3, 12)
	if b := s.Draw(keyDrop, 7, 3, 11); b != a {
		t.Fatalf("same coordinate drew %d then %d", a, b)
	}
	if other := NewStream(43).Draw(keyDrop, 7, 3, 11); other == a {
		t.Fatalf("seeds 42 and 43 drew the same value %d", a)
	}
}

func TestBernoulliExtremesAndRate(t *testing.T) {
	s := NewStream(7)
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if s.Bernoulli(0, 1, keyDrop, uint64(i)) {
			t.Fatalf("p=0 fired at coordinate %d", i)
		}
		if !s.Bernoulli(1, 1, keyDrop, uint64(i)) {
			t.Fatalf("p=1 missed at coordinate %d", i)
		}
		if s.Bernoulli(1, 4, keyDrop, uint64(i)) {
			hits++
		}
	}
	// 1/4 of 20000 is 5000; allow ±5σ ≈ ±306.
	if hits < 4694 || hits > 5306 {
		t.Fatalf("p=1/4 fired %d/%d times", hits, trials)
	}
}

func TestBernoulliMonotoneCoupling(t *testing.T) {
	s := NewStream(99)
	for i := 0; i < 5000; i++ {
		lo := s.Bernoulli(1, 10, keyDrop, uint64(i))
		hi := s.Bernoulli(1, 4, keyDrop, uint64(i))
		if lo && !hi {
			t.Fatalf("coordinate %d fires at p=1/10 but not at p=1/4", i)
		}
	}
}

func TestDropModel(t *testing.T) {
	nw := network.MustPath(4)
	if _, err := NewDrop(rat.MustParse("3/2")); err == nil {
		t.Fatal("p=3/2 accepted")
	}
	if _, err := NewDrop(rat.MustParse("-1/2")); err == nil {
		t.Fatal("p=-1/2 accepted")
	}
	d, err := NewDrop(rat.MustParse("1/5"))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Reset(nw, 1); err != nil {
		t.Fatal(err)
	}
	if !d.LinkUp(0, 0) {
		t.Fatal("drop model took a link down")
	}
	// Determinism: the same coordinate answers identically forever.
	first := d.Drops(3, 1, 17)
	for i := 0; i < 100; i++ {
		d.Drops(i, 0, i)
	}
	if d.Drops(3, 1, 17) != first {
		t.Fatal("drop decision changed under interleaved queries")
	}
	// Reseeding changes the schedule (on at least one of many coordinates).
	var a, b []bool
	for i := 0; i < 200; i++ {
		a = append(a, d.Drops(0, 0, i))
	}
	if err := d.Reset(nw, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		b = append(b, d.Drops(0, 0, i))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical drop schedules")
	}
}

func TestLinkFlapModel(t *testing.T) {
	nw := network.MustPath(4)
	if _, err := NewLinkFlap(rat.MustParse("1/2"), 0, 0); err == nil {
		t.Fatal("period=0 accepted")
	}
	if _, err := NewLinkFlap(rat.MustParse("1/2"), MaxWindow+1, 1); err == nil {
		t.Fatal("period beyond MaxWindow accepted")
	}
	if _, err := NewLinkFlap(rat.MustParse("1/2"), 10, 11); err == nil {
		t.Fatal("down > period accepted")
	}
	f, err := NewLinkFlap(rat.One, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Reset(nw, 5); err != nil {
		t.Fatal(err)
	}
	// p=1: every window loses its first `down` rounds on every link.
	for round := 0; round < 40; round++ {
		up := f.LinkUp(round, 1)
		wantUp := round%10 >= 3
		if up != wantUp {
			t.Fatalf("round %d: LinkUp=%v, want %v", round, up, wantUp)
		}
	}
	if f.Drops(0, 0, 0) {
		t.Fatal("link_flap dropped an in-flight packet")
	}
	// down=0 is always up even at p=1.
	f0, err := NewLinkFlap(rat.One, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f0.Reset(nw, 5); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 40; round++ {
		if !f0.LinkUp(round, 2) {
			t.Fatalf("down=0 took link 2 down at round %d", round)
		}
	}
}

func TestNodeCrashModel(t *testing.T) {
	nw := network.MustPath(4)
	if _, err := NewNodeCrash(1, -1, 5); err == nil {
		t.Fatal("negative at accepted")
	}
	if _, err := NewNodeCrash(1, 0, MaxWindow+1); err == nil {
		t.Fatal("duration beyond MaxWindow accepted")
	}
	c, err := NewNodeCrash(2, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Reset(nw, 0); err != nil {
		t.Fatal(err)
	}
	bad, err := NewNodeCrash(9, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Reset(nw, 0); err == nil {
		t.Fatal("node outside topology accepted at Reset")
	}
	for round := 0; round < 12; round++ {
		for v := network.NodeID(0); v < 4; v++ {
			up := c.LinkUp(round, v)
			wantUp := !(v == 2 && round >= 5 && round < 8)
			if up != wantUp {
				t.Fatalf("round %d node %d: LinkUp=%v, want %v", round, v, up, wantUp)
			}
		}
	}
	if c.Drops(6, 2, 0) {
		t.Fatal("node_crash dropped an in-flight packet")
	}
}
