package faults

import (
	"fmt"

	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
)

// Registered model names.
const (
	DropName      = "drop"
	LinkFlapName  = "link_flap"
	NodeCrashName = "node_crash"
)

// MaxWindow caps every window-length parameter (flap periods, crash
// durations) at the same bound the metrics tier uses for series capacity,
// so a hostile scenario cannot request degenerate schedules.
const MaxWindow = 1 << 16

// Drop loses each forwarded packet independently with probability p: the
// i.i.d. per-link loss process of the router-buffer literature. The
// decision is keyed on (round, link, packet ID), so it is independent of
// query order and identical at any sweep-worker count.
type Drop struct {
	p      rat.Rat
	num    uint64
	den    uint64
	stream Stream
}

// NewDrop validates p ∈ [0, 1] and builds the model.
func NewDrop(p rat.Rat) (*Drop, error) {
	if err := checkProbability(p); err != nil {
		return nil, fmt.Errorf("faults: drop: %w", err)
	}
	num, den := probNumDen(p)
	return &Drop{p: p, num: num, den: den}, nil
}

// Name implements Model.
func (*Drop) Name() string { return DropName }

// P returns the drop probability.
func (d *Drop) P() rat.Rat { return d.p }

// Reset implements Model.
func (d *Drop) Reset(nw *network.Network, seed int64) error {
	if nw == nil {
		return fmt.Errorf("faults: drop: nil network")
	}
	d.stream = NewStream(seed)
	return nil
}

// LinkUp implements Model: drop never takes a link down.
func (*Drop) LinkUp(int, network.NodeID) bool { return true }

// Drops implements Model.
func (d *Drop) Drops(round int, v network.NodeID, pkt int) bool {
	return d.stream.Bernoulli(d.num, d.den, keyDrop, uint64(round), uint64(v), uint64(pkt))
}

// LinkFlap takes individual links down for transient outages: time is cut
// into windows of the given period, each (link, window) pair flips an
// independent coin with probability p, and a losing link is down for the
// first down rounds of that window. The schedule is a pure function of
// (seed, link, window), so it is reproducible at any worker count.
type LinkFlap struct {
	p      rat.Rat
	num    uint64
	den    uint64
	period int
	down   int
	stream Stream
}

// NewLinkFlap validates p ∈ [0, 1], 1 ≤ period ≤ MaxWindow and
// 0 ≤ down ≤ period, and builds the model.
func NewLinkFlap(p rat.Rat, period, down int) (*LinkFlap, error) {
	if err := checkProbability(p); err != nil {
		return nil, fmt.Errorf("faults: link_flap: %w", err)
	}
	if period < 1 || period > MaxWindow {
		return nil, fmt.Errorf("faults: link_flap: period %d outside [1, %d]", period, MaxWindow)
	}
	if down < 0 || down > period {
		return nil, fmt.Errorf("faults: link_flap: down %d outside [0, period=%d]", down, period)
	}
	num, den := probNumDen(p)
	return &LinkFlap{p: p, num: num, den: den, period: period, down: down}, nil
}

// Name implements Model.
func (*LinkFlap) Name() string { return LinkFlapName }

// Reset implements Model.
func (f *LinkFlap) Reset(nw *network.Network, seed int64) error {
	if nw == nil {
		return fmt.Errorf("faults: link_flap: nil network")
	}
	f.stream = NewStream(seed)
	return nil
}

// LinkUp implements Model.
func (f *LinkFlap) LinkUp(round int, v network.NodeID) bool {
	if f.down == 0 || round%f.period >= f.down {
		return true
	}
	window := round / f.period
	return !f.stream.Bernoulli(f.num, f.den, keyFlap, uint64(window), uint64(v))
}

// Drops implements Model: flapping never loses an in-flight packet.
func (*LinkFlap) Drops(int, network.NodeID, int) bool { return false }

// NodeCrash silences one node's outgoing link for a contiguous window:
// the node forwards nothing during rounds [at, at+duration). Injections
// at the node continue (the adversary does not observe faults), so its
// buffer grows for the duration and the protocol must absorb the backlog
// when the node recovers.
type NodeCrash struct {
	node     network.NodeID
	at       int
	duration int
}

// NewNodeCrash validates at ≥ 0 and 0 ≤ duration ≤ MaxWindow, and builds
// the model. The node is validated against the topology at Reset.
func NewNodeCrash(node network.NodeID, at, duration int) (*NodeCrash, error) {
	if at < 0 {
		return nil, fmt.Errorf("faults: node_crash: at %d negative", at)
	}
	if duration < 0 || duration > MaxWindow {
		return nil, fmt.Errorf("faults: node_crash: for %d outside [0, %d]", duration, MaxWindow)
	}
	return &NodeCrash{node: node, at: at, duration: duration}, nil
}

// Name implements Model.
func (*NodeCrash) Name() string { return NodeCrashName }

// Reset implements Model.
func (c *NodeCrash) Reset(nw *network.Network, seed int64) error {
	if nw == nil {
		return fmt.Errorf("faults: node_crash: nil network")
	}
	if !nw.Valid(c.node) {
		return fmt.Errorf("faults: node_crash: node %d outside topology of %d nodes", c.node, nw.Len())
	}
	return nil
}

// LinkUp implements Model.
func (c *NodeCrash) LinkUp(round int, v network.NodeID) bool {
	return v != c.node || round < c.at || round >= c.at+c.duration
}

// Drops implements Model: a crash nullifies forwards, it does not lose
// packets in transit.
func (*NodeCrash) Drops(int, network.NodeID, int) bool { return false }
