// Package faults is the fault-injection tier of the execution API: small
// deterministic models that perturb the forwarding step of a run — lossy
// links that drop packets in transit, links that flap on seeded on/off
// schedules, nodes that stop forwarding for a window. The paper's AQT
// model is loss-free, but the buffer-sizing literature around it is not
// (Spang et al. size router buffers around drops; Even–Medina route on
// grids with bounded buffers and loss), so the fault layer is what lets
// the reproduction ask: how much extra headroom does a protocol need when
// the network misbehaves?
//
// # Determinism
//
// A fault schedule must be a pure function of the cell seed, never of
// execution order: sweeps shard cells across workers, engines are reused,
// and results fold into content digests, so two runs of the same cell at
// any worker count must see the identical schedule. Models therefore draw
// no state from a sequential RNG. Instead each model holds a Stream — a
// keyed hash derived from the cell seed under a fixed domain-separation
// tag — and answers every query by hashing its coordinates (round, node,
// packet ID, window index). The answer for coordinate (t, v, pkt) is the
// same no matter how many queries came before it, which also makes the
// schedules coupled across parameter sweeps: raising a drop probability
// strictly grows the set of dropped coordinates, so headroom curves are
// sampled on nested fault sets rather than independently re-randomized
// ones.
//
// The engine queries a model at two points in the forward phase:
// LinkUp(t, v) gates node v's outgoing link for round t (a downed link
// forwards zero regardless of bandwidth — the protocol's decisions over
// it are nullified and the packets stay buffered), and Drops(t, v, pkt)
// is consulted per forwarded packet (a dropped packet leaves the buffer
// but never arrives).
package faults

import (
	"fmt"
	"math/bits"

	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
)

// Model is a deterministic fault process queried by the engine during the
// forwarding step. Implementations must be pure functions of their
// parameters and the seed handed to Reset: the engine may query any
// coordinate in any order, and the same coordinate must always produce
// the same answer.
type Model interface {
	// Name identifies the model in reports and cell labels.
	Name() string
	// Reset binds the model to a topology and the run's seed. It is
	// called once before the run (and again when an engine is reused).
	Reset(nw *network.Network, seed int64) error
	// LinkUp reports whether node v's outgoing link operates in round t.
	// A downed link forwards zero packets regardless of bandwidth.
	LinkUp(round int, v network.NodeID) bool
	// Drops reports whether the packet with the given ID, forwarded over
	// v's outgoing link in round t, is lost in transit.
	Drops(round int, v network.NodeID, pkt int) bool
}

// domainTag separates the fault sub-stream from every other consumer of
// the cell seed (adversary RNGs hash raw seeds through their own paths),
// so attaching a fault model never perturbs the traffic it is applied to.
// The value spells "faults/1"; bump the suffix if the keying scheme ever
// changes incompatibly.
const domainTag uint64 = 0x6661756c74732f31

// Query purposes, mixed into the key so distinct question kinds sample
// independent coordinates even at equal (round, node) arguments.
const (
	keyDrop uint64 = 1 + iota
	keyFlap
)

// Stream is a stateless keyed-hash randomness source: a pure function
// from integer coordinates to uniform 64-bit values, derived from a seed
// under the package's domain tag. Streams are values; copying is cheap
// and safe.
type Stream struct {
	state uint64
}

// NewStream derives the fault sub-stream for a cell seed.
func NewStream(seed int64) Stream {
	return Stream{state: mix64(uint64(seed) ^ domainTag)}
}

// Draw hashes the coordinates into a uniform 64-bit value.
func (s Stream) Draw(keys ...uint64) uint64 {
	h := s.state
	for _, k := range keys {
		h = mix64(h ^ k)
	}
	return h
}

// Bernoulli reports an event of exact rational probability num/den at the
// given coordinates. The comparison is exact (128-bit product against the
// denominator), so p=0 never fires and p=1 always fires, and for fixed
// coordinates the event set is monotone in num/den: every coordinate that
// fires at probability p also fires at every p' ≥ p.
func (s Stream) Bernoulli(num, den uint64, keys ...uint64) bool {
	if den == 0 {
		return false
	}
	// ⌊u·den/2⁶⁴⌋ < num ⇔ u < num/den·2⁶⁴, so the event has probability
	// num/den to within 2⁻⁶⁴, is exactly never at 0 and always at 1, and
	// is monotone in the threshold for a fixed draw.
	q, _ := bits.Mul64(s.Draw(keys...), den)
	return q < num
}

// mix64 is the splitmix64 finalizer: an invertible avalanche of a 64-bit
// word, the standard way to turn coordinate xors into uniform values.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// checkProbability validates a probability parameter: an exact rational
// in [0, 1].
func checkProbability(p rat.Rat) error {
	if p.Sign() < 0 || rat.One.Less(p) {
		return fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return nil
}

// probNumDen splits a validated probability into uint64 numerator and
// denominator for Stream.Bernoulli.
func probNumDen(p rat.Rat) (num, den uint64) {
	return uint64(p.Num()), uint64(p.Den())
}
