// Package local implements *local* forwarding protocols: each node's
// decision depends only on its own buffer and its next hop's, in contrast
// to the centralized algorithms of the paper. The paper's "recent progress"
// section (§1) cites the single-destination results of Dobrev et al. [9]
// and Patt-Shamir–Rosenbaum [17]: protocols with constant locality need
// Θ(ρ·log n + σ) buffer space — exponentially more than the O(1 + σ) a
// centralized algorithm achieves — and the open-problems paragraph expects
// downhill-style rules to extend to the multi-destination case.
//
// This package provides the downhill family on in-forests (single
// destination per component: the root/sink), so the repository can measure
// the locality gap the paper describes (experiment E10): PTS stays at
// 2 + σ at every n, while downhill grows logarithmically with n.
package local

import (
	"fmt"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/network"
	"smallbuffers/internal/sim"
)

// Downhill forwards from every node whose buffer is strictly larger than
// its next hop's ("water flows downhill"). With all packets destined for
// the sink, the configuration converges to a staircase whose height — and
// hence max buffer — is Θ(log n) under full-rate traffic: each downhill
// step can sustain a gradient of one packet per node, and the sink drains
// one per round.
type Downhill struct {
	// Slack is the extra gradient required before forwarding: node v
	// forwards when |L(v)| > |L(next)| + Slack. Slack 0 is the classic
	// rule; larger slack trades buffer space for fewer forwards.
	Slack int

	nw *network.Network
}

var _ sim.Protocol = (*Downhill)(nil)

// NewDownhill returns the classic downhill protocol (slack 0).
func NewDownhill() *Downhill { return &Downhill{} }

// Name implements sim.Protocol.
func (p *Downhill) Name() string {
	if p.Slack != 0 {
		return fmt.Sprintf("Downhill(slack=%d)", p.Slack)
	}
	return "Downhill"
}

// Attach implements sim.Protocol. Downhill is single-destination: all
// packets must be destined for their component's sink, which holds
// whenever the adversary's destination hint names only sinks.
func (p *Downhill) Attach(nw *network.Network, _ adversary.Bound, dests []network.NodeID) error {
	if nw == nil {
		return fmt.Errorf("local: nil network")
	}
	sinks := make(map[network.NodeID]bool, len(nw.Sinks()))
	for _, s := range nw.Sinks() {
		sinks[s] = true
	}
	for _, d := range dests {
		if !sinks[d] {
			return fmt.Errorf("local: Downhill handles sink destinations only, adversary declares %d", d)
		}
	}
	p.nw = nw
	return nil
}

// Decide implements sim.Protocol: node v forwards from its LIFO top while
// |L(v)| > |L(next(v))| + Slack, up to B(v) packets — the capacitated
// downhill rule sends min(B(v), gradient) packets, so at B = 1 it is the
// classic single-packet rule. The comparison uses the pre-forwarding
// configuration at both endpoints, which is exactly the locality-1
// information model of [9, 17].
func (p *Downhill) Decide(v sim.View) ([]sim.Forward, error) {
	var out []sim.Forward
	for i := 0; i < p.nw.Len(); i++ {
		node := network.NodeID(i)
		next := p.nw.Next(node)
		if next == network.None {
			continue
		}
		pkts := v.Packets(node)
		if len(pkts) == 0 {
			continue
		}
		// Note: the sink's load is always 0 (the engine absorbs packets on
		// arrival), so the gradient test is uniform across the line.
		k := len(pkts) - v.Load(next) - p.Slack
		if b := v.Bandwidth(node); k > b {
			k = b
		}
		for j := 0; j < k; j++ {
			out = append(out, sim.Forward{From: node, Pkt: pkts[len(pkts)-1-j].ID})
		}
	}
	return out, nil
}

// OddEven is the parity-staggered downhill variant ("odd-even downhill" in
// the spirit of the OED algorithm of [9, 17]): nodes at even distance from
// the sink may forward only in even rounds, odd-distance nodes only in odd
// rounds, each when strictly downhill. The stagger prevents simultaneous
// sender/receiver moves, so a forwarded packet never lands in a buffer that
// is emptying under it — the property the local lower bound argument of
// [17] exploits.
type OddEven struct {
	nw *network.Network
}

var _ sim.Protocol = (*OddEven)(nil)

// NewOddEven returns the odd-even downhill protocol.
func NewOddEven() *OddEven { return &OddEven{} }

// Name implements sim.Protocol.
func (p *OddEven) Name() string { return "OddEvenDownhill" }

// Attach implements sim.Protocol.
func (p *OddEven) Attach(nw *network.Network, bound adversary.Bound, dests []network.NodeID) error {
	inner := Downhill{}
	if err := inner.Attach(nw, bound, dests); err != nil {
		return err
	}
	p.nw = nw
	return nil
}

// Decide implements sim.Protocol.
func (p *OddEven) Decide(v sim.View) ([]sim.Forward, error) {
	parity := v.Round() % 2
	var out []sim.Forward
	for i := 0; i < p.nw.Len(); i++ {
		node := network.NodeID(i)
		next := p.nw.Next(node)
		if next == network.None {
			continue
		}
		if p.nw.Depth(node)%2 != parity {
			continue
		}
		pkts := v.Packets(node)
		if len(pkts) == 0 {
			continue
		}
		// Capacitated gradient rule, as in Downhill (slack 0).
		k := len(pkts) - v.Load(next)
		if b := v.Bandwidth(node); k > b {
			k = b
		}
		for j := 0; j < k; j++ {
			out = append(out, sim.Forward{From: node, Pkt: pkts[len(pkts)-1-j].ID})
		}
	}
	return out, nil
}
