package local

import (
	"context"
	"fmt"
	"testing"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/core"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
)

func fullRate(sigma int) adversary.Bound {
	return adversary.Bound{Rho: rat.One, Sigma: sigma}
}

func TestDownhillAttachValidation(t *testing.T) {
	nw := network.MustPath(8)
	if err := NewDownhill().Attach(nil, adversary.Bound{}, nil); err == nil {
		t.Error("nil network accepted")
	}
	if err := NewDownhill().Attach(nw, adversary.Bound{}, []network.NodeID{3}); err == nil {
		t.Error("non-sink destination accepted")
	}
	if err := NewDownhill().Attach(nw, adversary.Bound{}, []network.NodeID{7}); err != nil {
		t.Errorf("sink destination rejected: %v", err)
	}
	if err := NewOddEven().Attach(nw, adversary.Bound{}, []network.NodeID{3}); err == nil {
		t.Error("odd-even: non-sink destination accepted")
	}
}

func TestNames(t *testing.T) {
	if got := NewDownhill().Name(); got != "Downhill" {
		t.Errorf("Name = %q", got)
	}
	if got := (&Downhill{Slack: 2}).Name(); got != "Downhill(slack=2)" {
		t.Errorf("Name = %q", got)
	}
	if got := NewOddEven().Name(); got != "OddEvenDownhill" {
		t.Errorf("Name = %q", got)
	}
}

func TestDownhillDeliversStream(t *testing.T) {
	nw := network.MustPath(16)
	adv := adversary.NewStream(fullRate(0), 0, 15)
	res, err := sim.Run(context.Background(), sim.NewSpec(nw, NewDownhill(), adv, 300))
	if err != nil {
		t.Fatal(err)
	}
	// Plain downhill stalls on equal-load plateaus (neighbors with equal
	// buffers exchange nothing), so at rate exactly 1 its throughput drops
	// to roughly half — the phenomenon the odd-even stagger repairs.
	if res.Delivered < 120 {
		t.Errorf("delivered %d of %d, want ≥ 120", res.Delivered, res.Injected)
	}
}

// TestOddEvenRateRegimes pins the stagger's throughput structure: each
// node forwards at most every other round, so odd-even sustains ρ ≤ 1/2
// with small buffers but diverges (backlog grows linearly at the source)
// at ρ = 1 — while plain downhill handles ρ = 1 with stalls instead.
func TestOddEvenRateRegimes(t *testing.T) {
	nw := network.MustPath(16)
	run := func(rho rat.Rat, rounds int) sim.Result {
		adv := adversary.NewStream(adversary.Bound{Rho: rho, Sigma: 1}, 0, 15)
		res, err := sim.Run(context.Background(), sim.NewSpec(nw, NewOddEven(), adv, rounds))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	half := run(rat.New(1, 2), 600)
	if half.MaxLoad > 8 {
		t.Errorf("ρ=1/2: max load %d, want small", half.MaxLoad)
	}
	if half.Residual > 30 {
		t.Errorf("ρ=1/2: residual %d of %d", half.Residual, half.Injected)
	}
	full := run(rat.One, 600)
	if full.MaxLoad < 200 {
		t.Errorf("ρ=1: expected divergent backlog at the source, got max load %d", full.MaxLoad)
	}
}

func TestOddEvenDeliversStream(t *testing.T) {
	nw := network.MustPath(16)
	adv := adversary.NewStream(adversary.Bound{Rho: rat.New(1, 2), Sigma: 1}, 0, 15)
	res, err := sim.Run(context.Background(), sim.NewSpec(nw, NewOddEven(), adv, 400))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("odd-even delivered nothing")
	}
}

// TestDownhillStaircase pins the naive-local steady state of E10: under a
// sustained full-rate head stream, plain downhill converges to the full
// staircase L(i) = n−1−i, so its max buffer is n−1 — while centralized PTS
// stays at 2 on the same traffic. This is the Θ(n) vs Θ(1) locality gap
// around the Θ(ρ·log n + σ) optimal-local bound of [9, 17].
func TestDownhillStaircase(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		nw := network.MustPath(n)
		sink := network.NodeID(n - 1)
		rounds := 3 * n * n
		mk := func() adversary.Adversary {
			return adversary.NewStream(fullRate(0), 0, sink)
		}
		down, err := sim.Run(context.Background(), sim.NewSpec(nw, NewDownhill(), mk(), rounds))
		if err != nil {
			t.Fatal(err)
		}
		pts, err := sim.Run(context.Background(), sim.NewSpec(nw, core.NewPTS(), mk(), rounds))
		if err != nil {
			t.Fatal(err)
		}
		if pts.MaxLoad > 2 {
			t.Errorf("n=%d: PTS exceeded 2+σ: %d", n, pts.MaxLoad)
		}
		if down.MaxLoad != n-1 {
			t.Errorf("n=%d: downhill staircase height = %d, want n−1 = %d", n, down.MaxLoad, n-1)
		}
	}
}

// TestDownhillSlackTradeoff: more slack, more stored packets.
func TestDownhillSlackTradeoff(t *testing.T) {
	nw := network.MustPath(32)
	load := make([]int, 0, 3)
	for _, slack := range []int{0, 1, 2} {
		adv, err := adversary.NewRandom(nw, fullRate(1), []network.NodeID{31}, 9)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(context.Background(), sim.NewSpec(nw, &Downhill{Slack: slack}, adv, 400))
		if err != nil {
			t.Fatal(err)
		}
		load = append(load, res.MaxLoad)
	}
	if !(load[0] <= load[1] && load[1] <= load[2]) {
		t.Errorf("slack should not reduce max load: %v", load)
	}
}

func TestDownhillOnTree(t *testing.T) {
	tree, err := network.SpiderTree(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := adversary.NewRandom(tree, adversary.Bound{Rho: rat.New(1, 2), Sigma: 1}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), sim.NewSpec(tree, NewDownhill(), adv, 400))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Error("nothing delivered on tree")
	}
}

func TestOddEvenParityStagger(t *testing.T) {
	// With the stagger, a node at even depth never forwards in odd rounds.
	nw := network.MustPath(6)
	adv := adversary.NewSchedule().AtN(0, 3, 0, 5).Build(fullRate(2))
	var badMoves []string
	obs := &parityObserver{nw: nw, bad: &badMoves}
	if _, err := sim.Run(context.Background(), sim.NewSpec(nw, NewOddEven(), adv, 40, sim.WithObservers(obs))); err != nil {
		t.Fatal(err)
	}
	if len(badMoves) > 0 {
		t.Errorf("parity violations: %v", badMoves)
	}
}

type parityObserver struct {
	sim.NopObserver
	nw  *network.Network
	bad *[]string
}

func (p *parityObserver) OnForward(round int, moves []sim.Move) {
	for _, m := range moves {
		if p.nw.Depth(m.From)%2 != round%2 {
			*p.bad = append(*p.bad, fmt.Sprintf("round %d from depth %d", round, p.nw.Depth(m.From)))
		}
	}
}
