package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow(1, "x").AddRow(2.5, "y")
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	out := tb.String()
	for _, want := range []string{"demo", "a", "b", "1", "2.5", "x", "y", "="} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow("p", "q")
	var sb strings.Builder
	if err := tb.Markdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"### demo", "| a | b |", "| --- | --- |", "| p | q |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTableStringerValues(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(strings.NewReplacer()) // not a Stringer: falls back to %v
	tb.AddRow(testStringer{})
	if !strings.Contains(tb.String(), "custom") {
		t.Error("Stringer not used")
	}
}

type testStringer struct{}

func (testStringer) String() string { return "custom" }

func TestSummary(t *testing.T) {
	var s Summary
	for _, v := range []float64{3, 1, 4, 1, 5} {
		s.Add(v)
	}
	if s.Count != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 2.8 {
		t.Errorf("Mean = %v, want 2.8", s.Mean)
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("P50 = %v, want 3", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	s2 := Summary{}
	if got := s2.Percentile(50); got != 0 {
		t.Errorf("empty P50 = %v", got)
	}
	var s3 Summary
	s3.AddInt(7)
	if s3.Max != 7 {
		t.Errorf("AddInt: %v", s3.Max)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Errorf("String = %q", s.String())
	}
}

func TestQuickSummaryInvariants(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		var s Summary
		for _, v := range vals {
			s.Add(float64(v))
		}
		return s.Min <= s.Mean && s.Mean <= s.Max && s.Count == len(vals) &&
			s.Percentile(0) == s.Min && s.Percentile(100) == s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantiles(t *testing.T) {
	var s Summary
	for v := 1; v <= 100; v++ {
		s.AddInt(v)
	}
	got := s.Quantiles(50, 90, 99, 100)
	want := []float64{50, 90, 99, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Quantiles[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Agreement with Percentile, point for point.
	for _, p := range []float64{0, 25, 50, 75, 99.9} {
		if q := s.Quantiles(p)[0]; q != s.Percentile(p) {
			t.Errorf("Quantiles(%g) = %g, Percentile = %g", p, q, s.Percentile(p))
		}
	}
	var empty Summary
	if got := empty.Quantiles(50, 99); got[0] != 0 || got[1] != 0 {
		t.Errorf("empty Quantiles = %v", got)
	}
}

// TestHistogramGolden pins the exact rendering: fixed-width bars scaled
// to the maximum count, aligned labels and counts.
func TestHistogramGolden(t *testing.T) {
	var sb strings.Builder
	err := Histogram(&sb, "occupancy", []HistBar{
		{Label: "0", Count: 8},
		{Label: "1", Count: 4},
		{Label: "2–3", Count: 1},
		{Label: "4+", Count: 0},
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := "" +
		"occupancy\n" +
		"0    ████████ 8\n" +
		"1    ████     4\n" +
		"2–3  █        1\n" +
		"4+            0\n"
	if sb.String() != want {
		t.Errorf("histogram rendering:\n%q\nwant:\n%q", sb.String(), want)
	}
}

func TestHistogramHalfCellsAndEmpty(t *testing.T) {
	var sb strings.Builder
	if err := Histogram(&sb, "", []HistBar{
		{Label: "a", Count: 3},
		{Label: "b", Count: 1},
	}, 3); err != nil {
		t.Fatal(err)
	}
	want := "" +
		"a  ███ 3\n" +
		"b  █   1\n"
	if sb.String() != want {
		t.Errorf("got:\n%q\nwant:\n%q", sb.String(), want)
	}
	sb.Reset()
	if err := Histogram(&sb, "t", nil, 0); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "t\n" {
		t.Errorf("empty histogram rendered %q", sb.String())
	}
}

func TestRatioAndCheckMark(t *testing.T) {
	if got := Ratio(3, 4); got != "0.75×" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Ratio(1, 0); got != "n/a" {
		t.Errorf("Ratio/0 = %q", got)
	}
	if CheckMark(true) != "✓" || !strings.Contains(CheckMark(false), "VIOLATION") {
		t.Error("CheckMark wrong")
	}
}
