// Package stats provides the small reporting toolkit used by the
// experiment harness: aligned text tables, numeric summaries, and series
// helpers. Everything renders to plain text so experiment output diffs
// cleanly and embeds in EXPERIMENTS.md.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Table is an ordered grid with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns a table with the given title and columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: append([]string(nil), columns...)}
}

// AddRow appends a row; values are stringified with %v (floats with %.3g).
func (t *Table) AddRow(values ...interface{}) *Table {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = strconv.FormatFloat(x, 'g', 4, 64)
		case fmt.Stringer:
			row[i] = x.String()
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
	return t
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.Rows) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("-", len(t.Title))); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, strings.Join(t.Columns, "\t")); err != nil {
		return err
	}
	underline := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		underline[i] = strings.Repeat("=", len([]rune(c)))
	}
	if _, err := fmt.Fprintln(tw, strings.Join(underline, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Summary aggregates a numeric sample.
type Summary struct {
	Count    int
	Min, Max float64
	Mean     float64
	sum      float64
	values   []float64
}

// Add folds a value into the summary.
func (s *Summary) Add(v float64) {
	if s.Count == 0 || v < s.Min {
		s.Min = v
	}
	if s.Count == 0 || v > s.Max {
		s.Max = v
	}
	s.Count++
	s.sum += v
	s.Mean = s.sum / float64(s.Count)
	s.values = append(s.values, v)
}

// AddInt folds an integer value.
func (s *Summary) AddInt(v int) { s.Add(float64(v)) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by nearest-rank, or
// 0 for an empty summary.
func (s *Summary) Percentile(p float64) float64 { return s.Quantiles(p)[0] }

// Quantiles returns the percentiles at each requested p (0 ≤ p ≤ 100) in
// order, by the same nearest-rank rule as Percentile; empty summaries
// yield zeros. One call sorts once, so tables asking for p50/p90/p99 pay
// a single O(n log n).
func (s *Summary) Quantiles(ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if s.Count == 0 || len(ps) == 0 {
		return out
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	for i, p := range ps {
		rank := int(p/100*float64(s.Count)+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= s.Count {
			rank = s.Count - 1
		}
		out[i] = sorted[rank]
	}
	return out
}

// String renders "n=… min=… mean=… max=…".
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d min=%g mean=%.3g max=%g", s.Count, s.Min, s.Mean, s.Max)
}

// HistBar is one labeled count of a histogram rendering.
type HistBar struct {
	Label string
	Count int
}

// Histogram renders labeled counts as fixed-width ASCII bars: every bar
// is scaled to the maximum count over `width` columns, with the raw count
// alongside, so distributions diff cleanly in experiment output.
//
//	0    ██████████████████████████████  1204
//	1    ███████▌                         301
//	2–3  ▏                                  2
//
// Zero-count bars render an empty column. width < 1 defaults to 30.
func Histogram(w io.Writer, title string, bars []HistBar, width int) error {
	if width < 1 {
		width = 30
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	maxCount, labelW, countW := 0, 0, 1
	for _, b := range bars {
		if b.Count > maxCount {
			maxCount = b.Count
		}
		if l := len([]rune(b.Label)); l > labelW {
			labelW = l
		}
		if l := len(strconv.Itoa(b.Count)); l > countW {
			countW = l
		}
	}
	for _, b := range bars {
		cells := 0
		if maxCount > 0 {
			// Half-up rounding in units of half-cells (a full bar is
			// 2·width half-cells) so small nonzero counts stay visible
			// as "▌".
			cells = (4*width*b.Count + maxCount) / (2 * maxCount)
			if cells == 0 && b.Count > 0 {
				cells = 1
			}
		}
		bar := strings.Repeat("█", cells/2)
		if cells%2 == 1 {
			bar += "▌"
		}
		if _, err := fmt.Fprintf(w, "%-*s  %-*s %*d\n", labelW, b.Label, width, bar, countW, b.Count); err != nil {
			return err
		}
	}
	return nil
}

// Ratio formats measured/bound as a tightness ratio string ("0.83×").
func Ratio(measured, bound int) string {
	if bound == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f×", float64(measured)/float64(bound))
}

// CheckMark renders "✓" when ok, "✗ VIOLATION" otherwise; experiment tables
// use it for bound assertions.
func CheckMark(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗ VIOLATION"
}
