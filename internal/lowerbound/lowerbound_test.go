package lowerbound

import (
	"context"
	"fmt"
	"testing"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/baseline"
	"smallbuffers/internal/core"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
)

func TestNewValidation(t *testing.T) {
	half := rat.New(1, 2)
	tests := []struct {
		name   string
		m, ell int
		rho    rat.Rat
		ok     bool
	}{
		{"basic", 2, 2, half, true},
		{"bigger", 4, 2, half, true},
		{"ell3", 2, 3, half, true},
		{"rho integral product", 3, 2, rat.New(1, 3), true},
		{"ell too small", 2, 1, half, false},
		{"m too small", 1, 2, half, false},
		{"rho zero", 2, 2, rat.Zero, false},
		{"rho above one", 2, 2, rat.New(3, 2), false},
		{"rho m not integral", 3, 2, half, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.m, tt.ell, tt.rho)
			if (err == nil) != tt.ok {
				t.Errorf("New(%d,%d,%v) err=%v, want ok=%v", tt.m, tt.ell, tt.rho, err, tt.ok)
			}
		})
	}
}

func TestGeometry(t *testing.T) {
	adv, err := New(2, 2, rat.New(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if adv.N() != 3*4 {
		t.Errorf("N = %d, want 12", adv.N())
	}
	if adv.Rounds() != 8 {
		t.Errorf("Rounds = %d, want 8", adv.Rounds())
	}
	nw, err := adv.Network()
	if err != nil {
		t.Fatal(err)
	}
	if nw.Len() != 13 {
		t.Errorf("network size = %d, want 13", nw.Len())
	}
	// Phase 0 (t_2 t_1 = 00): v_2 = 3·4 − 1·2·2 = 8; v_1 = v_2 + (2·2 − 1·1·1) = 8+3 = 11.
	if got := adv.V(2, 0); got != 8 {
		t.Errorf("v_2(00) = %d, want 8", got)
	}
	if got := adv.V(1, 0); got != 11 {
		t.Errorf("v_1(00) = %d, want 11", got)
	}
	if got := adv.F(0); got != 11 {
		t.Errorf("F(0) = %d, want 11", got)
	}
	// F is non-increasing over the whole pattern.
	prev := adv.F(0)
	for r := 1; r < adv.Rounds(); r++ {
		if f := adv.F(r); f > prev {
			t.Fatalf("F increased: F(%d)=%d > F(%d)=%d", r, f, r-1, prev)
		} else {
			prev = f
		}
	}
}

func TestRoutesTileTheLine(t *testing.T) {
	adv, err := New(3, 2, rat.New(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < adv.Rounds(); round += adv.M() {
		// type ℓ+1: 0 → v_ℓ; type k: v_k → v_{k−1}; type 1: v_1 → n.
		prevDst := 0
		for typ := adv.Ell() + 1; typ >= 1; typ-- {
			src, dst := adv.Route(typ, round)
			if int(src) != prevDst {
				t.Fatalf("round %d type %d: src %d, want %d (tiling)", round, typ, src, prevDst)
			}
			if int(dst) <= int(src) {
				t.Fatalf("round %d type %d: degenerate route %d→%d", round, typ, src, dst)
			}
			prevDst = int(dst)
		}
		if prevDst != adv.N() {
			t.Fatalf("round %d: tiling ends at %d, want n=%d", round, prevDst, adv.N())
		}
	}
}

func TestRoutePanicsOnBadType(t *testing.T) {
	adv, err := New(2, 2, rat.New(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Route(0) did not panic")
		}
	}()
	adv.Route(0, 0)
}

// TestIsRhoOneBounded verifies the construction's central claim: the
// pattern is (ρ,1)-bounded (checked with the exact excess verifier over the
// full horizon).
func TestIsRhoOneBounded(t *testing.T) {
	cases := []struct {
		m, ell int
		rho    rat.Rat
	}{
		{2, 2, rat.New(1, 2)},
		{4, 2, rat.New(1, 2)},
		{4, 2, rat.New(3, 4)},
		{2, 3, rat.New(1, 2)},
		{3, 2, rat.New(2, 3)},
		{6, 2, rat.New(1, 2)},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("m=%d_ell=%d_rho=%v", tc.m, tc.ell, tc.rho), func(t *testing.T) {
			adv, err := New(tc.m, tc.ell, tc.rho)
			if err != nil {
				t.Fatal(err)
			}
			nw, err := adv.Network()
			if err != nil {
				t.Fatal(err)
			}
			if err := adversary.VerifyPrefix(nw, adv, adv.Rounds()); err != nil {
				t.Errorf("pattern violates (ρ,1): %v", err)
			}
		})
	}
}

func TestInjectionVolume(t *testing.T) {
	adv, err := New(4, 2, rat.New(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	// (ℓ+1)·ρm = 3·2 = 6 packets per phase, m^ℓ = 16 phases → 96 total.
	total := 0
	for r := 0; r < adv.Rounds(); r++ {
		total += len(adv.Inject(r))
	}
	want := (adv.Ell() + 1) * 2 * 16
	if total != want {
		t.Errorf("total injections = %d, want %d", total, want)
	}
	if got := adv.Inject(adv.Rounds() + 5); got != nil {
		t.Errorf("injections after pattern end: %v", got)
	}
}

func TestPredictedBound(t *testing.T) {
	adv, err := New(8, 2, rat.New(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	// ((ℓ+1)ρ−1)/(2ℓ)·m = (9/4−1)/4·8 = (5/4)·2 = 5/2.
	if got := adv.PredictedBound(); !got.Equal(rat.New(5, 2)) {
		t.Errorf("PredictedBound = %v, want 5/2", got)
	}
	// Degenerate rate: ρ ≤ 1/(ℓ+1) predicts 0.
	low, err := New(3, 2, rat.New(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got := low.PredictedBound(); got.Sign() != 0 {
		t.Errorf("PredictedBound = %v, want 0", got)
	}
}

// TestForcesLoadOnAllProtocols is the executable Theorem 5.1: every
// implemented protocol, greedy or peak-to-sink, accumulates at least the
// predicted load on the pattern.
func TestForcesLoadOnAllProtocols(t *testing.T) {
	adv0, err := New(4, 2, rat.New(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := adv0.Network()
	if err != nil {
		t.Fatal(err)
	}
	floor := int(adv0.PredictedBound().Ceil())
	if floor < 2 {
		t.Fatalf("test wants a non-trivial floor, got %d", floor)
	}
	protos := []sim.Protocol{
		core.NewPPTS(),
		core.NewPTS(core.WithDrain()),
	}
	for _, g := range baseline.All() {
		protos = append(protos, g)
	}
	for _, proto := range protos {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			adv, err := New(4, 2, rat.New(3, 4))
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(context.Background(), sim.NewSpec(nw, proto, adv, adv.Rounds()))
			if err != nil {
				t.Fatal(err)
			}
			if res.MaxLoad < floor {
				t.Errorf("MaxLoad = %d < predicted floor %d", res.MaxLoad, floor)
			}
		})
	}
}

// TestStalenessLemmas replays Lemmas 5.2–5.4 during runs of several
// protocols over the pattern.
func TestStalenessLemmas(t *testing.T) {
	adv0, err := New(4, 2, rat.New(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := adv0.Network()
	if err != nil {
		t.Fatal(err)
	}
	protos := []func() sim.Protocol{
		func() sim.Protocol { return baseline.NewGreedy(baseline.LIS{}) },
		func() sim.Protocol { return baseline.NewGreedy(baseline.NTG{}) },
		func() sim.Protocol { return core.NewPPTS() },
	}
	for _, mk := range protos {
		proto := mk()
		t.Run(proto.Name(), func(t *testing.T) {
			adv, err := New(4, 2, rat.New(1, 2))
			if err != nil {
				t.Fatal(err)
			}
			tracker := NewStalenessTracker(adv)
			_, err = sim.Run(context.Background(), sim.NewSpec(nw, proto, adv, adv.Rounds(), sim.WithObservers(tracker)))
			if err != nil {
				t.Fatal(err)
			}
			if tracker.Err != nil {
				t.Errorf("staleness lemma violated: %v", tracker.Err)
			}
			// Lemma 5.4: α-stale total over τ rounds is ≤ τ.
			if tracker.AlphaTotal() > adv.Rounds() {
				t.Errorf("α-stale total %d > rounds %d", tracker.AlphaTotal(), adv.Rounds())
			}
			// Lemma 5.5: per-epoch dichotomy (β burst or fresh growth).
			if err := tracker.Lemma55(); err != nil {
				t.Error(err)
			}
			t.Logf("fresh=%d α=%d β=%d", tracker.FreshCount(), tracker.AlphaTotal(), tracker.BetaTotal())
		})
	}
}

func TestStatusString(t *testing.T) {
	if Fresh.String() != "fresh" || AlphaStale.String() != "α-stale" || BetaStale.String() != "β-stale" {
		t.Error("status strings wrong")
	}
	if Status(99).String() == "" {
		t.Error("unknown status renders empty")
	}
}
