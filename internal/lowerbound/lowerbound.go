// Package lowerbound implements the Section 5 construction: a (ρ,1)-bounded
// injection pattern on a path of n = (ℓ+1)·m^ℓ buffers that forces *every*
// forwarding protocol to store Ω(((ℓ+1)ρ−1)/2ℓ · n^(1/ℓ)) packets in some
// buffer (Theorem 5.1).
//
// The pattern runs m^ℓ phases of m rounds each. During the phase with
// base-m index t_ℓ···t_1 it injects, smoothly at rate ρ per route:
//
//   - ρm packets into buffer v_1(t_ℓ···t_1) destined for node n,
//   - ρm packets into buffer v_k destined for v_{k−1}, for k = 2…ℓ,
//   - ρm packets into buffer 0 destined for v_ℓ,
//
// where v_i(t_ℓ···t_1) = Σ_{k=i}^{ℓ} ((k+1)m^k − (t_k+1)k·m^(k−1)). The
// routes tile the line edge-disjointly, and the right-most site
// F(t) = v_1 drifts left as phases advance, so packets are overtaken by F
// before they can be delivered ("go stale") at a bounded rate only
// (Lemmas 5.2–5.4) — forcing fresh packets to pile up.
//
// The package also provides a StalenessTracker that replays the paper's
// fresh/α-stale/β-stale accounting during a simulation, turning Lemmas 5.2,
// 5.3 and 5.4 into executable checks.
package lowerbound

import (
	"fmt"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/rat"
)

// Adversary is the Theorem 5.1 injection pattern.
type Adversary struct {
	m, ell  int
	rho     rat.Rat
	perType int // ρ·m packets of each type per phase
	n       int // buffer count (ℓ+1)·m^ℓ; the path has n+1 nodes
	rounds  int // m^(ℓ+1)
	pow     []int

	// emission state: per type 1..ℓ+1, packets emitted in the current
	// phase; reset at phase starts.
	phaseOf int
	emitted []int
}

var _ adversary.Adversary = (*Adversary)(nil)

// New validates parameters and returns the pattern. Requirements: ℓ ≥ 2,
// m ≥ 2, ρ ≤ 1, ρ·m ∈ ℕ (so each phase injects a whole number of packets
// per route), and ρ > 1/(ℓ+1) for the bound to be non-trivial (smaller ρ is
// allowed but the predicted bound degenerates to 0).
func New(m, ell int, rho rat.Rat) (*Adversary, error) {
	if ell < 2 {
		return nil, fmt.Errorf("lowerbound: need ℓ ≥ 2, got %d", ell)
	}
	if m < 2 {
		return nil, fmt.Errorf("lowerbound: need m ≥ 2, got %d", m)
	}
	if rho.Sign() <= 0 || rat.One.Less(rho) {
		return nil, fmt.Errorf("lowerbound: need 0 < ρ ≤ 1, got %v", rho)
	}
	perTypeRat := rho.MulInt(int64(m))
	if !perTypeRat.IsInt() {
		return nil, fmt.Errorf("lowerbound: ρ·m = %v must be an integer", perTypeRat)
	}
	pow := make([]int, ell+2)
	pow[0] = 1
	for j := 1; j <= ell+1; j++ {
		if pow[j-1] > (1<<28)/m {
			return nil, fmt.Errorf("lowerbound: m=%d ℓ=%d overflows", m, ell)
		}
		pow[j] = pow[j-1] * m
	}
	n := (ell + 1) * pow[ell]
	return &Adversary{
		m: m, ell: ell, rho: rho,
		perType: int(perTypeRat.Num()),
		n:       n,
		rounds:  pow[ell+1],
		pow:     pow,
		phaseOf: -1,
		emitted: make([]int, ell+2),
	}, nil
}

// Bound implements adversary.Adversary: the pattern is (ρ,1)-bounded.
func (a *Adversary) Bound() adversary.Bound {
	return adversary.Bound{Rho: a.rho, Sigma: 1}
}

// N returns the number of buffers n = (ℓ+1)·m^ℓ (the path has N()+1 nodes,
// so that destination n exists).
func (a *Adversary) N() int { return a.n }

// M returns the per-phase round count m.
func (a *Adversary) M() int { return a.m }

// Ell returns the hierarchy depth ℓ.
func (a *Adversary) Ell() int { return a.ell }

// Rounds returns the total pattern length m^(ℓ+1).
func (a *Adversary) Rounds() int { return a.rounds }

// Network returns the path this pattern plays on: N()+1 nodes.
func (a *Adversary) Network() (*network.Network, error) {
	return network.NewPath(a.n + 1)
}

// phaseDigits decomposes a round into the phase digits t_ℓ…t_1 (the phase
// index in base m).
func (a *Adversary) phase(round int) int { return round / a.m }

// V returns the i-th injection site v_i(t_ℓ···t_1) for the phase containing
// the given round, i ∈ [1, ℓ].
func (a *Adversary) V(i, round int) int {
	phase := a.phase(round)
	sum := 0
	for k := i; k <= a.ell; k++ {
		tk := (phase / a.pow[k-1]) % a.m // digit t_k of the round number
		sum += (k+1)*a.pow[k] - (tk+1)*k*a.pow[k-1]
	}
	return sum
}

// F returns F(t) = v_1(t_ℓ···t_1): the right-most injection site of the
// phase containing round t, the "freshness frontier".
func (a *Adversary) F(round int) int { return a.V(1, round) }

// Route returns the (source, destination) of type-k packets during the
// phase containing the given round; types are 1…ℓ+1.
func (a *Adversary) Route(typ, round int) (src, dst network.NodeID) {
	switch {
	case typ == 1:
		return network.NodeID(a.V(1, round)), network.NodeID(a.n)
	case typ >= 2 && typ <= a.ell:
		return network.NodeID(a.V(typ, round)), network.NodeID(a.V(typ-1, round))
	case typ == a.ell+1:
		return 0, network.NodeID(a.V(a.ell, round))
	default:
		panic(fmt.Sprintf("lowerbound: bad type %d", typ))
	}
}

// Inject implements adversary.Adversary: within each phase, every type
// emits its ρ·m packets smoothly (packet j of a type is due at the round
// where the accumulated budget ρ·(r+1) first reaches j+1, r being the
// in-phase round index). The pattern is empty after Rounds().
func (a *Adversary) Inject(round int) []packet.Injection {
	if round >= a.rounds {
		return nil
	}
	if ph := a.phase(round); ph != a.phaseOf {
		a.phaseOf = ph
		for i := range a.emitted {
			a.emitted[i] = 0
		}
	}
	r := round % a.m // in-phase round index
	budget := int(a.rho.MulInt(int64(r + 1)).Floor())
	if budget > a.perType {
		budget = a.perType
	}
	var out []packet.Injection
	for typ := 1; typ <= a.ell+1; typ++ {
		for a.emitted[typ] < budget {
			src, dst := a.Route(typ, round)
			if src != dst {
				out = append(out, packet.Injection{Src: src, Dst: dst})
			}
			a.emitted[typ]++
		}
	}
	return out
}

// PredictedBound returns the Theorem 5.1 prediction
// ((ℓ+1)ρ − 1)/(2ℓ) · m: the max-load floor (up to the Ω constant) every
// protocol must hit on this pattern.
func (a *Adversary) PredictedBound() rat.Rat {
	// ((ℓ+1)ρ − 1) / (2ℓ) · m
	num := a.rho.MulInt(int64(a.ell + 1)).Sub(rat.One)
	if num.Sign() < 0 {
		return rat.Zero
	}
	return num.Div(rat.FromInt(int64(2 * a.ell))).MulInt(int64(a.m))
}
