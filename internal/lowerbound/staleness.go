package lowerbound

import (
	"fmt"

	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
)

// Status classifies a live packet in the Section 5 accounting.
type Status int

// Staleness states. A packet is fresh while it sits at or behind the
// frontier F(t); it becomes α-stale by being forwarded out of buffer F(t)
// and β-stale by the frontier jumping leftward over it at a phase boundary
// (Lemma 5.2).
const (
	Fresh Status = iota + 1
	AlphaStale
	BetaStale
)

// String renders the status name.
func (s Status) String() string {
	switch s {
	case Fresh:
		return "fresh"
	case AlphaStale:
		return "α-stale"
	case BetaStale:
		return "β-stale"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// StalenessTracker replays the fresh/stale accounting of Section 5 during
// a simulation: Lemmas 5.2–5.4 are verified as the run progresses (Err
// holds the first violation) and Lemma 5.5's dichotomy is checked by
// calling Lemma55 after the pattern completes. Register it as an engine
// observer.
type StalenessTracker struct {
	sim.NopObserver
	adv *Adversary

	// loc[id] is P(t+1) after the round-t forwarding step; status[id]
	// likewise.
	loc    map[packet.ID]network.NodeID
	status map[packet.ID]Status
	moved  map[packet.ID]bool

	alphaTotal int
	betaTotal  int
	// alphaPerRound records Lemma 5.4's α rate (must be ≤ 1 per round).
	alphaThisRound int
	betaThisRound  int

	// Lemma 5.5 ledger: per top-digit epoch e (m^ℓ rounds each), whether a
	// qualifying β-stale burst occurred (scenario 1), and the fresh counts
	// f(e) sampled at epoch boundaries (freshAt[e] = f(e), with f(0) = 0).
	scenario1 []bool
	freshAt   []int
	epochLen  int

	// Err holds the first lemma violation observed, if any.
	Err error
}

// NewStalenessTracker returns a tracker for a run of the given pattern.
func NewStalenessTracker(adv *Adversary) *StalenessTracker {
	return &StalenessTracker{
		adv:       adv,
		loc:       make(map[packet.ID]network.NodeID),
		status:    make(map[packet.ID]Status),
		moved:     make(map[packet.ID]bool),
		scenario1: make([]bool, adv.M()),
		freshAt:   []int{0},               // f(0) = 0: nothing injected before epoch 0
		epochLen:  adv.Rounds() / adv.M(), // m^ℓ rounds per top digit
	}
}

// OnInject implements sim.Observer: packets are fresh at injection
// (P(t) is either 0 or F(t)).
func (st *StalenessTracker) OnInject(round int, pkts []packet.Packet) {
	for _, p := range pkts {
		st.loc[p.ID] = p.Src
		st.status[p.ID] = Fresh
	}
}

// OnForward implements sim.Observer.
func (st *StalenessTracker) OnForward(round int, moves []sim.Move) {
	st.alphaThisRound = 0
	st.betaThisRound = 0
	for id := range st.moved {
		delete(st.moved, id)
	}
	for _, m := range moves {
		st.moved[m.Pkt.ID] = true
		if m.Delivered {
			// Lemma 5.3: no packet is delivered fresh. The packet occupies
			// its destination in round t+1; staleness there is implied by
			// being stale when leaving buffer F — conservatively, flag if it
			// was fresh at the start of the round and its destination is at
			// or behind the next frontier.
			if st.status[m.Pkt.ID] == Fresh && int(m.To) <= st.frontier(round+1) {
				st.fail(fmt.Errorf("lowerbound: packet %v delivered while fresh at round %d", m.Pkt, round))
			}
			delete(st.loc, m.Pkt.ID)
			delete(st.status, m.Pkt.ID)
			continue
		}
		st.loc[m.Pkt.ID] = m.To
	}
	st.reclassify(round)
}

// frontier returns F(t), clamped to the final phase for rounds past the
// pattern end.
func (st *StalenessTracker) frontier(round int) int {
	if round >= st.adv.Rounds() {
		round = st.adv.Rounds() - 1
	}
	return st.adv.F(round)
}

// reclassify applies Lemma 5.2 at the end of round t: packets that were
// fresh and are now beyond F(t+1) became stale, by exactly one of the two
// sanctioned causes.
func (st *StalenessTracker) reclassify(round int) {
	fNow := st.frontier(round)
	fNext := st.frontier(round + 1)
	for id, s := range st.status {
		if s != Fresh {
			continue
		}
		pos := int(st.loc[id])
		if pos <= fNext {
			continue // still fresh
		}
		// Became stale at end of round `round`: classify.
		switch {
		case st.moved[id] && pos == fNow+1:
			// Condition 1: was at F(t) and was forwarded.
			st.status[id] = AlphaStale
			st.alphaTotal++
			st.alphaThisRound++
			if st.alphaThisRound > 1 {
				st.fail(fmt.Errorf("lowerbound: %d α-stale packets in round %d (Lemma 5.4 allows 1)", st.alphaThisRound, round))
			}
		case fNext < fNow && pos >= fNext+1 && pos <= fNow:
			// Condition 2: frontier jumped over the packet.
			st.status[id] = BetaStale
			st.betaTotal++
			st.betaThisRound++
		default:
			st.fail(fmt.Errorf("lowerbound: packet #%d at %d went stale outside Lemma 5.2 (F(t)=%d, F(t+1)=%d, moved=%v)",
				id, pos, fNow, fNext, st.moved[id]))
			st.status[id] = AlphaStale // classify to keep counters sane
		}
	}
}

func (st *StalenessTracker) fail(err error) {
	if st.Err == nil {
		st.Err = err
	}
}

// OnRoundEnd implements sim.Observer: it maintains the Lemma 5.5 ledger.
func (st *StalenessTracker) OnRoundEnd(round int, _ sim.View) {
	m := st.adv.M()
	// Scenario 1 bookkeeping at the end of each m-round phase: k is the
	// number of trailing (m−1) digits of the phase index, i.e. the smallest
	// k with t_{k+1} < m−1 (Lemma 5.4); the β-stale burst qualifies when it
	// reaches ((ℓ+1)ρ−1)·m^(k+1)/2ℓ.
	if round%m == m-1 && round < st.adv.Rounds() {
		phase := round / m
		epoch := round / st.epochLen
		k := 0
		p := phase
		for k < st.adv.Ell() && p%m == m-1 {
			k++
			p /= m
		}
		if k < st.adv.Ell() && epoch < len(st.scenario1) {
			thr := st.beta55Threshold(k)
			if thr.Sign() <= 0 || thr.LessEq(rat.FromInt(int64(st.betaThisRound))) {
				st.scenario1[epoch] = true
			}
		}
	}
	// Fresh-count samples at epoch boundaries: f(e) is sampled at the end
	// of the last round before epoch e starts (pre-injection, consistently
	// at both ends of every epoch).
	if (round+1)%st.epochLen == 0 {
		st.freshAt = append(st.freshAt, st.FreshCount())
	}
}

// beta55Threshold returns ((ℓ+1)ρ−1)·m^(k+1)/(2ℓ).
func (st *StalenessTracker) beta55Threshold(k int) rat.Rat {
	ell := st.adv.Ell()
	num := st.adv.rho.MulInt(int64(ell + 1)).Sub(rat.One)
	pow := int64(1)
	for i := 0; i <= k; i++ {
		pow *= int64(st.adv.M())
	}
	return num.MulInt(pow).Div(rat.FromInt(int64(2 * ell)))
}

// Lemma55 checks the dichotomy of Lemma 5.5 over the recorded run: for
// every top-digit epoch e ∈ {0,…,m−2}, either a qualifying β-stale burst
// occurred during the epoch (scenario 1) or the fresh population grew by at
// least ((ℓ+1)ρ−1)·m^ℓ/2 across it (scenario 2). Call after the full
// pattern has been simulated; it returns nil when the lemma held.
func (st *StalenessTracker) Lemma55() error {
	growth := st.adv.rho.MulInt(int64(st.adv.Ell() + 1)).Sub(rat.One).
		MulInt(int64(st.epochLen)).Div(rat.FromInt(2))
	for e := 0; e+1 < len(st.freshAt) && e <= st.adv.M()-2; e++ {
		if st.scenario1[e] {
			continue
		}
		delta := rat.FromInt(int64(st.freshAt[e+1] - st.freshAt[e]))
		if delta.Less(growth) {
			return fmt.Errorf("lowerbound: Lemma 5.5 violated at epoch %d: no β burst and fresh growth %v < %v",
				e, delta, growth)
		}
	}
	return nil
}

// FreshCount returns the number of live fresh packets (the f(·) of
// Lemma 5.5).
func (st *StalenessTracker) FreshCount() int {
	n := 0
	for _, s := range st.status {
		if s == Fresh {
			n++
		}
	}
	return n
}

// AlphaTotal returns the cumulative α-stale count.
func (st *StalenessTracker) AlphaTotal() int { return st.alphaTotal }

// BetaTotal returns the cumulative β-stale count.
func (st *StalenessTracker) BetaTotal() int { return st.betaTotal }
