package core

import (
	"fmt"
	"sort"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/buffer"
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/sim"
)

// PPTS is Algorithm 2, "Parallel Peak-to-Sink": the multi-destination path
// protocol of §3.2. Each buffer is partitioned into per-destination
// pseudo-buffers (virtual output queues). Scanning destinations from
// right-most to left-most, the algorithm activates, for each destination
// w_k, the interval of k-pseudo-buffers from the left-most bad one up to
// the frontier established by higher destinations; the intervals are
// disjoint (Lemma B.1), so at most one pseudo-buffer per node forwards.
// Proposition 3.2: against any (ρ,σ)-bounded adversary with d
// destinations, every buffer holds at most 1 + d + σ packets.
//
// Destinations need not be declared: per the remark after Algorithm 2,
// PPTS treats every node as a potential destination and scans the
// destinations actually present in the configuration each round.
//
// The DrainWhenIdle extension (off by default, not in the paper) forwards
// on rounds with no bad pseudo-buffer: it runs the same scan over
// *non-empty* pseudo-buffers, additionally ending each interval only where
// the receiving pseudo-buffer is empty (or the destination), which keeps
// the configuration badness-free, preserving the bound.
//
// On capacitated links the scan is unchanged; each activated pseudo-buffer
// forwards up to B(v) packets (B = 1 recovers Algorithm 2 exactly, and the
// 1 + d + σ bound scales down as bandwidth buys faster drains — see E12).
type PPTS struct {
	drainWhenIdle bool
	nw            *network.Network
}

var _ sim.Protocol = (*PPTS)(nil)

// PPTSOption configures PPTS.
type PPTSOption func(*PPTS)

// PPTSWithDrain enables the drain-when-idle liveness extension.
func PPTSWithDrain() PPTSOption {
	return func(p *PPTS) { p.drainWhenIdle = true }
}

// NewPPTS returns a PPTS instance.
func NewPPTS(opts ...PPTSOption) *PPTS {
	p := &PPTS{}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name implements sim.Protocol.
func (p *PPTS) Name() string {
	if p.drainWhenIdle {
		return "PPTS+drain"
	}
	return "PPTS"
}

// Attach implements sim.Protocol.
func (p *PPTS) Attach(nw *network.Network, _ adversary.Bound, _ []network.NodeID) error {
	if !nw.IsPath() {
		return fmt.Errorf("core: PPTS requires a path topology (use TreePPTS for trees)")
	}
	p.nw = nw
	return nil
}

// pptsState is the per-round view: for each destination w present in the
// configuration, the per-node pseudo-buffer contents.
type pptsState struct {
	n int
	// byDest[w][i] = packets at node i destined for w, arrival order.
	byDest map[network.NodeID][][]packet.Packet
	dests  []network.NodeID // sorted ascending
	bw     []int            // bw[i] = link bandwidth of node i
}

func newPPTSState(v sim.View) *pptsState {
	n := v.Net().Len()
	st := &pptsState{n: n, byDest: make(map[network.NodeID][][]packet.Packet), bw: make([]int, n)}
	for i := 0; i < n; i++ {
		st.bw[i] = v.Bandwidth(network.NodeID(i))
		for _, pk := range v.Packets(network.NodeID(i)) {
			per := st.byDest[pk.Dst]
			if per == nil {
				per = make([][]packet.Packet, n)
				st.byDest[pk.Dst] = per
				st.dests = append(st.dests, pk.Dst)
			}
			per[i] = append(per[i], pk)
		}
	}
	sort.Slice(st.dests, func(a, b int) bool { return st.dests[a] < st.dests[b] })
	return st
}

// pseudo returns the k-pseudo-buffer of node i for destination w.
func (st *pptsState) pseudo(w network.NodeID, i int) []packet.Packet {
	per := st.byDest[w]
	if per == nil {
		return nil
	}
	return per[i]
}

// Decide implements sim.Protocol (Algorithm 2).
func (p *PPTS) Decide(v sim.View) ([]sim.Forward, error) {
	st := newPPTSState(v)
	out := p.scan(st, true)
	if out == nil && p.drainWhenIdle {
		out = p.scan(st, false)
	}
	return out, nil
}

// scan performs the right-to-left destination sweep. With bad=true it is
// Algorithm 2 verbatim: intervals begin at the left-most bad pseudo-buffer.
// With bad=false (drain mode) intervals begin at the left-most non-empty
// pseudo-buffer and are additionally truncated so that the packets leaving
// the interval's right end land in an empty pseudo-buffer (or their
// destination), preserving zero badness.
//
// On capacitated links each activated pseudo-buffer forwards under the
// cascaded-rate discipline: node i sends min(B(i), max(1, sent(i+1)))
// packets, full B(i) only into the destination itself. The node order of
// the sweep is right-to-left overall (higher destinations first, intervals
// right-to-left), so every receiver's rate is known before its sender's.
// At B = 1 every limit degenerates to one packet — Algorithm 2 exactly.
func (p *PPTS) scan(st *pptsState, bad bool) []sim.Forward {
	frontier := st.n // sentinel "w_d"
	sent := make([]int, st.n+1)
	var out []sim.Forward
	for kk := len(st.dests) - 1; kk >= 0; kk-- {
		w := st.dests[kk]
		// Left-most qualifying k-pseudo-buffer strictly left of the frontier.
		ik := -1
		limit := int(w)
		if frontier < limit {
			limit = frontier
		}
		for i := 0; i < limit; i++ {
			ps := st.pseudo(w, i)
			if (bad && len(ps) >= 2) || (!bad && len(ps) >= 1) {
				ik = i
				break
			}
		}
		if ik < 0 {
			continue
		}
		hi := frontier - 1
		if int(w)-1 < hi {
			hi = int(w) - 1
		}
		if !bad {
			// Truncate so the interval's emission lands safely: find the
			// largest hi' ∈ [ik, hi] with (hi'+1 == w) or L_k(hi'+1) empty.
			for hi >= ik && hi+1 != int(w) && len(st.pseudo(w, hi+1)) > 0 {
				hi--
			}
			if hi < ik {
				continue
			}
		}
		for i := hi; i >= ik; i-- {
			// The intervals are disjoint (Lemma B.1), so node i forwards
			// from this one pseudo-buffer only.
			limit := st.bw[i]
			if i+1 != int(w) {
				limit = min(limit, max(1, sent[i+1]))
				if !bad && i == hi {
					// Drain mode truncated the interval so its emission
					// lands in an empty pseudo-buffer; more than one packet
					// would create badness there.
					limit = 1
				}
			}
			n0 := len(out)
			out = appendLIFOTop(out, network.NodeID(i), st.pseudo(w, i), limit)
			sent[i] = len(out) - n0
		}
		frontier = ik
	}
	return out
}

// PPTSClassifier returns a buffer.Classifier assigning each packet to its
// destination pseudo-buffer (Major = 0, Minor = destination node ID). It is
// used by badness accounting and tests.
func PPTSClassifier() buffer.Classifier {
	return func(p packet.Packet) buffer.Class {
		return buffer.Class{Minor: int(p.Dst)}
	}
}
