package core

import (
	"fmt"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/sim"
)

// PTS is Algorithm 1, "Peak-to-Sink": the single-destination path protocol
// of §3.1. Each round it finds the left-most bad buffer (load ≥ 2) and
// activates every buffer from there to the destination; all activated
// non-empty buffers forward simultaneously. Proposition 3.1: against any
// (ρ,σ)-bounded adversary with ρ ≤ 1, every buffer holds at most 2 + σ
// packets.
//
// The paper's PTS forwards nothing when no buffer is bad, which preserves
// space but not liveness. The DrainWhenIdle option additionally activates
// the suffix from the left-most *non-empty* buffer on rounds with no bad
// buffer; since the head of that suffix forwards without receiving and
// every other member receives at most one packet while forwarding, the
// configuration stays badness-free and Proposition 3.1 is unaffected (the
// accompanying tests check the bound in both modes).
type PTS struct {
	drainWhenIdle bool
	nw            *network.Network
	dest          network.NodeID
}

var _ sim.Protocol = (*PTS)(nil)

// PTSOption configures PTS.
type PTSOption func(*PTS)

// WithDrain enables forwarding on rounds with no bad buffer (a liveness
// extension; see type comment).
func WithDrain() PTSOption {
	return func(p *PTS) { p.drainWhenIdle = true }
}

// NewPTS returns a PTS instance.
func NewPTS(opts ...PTSOption) *PTS {
	p := &PTS{}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name implements sim.Protocol.
func (p *PTS) Name() string {
	if p.drainWhenIdle {
		return "PTS+drain"
	}
	return "PTS"
}

// Attach implements sim.Protocol. PTS requires a path and a single common
// destination: the destination hint must name at most one node (the sink is
// assumed when the hint is empty).
func (p *PTS) Attach(nw *network.Network, _ adversary.Bound, dests []network.NodeID) error {
	if !nw.IsPath() {
		return fmt.Errorf("core: PTS requires a path topology (use TreePTS for trees)")
	}
	p.nw = nw
	switch len(dests) {
	case 0:
		p.dest = network.NodeID(nw.Len() - 1)
	case 1:
		p.dest = dests[0]
	default:
		return fmt.Errorf("core: PTS handles a single destination, adversary declares %d (use PPTS)", len(dests))
	}
	return nil
}

// Decide implements sim.Protocol.
func (p *PTS) Decide(v sim.View) ([]sim.Forward, error) {
	start := network.NodeID(-1)
	// Left-most bad buffer (Algorithm 1 line 2).
	for i := network.NodeID(0); i < p.dest; i++ {
		if v.Load(i) >= 2 {
			start = i
			break
		}
	}
	if start < 0 && p.drainWhenIdle {
		for i := network.NodeID(0); i < p.dest; i++ {
			if v.Load(i) >= 1 {
				start = i
				break
			}
		}
	}
	if start < 0 {
		return nil, nil
	}
	// Activate [start, dest−1]; every non-empty activated buffer forwards
	// its LIFO top.
	var out []sim.Forward
	for i := start; i < p.dest; i++ {
		pkts := v.Packets(i)
		if len(pkts) == 0 {
			continue
		}
		out = append(out, sim.Forward{From: i, Pkt: pkts[len(pkts)-1].ID})
	}
	return out, nil
}

// lifoTop returns the ID of the most recently arrived packet in pkts
// (the slice is in arrival order).
func lifoTop(pkts []packet.Packet) packet.ID {
	return pkts[len(pkts)-1].ID
}
