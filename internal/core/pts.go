package core

import (
	"fmt"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/sim"
)

// PTS is Algorithm 1, "Peak-to-Sink": the single-destination path protocol
// of §3.1. Each round it finds the left-most bad buffer (load ≥ 2) and
// activates every buffer from there to the destination; all activated
// non-empty buffers forward simultaneously. Proposition 3.1: against any
// (ρ,σ)-bounded adversary with ρ ≤ 1, every buffer holds at most 2 + σ
// packets.
//
// On capacitated links (B ≥ 1) the activation rule is unchanged — badness
// still means load ≥ 2 — and forwarding generalizes by the cascaded-rate
// discipline: rates are computed sink-side first, each
// activated buffer sends at most one packet more than its receiver passes
// onward, and only the buffer feeding the destination uses the full B. At
// B = 1 this is the paper's algorithm round for round; at larger B loaded
// suffixes drain from the destination end at up to B per round without
// ever piling packets onto a downstream buffer faster than the B = 1 wave
// would, which keeps the max load non-increasing in B (experiment E12
// plots the curve).
//
// The paper's PTS forwards nothing when no buffer is bad, which preserves
// space but not liveness. The DrainWhenIdle option additionally activates
// the suffix from the left-most *non-empty* buffer on rounds with no bad
// buffer; since the head of that suffix forwards without receiving and
// every other member receives at most one packet while forwarding, the
// configuration stays badness-free and Proposition 3.1 is unaffected (the
// accompanying tests check the bound in both modes).
type PTS struct {
	drainWhenIdle bool
	nw            *network.Network
	dest          network.NodeID
}

var _ sim.Protocol = (*PTS)(nil)

// PTSOption configures PTS.
type PTSOption func(*PTS)

// WithDrain enables forwarding on rounds with no bad buffer (a liveness
// extension; see type comment).
func WithDrain() PTSOption {
	return func(p *PTS) { p.drainWhenIdle = true }
}

// NewPTS returns a PTS instance.
func NewPTS(opts ...PTSOption) *PTS {
	p := &PTS{}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name implements sim.Protocol.
func (p *PTS) Name() string {
	if p.drainWhenIdle {
		return "PTS+drain"
	}
	return "PTS"
}

// Attach implements sim.Protocol. PTS requires a path and a single common
// destination: the destination hint must name at most one node (the sink is
// assumed when the hint is empty).
func (p *PTS) Attach(nw *network.Network, _ adversary.Bound, dests []network.NodeID) error {
	if !nw.IsPath() {
		return fmt.Errorf("core: PTS requires a path topology (use TreePTS for trees)")
	}
	p.nw = nw
	switch len(dests) {
	case 0:
		p.dest = network.NodeID(nw.Len() - 1)
	case 1:
		p.dest = dests[0]
	default:
		return fmt.Errorf("core: PTS handles a single destination, adversary declares %d (use PPTS)", len(dests))
	}
	return nil
}

// Decide implements sim.Protocol.
func (p *PTS) Decide(v sim.View) ([]sim.Forward, error) {
	start := network.NodeID(-1)
	// Left-most bad buffer (Algorithm 1 line 2).
	for i := network.NodeID(0); i < p.dest; i++ {
		if v.Load(i) >= 2 {
			start = i
			break
		}
	}
	if start < 0 && p.drainWhenIdle {
		for i := network.NodeID(0); i < p.dest; i++ {
			if v.Load(i) >= 1 {
				start = i
				break
			}
		}
	}
	if start < 0 {
		return nil, nil
	}
	// Activate [start, dest−1]; forwarding rates cascade from the
	// destination end (receivers are resolved before their senders).
	var out []sim.Forward
	prevSent := 0
	for i := p.dest - 1; i >= start; i-- {
		limit := v.Bandwidth(i)
		if i != p.dest-1 {
			limit = min(limit, max(1, prevSent))
		}
		n0 := len(out)
		out = appendLIFOTop(out, i, v.Packets(i), limit)
		prevSent = len(out) - n0
	}
	return out, nil
}

// lifoTop returns the ID of the most recently arrived packet in pkts
// (the slice is in arrival order).
func lifoTop(pkts []packet.Packet) packet.ID {
	return pkts[len(pkts)-1].ID
}

// appendLIFOTop appends forwarding decisions for the min(len(pkts), b)
// most recently arrived packets of node from. It is the capacitated
// generalization of "forward the LIFO top": at b = 1 it emits exactly the
// paper's single decision.
func appendLIFOTop(out []sim.Forward, from network.NodeID, pkts []packet.Packet, b int) []sim.Forward {
	for k := 0; k < b && k < len(pkts); k++ {
		out = append(out, sim.Forward{From: from, Pkt: pkts[len(pkts)-1-k].ID})
	}
	return out
}
