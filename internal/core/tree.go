package core

import (
	"fmt"
	"sort"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/sim"
)

// TreePTS is the directed-tree generalization of PTS (Appendix B.2,
// Proposition B.3): all packets are destined for their component's root;
// the protocol activates every buffer that is an ancestor-or-self of a bad
// buffer, i.e. the union of root-paths of the minimal bad antichain. Max
// load ≤ 2 + σ. On capacitated links each activated buffer forwards up to
// B(v) packets (B = 1 is the paper's rule exactly).
//
// Forests are supported (the paper's §1 notes the union-of-trees case as
// the output of many routing algorithms): components never share links, so
// the sweep runs on all of them simultaneously and the per-component
// analysis is unchanged.
type TreePTS struct {
	drainWhenIdle bool
	nw            *network.Network
	roots         map[network.NodeID]bool
	topo          []network.NodeID
}

var _ sim.Protocol = (*TreePTS)(nil)

// TreePTSOption configures TreePTS.
type TreePTSOption func(*TreePTS)

// TreePTSWithDrain activates drain-when-idle (liveness extension: on rounds
// with no bad buffer, the same sweep runs over non-empty buffers; as in
// PTS, heads of activated paths forward without receiving, so no badness is
// created).
func TreePTSWithDrain() TreePTSOption {
	return func(p *TreePTS) { p.drainWhenIdle = true }
}

// NewTreePTS returns a TreePTS instance.
func NewTreePTS(opts ...TreePTSOption) *TreePTS {
	p := &TreePTS{}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name implements sim.Protocol.
func (p *TreePTS) Name() string {
	if p.drainWhenIdle {
		return "TreePTS+drain"
	}
	return "TreePTS"
}

// Attach implements sim.Protocol. The network may be an in-tree or an
// in-forest; every declared destination must be a root.
func (p *TreePTS) Attach(nw *network.Network, _ adversary.Bound, dests []network.NodeID) error {
	p.nw = nw
	p.roots = make(map[network.NodeID]bool, len(nw.Sinks()))
	for _, s := range nw.Sinks() {
		p.roots[s] = true
	}
	p.topo = nw.TopoOrder()
	for _, d := range dests {
		if !p.roots[d] {
			return fmt.Errorf("core: TreePTS handles root destinations only, adversary declares %d (use TreePPTS)", d)
		}
	}
	return nil
}

// Decide implements sim.Protocol: active(v) ⇔ bad(v) ∨ ∃ child c active(c),
// computed leaves-first.
func (p *TreePTS) Decide(v sim.View) ([]sim.Forward, error) {
	threshold := 2
	active := p.sweep(v, 2)
	if active == nil && p.drainWhenIdle {
		active = p.sweep(v, 1)
		threshold = 1
	}
	_ = threshold
	// Cascaded rates on capacitated links: walk roots-first (reverse
	// topological order) so each sender sees its parent's rate; full B only
	// into the root, where packets are absorbed. B = 1 degenerates to the
	// paper's one-packet rule.
	var out []sim.Forward
	sent := make([]int, p.nw.Len())
	for idx := len(p.topo) - 1; idx >= 0; idx-- {
		node := p.topo[idx]
		if !active[node] || p.roots[node] {
			continue
		}
		limit := v.Bandwidth(node)
		if up := p.nw.Next(node); !p.roots[up] {
			limit = min(limit, max(1, sent[up]))
		}
		n0 := len(out)
		out = appendLIFOTop(out, node, v.Packets(node), limit)
		sent[node] = len(out) - n0
	}
	return out, nil
}

// sweep marks ancestors-or-self of every node with load ≥ threshold;
// it returns nil when no node qualifies.
func (p *TreePTS) sweep(v sim.View, threshold int) map[network.NodeID]bool {
	active := make(map[network.NodeID]bool)
	any := false
	for _, node := range p.topo { // leaves first
		if v.Load(node) >= threshold {
			active[node] = true
			any = true
		}
		if active[node] {
			if up := p.nw.Next(node); up != network.None {
				active[up] = true
			}
		}
	}
	if !any {
		return nil
	}
	return active
}

// TreePPTS is Algorithm 6: the directed-tree generalization of PPTS
// (Proposition 3.5). Destinations are processed in reverse topological
// order (root-most first); for each destination w_k, the minimal antichain
// of nodes holding bad k-pseudo-buffers is computed and the union of their
// paths to w_k is activated, excluding nodes already activated for earlier
// destinations. Max load ≤ 1 + d′ + σ, where d′ is the maximum number of
// destinations on any leaf-root path.
type TreePPTS struct {
	nw   *network.Network
	topo []network.NodeID
}

var _ sim.Protocol = (*TreePPTS)(nil)

// NewTreePPTS returns a TreePPTS instance.
func NewTreePPTS() *TreePPTS { return &TreePPTS{} }

// Name implements sim.Protocol.
func (p *TreePPTS) Name() string { return "TreePPTS" }

// Attach implements sim.Protocol. Forests are supported: routes never
// leave their component, so the per-destination sweeps compose across
// components without interacting.
func (p *TreePPTS) Attach(nw *network.Network, _ adversary.Bound, _ []network.NodeID) error {
	if nw == nil {
		return fmt.Errorf("core: TreePPTS requires a network")
	}
	p.nw = nw
	p.topo = nw.TopoOrder()
	return nil
}

// Decide implements sim.Protocol (Algorithm 6).
func (p *TreePPTS) Decide(v sim.View) ([]sim.Forward, error) {
	// Pseudo-buffers by destination, discovered from the configuration.
	byDest := make(map[network.NodeID]map[network.NodeID][]packet.Packet)
	var dests []network.NodeID
	n := p.nw.Len()
	for i := 0; i < n; i++ {
		node := network.NodeID(i)
		for _, pk := range v.Packets(node) {
			per := byDest[pk.Dst]
			if per == nil {
				per = make(map[network.NodeID][]packet.Packet)
				byDest[pk.Dst] = per
				dests = append(dests, pk.Dst)
			}
			per[node] = append(per[node], pk)
		}
	}
	// Reverse topological order of destinations: w_i ≺ w_j ⇒ j processed
	// first. Sort by depth ascending (root-most first), ties by ID for
	// determinism.
	sort.Slice(dests, func(a, b int) bool {
		da, db := p.nw.Depth(dests[a]), p.nw.Depth(dests[b])
		if da != db {
			return da < db
		}
		return dests[a] < dests[b]
	})

	// activeFor[node] = destination whose pseudo-buffer node forwards;
	// network.None marks "not active".
	activeFor := make([]network.NodeID, n)
	for i := range activeFor {
		activeFor[i] = network.None
	}
	for _, w := range dests {
		per := byDest[w]
		// Bad set B_k: nodes with |L_k| ≥ 2.
		var badNodes []network.NodeID
		for node, ps := range per {
			if len(ps) >= 2 {
				badNodes = append(badNodes, node)
			}
		}
		if len(badNodes) == 0 {
			continue
		}
		// Minimal antichain min(B_k): drop nodes with a bad strict
		// descendant in B_k.
		sort.Slice(badNodes, func(a, b int) bool { return badNodes[a] < badNodes[b] })
		minimal := badNodes[:0:0]
		for _, u := range badNodes {
			hasDesc := false
			for _, o := range badNodes {
				if o != u && p.nw.Reaches(o, u) {
					hasDesc = true
					break
				}
			}
			if !hasDesc {
				minimal = append(minimal, u)
			}
		}
		// A_k = (∪ Path(u, w)) \ A: walk each path toward w, claiming
		// unclaimed nodes (excluding w itself: packets destined w are
		// delivered on arrival, never forwarded out of w).
		for _, u := range minimal {
			for node := u; node != w && node != network.None; node = p.nw.Next(node) {
				if activeFor[node] == network.None {
					activeFor[node] = w
				}
			}
		}
	}

	// Cascaded rates on capacitated links, roots-first so parents resolve
	// before children; full B only into the pseudo-buffer's destination.
	var out []sim.Forward
	sent := make([]int, n)
	for idx := len(p.topo) - 1; idx >= 0; idx-- {
		node := p.topo[idx]
		w := activeFor[node]
		if w == network.None {
			continue
		}
		limit := v.Bandwidth(node)
		if up := p.nw.Next(node); up != w {
			limit = min(limit, max(1, sent[up]))
		}
		n0 := len(out)
		out = appendLIFOTop(out, node, byDest[w][node], limit)
		sent[node] = len(out) - n0
	}
	return out, nil
}

// DestinationDepth returns d′(G, W): the maximum number of destinations on
// any leaf-root path (the bound parameter of Proposition 3.5).
func DestinationDepth(nw *network.Network, dests []network.NodeID) int {
	isDest := make(map[network.NodeID]bool, len(dests))
	for _, d := range dests {
		isDest[d] = true
	}
	best := 0
	for _, leaf := range nw.Leaves() {
		count := 0
		for v := leaf; v != network.None; v = nw.Next(v) {
			if isDest[v] {
				count++
			}
		}
		if count > best {
			best = count
		}
	}
	return best
}
