package core

import (
	"testing"
	"testing/quick"

	"smallbuffers/internal/network"
)

func mustHierarchy(t *testing.T, m, ell int) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(m, ell)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHierarchyValidation(t *testing.T) {
	tests := []struct {
		m, ell int
		ok     bool
	}{
		{2, 1, true},
		{2, 4, true},
		{3, 3, true},
		{16, 1, true},
		{1, 2, false},
		{0, 2, false},
		{2, 0, false},
		{2, -1, false},
		{2, 40, false}, // overflow
	}
	for _, tt := range tests {
		_, err := NewHierarchy(tt.m, tt.ell)
		if (err == nil) != tt.ok {
			t.Errorf("NewHierarchy(%d,%d) err=%v, want ok=%v", tt.m, tt.ell, err, tt.ok)
		}
	}
}

func TestHierarchyFor(t *testing.T) {
	tests := []struct {
		n, ell int
		m      int
		ok     bool
	}{
		{16, 4, 2, true},
		{16, 2, 4, true},
		{27, 3, 3, true},
		{16, 1, 16, true},
		{12, 2, 0, false},
		{16, 3, 0, false},
		{1, 1, 0, false},
		{8, 0, 0, false},
	}
	for _, tt := range tests {
		h, err := HierarchyFor(tt.n, tt.ell)
		if (err == nil) != tt.ok {
			t.Errorf("HierarchyFor(%d,%d) err=%v, want ok=%v", tt.n, tt.ell, err, tt.ok)
			continue
		}
		if tt.ok && h.M() != tt.m {
			t.Errorf("HierarchyFor(%d,%d).M = %d, want %d", tt.n, tt.ell, h.M(), tt.m)
		}
	}
}

// TestFigure1Partition checks the exact structure of Figure 1: n = 16,
// m = 2, ℓ = 4.
func TestFigure1Partition(t *testing.T) {
	h := mustHierarchy(t, 2, 4)
	if h.N() != 16 {
		t.Fatalf("N = %d, want 16", h.N())
	}
	// Level 3: one interval covering the whole line.
	if got := h.IntervalCount(3); got != 1 {
		t.Errorf("level 3 interval count = %d, want 1", got)
	}
	if lo, hi := h.Interval(3, 0); lo != 0 || hi != 15 {
		t.Errorf("I_{3,0} = [%d,%d], want [0,15]", lo, hi)
	}
	// Level 0: eight intervals of two nodes each.
	if got := h.IntervalCount(0); got != 8 {
		t.Errorf("level 0 interval count = %d, want 8", got)
	}
	if lo, hi := h.Interval(0, 3); lo != 6 || hi != 7 {
		t.Errorf("I_{0,3} = [%d,%d], want [6,7]", lo, hi)
	}
	// I_{2,0} covers [0,7] and its intermediate destinations are the left
	// endpoints of its level-1 subintervals: 0 and 4.
	if lo, hi := h.Interval(2, 0); lo != 0 || hi != 7 {
		t.Errorf("I_{2,0} = [%d,%d], want [0,7]", lo, hi)
	}
	if got := h.IntermediateDests(2, 0); len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Errorf("dests of I_{2,0} = %v, want [0 4]", got)
	}
	// Digits of 13 = 1101₂.
	wantDigits := []int{1, 0, 1, 1}
	for j, want := range wantDigits {
		if got := h.Digit(13, j); got != want {
			t.Errorf("Digit(13,%d) = %d, want %d", j, got, want)
		}
	}
}

// TestFigure1VirtualTrajectory traces a packet from 0 to 13 through the
// Figure 1 hierarchy: segments [0,8] at level 3, [8,12] at level 2, and
// [12,13] at level 0 (level 1 is skipped because digit 1 of 13 is 0).
func TestFigure1VirtualTrajectory(t *testing.T) {
	h := mustHierarchy(t, 2, 4)
	segs := h.Segments(0, 13)
	want := []Segment{
		{From: 0, To: 8, Level: 3},
		{From: 8, To: 12, Level: 2},
		{From: 12, To: 13, Level: 0},
	}
	if len(segs) != len(want) {
		t.Fatalf("Segments(0,13) = %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("Segments(0,13) = %v, want %v", segs, want)
		}
	}
}

func TestLevelAndIntermediateDest(t *testing.T) {
	h := mustHierarchy(t, 2, 4)
	tests := []struct {
		i, w  int
		level int
		x     int
	}{
		{0, 13, 3, 8},
		{8, 13, 2, 12},
		{12, 13, 0, 13},
		{0, 1, 0, 1},
		{0, 8, 3, 8},
		{4, 6, 1, 6},
		{5, 7, 1, 6},
	}
	for _, tt := range tests {
		if got := h.Level(tt.i, tt.w); got != tt.level {
			t.Errorf("Level(%d,%d) = %d, want %d", tt.i, tt.w, got, tt.level)
		}
		if got := h.IntermediateDest(tt.i, tt.w); got != tt.x {
			t.Errorf("IntermediateDest(%d,%d) = %d, want %d", tt.i, tt.w, got, tt.x)
		}
	}
}

func TestClassMatchesDigit(t *testing.T) {
	h := mustHierarchy(t, 3, 3)
	for i := 0; i < h.N(); i++ {
		for w := i + 1; w < h.N(); w++ {
			j, k := h.Class(i, w)
			if want := h.Level(i, w); j != want {
				t.Fatalf("Class(%d,%d) level = %d, want %d", i, w, j, want)
			}
			if want := h.Digit(w, j); k != want {
				t.Fatalf("Class(%d,%d) k = %d, want digit %d", i, w, k, want)
			}
		}
	}
}

func TestIntervalOf(t *testing.T) {
	h := mustHierarchy(t, 2, 4)
	r, lo, hi := h.IntervalOf(1, 13)
	if r != 3 || lo != 12 || hi != 15 {
		t.Errorf("IntervalOf(1,13) = %d [%d,%d], want 3 [12,15]", r, lo, hi)
	}
	r, lo, hi = h.IntervalOf(3, 5)
	if r != 0 || lo != 0 || hi != 15 {
		t.Errorf("IntervalOf(3,5) = %d [%d,%d], want 0 [0,15]", r, lo, hi)
	}
}

// Property: segments are contiguous, start at i, end at w, and have
// strictly decreasing levels; each segment stays inside one interval of
// its level; each intermediate endpoint is the left endpoint of its
// next-level interval.
func TestQuickSegmentsWellFormed(t *testing.T) {
	hs := []*Hierarchy{
		mustHierarchy(t, 2, 4),
		mustHierarchy(t, 3, 3),
		mustHierarchy(t, 4, 2),
		mustHierarchy(t, 5, 2),
	}
	f := func(hIdx uint8, iRaw, wRaw uint16) bool {
		h := hs[int(hIdx)%len(hs)]
		i := int(iRaw) % h.N()
		w := int(wRaw) % h.N()
		if i == w {
			return true
		}
		if i > w {
			i, w = w, i
		}
		segs := h.Segments(i, w)
		if len(segs) == 0 || segs[0].From != i || segs[len(segs)-1].To != w {
			return false
		}
		prevLevel := h.Levels()
		for si, s := range segs {
			if s.Level >= prevLevel || s.From >= s.To {
				return false
			}
			prevLevel = s.Level
			if si > 0 && segs[si-1].To != s.From {
				return false
			}
			// Segment inside one level-s.Level interval.
			rf, _, _ := h.IntervalOf(s.Level, s.From)
			rt, _, _ := h.IntervalOf(s.Level, s.To)
			if rf != rt {
				return false
			}
			// Non-initial segment start is a left endpoint at its level.
			if si > 0 && s.From%h.Pow(s.Level) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: x(i,w) > i and x(i,w) ≤ w, and lv strictly decreases after
// moving to the intermediate destination.
func TestQuickIntermediateDestProgress(t *testing.T) {
	h := mustHierarchy(t, 3, 3)
	f := func(iRaw, wRaw uint16) bool {
		i := int(iRaw) % h.N()
		w := int(wRaw) % h.N()
		if i >= w {
			return true
		}
		x := h.IntermediateDest(i, w)
		if x <= i || x > w {
			return false
		}
		if x == w {
			return true
		}
		return h.Level(x, w) < h.Level(i, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyValidate(t *testing.T) {
	h := mustHierarchy(t, 2, 3)
	if err := h.Validate(network.MustPath(8)); err != nil {
		t.Errorf("Validate(path 8): %v", err)
	}
	if err := h.Validate(network.MustPath(9)); err == nil {
		t.Error("Validate accepted wrong size")
	}
	tree, err := network.CaterpillarTree(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(tree); err == nil {
		t.Error("Validate accepted a tree")
	}
}

func TestHPTSSpaceBound(t *testing.T) {
	h := mustHierarchy(t, 2, 4)
	if got := HPTSSpaceBound(h, 3); got != 4*2+3+1 {
		t.Errorf("HPTSSpaceBound = %d, want 12", got)
	}
}
