package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
)

func fullBound(sigma int) adversary.Bound {
	return adversary.Bound{Rho: rat.One, Sigma: sigma}
}

// fakeView is a synthetic configuration for white-box tests of the
// activation scans, bypassing the engine.
type fakeView struct {
	nw    *network.Network
	round int
	pkts  [][]packet.Packet
}

var _ sim.View = (*fakeView)(nil)

func (f *fakeView) Round() int                               { return f.round }
func (f *fakeView) Net() *network.Network                    { return f.nw }
func (f *fakeView) Packets(v network.NodeID) []packet.Packet { return f.pkts[v] }
func (f *fakeView) Load(v network.NodeID) int                { return len(f.pkts[v]) }
func (f *fakeView) Bandwidth(v network.NodeID) int           { return f.nw.Bandwidth(v) }

// randomConfig populates a fake view with random packets on a path,
// destinations strictly beyond their node.
func randomConfig(nw *network.Network, rng *rand.Rand, maxPerNode int) *fakeView {
	n := nw.Len()
	f := &fakeView{nw: nw, pkts: make([][]packet.Packet, n)}
	id := packet.ID(1)
	for v := 0; v < n-1; v++ {
		k := rng.Intn(maxPerNode + 1)
		for i := 0; i < k; i++ {
			dst := network.NodeID(v + 1 + rng.Intn(n-1-v))
			f.pkts[v] = append(f.pkts[v], packet.Packet{ID: id, Src: network.NodeID(v), Dst: dst})
			id++
		}
	}
	return f
}

// applyForwards simulates one simultaneous forwarding step on the fake
// view, returning the next configuration (delivered packets vanish).
func applyForwards(f *fakeView, decisions []sim.Forward) *fakeView {
	next := &fakeView{nw: f.nw, round: f.round + 1, pkts: make([][]packet.Packet, len(f.pkts))}
	moved := make(map[packet.ID]network.NodeID, len(decisions))
	for _, d := range decisions {
		moved[d.Pkt] = d.From
	}
	var arrivals []packet.Packet
	for v := range f.pkts {
		for _, p := range f.pkts[v] {
			if from, ok := moved[p.ID]; ok && from == network.NodeID(v) {
				if f.nw.Next(from) != p.Dst {
					arrivals = append(arrivals, p) // in transit; placed below
				}
				continue // delivered packets vanish
			}
			next.pkts[v] = append(next.pkts[v], p)
		}
	}
	// Place arrivals after survivors (they are the newest — LIFO order).
	for _, p := range arrivals {
		to := f.nw.Next(moved[p.ID])
		next.pkts[to] = append(next.pkts[to], p)
	}
	return next
}

// TestQuickPPTSScanFeasible is Lemma B.1 as a property: on random
// configurations, the Algorithm 2 sweep activates at most one pseudo-buffer
// per node.
func TestQuickPPTSScanFeasible(t *testing.T) {
	nw := network.MustPath(12)
	p := NewPPTS()
	if err := p.Attach(nw, fullBound(2), nil); err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		view := randomConfig(nw, rng, 4)
		decisions, err := p.Decide(view)
		if err != nil {
			return false
		}
		seen := make(map[network.NodeID]bool)
		for _, d := range decisions {
			if seen[d.From] {
				return false
			}
			seen[d.From] = true
			// The forwarded packet must exist at the node.
			found := false
			for _, pk := range view.pkts[d.From] {
				if pk.ID == d.Pkt {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickPPTSForwardingReducesBadness is the heart of Proposition 3.2
// (via Lemma 3.4) as a property: applying one PPTS forwarding step to a
// random configuration never increases any buffer's badness, and strictly
// decreases it wherever it was positive.
func TestQuickPPTSForwardingReducesBadness(t *testing.T) {
	nw := network.MustPath(10)
	p := NewPPTS()
	if err := p.Attach(nw, fullBound(2), nil); err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		view := randomConfig(nw, rng, 3)
		before := make([]int, nw.Len())
		for v := 0; v < nw.Len(); v++ {
			before[v] = PathBadness(view, network.NodeID(v))
		}
		decisions, err := p.Decide(view)
		if err != nil {
			return false
		}
		after := applyForwards(view, decisions)
		for v := 0; v < nw.Len(); v++ {
			b := PathBadness(after, network.NodeID(v))
			if b > before[v] {
				return false // badness may never increase (Lemma 3.4)
			}
			if before[v] > 0 && b >= before[v] {
				return false // strict decrease where positive (Prop 3.2 proof)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickHPTSDecideFeasible: the HPTS activation (FormPaths +
// ActivatePreBad) is feasible on random configurations at every phase
// offset (Lemma 4.7).
func TestQuickHPTSDecideFeasible(t *testing.T) {
	h, err := NewHierarchy(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	nw := network.MustPath(h.N())
	p := NewHPTS(3)
	if err := p.Attach(nw, fullBound(2), nil); err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, roundRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		view := randomConfig(nw, rng, 3)
		view.round = int(roundRaw) % 6
		decisions, err := p.Decide(view)
		if err != nil {
			return false
		}
		seen := make(map[network.NodeID]bool)
		for _, d := range decisions {
			if seen[d.From] {
				return false
			}
			seen[d.From] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
