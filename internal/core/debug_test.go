package core

import (
	"context"
	"fmt"
	"testing"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
)

// dumpObserver prints configurations around a target round window with
// pseudo-buffer classes annotated. It is a debugging aid kept for future
// investigation of invariant failures; enable by setting from ≤ to.
type dumpObserver struct {
	sim.NopObserver
	t    *testing.T
	h    *Hierarchy
	from int
	to   int
}

func (d *dumpObserver) OnRoundEnd(round int, v sim.View) {
	if round < d.from || round > d.to {
		return
	}
	line := fmt.Sprintf("t=%3d |", round)
	for i := 0; i < v.Net().Len(); i++ {
		line += fmt.Sprintf(" %d:[", i)
		for _, pk := range v.Packets(network.NodeID(i)) {
			j, k := d.h.Class(i, int(pk.Dst))
			line += fmt.Sprintf("#%d→%d(%d,%d) ", pk.ID, pk.Dst, j, k)
		}
		line += "]"
	}
	d.t.Log(line)
}

// TestHPTSLevelScheduleRegression pins the scenario that exposed the level
// scheduling subtlety: on m=3, ℓ=2 with mixed destinations, a packet
// completing its level-1 segment in the last round of a phase lands on an
// occupied level-0 pseudo-buffer. With levels served in increasing order
// the resulting badness survives the phase and violates Lemma 4.8; with the
// paper's decreasing order (implemented) the invariant holds.
func TestHPTSLevelScheduleRegression(t *testing.T) {
	h, err := NewHierarchy(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := h.N()
	nw := network.MustPath(n)
	rho := rat.New(1, 2)
	bound := adversary.Bound{Rho: rho, Sigma: 2}
	var dests []network.NodeID
	for v := 1; v < n; v += (n / 4) {
		dests = append(dests, network.NodeID(v))
	}
	dests = append(dests, network.NodeID(n-1))
	adv, err := adversary.NewRandom(nw, bound, dests, 11)
	if err != nil {
		t.Fatal(err)
	}
	check := NewHPTSBoundCheck(nw, h, rho)
	_, err = sim.Run(context.Background(), sim.NewSpec(nw, NewHPTS(2), adv, 2000,
		sim.WithObservers(check.Observer()),
		sim.WithInvariants(check.Invariant(), MaxLoadInvariant(nw, HPTSSpaceBound(h, 2)))))
	if err != nil {
		t.Fatalf("phase invariant violated: %v", err)
	}
}
