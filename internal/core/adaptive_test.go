package core

import (
	"context"
	"fmt"
	"testing"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
)

// The theorems quantify over every (ρ,σ)-bounded pattern, so they must in
// particular survive an adaptive adversary that aims all admissible traffic
// at the fullest buffer each round. These runs also carry the conservation
// checker, covering the engine's bookkeeping under adversarial pressure.

func TestPPTSBoundAgainstAdaptiveHotSpot(t *testing.T) {
	nw := network.MustPath(24)
	dests := []network.NodeID{12, 17, 21, 23}
	for _, sigma := range []int{0, 2, 4} {
		for seed := int64(0); seed < 3; seed++ {
			t.Run(fmt.Sprintf("sigma=%d_seed=%d", sigma, seed), func(t *testing.T) {
				bound := adversary.Bound{Rho: rat.One, Sigma: sigma}
				adv, err := adversary.NewHotSpot(nw, bound, dests, seed)
				if err != nil {
					t.Fatal(err)
				}
				limit := 1 + len(dests) + sigma
				cons := sim.NewConservationCheck()
				check := NewPathBoundCheck(nw, rat.One)
				res, err := sim.Run(context.Background(), sim.NewSpec(nw, NewPPTS(), adv, 500,
					sim.WithVerifyAdversary(),
					sim.WithObservers(cons, check.Observer()),
					sim.WithInvariants(MaxLoadInvariant(nw, limit), check.Invariant())))
				if err != nil {
					t.Fatal(err)
				}
				if cons.Err != nil {
					t.Error(cons.Err)
				}
				if res.MaxLoad > limit {
					t.Errorf("MaxLoad = %d > %d", res.MaxLoad, limit)
				}
			})
		}
	}
}

func TestPTSBoundAgainstAdaptiveHotSpot(t *testing.T) {
	nw := network.MustPath(32)
	bound := adversary.Bound{Rho: rat.One, Sigma: 3}
	adv, err := adversary.NewHotSpot(nw, bound, []network.NodeID{31}, 9)
	if err != nil {
		t.Fatal(err)
	}
	cons := sim.NewConservationCheck()
	res, err := sim.Run(context.Background(), sim.NewSpec(nw, NewPTS(), adv, 600,
		sim.WithVerifyAdversary(),
		sim.WithObservers(cons)))
	if err != nil {
		t.Fatal(err)
	}
	if cons.Err != nil {
		t.Error(cons.Err)
	}
	if res.MaxLoad > 2+3 {
		t.Errorf("MaxLoad = %d > 5", res.MaxLoad)
	}
}

func TestHPTSBoundAgainstAdaptiveHotSpot(t *testing.T) {
	h, err := NewHierarchy(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	nw := network.MustPath(h.N())
	rho := rat.New(1, 2)
	bound := adversary.Bound{Rho: rho, Sigma: 2}
	dests := []network.NodeID{5, 9, 13, 15}
	adv, err := adversary.NewHotSpot(nw, bound, dests, 3)
	if err != nil {
		t.Fatal(err)
	}
	check := NewHPTSBoundCheck(nw, h, rho)
	cons := sim.NewConservationCheck()
	limit := HPTSSpaceBound(h, 2)
	res, err := sim.Run(context.Background(), sim.NewSpec(nw, NewHPTS(2), adv, 2000,
		sim.WithVerifyAdversary(),
		sim.WithObservers(cons, check.Observer()),
		sim.WithInvariants(MaxLoadInvariant(nw, limit), check.Invariant())))
	if err != nil {
		t.Fatal(err)
	}
	if cons.Err != nil {
		t.Error(cons.Err)
	}
	if res.MaxLoad > limit {
		t.Errorf("MaxLoad = %d > %d", res.MaxLoad, limit)
	}
}

func TestTreePPTSBoundAgainstAdaptiveHotSpot(t *testing.T) {
	tree, err := network.CaterpillarTree(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	dests := []network.NodeID{4, 5, 6, 7}
	dprime := DestinationDepth(tree, dests)
	bound := adversary.Bound{Rho: rat.One, Sigma: 2}
	adv, err := adversary.NewHotSpot(tree, bound, dests, 5)
	if err != nil {
		t.Fatal(err)
	}
	cons := sim.NewConservationCheck()
	limit := 1 + dprime + 2
	res, err := sim.Run(context.Background(), sim.NewSpec(tree, NewTreePPTS(), adv, 500,
		sim.WithVerifyAdversary(),
		sim.WithObservers(cons)))
	if err != nil {
		t.Fatal(err)
	}
	if cons.Err != nil {
		t.Error(cons.Err)
	}
	if res.MaxLoad > limit {
		t.Errorf("MaxLoad = %d > 1+d′+σ = %d", res.MaxLoad, limit)
	}
}
