package core

import (
	"fmt"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/buffer"
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/sim"
)

// HPTS is Algorithm 3, "Hierarchical Peak-to-Sink" (§4), for a path of
// n = m^ℓ nodes and rates ρ·ℓ ≤ 1. The line is partitioned hierarchically
// (Hierarchy); each packet traverses segments of strictly decreasing level,
// and each buffer is split into ℓ·m pseudo-buffers indexed by (level,
// intermediate destination). The algorithm time-division multiplexes: at
// round t only level λ = t mod ℓ intervals run a PPTS-style activation
// (FormPaths, Algorithm 4), plus anticipatory activations at lower levels
// for packets about to switch level into an occupied pseudo-buffer
// (ActivatePreBad, Algorithm 5). Packets are accepted only at phase
// boundaries, i.e. the protocol plays against the ℓ-reduction of the
// adversary (Definition 2.4).
//
// Theorem 4.1: the maximum buffer occupancy is at most ℓ·n^(1/ℓ) + σ + 1.
//
// The theorem is stated for unit links. On capacitated links HPTS keeps
// its activation structure and lets each activated pseudo-buffer forward
// up to B(v) packets; B = 1 recovers the analyzed algorithm exactly, while
// B > 1 is a best-effort generalization (the phase-badness invariant of
// Lemma 4.8 is only proven at B = 1).
type HPTS struct {
	ell          int
	ablatePreBad bool
	h            *Hierarchy
	nw           *network.Network
	// scratch, reused across rounds:
	actLevel []int // per node: activated level, −1 = inactive
	actK     []int // per node: activated destination index
}

var _ sim.Protocol = (*HPTS)(nil)
var _ sim.PhasedAcceptor = (*HPTS)(nil)

// HPTSOption configures HPTS.
type HPTSOption func(*HPTS)

// HPTSAblatePreBad disables the ActivatePreBad step (Algorithm 5). This is
// an ablation knob for experiments: without it, packets completing a
// segment can stack onto occupied lower-level pseudo-buffers and the phase
// badness invariant of Lemma 4.8 no longer holds.
func HPTSAblatePreBad() HPTSOption {
	return func(p *HPTS) { p.ablatePreBad = true }
}

// NewHPTS returns an HPTS instance with ℓ hierarchy levels. The attached
// network must be a path of exactly m^ℓ nodes for some integer m ≥ 2.
// With ℓ = 1, HPTS degenerates to PPTS over all potential destinations.
func NewHPTS(ell int, opts ...HPTSOption) *HPTS {
	p := &HPTS{ell: ell}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name implements sim.Protocol.
func (p *HPTS) Name() string {
	if p.ablatePreBad {
		return fmt.Sprintf("HPTS(ℓ=%d,no-prebad)", p.ell)
	}
	return fmt.Sprintf("HPTS(ℓ=%d)", p.ell)
}

// PhaseLength implements sim.PhasedAcceptor: injections are accepted every
// ℓ rounds (the ℓ-reduction).
func (p *HPTS) PhaseLength() int { return p.ell }

// Hierarchy returns the attached hierarchy (nil before Attach).
func (p *HPTS) Hierarchy() *Hierarchy { return p.h }

// Attach implements sim.Protocol.
func (p *HPTS) Attach(nw *network.Network, bound adversary.Bound, _ []network.NodeID) error {
	h, err := HierarchyFor(nw.Len(), p.ell)
	if err != nil {
		return err
	}
	if err := h.Validate(nw); err != nil {
		return err
	}
	p.h = h
	p.nw = nw
	p.actLevel = make([]int, nw.Len())
	p.actK = make([]int, nw.Len())
	// ρ·ℓ ≤ 1 is the premise of Theorem 4.1; running outside it is allowed
	// (the bound simply may not hold), so no error here.
	_ = bound
	return nil
}

// hptsView resolves pseudo-buffers lazily from the engine view.
type hptsView struct {
	v sim.View
	h *Hierarchy
}

// pseudo returns L_{j,k}(i): packets at node i whose segment level is j and
// whose level-j intermediate destination has index k, in arrival order.
func (hv hptsView) pseudo(i, j, k int) []packet.Packet {
	var out []packet.Packet
	for _, pk := range hv.v.Packets(network.NodeID(i)) {
		lvl, kk := hv.h.Class(i, int(pk.Dst))
		if lvl == j && kk == k {
			out = append(out, pk)
		}
	}
	return out
}

// Decide implements sim.Protocol (Algorithm 3's forwarding step).
//
// Within a phase the levels run in decreasing order: the first round after
// acceptance serves level ℓ−1 and the last round serves level 0. Lemma 4.8's
// proof depends on this ("levels are activated in decreasing order over the
// course of a phase"): when forwarding replaces a bad packet at level λ with
// a bad packet at some level j < λ, the level-j round still lies ahead in
// the same phase and clears it, which is what makes the phase badness
// strictly decrease.
func (p *HPTS) Decide(v sim.View) ([]sim.Forward, error) {
	lambda := p.ell - 1 - v.Round()%p.ell
	hv := hptsView{v: v, h: p.h}
	for i := range p.actLevel {
		p.actLevel[i] = -1
	}
	// Lines 6–8: FormPaths on every level-λ interval.
	for r := 0; r < p.h.IntervalCount(lambda); r++ {
		p.formPaths(hv, lambda, r)
	}
	// Lines 9–11: anticipatory activation at lower levels.
	if !p.ablatePreBad {
		for j := lambda - 1; j >= 0; j-- {
			p.activatePreBad(hv, j)
		}
	}
	// Line 12: every non-empty activated pseudo-buffer forwards. On
	// capacitated links rates follow the cascaded-rate discipline, computed
	// right to left: node i sends min(B(i), max(1, sent(i+1))), and the full
	// B(i) only when i+1 is the pseudo-buffer's own intermediate destination
	// (where its packets leave this pseudo-buffer system). B = 1 is the
	// paper's one-packet rule exactly; B > 1 is best-effort (see type doc).
	var out []sim.Forward
	sent := make([]int, p.h.N()+1)
	for i := p.h.N() - 1; i >= 0; i-- {
		if p.actLevel[i] < 0 {
			continue
		}
		j, k := p.actLevel[i], p.actK[i]
		ps := hv.pseudo(i, j, k)
		limit := v.Bandwidth(network.NodeID(i))
		ri, _, _ := p.h.IntervalOf(j, i)
		if wk := p.h.IntermediateDests(j, ri)[k]; i+1 != wk {
			limit = min(limit, max(1, sent[i+1]))
		}
		n0 := len(out)
		out = appendLIFOTop(out, network.NodeID(i), ps, limit)
		sent[i] = len(out) - n0
	}
	return out, nil
}

// formPaths is Algorithm 4 on interval I_{λ,r}: a PPTS sweep over the
// interval's m intermediate destinations.
func (p *HPTS) formPaths(hv hptsView, lambda, r int) {
	lo, _ := p.h.Interval(lambda, r)
	dests := p.h.IntermediateDests(lambda, r)
	m := p.h.M()
	frontier := dests[m-1] // Algorithm 4 line 2: i′ ← w_{m−1}
	for k := m - 1; k >= 0; k-- {
		wk := dests[k]
		// Left-most bad (λ,k)-pseudo-buffer strictly left of the frontier.
		ik := -1
		for i := lo; i < frontier; i++ {
			if len(hv.pseudo(i, lambda, k)) >= 2 {
				ik = i
				break
			}
		}
		if ik < 0 {
			continue
		}
		hi := frontier - 1
		if wk-1 < hi {
			hi = wk - 1
		}
		for i := ik; i <= hi; i++ {
			p.actLevel[i] = lambda
			p.actK[i] = k
		}
		frontier = ik
	}
}

// activatePreBad is Algorithm 5 at level j: for each level-j interval whose
// left endpoint a is about to receive a packet P that completes its segment
// at a, re-enters at level j, and would land on an occupied pseudo-buffer
// (Definition 4.6), activate the chain of (j, k)-pseudo-buffers from a up
// to P's level-j intermediate destination or the first active node.
func (p *HPTS) activatePreBad(hv hptsView, j int) {
	for r := 0; r < p.h.IntervalCount(j); r++ {
		a, b := p.h.Interval(j, r)
		if a == 0 || p.actLevel[a] >= 0 {
			continue // no upstream neighbor, or a already active
		}
		// The unique active pseudo-buffer of node a−1, if any, sends its
		// LIFO top this round.
		if p.actLevel[a-1] < 0 {
			continue
		}
		ps := hv.pseudo(a-1, p.actLevel[a-1], p.actK[a-1])
		if len(ps) == 0 {
			continue
		}
		pkt := ps[len(ps)-1]
		w := int(pkt.Dst)
		if w == a {
			continue // delivered on arrival, cannot become bad
		}
		// P completes its current segment exactly at a?
		if p.h.IntermediateDest(a-1, w) != a {
			continue
		}
		// P's new level at a must be this j, and its new pseudo-buffer
		// occupied (pre-bad).
		jNew, kNew := p.h.Class(a, w)
		if jNew != j || len(hv.pseudo(a, jNew, kNew)) < 1 {
			continue
		}
		// Chain [a, wEnd]: maximal inactive prefix up to w_k − 1, where w_k
		// is the packet's level-j intermediate destination. The chain must
		// not claim w_k itself: its (j,k)-pseudo-buffer is empty (packets
		// switch level on arrival), and marking it active would block the
		// cascaded pre-bad activation of the next interval (the event-(a)
		// chain of Claim 2).
		wk := p.h.IntermediateDest(a, w)
		if wk-1 > b {
			wk = b + 1 // cannot happen (segment stays in the interval); guard anyway
		}
		wEnd := a - 1
		for i := a; i <= wk-1; i++ {
			if p.actLevel[i] >= 0 {
				break
			}
			wEnd = i
		}
		for i := a; i <= wEnd; i++ {
			p.actLevel[i] = j
			p.actK[i] = kNew
		}
	}
}

// HPTSClassifier returns a buffer.Classifier assigning packets at node i to
// their (level, destination-index) pseudo-buffer, for badness accounting.
func HPTSClassifier(h *Hierarchy, i network.NodeID) buffer.Classifier {
	return func(p packet.Packet) buffer.Class {
		j, k := h.Class(int(i), int(p.Dst))
		return buffer.Class{Major: j, Minor: k}
	}
}

// HPTSSpaceBound returns the Theorem 4.1 bound ℓ·n^(1/ℓ) + σ + 1 = ℓ·m+σ+1.
func HPTSSpaceBound(h *Hierarchy, sigma int) int {
	return h.Levels()*h.M() + sigma + 1
}
