// Package core implements the paper's forwarding algorithms: PTS
// (Algorithm 1), PPTS (Algorithm 2), their directed-tree generalizations
// (Appendix B.2), and the hierarchical HPTS (Algorithms 3–5), together with
// the badness accounting (Definitions 3.3, 4.4–4.6) used by their analyses
// and by this repository's invariant checks.
package core

import (
	"fmt"

	"smallbuffers/internal/network"
)

// Hierarchy is the base-m positional structure over the line ⟨n⟩ with
// n = m^ℓ (§4.1): digits, the level-j partitions I_j, segments, and
// intermediate destinations. Level j ∈ ⟨ℓ⟩ partitions the line into
// m^(ℓ−j−1) intervals of size m^(j+1) each; within a level-j interval the m
// left endpoints of its level-(j−1) subintervals serve as intermediate
// destinations.
type Hierarchy struct {
	m, ell, n int
	// pow[j] = m^j for j ∈ [0, ℓ].
	pow []int
}

// NewHierarchy returns the hierarchy with m ≥ 2 digits and ℓ ≥ 1 levels
// over n = m^ℓ nodes.
func NewHierarchy(m, ell int) (*Hierarchy, error) {
	if m < 2 {
		return nil, fmt.Errorf("core: hierarchy needs base m ≥ 2, got %d", m)
	}
	if ell < 1 {
		return nil, fmt.Errorf("core: hierarchy needs ℓ ≥ 1 levels, got %d", ell)
	}
	pow := make([]int, ell+1)
	pow[0] = 1
	for j := 1; j <= ell; j++ {
		if pow[j-1] > (1<<30)/m {
			return nil, fmt.Errorf("core: hierarchy m=%d ℓ=%d overflows", m, ell)
		}
		pow[j] = pow[j-1] * m
	}
	return &Hierarchy{m: m, ell: ell, n: pow[ell], pow: pow}, nil
}

// HierarchyFor factors n as m^ℓ for the given ℓ and returns the hierarchy,
// or an error if n is not a perfect ℓ-th power ≥ 2^ℓ.
func HierarchyFor(n, ell int) (*Hierarchy, error) {
	if ell < 1 {
		return nil, fmt.Errorf("core: ℓ must be ≥ 1, got %d", ell)
	}
	if ell == 1 {
		if n < 2 {
			return nil, fmt.Errorf("core: need n ≥ 2, got %d", n)
		}
		return NewHierarchy(n, 1)
	}
	// Integer ℓ-th root by search.
	for m := 2; ; m++ {
		p := 1
		over := false
		for j := 0; j < ell; j++ {
			if p > n/m {
				over = true
				break
			}
			p *= m
		}
		if over || p > n {
			return nil, fmt.Errorf("core: n=%d is not a perfect ℓ=%d power", n, ell)
		}
		if p == n {
			return NewHierarchy(m, ell)
		}
	}
}

// M returns the base (digit range).
func (h *Hierarchy) M() int { return h.m }

// Levels returns ℓ, the number of levels.
func (h *Hierarchy) Levels() int { return h.ell }

// N returns the number of nodes m^ℓ.
func (h *Hierarchy) N() int { return h.n }

// Pow returns m^j for 0 ≤ j ≤ ℓ.
func (h *Hierarchy) Pow(j int) int { return h.pow[j] }

// Digit returns the j-th base-m digit of i.
func (h *Hierarchy) Digit(i, j int) int { return (i / h.pow[j]) % h.m }

// Level returns lv(i, w): the largest digit position in which i and w
// differ (Definition 4.2). It requires 0 ≤ i < w < n.
func (h *Hierarchy) Level(i, w int) int {
	for j := h.ell - 1; j >= 0; j-- {
		if h.Digit(i, j) != h.Digit(w, j) {
			return j
		}
	}
	return -1 // i == w; callers guarantee i < w
}

// IntermediateDest returns x(i, w) = ⌊w/m^j⌋·m^j where j = lv(i, w): the
// next intermediate destination of a packet at i headed for w
// (Definition 4.2). It requires i < w.
func (h *Hierarchy) IntermediateDest(i, w int) int {
	j := h.Level(i, w)
	return (w / h.pow[j]) * h.pow[j]
}

// IntervalCount returns |I_j| = m^(ℓ−j−1), the number of level-j intervals.
func (h *Hierarchy) IntervalCount(j int) int { return h.pow[h.ell-j-1] }

// Interval returns the bounds [lo, hi] (inclusive) of I_{j,r}, the r-th
// level-j interval: lo = r·m^(j+1), size m^(j+1).
func (h *Hierarchy) Interval(j, r int) (lo, hi int) {
	size := h.pow[j+1]
	lo = r * size
	return lo, lo + size - 1
}

// IntervalOf returns the index r and bounds of the level-j interval
// containing node i.
func (h *Hierarchy) IntervalOf(j, i int) (r, lo, hi int) {
	size := h.pow[j+1]
	r = i / size
	lo = r * size
	return r, lo, lo + size - 1
}

// IntermediateDests returns the m intermediate destinations of I_{j,r}: the
// left endpoints of its level-(j−1) subintervals, in increasing order. For
// j = 0 these are the m individual nodes of the interval.
func (h *Hierarchy) IntermediateDests(j, r int) []int {
	lo, _ := h.Interval(j, r)
	out := make([]int, h.m)
	for c := 0; c < h.m; c++ {
		out[c] = lo + c*h.pow[j]
	}
	return out
}

// Class returns the pseudo-buffer class of a packet currently at node i
// with final destination w (Definition 4.3): Major = segment level
// lv(i, w), Minor = the index k of the packet's level-j intermediate
// destination among its interval's destinations, which equals the j-th
// digit of w. It requires i < w.
func (h *Hierarchy) Class(i, w int) (level, k int) {
	j := h.Level(i, w)
	return j, h.Digit(w, j)
}

// Segment is one leg of a packet's virtual trajectory (Figure 1): the route
// from From to To at the given Level, where To is an intermediate (or the
// final) destination.
type Segment struct {
	From, To int
	Level    int
}

// Segments returns the virtual trajectory of a packet injected at i with
// destination w: segments at strictly decreasing levels whose last To is w
// (§4.1). It requires 0 ≤ i < w < n.
func (h *Hierarchy) Segments(i, w int) []Segment {
	var out []Segment
	for cur := i; cur < w; {
		j := h.Level(cur, w)
		x := (w / h.pow[j]) * h.pow[j]
		out = append(out, Segment{From: cur, To: x, Level: j})
		cur = x
	}
	return out
}

// Validate checks that the hierarchy matches the network: a path of
// exactly n = m^ℓ nodes.
func (h *Hierarchy) Validate(nw *network.Network) error {
	if !nw.IsPath() {
		return fmt.Errorf("core: hierarchy requires a path topology")
	}
	if nw.Len() != h.n {
		return fmt.Errorf("core: hierarchy over %d nodes, network has %d", h.n, nw.Len())
	}
	return nil
}
