package core

import (
	"fmt"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
)

// This file implements the badness accounting used by the paper's analyses
// (Definitions 3.3, 4.5, B.4) and packages the resulting invariants as
// engine hooks: the analyses bound the badness of every buffer by its
// excess, so tracking both during a run turns each proposition into an
// executable assertion.

// PathBadness returns B^t(i) per Definition 3.3: the number of bad packets
// stored in buffers i' ≤ i whose destination lies strictly beyond i. A
// packet is bad when it sits at position ≥ 2 of its destination
// pseudo-buffer.
func PathBadness(v sim.View, i network.NodeID) int {
	total := 0
	for ip := network.NodeID(0); ip <= i; ip++ {
		perDest := make(map[network.NodeID]int)
		for _, pk := range v.Packets(ip) {
			if pk.Dst > i {
				perDest[pk.Dst]++
			}
		}
		for _, c := range perDest {
			if c >= 2 {
				total += c - 1
			}
		}
	}
	return total
}

// HPTSBadness returns B^t(i) per Definition 4.5: for each level j and
// destination index k, the bad packets in (j,k)-pseudo-buffers of buffers
// i' ≤ i inside i's level-j interval, summed over all (j,k). As in
// Definition 3.3 ("with destinations w > i"), only packets whose current
// segment crosses buffer i count — their level-j intermediate destination
// must lie strictly beyond i — since the comparison target ξ(i) counts
// exactly the packets needing i's outgoing link.
func HPTSBadness(h *Hierarchy, v sim.View, i network.NodeID) int {
	total := 0
	for j := 0; j < h.Levels(); j++ {
		_, lo, _ := h.IntervalOf(j, int(i))
		// β_{j,k}(i') accumulated per k over i' ∈ [lo, i].
		perK := make(map[int]int)
		for ip := lo; ip <= int(i); ip++ {
			counts := make(map[int]int)
			for _, pk := range v.Packets(network.NodeID(ip)) {
				lvl, k := h.Class(ip, int(pk.Dst))
				if lvl == j && h.IntermediateDest(ip, int(pk.Dst)) > int(i) {
					counts[k]++
				}
			}
			for k, c := range counts {
				if c >= 2 {
					perK[k] += c - 1
				}
			}
		}
		for _, c := range perK {
			total += c
		}
	}
	return total
}

// TreeBadness returns the tree analogue of Definition 3.3 (via B.4): the
// number of bad packets stored in the subtree of v whose destinations lie
// strictly beyond v (so their paths cross v's outgoing link).
func TreeBadness(nw *network.Network, v sim.View, node network.NodeID) int {
	total := 0
	for _, u := range nw.Subtree(node) {
		perDest := make(map[network.NodeID]int)
		for _, pk := range v.Packets(u) {
			// The packet crosses node's outgoing link iff its destination is
			// reachable from node and is not node itself.
			if pk.Dst != node && nw.Reaches(node, pk.Dst) {
				perDest[pk.Dst]++
			}
		}
		for _, c := range perDest {
			if c >= 2 {
				total += c - 1
			}
		}
	}
	return total
}

// BoundCheck couples an excess tracker with a badness functional, turning
// the analyses' central inequality B^{t+}(i) ≤ ξ^t(i) into an executable
// per-round invariant. Register Observer() on the engine (it feeds the
// tracker) and Invariant() as a sim.Invariant.
type BoundCheck struct {
	nw     *network.Network
	excess *adversary.Excess
	// badness(v, node) computes the protocol-specific badness of node.
	badness func(v sim.View, node network.NodeID) int
	// checkAt(round) limits checks (e.g. HPTS checks at phase ends only).
	checkAt func(round int) bool
	// phase > 1 switches the tracker to the reduced pattern: accepted
	// batches are absorbed once per phase instead of raw injections once
	// per round.
	phase int
}

// NewPathBoundCheck checks the PTS/PPTS invariant B^{t+}(i) ≤ ξ^t(i) on a
// path (the inductive hearts of Propositions 3.1 and 3.2) after every
// round.
func NewPathBoundCheck(nw *network.Network, rho rat.Rat) *BoundCheck {
	return &BoundCheck{
		nw:      nw,
		excess:  adversary.NewExcess(nw, rho),
		badness: func(v sim.View, node network.NodeID) int { return PathBadness(v, node) },
		checkAt: func(int) bool { return true },
		phase:   1,
	}
}

// NewTreeBoundCheck checks the tree variant (Propositions B.3 and 3.5).
func NewTreeBoundCheck(nw *network.Network, rho rat.Rat) *BoundCheck {
	return &BoundCheck{
		nw:      nw,
		excess:  adversary.NewExcess(nw, rho),
		badness: func(v sim.View, node network.NodeID) int { return TreeBadness(nw, v, node) },
		checkAt: func(int) bool { return true },
		phase:   1,
	}
}

// NewHPTSBoundCheck checks the HPTS phase invariant (Theorem 4.1 proof): at
// the end of each phase, B(i) ≤ ξ(i), where ξ is the excess of the
// ℓ-reduced adversary (rate ℓ·ρ, Lemma 2.5) fed by the accepted batches.
func NewHPTSBoundCheck(nw *network.Network, h *Hierarchy, rho rat.Rat) *BoundCheck {
	ell := h.Levels()
	return &BoundCheck{
		nw:      nw,
		excess:  adversary.NewExcess(nw, rho.MulInt(int64(ell))),
		badness: func(v sim.View, node network.NodeID) int { return HPTSBadness(h, v, node) },
		checkAt: func(round int) bool { return round%ell == ell-1 },
		phase:   ell,
	}
}

// boundCheckObserver feeds the excess tracker from engine events.
type boundCheckObserver struct {
	sim.NopObserver
	c       *BoundCheck
	pending []packet.Packet
}

func (o *boundCheckObserver) OnInject(round int, pkts []packet.Packet) {
	if o.c.phase == 1 {
		o.c.excess.Absorb(toInjections(pkts))
	}
}

func (o *boundCheckObserver) OnAccept(round int, pkts []packet.Packet) {
	if o.c.phase > 1 {
		o.pending = append(o.pending, pkts...)
	}
}

func (o *boundCheckObserver) OnRoundEnd(round int, _ sim.View) {
	// One reduced round per acceptance round, injections or not.
	if o.c.phase > 1 && round%o.c.phase == 0 {
		o.c.excess.Absorb(toInjections(o.pending))
		o.pending = o.pending[:0]
	}
}

func toInjections(pkts []packet.Packet) []packet.Injection {
	out := make([]packet.Injection, len(pkts))
	for i, p := range pkts {
		out[i] = packet.Injection{Src: p.Src, Dst: p.Dst}
	}
	return out
}

// Observer returns the engine observer feeding the tracker. Register it in
// the same Config as Invariant().
func (c *BoundCheck) Observer() sim.Observer {
	return &boundCheckObserver{c: c}
}

// Invariant returns the per-round check: at enabled rounds, for every
// buffer i, badness(i) ≤ ξ(i) (evaluated after the forwarding step).
func (c *BoundCheck) Invariant() sim.Invariant {
	return func(v sim.View) error {
		if !c.checkAt(v.Round()) {
			return nil
		}
		for i := 0; i < c.nw.Len(); i++ {
			node := network.NodeID(i)
			b := c.badness(v, node)
			if xi := c.excess.At(node); xi.Less(rat.FromInt(int64(b))) {
				return fmt.Errorf("core: badness %d > excess %v at buffer %d round %d", b, xi, node, v.Round())
			}
		}
		return nil
	}
}

// MaxLoadInvariant returns a sim.Invariant asserting every buffer holds at
// most `bound` packets, the executable form of the space theorems.
func MaxLoadInvariant(nw *network.Network, bound int) sim.Invariant {
	return func(v sim.View) error {
		for i := 0; i < nw.Len(); i++ {
			if load := v.Load(network.NodeID(i)); load > bound {
				return fmt.Errorf("core: load %d > bound %d at buffer %d round %d", load, bound, i, v.Round())
			}
		}
		return nil
	}
}
