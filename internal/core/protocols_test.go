package core

import (
	"context"
	"fmt"
	"testing"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
)

// runChecked executes one run through the context-aware engine with the
// given bound check wired in and asserts completion; it returns the
// result.
func runChecked(t *testing.T, check *BoundCheck, nw *network.Network, p sim.Protocol, adv adversary.Adversary, rounds int, opts ...sim.Option) sim.Result {
	t.Helper()
	if check != nil {
		opts = append(opts, sim.WithObservers(check.Observer()), sim.WithInvariants(check.Invariant()))
	}
	res, err := sim.Run(context.Background(), sim.NewSpec(nw, p, adv, rounds, opts...))
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return res
}

// --- PTS (Proposition 3.1) ---

func TestPTSAttachValidation(t *testing.T) {
	tree, err := network.CaterpillarTree(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewPTS().Attach(tree, adversary.Bound{}, nil); err == nil {
		t.Error("PTS attached to a tree")
	}
	nw := network.MustPath(8)
	if err := NewPTS().Attach(nw, adversary.Bound{}, []network.NodeID{3, 5}); err == nil {
		t.Error("PTS attached with two destinations")
	}
	if err := NewPTS().Attach(nw, adversary.Bound{}, []network.NodeID{5}); err != nil {
		t.Errorf("PTS single-destination attach failed: %v", err)
	}
}

func TestPTSBoundAgainstCraftedBurst(t *testing.T) {
	for _, tc := range []struct {
		n     int
		rho   rat.Rat
		sigma int
	}{
		{16, rat.One, 0},
		{16, rat.One, 2},
		{16, rat.One, 5},
		{32, rat.One, 3},
		{64, rat.One, 4},
		{16, rat.New(1, 2), 3},
		{32, rat.New(1, 4), 2},
	} {
		name := fmt.Sprintf("n=%d_rho=%v_sigma=%d", tc.n, tc.rho, tc.sigma)
		t.Run(name, func(t *testing.T) {
			nw := network.MustPath(tc.n)
			bound := adversary.Bound{Rho: tc.rho, Sigma: tc.sigma}
			adv, err := adversary.PTSBurst(nw, bound, 6*tc.n)
			if err != nil {
				t.Fatal(err)
			}
			check := NewPathBoundCheck(nw, tc.rho)
			res := runChecked(t, check, nw, NewPTS(), adv, 6*tc.n,
				sim.WithInvariants(MaxLoadInvariant(nw, 2+tc.sigma)))
			if res.MaxLoad > 2+tc.sigma {
				t.Errorf("MaxLoad = %d > 2+σ = %d", res.MaxLoad, 2+tc.sigma)
			}
			if res.MaxLoad < 1+tc.sigma {
				t.Logf("note: crafted burst reached only %d of bound %d", res.MaxLoad, 2+tc.sigma)
			}
		})
	}
}

func TestPTSBoundAgainstRandom(t *testing.T) {
	nw := network.MustPath(24)
	for _, sigma := range []int{0, 1, 4} {
		for seed := int64(0); seed < 3; seed++ {
			bound := adversary.Bound{Rho: rat.One, Sigma: sigma}
			adv, err := adversary.NewRandom(nw, bound, []network.NodeID{23}, seed)
			if err != nil {
				t.Fatal(err)
			}
			res := runChecked(t, NewPathBoundCheck(nw, rat.One), nw, NewPTS(), adv, 400,
				sim.WithInvariants(MaxLoadInvariant(nw, 2+sigma)))
			if res.MaxLoad > 2+sigma {
				t.Errorf("σ=%d seed=%d: MaxLoad = %d > %d", sigma, seed, res.MaxLoad, 2+sigma)
			}
		}
	}
}

func TestPTSDrainDeliversWhenIdle(t *testing.T) {
	nw := network.MustPath(8)
	// One packet, then silence: strict PTS never forwards it; drain does.
	bound := adversary.Bound{Rho: rat.One, Sigma: 0}
	strictAdv := adversary.NewSchedule().At(0, 0, 7).Build(bound)
	res, err := sim.Run(context.Background(), sim.NewSpec(nw, NewPTS(), strictAdv, 40))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 {
		t.Errorf("strict PTS delivered %d, want 0 (no bad buffer ever forms)", res.Delivered)
	}
	drainAdv := adversary.NewSchedule().At(0, 0, 7).Build(bound)
	res, err = sim.Run(context.Background(), sim.NewSpec(nw, NewPTS(WithDrain()), drainAdv, 40))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 {
		t.Errorf("PTS+drain delivered %d, want 1", res.Delivered)
	}
}

func TestPTSDrainPreservesBound(t *testing.T) {
	nw := network.MustPath(16)
	for _, sigma := range []int{0, 3} {
		bound := adversary.Bound{Rho: rat.One, Sigma: sigma}
		adv, err := adversary.PTSBurst(nw, bound, 100)
		if err != nil {
			t.Fatal(err)
		}
		runChecked(t, NewPathBoundCheck(nw, rat.One), nw, NewPTS(WithDrain()), adv, 100,
			sim.WithInvariants(MaxLoadInvariant(nw, 2+sigma)))
	}
}

// --- PPTS (Proposition 3.2) ---

func TestPPTSAttachValidation(t *testing.T) {
	tree, err := network.CaterpillarTree(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewPPTS().Attach(tree, adversary.Bound{}, nil); err == nil {
		t.Error("PPTS attached to a tree")
	}
}

func TestPPTSBoundAgainstCraftedBurst(t *testing.T) {
	for _, tc := range []struct {
		n, d  int
		sigma int
	}{
		{16, 1, 0},
		{16, 2, 1},
		{16, 4, 2},
		{32, 8, 2},
		{32, 16, 0},
		{64, 8, 4},
	} {
		name := fmt.Sprintf("n=%d_d=%d_sigma=%d", tc.n, tc.d, tc.sigma)
		t.Run(name, func(t *testing.T) {
			nw := network.MustPath(tc.n)
			bound := adversary.Bound{Rho: rat.One, Sigma: tc.sigma}
			adv, err := adversary.PPTSBurst(nw, bound, tc.d, 8*tc.n)
			if err != nil {
				t.Fatal(err)
			}
			res := runChecked(t, NewPathBoundCheck(nw, rat.One), nw, NewPPTS(), adv, 8*tc.n,
				sim.WithInvariants(MaxLoadInvariant(nw, 1+tc.d+tc.sigma)))
			if res.MaxLoad > 1+tc.d+tc.sigma {
				t.Errorf("MaxLoad = %d > 1+d+σ = %d", res.MaxLoad, 1+tc.d+tc.sigma)
			}
		})
	}
}

func TestPPTSBoundAgainstRandomMultiDest(t *testing.T) {
	nw := network.MustPath(20)
	dests := []network.NodeID{9, 13, 16, 19}
	d := len(dests)
	for _, sigma := range []int{0, 2} {
		for seed := int64(0); seed < 3; seed++ {
			bound := adversary.Bound{Rho: rat.One, Sigma: sigma}
			adv, err := adversary.NewRandom(nw, bound, dests, seed)
			if err != nil {
				t.Fatal(err)
			}
			res := runChecked(t, NewPathBoundCheck(nw, rat.One), nw, NewPPTS(), adv, 400,
				sim.WithInvariants(MaxLoadInvariant(nw, 1+d+sigma)))
			if res.MaxLoad > 1+d+sigma {
				t.Errorf("σ=%d seed=%d: MaxLoad = %d > %d", sigma, seed, res.MaxLoad, 1+d+sigma)
			}
		}
	}
}

func TestPPTSAgainstGreedyKiller(t *testing.T) {
	nw := network.MustPath(32)
	bound := adversary.Bound{Rho: rat.One, Sigma: 1}
	adv, err := adversary.GreedyKiller(nw, bound, 8, 600)
	if err != nil {
		t.Fatal(err)
	}
	res := runChecked(t, NewPathBoundCheck(nw, rat.One), nw, NewPPTS(), adv, 600,
		sim.WithInvariants(MaxLoadInvariant(nw, 1+8+1)))
	if res.MaxLoad > 10 {
		t.Errorf("MaxLoad = %d > 10", res.MaxLoad)
	}
}

func TestPPTSDrainDeliversAndKeepsBound(t *testing.T) {
	nw := network.MustPath(16)
	bound := adversary.Bound{Rho: rat.One, Sigma: 1}
	adv, err := adversary.PPTSBurst(nw, bound, 4, 200)
	if err != nil {
		t.Fatal(err)
	}
	res := runChecked(t, NewPathBoundCheck(nw, rat.One), nw, NewPPTS(PPTSWithDrain()), adv, 260,
		sim.WithInvariants(MaxLoadInvariant(nw, 1+4+1)))
	if res.Delivered == 0 {
		t.Error("PPTS+drain delivered nothing")
	}
	// With 60 idle rounds at the end, drain should clear nearly everything.
	if res.Residual > 6 {
		t.Errorf("Residual = %d after drain window", res.Residual)
	}
}

func TestPPTSReducesToPTSSingleDest(t *testing.T) {
	// With one destination, PPTS must obey the PTS bound 2 + σ.
	nw := network.MustPath(16)
	bound := adversary.Bound{Rho: rat.One, Sigma: 2}
	adv, err := adversary.PTSBurst(nw, bound, 150)
	if err != nil {
		t.Fatal(err)
	}
	res := runChecked(t, NewPathBoundCheck(nw, rat.One), nw, NewPPTS(), adv, 150,
		sim.WithInvariants(MaxLoadInvariant(nw, 2+2)))
	if res.MaxLoad > 4 {
		t.Errorf("MaxLoad = %d > 4", res.MaxLoad)
	}
}

// --- Trees (Propositions B.3, 3.5) ---

func TestTreePTSAttachValidation(t *testing.T) {
	forest, err := network.NewForest([]network.NodeID{1, network.None, 3, network.None})
	if err != nil {
		t.Fatal(err)
	}
	if err := NewTreePTS().Attach(forest, adversary.Bound{}, forest.Sinks()); err != nil {
		t.Errorf("TreePTS rejected a forest with root destinations: %v", err)
	}
	tree, err := network.CaterpillarTree(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewTreePTS().Attach(tree, adversary.Bound{}, []network.NodeID{0}); err == nil {
		t.Error("TreePTS accepted a non-root destination")
	}
}

// TestForestPTSBound: the union-of-trees case the paper's §1 highlights.
// Two disjoint in-trees share the engine; each component independently
// respects 2 + σ.
func TestForestPTSBound(t *testing.T) {
	// Component A: path 0→1→2 (root 2); component B: star 3,4→5 plus 6→5
	// (root 5).
	forest, err := network.NewForest([]network.NodeID{
		1, 2, network.None, 5, 5, network.None, 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	roots := forest.Sinks()
	if len(roots) != 2 {
		t.Fatalf("roots = %v", roots)
	}
	const sigma = 2
	bound := adversary.Bound{Rho: rat.One, Sigma: sigma}
	// Inject to both roots from both components.
	s := adversary.NewSchedule()
	leavesB := []network.NodeID{3, 4, 6}
	for r := 0; r < 60; r++ {
		s.At(r, 0, 2)
		s.At(r, leavesB[r%3], 5)
	}
	// Burst on top of the steady packet: together they use the full ρ+σ
	// budget of buffer 0 in round 30.
	s.AtN(30, sigma, 0, 2)
	adv, err := s.BuildVerified(forest, bound, 120)
	if err != nil {
		t.Fatal(err)
	}
	cons := sim.NewConservationCheck()
	res, err := sim.Run(context.Background(), sim.NewSpec(forest, NewTreePTS(), adv, 120,
		sim.WithObservers(cons),
		sim.WithInvariants(MaxLoadInvariant(forest, 2+sigma))))
	if err != nil {
		t.Fatal(err)
	}
	if cons.Err != nil {
		t.Error(cons.Err)
	}
	if res.MaxLoad > 2+sigma {
		t.Errorf("MaxLoad = %d > %d", res.MaxLoad, 2+sigma)
	}
}

// TestForestPPTSBound: TreePPTS on a forest with per-component destination
// chains.
func TestForestPPTSBound(t *testing.T) {
	// Two disjoint paths as trees: 0→1→2→3 and 4→5→6→7.
	forest, err := network.NewForest([]network.NodeID{
		1, 2, 3, network.None, 5, 6, 7, network.None,
	})
	if err != nil {
		t.Fatal(err)
	}
	dests := []network.NodeID{2, 3, 6, 7}
	dprime := DestinationDepth(forest, dests)
	if dprime != 2 {
		t.Fatalf("d′ = %d, want 2 (per-component chains)", dprime)
	}
	const sigma = 1
	bound := adversary.Bound{Rho: rat.One, Sigma: sigma}
	adv, err := adversary.NewRandom(forest, bound, dests, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), sim.NewSpec(forest, NewTreePPTS(), adv, 300, sim.WithInvariants(MaxLoadInvariant(forest, 1+dprime+sigma))))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLoad > 1+dprime+sigma {
		t.Errorf("MaxLoad = %d > 1+d′+σ = %d", res.MaxLoad, 1+dprime+sigma)
	}
}

func TestTreePTSBound(t *testing.T) {
	shapes := map[string]*network.Network{}
	if tr, err := network.CaterpillarTree(6, 2); err == nil {
		shapes["caterpillar"] = tr
	}
	if tr, err := network.BinaryTree(3); err == nil {
		shapes["binary"] = tr
	}
	if tr, err := network.SpiderTree(4, 3); err == nil {
		shapes["spider"] = tr
	}
	for name, tree := range shapes {
		for _, sigma := range []int{0, 2, 4} {
			t.Run(fmt.Sprintf("%s_sigma=%d", name, sigma), func(t *testing.T) {
				bound := adversary.Bound{Rho: rat.One, Sigma: sigma}
				adv, err := adversary.TreeBurst(tree, bound, nil, 200)
				if err != nil {
					t.Fatal(err)
				}
				res := runChecked(t, NewTreeBoundCheck(tree, rat.One), tree, NewTreePTS(), adv, 200,
					sim.WithInvariants(MaxLoadInvariant(tree, 2+sigma)))
				if res.MaxLoad > 2+sigma {
					t.Errorf("MaxLoad = %d > 2+σ = %d", res.MaxLoad, 2+sigma)
				}
			})
		}
	}
}

func TestTreePTSRandomAdversary(t *testing.T) {
	tree, err := network.BinaryTree(4)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 3; seed++ {
		bound := adversary.Bound{Rho: rat.One, Sigma: 2}
		adv, err := adversary.NewRandom(tree, bound, nil, seed) // sinks only
		if err != nil {
			t.Fatal(err)
		}
		runChecked(t, NewTreeBoundCheck(tree, rat.One), tree, NewTreePTS(), adv, 300,
			sim.WithInvariants(MaxLoadInvariant(tree, 2+2)))
	}
}

func TestTreePTSDrainDelivers(t *testing.T) {
	tree, err := network.SpiderTree(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Sinks()[0]
	bound := adversary.Bound{Rho: rat.One, Sigma: 0}
	adv := adversary.NewSchedule().At(0, 0, root).At(1, 3, root).Build(bound)
	res, err := sim.Run(context.Background(), sim.NewSpec(tree, NewTreePTS(TreePTSWithDrain()), adv, 30))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 2 {
		t.Errorf("Delivered = %d, want 2", res.Delivered)
	}
}

func TestTreePPTSBound(t *testing.T) {
	tree, err := network.SpiderTree(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Sinks()[0]
	// Destinations along arm 0 plus the root: a chain, so d′ = 4.
	dests := []network.NodeID{2, 3, 4, root}
	dprime := DestinationDepth(tree, dests)
	if dprime != 4 {
		t.Fatalf("d′ = %d, want 4", dprime)
	}
	for _, sigma := range []int{0, 2} {
		bound := adversary.Bound{Rho: rat.One, Sigma: sigma}
		adv, err := adversary.TreeBurst(tree, bound, dests, 300)
		if err != nil {
			t.Fatal(err)
		}
		res := runChecked(t, NewTreeBoundCheck(tree, rat.One), tree, NewTreePPTS(), adv, 300,
			sim.WithInvariants(MaxLoadInvariant(tree, 1+dprime+sigma)))
		if res.MaxLoad > 1+dprime+sigma {
			t.Errorf("σ=%d: MaxLoad = %d > 1+d′+σ = %d", sigma, res.MaxLoad, 1+dprime+sigma)
		}
	}
}

func TestTreePPTSRandomMultiDest(t *testing.T) {
	tree, err := network.CaterpillarTree(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Destinations: spine nodes 3..7 (a chain): d′ = 5.
	dests := []network.NodeID{3, 4, 5, 6, 7}
	dprime := DestinationDepth(tree, dests)
	for seed := int64(0); seed < 3; seed++ {
		bound := adversary.Bound{Rho: rat.One, Sigma: 1}
		adv, err := adversary.NewRandom(tree, bound, dests, seed)
		if err != nil {
			t.Fatal(err)
		}
		runChecked(t, NewTreeBoundCheck(tree, rat.One), tree, NewTreePPTS(), adv, 400,
			sim.WithInvariants(MaxLoadInvariant(tree, 1+dprime+1)))
	}
}

func TestDestinationDepth(t *testing.T) {
	tree, err := network.SpiderTree(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Sinks()[0]
	if got := DestinationDepth(tree, []network.NodeID{root}); got != 1 {
		t.Errorf("d′(root) = %d, want 1", got)
	}
	// Destinations on different arms are not on a common leaf-root path.
	if got := DestinationDepth(tree, []network.NodeID{1, 4}); got != 1 {
		t.Errorf("d′(two arms) = %d, want 1", got)
	}
	if got := DestinationDepth(tree, []network.NodeID{0, 1, 2, root}); got != 4 {
		t.Errorf("d′(chain) = %d, want 4", got)
	}
}

// --- HPTS (Theorem 4.1) ---

func TestHPTSAttachValidation(t *testing.T) {
	if err := NewHPTS(2).Attach(network.MustPath(10), adversary.Bound{}, nil); err == nil {
		t.Error("HPTS(2) attached to non-square path")
	}
	if err := NewHPTS(3).Attach(network.MustPath(8), adversary.Bound{}, nil); err != nil {
		t.Errorf("HPTS(3) on 8 nodes: %v", err)
	}
	tree, err := network.CaterpillarTree(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewHPTS(2).Attach(tree, adversary.Bound{}, nil); err == nil {
		t.Error("HPTS attached to a tree")
	}
}

func TestHPTSPhaseLength(t *testing.T) {
	if got := NewHPTS(3).PhaseLength(); got != 3 {
		t.Errorf("PhaseLength = %d, want 3", got)
	}
}

func TestHPTSBoundTheorem41(t *testing.T) {
	cases := []struct {
		m, ell int
	}{
		{2, 2}, {2, 3}, {2, 4}, {3, 2}, {4, 2}, {3, 3},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("m=%d_ell=%d", tc.m, tc.ell), func(t *testing.T) {
			h, err := NewHierarchy(tc.m, tc.ell)
			if err != nil {
				t.Fatal(err)
			}
			n := h.N()
			nw := network.MustPath(n)
			for _, sigma := range []int{0, 2} {
				rho := rat.New(1, int64(tc.ell))
				bound := adversary.Bound{Rho: rho, Sigma: sigma}
				// Destinations spread over the line to exercise all levels.
				var dests []network.NodeID
				for v := 1; v < n; v += (n / 4) {
					dests = append(dests, network.NodeID(v))
				}
				dests = append(dests, network.NodeID(n-1))
				adv, err := adversary.NewRandom(nw, bound, dests, 11)
				if err != nil {
					t.Fatal(err)
				}
				proto := NewHPTS(tc.ell)
				spaceBound := tc.ell*tc.m + sigma + 1
				check := NewHPTSBoundCheck(nw, h, rho)
				res := runChecked(t, check, nw, proto, adv, 40*tc.ell*n,
					sim.WithInvariants(MaxLoadInvariant(nw, spaceBound)))
				if res.MaxLoad > spaceBound {
					t.Errorf("σ=%d: MaxLoad = %d > ℓm+σ+1 = %d", sigma, res.MaxLoad, spaceBound)
				}
			}
		})
	}
}

func TestHPTSEllOneDegeneratesToPPTS(t *testing.T) {
	// ℓ = 1: HPTS over m = n potential destinations; bound n + σ + 1 holds,
	// and the tighter PPTS bound 1 + d + σ should hold too for d actual
	// destinations.
	nw := network.MustPath(8)
	bound := adversary.Bound{Rho: rat.One, Sigma: 1}
	adv, err := adversary.PPTSBurst(nw, bound, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	res := runChecked(t, nil, nw, NewHPTS(1), adv, 100,
		sim.WithInvariants(MaxLoadInvariant(nw, 1+3+1)))
	if res.MaxLoad > 5 {
		t.Errorf("MaxLoad = %d > 5", res.MaxLoad)
	}
}

func TestHPTSStreamWorkload(t *testing.T) {
	// A single long-haul stream at rate 1/ℓ through all levels.
	h, err := NewHierarchy(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	nw := network.MustPath(h.N())
	rho := rat.New(1, 3)
	adv := adversary.NewStream(adversary.Bound{Rho: rho, Sigma: 1}, 0, network.NodeID(h.N()-1))
	spaceBound := HPTSSpaceBound(h, 1)
	res := runChecked(t, NewHPTSBoundCheck(nw, h, rho), nw, NewHPTS(3), adv, 600,
		sim.WithInvariants(MaxLoadInvariant(nw, spaceBound)))
	if res.Delivered == 0 {
		t.Error("HPTS delivered nothing on a steady stream")
	}
}

func TestHPTSAblationRunsFeasibly(t *testing.T) {
	// Without ActivatePreBad the protocol must still produce feasible
	// decisions (Lemma 4.7 holds for FormPaths alone); the invariant of
	// Lemma 4.8 is what breaks, which E8 measures.
	h, err := NewHierarchy(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	nw := network.MustPath(h.N())
	rho := rat.New(1, 3)
	adv, err := adversary.NewRandom(nw, adversary.Bound{Rho: rho, Sigma: 2}, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), sim.NewSpec(nw, NewHPTS(3, HPTSAblatePreBad()), adv, 500))
	if err != nil {
		t.Fatalf("ablated HPTS run failed: %v", err)
	}
	if res.Injected == 0 {
		t.Error("no traffic")
	}
}

func TestHPTSNames(t *testing.T) {
	if got := NewHPTS(2).Name(); got != "HPTS(ℓ=2)" {
		t.Errorf("Name = %q", got)
	}
	if got := NewHPTS(2, HPTSAblatePreBad()).Name(); got != "HPTS(ℓ=2,no-prebad)" {
		t.Errorf("Name = %q", got)
	}
	if got := NewPTS().Name(); got != "PTS" {
		t.Errorf("Name = %q", got)
	}
	if got := NewPTS(WithDrain()).Name(); got != "PTS+drain" {
		t.Errorf("Name = %q", got)
	}
	if got := NewPPTS().Name(); got != "PPTS" {
		t.Errorf("Name = %q", got)
	}
	if got := NewPPTS(PPTSWithDrain()).Name(); got != "PPTS+drain" {
		t.Errorf("Name = %q", got)
	}
	if got := NewTreePTS().Name(); got != "TreePTS" {
		t.Errorf("Name = %q", got)
	}
	if got := NewTreePPTS().Name(); got != "TreePPTS" {
		t.Errorf("Name = %q", got)
	}
}
