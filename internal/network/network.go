// Package network provides the topology substrate for adversarial-queuing
// simulations: directed in-forests, in which every node has at most one
// outgoing edge ("next hop"). Both topologies studied in the paper — the
// directed path (§2) and directed trees with all edges oriented toward the
// root (§3.3, Appendix B.2) — are in-forests, and the one-outgoing-edge
// property is what makes a forwarding round expressible as "each node
// forwards at most one packet", matching the unit link capacity of the model.
package network

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. Nodes of an n-node network are 0..n-1, matching
// the paper's ⟨n⟩ = {0, …, n−1} convention. For paths, the ID is the
// position on the line.
type NodeID int

// None is the sentinel "no node" value (e.g. the next hop of a sink).
const None NodeID = -1

// Network is an immutable directed in-forest. Construct one with NewPath,
// NewTree, or via Builder; the constructors validate shape so that methods
// never fail at simulation time.
type Network struct {
	next     []NodeID   // next[v] = unique out-neighbor, None for sinks
	children [][]NodeID // reverse adjacency, sorted
	depth    []int      // hop count to the sink of v's component
	sinks    []NodeID
	isPath   bool
}

// NewPath returns the directed path on n nodes: 0 → 1 → … → n−1.
// It returns an error if n < 2.
func NewPath(n int) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("network: path needs ≥ 2 nodes, got %d", n)
	}
	next := make([]NodeID, n)
	for i := 0; i < n-1; i++ {
		next[i] = NodeID(i + 1)
	}
	next[n-1] = None
	return fromNext(next, true)
}

// MustPath is NewPath but panics on error; intended for tests and examples
// with constant sizes.
func MustPath(n int) *Network {
	nw, err := NewPath(n)
	if err != nil {
		panic(err)
	}
	return nw
}

// NewTree builds an in-tree (edges toward the root) from a parent vector:
// parent[v] is v's next hop toward the root, and exactly one node (the root)
// has parent[v] == None. It returns an error if the vector does not describe
// a single rooted tree.
func NewTree(parent []NodeID) (*Network, error) {
	nw, err := fromNext(append([]NodeID(nil), parent...), false)
	if err != nil {
		return nil, err
	}
	if len(nw.sinks) != 1 {
		return nil, fmt.Errorf("network: tree must have exactly one root, got %d", len(nw.sinks))
	}
	return nw, nil
}

// NewForest builds an in-forest (a disjoint union of in-trees) from a parent
// vector; multiple roots are allowed.
func NewForest(parent []NodeID) (*Network, error) {
	return fromNext(append([]NodeID(nil), parent...), false)
}

// fromNext validates the next-hop vector: in range, acyclic, ≥ 1 sink.
func fromNext(next []NodeID, isPath bool) (*Network, error) {
	n := len(next)
	if n == 0 {
		return nil, fmt.Errorf("network: empty node set")
	}
	children := make([][]NodeID, n)
	var sinks []NodeID
	for v, p := range next {
		switch {
		case p == None:
			sinks = append(sinks, NodeID(v))
		case p < 0 || int(p) >= n:
			return nil, fmt.Errorf("network: node %d has out-of-range next hop %d", v, p)
		case int(p) == v:
			return nil, fmt.Errorf("network: node %d has a self-loop", v)
		default:
			children[p] = append(children[p], NodeID(v))
		}
	}
	if len(sinks) == 0 {
		return nil, fmt.Errorf("network: no sink (next-hop graph has a cycle)")
	}
	for _, c := range children {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}
	// Depth via BFS from sinks along reverse edges; unreached nodes are on a
	// cycle.
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	queue := make([]NodeID, 0, n)
	for _, s := range sinks {
		depth[s] = 0
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, c := range children[v] {
			depth[c] = depth[v] + 1
			queue = append(queue, c)
		}
	}
	for v, d := range depth {
		if d < 0 {
			return nil, fmt.Errorf("network: node %d is on a directed cycle", v)
		}
	}
	return &Network{next: next, children: children, depth: depth, sinks: sinks, isPath: isPath}, nil
}

// Len returns the number of nodes.
func (nw *Network) Len() int { return len(nw.next) }

// Next returns v's unique out-neighbor, or None if v is a sink.
func (nw *Network) Next(v NodeID) NodeID { return nw.next[v] }

// Children returns the in-neighbors of v (nodes whose next hop is v). The
// returned slice is shared; callers must not modify it.
func (nw *Network) Children(v NodeID) []NodeID { return nw.children[v] }

// Depth returns the hop distance from v to the sink of its component.
func (nw *Network) Depth(v NodeID) int { return nw.depth[v] }

// Sinks returns the sink nodes (the root, for a tree; node n−1, for a path).
// The returned slice is shared; callers must not modify it.
func (nw *Network) Sinks() []NodeID { return nw.sinks }

// IsPath reports whether the network was built as a directed path, in which
// case NodeID coincides with line position.
func (nw *Network) IsPath() bool { return nw.isPath }

// Valid reports whether v names a node of the network.
func (nw *Network) Valid(v NodeID) bool { return v >= 0 && int(v) < len(nw.next) }

// Reaches reports whether w lies on the directed path from v to its sink
// (inclusive of v itself). For trees this is the partial order v ⪯ w of
// Appendix B.2 restricted to comparable pairs; for paths it is v ≤ w.
func (nw *Network) Reaches(v, w NodeID) bool {
	if !nw.Valid(v) || !nw.Valid(w) {
		return false
	}
	// Walk from v toward the sink. Depth strictly decreases along the walk,
	// so once the current depth drops below w's, w can never appear.
	for u := v; u != None && nw.depth[u] >= nw.depth[w]; u = nw.next[u] {
		if u == w {
			return true
		}
	}
	return false
}

// Route returns the node sequence from src to dst following next hops,
// inclusive of both endpoints. It returns an error if dst is not reachable
// from src.
func (nw *Network) Route(src, dst NodeID) ([]NodeID, error) {
	if !nw.Valid(src) || !nw.Valid(dst) {
		return nil, fmt.Errorf("network: route %d→%d: node out of range", src, dst)
	}
	capHint := nw.depth[src] - nw.depth[dst] + 1
	if capHint < 1 {
		capHint = 1
	}
	route := make([]NodeID, 0, capHint)
	for u := src; u != None; u = nw.next[u] {
		route = append(route, u)
		if u == dst {
			return route, nil
		}
	}
	return nil, fmt.Errorf("network: destination %d not reachable from %d", dst, src)
}

// Dist returns the hop count from src to dst, or an error if unreachable.
func (nw *Network) Dist(src, dst NodeID) (int, error) {
	if !nw.Valid(src) || !nw.Valid(dst) {
		return 0, fmt.Errorf("network: dist %d→%d: node out of range", src, dst)
	}
	d := 0
	for u := src; u != None; u = nw.next[u] {
		if u == dst {
			return d, nil
		}
		d++
	}
	return 0, fmt.Errorf("network: destination %d not reachable from %d", dst, src)
}

// Subtree returns all nodes u with u ⪯ v (v's subtree, including v): the
// nodes whose route to the sink passes through v. Appendix B.2 calls this
// U_v. The result is freshly allocated and sorted.
func (nw *Network) Subtree(v NodeID) []NodeID {
	var out []NodeID
	stack := []NodeID{v}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, u)
		stack = append(stack, nw.children[u]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Leaves returns the nodes with no in-neighbors, sorted.
func (nw *Network) Leaves() []NodeID {
	var out []NodeID
	for v := range nw.next {
		if len(nw.children[v]) == 0 {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// TopoOrder returns the nodes sorted so that every node appears before its
// next hop (leaves first, sinks last). Ties are broken by NodeID.
func (nw *Network) TopoOrder() []NodeID {
	out := make([]NodeID, nw.Len())
	for i := range out {
		out[i] = NodeID(i)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if nw.depth[a] != nw.depth[b] {
			return nw.depth[a] > nw.depth[b]
		}
		return a < b
	})
	return out
}

// MaxDepth returns the largest node depth (the height of the forest).
func (nw *Network) MaxDepth() int {
	m := 0
	for _, d := range nw.depth {
		if d > m {
			m = d
		}
	}
	return m
}
