// Package network provides the topology substrate for adversarial-queuing
// simulations: directed in-forests, in which every node has at most one
// outgoing edge ("next hop"). Both topologies studied in the paper — the
// directed path (§2) and directed trees with all edges oriented toward the
// root (§3.3, Appendix B.2) — are in-forests, and the one-outgoing-edge
// property is what makes a forwarding round expressible as "each node
// forwards at most B(v) packets", where B(v) is the bandwidth of v's unique
// outgoing link.
//
// Links default to the paper's unit capacity (B ≡ 1); the constructors
// accept WithUniformBandwidth and WithLinkBandwidth options to build
// capacitated topologies for the bandwidth half of the space-bandwidth
// tradeoff.
package network

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. Nodes of an n-node network are 0..n-1, matching
// the paper's ⟨n⟩ = {0, …, n−1} convention. For paths, the ID is the
// position on the line.
type NodeID int

// None is the sentinel "no node" value (e.g. the next hop of a sink).
const None NodeID = -1

// Network is an immutable directed in-forest with per-link bandwidths.
// Construct one with NewPath, NewTree, or via Builder; the constructors
// validate shape so that methods never fail at simulation time.
type Network struct {
	next      []NodeID   // next[v] = unique out-neighbor, None for sinks
	children  [][]NodeID // reverse adjacency, sorted
	depth     []int      // hop count to the sink of v's component
	sinks     []NodeID
	isPath    bool
	bandwidth []int // bandwidth[v] = capacity of the link out of v (sinks: 1, unused)
}

// Option configures a Network under construction (today: link bandwidths).
// Options are applied in order, so a WithLinkBandwidth override may follow a
// WithUniformBandwidth base.
type Option func(*netConfig)

// netConfig accumulates options until the node count is known.
type netConfig struct {
	uniform   int
	perNodeIn []struct {
		v NodeID
		b int
	}
}

// WithUniformBandwidth sets every link's bandwidth to b ≥ 1. The paper's
// model is b = 1 (the default); larger b lets each node forward up to b
// packets per round, which is the bandwidth axis of the space-bandwidth
// tradeoff.
func WithUniformBandwidth(b int) Option {
	return func(c *netConfig) { c.uniform = b }
}

// WithLinkBandwidth sets the bandwidth of the link out of node v to b ≥ 1,
// overriding the uniform default for that link. Construction fails if v is
// out of range.
func WithLinkBandwidth(v NodeID, b int) Option {
	return func(c *netConfig) {
		c.perNodeIn = append(c.perNodeIn, struct {
			v NodeID
			b int
		}{v, b})
	}
}

// resolveBandwidth validates the accumulated options against the node count
// and produces the per-node bandwidth vector.
func resolveBandwidth(n int, opts []Option) ([]int, error) {
	c := netConfig{uniform: 1}
	for _, o := range opts {
		o(&c)
	}
	if c.uniform < 1 {
		return nil, fmt.Errorf("network: uniform bandwidth must be ≥ 1, got %d", c.uniform)
	}
	bw := make([]int, n)
	for i := range bw {
		bw[i] = c.uniform
	}
	for _, e := range c.perNodeIn {
		if e.v < 0 || int(e.v) >= n {
			return nil, fmt.Errorf("network: bandwidth for out-of-range node %d (network has %d nodes)", e.v, n)
		}
		if e.b < 1 {
			return nil, fmt.Errorf("network: link bandwidth of node %d must be ≥ 1, got %d", e.v, e.b)
		}
		bw[e.v] = e.b
	}
	return bw, nil
}

// NewPath returns the directed path on n nodes: 0 → 1 → … → n−1.
// It returns an error if n < 2.
func NewPath(n int, opts ...Option) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("network: path needs ≥ 2 nodes, got %d", n)
	}
	next := make([]NodeID, n)
	for i := 0; i < n-1; i++ {
		next[i] = NodeID(i + 1)
	}
	next[n-1] = None
	return fromNext(next, true, opts)
}

// MustPath is NewPath but panics on error; intended for tests and examples
// with constant sizes.
func MustPath(n int, opts ...Option) *Network {
	nw, err := NewPath(n, opts...)
	if err != nil {
		panic(err)
	}
	return nw
}

// NewTree builds an in-tree (edges toward the root) from a parent vector:
// parent[v] is v's next hop toward the root, and exactly one node (the root)
// has parent[v] == None. It returns an error if the vector does not describe
// a single rooted tree.
func NewTree(parent []NodeID, opts ...Option) (*Network, error) {
	nw, err := fromNext(append([]NodeID(nil), parent...), false, opts)
	if err != nil {
		return nil, err
	}
	if len(nw.sinks) != 1 {
		return nil, fmt.Errorf("network: tree must have exactly one root, got %d", len(nw.sinks))
	}
	return nw, nil
}

// NewForest builds an in-forest (a disjoint union of in-trees) from a parent
// vector; multiple roots are allowed.
func NewForest(parent []NodeID, opts ...Option) (*Network, error) {
	return fromNext(append([]NodeID(nil), parent...), false, opts)
}

// fromNext validates the next-hop vector: in range, acyclic, ≥ 1 sink.
func fromNext(next []NodeID, isPath bool, opts []Option) (*Network, error) {
	n := len(next)
	if n == 0 {
		return nil, fmt.Errorf("network: empty node set")
	}
	children := make([][]NodeID, n)
	var sinks []NodeID
	for v, p := range next {
		switch {
		case p == None:
			sinks = append(sinks, NodeID(v))
		case p < 0 || int(p) >= n:
			return nil, fmt.Errorf("network: node %d has out-of-range next hop %d", v, p)
		case int(p) == v:
			return nil, fmt.Errorf("network: node %d has a self-loop", v)
		default:
			children[p] = append(children[p], NodeID(v))
		}
	}
	if len(sinks) == 0 {
		return nil, fmt.Errorf("network: no sink (next-hop graph has a cycle)")
	}
	for _, c := range children {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}
	// Depth via BFS from sinks along reverse edges; unreached nodes are on a
	// cycle.
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	queue := make([]NodeID, 0, n)
	for _, s := range sinks {
		depth[s] = 0
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, c := range children[v] {
			depth[c] = depth[v] + 1
			queue = append(queue, c)
		}
	}
	for v, d := range depth {
		if d < 0 {
			return nil, fmt.Errorf("network: node %d is on a directed cycle", v)
		}
	}
	bw, err := resolveBandwidth(n, opts)
	if err != nil {
		return nil, err
	}
	return &Network{next: next, children: children, depth: depth, sinks: sinks, isPath: isPath, bandwidth: bw}, nil
}

// Len returns the number of nodes.
func (nw *Network) Len() int { return len(nw.next) }

// Next returns v's unique out-neighbor, or None if v is a sink.
func (nw *Network) Next(v NodeID) NodeID { return nw.next[v] }

// Children returns the in-neighbors of v (nodes whose next hop is v). The
// returned slice is shared; callers must not modify it.
func (nw *Network) Children(v NodeID) []NodeID { return nw.children[v] }

// Depth returns the hop distance from v to the sink of its component.
func (nw *Network) Depth(v NodeID) int { return nw.depth[v] }

// Sinks returns the sink nodes (the root, for a tree; node n−1, for a path).
// The returned slice is shared; callers must not modify it.
func (nw *Network) Sinks() []NodeID { return nw.sinks }

// IsPath reports whether the network was built as a directed path, in which
// case NodeID coincides with line position.
func (nw *Network) IsPath() bool { return nw.isPath }

// Bandwidth returns B(v), the capacity of the link out of v: the maximum
// number of packets v may forward in one round. For sinks (which have no
// outgoing link) it returns the configured default; the engine never lets a
// sink forward regardless.
func (nw *Network) Bandwidth(v NodeID) int { return nw.bandwidth[v] }

// BottleneckBandwidth returns the minimum link bandwidth over all non-sink
// nodes. It caps the usable injection rate: a sustained per-buffer rate
// above the bottleneck is undeliverable no matter the protocol, so demand
// bounds are admissible only for ρ ≤ BottleneckBandwidth.
func (nw *Network) BottleneckBandwidth() int {
	best := 0
	for v, next := range nw.next {
		if next == None {
			continue
		}
		if best == 0 || nw.bandwidth[v] < best {
			best = nw.bandwidth[v]
		}
	}
	if best == 0 {
		best = 1 // unreachable: every valid network has ≥ 1 edge
	}
	return best
}

// UniformBandwidth returns (B, true) when every non-sink link has the same
// bandwidth B, and (0, false) otherwise.
func (nw *Network) UniformBandwidth() (int, bool) {
	b := 0
	for v, next := range nw.next {
		if next == None {
			continue
		}
		if b == 0 {
			b = nw.bandwidth[v]
		} else if nw.bandwidth[v] != b {
			return 0, false
		}
	}
	if b == 0 {
		b = 1
	}
	return b, true
}

// WithBandwidths returns a copy of the network with its link bandwidths
// replaced by the given options (the topology is shared; only the bandwidth
// vector is rebuilt). It is how sweep axes impose a bandwidth on an
// existing topology without reconstructing it.
func (nw *Network) WithBandwidths(opts ...Option) (*Network, error) {
	bw, err := resolveBandwidth(len(nw.next), opts)
	if err != nil {
		return nil, err
	}
	out := *nw
	out.bandwidth = bw
	return &out, nil
}

// Valid reports whether v names a node of the network.
func (nw *Network) Valid(v NodeID) bool { return v >= 0 && int(v) < len(nw.next) }

// Reaches reports whether w lies on the directed path from v to its sink
// (inclusive of v itself). For trees this is the partial order v ⪯ w of
// Appendix B.2 restricted to comparable pairs; for paths it is v ≤ w.
func (nw *Network) Reaches(v, w NodeID) bool {
	if !nw.Valid(v) || !nw.Valid(w) {
		return false
	}
	// Walk from v toward the sink. Depth strictly decreases along the walk,
	// so once the current depth drops below w's, w can never appear.
	for u := v; u != None && nw.depth[u] >= nw.depth[w]; u = nw.next[u] {
		if u == w {
			return true
		}
	}
	return false
}

// Route returns the node sequence from src to dst following next hops,
// inclusive of both endpoints. It returns an error if dst is not reachable
// from src.
func (nw *Network) Route(src, dst NodeID) ([]NodeID, error) {
	if !nw.Valid(src) || !nw.Valid(dst) {
		return nil, fmt.Errorf("network: route %d→%d: node out of range", src, dst)
	}
	capHint := nw.depth[src] - nw.depth[dst] + 1
	if capHint < 1 {
		capHint = 1
	}
	route := make([]NodeID, 0, capHint)
	for u := src; u != None; u = nw.next[u] {
		route = append(route, u)
		if u == dst {
			return route, nil
		}
	}
	return nil, fmt.Errorf("network: destination %d not reachable from %d", dst, src)
}

// Dist returns the hop count from src to dst, or an error if unreachable.
func (nw *Network) Dist(src, dst NodeID) (int, error) {
	if !nw.Valid(src) || !nw.Valid(dst) {
		return 0, fmt.Errorf("network: dist %d→%d: node out of range", src, dst)
	}
	d := 0
	for u := src; u != None; u = nw.next[u] {
		if u == dst {
			return d, nil
		}
		d++
	}
	return 0, fmt.Errorf("network: destination %d not reachable from %d", dst, src)
}

// Subtree returns all nodes u with u ⪯ v (v's subtree, including v): the
// nodes whose route to the sink passes through v. Appendix B.2 calls this
// U_v. The result is freshly allocated and sorted.
func (nw *Network) Subtree(v NodeID) []NodeID {
	var out []NodeID
	stack := []NodeID{v}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, u)
		stack = append(stack, nw.children[u]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Leaves returns the nodes with no in-neighbors, sorted.
func (nw *Network) Leaves() []NodeID {
	var out []NodeID
	for v := range nw.next {
		if len(nw.children[v]) == 0 {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// TopoOrder returns the nodes sorted so that every node appears before its
// next hop (leaves first, sinks last). Ties are broken by NodeID.
func (nw *Network) TopoOrder() []NodeID {
	out := make([]NodeID, nw.Len())
	for i := range out {
		out[i] = NodeID(i)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if nw.depth[a] != nw.depth[b] {
			return nw.depth[a] > nw.depth[b]
		}
		return a < b
	})
	return out
}

// MaxDepth returns the largest node depth (the height of the forest).
func (nw *Network) MaxDepth() int {
	m := 0
	for _, d := range nw.depth {
		if d > m {
			m = d
		}
	}
	return m
}
