package network

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPath(t *testing.T) {
	nw, err := NewPath(5)
	if err != nil {
		t.Fatalf("NewPath(5): %v", err)
	}
	if nw.Len() != 5 {
		t.Errorf("Len = %d, want 5", nw.Len())
	}
	if !nw.IsPath() {
		t.Error("IsPath = false, want true")
	}
	for i := 0; i < 4; i++ {
		if got := nw.Next(NodeID(i)); got != NodeID(i+1) {
			t.Errorf("Next(%d) = %d, want %d", i, got, i+1)
		}
	}
	if got := nw.Next(4); got != None {
		t.Errorf("Next(4) = %d, want None", got)
	}
	if got := nw.Sinks(); len(got) != 1 || got[0] != 4 {
		t.Errorf("Sinks = %v, want [4]", got)
	}
	if got := nw.Depth(0); got != 4 {
		t.Errorf("Depth(0) = %d, want 4", got)
	}
}

func TestNewPathErrors(t *testing.T) {
	for _, n := range []int{-1, 0, 1} {
		if _, err := NewPath(n); err == nil {
			t.Errorf("NewPath(%d) succeeded, want error", n)
		}
	}
}

func TestMustPathPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPath(0) did not panic")
		}
	}()
	MustPath(0)
}

func TestNewTree(t *testing.T) {
	// 0→2, 1→2, 2→4, 3→4, 4 root.
	nw, err := NewTree([]NodeID{2, 2, 4, 4, None})
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	if nw.IsPath() {
		t.Error("IsPath = true for a tree")
	}
	if got := nw.Children(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Children(2) = %v, want [0 1]", got)
	}
	if got := nw.Children(4); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("Children(4) = %v, want [2 3]", got)
	}
	if got := nw.Depth(0); got != 2 {
		t.Errorf("Depth(0) = %d, want 2", got)
	}
	if got := nw.Leaves(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Errorf("Leaves = %v, want [0 1 3]", got)
	}
}

func TestNewTreeErrors(t *testing.T) {
	tests := []struct {
		name   string
		parent []NodeID
	}{
		{"empty", nil},
		{"two roots", []NodeID{None, None}},
		{"cycle", []NodeID{1, 0, None}},
		{"self loop", []NodeID{0, None}},
		{"out of range", []NodeID{5, None}},
		{"no root", []NodeID{1, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewTree(tt.parent); err == nil {
				t.Error("NewTree succeeded, want error")
			}
		})
	}
}

func TestNewForestAllowsMultipleRoots(t *testing.T) {
	nw, err := NewForest([]NodeID{1, None, 3, None})
	if err != nil {
		t.Fatalf("NewForest: %v", err)
	}
	if got := nw.Sinks(); len(got) != 2 {
		t.Errorf("Sinks = %v, want two roots", got)
	}
}

func TestReaches(t *testing.T) {
	nw := MustPath(6)
	tests := []struct {
		v, w NodeID
		want bool
	}{
		{0, 5, true},
		{0, 0, true},
		{3, 3, true},
		{3, 2, false},
		{5, 0, false},
		{2, 4, true},
		{-1, 3, false},
		{3, 99, false},
	}
	for _, tt := range tests {
		if got := nw.Reaches(tt.v, tt.w); got != tt.want {
			t.Errorf("Reaches(%d,%d) = %v, want %v", tt.v, tt.w, got, tt.want)
		}
	}

	tree, err := NewTree([]NodeID{2, 2, 4, 4, None})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Reaches(0, 4) {
		t.Error("tree: Reaches(0,4) = false, want true")
	}
	if tree.Reaches(0, 3) {
		t.Error("tree: Reaches(0,3) = true, want false (incomparable)")
	}
	if tree.Reaches(0, 1) {
		t.Error("tree: Reaches(0,1) = true, want false (siblings)")
	}
}

func TestRouteAndDist(t *testing.T) {
	nw := MustPath(5)
	route, err := nw.Route(1, 4)
	if err != nil {
		t.Fatalf("Route(1,4): %v", err)
	}
	want := []NodeID{1, 2, 3, 4}
	if len(route) != len(want) {
		t.Fatalf("Route(1,4) = %v, want %v", route, want)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("Route(1,4) = %v, want %v", route, want)
		}
	}
	if _, err := nw.Route(4, 1); err == nil {
		t.Error("Route(4,1) succeeded, want error")
	}
	if d, err := nw.Dist(1, 4); err != nil || d != 3 {
		t.Errorf("Dist(1,4) = %d, %v, want 3, nil", d, err)
	}
	if d, err := nw.Dist(2, 2); err != nil || d != 0 {
		t.Errorf("Dist(2,2) = %d, %v, want 0, nil", d, err)
	}
	if _, err := nw.Dist(3, 0); err == nil {
		t.Error("Dist(3,0) succeeded, want error")
	}
	if _, err := nw.Dist(-1, 0); err == nil {
		t.Error("Dist(-1,0) succeeded, want error")
	}
}

func TestSubtree(t *testing.T) {
	tree, err := NewTree([]NodeID{2, 2, 4, 4, None})
	if err != nil {
		t.Fatal(err)
	}
	got := tree.Subtree(2)
	want := []NodeID{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("Subtree(2) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Subtree(2) = %v, want %v", got, want)
		}
	}
	if got := tree.Subtree(4); len(got) != 5 {
		t.Errorf("Subtree(root) = %v, want all 5 nodes", got)
	}
	if got := tree.Subtree(3); len(got) != 1 || got[0] != 3 {
		t.Errorf("Subtree(leaf 3) = %v, want [3]", got)
	}
}

func TestTopoOrder(t *testing.T) {
	tree, err := NewTree([]NodeID{2, 2, 4, 4, None})
	if err != nil {
		t.Fatal(err)
	}
	order := tree.TopoOrder()
	pos := make(map[NodeID]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	for v := 0; v < tree.Len(); v++ {
		if p := tree.Next(NodeID(v)); p != None && pos[NodeID(v)] > pos[p] {
			t.Errorf("node %d appears after its next hop %d", v, p)
		}
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder(4)
	if err := b.Edge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Edge(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Edge(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Edge(0, 2); err == nil {
		t.Error("duplicate out-edge accepted")
	}
	if err := b.Edge(0, 9); err == nil {
		t.Error("out-of-range edge accepted")
	}
	nw, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := nw.Next(1); got != 3 {
		t.Errorf("Next(1) = %d, want 3", got)
	}
}

func TestGenerators(t *testing.T) {
	t.Run("caterpillar", func(t *testing.T) {
		nw, err := CaterpillarTree(4, 2)
		if err != nil {
			t.Fatal(err)
		}
		if nw.Len() != 12 {
			t.Errorf("Len = %d, want 12", nw.Len())
		}
		if got := len(nw.Sinks()); got != 1 {
			t.Errorf("sinks = %d, want 1", got)
		}
		// Each spine node except the last has 1 path child + 2 legs.
		if got := len(nw.Children(1)); got != 3 {
			t.Errorf("Children(1) = %d, want 3", got)
		}
	})
	t.Run("caterpillar errors", func(t *testing.T) {
		if _, err := CaterpillarTree(1, 2); err == nil {
			t.Error("want error for spine 1")
		}
		if _, err := CaterpillarTree(3, -1); err == nil {
			t.Error("want error for negative legs")
		}
	})
	t.Run("binary", func(t *testing.T) {
		nw, err := BinaryTree(3)
		if err != nil {
			t.Fatal(err)
		}
		if nw.Len() != 15 {
			t.Errorf("Len = %d, want 15", nw.Len())
		}
		root := nw.Sinks()[0]
		if root != 14 {
			t.Errorf("root = %d, want 14", root)
		}
		if got := len(nw.Children(root)); got != 2 {
			t.Errorf("root children = %d, want 2", got)
		}
		if got := nw.MaxDepth(); got != 3 {
			t.Errorf("MaxDepth = %d, want 3", got)
		}
		if _, err := BinaryTree(0); err == nil {
			t.Error("want error for height 0")
		}
	})
	t.Run("spider", func(t *testing.T) {
		nw, err := SpiderTree(3, 4)
		if err != nil {
			t.Fatal(err)
		}
		if nw.Len() != 13 {
			t.Errorf("Len = %d, want 13", nw.Len())
		}
		if got := len(nw.Children(nw.Sinks()[0])); got != 3 {
			t.Errorf("root children = %d, want 3 arms", got)
		}
		if got := nw.Depth(0); got != 4 {
			t.Errorf("Depth(0) = %d, want 4", got)
		}
		if _, err := SpiderTree(0, 3); err == nil {
			t.Error("want error for 0 arms")
		}
	})
	t.Run("random", func(t *testing.T) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 20; i++ {
			nw, err := RandomTree(2+rng.Intn(50), rng)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(nw.Sinks()); got != 1 {
				t.Errorf("random tree has %d roots, want 1", got)
			}
		}
		if _, err := RandomTree(1, rng); err == nil {
			t.Error("want error for n=1")
		}
	})
}

func TestQuickRandomTreeInvariants(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 2 + int(sz)%60
		rng := rand.New(rand.NewSource(seed))
		nw, err := RandomTree(n, rng)
		if err != nil {
			return false
		}
		root := nw.Sinks()[0]
		// Every node reaches the root; routes have length Depth+1.
		for v := 0; v < n; v++ {
			if !nw.Reaches(NodeID(v), root) {
				return false
			}
			route, err := nw.Route(NodeID(v), root)
			if err != nil || len(route) != nw.Depth(NodeID(v))+1 {
				return false
			}
		}
		// Subtree sizes sum to total path lengths: Σ|Subtree(v)| = Σ(depth+1).
		sum, want := 0, 0
		for v := 0; v < n; v++ {
			sum += len(nw.Subtree(NodeID(v)))
			want += nw.Depth(NodeID(v)) + 1
		}
		return sum == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNewForestRejectsCycles(t *testing.T) {
	cases := [][]NodeID{
		{1, 0, None},       // 2-cycle off to the side of a root
		{1, 2, 0, None},    // 3-cycle
		{None, 2, 3, 4, 2}, // cycle 2→3→4→2 reachable from nothing
	}
	for _, parent := range cases {
		if nw, err := NewForest(parent); err == nil {
			t.Errorf("NewForest(%v) accepted a cyclic parent vector (%d nodes)", parent, nw.Len())
		}
	}
	// A long chain into a far cycle must also be caught (BFS from sinks
	// never reaches it).
	parent := make([]NodeID, 10)
	for i := 0; i < 8; i++ {
		parent[i] = NodeID(i + 1)
	}
	parent[8] = 9
	parent[9] = 8 // 8 ⇄ 9
	parent[0] = None
	if _, err := NewForest(parent); err == nil {
		t.Error("NewForest accepted a chain feeding a 2-cycle")
	}
}

func TestSpiderTreeDegenerateArms(t *testing.T) {
	if _, err := SpiderTree(0, 3); err == nil {
		t.Error("SpiderTree(0, 3) accepted zero arms")
	}
	if _, err := SpiderTree(3, 0); err == nil {
		t.Error("SpiderTree(3, 0) accepted zero-length arms")
	}
	// The minimal spider is a path of 2.
	nw, err := SpiderTree(1, 1)
	if err != nil {
		t.Fatalf("SpiderTree(1, 1): %v", err)
	}
	if nw.Len() != 2 || len(nw.Sinks()) != 1 {
		t.Errorf("SpiderTree(1,1): %d nodes, %d sinks; want 2 nodes, 1 sink", nw.Len(), len(nw.Sinks()))
	}
}

func TestCaterpillarTreeZeroLegs(t *testing.T) {
	// Zero legs degenerates to the spine path; it must build, not error.
	nw, err := CaterpillarTree(5, 0)
	if err != nil {
		t.Fatalf("CaterpillarTree(5, 0): %v", err)
	}
	if nw.Len() != 5 {
		t.Errorf("CaterpillarTree(5,0) has %d nodes, want 5", nw.Len())
	}
	for v := 0; v < 4; v++ {
		if nw.Next(NodeID(v)) != NodeID(v+1) {
			t.Errorf("CaterpillarTree(5,0): next(%d) = %d, want %d", v, nw.Next(NodeID(v)), v+1)
		}
	}
	if _, err := CaterpillarTree(5, -1); err == nil {
		t.Error("CaterpillarTree(5, -1) accepted negative legs")
	}
	if _, err := CaterpillarTree(1, 2); err == nil {
		t.Error("CaterpillarTree(1, 2) accepted a single-node spine")
	}
}

func TestBandwidthOptionValidation(t *testing.T) {
	if _, err := NewPath(4, WithUniformBandwidth(0)); err == nil {
		t.Error("NewPath accepted uniform bandwidth 0")
	}
	if _, err := NewPath(4, WithUniformBandwidth(-3)); err == nil {
		t.Error("NewPath accepted negative uniform bandwidth")
	}
	if _, err := NewPath(4, WithLinkBandwidth(4, 2)); err == nil {
		t.Error("NewPath accepted a bandwidth for out-of-range node 4")
	}
	if _, err := NewPath(4, WithLinkBandwidth(-1, 2)); err == nil {
		t.Error("NewPath accepted a bandwidth for node -1")
	}
	if _, err := NewPath(4, WithLinkBandwidth(1, 0)); err == nil {
		t.Error("NewPath accepted per-link bandwidth 0")
	}
	// Options apply in order: a per-link override may follow the uniform
	// base, regardless of argument position.
	nw, err := NewPath(4, WithLinkBandwidth(1, 5), WithUniformBandwidth(2))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Bandwidth(1) != 5 || nw.Bandwidth(0) != 2 {
		t.Errorf("bandwidths = [%d %d], want override 5 at node 1 over uniform 2", nw.Bandwidth(0), nw.Bandwidth(1))
	}
}

func TestWithBandwidthsDerivesCopy(t *testing.T) {
	base := MustPath(6)
	fast, err := base.WithBandwidths(WithUniformBandwidth(3))
	if err != nil {
		t.Fatal(err)
	}
	if base.Bandwidth(0) != 1 {
		t.Errorf("base network mutated: Bandwidth(0) = %d", base.Bandwidth(0))
	}
	if fast.Bandwidth(0) != 3 {
		t.Errorf("derived network Bandwidth(0) = %d, want 3", fast.Bandwidth(0))
	}
	if fast.Len() != base.Len() || fast.Next(0) != base.Next(0) {
		t.Error("derived network changed topology")
	}
	if _, err := base.WithBandwidths(WithUniformBandwidth(0)); err == nil {
		t.Error("WithBandwidths accepted bandwidth 0")
	}
}

func TestBuilderForwardsBandwidthOptions(t *testing.T) {
	b := NewBuilder(3)
	if err := b.Edge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Edge(1, 2); err != nil {
		t.Fatal(err)
	}
	nw, err := b.Build(WithUniformBandwidth(4))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Bandwidth(0) != 4 {
		t.Errorf("Builder.Build dropped bandwidth options: B(0) = %d", nw.Bandwidth(0))
	}
}
