package network

import (
	"fmt"
	"math/rand"
)

// Builder assembles an in-forest edge by edge and validates on Build. It is
// convenient for tests and generators; production call sites with a known
// shape should prefer NewPath / NewTree.
type Builder struct {
	n      int
	parent []NodeID
	set    []bool
}

// NewBuilder returns a builder for an n-node network with no edges. Every
// node starts as a root (next hop None).
func NewBuilder(n int) *Builder {
	parent := make([]NodeID, n)
	for i := range parent {
		parent[i] = None
	}
	return &Builder{n: n, parent: parent, set: make([]bool, n)}
}

// Edge directs an edge from u toward v (v becomes u's next hop). It returns
// an error if u already has an outgoing edge or either endpoint is invalid.
func (b *Builder) Edge(u, v NodeID) error {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		return fmt.Errorf("network: edge %d→%d out of range [0,%d)", u, v, b.n)
	}
	if b.set[u] {
		return fmt.Errorf("network: node %d already has an outgoing edge (in-forest requires out-degree ≤ 1)", u)
	}
	b.parent[u] = v
	b.set[u] = true
	return nil
}

// Build validates and returns the network; options (e.g. bandwidths) are
// forwarded to construction. The builder may not be reused after a
// successful Build.
func (b *Builder) Build(opts ...Option) (*Network, error) {
	return NewForest(b.parent, opts...)
}

// RandomTree returns a uniformly random-ish in-tree on n nodes rooted at
// node n−1: each node v < n−1 picks a parent uniformly from {v+1, …, n−1}.
// This yields trees whose leaf-root paths shrink logarithmically in
// expectation, exercising the d′ bound of Proposition 3.5 on non-degenerate
// shapes. The generator is deterministic given rng.
func RandomTree(n int, rng *rand.Rand, opts ...Option) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("network: random tree needs ≥ 2 nodes, got %d", n)
	}
	parent := make([]NodeID, n)
	for v := 0; v < n-1; v++ {
		parent[v] = NodeID(v + 1 + rng.Intn(n-1-v))
	}
	parent[n-1] = None
	return NewTree(parent, opts...)
}

// CaterpillarTree returns a path 0→1→…→(spine−1) with `legs` extra leaves
// attached to each spine node. Total nodes: spine·(1+legs). The spine
// carries long routes while the legs inject cross traffic — a worst-case
// shape for per-node buffer pressure on trees.
func CaterpillarTree(spine, legs int, opts ...Option) (*Network, error) {
	if spine < 2 || legs < 0 {
		return nil, fmt.Errorf("network: caterpillar needs spine ≥ 2 and legs ≥ 0, got %d, %d", spine, legs)
	}
	n := spine * (1 + legs)
	parent := make([]NodeID, n)
	for i := 0; i < spine-1; i++ {
		parent[i] = NodeID(i + 1)
	}
	parent[spine-1] = None
	for s := 0; s < spine; s++ {
		for l := 0; l < legs; l++ {
			leaf := spine + s*legs + l
			parent[leaf] = NodeID(s)
		}
	}
	return NewTree(parent, opts...)
}

// BinaryTree returns a complete binary in-tree of the given height (height 0
// is a single root — rejected, since networks need ≥ 2 nodes). Node 0 is the
// root in heap order internally, but IDs are re-labeled so the root is the
// last node, keeping the "sink has the largest ID" convention of paths.
func BinaryTree(height int, opts ...Option) (*Network, error) {
	if height < 1 {
		return nil, fmt.Errorf("network: binary tree needs height ≥ 1, got %d", height)
	}
	n := 1<<(height+1) - 1
	// Heap order: node i's parent is (i−1)/2, root is 0. Relabel i → n−1−i so
	// the root becomes n−1.
	parent := make([]NodeID, n)
	for i := 1; i < n; i++ {
		parent[n-1-i] = NodeID(n - 1 - (i-1)/2)
	}
	parent[n-1] = None
	return NewTree(parent, opts...)
}

// SpiderTree returns `arms` disjoint directed paths of the given length all
// merging into a single root: a star of paths. It models the "union of
// single-destination trees" case the paper highlights as the output of many
// routing algorithms. Total nodes: arms·length + 1; the root is the last ID.
func SpiderTree(arms, length int, opts ...Option) (*Network, error) {
	if arms < 1 || length < 1 {
		return nil, fmt.Errorf("network: spider needs arms ≥ 1 and length ≥ 1, got %d, %d", arms, length)
	}
	n := arms*length + 1
	root := NodeID(n - 1)
	parent := make([]NodeID, n)
	parent[root] = None
	for a := 0; a < arms; a++ {
		base := a * length
		for i := 0; i < length; i++ {
			if i == length-1 {
				parent[base+i] = root
			} else {
				parent[base+i] = NodeID(base + i + 1)
			}
		}
	}
	return NewTree(parent, opts...)
}
