package live

import (
	"context"
	"sync"
	"testing"
	"time"

	"smallbuffers/internal/harness"
	"smallbuffers/internal/metrics"
)

// fakeClock is a manually advanced Clock: Sleep advances it instantly,
// so rate and ETA math is exact under test.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Advance(d)
	return nil
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func rec(name string, scalars map[string]int) harness.CellRecord {
	return harness.CellRecord{Metrics: []metrics.Summary{
		{Name: name, Kind: metrics.KindScalar, Scalars: scalars},
	}}
}

func TestAccumulatorProgressAndRates(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	a := NewAccumulator("r1-test", 10, 3, clk)
	if v := a.View(); v.Status != "queued" || v.ElapsedMillis != 0 || v.CellsInFlight != 0 {
		t.Fatalf("queued view %+v", v)
	}
	a.Start()
	clk.Advance(2 * time.Second)
	for i := 0; i < 3; i++ {
		a.Observe(rec("max_load", map[string]int{"max_load": i + 1}))
	}
	a.Observe(harness.CellRecord{Err: "boom"})
	v := a.View()
	if v.CellsDone != 4 || v.CellsFailed != 1 || v.CellsTotal != 10 {
		t.Fatalf("counts %+v", v)
	}
	if v.CellsInFlight != 3 { // min(workers=3, remaining=6)
		t.Fatalf("in flight = %d", v.CellsInFlight)
	}
	if v.ElapsedMillis != 2000 {
		t.Fatalf("elapsed = %d", v.ElapsedMillis)
	}
	// 4 cells in 2 s → 2 cells/s → 2000 in ×1000 fixed point.
	if v.CellsPerSecMillis != 2000 {
		t.Fatalf("cells/sec = %d", v.CellsPerSecMillis)
	}
	// 6 remaining at 2 cells/s → 3 s.
	if v.ETAMillis != 3000 {
		t.Fatalf("eta = %d", v.ETAMillis)
	}
	if v.Progress() != 400 {
		t.Fatalf("progress = %d", v.Progress())
	}
	// Merged scalars fold element-wise max.
	s, ok := v.MetricByName("max_load")
	if !ok || s.Scalars["max_load"] != 3 {
		t.Fatalf("merged max_load %+v", s)
	}
	// Finish freezes elapsed and zeroes in-flight/ETA.
	a.Finish("done")
	clk.Advance(time.Hour)
	v = a.View()
	if v.Status != "done" || v.ElapsedMillis != 2000 || v.CellsInFlight != 0 || v.ETAMillis != 0 {
		t.Fatalf("finished view %+v", v)
	}
}

func TestAccumulatorMergeConflictCounted(t *testing.T) {
	a := NewAccumulator("r", 2, 0, &fakeClock{})
	a.Start()
	a.Observe(rec("m", map[string]int{"x": 1}))
	// Same name, different kind: the merge must drop it and count it,
	// never fail the publish path.
	a.Observe(harness.CellRecord{Metrics: []metrics.Summary{
		{Name: "m", Kind: metrics.KindHist, Scalars: map[string]int{"x": 2}},
	}})
	v := a.View()
	if v.DroppedSummaries != 1 {
		t.Fatalf("dropped = %d", v.DroppedSummaries)
	}
	if s, _ := v.MetricByName("m"); s.Scalars["x"] != 1 {
		t.Fatalf("surviving summary %+v", s)
	}
}

func TestRegistryViewsSorted(t *testing.T) {
	r := NewRegistry()
	clk := &fakeClock{}
	for _, id := range []string{"r1-b", "r1-a", "r1-c"} {
		r.Add(NewAccumulator(id, 1, 1, clk))
	}
	views := r.Views()
	if len(views) != 3 || views[0].ID != "r1-a" || views[2].ID != "r1-c" {
		t.Fatalf("views %+v", views)
	}
	r.Remove("r1-b")
	if _, ok := r.Get("r1-b"); ok {
		t.Fatal("removed run still present")
	}
	if got := len(r.Views()); got != 2 {
		t.Fatalf("views after remove = %d", got)
	}
}

// TestViewRaceFree drives Observe and View concurrently under -race: a
// reader polling snapshots must never block or corrupt the publisher.
func TestViewRaceFree(t *testing.T) {
	a := NewAccumulator("r", 1000, 8, &fakeClock{})
	a.Start()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				a.View()
			}
		}
	}()
	for i := 0; i < 1000; i++ {
		a.Observe(rec("max_load", map[string]int{"max_load": i}))
	}
	close(stop)
	wg.Wait()
	if v := a.View(); v.CellsDone != 1000 {
		t.Fatalf("done = %d", v.CellsDone)
	}
}
