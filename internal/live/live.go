// Package live is the observation tier: merge-as-you-go views of runs
// that are still in flight. An Accumulator folds each completed cell's
// record into a running metrics.Summary set the moment it is published,
// so GET /v1/runs/{id}/live can answer "what is happening right now"
// without waiting for the sweep's summary event; a Registry indexes the
// accumulators by run id for the service handlers and the Prometheus
// exposition.
//
// # Strictly observational
//
// Nothing in this package feeds back into execution: accumulators are
// fed unconditionally from the publish path (the same work whether
// anyone is watching or not), snapshots copy under a mutex, and no
// state here reaches a wire record or digest. Attaching any number of
// watchers leaves the records digest byte-identical — the property the
// live-digest CI job gates.
//
// # Clock discipline
//
// Rates and ETAs need wall time, but aqtlint's nowallclock analyzer
// covers this package: all time flows through the injected Clock, so
// tests drive snapshot timestamps deterministically. SystemClock below
// carries the repository's one sanctioned wall-clock read.
package live

import (
	"context"
	"sort"
	"sync"
	"time"

	"smallbuffers/internal/harness"
	"smallbuffers/internal/metrics"
)

// Clock abstracts the observation tier's only uses of wall time:
// stamping snapshots and pacing poll loops. Injecting it keeps live
// views and retry schedules testable and keeps time.Now out of
// digest-adjacent code. The fleet coordinator shares this interface
// (fleet.Clock is an alias).
type Clock interface {
	// Now returns the current time. Used only for elapsed-time and rate
	// fields, never for anything that reaches simulation results.
	Now() time.Time
	// Sleep blocks for d or until ctx is cancelled, returning ctx.Err()
	// in the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// SystemClock returns the real-time Clock used outside tests.
func SystemClock() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() time.Time {
	return time.Now() //aqtlint:allow nowallclock -- the one sanctioned wall-clock read; everything else injects Clock
}

func (systemClock) Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// View is the JSON snapshot of one in-flight (or finished) run. Counts
// and rates are integers — cells_per_sec_millis is cells/second ×1000
// and eta_millis is wall milliseconds — matching the stack's integer
// wire convention even though live views never enter a digest.
type View struct {
	ID            string `json:"id"`
	Status        string `json:"status"`
	CellsTotal    int    `json:"cells_total"`
	CellsDone     int    `json:"cells_done"`
	CellsFailed   int    `json:"cells_failed,omitempty"`
	CellsInFlight int    `json:"cells_in_flight"`
	// DroppedSummaries counts collector summaries the merge had to
	// discard (name/kind conflicts); normally 0.
	DroppedSummaries  int   `json:"dropped_summaries,omitempty"`
	ElapsedMillis     int64 `json:"elapsed_millis"`
	CellsPerSecMillis int64 `json:"cells_per_sec_millis"`
	ETAMillis         int64 `json:"eta_millis,omitempty"`
	// Metrics is the merge-as-you-go summary set over every cell
	// published so far, sorted by collector name. Merged under the same
	// rules as final reports (metrics.Merge), so the windowed collectors'
	// scalars read mid-sweep exactly like they will in the summary.
	Metrics []metrics.Summary `json:"metrics,omitempty"`
}

// Progress returns the run's completion in per-mille (0 when the total
// is unknown).
func (v View) Progress() int {
	if v.CellsTotal == 0 {
		return 0
	}
	return v.CellsDone * 1000 / v.CellsTotal
}

// MetricByName returns the view's merged summary for the named
// collector.
func (v View) MetricByName(name string) (metrics.Summary, bool) {
	for _, s := range v.Metrics {
		if s.Name == name {
			return s, true
		}
	}
	return metrics.Summary{}, false
}

// Accumulator folds published cell records into a live view of one run.
// All methods are safe for concurrent use; Observe is O(metrics) per
// cell and View copies the merged set, so a slow or stalled reader can
// never hold up the publisher.
//
// Summaries merge in completion order, not cell-index order, so
// anchored argmax *ties* may resolve differently than in the final
// report — live views are observational and make no ordering promise
// beyond what metrics.Merge gives any fold order.
type Accumulator struct {
	mu               sync.Mutex
	id               string
	total            int
	workers          int
	clock            Clock
	status           string
	started          time.Time
	finished         time.Time
	done             int
	failed           int
	droppedSummaries int
	merged           map[string]metrics.Summary
}

// NewAccumulator returns an accumulator for a run of total cells
// executed by at most workers concurrent sweep workers (0 means
// unknown). A nil clock falls back to SystemClock.
func NewAccumulator(id string, total, workers int, clock Clock) *Accumulator {
	if clock == nil {
		clock = SystemClock()
	}
	return &Accumulator{
		id: id, total: total, workers: workers, clock: clock,
		status: "queued", merged: map[string]metrics.Summary{},
	}
}

// Start marks the run as executing and stamps its start time.
func (a *Accumulator) Start() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.status = "running"
	a.started = a.clock.Now()
}

// Observe folds one published cell record into the view.
func (a *Accumulator) Observe(rec harness.CellRecord) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.done++
	if rec.Err != "" {
		a.failed++
	}
	for _, s := range rec.Metrics {
		prev, ok := a.merged[s.Name]
		if !ok {
			a.merged[s.Name] = s
			continue
		}
		m, err := metrics.Merge(prev, s)
		if err != nil {
			a.droppedSummaries++
			continue
		}
		a.merged[s.Name] = m
	}
}

// Finish seals the view with the run's terminal status and stamps its
// end time, freezing the elapsed/rate fields.
func (a *Accumulator) Finish(status string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.status = status
	a.finished = a.clock.Now()
}

// View renders the current snapshot.
func (a *Accumulator) View() View {
	a.mu.Lock()
	defer a.mu.Unlock()
	v := View{
		ID: a.id, Status: a.status,
		CellsTotal: a.total, CellsDone: a.done, CellsFailed: a.failed,
		DroppedSummaries: a.droppedSummaries,
		Metrics:          make([]metrics.Summary, 0, len(a.merged)),
	}
	for _, name := range metrics.SortedNames(a.merged) {
		v.Metrics = append(v.Metrics, a.merged[name])
	}
	running := a.status == "running"
	if running {
		if v.CellsInFlight = a.total - a.done; a.workers > 0 && v.CellsInFlight > a.workers {
			v.CellsInFlight = a.workers
		}
	}
	if a.started.IsZero() {
		return v
	}
	end := a.finished
	if end.IsZero() {
		end = a.clock.Now()
	}
	if elapsed := end.Sub(a.started).Milliseconds(); elapsed > 0 {
		v.ElapsedMillis = elapsed
		v.CellsPerSecMillis = int64(a.done) * 1_000_000 / elapsed
		if remaining := a.total - a.done; running && a.done > 0 && remaining > 0 {
			v.ETAMillis = int64(remaining) * elapsed / int64(a.done)
		}
	}
	return v
}

// Registry indexes live accumulators by run id.
type Registry struct {
	mu   sync.Mutex
	runs map[string]*Accumulator
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{runs: map[string]*Accumulator{}}
}

// Add registers an accumulator under its run id (replacing any previous
// entry).
func (r *Registry) Add(a *Accumulator) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runs[a.id] = a
}

// Get returns the accumulator for a run id.
func (r *Registry) Get(id string) (*Accumulator, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.runs[id]
	return a, ok
}

// Remove drops a run's accumulator (on cache eviction).
func (r *Registry) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.runs, id)
}

// Views renders a snapshot of every registered run, sorted by run id so
// the Prometheus exposition is stable scrape to scrape.
func (r *Registry) Views() []View {
	r.mu.Lock()
	accs := make([]*Accumulator, 0, len(r.runs))
	for _, a := range r.runs {
		accs = append(accs, a)
	}
	r.mu.Unlock()
	sort.Slice(accs, func(i, j int) bool { return accs[i].id < accs[j].id })
	out := make([]View, len(accs))
	for i, a := range accs {
		out[i] = a.View()
	}
	return out
}
