package sim

import (
	"context"
	"testing"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/metrics"
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/rat"
)

// legacyScalars recomputes the pre-metrics Result scalars with the
// engine's historical logic, as an independent observer: occupancy maxima
// sampled at L_t and post-forwarding via OnAccept/OnForward bookkeeping
// is impossible from outside, so it re-derives latency from moves and
// occupancy from OnRoundEnd views plus a paired reference run.
type legacyLatency struct {
	NopObserver
	total, max int
}

func (l *legacyLatency) OnForward(round int, moves []Move) {
	for _, m := range moves {
		if m.Delivered {
			lat := round - m.Pkt.Inject
			l.total += lat
			if lat > l.max {
				l.max = lat
			}
		}
	}
}

// TestDefaultMetricsShimEquivalence is the acceptance gate: a run with no
// WithMetrics option reports the default {max_load, latency} collector
// set, and every historical scalar field matches both the collectors'
// summaries and an independent recomputation.
func TestDefaultMetricsShimEquivalence(t *testing.T) {
	nw := network.MustPath(16)
	adv, err := adversary.NewRandom(nw, adversary.Bound{Rho: rat.New(1, 2), Sigma: 3}, nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	lat := &legacyLatency{}
	res, err := Run(context.Background(), NewSpec(nw, &greedyOldest{}, adv, 400, WithObservers(lat)))
	if err != nil {
		t.Fatal(err)
	}

	if got := len(res.Metrics); got != 2 {
		t.Fatalf("default Metrics has %d entries (%v), want 2", got, res.Metrics)
	}
	ml, ok := res.Metrics[metrics.NameMaxLoad]
	if !ok {
		t.Fatal("default Metrics lacks max_load")
	}
	lt, ok := res.Metrics[metrics.NameLatency]
	if !ok {
		t.Fatal("default Metrics lacks latency")
	}

	// Field-for-field: the collector summaries ARE the scalar fields.
	if ml.Scalar("max_load") != res.MaxLoad ||
		ml.Scalar("max_load_node") != int(res.MaxLoadNode) ||
		ml.Scalar("max_load_round") != res.MaxLoadRound ||
		ml.Scalar("max_physical_load") != res.MaxPhysicalLoad {
		t.Errorf("max_load summary %v disagrees with fields %d/%d/%d/%d",
			ml.Scalars, res.MaxLoad, res.MaxLoadNode, res.MaxLoadRound, res.MaxPhysicalLoad)
	}
	if lt.Scalar("sum") != res.TotalLatency || lt.Scalar("max") != res.MaxLatency ||
		lt.Scalar("count") != res.Delivered {
		t.Errorf("latency summary %v disagrees with fields total=%d max=%d delivered=%d",
			lt.Scalars, res.TotalLatency, res.MaxLatency, res.Delivered)
	}

	// Independent recomputation of the latency scalars.
	if lat.total != res.TotalLatency || lat.max != res.MaxLatency {
		t.Errorf("legacy recomputation total=%d max=%d, result says %d/%d",
			lat.total, lat.max, res.TotalLatency, res.MaxLatency)
	}
}

// TestSelectedMetricsPreserveScalars verifies the historical fields stay
// sourced even when the selected set omits max_load/latency, and that
// selecting them reuses the same instances (no double counting).
func TestSelectedMetricsPreserveScalars(t *testing.T) {
	nw := network.MustPath(12)
	spec := func(opts ...Option) Spec {
		adv, err := adversary.NewRandom(nw, adversary.Bound{Rho: rat.One, Sigma: 2}, nil, 5)
		if err != nil {
			t.Fatal(err)
		}
		return NewSpec(nw, &greedyOldest{}, adv, 200, opts...)
	}
	base, err := Run(context.Background(), spec())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Run(context.Background(), spec(WithMetrics(metrics.NewLoadHist())))
	if err != nil {
		t.Fatal(err)
	}
	if sel.MaxLoad != base.MaxLoad || sel.MaxLoadNode != base.MaxLoadNode ||
		sel.MaxLoadRound != base.MaxLoadRound || sel.MaxPhysicalLoad != base.MaxPhysicalLoad ||
		sel.TotalLatency != base.TotalLatency || sel.MaxLatency != base.MaxLatency ||
		sel.Injected != base.Injected || sel.Delivered != base.Delivered {
		t.Errorf("scalar fields changed under WithMetrics: %+v vs %+v", sel, base)
	}
	if len(sel.Metrics) != 1 || sel.Metrics[metrics.NameLoadHist].Name != metrics.NameLoadHist {
		t.Errorf("selected Metrics = %v, want just load_hist", sel.Metrics)
	}

	both, err := Run(context.Background(), spec(WithMetrics(metrics.NewMaxLoad(), metrics.NewLatency())))
	if err != nil {
		t.Fatal(err)
	}
	if both.Metrics[metrics.NameMaxLoad].Scalar("max_load") != base.MaxLoad {
		t.Errorf("explicitly selected max_load disagrees: %v vs %d",
			both.Metrics[metrics.NameMaxLoad].Scalars, base.MaxLoad)
	}
	if both.Metrics[metrics.NameLatency].Scalar("count") != base.Delivered {
		t.Errorf("explicitly selected latency disagrees: %v vs %d",
			both.Metrics[metrics.NameLatency].Scalars, base.Delivered)
	}
}

// TestFullCollectorSetConsistency cross-checks every built-in collector
// against the engine's own accounting on one run.
func TestFullCollectorSetConsistency(t *testing.T) {
	nw := network.MustPath(10)
	adv, err := adversary.NewRandom(nw, adversary.Bound{Rho: rat.One, Sigma: 2}, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 300
	res, err := Run(context.Background(), NewSpec(nw, &greedyOldest{}, adv, rounds,
		WithMetrics(metrics.NewMaxLoad(), metrics.NewLoadSeries(64, 16), metrics.NewLoadHist(),
			metrics.NewLatency(), metrics.NewLinkUtilSeries(64, 16))))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) != 5 {
		t.Fatalf("Metrics has %d entries: %v", len(res.Metrics), metrics.SortedNames(res.Metrics))
	}

	ls := res.Metrics[metrics.NameLoadSeries]
	maxSeries, ok := ls.SeriesByKey("max")
	if !ok || maxSeries.Rounds != rounds {
		t.Fatalf("load_series max covers %d rounds, want %d", maxSeries.Rounds, rounds)
	}
	peak := 0
	for _, v := range maxSeries.Values {
		if v > peak {
			peak = v
		}
	}
	if peak != res.MaxLoad {
		t.Errorf("load_series peak %d != MaxLoad %d", peak, res.MaxLoad)
	}

	lh := res.Metrics[metrics.NameLoadHist]
	if lh.Hist == nil || lh.Hist.Count != rounds*nw.Len() {
		t.Errorf("load_hist count = %+v, want %d samples", lh.Hist, rounds*nw.Len())
	}

	lu := res.Metrics[metrics.NameLinkUtilSeries]
	totalForwards := 0
	for _, f := range res.PerLinkForwards {
		totalForwards += f
	}
	if lu.Scalar("total_forwards") != totalForwards {
		t.Errorf("link_util total_forwards = %d, engine counted %d", lu.Scalar("total_forwards"), totalForwards)
	}
	busiest, _, utilOK := res.MaxLinkUtilization()
	if utilOK && lu.Scalar("busiest_link") != int(busiest) {
		t.Errorf("busiest_link = %d, MaxLinkUtilization says %d", lu.Scalar("busiest_link"), busiest)
	}
	fw, ok := lu.SeriesByKey("forwards")
	if !ok {
		t.Fatal("link_util_series lacks the forwards series")
	}
	sum := 0
	for _, v := range fw.Values {
		sum += v
	}
	if sum != totalForwards {
		t.Errorf("forwards series sums to %d, want %d (AggSum downsampling must preserve totals)", sum, totalForwards)
	}
}

// TestLoadSeriesBoundedAtMillionRounds pins the acceptance criterion
// end to end: a 10⁶-round engine run with load_series selected reports a
// series whose length (and the collector's memory) is bounded by the
// configured cap, while still covering every round.
func TestLoadSeriesBoundedAtMillionRounds(t *testing.T) {
	const rounds = 1_000_000
	const capPoints, tailCap = 512, 64
	nw := network.MustPath(2)
	adv := adversary.NewStream(fullRate(1), 0, 1)
	res, err := Run(context.Background(), NewSpec(nw, &greedyOldest{}, adv, rounds,
		WithMetrics(metrics.NewLoadSeries(capPoints, tailCap))))
	if err != nil {
		t.Fatal(err)
	}
	ls := res.Metrics[metrics.NameLoadSeries]
	for _, key := range []string{"max", "total"} {
		s, ok := ls.SeriesByKey(key)
		if !ok {
			t.Fatalf("load_series lacks %q", key)
		}
		if s.Rounds != rounds {
			t.Errorf("%s covers %d rounds, want %d", key, s.Rounds, rounds)
		}
		if len(s.Values) > capPoints+1 {
			t.Errorf("%s carries %d points, cap is %d", key, len(s.Values), capPoints)
		}
		if len(s.Tail) != tailCap {
			t.Errorf("%s tail is %d rounds, want %d", key, len(s.Tail), tailCap)
		}
		if s.Stride*len(s.Values) < rounds {
			t.Errorf("%s stride %d × %d points does not cover the run", key, s.Stride, len(s.Values))
		}
	}
}

// orderingObserver records the full event sequence for the ordering
// contract test.
type orderingObserver struct {
	events []string
	rounds []int
}

func (o *orderingObserver) OnInject(round int, pkts []packet.Packet) { o.add("inject", round) }
func (o *orderingObserver) OnAccept(round int, pkts []packet.Packet) { o.add("accept", round) }
func (o *orderingObserver) OnForward(round int, moves []Move)        { o.add("forward", round) }
func (o *orderingObserver) OnRoundEnd(round int, v View)             { o.add("roundend", round) }
func (o *orderingObserver) add(ev string, round int) {
	o.events = append(o.events, ev)
	o.rounds = append(o.rounds, round)
}

// TestObserverOrderingContract pins the per-round hook order the metrics
// collectors depend on: OnInject → (OnAccept) → OnForward → OnRoundEnd,
// with rounds strictly increasing — for unphased and phased protocols
// alike. For a phased protocol, OnAccept fires only at phase boundaries.
func TestObserverOrderingContract(t *testing.T) {
	for _, tc := range []struct {
		name  string
		proto Protocol
		phase int
	}{
		{"unphased", &greedyOldest{}, 1},
		{"phased-3", &phasedGreedy{greedyOldest{phase: 3}}, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nw := network.MustPath(6)
			adv := adversary.NewStream(fullRate(2), 0, 5)
			obs := &orderingObserver{}
			const rounds = 12
			if _, err := Run(context.Background(), NewSpec(nw, tc.proto, adv, rounds, WithObservers(obs))); err != nil {
				t.Fatal(err)
			}
			round, state := -1, "roundend" // before everything
			accepts := 0
			for i, ev := range obs.events {
				r := obs.rounds[i]
				switch ev {
				case "inject":
					if state != "roundend" || r != round+1 {
						t.Fatalf("event %d: inject(%d) after %s(%d)", i, r, state, round)
					}
					round = r
				case "accept":
					if state != "inject" || r != round {
						t.Fatalf("event %d: accept(%d) after %s(%d)", i, r, state, round)
					}
					if r%tc.phase != 0 {
						t.Fatalf("accept at round %d, not a phase-%d boundary", r, tc.phase)
					}
					accepts++
				case "forward":
					if (state != "inject" && state != "accept") || r != round {
						t.Fatalf("event %d: forward(%d) after %s(%d)", i, r, state, round)
					}
				case "roundend":
					if state != "forward" || r != round {
						t.Fatalf("event %d: roundend(%d) after %s(%d)", i, r, state, round)
					}
				}
				state = ev
			}
			if round != rounds-1 || state != "roundend" {
				t.Fatalf("run ended at %s(%d), want roundend(%d)", state, round, rounds-1)
			}
			if tc.phase > 1 {
				// Injections flow every round; acceptance only at
				// boundaries 0, ℓ, 2ℓ, ….
				if want := (rounds + tc.phase - 1) / tc.phase; accepts != want {
					t.Errorf("%d accept events, want %d phase boundaries", accepts, want)
				}
			} else if accepts != rounds {
				t.Errorf("%d accept events, want one per round", accepts)
			}
		})
	}
}

// TestMaxLinkUtilizationTieBreak pins the documented tie-break: equal
// utilizations resolve to the lowest NodeID.
func TestMaxLinkUtilizationTieBreak(t *testing.T) {
	res := Result{
		PerLinkForwards: []int{5, 5, 3},
		linkCapacity:    []int{10, 10, 10},
	}
	v, util, ok := res.MaxLinkUtilization()
	if !ok || v != 0 || util != 0.5 {
		t.Errorf("MaxLinkUtilization = %d,%v,%v; want node 0 at 0.5", v, util, ok)
	}
}

// TestMaxLinkUtilizationAllSinks covers the degenerate all-sink forest:
// no node has an outgoing link, so no utilization exists.
func TestMaxLinkUtilizationAllSinks(t *testing.T) {
	nw, err := network.NewForest([]network.NodeID{network.None, network.None, network.None})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), NewSpec(nw, &greedyOldest{}, adversary.Empty{}, 5,
		WithMetrics(metrics.NewLinkUtilSeries(16, 4))))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := res.MaxLinkUtilization(); ok {
		t.Error("MaxLinkUtilization reports a busiest link on an all-sink forest")
	}
	if _, ok := res.LinkUtilization(0); ok {
		t.Error("LinkUtilization ok for a sink")
	}
	if got := res.Metrics[metrics.NameLinkUtilSeries].Scalar("busiest_link"); got != -1 {
		t.Errorf("link_util busiest_link = %d, want -1", got)
	}
}
