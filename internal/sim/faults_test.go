package sim

import (
	"context"
	"reflect"
	"testing"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/faults"
	"smallbuffers/internal/metrics"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
)

// faultSpec builds a run of greedyOldest against random traffic on a
// 12-node path, optionally under a fault model.
func faultSpec(t *testing.T, fm faults.Model, extra ...Option) Spec {
	t.Helper()
	nw := network.MustPath(12)
	adv, err := adversary.NewRandom(nw, adversary.Bound{Rho: rat.New(1, 2), Sigma: 2}, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	opts := extra
	if fm != nil {
		if err := fm.Reset(nw, 7); err != nil {
			t.Fatal(err)
		}
		opts = append(opts, WithFaults(fm))
	}
	return NewSpec(nw, &greedyOldest{}, adv, 300, opts...)
}

// TestZeroFaultEqualsNoFault is the acceptance gate at the engine level:
// attaching a zero-probability drop model changes nothing — not one
// scalar, not one metric summary — relative to no fault model at all.
func TestZeroFaultEqualsNoFault(t *testing.T) {
	base, err := Run(context.Background(), faultSpec(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	zero, err := faults.NewDrop(rat.New(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := Run(context.Background(), faultSpec(t, zero))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, faulted) {
		t.Fatalf("p=0 drop model perturbed the run:\nbase:    %+v\nfaulted: %+v", base, faulted)
	}
}

// TestDropConservation checks the packet ledger under real loss: every
// injected packet is delivered, dropped, or residual, and the delivery
// collector agrees with the Result scalars.
func TestDropConservation(t *testing.T) {
	dm, err := faults.NewDrop(rat.New(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), faultSpec(t, dm,
		WithMetrics(metrics.NewDelivery(), metrics.NewGoodput(64, 16), metrics.NewDropRate(64, 16))))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("p=1/5 over 300 rounds dropped nothing")
	}
	if res.Injected != res.Delivered+res.Dropped+res.Residual {
		t.Fatalf("ledger violated: injected %d ≠ delivered %d + dropped %d + residual %d",
			res.Injected, res.Delivered, res.Dropped, res.Residual)
	}
	del := res.Metrics[metrics.NameDelivery]
	for key, want := range map[string]int{
		"injected":  res.Injected,
		"delivered": res.Delivered,
		"dropped":   res.Dropped,
		"in_flight": res.Residual,
	} {
		if got := del.Scalar(key); got != want {
			t.Errorf("delivery.%s = %d, want %d", key, got, want)
		}
	}
	gp := res.Metrics[metrics.NameGoodput]
	if got := gp.Scalar("delivered"); got != res.Delivered {
		t.Errorf("goodput.delivered = %d, want %d", got, res.Delivered)
	}
	if got := gp.Scalar("injected"); got != res.Injected {
		t.Errorf("goodput.injected = %d, want %d", got, res.Injected)
	}
	dr := res.Metrics[metrics.NameDropRate]
	if got := dr.Scalar("dropped"); got != res.Dropped {
		t.Errorf("drop_rate.dropped = %d, want %d", got, res.Dropped)
	}
	// Dropped packets consume their link: total forwards covers them.
	totalForwards := 0
	for _, f := range res.PerLinkForwards {
		totalForwards += f
	}
	if got := dr.Scalar("forwards"); got != totalForwards {
		t.Errorf("drop_rate.forwards = %d, want %d", got, totalForwards)
	}
}

// TestNodeCrashNullifiesForwards checks that a crashed node forwards
// nothing during its window (its link counter freezes) and that the run
// still makes progress elsewhere.
func TestNodeCrashNullifiesForwards(t *testing.T) {
	nw := network.MustPath(6)
	adv, err := adversary.NewRandom(nw, adversary.Bound{Rho: rat.New(1, 2), Sigma: 2}, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	crash, err := faults.NewNodeCrash(2, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := crash.Reset(nw, 3); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(NewSpec(nw, &greedyOldest{}, adv, 50, WithFaults(crash)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.PerLinkForwards[2] != 0 {
		t.Fatalf("crashed node forwarded %d packets during its outage", res.PerLinkForwards[2])
	}
	if res.Dropped != 0 {
		t.Fatalf("node_crash dropped %d packets in transit", res.Dropped)
	}
	// The node upstream of the crash keeps forwarding into it.
	if res.PerLinkForwards[1] == 0 {
		t.Fatal("upstream of the crashed node forwarded nothing")
	}
}

// TestFaultedRunIsDeterministic replays the same faulted spec and demands
// identical Results, including metric summaries.
func TestFaultedRunIsDeterministic(t *testing.T) {
	run := func() Result {
		fm, err := faults.NewLinkFlap(rat.New(1, 3), 16, 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), faultSpec(t, fm,
			WithMetrics(metrics.NewDelivery(), metrics.NewDropRate(64, 16))))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same faulted spec produced different results:\n%+v\n%+v", a, b)
	}
}
