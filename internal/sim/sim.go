// Package sim implements the synchronous execution model of §2: rounds
// consisting of an injection step followed by a forwarding step, with at
// most one packet forwarded over each link per round.
//
// The engine owns all buffers; protocols are centralized deciders that
// observe the full configuration through the read-only View and return a
// set of forwarding decisions. The engine validates each decision set
// against the capacity constraint (at most one packet leaves each node per
// round — on in-forests each node has one outgoing link), applies all moves
// simultaneously, and delivers packets that reach their destination.
//
// Buffer occupancies are sampled at the paper's measurement point, L_t:
// after the injection step and before the forwarding step, as well as after
// forwarding, and the maxima over both sample points are reported.
package sim

import (
	"fmt"
	"sort"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/buffer"
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
)

// View is the read-only interface protocols use to observe the
// configuration.
type View interface {
	// Round returns the current (0-based) round number.
	Round() int
	// Net returns the topology.
	Net() *network.Network
	// Packets returns the packets buffered at v in arrival order (LIFO
	// pseudo-buffer order is derived from this). The slice is shared;
	// callers must not modify it.
	Packets(v network.NodeID) []packet.Packet
	// Load returns |L(v)|, the number of packets buffered at v.
	Load(v network.NodeID) int
}

// Forward is one forwarding decision: node From sends the identified packet
// over its unique outgoing link.
type Forward struct {
	From network.NodeID
	Pkt  packet.ID
}

// Move is an applied forwarding decision, as reported to observers.
type Move struct {
	Pkt       packet.Packet
	From, To  network.NodeID
	Delivered bool
}

// Protocol is a centralized online forwarding algorithm.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// Attach is called once before the run with the topology, the declared
	// demand bound, and an optional destination hint (nil means unknown).
	Attach(nw *network.Network, bound adversary.Bound, dests []network.NodeID) error
	// Decide returns the forwarding decisions for the current round. The
	// engine validates feasibility; an infeasible decision aborts the run
	// with an error.
	Decide(v View) ([]Forward, error)
}

// PhasedAcceptor is an optional Protocol interface. A protocol with phase
// length ℓ > 1 plays against the ℓ-reduction of the adversary
// (Definition 2.4): packets injected at round u become visible at round
// ⌈u/ℓ⌉·ℓ. The engine stages injections accordingly; staged packets are
// counted in the physical occupancy but not in the visible one.
type PhasedAcceptor interface {
	PhaseLength() int
}

// Observer receives execution events. Implementations embed NopObserver to
// stay source-compatible as hooks are added.
type Observer interface {
	// OnInject fires after the injection step with the packets injected
	// this round (possibly staged, not yet visible).
	OnInject(round int, pkts []packet.Packet)
	// OnAccept fires when packets become visible to the protocol (for
	// unphased protocols this is every round, right after OnInject).
	OnAccept(round int, pkts []packet.Packet)
	// OnForward fires after the forwarding step with the applied moves.
	OnForward(round int, moves []Move)
	// OnRoundEnd fires at the end of each round with the post-forwarding
	// configuration.
	OnRoundEnd(round int, v View)
}

// NopObserver is an Observer with no-op hooks, for embedding.
type NopObserver struct{}

// OnInject implements Observer.
func (NopObserver) OnInject(int, []packet.Packet) {}

// OnAccept implements Observer.
func (NopObserver) OnAccept(int, []packet.Packet) {}

// OnForward implements Observer.
func (NopObserver) OnForward(int, []Move) {}

// OnRoundEnd implements Observer.
func (NopObserver) OnRoundEnd(int, View) {}

// Invariant is a per-round predicate checked after the forwarding step;
// returning an error aborts the run. Invariants power the bound assertions
// in tests and experiments.
type Invariant func(v View) error

// Config describes one simulation run.
type Config struct {
	Net       *network.Network
	Protocol  Protocol
	Adversary adversary.Adversary
	Rounds    int

	// VerifyAdversary re-checks every injection against the adversary's
	// declared (ρ,σ) bound; a violation aborts the run. Crafted adversaries
	// are pre-verified, so this defaults to off.
	VerifyAdversary bool

	Observers  []Observer
	Invariants []Invariant
}

// Result summarizes a run.
type Result struct {
	Protocol string
	Rounds   int

	// MaxLoad is the maximum visible buffer occupancy over all rounds and
	// nodes, sampled both at L_t (post-injection) and post-forwarding.
	MaxLoad int
	// MaxLoadNode and MaxLoadRound locate the first maximum.
	MaxLoadNode  network.NodeID
	MaxLoadRound int
	// MaxPhysicalLoad additionally counts packets staged by phased
	// acceptance (equals MaxLoad for unphased protocols).
	MaxPhysicalLoad int
	// PerNodeMax[v] is the maximum visible occupancy seen at v.
	PerNodeMax []int

	Injected  int
	Delivered int
	// Residual is Injected − Delivered at the end of the run.
	Residual int

	// MaxLatency and TotalLatency aggregate delivery times (delivery round
	// − injection round) over delivered packets.
	MaxLatency   int
	TotalLatency int
}

// AvgLatency returns the mean delivery latency, or 0 with ok=false if
// nothing was delivered.
func (r Result) AvgLatency() (float64, bool) {
	if r.Delivered == 0 {
		return 0, false
	}
	return float64(r.TotalLatency) / float64(r.Delivered), true
}

// Engine executes one run. It implements View.
type Engine struct {
	cfg      Config
	buffers  []buffer.Buffer
	staged   []([]packet.Packet) // per-node staging for phased acceptance
	stagedN  int
	phaseLen int
	verifier *adversary.Verifier
	round    int
	nextID   packet.ID
	res      Result
}

var _ View = (*Engine)(nil)

// NewEngine validates the configuration and prepares a run.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("sim: nil network")
	}
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("sim: nil protocol")
	}
	if cfg.Adversary == nil {
		return nil, fmt.Errorf("sim: nil adversary")
	}
	if cfg.Rounds < 0 {
		return nil, fmt.Errorf("sim: negative round count %d", cfg.Rounds)
	}
	n := cfg.Net.Len()
	e := &Engine{
		cfg:     cfg,
		buffers: make([]buffer.Buffer, n),
		staged:  make([][]packet.Packet, n),
		res: Result{
			Protocol:   cfg.Protocol.Name(),
			Rounds:     cfg.Rounds,
			PerNodeMax: make([]int, n),
		},
	}
	if pa, ok := cfg.Protocol.(PhasedAcceptor); ok {
		e.phaseLen = pa.PhaseLength()
		if e.phaseLen < 1 {
			return nil, fmt.Errorf("sim: protocol %q reports phase length %d < 1", cfg.Protocol.Name(), e.phaseLen)
		}
	} else {
		e.phaseLen = 1
	}
	var dests []network.NodeID
	if h, ok := cfg.Adversary.(adversary.DestinationHinter); ok {
		dests = h.Destinations()
	}
	if err := cfg.Protocol.Attach(cfg.Net, cfg.Adversary.Bound(), dests); err != nil {
		return nil, fmt.Errorf("sim: protocol attach: %w", err)
	}
	if cfg.VerifyAdversary {
		ver, err := adversary.NewVerifier(cfg.Net, cfg.Adversary.Bound())
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		e.verifier = ver
	}
	return e, nil
}

// Round implements View.
func (e *Engine) Round() int { return e.round }

// Net implements View.
func (e *Engine) Net() *network.Network { return e.cfg.Net }

// Packets implements View.
func (e *Engine) Packets(v network.NodeID) []packet.Packet { return e.buffers[v].Packets() }

// Load implements View.
func (e *Engine) Load(v network.NodeID) int { return e.buffers[v].Len() }

// Staged returns the number of packets staged (injected but not yet
// accepted) at v. Zero for unphased protocols.
func (e *Engine) Staged(v network.NodeID) int { return len(e.staged[v]) }

// Run executes the configured number of rounds and returns the summary.
// The engine is single-use.
func (e *Engine) Run() (Result, error) {
	for t := 0; t < e.cfg.Rounds; t++ {
		if err := e.step(t); err != nil {
			return e.res, fmt.Errorf("round %d: %w", t, err)
		}
	}
	e.res.Residual = e.res.Injected - e.res.Delivered
	return e.res, nil
}

// step runs one full round: injection, acceptance, sampling, forwarding.
func (e *Engine) step(t int) error {
	e.round = t

	// Injection step. Adaptive adversaries observe the previous round's
	// post-forwarding occupancies.
	var injs []packet.Injection
	if ad, ok := e.cfg.Adversary.(adversary.Adaptive); ok {
		injs = ad.InjectAdaptive(t, func(v network.NodeID) int { return e.buffers[v].Len() })
	} else {
		injs = e.cfg.Adversary.Inject(t)
	}
	if e.verifier != nil {
		if err := e.verifier.Check(t, injs); err != nil {
			return err
		}
	}
	newPkts := make([]packet.Packet, 0, len(injs))
	for _, in := range injs {
		if err := in.Validate(e.cfg.Net); err != nil {
			return err
		}
		p := packet.Packet{ID: e.nextID, Src: in.Src, Dst: in.Dst, Inject: t, Arrived: t}
		e.nextID++
		newPkts = append(newPkts, p)
	}
	e.res.Injected += len(newPkts)
	for _, ob := range e.cfg.Observers {
		ob.OnInject(t, newPkts)
	}

	// Acceptance: phased protocols see injections only at phase boundaries.
	var accepted []packet.Packet
	if e.phaseLen == 1 {
		accepted = newPkts
	} else {
		for _, p := range newPkts {
			e.staged[p.Src] = append(e.staged[p.Src], p)
			e.stagedN++
		}
		if t%e.phaseLen == 0 {
			for v := range e.staged {
				accepted = append(accepted, e.staged[v]...)
				e.staged[v] = e.staged[v][:0]
			}
			e.stagedN = 0
			// Deterministic acceptance order: by packet ID.
			sort.Slice(accepted, func(i, j int) bool { return accepted[i].ID < accepted[j].ID })
		}
	}
	for _, p := range accepted {
		p.Arrived = t
		e.buffers[p.Src].Add(p)
	}
	if len(accepted) > 0 {
		for _, ob := range e.cfg.Observers {
			ob.OnAccept(t, accepted)
		}
	}

	// Sample L_t (post-injection, pre-forwarding).
	e.sampleLoads(t)

	// Forwarding step.
	decisions, err := e.cfg.Protocol.Decide(e)
	if err != nil {
		return fmt.Errorf("protocol %q: %w", e.cfg.Protocol.Name(), err)
	}
	moves, err := e.apply(t, decisions)
	if err != nil {
		return err
	}
	for _, ob := range e.cfg.Observers {
		ob.OnForward(t, moves)
	}

	// Sample post-forwarding occupancy too (receivers that did not forward
	// can peak here).
	e.sampleLoads(t)

	for _, inv := range e.cfg.Invariants {
		if err := inv(e); err != nil {
			return fmt.Errorf("invariant: %w", err)
		}
	}
	for _, ob := range e.cfg.Observers {
		ob.OnRoundEnd(t, e)
	}
	return nil
}

// apply validates and executes a decision set simultaneously.
func (e *Engine) apply(t int, decisions []Forward) ([]Move, error) {
	seen := make(map[network.NodeID]bool, len(decisions))
	moves := make([]Move, 0, len(decisions))
	// Remove phase: validate and detach all forwarded packets first so the
	// moves are simultaneous.
	for _, d := range decisions {
		if !e.cfg.Net.Valid(d.From) {
			return nil, fmt.Errorf("sim: decision from invalid node %d", d.From)
		}
		if seen[d.From] {
			return nil, fmt.Errorf("sim: node %d forwards twice in one round (link capacity is 1)", d.From)
		}
		seen[d.From] = true
		to := e.cfg.Net.Next(d.From)
		if to == network.None {
			return nil, fmt.Errorf("sim: sink node %d cannot forward", d.From)
		}
		p, err := e.buffers[d.From].Remove(d.Pkt)
		if err != nil {
			return nil, fmt.Errorf("sim: node %d: %w", d.From, err)
		}
		moves = append(moves, Move{Pkt: p, From: d.From, To: to, Delivered: to == p.Dst})
	}
	// Deterministic arrival order: by source node, then packet ID.
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].From != moves[j].From {
			return moves[i].From < moves[j].From
		}
		return moves[i].Pkt.ID < moves[j].Pkt.ID
	})
	// Insert phase.
	for i := range moves {
		m := &moves[i]
		if m.Delivered {
			e.res.Delivered++
			lat := t - m.Pkt.Inject
			e.res.TotalLatency += lat
			if lat > e.res.MaxLatency {
				e.res.MaxLatency = lat
			}
			continue
		}
		p := m.Pkt
		p.Arrived = t + 1 // available at the receiver from the next round
		e.buffers[m.To].Add(p)
	}
	return moves, nil
}

// sampleLoads folds the current occupancies into the result maxima.
func (e *Engine) sampleLoads(t int) {
	for v := range e.buffers {
		load := e.buffers[v].Len()
		if load > e.res.PerNodeMax[v] {
			e.res.PerNodeMax[v] = load
		}
		if load > e.res.MaxLoad {
			e.res.MaxLoad = load
			e.res.MaxLoadNode = network.NodeID(v)
			e.res.MaxLoadRound = t
		}
		if phys := load + len(e.staged[v]); phys > e.res.MaxPhysicalLoad {
			e.res.MaxPhysicalLoad = phys
		}
	}
}

// Run is a convenience wrapper: build an engine from cfg and execute it.
func Run(cfg Config) (Result, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return Result{}, err
	}
	return e.Run()
}
