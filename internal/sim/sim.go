// Package sim implements the synchronous execution model of §2: rounds
// consisting of an injection step followed by a forwarding step, with at
// most B(v) packets forwarded over each link per round, where B(v) is the
// link's configured bandwidth (the paper's model is B ≡ 1, the topology
// default).
//
// The engine owns all buffers; protocols are centralized deciders that
// observe the full configuration through the read-only View and return a
// set of forwarding decisions. The engine validates each decision set
// against the capacity constraint (at most B(v) packets leave node v per
// round — on in-forests each node has one outgoing link), applies all moves
// simultaneously, and delivers packets that reach their destination.
//
// Buffer occupancies are sampled at the paper's measurement point, L_t:
// after the injection step and before the forwarding step, as well as after
// forwarding, and the maxima over both sample points are reported.
package sim

import (
	"context"
	"fmt"
	"sort"
	"time"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/buffer"
	"smallbuffers/internal/metrics"
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
)

// View is the read-only interface protocols use to observe the
// configuration.
type View interface {
	// Round returns the current (0-based) round number.
	Round() int
	// Net returns the topology.
	Net() *network.Network
	// Packets returns the packets buffered at v in arrival order (LIFO
	// pseudo-buffer order is derived from this). The slice is shared;
	// callers must not modify it.
	Packets(v network.NodeID) []packet.Packet
	// Load returns |L(v)|, the number of packets buffered at v.
	Load(v network.NodeID) int
	// Bandwidth returns B(v), the number of packets v may forward this
	// round (the capacity of its outgoing link).
	Bandwidth(v network.NodeID) int
}

// Forward is one forwarding decision: node From sends the identified packet
// over its unique outgoing link.
type Forward struct {
	From network.NodeID
	Pkt  packet.ID
}

// Move is an applied forwarding decision, as reported to observers.
type Move struct {
	Pkt       packet.Packet
	From, To  network.NodeID
	Delivered bool
	// Dropped marks a packet lost in transit by the run's fault model: it
	// left From's buffer and consumed the link, but never arrived
	// (Delivered is false even if To was its destination).
	Dropped bool
}

// Protocol is a centralized online forwarding algorithm.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// Attach is called once before the run with the topology, the declared
	// demand bound, and an optional destination hint (nil means unknown).
	Attach(nw *network.Network, bound adversary.Bound, dests []network.NodeID) error
	// Decide returns the forwarding decisions for the current round. The
	// engine validates feasibility; an infeasible decision aborts the run
	// with an error.
	Decide(v View) ([]Forward, error)
}

// PhasedAcceptor is an optional Protocol interface. A protocol with phase
// length ℓ > 1 plays against the ℓ-reduction of the adversary
// (Definition 2.4): packets injected at round u become visible at round
// ⌈u/ℓ⌉·ℓ. The engine stages injections accordingly; staged packets are
// counted in the physical occupancy but not in the visible one.
type PhasedAcceptor interface {
	PhaseLength() int
}

// Observer receives execution events. Implementations embed NopObserver to
// stay source-compatible as hooks are added.
type Observer interface {
	// OnInject fires after the injection step with the packets injected
	// this round (possibly staged, not yet visible).
	OnInject(round int, pkts []packet.Packet)
	// OnAccept fires when packets become visible to the protocol (for
	// unphased protocols this is every round, right after OnInject).
	OnAccept(round int, pkts []packet.Packet)
	// OnForward fires after the forwarding step with the applied moves.
	OnForward(round int, moves []Move)
	// OnRoundEnd fires at the end of each round with the post-forwarding
	// configuration.
	OnRoundEnd(round int, v View)
}

// NopObserver is an Observer with no-op hooks, for embedding.
type NopObserver struct{}

// OnInject implements Observer.
func (NopObserver) OnInject(int, []packet.Packet) {}

// OnAccept implements Observer.
func (NopObserver) OnAccept(int, []packet.Packet) {}

// OnForward implements Observer.
func (NopObserver) OnForward(int, []Move) {}

// OnRoundEnd implements Observer.
func (NopObserver) OnRoundEnd(int, View) {}

// Invariant is a per-round predicate checked after the forwarding step;
// returning an error aborts the run. Invariants power the bound assertions
// in tests and experiments.
type Invariant func(v View) error

// Config describes one simulation run as a struct literal.
//
// Deprecated: Config predates the context-aware API and supports neither
// cancellation nor engine reuse. Build a Spec with NewSpec and options and
// call Run(ctx, spec) instead. Config remains as a compatibility shim.
type Config struct {
	Net       *network.Network
	Protocol  Protocol
	Adversary adversary.Adversary
	Rounds    int

	// VerifyAdversary re-checks every injection against the adversary's
	// declared (ρ,σ) bound; a violation aborts the run. Crafted adversaries
	// are pre-verified, so this defaults to off.
	VerifyAdversary bool

	Observers  []Observer
	Invariants []Invariant
}

// Result summarizes a run. The historical scalar fields remain and are
// sourced from the always-on max_load and latency collectors (see
// internal/metrics); richer measurements land in Metrics, keyed by
// collector name.
type Result struct {
	Protocol string
	Rounds   int

	// MaxLoad is the maximum visible buffer occupancy over all rounds and
	// nodes, sampled both at L_t (post-injection) and post-forwarding.
	MaxLoad int
	// MaxLoadNode and MaxLoadRound locate the first maximum.
	MaxLoadNode  network.NodeID
	MaxLoadRound int
	// MaxPhysicalLoad additionally counts packets staged by phased
	// acceptance (equals MaxLoad for unphased protocols).
	MaxPhysicalLoad int
	// PerNodeMax[v] is the maximum visible occupancy seen at v.
	PerNodeMax []int

	Injected  int
	Delivered int
	// Dropped counts packets lost in transit by the run's fault model
	// (zero for the loss-free paper model).
	Dropped int
	// Residual is Injected − Delivered − Dropped at the end of the run:
	// the packets still buffered somewhere.
	Residual int

	// MaxLatency and TotalLatency aggregate delivery times (delivery round
	// − injection round) over delivered packets.
	MaxLatency   int
	TotalLatency int

	// PerLinkForwards[v] counts packets forwarded over the link out of v
	// during the run; with the run's bandwidths it yields per-link
	// utilization (see LinkUtilization).
	PerLinkForwards []int
	// Metrics holds the distilled summaries of the run's metric
	// collectors, keyed by collector name: the spec-selected set
	// (WithMetrics), or the default {max_load, latency} pair whose
	// scalars also populate the historical fields above.
	Metrics map[string]metrics.Summary
	// linkCapacity[v] = Rounds · B(v), the link's total transmission budget,
	// captured at Reset so utilization survives the Result being detached
	// from its engine.
	linkCapacity []int
}

// LinkUtilization returns the fraction of link v's total transmission
// budget (rounds × bandwidth) actually used, in [0, 1]. ok is false for
// sinks, zero-round runs, and Results not produced by the engine (the
// deprecated zero-value path).
func (r Result) LinkUtilization(v network.NodeID) (float64, bool) {
	if int(v) >= len(r.PerLinkForwards) || int(v) >= len(r.linkCapacity) || r.linkCapacity[v] == 0 {
		return 0, false
	}
	return float64(r.PerLinkForwards[v]) / float64(r.linkCapacity[v]), true
}

// MaxLinkUtilization returns the busiest link and its utilization, or
// ok=false when no link has a transmission budget at all (all-sink
// forests, zero-round runs, Results not produced by the engine). A run
// whose links have budget but forwarded nothing reports the first link
// at utilization 0 with ok=true.
//
// On equal utilization the lowest NodeID wins. The tie-break is part of
// the API contract — nodes are scanned in ascending order and only a
// strictly greater utilization displaces the incumbent — so on runs
// that forwarded at least one packet this names the same busiest link
// as the link_util_series collector (which reports busiest_link=-1 for
// all-idle runs instead).
func (r Result) MaxLinkUtilization() (network.NodeID, float64, bool) {
	best, arg, ok := 0.0, network.NodeID(0), false
	for v := range r.PerLinkForwards {
		if u, valid := r.LinkUtilization(network.NodeID(v)); valid && (!ok || u > best) {
			best, arg, ok = u, network.NodeID(v), true
		}
	}
	return arg, best, ok
}

// AvgLatency returns the mean delivery latency, or 0 with ok=false if
// nothing was delivered.
func (r Result) AvgLatency() (float64, bool) {
	if r.Delivered == 0 {
		return 0, false
	}
	return float64(r.TotalLatency) / float64(r.Delivered), true
}

// Engine executes runs. It implements View. An engine is reusable: after a
// run completes (or is cancelled), Reset rebinds it to a new Spec while
// retaining its buffer allocations, so sweeps can drive thousands of runs
// without churning the allocator. It can also be single-stepped with Step
// for incremental driving (debuggers, visualizers, interleaved engines).
//
// An Engine is not safe for concurrent use; run one engine per goroutine.
type Engine struct {
	spec     Spec
	buffers  []buffer.Buffer
	staged   []([]packet.Packet) // per-node staging for phased acceptance
	stagedN  int
	phaseLen int
	verifier *adversary.Verifier
	round    int
	nextID   packet.ID
	res      Result

	// collectors is every collector the engine drives this run: the
	// spec-selected set plus the internal max_load/latency pair when the
	// spec does not already carry them. reported is the subset whose
	// summaries populate Result.Metrics (the selected set, or the two
	// defaults). maxLoadC and latencyC source the historical Result
	// scalars.
	collectors  []metrics.Collector
	reported    []metrics.Collector
	maxLoadC    *metrics.MaxLoadCollector
	latencyC    *metrics.LatencyCollector
	moveScratch []metrics.Move
	injScratch  []metrics.Injection
}

var _ View = (*Engine)(nil)

// NewEngine validates the spec and prepares a run.
func NewEngine(spec Spec) (*Engine, error) {
	e := &Engine{}
	if err := e.Reset(spec); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset validates spec and rebinds the engine to it, discarding all state
// of the previous run. Buffer and staging storage is retained across
// resets, so repeated runs on same-sized topologies are allocation-light.
func (e *Engine) Reset(spec Spec) error {
	if spec.net == nil {
		return fmt.Errorf("sim: nil network")
	}
	if spec.protocol == nil {
		return fmt.Errorf("sim: nil protocol")
	}
	if spec.adversary == nil {
		return fmt.Errorf("sim: nil adversary")
	}
	if spec.rounds < 0 {
		return fmt.Errorf("sim: negative round count %d", spec.rounds)
	}
	phaseLen := 1
	if pa, ok := spec.protocol.(PhasedAcceptor); ok {
		phaseLen = pa.PhaseLength()
		if phaseLen < 1 {
			return fmt.Errorf("sim: protocol %q reports phase length %d < 1", spec.protocol.Name(), phaseLen)
		}
	}
	var dests []network.NodeID
	if h, ok := spec.adversary.(adversary.DestinationHinter); ok {
		dests = h.Destinations()
	}
	if err := spec.protocol.Attach(spec.net, spec.adversary.Bound(), dests); err != nil {
		return fmt.Errorf("sim: protocol attach: %w", err)
	}
	var verifier *adversary.Verifier
	if spec.verifyAdversary {
		ver, err := adversary.NewVerifier(spec.net, spec.adversary.Bound())
		if err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		verifier = ver
	}

	n := spec.net.Len()
	if cap(e.buffers) >= n {
		e.buffers = e.buffers[:n]
		for v := range e.buffers {
			e.buffers[v].Reset()
		}
	} else {
		e.buffers = make([]buffer.Buffer, n)
	}
	if cap(e.staged) >= n {
		e.staged = e.staged[:n]
		for v := range e.staged {
			e.staged[v] = e.staged[v][:0]
		}
	} else {
		e.staged = make([][]packet.Packet, n)
	}

	e.spec = spec
	e.phaseLen = phaseLen
	e.verifier = verifier
	e.stagedN = 0
	e.round = 0
	e.nextID = 0

	// Bind the run's metric collectors: the spec's set runs as-is, and
	// the engine adds internal max_load/latency collectors when the spec
	// does not already name them — the historical Result scalars are
	// sourced from those two, selected or not. Collectors are stateful
	// and single-run, so the spec must hand the engine fresh instances
	// (the scenario and harness layers always do).
	e.maxLoadC, e.latencyC = nil, nil
	e.collectors = append(e.collectors[:0], spec.collectors...)
	for _, c := range spec.collectors {
		switch x := c.(type) {
		case *metrics.MaxLoadCollector:
			if e.maxLoadC == nil {
				e.maxLoadC = x
			}
		case *metrics.LatencyCollector:
			if e.latencyC == nil {
				e.latencyC = x
			}
		}
	}
	if e.maxLoadC == nil {
		e.maxLoadC = metrics.NewMaxLoad()
		e.collectors = append(e.collectors, e.maxLoadC)
	}
	if e.latencyC == nil {
		e.latencyC = metrics.NewLatency()
		e.collectors = append(e.collectors, e.latencyC)
	}
	if len(spec.collectors) > 0 {
		e.reported = e.collectors[:len(spec.collectors)]
	} else {
		// Default metric set: the two collectors behind the historical
		// scalars.
		e.reported = e.collectors
	}

	// The link counters are handed out inside the returned Result, so
	// they cannot be recycled: fresh slices per run keep prior results
	// immutable.
	e.res = Result{
		Protocol:        spec.protocol.Name(),
		Rounds:          spec.rounds,
		PerLinkForwards: make([]int, n),
		linkCapacity:    make([]int, n),
	}
	for v := 0; v < n; v++ {
		if spec.net.Next(network.NodeID(v)) != network.None {
			e.res.linkCapacity[v] = spec.rounds * spec.net.Bandwidth(network.NodeID(v))
		}
	}
	return nil
}

// Round implements View.
func (e *Engine) Round() int { return e.round }

// Net implements View.
func (e *Engine) Net() *network.Network { return e.spec.net }

// Packets implements View.
func (e *Engine) Packets(v network.NodeID) []packet.Packet { return e.buffers[v].Packets() }

// Load implements View.
func (e *Engine) Load(v network.NodeID) int { return e.buffers[v].Len() }

// Bandwidth implements View.
func (e *Engine) Bandwidth(v network.NodeID) int { return e.spec.net.Bandwidth(v) }

// Staged returns the number of packets staged (injected but not yet
// accepted) at v. Zero for unphased protocols.
func (e *Engine) Staged(v network.NodeID) int { return len(e.staged[v]) }

// Step executes the next round and reports whether the run is complete.
// It is the incremental driving primitive underneath Run: callers that
// need to interleave engines, inspect state between rounds, or drive a
// visualizer call Step in their own loop.
func (e *Engine) Step() (done bool, err error) {
	if e.round >= e.spec.rounds {
		return true, nil
	}
	t := e.round
	if err := e.step(t); err != nil {
		return false, fmt.Errorf("round %d: %w", t, err)
	}
	e.round = t + 1
	return e.round >= e.spec.rounds, nil
}

// Result returns a snapshot of the run summary accumulated so far. After a
// completed Run it is the final summary; after a cancelled run it covers
// the rounds that executed. The snapshot is independent of the engine:
// resuming the run does not mutate previously returned Results.
//
// The historical scalar fields are sourced from the run's always-on
// max_load and latency collectors; Metrics carries the full summaries of
// the reported collector set.
func (e *Engine) Result() Result {
	res := e.res
	res.MaxLoad = e.maxLoadC.MaxLoad()
	res.MaxLoadNode = e.maxLoadC.MaxLoadNode()
	res.MaxLoadRound = e.maxLoadC.MaxLoadRound()
	res.MaxPhysicalLoad = e.maxLoadC.MaxPhysicalLoad()
	res.MaxLatency = e.latencyC.MaxLatency()
	res.TotalLatency = e.latencyC.TotalLatency()
	res.Residual = res.Injected - res.Delivered - res.Dropped
	res.PerNodeMax = make([]int, e.spec.net.Len())
	copy(res.PerNodeMax, e.maxLoadC.PerNodeMax())
	res.PerLinkForwards = append([]int(nil), e.res.PerLinkForwards...)
	res.Metrics = make(map[string]metrics.Summary, len(e.reported))
	for _, c := range e.reported {
		res.Metrics[c.Name()] = c.Summarize()
	}
	return res
}

// Run executes the remaining rounds and returns the summary. Cancellation
// is honored between rounds: when ctx is done (or the Spec's deadline
// expires), Run stops promptly and returns the partial Result together
// with the context's error.
func (e *Engine) Run(ctx context.Context) (Result, error) {
	var deadline time.Time
	if e.spec.deadline > 0 {
		//aqtlint:allow nowallclock -- WithDeadline is explicitly wall-clock cancellation; it aborts a run, never feeds a result or digest
		deadline = time.Now().Add(e.spec.deadline)
	}
	for {
		if err := ctx.Err(); err != nil {
			return e.Result(), err
		}
		//aqtlint:allow nowallclock -- deadline check mirrors the wall-clock WithDeadline option; aborting is observable only as an error
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return e.Result(), fmt.Errorf("sim: run deadline %v exhausted at round %d: %w",
				e.spec.deadline, e.round, context.DeadlineExceeded)
		}
		done, err := e.Step()
		if err != nil {
			return e.Result(), err
		}
		if done {
			return e.Result(), nil
		}
	}
}

// step runs one full round: injection, acceptance, sampling, forwarding.
func (e *Engine) step(t int) error {

	// Injection step. Adaptive adversaries observe the previous round's
	// post-forwarding occupancies.
	var injs []packet.Injection
	if ad, ok := e.spec.adversary.(adversary.Adaptive); ok {
		injs = ad.InjectAdaptive(t, func(v network.NodeID) int { return e.buffers[v].Len() })
	} else {
		injs = e.spec.adversary.Inject(t)
	}
	if e.verifier != nil {
		if err := e.verifier.Check(t, injs); err != nil {
			return err
		}
	}
	newPkts := make([]packet.Packet, 0, len(injs))
	for _, in := range injs {
		if err := in.Validate(e.spec.net); err != nil {
			return err
		}
		p := packet.Packet{ID: e.nextID, Src: in.Src, Dst: in.Dst, Inject: t, Arrived: t}
		e.nextID++
		newPkts = append(newPkts, p)
	}
	e.res.Injected += len(newPkts)
	if len(newPkts) > 0 {
		is := e.injScratch[:0]
		for _, p := range newPkts {
			is = append(is, metrics.Injection{Src: p.Src, Dst: p.Dst})
		}
		e.injScratch = is
		for _, c := range e.collectors {
			c.OnInject(t, is)
		}
	}
	for _, ob := range e.spec.observers {
		ob.OnInject(t, newPkts)
	}

	// Acceptance: phased protocols see injections only at phase boundaries.
	var accepted []packet.Packet
	if e.phaseLen == 1 {
		accepted = newPkts
	} else {
		for _, p := range newPkts {
			e.staged[p.Src] = append(e.staged[p.Src], p)
			e.stagedN++
		}
		if t%e.phaseLen == 0 {
			for v := range e.staged {
				accepted = append(accepted, e.staged[v]...)
				e.staged[v] = e.staged[v][:0]
			}
			e.stagedN = 0
			// Deterministic acceptance order: by packet ID.
			sort.Slice(accepted, func(i, j int) bool { return accepted[i].ID < accepted[j].ID })
		}
	}
	for _, p := range accepted {
		p.Arrived = t
		e.buffers[p.Src].Add(p)
	}
	if len(accepted) > 0 {
		for _, ob := range e.spec.observers {
			ob.OnAccept(t, accepted)
		}
	}

	// Sample L_t (post-injection, pre-forwarding).
	e.sample(t, metrics.LT)

	// Forwarding step.
	decisions, err := e.spec.protocol.Decide(e)
	if err != nil {
		return fmt.Errorf("protocol %q: %w", e.spec.protocol.Name(), err)
	}
	moves, err := e.apply(t, decisions)
	if err != nil {
		return err
	}
	if len(moves) > 0 {
		ms := e.moveScratch[:0]
		for _, m := range moves {
			ms = append(ms, metrics.Move{From: m.From, To: m.To, Delivered: m.Delivered, Dropped: m.Dropped, Inject: m.Pkt.Inject})
		}
		e.moveScratch = ms
		for _, c := range e.collectors {
			c.OnForward(t, ms)
		}
	}
	for _, ob := range e.spec.observers {
		ob.OnForward(t, moves)
	}

	// Sample post-forwarding occupancy too (receivers that did not forward
	// can peak here), then seal the round for the collectors.
	e.sample(t, metrics.PostForward)
	for _, c := range e.collectors {
		c.OnRoundEnd(t, e)
	}

	for _, inv := range e.spec.invariants {
		if err := inv(e); err != nil {
			return fmt.Errorf("invariant: %w", err)
		}
	}
	for _, ob := range e.spec.observers {
		ob.OnRoundEnd(t, e)
	}
	return nil
}

// apply validates and executes a decision set simultaneously. The run's
// fault model (if any) intercepts the forwarding step here: decisions
// over a downed link are validated but nullified (the packets stay
// buffered), and forwarded packets the model drops leave their buffer and
// consume the link without arriving.
func (e *Engine) apply(t int, decisions []Forward) ([]Move, error) {
	fm := e.spec.faults
	sent := make(map[network.NodeID]int, len(decisions))
	moves := make([]Move, 0, len(decisions))
	// Remove phase: validate and detach all forwarded packets first so the
	// moves are simultaneous. Validation is fault-blind — a decision must
	// be feasible against the configured bandwidths whether or not the
	// fault model then nullifies it, so protocols cannot observe faults
	// through the engine's error behavior.
	for _, d := range decisions {
		if !e.spec.net.Valid(d.From) {
			return nil, fmt.Errorf("sim: decision from invalid node %d", d.From)
		}
		if b := e.spec.net.Bandwidth(d.From); sent[d.From] >= b {
			return nil, fmt.Errorf("sim: round %d: node %d forwards %d packets but its link bandwidth is %d",
				t, d.From, sent[d.From]+1, b)
		}
		sent[d.From]++
		to := e.spec.net.Next(d.From)
		if to == network.None {
			return nil, fmt.Errorf("sim: sink node %d cannot forward", d.From)
		}
		if fm != nil && !fm.LinkUp(t, d.From) {
			// Downed link: the decision is nullified, not an error. The
			// packet must still exist (referencing a phantom packet is a
			// protocol bug regardless of link state) but stays buffered.
			if !e.buffers[d.From].Contains(d.Pkt) {
				return nil, fmt.Errorf("sim: node %d: no packet %d buffered", d.From, d.Pkt)
			}
			continue
		}
		p, err := e.buffers[d.From].Remove(d.Pkt)
		if err != nil {
			return nil, fmt.Errorf("sim: node %d: %w", d.From, err)
		}
		m := Move{Pkt: p, From: d.From, To: to}
		if fm != nil && fm.Drops(t, d.From, int(p.ID)) {
			m.Dropped = true
		} else {
			m.Delivered = to == p.Dst
		}
		moves = append(moves, m)
	}
	// Deterministic arrival order: by source node, then packet ID.
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].From != moves[j].From {
			return moves[i].From < moves[j].From
		}
		return moves[i].Pkt.ID < moves[j].Pkt.ID
	})
	// Insert phase. Latency accounting lives in the latency collector,
	// which receives the same moves after apply returns.
	for i := range moves {
		m := &moves[i]
		e.res.PerLinkForwards[m.From]++
		if m.Dropped {
			e.res.Dropped++
			continue
		}
		if m.Delivered {
			e.res.Delivered++
			continue
		}
		p := m.Pkt
		p.Arrived = t + 1 // available at the receiver from the next round
		e.buffers[m.To].Add(p)
	}
	return moves, nil
}

// sample dispatches one occupancy sample point to the run's collectors.
func (e *Engine) sample(t int, p metrics.Point) {
	for _, c := range e.collectors {
		c.OnSample(t, p, e)
	}
}

// Run is the primary execution entry point: build an engine from spec and
// execute it under ctx. Cancellation is honored between rounds; on
// cancellation the partial Result is returned with the context's error.
func Run(ctx context.Context, spec Spec) (Result, error) {
	e, err := NewEngine(spec)
	if err != nil {
		return Result{}, err
	}
	return e.Run(ctx)
}

// RunConfig executes one run described by the legacy struct-literal Config.
//
// Deprecated: use Run with a Spec; RunConfig supports neither cancellation
// nor engine reuse.
func RunConfig(cfg Config) (Result, error) {
	return Run(context.Background(), cfg.Spec())
}
