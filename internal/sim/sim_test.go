package sim

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/rat"
)

// greedyOldest forwards the oldest packet (lowest ID) at every non-empty
// non-sink node: a minimal well-behaved protocol for engine tests.
type greedyOldest struct {
	attached bool
	phase    int // if > 0, implements PhasedAcceptor
}

func (g *greedyOldest) Name() string { return "greedy-oldest" }

func (g *greedyOldest) Attach(nw *network.Network, bound adversary.Bound, dests []network.NodeID) error {
	g.attached = true
	return nil
}

func (g *greedyOldest) Decide(v View) ([]Forward, error) {
	var out []Forward
	for node := network.NodeID(0); int(node) < v.Net().Len(); node++ {
		if v.Net().Next(node) == network.None {
			continue
		}
		pkts := v.Packets(node)
		if len(pkts) == 0 {
			continue
		}
		best := pkts[0]
		for _, p := range pkts[1:] {
			if p.ID < best.ID {
				best = p
			}
		}
		out = append(out, Forward{From: node, Pkt: best.ID})
	}
	return out, nil
}

type phasedGreedy struct{ greedyOldest }

func (p *phasedGreedy) PhaseLength() int { return p.phase }

// badProtocol emits a configurable invalid decision.
type badProtocol struct {
	decide func(v View) ([]Forward, error)
}

func (b *badProtocol) Name() string { return "bad" }
func (b *badProtocol) Attach(*network.Network, adversary.Bound, []network.NodeID) error {
	return nil
}
func (b *badProtocol) Decide(v View) ([]Forward, error) { return b.decide(v) }

func fullRate(sigma int) adversary.Bound {
	return adversary.Bound{Rho: rat.One, Sigma: sigma}
}

func TestNewEngineValidation(t *testing.T) {
	nw := network.MustPath(4)
	adv := adversary.Empty{}
	proto := &greedyOldest{}
	tests := []struct {
		name string
		cfg  Config
	}{
		{"nil net", Config{Protocol: proto, Adversary: adv, Rounds: 1}},
		{"nil protocol", Config{Net: nw, Adversary: adv, Rounds: 1}},
		{"nil adversary", Config{Net: nw, Protocol: proto, Rounds: 1}},
		{"negative rounds", Config{Net: nw, Protocol: proto, Adversary: adv, Rounds: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewEngine(tt.cfg.Spec()); err == nil {
				t.Error("NewEngine succeeded, want error")
			}
		})
	}
}

func TestStreamDelivery(t *testing.T) {
	nw := network.MustPath(5)
	adv := adversary.NewStream(fullRate(1), 0, 4)
	res, err := Run(context.Background(), NewSpec(nw, &greedyOldest{}, adv, 30))
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 30 {
		t.Errorf("Injected = %d, want 30", res.Injected)
	}
	// Pipeline depth 4: packets injected by round 25 are delivered.
	if res.Delivered < 25 {
		t.Errorf("Delivered = %d, want ≥ 25", res.Delivered)
	}
	if res.Residual != res.Injected-res.Delivered {
		t.Errorf("Residual = %d, want %d", res.Residual, res.Injected-res.Delivered)
	}
	// Greedy on a clean rate-1 stream: every buffer holds ≤ 1 at L_t... the
	// head node may briefly hold 2 (inject before forward). Bound: 2.
	if res.MaxLoad > 2 {
		t.Errorf("MaxLoad = %d, want ≤ 2", res.MaxLoad)
	}
	// A packet injected at t is first forwarded at t (injection precedes
	// forwarding within a round), so 4 hops deliver at round t+3.
	if res.MaxLatency != 3 {
		t.Errorf("MaxLatency = %d, want 3", res.MaxLatency)
	}
	if avg, ok := res.AvgLatency(); !ok || avg != 3 {
		t.Errorf("AvgLatency = %v,%v, want 3,true", avg, ok)
	}
	if res.Protocol != "greedy-oldest" {
		t.Errorf("Protocol = %q", res.Protocol)
	}
}

func TestAvgLatencyEmpty(t *testing.T) {
	if _, ok := (Result{}).AvgLatency(); ok {
		t.Error("AvgLatency ok on empty result")
	}
}

func TestCapacityViolationDetected(t *testing.T) {
	nw := network.MustPath(3)
	adv := adversary.NewReplay(fullRate(1), map[int][]packet.Injection{
		0: {{Src: 0, Dst: 2}, {Src: 0, Dst: 2}},
	})
	proto := &badProtocol{decide: func(v View) ([]Forward, error) {
		pkts := v.Packets(0)
		if len(pkts) < 2 {
			return nil, nil
		}
		return []Forward{{From: 0, Pkt: pkts[0].ID}, {From: 0, Pkt: pkts[1].ID}}, nil
	}}
	_, err := Run(context.Background(), NewSpec(nw, proto, adv, 1))
	if err == nil || !containsStr(err.Error(), "link bandwidth is 1") {
		t.Errorf("err = %v, want capacity violation naming the bandwidth", err)
	}
	// The violation must locate the offending round.
	if err == nil || !containsStr(err.Error(), "round 0") {
		t.Errorf("err = %v, want the round number in the violation", err)
	}
}

func TestCapacityRespectsBandwidth(t *testing.T) {
	// With B = 2 the same two-packet decision is legal; a third forward is
	// rejected with the actual capacity in the message.
	nw := network.MustPath(3, network.WithUniformBandwidth(2))
	adv := adversary.NewReplay(fullRate(1), map[int][]packet.Injection{
		0: {{Src: 0, Dst: 2}, {Src: 0, Dst: 2}, {Src: 0, Dst: 2}},
	})
	forwardK := func(k int) *badProtocol {
		return &badProtocol{decide: func(v View) ([]Forward, error) {
			var out []Forward
			for _, p := range v.Packets(0) {
				if len(out) == k {
					break
				}
				out = append(out, Forward{From: 0, Pkt: p.ID})
			}
			return out, nil
		}}
	}
	if _, err := Run(context.Background(), NewSpec(nw, forwardK(2), adv, 1)); err != nil {
		t.Errorf("two forwards at B=2: unexpected error %v", err)
	}
	adv2 := adversary.NewReplay(fullRate(1), map[int][]packet.Injection{
		0: {{Src: 0, Dst: 2}, {Src: 0, Dst: 2}, {Src: 0, Dst: 2}},
	})
	_, err := Run(context.Background(), NewSpec(nw, forwardK(3), adv2, 1))
	if err == nil || !containsStr(err.Error(), "link bandwidth is 2") {
		t.Errorf("err = %v, want capacity violation naming bandwidth 2", err)
	}
}

func TestSinkCannotForward(t *testing.T) {
	nw := network.MustPath(3)
	adv := adversary.Empty{}
	proto := &badProtocol{decide: func(v View) ([]Forward, error) {
		return []Forward{{From: 2, Pkt: 0}}, nil
	}}
	_, err := Run(context.Background(), NewSpec(nw, proto, adv, 1))
	if err == nil || !containsStr(err.Error(), "sink") {
		t.Errorf("err = %v, want sink error", err)
	}
}

func TestForwardMissingPacket(t *testing.T) {
	nw := network.MustPath(3)
	proto := &badProtocol{decide: func(v View) ([]Forward, error) {
		return []Forward{{From: 0, Pkt: 99}}, nil
	}}
	_, err := Run(context.Background(), NewSpec(nw, proto, adversary.Empty{}, 1))
	if err == nil || !containsStr(err.Error(), "not present") {
		t.Errorf("err = %v, want missing packet error", err)
	}
}

func TestForwardFromInvalidNode(t *testing.T) {
	nw := network.MustPath(3)
	proto := &badProtocol{decide: func(v View) ([]Forward, error) {
		return []Forward{{From: 77, Pkt: 0}}, nil
	}}
	_, err := Run(context.Background(), NewSpec(nw, proto, adversary.Empty{}, 1))
	if err == nil || !containsStr(err.Error(), "invalid node") {
		t.Errorf("err = %v, want invalid node error", err)
	}
}

func TestProtocolDecideErrorPropagates(t *testing.T) {
	nw := network.MustPath(3)
	wantErr := errors.New("boom")
	proto := &badProtocol{decide: func(v View) ([]Forward, error) { return nil, wantErr }}
	_, err := Run(context.Background(), NewSpec(nw, proto, adversary.Empty{}, 1))
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestInvalidInjectionAborts(t *testing.T) {
	nw := network.MustPath(3)
	adv := adversary.NewReplay(fullRate(0), map[int][]packet.Injection{
		0: {{Src: 2, Dst: 0}}, // backward
	})
	_, err := Run(context.Background(), NewSpec(nw, &greedyOldest{}, adv, 1))
	if err == nil {
		t.Error("backward injection accepted")
	}
}

func TestVerifyAdversaryCatchesViolation(t *testing.T) {
	nw := network.MustPath(4)
	// Declared (1,0)-bounded but injects 2 packets crossing buffer 0.
	adv := adversary.NewReplay(fullRate(0), map[int][]packet.Injection{
		0: {{Src: 0, Dst: 3}, {Src: 0, Dst: 3}},
	})
	_, err := Run(context.Background(), NewSpec(nw, &greedyOldest{}, adv, 1, WithVerifyAdversary()))
	if err == nil {
		t.Error("bound violation not caught")
	}
	// Without verification the run proceeds.
	adv2 := adversary.NewReplay(fullRate(0), map[int][]packet.Injection{
		0: {{Src: 0, Dst: 3}, {Src: 0, Dst: 3}},
	})
	if _, err := Run(context.Background(), NewSpec(nw, &greedyOldest{}, adv2, 1)); err != nil {
		t.Errorf("unverified run failed: %v", err)
	}
}

func TestPhasedAcceptanceStaging(t *testing.T) {
	nw := network.MustPath(4)
	// One packet injected at each of rounds 0,1,2,3.
	adv := adversary.NewStream(fullRate(1), 0, 3)
	proto := &phasedGreedy{}
	proto.phase = 3

	var acceptRounds []int
	var acceptCounts []int
	obs := &recordingObserver{
		onAccept: func(round int, pkts []packet.Packet) {
			acceptRounds = append(acceptRounds, round)
			acceptCounts = append(acceptCounts, len(pkts))
		},
	}
	eng, err := NewEngine(Config{Net: nw, Protocol: proto, Adversary: adv, Rounds: 7, Observers: []Observer{obs}}.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Acceptance at rounds 0 (packet 0), 3 (packets 1,2,3), 6 (packets 4,5,6).
	if len(acceptRounds) != 3 || acceptRounds[0] != 0 || acceptRounds[1] != 3 || acceptRounds[2] != 6 {
		t.Errorf("accept rounds = %v, want [0 3 6]", acceptRounds)
	}
	if acceptCounts[0] != 1 || acceptCounts[1] != 3 || acceptCounts[2] != 3 {
		t.Errorf("accept counts = %v, want [1 3 3]", acceptCounts)
	}
}

func TestPhasedPhysicalLoadCountsStaged(t *testing.T) {
	nw := network.MustPath(4)
	adv := adversary.NewStream(fullRate(1), 0, 3)
	proto := &phasedGreedy{}
	proto.phase = 4
	res, err := Run(context.Background(), NewSpec(nw, proto, adv, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Rounds 1..3 stage 3 packets at node 0 while the visible buffer holds
	// at most the round-0 packet.
	if res.MaxPhysicalLoad < 3 {
		t.Errorf("MaxPhysicalLoad = %d, want ≥ 3", res.MaxPhysicalLoad)
	}
	if res.MaxPhysicalLoad < res.MaxLoad {
		t.Errorf("physical %d < visible %d", res.MaxPhysicalLoad, res.MaxLoad)
	}
}

func TestBadPhaseLengthRejected(t *testing.T) {
	nw := network.MustPath(4)
	proto := &phasedGreedy{}
	proto.phase = 0
	if _, err := NewEngine(Config{Net: nw, Protocol: proto, Adversary: adversary.Empty{}, Rounds: 1}.Spec()); err == nil {
		t.Error("phase length 0 accepted")
	}
}

func TestInvariantAborts(t *testing.T) {
	nw := network.MustPath(4)
	adv := adversary.NewStream(fullRate(1), 0, 3)
	inv := func(v View) error {
		if v.Load(1) > 0 {
			return fmt.Errorf("buffer 1 occupied")
		}
		return nil
	}
	_, err := Run(context.Background(), NewSpec(nw, &greedyOldest{}, adv, 5, WithInvariants(inv)))
	if err == nil || !containsStr(err.Error(), "invariant") {
		t.Errorf("err = %v, want invariant failure", err)
	}
}

type recordingObserver struct {
	NopObserver
	onAccept  func(int, []packet.Packet)
	injects   int
	forwards  int
	roundEnds int
}

func (r *recordingObserver) OnInject(round int, pkts []packet.Packet) { r.injects += len(pkts) }
func (r *recordingObserver) OnAccept(round int, pkts []packet.Packet) {
	if r.onAccept != nil {
		r.onAccept(round, pkts)
	}
}
func (r *recordingObserver) OnForward(round int, moves []Move) { r.forwards += len(moves) }
func (r *recordingObserver) OnRoundEnd(round int, v View)      { r.roundEnds++ }

func TestObserverHooks(t *testing.T) {
	nw := network.MustPath(4)
	adv := adversary.NewStream(fullRate(1), 0, 3)
	obs := &recordingObserver{}
	res, err := Run(context.Background(), NewSpec(nw, &greedyOldest{}, adv, 10, WithObservers(obs)))
	if err != nil {
		t.Fatal(err)
	}
	if obs.injects != res.Injected {
		t.Errorf("observer saw %d injections, result says %d", obs.injects, res.Injected)
	}
	if obs.roundEnds != 10 {
		t.Errorf("roundEnds = %d, want 10", obs.roundEnds)
	}
	if obs.forwards == 0 {
		t.Error("no forwards observed")
	}
}

func TestDeterminism(t *testing.T) {
	nw := network.MustPath(8)
	run := func() Result {
		adv, err := adversary.NewRandom(nw, adversary.Bound{Rho: rat.New(1, 2), Sigma: 2}, nil, 99)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), NewSpec(nw, &greedyOldest{}, adv, 100))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MaxLoad != b.MaxLoad || a.Injected != b.Injected || a.Delivered != b.Delivered ||
		a.MaxLoadNode != b.MaxLoadNode || a.MaxLoadRound != b.MaxLoadRound ||
		a.TotalLatency != b.TotalLatency {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

func TestTreeMultipleReceivers(t *testing.T) {
	// Star: 0→2, 1→2, 2 root. Both leaves inject; node 2 receives two
	// packets in one round (allowed: capacity is per link).
	tree, err := network.NewTree([]network.NodeID{2, 2, network.None})
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.NewReplay(fullRate(1), map[int][]packet.Injection{
		0: {{Src: 0, Dst: 2}, {Src: 1, Dst: 2}},
	})
	res, err := Run(context.Background(), NewSpec(tree, &greedyOldest{}, adv, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 2 {
		t.Errorf("Delivered = %d, want 2", res.Delivered)
	}
}

func TestPerNodeMax(t *testing.T) {
	nw := network.MustPath(4)
	adv := adversary.NewReplay(fullRate(2), map[int][]packet.Injection{
		0: {{Src: 1, Dst: 3}, {Src: 1, Dst: 3}, {Src: 1, Dst: 3}},
	})
	res, err := Run(context.Background(), NewSpec(nw, &greedyOldest{}, adv, 6))
	if err != nil {
		t.Fatal(err)
	}
	if res.PerNodeMax[1] != 3 {
		t.Errorf("PerNodeMax[1] = %d, want 3", res.PerNodeMax[1])
	}
	if res.MaxLoadNode != 1 || res.MaxLoadRound != 0 {
		t.Errorf("max at node %d round %d, want node 1 round 0", res.MaxLoadNode, res.MaxLoadRound)
	}
	if res.PerNodeMax[0] != 0 {
		t.Errorf("PerNodeMax[0] = %d, want 0", res.PerNodeMax[0])
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}
