package sim

import (
	"fmt"

	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
)

// ConservationCheck is an Observer asserting packet conservation after
// every round: every injected packet is exactly one of delivered, buffered,
// or staged. It catches engine or protocol accounting bugs (duplication,
// loss, overshooting a destination) that no space bound would notice.
type ConservationCheck struct {
	NopObserver
	injected  int
	delivered int
	// Err records the first violation.
	Err error
}

// NewConservationCheck returns a fresh checker; register it in
// Config.Observers.
func NewConservationCheck() *ConservationCheck { return &ConservationCheck{} }

// OnInject implements Observer.
func (c *ConservationCheck) OnInject(round int, pkts []packet.Packet) {
	c.injected += len(pkts)
}

// OnForward implements Observer.
func (c *ConservationCheck) OnForward(round int, moves []Move) {
	for _, m := range moves {
		if m.Delivered {
			c.delivered++
		}
	}
}

// OnRoundEnd implements Observer.
func (c *ConservationCheck) OnRoundEnd(round int, v View) {
	if c.Err != nil {
		return
	}
	buffered := 0
	staged := 0
	for i := 0; i < v.Net().Len(); i++ {
		node := network.NodeID(i)
		buffered += v.Load(node)
		if e, ok := v.(*Engine); ok {
			staged += e.Staged(node)
		}
		// No packet may sit at or past its destination.
		for _, p := range v.Packets(node) {
			if p.Dst == node || !v.Net().Reaches(node, p.Dst) {
				c.Err = fmt.Errorf("sim: round %d: packet %v stored at %d, at/past its destination", round, p, node)
				return
			}
		}
	}
	if total := c.delivered + buffered + staged; total != c.injected {
		c.Err = fmt.Errorf("sim: round %d: conservation violated: delivered %d + buffered %d + staged %d = %d ≠ injected %d",
			round, c.delivered, buffered, staged, total, c.injected)
	}
}
