package sim

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/rat"
)

// chaosProtocol forwards a random subset of nodes, each a random buffered
// packet — every decision it makes is legal, so the engine must accept all
// of them and conserve packets regardless.
type chaosProtocol struct {
	rng *rand.Rand
	nw  *network.Network
}

func (c *chaosProtocol) Name() string { return "chaos" }

func (c *chaosProtocol) Attach(nw *network.Network, _ adversary.Bound, _ []network.NodeID) error {
	c.nw = nw
	return nil
}

func (c *chaosProtocol) Decide(v View) ([]Forward, error) {
	var out []Forward
	for i := 0; i < c.nw.Len(); i++ {
		node := network.NodeID(i)
		if c.nw.Next(node) == network.None {
			continue
		}
		pkts := v.Packets(node)
		if len(pkts) == 0 || c.rng.Intn(3) == 0 {
			continue
		}
		out = append(out, Forward{From: node, Pkt: pkts[c.rng.Intn(len(pkts))].ID})
	}
	return out, nil
}

// TestQuickChaosConservation drives random protocols against random bounded
// adversaries on random topologies: the engine must run clean and conserve
// every packet.
func TestQuickChaosConservation(t *testing.T) {
	f := func(seed int64, usePath bool, sig uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var nw *network.Network
		var err error
		if usePath {
			nw, err = network.NewPath(4 + rng.Intn(20))
		} else {
			nw, err = network.RandomTree(4+rng.Intn(20), rng)
		}
		if err != nil {
			return false
		}
		adv, err := adversary.NewRandom(nw, adversary.Bound{Rho: rat.New(1, 2), Sigma: int(sig % 4)}, nil, seed)
		if err != nil {
			return false
		}
		check := NewConservationCheck()
		_, err = Run(context.Background(), NewSpec(nw,
			&chaosProtocol{rng: rand.New(rand.NewSource(seed + 1))},
			adv, 80, WithObservers(check)))
		return err == nil && check.Err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestConservationWithPhasedAcceptance covers the staging path.
func TestConservationWithPhasedAcceptance(t *testing.T) {
	nw := network.MustPath(8)
	adv := adversary.NewStream(adversary.Bound{Rho: rat.One, Sigma: 0}, 0, 7)
	proto := &phasedGreedy{}
	proto.phase = 3
	check := NewConservationCheck()
	if _, err := Run(context.Background(), NewSpec(nw, proto, adv, 50,
		WithObservers(check))); err != nil {
		t.Fatal(err)
	}
	if check.Err != nil {
		t.Error(check.Err)
	}
}

// TestConservationDetectsLoss ensures the checker actually fires: feed it a
// fabricated event stream that loses a packet.
func TestConservationDetectsLoss(t *testing.T) {
	nw := network.MustPath(4)
	check := NewConservationCheck()
	check.OnInject(0, []packet.Packet{{ID: 1, Src: 0, Dst: 3}})
	// Round ends with no delivery and an empty configuration: loss.
	eng, err := NewEngine(Config{Net: nw, Protocol: &greedyOldest{}, Adversary: adversary.Empty{}, Rounds: 1}.Spec())
	if err != nil {
		t.Fatal(err)
	}
	check.OnRoundEnd(0, eng)
	if check.Err == nil {
		t.Error("loss not detected")
	}
}

// TestAdaptiveAdversaryIsConsulted verifies the engine calls the adaptive
// entry point with real loads.
func TestAdaptiveAdversaryIsConsulted(t *testing.T) {
	nw := network.MustPath(6)
	adv := &probeAdaptive{}
	if _, err := Run(context.Background(), NewSpec(nw, &greedyOldest{}, adv, 10)); err != nil {
		t.Fatal(err)
	}
	if adv.adaptiveCalls != 10 {
		t.Errorf("adaptive calls = %d, want 10", adv.adaptiveCalls)
	}
	if adv.plainCalls != 0 {
		t.Errorf("plain Inject called %d times", adv.plainCalls)
	}
	if !adv.sawLoad {
		t.Error("loads callback never reported a non-zero load")
	}
}

type probeAdaptive struct {
	adaptiveCalls int
	plainCalls    int
	sawLoad       bool
}

func (p *probeAdaptive) Bound() adversary.Bound {
	return adversary.Bound{Rho: rat.One, Sigma: 2}
}

func (p *probeAdaptive) Inject(round int) []packet.Injection {
	p.plainCalls++
	return nil
}

func (p *probeAdaptive) InjectAdaptive(round int, loads adversary.Loads) []packet.Injection {
	p.adaptiveCalls++
	for v := 0; v < 6; v++ {
		if loads(network.NodeID(v)) > 0 {
			p.sawLoad = true
		}
	}
	// Inject two packets per round so some buffer is occupied.
	return []packet.Injection{{Src: 0, Dst: 5}, {Src: 2, Dst: 5}}
}
