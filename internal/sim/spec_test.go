package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
)

func specFixture(t *testing.T, seed int64, opts ...Option) Spec {
	t.Helper()
	nw := network.MustPath(16)
	adv, err := adversary.NewRandom(nw, adversary.Bound{Rho: rat.New(1, 2), Sigma: 2}, nil, seed)
	if err != nil {
		t.Fatal(err)
	}
	return NewSpec(nw, &greedyOldest{}, adv, 200, opts...)
}

func TestSpecOptions(t *testing.T) {
	obs := &recordingObserver{}
	calls := 0
	inv := func(View) error { calls++; return nil }
	s := specFixture(t, 7,
		WithObservers(obs),
		WithInvariants(inv),
		WithVerifyAdversary(),
		WithDeadline(time.Minute))
	if len(s.observers) != 1 || len(s.invariants) != 1 || !s.verifyAdversary || s.deadline != time.Minute {
		t.Errorf("options not applied: %+v", s)
	}
	if s.Net() == nil || s.Protocol() == nil || s.Adversary() == nil || s.Rounds() != 200 {
		t.Error("accessors incomplete")
	}
	res, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 200 {
		t.Errorf("invariant ran %d times, want 200", calls)
	}
	if obs.roundEnds != 200 || obs.injects != res.Injected {
		t.Errorf("observer saw %d rounds / %d injects, want 200 / %d", obs.roundEnds, obs.injects, res.Injected)
	}
}

// Same Spec parameters + same adversary seed ⇒ byte-identical Result.
func TestSpecDeterminism(t *testing.T) {
	a, err := Run(context.Background(), specFixture(t, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), specFixture(t, 42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical specs diverged:\n%+v\n%+v", a, b)
	}
	c, err := Run(context.Background(), specFixture(t, 43))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical results (suspicious fixture)")
	}
}

// The Config shim and the Spec path must execute identically.
func TestConfigShimMatchesSpec(t *testing.T) {
	nw := network.MustPath(16)
	mkAdv := func() adversary.Adversary {
		adv, err := adversary.NewRandom(nw, adversary.Bound{Rho: rat.One, Sigma: 1}, nil, 5)
		if err != nil {
			t.Fatal(err)
		}
		return adv
	}
	old, err := RunConfig(Config{Net: nw, Protocol: &greedyOldest{}, Adversary: mkAdv(), Rounds: 150, VerifyAdversary: true})
	if err != nil {
		t.Fatal(err)
	}
	neu, err := Run(context.Background(),
		NewSpec(nw, &greedyOldest{}, mkAdv(), 150, WithVerifyAdversary()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, neu) {
		t.Errorf("shim and spec paths diverged:\n%+v\n%+v", old, neu)
	}
}

func TestCancelledContextStopsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, specFixture(t, 1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Injected != 0 {
		t.Errorf("pre-cancelled run injected %d packets", res.Injected)
	}

	// Cancel mid-run via an observer: the run must stop at the next round
	// boundary with a partial result.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	nw := network.MustPath(8)
	adv := adversary.NewStream(adversary.Bound{Rho: rat.One, Sigma: 0}, 0, 7)
	stop := &cancelAtRound{round: 9, cancel: cancel2}
	res2, err := Run(ctx2, NewSpec(nw, &greedyOldest{}, adv, 1_000_000, WithObservers(stop)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res2.Injected != 10 {
		t.Errorf("partial result injected = %d, want 10 (rounds 0–9)", res2.Injected)
	}
	if res2.Residual != res2.Injected-res2.Delivered {
		t.Errorf("partial residual %d inconsistent", res2.Residual)
	}
}

type cancelAtRound struct {
	NopObserver
	round  int
	cancel context.CancelFunc
}

func (c *cancelAtRound) OnRoundEnd(round int, _ View) {
	if round >= c.round {
		c.cancel()
	}
}

func TestDeadlineStopsRun(t *testing.T) {
	nw := network.MustPath(8)
	adv := adversary.NewStream(adversary.Bound{Rho: rat.One, Sigma: 0}, 0, 7)
	slow := &slowProtocol{inner: &greedyOldest{}, delay: 2 * time.Millisecond}
	_, err := Run(context.Background(),
		NewSpec(nw, slow, adv, 1_000_000, WithDeadline(20*time.Millisecond)))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

type slowProtocol struct {
	inner Protocol
	delay time.Duration
}

func (s *slowProtocol) Name() string { return s.inner.Name() }
func (s *slowProtocol) Attach(nw *network.Network, b adversary.Bound, d []network.NodeID) error {
	return s.inner.Attach(nw, b, d)
}
func (s *slowProtocol) Decide(v View) ([]Forward, error) {
	time.Sleep(s.delay)
	return s.inner.Decide(v)
}

// Step drives the engine one round at a time and agrees with Run.
func TestStepIncrementalDriving(t *testing.T) {
	want, err := Run(context.Background(), specFixture(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(specFixture(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		if r := eng.Round(); r != steps {
			t.Fatalf("Round() = %d before step %d", r, steps)
		}
		done, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if done {
			break
		}
	}
	if steps != 200 {
		t.Errorf("ran %d steps, want 200", steps)
	}
	// Step past the end is a no-op.
	if done, err := eng.Step(); !done || err != nil {
		t.Errorf("Step past end = (%v, %v), want (true, nil)", done, err)
	}
	if got := eng.Result(); !reflect.DeepEqual(got, want) {
		t.Errorf("stepped result differs from Run:\n%+v\n%+v", got, want)
	}
}

// Reset rebinds the engine and reproduces a fresh engine's results exactly,
// including across topologies of different sizes.
func TestResetReuse(t *testing.T) {
	eng, err := NewEngine(specFixture(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	first, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Re-run the same scenario on the reused engine.
	if err := eng.Reset(specFixture(t, 3)); err != nil {
		t.Fatal(err)
	}
	again, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Errorf("reused engine diverged:\n%+v\n%+v", first, again)
	}
	// The earlier result must not be clobbered by the reuse.
	if first.Rounds != 200 || first.PerNodeMax == nil {
		t.Error("prior result mutated by Reset")
	}

	// Rebind to a larger topology, then a smaller one.
	big := network.MustPath(64)
	adv := adversary.NewStream(adversary.Bound{Rho: rat.One, Sigma: 0}, 0, 63)
	if err := eng.Reset(NewSpec(big, &greedyOldest{}, adv, 100)); err != nil {
		t.Fatal(err)
	}
	bigRes, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(bigRes.PerNodeMax) != 64 || bigRes.Injected != 100 {
		t.Errorf("big run: %+v", bigRes)
	}
	fresh, err := Run(context.Background(), specFixture(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Reset(specFixture(t, 3)); err != nil {
		t.Fatal(err)
	}
	down, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, down) {
		t.Errorf("downsized reused engine diverged:\n%+v\n%+v", fresh, down)
	}
}

func TestResetValidation(t *testing.T) {
	eng, err := NewEngine(specFixture(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Reset(Spec{}); err == nil {
		t.Error("Reset accepted an empty spec")
	}
	// A failed Reset must not leave the engine half-bound: rebinding to a
	// valid spec still works.
	if err := eng.Reset(specFixture(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}
