package sim

import (
	"time"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/faults"
	"smallbuffers/internal/metrics"
	"smallbuffers/internal/network"
)

// Spec describes one simulation run for the context-aware execution API.
// The required parameters (topology, protocol, adversary, horizon) are
// positional in NewSpec; everything else is a functional option. A Spec is
// a value: it can be copied, stored in tables, and replayed — the same Spec
// always produces the same Result (protocols and adversaries carry their
// own seeds, so "same Spec" means rebuilding those from the same seeds).
type Spec struct {
	net       *network.Network
	protocol  Protocol
	adversary adversary.Adversary
	rounds    int

	observers       []Observer
	invariants      []Invariant
	collectors      []metrics.Collector
	faults          faults.Model
	verifyAdversary bool
	deadline        time.Duration
}

// Option customizes a Spec.
type Option func(*Spec)

// NewSpec assembles a run description: execute protocol against adversary
// on nw for the given number of rounds.
func NewSpec(nw *network.Network, p Protocol, adv adversary.Adversary, rounds int, opts ...Option) Spec {
	s := Spec{net: nw, protocol: p, adversary: adv, rounds: rounds}
	for _, o := range opts {
		o(&s)
	}
	return s
}

// WithObservers registers observers that receive the run's events.
func WithObservers(obs ...Observer) Option {
	return func(s *Spec) { s.observers = append(s.observers, obs...) }
}

// WithInvariants registers per-round predicates; a violation aborts the
// run. Invariants power the bound assertions in tests and experiments.
func WithInvariants(invs ...Invariant) Option {
	return func(s *Spec) { s.invariants = append(s.invariants, invs...) }
}

// WithMetrics selects the run's metric collectors; their summaries
// populate Result.Metrics, keyed by collector name. Collectors are
// stateful and single-run — hand each Spec fresh instances. Without this
// option the default set {max_load, latency} reports (the engine runs
// those two regardless, to source the historical Result scalars).
func WithMetrics(cs ...metrics.Collector) Option {
	return func(s *Spec) { s.collectors = append(s.collectors, cs...) }
}

// WithFaults attaches a fault model to the run's forwarding step: a
// downed link (Model.LinkUp false) forwards zero packets regardless of
// bandwidth — the protocol's decisions over it are nullified and the
// packets stay buffered — and a dropped packet (Model.Drops true) leaves
// its buffer and consumes the link but never arrives. The model must
// already be bound to the run's topology and seed via Model.Reset; the
// harness and scenario layers do this with the cell's derived seed, so
// fault schedules are reproducible at any sweep-worker count. A nil model
// (or no option) is the loss-free paper model, byte-identical to runs
// before faults existed.
func WithFaults(m faults.Model) Option {
	return func(s *Spec) { s.faults = m }
}

// WithVerifyAdversary re-checks every injection against the adversary's
// declared (ρ,σ) bound; a violation aborts the run. Crafted adversaries are
// pre-verified, so this is off by default.
func WithVerifyAdversary() Option {
	return func(s *Spec) { s.verifyAdversary = true }
}

// WithDeadline sets a wall-clock budget for the run. Engine.Run stops
// between rounds once the budget is exhausted and returns the partial
// Result together with context.DeadlineExceeded.
func WithDeadline(d time.Duration) Option {
	return func(s *Spec) { s.deadline = d }
}

// Net returns the topology the run executes on.
func (s Spec) Net() *network.Network { return s.net }

// Protocol returns the forwarding protocol under test.
func (s Spec) Protocol() Protocol { return s.protocol }

// Adversary returns the injection pattern.
func (s Spec) Adversary() adversary.Adversary { return s.adversary }

// Rounds returns the run horizon.
func (s Spec) Rounds() int { return s.rounds }

// Faults returns the run's fault model (nil for the loss-free model).
func (s Spec) Faults() faults.Model { return s.faults }

// Spec converts the legacy struct-literal Config into a Spec.
//
// Deprecated: build a Spec directly with NewSpec and options.
func (c Config) Spec() Spec {
	s := Spec{
		net:             c.Net,
		protocol:        c.Protocol,
		adversary:       c.Adversary,
		rounds:          c.Rounds,
		verifyAdversary: c.VerifyAdversary,
	}
	s.observers = append(s.observers, c.Observers...)
	s.invariants = append(s.invariants, c.Invariants...)
	return s
}
