package scenario

import (
	"strings"
	"testing"
)

// Two spellings of the same workload: singular vs plural axes, omitted
// vs explicit defaults, unreduced vs reduced rationals.
const digestSpellingA = `{
	"topology": {"name": "path", "params": {"n": 16}},
	"protocol": {"name": "ppts"},
	"adversary": {"name": "random", "params": {"d": 2}},
	"bound": {"rho": "2/4", "sigma": 2},
	"rounds": 100
}`

const digestSpellingB = `{
	"topologies": [{"name": "path", "params": {"n": 16}}],
	"protocols": [{"name": "ppts", "params": {"drain": false}}],
	"adversary": {"name": "random", "params": {"d": 2}},
	"bounds": [{"rho": "1/2", "sigma": 2}],
	"rounds": [100],
	"seed": 1
}`

func TestDigestCanonical(t *testing.T) {
	a, err := Parse([]byte(digestSpellingA))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse([]byte(digestSpellingB))
	if err != nil {
		t.Fatal(err)
	}
	da, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Errorf("equivalent spellings digest differently:\n%s\n%s", da, db)
	}
	if !strings.HasPrefix(da, DigestPrefix) {
		t.Errorf("digest %q lacks the %q prefix", da, DigestPrefix)
	}
}

func TestDigestDistinguishesWorkloads(t *testing.T) {
	a, err := Parse([]byte(digestSpellingA))
	if err != nil {
		t.Fatal(err)
	}
	bumped := strings.Replace(digestSpellingA, `"rounds": 100`, `"rounds": 101`, 1)
	b, err := Parse([]byte(bumped))
	if err != nil {
		t.Fatal(err)
	}
	da, _ := a.Digest()
	db, _ := b.Digest()
	if da == db {
		t.Error("distinct workloads share a digest")
	}
}

func TestDigestStableAcrossRoundTrip(t *testing.T) {
	a, err := Parse([]byte(digestSpellingA))
	if err != nil {
		t.Fatal(err)
	}
	da, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	data, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Errorf("digest not a round-trip fixed point: %s vs %s", da, db)
	}
}

func TestDigestRejectsInvalid(t *testing.T) {
	sc := &Scenario{} // no protocol/adversary/bound
	if _, err := sc.Digest(); err == nil {
		t.Error("digest of an invalid scenario succeeded")
	}
}
