package scenario

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"smallbuffers/internal/rat"
	"smallbuffers/internal/registry"
	"smallbuffers/internal/sim"
)

// minimal returns a valid one-point scenario as hand-written JSON.
func minimal() []byte {
	return []byte(`{
		"topology": {"name": "path", "params": {"n": 16}},
		"protocol": {"name": "ppts"},
		"adversary": {"name": "random", "params": {"d": 3}},
		"bound": {"rho": "2/4", "sigma": 2},
		"rounds": 50,
		"seed": 7
	}`)
}

func TestParseNormalizes(t *testing.T) {
	sc, err := Parse(minimal())
	if err != nil {
		t.Fatal(err)
	}
	if sc.Bounds[0].Rho != "1/2" {
		t.Errorf("rho not reduced: %q", sc.Bounds[0].Rho)
	}
	if sc.Seeds[0] != 7 {
		t.Errorf("seed = %v", sc.Seeds)
	}
	// Defaults are materialized: ppts grows its drain parameter.
	if v, ok := sc.Protocols[0].Params["drain"]; !ok || v != false {
		t.Errorf("drain default not materialized: %v", sc.Protocols[0].Params)
	}
	if !sc.IsSingle() {
		t.Error("one-point scenario not single")
	}
}

func TestMarshalLoadMarshalFixedPoint(t *testing.T) {
	sc, err := Parse(minimal())
	if err != nil {
		t.Fatal(err)
	}
	first, err := sc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := Parse(first)
	if err != nil {
		t.Fatalf("canonical form does not load: %v\n%s", err, first)
	}
	second, err := sc2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("Marshal∘Load not a fixed point:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

// TestMarshalLoadMarshalFixedPointProperty drives the fixed-point check
// over randomized scenarios spanning every registered component, list- and
// scalar-valued axes, and random parameter values.
func TestMarshalLoadMarshalFixedPointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	for trial := 0; trial < 200; trial++ {
		sc := randomScenario(rng)
		first, err := sc.Marshal()
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		sc2, err := Parse(first)
		if err != nil {
			t.Fatalf("trial %d: canonical form does not load: %v\n%s", trial, err, first)
		}
		second, err := sc2.Marshal()
		if err != nil {
			t.Fatalf("trial %d: remarshal: %v", trial, err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("trial %d: not a fixed point:\n--- first\n%s\n--- second\n%s", trial, first, second)
		}
	}
}

// randomScenario builds a random valid scenario: random component subsets
// with random schema-typed parameter values. Validation only resolves
// schemas (it does not build the components), so arbitrary magnitudes are
// fine.
func randomScenario(rng *rand.Rand) *Scenario {
	sc := &Scenario{
		Name:   fmt.Sprintf("random-%d", rng.Int63()),
		Verify: rng.Intn(2) == 0,
	}
	if rng.Intn(4) == 0 {
		// Self-hosting shape: the lower-bound pattern alone.
		sc.Adversaries = []Component{{Name: "lowerbound", Params: map[string]any{
			"m": 2 + rng.Intn(6), "ell": 2 + rng.Intn(3),
		}}}
		sc.Bounds = []Bound{{Rho: fmt.Sprintf("%d/%d", 1+rng.Intn(3), 1+rng.Intn(4)), Sigma: rng.Intn(4)}}
	} else {
		topoNames := registry.TopologyNames()
		for _, name := range pick(rng, topoNames) {
			e, _ := registry.LookupTopology(name)
			sc.Topologies = append(sc.Topologies, Component{Name: name, Params: randomParams(rng, e.Params)})
		}
		advPool := []string{"random", "hotspot", "stream", "roundrobin", "burst", "greedykiller"}
		for _, name := range pick(rng, advPool) {
			e, _ := registry.LookupAdversary(name)
			sc.Adversaries = append(sc.Adversaries, Component{Name: name, Params: randomParams(rng, e.Params)})
		}
		seenBound := map[string]bool{} // post-reduction identity, matching Validate
		for i := 0; i <= rng.Intn(2); i++ {
			b := Bound{Rho: fmt.Sprintf("%d/%d", rng.Intn(5), 1+rng.Intn(6)), Sigma: rng.Intn(5)}
			key := rat.MustParse(b.Rho).String() + "|" + fmt.Sprint(b.Sigma)
			if seenBound[key] {
				continue
			}
			seenBound[key] = true
			sc.Bounds = append(sc.Bounds, b)
		}
		for i := 0; i <= rng.Intn(2); i++ {
			sc.Rounds = appendUnique(sc.Rounds, rng.Intn(5000))
		}
		if rng.Intn(2) == 0 {
			for i := 0; i <= rng.Intn(3); i++ {
				sc.Bandwidths = appendUnique(sc.Bandwidths, 1+rng.Intn(8))
			}
		}
	}
	for _, name := range pick(rng, registry.ProtocolNames()) {
		e, _ := registry.LookupProtocol(name)
		sc.Protocols = append(sc.Protocols, Component{Name: name, Params: randomParams(rng, e.Params)})
	}
	nSeeds := 1 + rng.Intn(3)
	if len(sc.Adversaries) == 1 && sc.Adversaries[0].Name == "lowerbound" {
		nSeeds = 1 // the construction is deterministic; a seeds axis is rejected
	}
	for i := 0; i < nSeeds; i++ {
		sc.Seeds = appendUnique(sc.Seeds, rng.Int63n(1000))
	}
	if rng.Intn(3) == 0 {
		sc.Invariants = []Component{{Name: "max-load", Params: map[string]any{"bound": 1 + rng.Intn(100)}}}
	}
	return sc
}

// appendUnique appends v unless already present (axes reject duplicates).
func appendUnique[T comparable](s []T, v T) []T {
	for _, e := range s {
		if e == v {
			return s
		}
	}
	return append(s, v)
}

// pick returns a non-empty random subset (distinct, order preserved).
func pick(rng *rand.Rand, names []string) []string {
	var out []string
	for _, n := range names {
		if rng.Intn(len(names)) == 0 {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []string{names[rng.Intn(len(names))]}
	}
	return out
}

// randomParams draws a random raw value per schema parameter.
func randomParams(rng *rand.Rand, s registry.Schema) map[string]any {
	out := map[string]any{}
	for _, p := range s {
		if rng.Intn(2) == 0 && !p.Required {
			continue // exercise default materialization
		}
		switch p.Kind {
		case registry.Int:
			out[p.Name] = rng.Intn(64) + 1
		case registry.Bool:
			out[p.Name] = rng.Intn(2) == 0
		case registry.RatKind:
			out[p.Name] = fmt.Sprintf("%d/%d", rng.Intn(4)+1, rng.Intn(4)+1)
		case registry.Ints:
			k := rng.Intn(3)
			list := make([]any, k)
			for i := range list {
				list[i] = float64(rng.Intn(32))
			}
			out[p.Name] = list
		case registry.String:
			out[p.Name] = "x"
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// TestEveryRegistryEntryCompilesAndRuns is the registry-coverage
// guarantee: every registered protocol, adversary, topology, and
// invariant is constructible from scenario JSON and survives a short run.
func TestEveryRegistryEntryCompilesAndRuns(t *testing.T) {
	ctx := context.Background()
	runOne := func(t *testing.T, src string) {
		t.Helper()
		sc, err := Parse([]byte(src))
		if err != nil {
			t.Fatal(err)
		}
		spec, err := sc.Compile()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(ctx, spec); err != nil {
			t.Fatalf("run: %v", err)
		}
	}

	for _, proto := range registry.ProtocolNames() {
		t.Run("protocol/"+proto, func(t *testing.T) {
			runOne(t, fmt.Sprintf(`{
				"topology": {"name": "path", "params": {"n": 64}},
				"protocol": {"name": %q},
				"adversary": {"name": "stream"},
				"bound": {"rho": "1/2", "sigma": 1},
				"rounds": 10
			}`, proto))
		})
	}
	for _, adv := range registry.AdversaryNames() {
		t.Run("adversary/"+adv, func(t *testing.T) {
			e, err := registry.LookupAdversary(adv)
			if err != nil {
				t.Fatal(err)
			}
			if e.SelfHosting() {
				runOne(t, fmt.Sprintf(`{
					"protocol": {"name": "ppts"},
					"adversary": {"name": %q},
					"bound": {"rho": "1/2", "sigma": 1}
				}`, adv))
				return
			}
			runOne(t, fmt.Sprintf(`{
				"topology": {"name": "path", "params": {"n": 64}},
				"protocol": {"name": "ppts"},
				"adversary": {"name": %q},
				"bound": {"rho": "1/2", "sigma": 2},
				"rounds": 10
			}`, adv))
		})
	}
	for _, topo := range registry.TopologyNames() {
		t.Run("topology/"+topo, func(t *testing.T) {
			runOne(t, fmt.Sprintf(`{
				"topology": {"name": %q},
				"protocol": {"name": "greedy-fifo"},
				"adversary": {"name": "random", "params": {"d": 2}},
				"bound": {"rho": "1/2", "sigma": 2},
				"rounds": 10
			}`, topo))
		})
	}
	for _, inv := range registry.InvariantNames() {
		t.Run("invariant/"+inv, func(t *testing.T) {
			runOne(t, fmt.Sprintf(`{
				"topology": {"name": "path", "params": {"n": 16}},
				"protocol": {"name": "ppts"},
				"adversary": {"name": "stream"},
				"bound": {"rho": "1/2", "sigma": 1},
				"rounds": 10,
				"invariants": [{"name": %q, "params": {"bound": 1000}}]
			}`, inv))
		})
	}
}

// TestSingleAndSweepAgree pins the seed semantics: a one-point scenario
// produces the same Result through CompileSingle+sim.Run and through the
// lifted one-cell sweep (RawSeeds hands the adversary the same seed).
func TestSingleAndSweepAgree(t *testing.T) {
	src := `{
		"topology": {"name": "path", "params": {"n": 32}},
		"protocol": {"name": "ppts"},
		"adversary": {"name": "hotspot", "params": {"d": 4}},
		"bound": {"rho": "1", "sigma": 2},
		"rounds": 300,
		"seed": 99,
		"verify": true
	}`
	sc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	single, err := sc.CompileSingle()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.Run(context.Background(), single.Spec())
	if err != nil {
		t.Fatal(err)
	}

	sc2, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := sc2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if agg.Requested != 1 || agg.Completed != 1 {
		t.Fatalf("sweep = %d requested / %d completed, want 1/1 (first err: %v)", agg.Requested, agg.Completed, agg.FirstErr())
	}
	if got := agg.Cells[0].Result; !reflect.DeepEqual(direct, got) {
		t.Errorf("single and sweep results differ:\nsingle: %+v\nsweep:  %+v", direct, got)
	}
	if agg.Cells[0].Cell.DerivedSeed != 99 {
		t.Errorf("sweep cell seed = %d, want the raw 99", agg.Cells[0].Cell.DerivedSeed)
	}
}

func TestSweepGridShape(t *testing.T) {
	src := `{
		"topologies": [{"name": "path", "params": {"n": 16}}, {"name": "path", "params": {"n": 32}}],
		"protocols": [{"name": "ppts"}, {"name": "greedy-fifo"}],
		"adversary": {"name": "random", "params": {"d": 2}},
		"bound": {"rho": "1/2", "sigma": 2},
		"rounds": 20,
		"bandwidths": [1, 2],
		"seeds": [1, 2, 3]
	}`
	sc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if sc.IsSingle() {
		t.Fatal("list-valued scenario claims to be single")
	}
	if _, err := sc.CompileSingle(); err == nil {
		t.Error("CompileSingle on a grid must fail")
	}
	agg, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 2 * 2 * 3 // topologies × protocols × bandwidths × seeds
	if agg.Requested != want || agg.Completed != want {
		t.Errorf("grid = %d requested / %d completed, want %d (first err: %v)",
			agg.Requested, agg.Completed, want, agg.FirstErr())
	}
}

func TestLowerBoundScenario(t *testing.T) {
	src := `{
		"protocol": {"name": "ppts"},
		"adversary": {"name": "lowerbound", "params": {"m": 4, "ell": 2}},
		"bound": {"rho": "3/4", "sigma": 0}
	}`
	sc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	single, err := sc.CompileSingle()
	if err != nil {
		t.Fatal(err)
	}
	if single.Rounds != 64 {
		t.Errorf("rounds = %d, want the construction's 64", single.Rounds)
	}
	if single.Bound.Sigma != 1 {
		t.Errorf("sigma = %d, want the construction's 1", single.Bound.Sigma)
	}
	if !strings.Contains(single.Note, "Theorem 5.1") {
		t.Errorf("note = %q", single.Note)
	}
	if _, err := sim.Run(context.Background(), single.Spec()); err != nil {
		t.Fatal(err)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown protocol suggests", `{
			"topology": {"name": "path"}, "protocol": {"name": "ptss"},
			"adversary": {"name": "stream"}, "bound": {"rho": "1", "sigma": 1}, "rounds": 10
		}`, `did you mean "pts"?`},
		{"unknown topology", `{
			"topology": {"name": "ring"}, "protocol": {"name": "pts"},
			"adversary": {"name": "stream"}, "bound": {"rho": "1", "sigma": 1}, "rounds": 10
		}`, "unknown topology"},
		{"unknown param suggests", `{
			"topology": {"name": "path", "params": {"m": 8}}, "protocol": {"name": "pts"},
			"adversary": {"name": "stream"}, "bound": {"rho": "1", "sigma": 1}, "rounds": 10
		}`, `did you mean "n"?`},
		{"bad rho", `{
			"topology": {"name": "path"}, "protocol": {"name": "pts"},
			"adversary": {"name": "stream"}, "bound": {"rho": "fast", "sigma": 1}, "rounds": 10
		}`, "bad"},
		{"missing rounds", `{
			"topology": {"name": "path"}, "protocol": {"name": "pts"},
			"adversary": {"name": "stream"}, "bound": {"rho": "1", "sigma": 1}
		}`, "no rounds"},
		{"lowerbound rejects topology", `{
			"topology": {"name": "path"}, "protocol": {"name": "ppts"},
			"adversary": {"name": "lowerbound"}, "bound": {"rho": "1/2", "sigma": 1}
		}`, "dictates its own topology"},
		{"lowerbound rejects a seeds axis", `{
			"protocol": {"name": "ppts"}, "seeds": [1, 2, 3],
			"adversary": {"name": "lowerbound"}, "bound": {"rho": "1/2", "sigma": 1}
		}`, "drop seeds"},
		{"lowerbound rejects rounds", `{
			"protocol": {"name": "ppts"},
			"adversary": {"name": "lowerbound"}, "bound": {"rho": "1/2", "sigma": 1}, "rounds": 10
		}`, "dictates its own horizon"},
		{"singular and plural clash", `{
			"topology": {"name": "path"}, "topologies": [{"name": "path"}],
			"protocol": {"name": "pts"},
			"adversary": {"name": "stream"}, "bound": {"rho": "1", "sigma": 1}, "rounds": 10
		}`, "use one"},
		{"unknown top-level key", `{
			"topology": {"name": "path"}, "protocol": {"name": "pts"}, "rho": "1",
			"adversary": {"name": "stream"}, "bound": {"rho": "1", "sigma": 1}, "rounds": 10
		}`, "unknown field"},
		{"duplicate axis entry", `{
			"topology": {"name": "path"}, "protocols": [{"name": "pts"}, {"name": "pts"}],
			"adversary": {"name": "stream"}, "bound": {"rho": "1", "sigma": 1}, "rounds": 10
		}`, "duplicate protocol"},
		{"duplicate seed", `{
			"topology": {"name": "path"}, "protocol": {"name": "pts"}, "seeds": [7, 7],
			"adversary": {"name": "stream"}, "bound": {"rho": "1", "sigma": 1}, "rounds": 10
		}`, "duplicate seed"},
		{"duplicate bound after reduction", `{
			"topology": {"name": "path"}, "protocol": {"name": "pts"},
			"adversary": {"name": "stream"}, "bounds": [{"rho": "2/4", "sigma": 1}, {"rho": "1/2", "sigma": 1}],
			"rounds": 10
		}`, "duplicate bound"},
		{"duplicate bandwidth", `{
			"topology": {"name": "path"}, "protocol": {"name": "pts"}, "bandwidths": [2, 2],
			"adversary": {"name": "stream"}, "bound": {"rho": "1", "sigma": 1}, "rounds": 10
		}`, "duplicate bandwidths"},
		{"zero bandwidth", `{
			"topology": {"name": "path"}, "protocol": {"name": "pts"}, "bandwidth": 0,
			"adversary": {"name": "stream"}, "bound": {"rho": "1", "sigma": 1}, "rounds": 10
		}`, "bandwidth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q missing %q", err, tc.want)
			}
		})
	}
}

func TestInvariantViolationAbortsRun(t *testing.T) {
	src := `{
		"topology": {"name": "path", "params": {"n": 16}},
		"protocol": {"name": "greedy-fifo"},
		"adversary": {"name": "random", "params": {"d": 4}},
		"bound": {"rho": "1", "sigma": 4},
		"rounds": 200,
		"invariants": [{"name": "max-load", "params": {"bound": 0}}]
	}`
	sc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(context.Background(), spec); err == nil {
		t.Error("max-load 0 must be violated")
	}
}
