// Package scenario makes simulation workloads data: a Scenario is a
// serializable description of what to run — topology, protocol, adversary,
// (ρ,σ) bound, horizon, bandwidths, seeds, invariant set, and metric
// set — that
// marshals to and from JSON, validates against the component registry
// (internal/registry), compiles to a sim.Spec when every axis is a single
// point, and lifts to a harness.Sweep when any axis is a list. Reproducing
// a figure means running a file, not editing a program.
//
// # Canonical form
//
// Load accepts a forgiving surface — each axis may be written singular
// ("protocol": {...}) or plural ("protocols": [...]), numbers may be
// scalars or lists, parameters may be omitted — and normalizes it:
// registry defaults are materialized, rationals are reduced to exact
// lowest-terms strings, and singleton axes collapse back to singular keys.
// Marshal always emits this canonical form, so Marshal∘Load is a fixed
// point on canonical files and scenario JSON can be diffed meaningfully.
//
// # Seeds
//
// A scenario's seeds are the adversaries' seeds, verbatim — in single runs
// and in sweep cells alike (the sweep is lifted with RawSeeds). A scenario
// therefore pins exact traffic: the same file always replays the same
// injections, and a one-point scenario reproduces precisely the run its
// flag-based CLI equivalent would execute.
package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/faults"
	"smallbuffers/internal/harness"
	"smallbuffers/internal/metrics"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/registry"
	"smallbuffers/internal/sim"
)

// Component names one registered component plus its parameters. Params is
// the decoded JSON object; Validate resolves it against the component's
// registry schema and rewrites it in canonical form (defaults
// materialized, rationals as exact strings).
type Component struct {
	Name   string         `json:"name"`
	Params map[string]any `json:"params,omitempty"`
}

// Bound is the serializable (ρ,σ) demand bound: ρ travels as an exact
// rational string ("1/2"), never as a float.
type Bound struct {
	Rho   string `json:"rho"`
	Sigma int    `json:"sigma"`
}

// Shard restricts a scenario to the contiguous cell-index range
// [Offset, Offset+Count) of its sweep grid's row-major expansion (the
// global ordering contract — see harness.Cell.Index). A sharded scenario
// is the unit the distribution tier dispatches: it is a complete,
// self-describing scenario file (canonical marshal includes the shard,
// so every shard of a grid has its own distinct digest and is cached
// independently), and its cells execute with their global indices, so
// the records of disjoint shards reassemble by index into exactly the
// record set — and results digest — of the unsharded scenario.
type Shard struct {
	Offset int `json:"offset"`
	Count  int `json:"count"`
}

// Scenario is a declarative description of a simulation workload. Every
// axis is a list; a scenario whose axes all have one point compiles to a
// single sim.Spec, anything larger lifts to a harness.Sweep (the cartesian
// product of the axes).
type Scenario struct {
	// Name and Doc label the scenario in reports and corpora.
	Name string
	Doc  string

	// Topologies is empty exactly when the adversary is self-hosting
	// (the lower-bound construction dictates its own path).
	Topologies  []Component
	Protocols   []Component
	Adversaries []Component
	Bounds      []Bound
	// Rounds is empty exactly when the adversary is self-hosting.
	Rounds []int
	// Bandwidths imposes uniform link bandwidths; empty means as built
	// (the paper's B = 1).
	Bandwidths []int
	// Seeds are the adversary seeds, verbatim; empty normalizes to {1}.
	Seeds []int64
	// Verify re-checks every injection against the declared (ρ,σ) bound.
	Verify bool
	// Invariants are per-round predicates resolved by name (e.g.
	// "max-load" with a bound parameter); a violation aborts the run.
	Invariants []Component
	// Metrics selects the measurement collectors by registry name; every
	// run of the scenario (each sweep cell) gets fresh instances and
	// reports their summaries in its result records. Empty means the
	// default {max_load, latency} set.
	Metrics []Component
	// Faults is a sweep axis of fault models by registry name ("drop",
	// "link_flap", "node_crash"); each cell runs under one entry's model,
	// freshly built and bound to the cell's topology and seed. Empty means
	// loss-free — byte-identical to the pre-fault behaviour.
	Faults []Component
	// Shard, when set, restricts execution to a contiguous cell-index
	// range of the grid (see Shard). Nil means the whole grid; scenarios
	// without a shard marshal byte-identically to the pre-shard schema.
	Shard *Shard

	validated bool
}

// scenarioJSON is the wire form: each axis has a singular and a plural
// key. Load accepts either (but not both); Marshal writes the singular
// key for singleton axes.
type scenarioJSON struct {
	Name        string          `json:"name,omitempty"`
	Doc         string          `json:"doc,omitempty"`
	Topology    json.RawMessage `json:"topology,omitempty"`
	Topologies  json.RawMessage `json:"topologies,omitempty"`
	Protocol    json.RawMessage `json:"protocol,omitempty"`
	Protocols   json.RawMessage `json:"protocols,omitempty"`
	Adversary   json.RawMessage `json:"adversary,omitempty"`
	Adversaries json.RawMessage `json:"adversaries,omitempty"`
	Bound       json.RawMessage `json:"bound,omitempty"`
	Bounds      json.RawMessage `json:"bounds,omitempty"`
	Rounds      json.RawMessage `json:"rounds,omitempty"`
	Bandwidth   json.RawMessage `json:"bandwidth,omitempty"`
	Bandwidths  json.RawMessage `json:"bandwidths,omitempty"`
	Seed        json.RawMessage `json:"seed,omitempty"`
	Seeds       json.RawMessage `json:"seeds,omitempty"`
	Verify      bool            `json:"verify,omitempty"`
	Invariant   json.RawMessage `json:"invariant,omitempty"`
	Invariants  json.RawMessage `json:"invariants,omitempty"`
	Metric      json.RawMessage `json:"metric,omitempty"`
	Metrics     json.RawMessage `json:"metrics,omitempty"`
	Fault       json.RawMessage `json:"fault,omitempty"`
	Faults      json.RawMessage `json:"faults,omitempty"`
	Shard       *Shard          `json:"shard,omitempty"`
}

// Parse decodes and validates a scenario from JSON bytes.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w scenarioJSON
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sc := &Scenario{Name: w.Name, Doc: w.Doc, Verify: w.Verify, Shard: w.Shard}
	var err error
	if sc.Topologies, err = axisList[Component]("topology", w.Topology, w.Topologies); err != nil {
		return nil, err
	}
	if sc.Protocols, err = axisList[Component]("protocol", w.Protocol, w.Protocols); err != nil {
		return nil, err
	}
	if sc.Adversaries, err = axisList[Component]("adversary", w.Adversary, w.Adversaries); err != nil {
		return nil, err
	}
	if sc.Bounds, err = axisList[Bound]("bound", w.Bound, w.Bounds); err != nil {
		return nil, err
	}
	if sc.Rounds, err = axisList[int]("rounds", nil, w.Rounds); err != nil {
		return nil, err
	}
	if sc.Bandwidths, err = axisList[int]("bandwidth", w.Bandwidth, w.Bandwidths); err != nil {
		return nil, err
	}
	if sc.Seeds, err = axisList[int64]("seed", w.Seed, w.Seeds); err != nil {
		return nil, err
	}
	if sc.Invariants, err = axisList[Component]("invariant", w.Invariant, w.Invariants); err != nil {
		return nil, err
	}
	if sc.Metrics, err = axisList[Component]("metric", w.Metric, w.Metrics); err != nil {
		return nil, err
	}
	if sc.Faults, err = axisList[Component]("fault", w.Fault, w.Faults); err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// axisList decodes one axis from its singular and plural raw values: the
// plural may be a JSON array or a bare value, the singular must be a bare
// value, and setting both is an error.
func axisList[T any](key string, singular, plural json.RawMessage) ([]T, error) {
	if singular != nil && plural != nil {
		return nil, fmt.Errorf("scenario: both %q and %q set; use one", key, key+"s")
	}
	raw := plural
	if raw == nil {
		raw = singular
	}
	if raw == nil {
		return nil, nil
	}
	var list []T
	if err := json.Unmarshal(raw, &list); err == nil {
		return list, nil
	}
	var one T
	if err := json.Unmarshal(raw, &one); err != nil {
		return nil, fmt.Errorf("scenario: bad %q: %w", key, err)
	}
	return []T{one}, nil
}

// Load decodes and validates a scenario from r.
func Load(r io.Reader) (*Scenario, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data)
}

// LoadFile decodes and validates the scenario file at path ("-" reads
// standard input).
func LoadFile(path string) (*Scenario, error) {
	if path == "-" {
		return Load(os.Stdin)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sc, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Marshal renders the canonical JSON form (indented, trailing newline):
// singleton axes collapse to singular keys, parameters carry materialized
// defaults, rationals are exact lowest-terms strings. Marshal validates
// first, so the output is always loadable, and Marshal∘Load is a fixed
// point on its own output.
func (sc *Scenario) Marshal() ([]byte, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	w := scenarioJSON{Name: sc.Name, Doc: sc.Doc, Verify: sc.Verify, Shard: sc.Shard}
	var err error
	if w.Topology, w.Topologies, err = axisJSON(sc.Topologies); err != nil {
		return nil, err
	}
	if w.Protocol, w.Protocols, err = axisJSON(sc.Protocols); err != nil {
		return nil, err
	}
	if w.Adversary, w.Adversaries, err = axisJSON(sc.Adversaries); err != nil {
		return nil, err
	}
	if w.Bound, w.Bounds, err = axisJSON(sc.Bounds); err != nil {
		return nil, err
	}
	// "rounds" is its own singular: a scalar when the axis has one point.
	switch len(sc.Rounds) {
	case 0:
	case 1:
		w.Rounds, err = json.Marshal(sc.Rounds[0])
	default:
		w.Rounds, err = json.Marshal(sc.Rounds)
	}
	if err != nil {
		return nil, err
	}
	if w.Bandwidth, w.Bandwidths, err = axisJSON(sc.Bandwidths); err != nil {
		return nil, err
	}
	if w.Seed, w.Seeds, err = axisJSON(sc.Seeds); err != nil {
		return nil, err
	}
	if len(sc.Invariants) > 0 { // invariants always marshal as a list
		if w.Invariants, err = json.Marshal(sc.Invariants); err != nil {
			return nil, err
		}
	}
	if len(sc.Metrics) > 0 { // metrics always marshal as a list
		if w.Metrics, err = json.Marshal(sc.Metrics); err != nil {
			return nil, err
		}
	}
	if w.Fault, w.Faults, err = axisJSON(sc.Faults); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(w); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return buf.Bytes(), nil
}

// axisJSON renders a list as (singular, plural) raw values: singleton
// lists fill the singular slot, longer lists the plural one.
func axisJSON[T any](list []T) (json.RawMessage, json.RawMessage, error) {
	switch len(list) {
	case 0:
		return nil, nil, nil
	case 1:
		raw, err := json.Marshal(list[0])
		return raw, nil, err
	default:
		raw, err := json.Marshal(list)
		return nil, raw, err
	}
}

// Validate checks the scenario against the registry and normalizes it in
// place: component parameters are resolved (unknown names and parameters
// fail with suggestions) and rewritten canonically, rationals are reduced,
// and defaulted axes (seeds) are materialized. Validate is idempotent.
func (sc *Scenario) Validate() error {
	if sc.validated {
		return nil
	}
	if len(sc.Protocols) == 0 {
		return fmt.Errorf("scenario: no protocol")
	}
	if len(sc.Adversaries) == 0 {
		return fmt.Errorf("scenario: no adversary")
	}
	if len(sc.Bounds) == 0 {
		return fmt.Errorf("scenario: no bound")
	}

	selfHosting, err := sc.selfHosting()
	if err != nil {
		return err
	}
	if selfHosting {
		if len(sc.Adversaries) != 1 {
			return fmt.Errorf("scenario: a self-hosting adversary must be the only adversary")
		}
		if len(sc.Topologies) != 0 {
			return fmt.Errorf("scenario: adversary %q dictates its own topology; drop the topology axis", sc.Adversaries[0].Name)
		}
		if len(sc.Rounds) != 0 {
			return fmt.Errorf("scenario: adversary %q dictates its own horizon; drop rounds", sc.Adversaries[0].Name)
		}
		if len(sc.Bounds) != 1 {
			return fmt.Errorf("scenario: a self-hosting adversary needs exactly one bound")
		}
		if len(sc.Seeds) > 1 {
			return fmt.Errorf("scenario: adversary %q is deterministic; a seeds axis would run identical cells — drop seeds", sc.Adversaries[0].Name)
		}
	} else {
		if len(sc.Topologies) == 0 {
			return fmt.Errorf("scenario: no topology")
		}
		if len(sc.Rounds) == 0 {
			return fmt.Errorf("scenario: no rounds")
		}
	}
	for _, r := range sc.Rounds {
		if r < 0 {
			return fmt.Errorf("scenario: negative rounds %d", r)
		}
	}
	for _, b := range sc.Bandwidths {
		if b < 1 {
			return fmt.Errorf("scenario: bandwidth %d < 1", b)
		}
	}
	if len(sc.Seeds) == 0 {
		sc.Seeds = []int64{1}
	}

	// Resolve every component against its registry schema and rewrite the
	// parameters canonically.
	for i := range sc.Topologies {
		e, err := registry.LookupTopology(sc.Topologies[i].Name)
		if err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		if err := normalize(&sc.Topologies[i], e.Params); err != nil {
			return fmt.Errorf("scenario: topology %q: %w", e.Name, err)
		}
	}
	for i := range sc.Protocols {
		e, err := registry.LookupProtocol(sc.Protocols[i].Name)
		if err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		if err := normalize(&sc.Protocols[i], e.Params); err != nil {
			return fmt.Errorf("scenario: protocol %q: %w", e.Name, err)
		}
	}
	for i := range sc.Adversaries {
		e, err := registry.LookupAdversary(sc.Adversaries[i].Name)
		if err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		if err := normalize(&sc.Adversaries[i], e.Params); err != nil {
			return fmt.Errorf("scenario: adversary %q: %w", e.Name, err)
		}
	}
	for i := range sc.Invariants {
		e, err := registry.LookupInvariant(sc.Invariants[i].Name)
		if err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		if err := normalize(&sc.Invariants[i], e.Params); err != nil {
			return fmt.Errorf("scenario: invariant %q: %w", e.Name, err)
		}
	}
	for i := range sc.Metrics {
		e, err := registry.LookupMetric(sc.Metrics[i].Name)
		if err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		if err := normalize(&sc.Metrics[i], e.Params); err != nil {
			return fmt.Errorf("scenario: metric %q: %w", e.Name, err)
		}
	}
	for i := range sc.Faults {
		e, err := registry.LookupFault(sc.Faults[i].Name)
		if err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		if err := normalize(&sc.Faults[i], e.Params); err != nil {
			return fmt.Errorf("scenario: fault %q: %w", e.Name, err)
		}
	}
	// Metric names must be unique — summaries key on the collector name,
	// so two entries of the same metric would silently shadow each other.
	seenMetrics := map[string]bool{}
	for _, m := range sc.Metrics {
		if seenMetrics[m.Name] {
			return fmt.Errorf("scenario: duplicate metric %q", m.Name)
		}
		seenMetrics[m.Name] = true
	}

	// Canonicalize bounds: exact, reduced, non-negative σ.
	for i, b := range sc.Bounds {
		rho, err := rat.Parse(b.Rho)
		if err != nil {
			return fmt.Errorf("scenario: bound %d: bad rho: %w", i, err)
		}
		if rho.Sign() < 0 {
			return fmt.Errorf("scenario: bound %d: negative rho %v", i, rho)
		}
		if b.Sigma < 0 {
			return fmt.Errorf("scenario: bound %d: negative sigma %d", i, b.Sigma)
		}
		sc.Bounds[i].Rho = rho.String()
	}

	// Axis entries must be unique — on every axis: duplicate cells would
	// silently re-run the same point and double-weight it in aggregates.
	// Axes check in a fixed order (a map literal here would pick which
	// duplicate gets reported nondeterministically).
	for _, axis := range []struct {
		name  string
		comps []Component
	}{
		{"topology", sc.Topologies}, {"protocol", sc.Protocols},
		{"adversary", sc.Adversaries}, {"fault", sc.Faults},
	} {
		seen := map[string]bool{}
		for _, c := range axis.comps {
			l := c.label()
			if seen[l] {
				return fmt.Errorf("scenario: duplicate %s %s", axis.name, l)
			}
			seen[l] = true
		}
	}
	for _, axis := range []struct {
		name string
		vals []int
	}{
		{"rounds", sc.Rounds}, {"bandwidths", sc.Bandwidths},
	} {
		seen := map[int]bool{}
		for _, v := range axis.vals {
			if seen[v] {
				return fmt.Errorf("scenario: duplicate %s entry %d", axis.name, v)
			}
			seen[v] = true
		}
	}
	seenSeeds := map[int64]bool{}
	for _, s := range sc.Seeds {
		if seenSeeds[s] {
			return fmt.Errorf("scenario: duplicate seed %d", s)
		}
		seenSeeds[s] = true
	}
	// Bounds compare after ρ canonicalization ("2/4" and "1/2" are the
	// same point).
	seenBounds := map[Bound]bool{}
	for _, b := range sc.Bounds {
		if seenBounds[b] {
			return fmt.Errorf("scenario: duplicate bound (ρ=%s, σ=%d)", b.Rho, b.Sigma)
		}
		seenBounds[b] = true
	}

	// A shard must name a non-empty range inside the grid; validating it
	// here means a sharded scenario file is rejected at load time when
	// its range cannot exist, not when a remote daemon tries to run it.
	if sh := sc.Shard; sh != nil {
		if sh.Offset < 0 || sh.Count < 1 {
			return fmt.Errorf("scenario: shard needs offset ≥ 0 and count ≥ 1, got [%d,+%d)", sh.Offset, sh.Count)
		}
		if total := sc.gridSize(); sh.Offset+sh.Count > total {
			return fmt.Errorf("scenario: shard [%d,%d) exceeds the %d-cell grid", sh.Offset, sh.Offset+sh.Count, total)
		}
	}

	sc.validated = true
	return nil
}

// gridSize computes the row-major grid size from the axis lengths;
// optional axes count as one point (the harness expands them the same
// way). Callers must have materialized defaulted axes (Validate does).
func (sc *Scenario) gridSize() int {
	dim := func(n int) int {
		if n == 0 {
			return 1
		}
		return n
	}
	return dim(len(sc.Topologies)) * dim(len(sc.Protocols)) * dim(len(sc.Adversaries)) *
		dim(len(sc.Bounds)) * dim(len(sc.Bandwidths)) * dim(len(sc.Faults)) *
		dim(len(sc.Seeds)) * dim(len(sc.Rounds))
}

// GridSize returns the number of cells in the scenario's sweep grid —
// the size of the row-major expansion Sweep executes. The shard does not
// change it: a shard restricts which cells run, never the grid they are
// indexed against.
func (sc *Scenario) GridSize() (int, error) {
	if err := sc.Validate(); err != nil {
		return 0, err
	}
	return sc.gridSize(), nil
}

// CellWeights returns per-cell cost weights for the scenario's grid —
// one entry per cell of the row-major expansion, the cell's topology
// node count — the input to size-aware partitioning
// (harness.PartitionCellsWeighted): a 4096-node cell costs what it
// costs wherever it lands, so shards should balance total node count,
// not cell count. Topology is the grid's outermost axis, so each
// topology's weight fills a contiguous block of gridSize/len(topologies)
// cells; each topology is built once here. Self-hosting scenarios carry
// a single construction-dictated topology, so their weights are uniform
// (weight 1 — a weighted partition of uniform weights is the plain
// one). Weights feed work distribution only; they never change what any
// cell computes, so result digests are independent of them.
func (sc *Scenario) CellWeights() ([]int, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	total := sc.gridSize()
	selfHosting, err := sc.selfHosting()
	if err != nil {
		return nil, err
	}
	weights := make([]int, total)
	if selfHosting || len(sc.Topologies) == 0 {
		for i := range weights {
			weights[i] = 1
		}
		return weights, nil
	}
	block := total / len(sc.Topologies)
	for t, c := range sc.Topologies {
		e, err := registry.LookupTopology(c.Name)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		p, err := resolved(c, e.Params)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		nw, err := e.Build(p)
		if err != nil {
			return nil, fmt.Errorf("scenario: topology %s: %w", c.label(), err)
		}
		w := nw.Len()
		if w < 1 {
			w = 1
		}
		for i := t * block; i < (t+1)*block; i++ {
			weights[i] = w
		}
	}
	return weights, nil
}

// Slice returns a copy of the scenario restricted to the cell-index
// range [offset, offset+count) — the sub-scenario a coordinator
// dispatches as one shard. The copy is a complete scenario: it marshals
// canonically (so Marshal∘Load stays a fixed point and its digest is
// distinct from the parent's and from every other shard's), and running
// it executes exactly the named cells with their global indices.
// Slicing an already-sharded scenario is an error: shard ranges index
// the full grid, so nesting would silently re-base them.
func (sc *Scenario) Slice(offset, count int) (*Scenario, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.Shard != nil {
		return nil, fmt.Errorf("scenario: %s is already sharded (%+v); slice the unsharded parent", sc.label(), *sc.Shard)
	}
	// The copy shares the parent's materialized axes, which the Validate
	// above has already normalized, so only the shard range needs
	// checking here. Skipping the full re-validation is also what makes
	// Slice safe to call concurrently: Validate materializes defaults
	// into the shared parameter maps.
	if offset < 0 || count < 1 {
		return nil, fmt.Errorf("scenario: shard needs offset ≥ 0 and count ≥ 1, got [%d,+%d)", offset, count)
	}
	if total := sc.gridSize(); offset+count > total {
		return nil, fmt.Errorf("scenario: shard [%d,%d) exceeds the %d-cell grid", offset, offset+count, total)
	}
	out := *sc
	out.Shard = &Shard{Offset: offset, Count: count}
	return &out, nil
}

// normalize resolves a component's raw params against its schema and
// stores the canonical JSON form back on the component.
func normalize(c *Component, schema registry.Schema) error {
	p, err := schema.Resolve(c.Params)
	if err != nil {
		return err
	}
	c.Params = p.JSONMap()
	return nil
}

// resolved returns the component's params re-resolved against schema; the
// component must have been normalized (Validate).
func resolved(c Component, schema registry.Schema) (registry.Params, error) {
	return schema.Resolve(c.Params)
}

// label renders the component for axis names and error messages:
// "path(n=16)"; parameterless components are just the name.
func (c Component) label() string {
	if len(c.Params) == 0 {
		return c.Name
	}
	keys := make([]string, 0, len(c.Params))
	for k := range c.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, c.Params[k]))
	}
	return c.Name + "(" + strings.Join(parts, ",") + ")"
}

// selfHosting reports whether the scenario's (first) adversary dictates
// its own topology and horizon.
func (sc *Scenario) selfHosting() (bool, error) {
	for _, a := range sc.Adversaries {
		e, err := registry.LookupAdversary(a.Name)
		if err != nil {
			return false, fmt.Errorf("scenario: %w", err)
		}
		if e.SelfHosting() {
			return true, nil
		}
	}
	return false, nil
}

// IsSingle reports whether every axis has at most one point, i.e. the
// scenario describes one run rather than a sweep grid. A sharded
// scenario is never single: it names part of a grid and always executes
// through the sweep path, where cell indices stay global.
func (sc *Scenario) IsSingle() bool {
	return sc.Shard == nil &&
		len(sc.Topologies) <= 1 && len(sc.Protocols) <= 1 && len(sc.Adversaries) <= 1 &&
		len(sc.Bounds) <= 1 && len(sc.Rounds) <= 1 && len(sc.Bandwidths) <= 1 && len(sc.Seeds) <= 1 &&
		len(sc.Faults) <= 1
}

// Single is a fully materialized one-point scenario: the built topology,
// protocol, and adversary, the effective bound and horizon (self-hosting
// adversaries override both), and the report annotations.
type Single struct {
	Net       *network.Network
	Protocol  sim.Protocol
	Adversary adversary.Adversary
	Bound     adversary.Bound
	Rounds    int
	Seed      int64
	// TopologyLabel names the topology for reports ("path(n=64)"; the
	// adversary's label for self-hosting patterns).
	TopologyLabel string
	// Note is the paper annotation: the protocol's predicted bound, or the
	// self-hosting adversary's floor.
	Note       string
	Verify     bool
	Invariants []sim.Invariant
	// Metrics are the scenario-selected collector instances. Collectors
	// are stateful and single-run: a Single materializes one run, so its
	// Spec must be executed at most once.
	Metrics []metrics.Collector
	// Faults is the scenario's fault model, already bound (Reset) to the
	// built topology and the run's seed; nil means loss-free. Like the
	// collectors it is stateless-per-query but freshly built per run.
	Faults faults.Model
	// FaultLabel names the fault entry for reports ("drop(p=1/20)").
	FaultLabel string
}

// Spec assembles the run description, folding in the scenario's
// invariants, metric collectors, and verification flag plus any extra
// options (observers, deadlines).
func (s *Single) Spec(extra ...sim.Option) sim.Spec {
	opts := make([]sim.Option, 0, 4+len(extra))
	if len(s.Invariants) > 0 {
		opts = append(opts, sim.WithInvariants(s.Invariants...))
	}
	if len(s.Metrics) > 0 {
		opts = append(opts, sim.WithMetrics(s.Metrics...))
	}
	if s.Faults != nil {
		opts = append(opts, sim.WithFaults(s.Faults))
	}
	if s.Verify {
		opts = append(opts, sim.WithVerifyAdversary())
	}
	opts = append(opts, extra...)
	return sim.NewSpec(s.Net, s.Protocol, s.Adversary, s.Rounds, opts...)
}

// CompileSingle materializes a one-point scenario. It fails on scenarios
// with list-valued axes (use Sweep for those).
func (sc *Scenario) CompileSingle() (*Single, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if !sc.IsSingle() {
		return nil, fmt.Errorf("scenario: %s describes a grid (list-valued axes or a shard); compile it with Sweep", sc.label())
	}

	bound, err := sc.bound(0)
	if err != nil {
		return nil, err
	}
	single := &Single{Bound: bound, Seed: sc.Seeds[0], Verify: sc.Verify}
	if len(sc.Rounds) == 1 {
		single.Rounds = sc.Rounds[0]
	}

	advEntry, err := registry.LookupAdversary(sc.Adversaries[0].Name)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	advParams, err := resolved(sc.Adversaries[0], advEntry.Params)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}

	if advEntry.SelfHosting() {
		prep, err := advEntry.Prepare(bound, advParams)
		if err != nil {
			return nil, fmt.Errorf("scenario: adversary %q: %w", advEntry.Name, err)
		}
		single.Net = prep.Net
		single.Adversary = prep.Adversary
		single.Bound = prep.Bound
		single.Rounds = prep.Rounds
		single.Note = prep.Note
		single.TopologyLabel = sc.Adversaries[0].label()
	} else {
		topoEntry, err := registry.LookupTopology(sc.Topologies[0].Name)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		topoParams, err := resolved(sc.Topologies[0], topoEntry.Params)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		nw, err := topoEntry.Build(topoParams)
		if err != nil {
			return nil, fmt.Errorf("scenario: topology %q: %w", topoEntry.Name, err)
		}
		single.Net = nw
		single.TopologyLabel = sc.Topologies[0].label()
	}
	if len(sc.Bandwidths) == 1 {
		nw, err := single.Net.WithBandwidths(network.WithUniformBandwidth(sc.Bandwidths[0]))
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		single.Net = nw
	}

	protoEntry, err := registry.LookupProtocol(sc.Protocols[0].Name)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	protoParams, err := resolved(sc.Protocols[0], protoEntry.Params)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if single.Protocol, err = protoEntry.Build(protoParams); err != nil {
		return nil, fmt.Errorf("scenario: protocol %q: %w", protoEntry.Name, err)
	}
	if single.Note == "" && protoEntry.Note != nil {
		single.Note = protoEntry.Note(protoParams, single.Bound)
	}

	if single.Adversary == nil {
		single.Adversary, err = advEntry.Build(registry.AdversaryContext{
			Net: single.Net, Bound: bound, Seed: single.Seed, Rounds: single.Rounds,
		}, advParams)
		if err != nil {
			return nil, fmt.Errorf("scenario: adversary %q: %w", advEntry.Name, err)
		}
	}

	if single.Invariants, err = sc.buildInvariants(single.Net); err != nil {
		return nil, err
	}
	if single.Metrics, err = sc.buildMetrics(); err != nil {
		return nil, err
	}
	if len(sc.Faults) == 1 {
		fm, err := sc.buildFault(sc.Faults[0], single.Net, single.Seed)
		if err != nil {
			return nil, err
		}
		single.Faults = fm
		single.FaultLabel = sc.Faults[0].label()
	}
	return single, nil
}

// Compile compiles a one-point scenario directly to a sim.Spec.
func (sc *Scenario) Compile() (sim.Spec, error) {
	s, err := sc.CompileSingle()
	if err != nil {
		return sim.Spec{}, err
	}
	return s.Spec(), nil
}

// buildInvariants materializes the scenario's invariant set against a
// built topology.
func (sc *Scenario) buildInvariants(nw *network.Network) ([]sim.Invariant, error) {
	if len(sc.Invariants) == 0 {
		return nil, nil
	}
	out := make([]sim.Invariant, 0, len(sc.Invariants))
	for _, c := range sc.Invariants {
		e, err := registry.LookupInvariant(c.Name)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		p, err := resolved(c, e.Params)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		inv, err := e.Build(nw, p)
		if err != nil {
			return nil, fmt.Errorf("scenario: invariant %q: %w", e.Name, err)
		}
		out = append(out, inv)
	}
	return out, nil
}

// buildMetrics materializes fresh collector instances from the
// scenario's metric set. Fresh per call — collectors are stateful and
// single-run, so every sweep cell rebuilds its own.
func (sc *Scenario) buildMetrics() ([]metrics.Collector, error) {
	if len(sc.Metrics) == 0 {
		return nil, nil
	}
	out := make([]metrics.Collector, 0, len(sc.Metrics))
	for _, c := range sc.Metrics {
		e, err := registry.LookupMetric(c.Name)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		p, err := resolved(c, e.Params)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		col, err := e.Build(p)
		if err != nil {
			return nil, fmt.Errorf("scenario: metric %q: %w", e.Name, err)
		}
		out = append(out, col)
	}
	return out, nil
}

// buildFault materializes one fault-axis entry: a fresh model built from
// its registry entry and bound (Reset) to the given topology and seed.
// Fresh per call — fault schedules are keyed off the bound seed, so every
// sweep cell rebuilds its own.
func (sc *Scenario) buildFault(c Component, nw *network.Network, seed int64) (faults.Model, error) {
	e, err := registry.LookupFault(c.Name)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	p, err := resolved(c, e.Params)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	m, err := e.Build(p)
	if err != nil {
		return nil, fmt.Errorf("scenario: fault %q: %w", e.Name, err)
	}
	if err := m.Reset(nw, seed); err != nil {
		return nil, fmt.Errorf("scenario: fault %q: %w", e.Name, err)
	}
	return m, nil
}

// bound parses the i-th declared bound.
func (sc *Scenario) bound(i int) (adversary.Bound, error) {
	rho, err := rat.Parse(sc.Bounds[i].Rho)
	if err != nil {
		return adversary.Bound{}, fmt.Errorf("scenario: bound %d: %w", i, err)
	}
	return adversary.Bound{Rho: rho, Sigma: sc.Bounds[i].Sigma}, nil
}

// Sweep lifts the scenario to a harness.Sweep over the cartesian product
// of its axes. Seeds are passed to adversaries verbatim (RawSeeds), so a
// one-point sweep cell reproduces exactly the run CompileSingle describes.
func (sc *Scenario) Sweep() (*harness.Sweep, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sw := &harness.Sweep{
		Seeds:           sc.Seeds,
		Rounds:          sc.Rounds,
		Bandwidths:      sc.Bandwidths,
		RawSeeds:        true,
		VerifyAdversary: sc.Verify,
	}
	if sc.Shard != nil {
		sw.ShardOffset = sc.Shard.Offset
		sw.ShardCount = sc.Shard.Count
	}
	for i := range sc.Bounds {
		b, err := sc.bound(i)
		if err != nil {
			return nil, err
		}
		sw.Bounds = append(sw.Bounds, b)
	}

	for _, c := range sc.Protocols {
		e, err := registry.LookupProtocol(c.Name)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		p, err := resolved(c, e.Params)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		entry := e
		sw.Protocols = append(sw.Protocols, harness.ProtocolSpec{
			Name: c.label(),
			New:  func() (sim.Protocol, error) { return entry.Build(p) },
		})
	}

	selfHosting, err := sc.selfHosting()
	if err != nil {
		return nil, err
	}
	if selfHosting {
		// The construction dictates topology and horizon: prepare once to
		// size the grid, and have each cell re-prepare a fresh pattern.
		e, err := registry.LookupAdversary(sc.Adversaries[0].Name)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		p, err := resolved(sc.Adversaries[0], e.Params)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		bound := sw.Bounds[0]
		prep, err := e.Prepare(bound, p)
		if err != nil {
			return nil, fmt.Errorf("scenario: adversary %q: %w", e.Name, err)
		}
		label := sc.Adversaries[0].label()
		entry := e
		// The network is immutable and every cell shares the one bound, so
		// the upfront Prepare's Net serves all cells; only the adversary is
		// stateful and must be re-prepared per cell.
		sw.Topologies = []harness.TopologySpec{{
			Name: label,
			New:  func() (*network.Network, error) { return prep.Net, nil },
		}}
		sw.Adversaries = []harness.AdversarySpec{{
			Name: label,
			New: func(_ *network.Network, b adversary.Bound, _ int64, _ int) (adversary.Adversary, error) {
				pr, err := entry.Prepare(b, p)
				if err != nil {
					return nil, err
				}
				return pr.Adversary, nil
			},
		}}
		sw.Rounds = []int{prep.Rounds}
		// The construction declares its own bound (σ = 1).
		sw.Bounds = []adversary.Bound{prep.Bound}
	} else {
		for _, c := range sc.Topologies {
			e, err := registry.LookupTopology(c.Name)
			if err != nil {
				return nil, fmt.Errorf("scenario: %w", err)
			}
			p, err := resolved(c, e.Params)
			if err != nil {
				return nil, fmt.Errorf("scenario: %w", err)
			}
			entry := e
			sw.Topologies = append(sw.Topologies, harness.TopologySpec{
				Name: c.label(),
				New:  func() (*network.Network, error) { return entry.Build(p) },
			})
		}
		for _, c := range sc.Adversaries {
			e, err := registry.LookupAdversary(c.Name)
			if err != nil {
				return nil, fmt.Errorf("scenario: %w", err)
			}
			p, err := resolved(c, e.Params)
			if err != nil {
				return nil, fmt.Errorf("scenario: %w", err)
			}
			entry := e
			sw.Adversaries = append(sw.Adversaries, harness.AdversarySpec{
				Name: c.label(),
				New: func(nw *network.Network, b adversary.Bound, seed int64, rounds int) (adversary.Adversary, error) {
					return entry.Build(registry.AdversaryContext{Net: nw, Bound: b, Seed: seed, Rounds: rounds}, p)
				},
			})
		}
	}

	if len(sc.Invariants) > 0 {
		sw.Invariants = func(_ harness.Cell, nw *network.Network) []sim.Invariant {
			invs, err := sc.buildInvariants(nw)
			if err != nil {
				// Invariant params were validated; a build failure here is a
				// topology mismatch, surfaced as a failing invariant.
				return []sim.Invariant{func(sim.View) error { return err }}
			}
			return invs
		}
	}
	if len(sc.Metrics) > 0 {
		sw.Metrics = func(harness.Cell, *network.Network) ([]metrics.Collector, error) {
			return sc.buildMetrics()
		}
	}
	for _, c := range sc.Faults {
		comp := c
		sw.Faults = append(sw.Faults, harness.FaultSpec{
			Name: comp.label(),
			New: func(nw *network.Network, seed int64) (faults.Model, error) {
				return sc.buildFault(comp, nw, seed)
			},
		})
	}
	return sw, nil
}

// Run executes the scenario under ctx: every cell of the (possibly
// one-point) grid, aggregated. Per-cell failures are recorded on the
// cells, not returned as the error; cancellation returns the partial
// result with the context's error.
func (sc *Scenario) Run(ctx context.Context) (*harness.SweepResult, error) {
	sw, err := sc.Sweep()
	if err != nil {
		return nil, err
	}
	return sw.Run(ctx)
}

// label names the scenario in errors.
func (sc *Scenario) label() string {
	if sc.Name != "" {
		return fmt.Sprintf("scenario %q", sc.Name)
	}
	return "scenario"
}
