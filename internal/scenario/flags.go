package scenario

import (
	"fmt"

	"smallbuffers/internal/registry"
)

// Flags is the bridge from a flag-style flat parameter namespace to a
// one-point scenario: the CLIs parse their flags into it and FromFlags
// assembles (and validates) the scenario, so a flag invocation and a
// scenario file converge on the same representation — and -dump-scenario
// is just Marshal.
type Flags struct {
	Topology  string
	Protocol  string
	Adversary string
	// Params is the flat flag namespace (n, spine, legs, arms, len,
	// height, ell, drain, d, m, …). Each component keeps exactly the
	// entries its registry schema declares; the rest are ignored, the way
	// one -ell flag has always served both hpts and the lower bound.
	Params map[string]any
	// Rho is the exact rational injection rate ("1/2").
	Rho    string
	Sigma  int
	Rounds int
	// Bandwidth is the uniform link bandwidth B ≥ 1; 1 (the paper's unit
	// capacity, every registered topology's default) leaves the scenario's
	// bandwidth axis unset. Values below 1 are rejected.
	Bandwidth int
	Seed      int64
	Verify    bool
	// Metrics selects measurement collectors by registry name (with
	// default parameters); empty leaves the scenario's metric set unset,
	// i.e. the default {max_load, latency} pair.
	Metrics []string
	// Fault selects a fault model by registry name; its parameters (p,
	// period, down, node, at, for) ride the flat Params namespace like any
	// component's. Empty means loss-free.
	Fault string
}

// FromFlags assembles and validates a one-point scenario from a flat flag
// namespace. Self-hosting adversaries (the lower-bound construction) drop
// the topology and rounds axes automatically, mirroring how the flag CLIs
// have always treated them.
func FromFlags(f Flags) (*Scenario, error) {
	if f.Bandwidth < 1 {
		return nil, fmt.Errorf("scenario: bandwidth must be ≥ 1, got %d", f.Bandwidth)
	}
	advEntry, err := registry.LookupAdversary(f.Adversary)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sc := &Scenario{
		Adversaries: []Component{componentFor(f.Adversary, advEntry.Params, f.Params)},
		Bounds:      []Bound{{Rho: f.Rho, Sigma: f.Sigma}},
		Seeds:       []int64{f.Seed},
		Verify:      f.Verify,
	}
	protoEntry, err := registry.LookupProtocol(f.Protocol)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sc.Protocols = []Component{componentFor(f.Protocol, protoEntry.Params, f.Params)}
	if !advEntry.SelfHosting() {
		topoEntry, err := registry.LookupTopology(f.Topology)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		sc.Topologies = []Component{componentFor(f.Topology, topoEntry.Params, f.Params)}
		sc.Rounds = []int{f.Rounds}
	}
	if f.Bandwidth > 1 {
		sc.Bandwidths = []int{f.Bandwidth}
	}
	// Unknown names fail in Validate below, same as every other axis.
	for _, name := range f.Metrics {
		sc.Metrics = append(sc.Metrics, Component{Name: name})
	}
	if f.Fault != "" {
		faultEntry, err := registry.LookupFault(f.Fault)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		sc.Faults = []Component{componentFor(f.Fault, faultEntry.Params, f.Params)}
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// componentFor keeps exactly the schema-declared entries of the flat
// namespace.
func componentFor(name string, schema registry.Schema, flat map[string]any) Component {
	params := map[string]any{}
	for _, p := range schema {
		if v, ok := flat[p.Name]; ok {
			params[p.Name] = v
		}
	}
	if len(params) == 0 {
		params = nil
	}
	return Component{Name: name, Params: params}
}
