package scenario

import (
	"crypto/sha256"
	"encoding/hex"
)

// DigestPrefix tags scenario and result digests with the hash they carry,
// so digests are self-describing when they travel through logs, HTTP
// responses, and CI gates.
const DigestPrefix = "sha256:"

// Digest returns the scenario's canonical content address:
// "sha256:<hex>" over the canonical Marshal form. Because Marshal∘Load is
// a fixed point, every JSON spelling of the same workload — singular or
// plural axes, omitted defaults, unreduced rationals — digests to the same
// value, so the digest is a stable cache key for "this exact family of
// runs". Digest validates the scenario first and fails on invalid ones.
func (sc *Scenario) Digest() (string, error) {
	data, err := sc.Marshal()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return DigestPrefix + hex.EncodeToString(sum[:]), nil
}
