package scenario

import (
	"context"
	"strings"
	"testing"

	"smallbuffers/internal/sim"
)

// faultScenario sweeps one protocol over a drop axis — the smallest
// scenario exercising the fault axis end to end.
func faultScenario() []byte {
	return []byte(`{
		"topology": {"name": "path", "params": {"n": 12}},
		"protocol": {"name": "ppts"},
		"adversary": {"name": "random", "params": {"d": 3}},
		"bound": {"rho": "1/2", "sigma": 2},
		"rounds": 200,
		"seeds": [1, 2],
		"metrics": [{"name": "goodput"}, {"name": "drop_rate"}],
		"faults": [{"name": "drop", "params": {"p": "0"}}, {"name": "drop", "params": {"p": "1/10"}}]
	}`)
}

func TestFaultAxisNormalizesAndRoundTrips(t *testing.T) {
	sc, err := Parse(faultScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Faults) != 2 {
		t.Fatalf("fault axis = %v", sc.Faults)
	}
	// Rationals canonicalize to exact lowest-terms strings.
	if sc.Faults[1].Params["p"] != "1/10" {
		t.Errorf("drop p not canonicalized: %v", sc.Faults[1].Params)
	}
	out, err := sc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"faults"`) {
		t.Fatalf("canonical form lacks faults:\n%s", out)
	}
	re, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := re.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(out2) {
		t.Errorf("fault axis breaks the marshal fixed point:\n%s\nvs\n%s", out, out2)
	}
}

func TestFaultAxisSingularKeyCollapses(t *testing.T) {
	sc, err := Parse([]byte(`{
		"topology": {"name": "path"},
		"protocol": {"name": "pts"},
		"adversary": {"name": "stream"},
		"bound": {"rho": "1/2", "sigma": 1},
		"rounds": 20,
		"fault": {"name": "link_flap", "params": {"p": "1/4"}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Faults) != 1 || sc.Faults[0].Name != "link_flap" {
		t.Fatalf("faults = %v", sc.Faults)
	}
	// link_flap defaults materialize.
	if sc.Faults[0].Params["period"] != 32 || sc.Faults[0].Params["down"] != 8 {
		t.Errorf("link_flap defaults not materialized: %v", sc.Faults[0].Params)
	}
	// A singleton axis marshals back to the singular key.
	out, err := sc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"fault"`) || strings.Contains(string(out), `"faults"`) {
		t.Fatalf("singleton fault axis did not collapse to the singular key:\n%s", out)
	}
}

func TestFaultAxisValidation(t *testing.T) {
	for name, body := range map[string]string{
		"unknown name":      `"faults": [{"name": "meteor"}]`,
		"unknown param":     `"faults": [{"name": "drop", "params": {"p": "1/2", "q": 1}}]`,
		"missing required":  `"faults": [{"name": "drop"}]`,
		"p out of range":    `"faults": [{"name": "drop", "params": {"p": "3/2"}}]`,
		"duplicate fault":   `"faults": [{"name": "drop", "params": {"p": "1/2"}}, {"name": "drop", "params": {"p": "2/4"}}]`,
		"singular + plural": `"fault": {"name": "drop", "params": {"p": "1/2"}}, "faults": [{"name": "drop", "params": {"p": "1/4"}}]`,
	} {
		t.Run(name, func(t *testing.T) {
			src := `{
				"topology": {"name": "path"},
				"protocol": {"name": "pts"},
				"adversary": {"name": "stream"},
				"bound": {"rho": "1/2", "sigma": 1},
				"rounds": 20,
				` + body + `}`
			sc, err := Parse([]byte(src))
			if err != nil {
				return // rejected at Parse/Validate
			}
			// Out-of-range params pass schema resolution and must fail at
			// model build time instead.
			if _, err := sc.CompileSingle(); err == nil {
				t.Errorf("scenario with %s compiled", name)
			}
		})
	}
}

func TestCompileSingleBuildsFaultModel(t *testing.T) {
	sc, err := Parse([]byte(`{
		"topology": {"name": "path", "params": {"n": 12}},
		"protocol": {"name": "ppts"},
		"adversary": {"name": "random", "params": {"d": 3}},
		"bound": {"rho": "1/2", "sigma": 2},
		"rounds": 200,
		"fault": {"name": "drop", "params": {"p": "1/4"}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	single, err := sc.CompileSingle()
	if err != nil {
		t.Fatal(err)
	}
	if single.Faults == nil || single.Faults.Name() != "drop" {
		t.Fatalf("Single.Faults = %v", single.Faults)
	}
	if single.FaultLabel != "drop(p=1/4)" {
		t.Errorf("FaultLabel = %q", single.FaultLabel)
	}
	res, err := sim.Run(context.Background(), single.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("p=1/4 drop model dropped nothing over 200 rounds")
	}
	if res.Injected-res.Delivered-res.Dropped != res.Residual {
		t.Errorf("ledger broken: %+v", res)
	}
}

// TestFaultScenarioDigestStableAcrossWorkers carries the reproducibility
// gate up to the scenario layer: the same faulted scenario file digests
// identically at any sweep parallelism, and the zero-drop cells agree
// with the lossy cells on injected traffic (paired comparison).
func TestFaultScenarioDigestStableAcrossWorkers(t *testing.T) {
	digests := make(map[string]bool)
	var digest string
	for _, workers := range []int{1, 3, 8} {
		sc, err := Parse(faultScenario())
		if err != nil {
			t.Fatal(err)
		}
		sw, err := sc.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		sw.Workers = workers
		agg, err := sw.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if agg.Failed > 0 {
			t.Fatal(agg.FirstErr())
		}
		digest = agg.Digest()
		digests[digest] = true
	}
	if len(digests) != 1 {
		t.Fatalf("digest varies with worker count: %v", digests)
	}

	sc, err := Parse(faultScenario())
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	agg, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	recs := agg.Records()
	if len(recs) != 4 { // 2 fault points × 2 seeds
		t.Fatalf("grid has %d cells, want 4", len(recs))
	}
	// Fault cells with the same seed replay identical traffic: the fault
	// axis is excluded from seed derivation.
	bySeed := map[string][]int{}
	for _, rec := range recs {
		if rec.Faults == "" {
			t.Fatalf("cell %q carries no fault label", rec.Cell)
		}
		key := rec.Cell[strings.LastIndex(rec.Cell, "seed="):]
		bySeed[key] = append(bySeed[key], rec.Injected)
		if rec.Faults == "drop(p=0)" && rec.Dropped != 0 {
			t.Errorf("p=0 cell %q dropped %d packets", rec.Cell, rec.Dropped)
		}
		if rec.Injected != rec.Delivered+rec.Dropped+rec.Residual {
			t.Errorf("cell %q breaks the packet ledger: %+v", rec.Cell, rec)
		}
	}
	for seed, injs := range bySeed {
		for _, inj := range injs[1:] {
			if inj != injs[0] {
				t.Errorf("%s: injected traffic differs across fault cells: %v", seed, injs)
			}
		}
	}
}

func TestFromFlagsFault(t *testing.T) {
	sc, err := FromFlags(Flags{
		Topology: "path", Protocol: "pts", Adversary: "random",
		Params:    map[string]any{"n": 12, "d": 3, "p": "1/8", "period": 16, "down": 4},
		Rho:       "1/2",
		Sigma:     2,
		Rounds:    100,
		Bandwidth: 1,
		Seed:      7,
		Fault:     "link_flap",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Faults) != 1 || sc.Faults[0].Name != "link_flap" {
		t.Fatalf("faults = %v", sc.Faults)
	}
	// The fault picks its own params out of the flat namespace; the
	// topology keeps n, the adversary keeps d.
	if sc.Faults[0].Params["p"] != "1/8" || sc.Faults[0].Params["period"] != 16 || sc.Faults[0].Params["down"] != 4 {
		t.Errorf("fault params = %v", sc.Faults[0].Params)
	}
	single, err := sc.CompileSingle()
	if err != nil {
		t.Fatal(err)
	}
	if single.Faults == nil || single.Faults.Name() != "link_flap" {
		t.Fatalf("Single.Faults = %v", single.Faults)
	}
	if _, err := FromFlags(Flags{
		Topology: "path", Protocol: "pts", Adversary: "random",
		Rho: "1/2", Sigma: 2, Rounds: 100, Bandwidth: 1, Seed: 7,
		Fault: "meteor",
	}); err == nil {
		t.Error("unknown fault name accepted")
	}
}
