package scenario

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"smallbuffers/internal/harness"
)

// shardGridSrc is a 12-cell grid (2 protocols × 2 rounds × 3 seeds).
func shardGridSrc() []byte {
	return []byte(`{
		"name": "shard-grid",
		"topology": {"name": "path", "params": {"n": 16}},
		"protocols": [{"name": "ppts"}, {"name": "greedy-fifo"}],
		"adversary": {"name": "random", "params": {"d": 2}},
		"bound": {"rho": "1/2", "sigma": 2},
		"rounds": [20, 40],
		"seeds": [1, 2, 3]
	}`)
}

func TestGridSize(t *testing.T) {
	sc, err := Parse(shardGridSrc())
	if err != nil {
		t.Fatal(err)
	}
	n, err := sc.GridSize()
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Errorf("GridSize = %d, want 12", n)
	}
	single, err := Parse([]byte(`{
		"topology": {"name": "path", "params": {"n": 16}},
		"protocol": {"name": "ppts"},
		"adversary": {"name": "random", "params": {"d": 2}},
		"bound": {"rho": "1/2", "sigma": 2},
		"rounds": 20,
		"seed": 7
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := single.GridSize(); err != nil || n != 1 {
		t.Errorf("single GridSize = %d, %v, want 1", n, err)
	}
}

// TestShardMarshalFixedPoint checks that a sliced scenario survives the
// canonical Marshal∘Load round trip with the shard intact, and that its
// digest differs from the parent's and from every sibling shard's.
func TestShardMarshalFixedPoint(t *testing.T) {
	sc, err := Parse(shardGridSrc())
	if err != nil {
		t.Fatal(err)
	}
	parentDigest, err := sc.Digest()
	if err != nil {
		t.Fatal(err)
	}

	seen := map[string]bool{parentDigest: true}
	for _, rng := range harness.PartitionCells(12, 4) {
		sub, err := sc.Slice(rng.Lo, rng.Count())
		if err != nil {
			t.Fatal(err)
		}
		first, err := sub.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(first, []byte(`"shard"`)) {
			t.Fatalf("shard missing from canonical marshal:\n%s", first)
		}
		re, err := Parse(first)
		if err != nil {
			t.Fatalf("canonical sharded form does not load: %v\n%s", err, first)
		}
		second, err := re.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("shard %v: Marshal∘Load not a fixed point:\n%s\nvs\n%s", rng, first, second)
		}
		if re.Shard == nil || re.Shard.Offset != rng.Lo || re.Shard.Count != rng.Count() {
			t.Errorf("shard %v: round-tripped shard = %+v", rng, re.Shard)
		}
		d, err := sub.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if seen[d] {
			t.Errorf("shard %v: digest %s collides with parent or sibling", rng, d)
		}
		seen[d] = true
	}

	// Slicing did not mutate the parent: same digest, no shard.
	if d, err := sc.Digest(); err != nil || d != parentDigest {
		t.Errorf("parent digest changed after slicing: %s vs %s (%v)", d, parentDigest, err)
	}
	if sc.Shard != nil {
		t.Errorf("parent grew a shard: %+v", sc.Shard)
	}

	// An unsharded scenario's canonical form never mentions the key, so
	// pre-shard digests stay pinned.
	raw, err := sc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte(`"shard"`)) {
		t.Errorf("unsharded marshal mentions shard:\n%s", raw)
	}
}

// TestShardedRunsReassemble runs the grid whole and as every partition
// into k shards through the scenario layer, and requires the merged
// records to reproduce the unsharded digest exactly.
func TestShardedRunsReassemble(t *testing.T) {
	ctx := context.Background()
	parent, err := Parse(shardGridSrc())
	if err != nil {
		t.Fatal(err)
	}
	whole, err := parent.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if whole.Requested != 12 || whole.Completed != 12 {
		t.Fatalf("grid = %d/%d, want 12/12 (first err: %v)", whole.Requested, whole.Completed, whole.FirstErr())
	}
	wantDigest := whole.Digest()

	for _, k := range []int{2, 3, 5} {
		var recs []harness.CellRecord
		for _, rng := range harness.PartitionCells(12, k) {
			sub, err := parent.Slice(rng.Lo, rng.Count())
			if err != nil {
				t.Fatal(err)
			}
			if sub.IsSingle() {
				t.Fatalf("k=%d shard %v claims to be single", k, rng)
			}
			agg, err := sub.Run(ctx)
			if err != nil {
				t.Fatalf("k=%d shard %v: %v", k, rng, err)
			}
			if agg.Requested != rng.Count() {
				t.Fatalf("k=%d shard %v: requested %d, want %d", k, rng, agg.Requested, rng.Count())
			}
			recs = append(recs, agg.Records()...)
		}
		if got := harness.RecordsDigest(recs); got != wantDigest {
			t.Errorf("k=%d: reassembled digest %s, want %s", k, got, wantDigest)
		}
	}
}

// TestShardValidationErrors pins the error paths for malformed shards.
func TestShardValidationErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Scenario)
		wantSub string
	}{
		{"negative offset", func(sc *Scenario) { sc.Shard = &Shard{Offset: -1, Count: 2} }, "offset"},
		{"zero count", func(sc *Scenario) { sc.Shard = &Shard{Offset: 0, Count: 0} }, "count"},
		{"past the grid", func(sc *Scenario) { sc.Shard = &Shard{Offset: 10, Count: 3} }, "exceeds"},
	}
	for _, tc := range cases {
		sc, err := Parse(shardGridSrc())
		if err != nil {
			t.Fatal(err)
		}
		tc.mutate(sc)
		sc.validated = false
		if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.wantSub)
		}
	}

	// Slice rejects out-of-range and nested shards.
	sc, err := Parse(shardGridSrc())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Slice(6, 7); err == nil {
		t.Error("out-of-range slice accepted")
	}
	sub, err := sc.Slice(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Slice(0, 2); err == nil {
		t.Error("slicing a shard accepted")
	}

	// A sharded single-cell scenario still refuses CompileSingle: it
	// indexes into a grid, even a 1×…×1 one.
	one, err := Parse(shardGridSrc())
	if err != nil {
		t.Fatal(err)
	}
	onecell, err := one.Slice(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := onecell.CompileSingle(); err == nil {
		t.Error("CompileSingle on a sharded scenario must fail")
	}
}
