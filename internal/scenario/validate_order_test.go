package scenario

import (
	"strings"
	"testing"
)

// TestDuplicateAxisReportDeterministic pins the fixed axis-report order of
// Validate's uniqueness sweep: with duplicates present on several axes at
// once, the error must always name the same one (topology before protocol
// before adversary; rounds before bandwidths). The check iterated a map
// literal once, which picked the reported axis nondeterministically.
func TestDuplicateAxisReportDeterministic(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"topology wins over protocol and adversary", `{
			"topologies": [{"name": "path"}, {"name": "path"}],
			"protocols": [{"name": "pts"}, {"name": "pts"}],
			"adversaries": [{"name": "stream"}, {"name": "stream"}],
			"bound": {"rho": "1", "sigma": 1}, "rounds": 10
		}`, "duplicate topology"},
		{"protocol wins over adversary", `{
			"topology": {"name": "path"},
			"protocols": [{"name": "pts"}, {"name": "pts"}],
			"adversaries": [{"name": "stream"}, {"name": "stream"}],
			"bound": {"rho": "1", "sigma": 1}, "rounds": 10
		}`, "duplicate protocol"},
		{"rounds wins over bandwidths", `{
			"topology": {"name": "path"}, "protocol": {"name": "pts"},
			"adversary": {"name": "stream"}, "bound": {"rho": "1", "sigma": 1},
			"rounds": [10, 10], "bandwidths": [2, 2]
		}`, "duplicate rounds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// One run proves nothing about iteration order; thirty distinct
			// Parse calls would each re-roll a map seed if one crept back in.
			for i := 0; i < 30; i++ {
				_, err := Parse([]byte(tc.src))
				if err == nil {
					t.Fatal("want error")
				}
				if !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("run %d: error %q missing %q", i, err, tc.want)
				}
			}
		})
	}
}
