package scenario

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"smallbuffers/internal/harness"
	"smallbuffers/internal/metrics"
	"smallbuffers/internal/sim"
)

// metricScenario is a one-point scenario selecting the acceptance
// criterion's metric set.
func metricScenario() []byte {
	return []byte(`{
		"topology": {"name": "path", "params": {"n": 24}},
		"protocol": {"name": "ppts"},
		"adversary": {"name": "random", "params": {"d": 4}},
		"bound": {"rho": "1", "sigma": 2},
		"rounds": 200,
		"seeds": [7, 8],
		"metrics": [{"name": "load_series"}, {"name": "load_hist"}, {"name": "latency"}]
	}`)
}

func TestMetricsAxisNormalizesAndRoundTrips(t *testing.T) {
	sc, err := Parse(metricScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Metrics) != 3 {
		t.Fatalf("metrics axis = %v", sc.Metrics)
	}
	// Defaults materialize: load_series carries cap/tail after Validate.
	if sc.Metrics[0].Name != "load_series" || sc.Metrics[0].Params["cap"] != 512 || sc.Metrics[0].Params["tail"] != 64 {
		t.Errorf("load_series params not defaulted: %v", sc.Metrics[0].Params)
	}
	out, err := sc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"metrics"`) {
		t.Fatalf("canonical form lacks metrics:\n%s", out)
	}
	re, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := re.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(out2) {
		t.Errorf("metrics axis breaks the marshal fixed point:\n%s\nvs\n%s", out, out2)
	}
}

func TestMetricsAxisSingularKey(t *testing.T) {
	sc, err := Parse([]byte(`{
		"topology": {"name": "path"},
		"protocol": {"name": "pts"},
		"adversary": {"name": "stream"},
		"bound": {"rho": "1/2", "sigma": 1},
		"rounds": 20,
		"metric": {"name": "latency"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Metrics) != 1 || sc.Metrics[0].Name != "latency" {
		t.Fatalf("metrics = %v", sc.Metrics)
	}
}

func TestMetricsAxisValidation(t *testing.T) {
	for name, body := range map[string]string{
		"unknown name":      `"metrics": [{"name": "nope"}]`,
		"unknown param":     `"metrics": [{"name": "latency", "params": {"cap": 8}}]`,
		"duplicate metric":  `"metrics": [{"name": "latency"}, {"name": "latency"}]`,
		"singular + plural": `"metric": {"name": "latency"}, "metrics": [{"name": "load_hist"}]`,
	} {
		t.Run(name, func(t *testing.T) {
			src := `{
				"topology": {"name": "path"},
				"protocol": {"name": "pts"},
				"adversary": {"name": "stream"},
				"bound": {"rho": "1/2", "sigma": 1},
				"rounds": 20,
				` + body + `}`
			if _, err := Parse([]byte(src)); err == nil {
				t.Errorf("scenario with %s validated", name)
			}
		})
	}
}

func TestCompileSingleBuildsMetricCollectors(t *testing.T) {
	sc, err := Parse([]byte(`{
		"topology": {"name": "path", "params": {"n": 12}},
		"protocol": {"name": "ppts"},
		"adversary": {"name": "random", "params": {"d": 3}},
		"bound": {"rho": "1", "sigma": 2},
		"rounds": 100,
		"metrics": [{"name": "load_series", "params": {"cap": 32, "tail": 8}}, {"name": "latency"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	single, err := sc.CompileSingle()
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Metrics) != 2 {
		t.Fatalf("Single.Metrics = %v", single.Metrics)
	}
	res, err := sim.Run(context.Background(), single.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) != 2 {
		t.Fatalf("Result.Metrics names = %v, want load_series+latency", metrics.SortedNames(res.Metrics))
	}
	ls := res.Metrics[metrics.NameLoadSeries]
	series, ok := ls.SeriesByKey("max")
	if !ok || series.Rounds != 100 {
		t.Errorf("load_series = %+v", ls)
	}
	if len(series.Tail) != 8 {
		t.Errorf("tail length %d, want the configured 8", len(series.Tail))
	}
}

// TestMetricsDigestStableAcrossExecutionPaths is the acceptance gate at
// the library level: the same metric-selecting scenario produces the
// same results digest through the sweep at any worker count, and the
// records carry the selected summaries.
func TestMetricsDigestStableAcrossExecutionPaths(t *testing.T) {
	digests := make([]string, 0, 3)
	var first []harness.CellRecord
	var firstAgg map[string]metrics.Summary
	for _, workers := range []int{1, 4, 7} {
		sc, err := Parse(metricScenario())
		if err != nil {
			t.Fatal(err)
		}
		sw, err := sc.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		sw.Workers = workers
		agg, err := sw.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if agg.Failed > 0 {
			t.Fatal(agg.FirstErr())
		}
		digests = append(digests, agg.Digest())
		if first == nil {
			first, firstAgg = agg.Records(), agg.Metrics
		} else if !reflect.DeepEqual(agg.Metrics, firstAgg) {
			// Anchored merges fold in cell-index order, so the aggregate
			// must not depend on worker-completion order.
			t.Fatalf("aggregated metrics vary with worker count %d:\n%v\nvs\n%v", workers, agg.Metrics, firstAgg)
		}
	}
	if digests[0] != digests[1] || digests[1] != digests[2] {
		t.Fatalf("digest varies with worker count: %v", digests)
	}
	for _, rec := range first {
		if len(rec.Metrics) != 3 {
			t.Fatalf("record %d carries %d summaries, want 3", rec.Index, len(rec.Metrics))
		}
		if rec.Metrics[0].Name != "latency" || rec.Metrics[1].Name != "load_hist" || rec.Metrics[2].Name != "load_series" {
			t.Fatalf("record metrics not name-sorted: %v", rec.Metrics)
		}
		lat, _ := rec.MetricByName(metrics.NameLatency)
		if lat.Scalar("count") != rec.Delivered || lat.Scalar("sum") != rec.TotalLatency {
			t.Errorf("latency summary %v disagrees with record scalars", lat.Scalars)
		}
	}
}
