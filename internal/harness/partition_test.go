package harness

import (
	"context"
	"testing"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/baseline"
	"smallbuffers/internal/core"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
)

func TestPartitionCells(t *testing.T) {
	cases := []struct {
		total, shards int
		want          []IndexRange
	}{
		{0, 3, nil},
		{-1, 3, nil},
		{5, 0, nil},
		{5, -2, nil},
		{1, 1, []IndexRange{{0, 1}}},
		{2, 5, []IndexRange{{0, 1}, {1, 2}}},
		{6, 3, []IndexRange{{0, 2}, {2, 4}, {4, 6}}},
		{7, 3, []IndexRange{{0, 3}, {3, 5}, {5, 7}}},
		{10, 4, []IndexRange{{0, 3}, {3, 6}, {6, 8}, {8, 10}}},
	}
	for _, tc := range cases {
		got := PartitionCells(tc.total, tc.shards)
		if len(got) != len(tc.want) {
			t.Errorf("PartitionCells(%d, %d) = %v, want %v", tc.total, tc.shards, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("PartitionCells(%d, %d)[%d] = %v, want %v", tc.total, tc.shards, i, got[i], tc.want[i])
			}
		}
	}
}

// TestPartitionCellsProperties sweeps small (total, shards) combinations
// and checks the structural guarantees: exact coverage in index order,
// no overlap, and balance within one cell.
func TestPartitionCellsProperties(t *testing.T) {
	for total := 1; total <= 40; total++ {
		for shards := 1; shards <= 12; shards++ {
			ranges := PartitionCells(total, shards)
			next := 0
			minSz, maxSz := total+1, 0
			for _, r := range ranges {
				if r.Lo != next {
					t.Fatalf("total=%d shards=%d: range %v does not start at %d", total, shards, r, next)
				}
				if r.Count() < 1 {
					t.Fatalf("total=%d shards=%d: empty range %v", total, shards, r)
				}
				if r.Count() < minSz {
					minSz = r.Count()
				}
				if r.Count() > maxSz {
					maxSz = r.Count()
				}
				next = r.Hi
			}
			if next != total {
				t.Fatalf("total=%d shards=%d: ranges cover [0,%d), want [0,%d)", total, shards, next, total)
			}
			if maxSz-minSz > 1 {
				t.Fatalf("total=%d shards=%d: imbalance: sizes range %d..%d", total, shards, minSz, maxSz)
			}
			if want := min(total, shards); len(ranges) != want {
				t.Fatalf("total=%d shards=%d: %d ranges, want %d", total, shards, len(ranges), want)
			}
		}
	}
}

// shardTestSweep is a 12-cell grid (3 seeds × 2 rounds × 2 protocols)
// exercising several axes.
func shardTestSweep() *Sweep {
	return &Sweep{
		Protocols: []ProtocolSpec{
			Protocol("PTS", func() sim.Protocol { return core.NewPTS() }),
			Protocol("FIFO", func() sim.Protocol { return baseline.NewGreedy(baseline.FIFO{}) }),
		},
		Topologies:  []TopologySpec{Path(8)},
		Bounds:      []adversary.Bound{{Rho: rat.One, Sigma: 2}},
		Adversaries: []AdversarySpec{RandomAdversary(nil)},
		Seeds:       []int64{1, 2, 3},
		Rounds:      []int{40, 80},
		BaseSeed:    7,
	}
}

// TestShardedSweepReassembles runs the same grid unsharded and as every
// partition into k shards, and requires the concatenated shard records to
// reproduce the unsharded record set and digest exactly.
func TestShardedSweepReassembles(t *testing.T) {
	ctx := context.Background()
	whole, err := shardTestSweep().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest := whole.Digest()
	total := whole.Requested
	if total != 12 {
		t.Fatalf("grid has %d cells, want 12", total)
	}

	for _, k := range []int{1, 2, 3, 5, 12} {
		var recs []CellRecord
		for _, rng := range PartitionCells(total, k) {
			sw := shardTestSweep()
			sw.ShardOffset, sw.ShardCount = rng.Lo, rng.Count()
			agg, err := sw.Run(ctx)
			if err != nil {
				t.Fatalf("k=%d shard %v: %v", k, rng, err)
			}
			if agg.Requested != rng.Count() {
				t.Fatalf("k=%d shard %v: requested %d, want %d", k, rng, agg.Requested, rng.Count())
			}
			for _, cr := range agg.Cells {
				if cr.Cell.Index < rng.Lo || cr.Cell.Index >= rng.Hi {
					t.Fatalf("k=%d shard %v: cell index %d outside the shard", k, rng, cr.Cell.Index)
				}
			}
			recs = append(recs, agg.Records()...)
		}
		if got := RecordsDigest(recs); got != wantDigest {
			t.Errorf("k=%d: reassembled digest %s, want %s", k, got, wantDigest)
		}
	}
}

// TestShardValidation pins the shard-range error paths.
func TestShardValidation(t *testing.T) {
	sw := shardTestSweep()
	sw.ShardOffset, sw.ShardCount = -1, 2
	if _, err := sw.Run(context.Background()); err == nil {
		t.Error("negative ShardOffset accepted")
	}
	sw = shardTestSweep()
	sw.ShardOffset, sw.ShardCount = 3, 0
	if _, err := sw.Run(context.Background()); err == nil {
		t.Error("ShardOffset without ShardCount accepted")
	}
	sw = shardTestSweep()
	sw.ShardOffset, sw.ShardCount = 8, 5 // grid has 12 cells
	if _, err := sw.Run(context.Background()); err == nil {
		t.Error("out-of-range shard accepted")
	}
	// CellsToRun agrees with Cells on the unsharded grid.
	sw = shardTestSweep()
	all, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	run, err := sw.CellsToRun()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(run) {
		t.Errorf("CellsToRun returned %d cells, Cells %d", len(run), len(all))
	}
}
