package harness

import "fmt"

// IndexRange is a half-open range [Lo, Hi) of global cell indices — the
// unit of work the distribution tier dispatches. Ranges partition the
// row-major expansion of a sweep grid (see Cell.Index for the ordering
// contract), so a range is meaningful on any machine that can expand the
// same grid.
type IndexRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Count returns the number of cells in the range.
func (r IndexRange) Count() int { return r.Hi - r.Lo }

// String renders the range in half-open interval notation.
func (r IndexRange) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// PartitionCells splits the global cell-index space [0, total) into at
// most shards contiguous, non-overlapping ranges that cover it exactly,
// in index order, with sizes differing by at most one (the remainder
// spreads over the leading ranges). Because cell indices are a global,
// deterministic property of the grid — never of workers, machines, or
// scheduling — any partition of the index space executes every cell
// exactly once wherever the pieces run, and the per-cell records
// reassemble by index into the record set (and RecordsDigest) of an
// unsharded run. total ≤ 0 or shards ≤ 0 yields nil.
func PartitionCells(total, shards int) []IndexRange {
	if total <= 0 || shards <= 0 {
		return nil
	}
	if shards > total {
		shards = total
	}
	out := make([]IndexRange, 0, shards)
	size, rem := total/shards, total%shards
	lo := 0
	for i := 0; i < shards; i++ {
		hi := lo + size
		if i < rem {
			hi++
		}
		out = append(out, IndexRange{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// PartitionCellsWeighted is the size-aware PartitionCells: it splits the
// index space [0, len(weights)) into at most shards contiguous ranges of
// near-equal total *weight* rather than near-equal cell count, so a
// shard of few big-topology cells balances against a shard of many small
// ones instead of straggling. weights[i] is the cost of cell i (the
// distribution tier uses topology node count); non-positive weights
// count as 1. Like PartitionCells the result is a deterministic function
// of its arguments, covers the index space exactly, and preserves global
// indices — weighting redistributes work, it never changes what any cell
// computes, so result digests are unaffected.
func PartitionCellsWeighted(weights []int, shards int) []IndexRange {
	if len(weights) == 0 || shards <= 0 {
		return nil
	}
	return PartitionRangesWeighted([]IndexRange{{Lo: 0, Hi: len(weights)}}, weights, shards)
}

// PartitionRangesWeighted subdivides the given ranges — disjoint,
// ascending, as Covered/Uncovered report them — into about shards
// contiguous pieces of near-equal total weight. It is the resume-path
// generalization of PartitionCellsWeighted: the cells still owed may be
// an arbitrary union of ranges (whatever a prior interrupted run left
// uncovered), and pieces never span a gap between input ranges. weights
// is indexed by *global* cell index and must extend past the highest
// range bound; non-positive weights count as 1. Deterministic in its
// arguments.
func PartitionRangesWeighted(ranges []IndexRange, weights []int, shards int) []IndexRange {
	if shards <= 0 {
		return nil
	}
	w := func(i int) int {
		v := weights[i]
		if v < 1 {
			v = 1
		}
		return v
	}
	total := 0
	for _, r := range ranges {
		for i := r.Lo; i < r.Hi; i++ {
			total += w(i)
		}
	}
	if total == 0 {
		return nil
	}
	out := make([]IndexRange, 0, shards+len(ranges))
	acc := 0 // cumulative weight over all cells walked so far
	cut := 1 // index of the next proportional boundary, at cut·total/shards
	for _, r := range ranges {
		if r.Count() <= 0 {
			continue
		}
		lo := r.Lo
		for i := r.Lo; i < r.Hi; i++ {
			acc += w(i)
			// Close the piece once the cumulative weight reaches the next
			// proportional boundary; the range end closes it regardless
			// (pieces never span gaps). Skipping boundaries the current
			// cell overshot keeps every emitted piece non-empty.
			if acc*shards >= cut*total && i+1 < r.Hi {
				out = append(out, IndexRange{Lo: lo, Hi: i + 1})
				lo = i + 1
				for acc*shards >= cut*total {
					cut++
				}
			}
		}
		out = append(out, IndexRange{Lo: lo, Hi: r.Hi})
		for acc*shards >= cut*total {
			cut++
		}
	}
	return out
}
