package harness

import "fmt"

// IndexRange is a half-open range [Lo, Hi) of global cell indices — the
// unit of work the distribution tier dispatches. Ranges partition the
// row-major expansion of a sweep grid (see Cell.Index for the ordering
// contract), so a range is meaningful on any machine that can expand the
// same grid.
type IndexRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Count returns the number of cells in the range.
func (r IndexRange) Count() int { return r.Hi - r.Lo }

// String renders the range in half-open interval notation.
func (r IndexRange) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// PartitionCells splits the global cell-index space [0, total) into at
// most shards contiguous, non-overlapping ranges that cover it exactly,
// in index order, with sizes differing by at most one (the remainder
// spreads over the leading ranges). Because cell indices are a global,
// deterministic property of the grid — never of workers, machines, or
// scheduling — any partition of the index space executes every cell
// exactly once wherever the pieces run, and the per-cell records
// reassemble by index into the record set (and RecordsDigest) of an
// unsharded run. total ≤ 0 or shards ≤ 0 yields nil.
func PartitionCells(total, shards int) []IndexRange {
	if total <= 0 || shards <= 0 {
		return nil
	}
	if shards > total {
		shards = total
	}
	out := make([]IndexRange, 0, shards)
	size, rem := total/shards, total%shards
	lo := 0
	for i := 0; i < shards; i++ {
		hi := lo + size
		if i < rem {
			hi++
		}
		out = append(out, IndexRange{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}
