package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
)

// CellRecord is the wire form of one executed cell: the cell label plus
// every deterministic integer metric of its result. Records are what the
// service tier streams to clients and what result digests are computed
// over — they deliberately carry no floats and no wall-clock data, so the
// same scenario always produces byte-identical records at any worker
// count, on any machine.
type CellRecord struct {
	Index           int    `json:"index"`
	Cell            string `json:"cell"`
	MaxLoad         int    `json:"max_load"`
	MaxLoadNode     int    `json:"max_load_node"`
	MaxLoadRound    int    `json:"max_load_round"`
	MaxPhysicalLoad int    `json:"max_physical_load"`
	Injected        int    `json:"injected"`
	Delivered       int    `json:"delivered"`
	Residual        int    `json:"residual"`
	MaxLatency      int    `json:"max_latency"`
	TotalLatency    int    `json:"total_latency"`
	Err             string `json:"error,omitempty"`
}

// Record renders the cell result in wire form. Failed cells carry the
// error text and zero metrics.
func (r CellResult) Record() CellRecord {
	rec := CellRecord{Index: r.Cell.Index, Cell: r.Cell.String()}
	if r.Err != nil {
		rec.Err = r.Err.Error()
		return rec
	}
	rec.MaxLoad = r.Result.MaxLoad
	rec.MaxLoadNode = int(r.Result.MaxLoadNode)
	rec.MaxLoadRound = r.Result.MaxLoadRound
	rec.MaxPhysicalLoad = r.Result.MaxPhysicalLoad
	rec.Injected = r.Result.Injected
	rec.Delivered = r.Result.Delivered
	rec.Residual = r.Result.Residual
	rec.MaxLatency = r.Result.MaxLatency
	rec.TotalLatency = r.Result.TotalLatency
	return rec
}

// Records renders every cell of the sweep result in wire form, ordered by
// cell index.
func (r *SweepResult) Records() []CellRecord {
	out := make([]CellRecord, len(r.Cells))
	for i, c := range r.Cells {
		out[i] = c.Record()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// RecordsSorted returns a copy of recs ordered by cell index — the
// canonical order for reports and digests (streams deliver records in
// completion order).
func RecordsSorted(recs []CellRecord) []CellRecord {
	out := make([]CellRecord, len(recs))
	copy(out, recs)
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// RecordsDigest is the canonical content address of a set of cell
// records: "sha256:<hex>" over their JSON encodings, one per line, sorted
// by cell index. Two executions of the same scenario — local or behind the
// service tier, at any worker count — produce the same digest, which is
// what the CI corpus gate and the remote-vs-local comparisons key on.
func RecordsDigest(recs []CellRecord) string {
	sorted := RecordsSorted(recs)
	h := sha256.New()
	for _, rec := range sorted {
		line, err := json.Marshal(rec)
		if err != nil {
			// CellRecord is a flat struct of ints and strings; Marshal
			// cannot fail on it.
			panic(err)
		}
		h.Write(line)
		h.Write([]byte{'\n'})
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// Digest returns the results digest of the sweep (see RecordsDigest).
func (r *SweepResult) Digest() string {
	return RecordsDigest(r.Records())
}
