package harness

import (
	"fmt"
	"io"
	"sort"

	"smallbuffers/internal/metrics"
)

// CellRecord is the wire form of one executed cell: the cell label plus
// every deterministic integer metric of its result. Records are what the
// service tier streams to clients and what result digests are computed
// over — they deliberately carry no floats and no wall-clock data, so the
// same scenario always produces byte-identical records at any worker
// count, on any machine.
//
// Metrics carries the run's collector summaries (integer-only by
// construction, sorted by collector name): the scenario-selected set, or
// the default {max_load, latency} pair.
type CellRecord struct {
	Index           int    `json:"index"`
	Cell            string `json:"cell"`
	MaxLoad         int    `json:"max_load"`
	MaxLoadNode     int    `json:"max_load_node"`
	MaxLoadRound    int    `json:"max_load_round"`
	MaxPhysicalLoad int    `json:"max_physical_load"`
	Injected        int    `json:"injected"`
	Delivered       int    `json:"delivered"`
	Residual        int    `json:"residual"`
	MaxLatency      int    `json:"max_latency"`
	TotalLatency    int    `json:"total_latency"`
	// Faults names the cell's fault-axis entry and Dropped counts packets
	// its model lost in transit. Both are omitted for loss-free cells, so
	// the record bytes of scenarios without a faults axis are unchanged
	// from v2 (see RecordsVersion).
	Faults  string            `json:"faults,omitempty"`
	Dropped int               `json:"dropped,omitempty"`
	Metrics []metrics.Summary `json:"metrics,omitempty"`
	Err     string            `json:"error,omitempty"`
}

// RecordSink receives executed cell records as they complete. It is the
// harness's hook into the persistence tier (implemented by the on-disk
// result store) without the harness depending on it: a sweep configured
// with a sink streams every record out as soon as its cell finishes, in
// completion order — sinks that need index order (digests do) re-sort or
// re-merge on their side. Sinks must be safe for use from the single
// aggregation goroutine that calls them; an append error aborts the
// sweep.
type RecordSink interface {
	Append(CellRecord) error
}

// MetricByName returns the record's summary for the named collector.
func (r CellRecord) MetricByName(name string) (metrics.Summary, bool) {
	for _, s := range r.Metrics {
		if s.Name == name {
			return s, true
		}
	}
	return metrics.Summary{}, false
}

// Record renders the cell result in wire form. Failed cells carry the
// error text and zero metrics.
func (r CellResult) Record() CellRecord {
	rec := CellRecord{Index: r.Cell.Index, Cell: r.Cell.String()}
	if r.Err != nil {
		rec.Err = r.Err.Error()
		return rec
	}
	rec.MaxLoad = r.Result.MaxLoad
	rec.MaxLoadNode = int(r.Result.MaxLoadNode)
	rec.MaxLoadRound = r.Result.MaxLoadRound
	rec.MaxPhysicalLoad = r.Result.MaxPhysicalLoad
	rec.Injected = r.Result.Injected
	rec.Delivered = r.Result.Delivered
	rec.Residual = r.Result.Residual
	rec.MaxLatency = r.Result.MaxLatency
	rec.TotalLatency = r.Result.TotalLatency
	rec.Faults = r.Cell.Faults
	rec.Dropped = r.Result.Dropped
	rec.Metrics = metrics.Records(r.Result.Metrics)
	return rec
}

// Records renders every cell of the sweep result in wire form, ordered by
// cell index.
func (r *SweepResult) Records() []CellRecord {
	out := make([]CellRecord, len(r.Cells))
	for i, c := range r.Cells {
		out[i] = c.Record()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// RecordsSorted returns a copy of recs ordered by cell index — the
// canonical order for reports and digests (streams deliver records in
// completion order).
func RecordsSorted(recs []CellRecord) []CellRecord {
	out := make([]CellRecord, len(recs))
	copy(out, recs)
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// RecordsVersion is the wire version of the records-digest scheme,
// folded into every digest so digests from different schema generations
// never compare equal by accident. History:
//
//	v1 — scalar-only records (pre-metrics).
//	v2 — records carry canonical metric summaries (the "metrics" field);
//	     the digest input gained this version header.
//	v3 — records may carry a fault axis ("faults"/"dropped" fields). The
//	     version is gated on use: digests over records none of which
//	     carry a fault entry keep the v2 header (their bytes are
//	     unchanged — the new fields marshal only when set), so every
//	     pre-fault corpus digest remains valid, while any faulted record
//	     set digests under v3.
//
// Bump it whenever CellRecord's wire form changes; persisted corpus
// digests must be regenerated in the same change (unless the change is
// version-gated like v3).
const RecordsVersion = 3

// RecordsDigest is the canonical content address of a set of cell
// records: "sha256:<hex>" over a version header ("v<RecordsVersion>",
// version-gated — see RecordsDigester) followed by their JSON
// encodings, one per line, sorted by cell index. Two executions of the
// same scenario — local or behind the service tier, at any worker count —
// produce the same digest, which is what the CI corpus gate and the
// remote-vs-local comparisons key on.
func RecordsDigest(recs []CellRecord) string {
	sorted := RecordsSorted(recs)
	d := NewRecordsDigester()
	for _, rec := range sorted {
		if err := d.Add(rec); err != nil {
			// Grid indices are unique by construction; a duplicate here is
			// caller corruption, not a recoverable condition.
			panic(err)
		}
	}
	return d.Sum()
}

// hashWrite feeds b to the hash and checks the error. hash.Hash
// documents Write as never failing, but digest construction is exactly
// where a silently dropped byte must be impossible rather than assumed.
func hashWrite(h io.Writer, b []byte) {
	if n, err := h.Write(b); err != nil || n != len(b) {
		panic(fmt.Sprintf("harness: hash write: n=%d err=%v", n, err))
	}
}

// Digest returns the results digest of the sweep (see RecordsDigest).
func (r *SweepResult) Digest() string {
	return RecordsDigest(r.Records())
}
