package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
)

// RecordsDigester computes RecordsDigest incrementally: records are fed
// one at a time, in strictly increasing index order, and the digest is
// available at any point without the record set ever being materialized
// in memory. It is the streaming counterpart of RecordsDigest — the two
// are byte-identical over the same records (RecordsDigest is implemented
// on top of it) — and is what lets the store and the fleet coordinator
// digest arbitrarily large result sets in O(1) space.
//
// The version gate (v2 for loss-free record sets, v3 once any record
// carries a fault entry — see RecordsVersion) cannot be decided until the
// last record has been seen, so the digester maintains both version
// states in parallel over the identical record stream and picks the
// right one at Sum time.
type RecordsDigester struct {
	v2, v3  hash.Hash
	count   int
	last    int
	faulted bool
}

// NewRecordsDigester returns an empty digester.
func NewRecordsDigester() *RecordsDigester {
	d := &RecordsDigester{v2: sha256.New(), v3: sha256.New()}
	hashWrite(d.v2, []byte("v2\n"))
	hashWrite(d.v3, fmt.Appendf(nil, "v%d\n", RecordsVersion))
	return d
}

// Add feeds one record. Records must arrive in strictly increasing index
// order (the canonical digest order); a duplicate or out-of-order index
// is an error and leaves the digester unchanged.
func (d *RecordsDigester) Add(rec CellRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		// CellRecord is a flat struct of ints and strings; Marshal cannot
		// fail on it.
		panic(err)
	}
	return d.AddEncoded(rec.Index, rec.Faults != "", line)
}

// AddEncoded feeds one record by its canonical JSON encoding (the exact
// bytes json.Marshal produces for the CellRecord, no trailing newline).
// Callers that already hold the wire bytes — the store reading records
// back off disk — avoid a decode/re-encode round trip this way.
func (d *RecordsDigester) AddEncoded(index int, faulted bool, line []byte) error {
	if d.count > 0 && index <= d.last {
		return fmt.Errorf("harness: digest record index %d after %d (records must be strictly increasing)", index, d.last)
	}
	d.count++
	d.last = index
	if faulted {
		d.faulted = true
	}
	hashWrite(d.v2, line)
	hashWrite(d.v2, []byte{'\n'})
	hashWrite(d.v3, line)
	hashWrite(d.v3, []byte{'\n'})
	return nil
}

// Count returns the number of records fed so far.
func (d *RecordsDigester) Count() int { return d.count }

// Sum returns the digest of the records fed so far, in the same
// "sha256:<hex>" form as RecordsDigest. It does not consume the
// digester: more records may be added and Sum taken again.
func (d *RecordsDigester) Sum() string {
	h := d.v2
	if d.faulted {
		h = d.v3
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}
