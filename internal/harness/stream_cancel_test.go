package harness

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/baseline"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
)

// gaugedProtocol wraps a real protocol with a per-round delay and a
// concurrency gauge, so tests can hold cells in flight long enough to
// cancel mid-sweep and assert the pool bound.
type gaugedProtocol struct {
	inner  sim.Protocol
	delay  time.Duration
	active *atomic.Int64
	peak   *atomic.Int64
}

func (p *gaugedProtocol) Name() string { return "slow-" + p.inner.Name() }

func (p *gaugedProtocol) Attach(nw *network.Network, bound adversary.Bound, dests []network.NodeID) error {
	return p.inner.Attach(nw, bound, dests)
}

func (p *gaugedProtocol) Decide(v sim.View) ([]sim.Forward, error) {
	cur := p.active.Add(1)
	defer p.active.Add(-1)
	for {
		peak := p.peak.Load()
		if cur <= peak || p.peak.CompareAndSwap(peak, cur) {
			break
		}
	}
	time.Sleep(p.delay)
	return p.inner.Decide(v)
}

// gaugedSweep is a 32-cell grid whose cells each take ~delay×rounds, on a
// bounded pool.
func gaugedSweep(workers int, delay time.Duration, active, peak *atomic.Int64) *Sweep {
	return &Sweep{
		Protocols: []ProtocolSpec{Protocol("slow", func() sim.Protocol {
			return &gaugedProtocol{inner: baseline.NewGreedy(baseline.FIFO{}), delay: delay, active: active, peak: peak}
		})},
		Topologies:  []TopologySpec{Path(16)},
		Bounds:      []adversary.Bound{{Rho: rat.One, Sigma: 2}},
		Adversaries: []AdversarySpec{RandomAdversary(nil)},
		Seeds:       []int64{1, 2, 3, 4, 5, 6, 7, 8},
		Rounds:      []int{10, 20, 30, 40},
		Workers:     workers,
	}
}

// waitForGoroutines polls until the goroutine count drops back to at most
// baseline+slack (other runtime goroutines may come and go).
func waitForGoroutines(t *testing.T, baseline, slack int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d live, baseline %d (+%d slack) — cancelled stream leaked workers", n, baseline, slack)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamCancelMidSweep is the client-disconnect path: a consumer
// takes a few cells and walks away (cancelling its context, as the
// service tier does when the last watcher detaches). The stream must
// close promptly, undispatched cells must be dropped, the worker
// goroutines must exit, and the pool bound must have held throughout.
func TestStreamCancelMidSweep(t *testing.T) {
	var active, peak atomic.Int64
	before := runtime.NumGoroutine()

	const workers = 4
	sw := gaugedSweep(workers, 2*time.Millisecond, &active, &peak)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	got := 0
	closed := make(chan struct{})
	results := sw.Stream(ctx)
	go func() {
		defer close(closed)
		for range results {
			got++
			if got == 3 {
				cancel()
			}
		}
	}()

	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not close after cancellation")
	}
	if got >= 32 {
		t.Fatalf("got all %d cells despite mid-sweep cancellation", got)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("%d cells deciding concurrently, pool bound is %d", p, workers)
	}
	waitForGoroutines(t, before, 2, 10*time.Second)
	if a := active.Load(); a != 0 {
		t.Errorf("%d cells still executing after stream close", a)
	}
}

// TestStreamAbandonedWithoutConsuming cancels before reading anything:
// workers blocked on their first send must exit via the context, not
// hang forever on the abandoned channel.
func TestStreamAbandonedWithoutConsuming(t *testing.T) {
	var active, peak atomic.Int64
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	_ = gaugedSweep(4, time.Millisecond, &active, &peak).Stream(ctx)
	// Give workers a moment to start cells and block on the unread channel.
	time.Sleep(20 * time.Millisecond)
	cancel()
	waitForGoroutines(t, before, 2, 10*time.Second)
}

// TestStreamCancelFreesSlotsForNextSweep runs a fresh sweep to completion
// after a cancelled one: cancellation must not poison later executions
// (each Stream owns its workers; a leak would surface in the goroutine
// checks above, a slot leak here).
func TestStreamCancelFreesSlotsForNextSweep(t *testing.T) {
	var active, peak atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	results := gaugedSweep(2, time.Millisecond, &active, &peak).Stream(ctx)
	<-results // one cell, then walk away
	cancel()
	for range results {
	}

	agg, err := gaugedSweep(2, 0, &active, &peak).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if agg.Completed != 32 {
		t.Fatalf("follow-up sweep completed %d of 32 cells", agg.Completed)
	}
}
