package harness

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/baseline"
	"smallbuffers/internal/core"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
)

// acceptanceSweep is the grid from the acceptance criteria: 4 protocols ×
// {path, binary tree} × 4 seeds = 32 cells.
func acceptanceSweep(workers int) *Sweep {
	return &Sweep{
		Protocols: []ProtocolSpec{
			Protocol("TreePTS", func() sim.Protocol { return core.NewTreePTS() }),
			Protocol("TreePPTS", func() sim.Protocol { return core.NewTreePPTS() }),
			Protocol("FIFO", func() sim.Protocol { return baseline.NewGreedy(baseline.FIFO{}) }),
			Protocol("LIS", func() sim.Protocol { return baseline.NewGreedy(baseline.LIS{}) }),
		},
		Topologies: []TopologySpec{
			Path(32),
			{Name: "binary(4)", New: func() (*network.Network, error) { return network.BinaryTree(4) }},
		},
		Bounds:      []adversary.Bound{{Rho: rat.One, Sigma: 2}},
		Adversaries: []AdversarySpec{RandomAdversary(nil)},
		Seeds:       []int64{1, 2, 3, 4},
		Rounds:      []int{400},
		BaseSeed:    99,
		Workers:     workers,
	}
}

func TestCellsExpansion(t *testing.T) {
	s := acceptanceSweep(0)
	cells, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 32 {
		t.Fatalf("grid size %d, want 32", len(cells))
	}
	seen := make(map[int64]Cell)
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d carries index %d", i, c.Index)
		}
		if prev, dup := seen[c.DerivedSeed]; dup {
			t.Errorf("cells %v and %v share derived seed %d", prev, c, c.DerivedSeed)
		}
		if c.DerivedSeed < 0 {
			t.Errorf("negative derived seed on %v", c)
		}
		seen[c.DerivedSeed] = c
	}
}

func TestDeriveSeedStable(t *testing.T) {
	c := Cell{Protocol: "p", Topology: "t", Adversary: "a", Bound: adversary.Bound{Rho: rat.One, Sigma: 1}, Seed: 7}
	if deriveSeed(1, c) != deriveSeed(1, c) {
		t.Error("derivation not deterministic")
	}
	if deriveSeed(1, c) == deriveSeed(2, c) {
		t.Error("base seed ignored")
	}
	c2 := c
	c2.Seed = 8
	if deriveSeed(1, c) == deriveSeed(1, c2) {
		t.Error("grid seed ignored")
	}
}

// The acceptance sweep runs on multiple workers and reproduces exactly at
// any worker count.
func TestSweepReproducibleAcrossWorkerCounts(t *testing.T) {
	parallel, err := acceptanceSweep(4).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := acceptanceSweep(1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*SweepResult{parallel, serial} {
		if r.Requested != 32 || r.Completed != 32 || r.Failed != 0 {
			t.Fatalf("sweep incomplete: %d/%d completed, %d failed (first err: %v)",
				r.Completed, r.Requested, r.Failed, r.FirstErr())
		}
	}
	for i := range parallel.Cells {
		p, s := parallel.Cells[i], serial.Cells[i]
		if p.Cell != s.Cell {
			t.Fatalf("cell %d coordinates differ: %v vs %v", i, p.Cell, s.Cell)
		}
		if p.Result.MaxLoad != s.Result.MaxLoad ||
			p.Result.Injected != s.Result.Injected ||
			p.Result.Delivered != s.Result.Delivered ||
			p.Result.TotalLatency != s.Result.TotalLatency {
			t.Errorf("cell %v not reproducible: %+v vs %+v", p.Cell, p.Result, s.Result)
		}
	}
	if parallel.MaxLoad.Count != 32 || parallel.MaxLoad.Max < 1 {
		t.Errorf("summary not folded: %+v", parallel.MaxLoad)
	}
	if parallel.MaxLoad.Mean != serial.MaxLoad.Mean {
		t.Errorf("summary means differ: %v vs %v", parallel.MaxLoad.Mean, serial.MaxLoad.Mean)
	}
}

// slowProtocol stretches rounds so a sweep is reliably mid-flight when the
// context is cancelled.
type slowProtocol struct {
	inner sim.Protocol
	delay time.Duration
}

func (s *slowProtocol) Name() string { return "slow-" + s.inner.Name() }
func (s *slowProtocol) Attach(nw *network.Network, b adversary.Bound, d []network.NodeID) error {
	return s.inner.Attach(nw, b, d)
}
func (s *slowProtocol) Decide(v sim.View) ([]sim.Forward, error) {
	time.Sleep(s.delay)
	return s.inner.Decide(v)
}

func slowSweep(workers int) *Sweep {
	return &Sweep{
		Protocols: []ProtocolSpec{Protocol("slow", func() sim.Protocol {
			return &slowProtocol{inner: baseline.NewGreedy(baseline.FIFO{}), delay: 200 * time.Microsecond}
		})},
		Topologies:  []TopologySpec{Path(16)},
		Bounds:      []adversary.Bound{{Rho: rat.One, Sigma: 1}},
		Adversaries: []AdversarySpec{RandomAdversary(nil)},
		Seeds:       []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		Rounds:      []int{2000},
		Workers:     workers,
	}
}

// Mid-sweep cancellation stops promptly, returns partial results, and does
// not deadlock (the test itself would time out on a deadlock).
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	s := slowSweep(2)
	done := make(chan struct{})
	var res *SweepResult
	var err error
	go func() {
		defer close(done)
		res, err = s.Run(ctx)
	}()
	// Let a couple of cells land, then pull the plug.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled sweep did not return (deadlock)")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !res.Interrupted {
		t.Error("Interrupted not set")
	}
	if len(res.Cells) >= res.Requested {
		t.Errorf("cancelled sweep reports %d of %d cells; expected a strict subset", len(res.Cells), res.Requested)
	}
	// Whatever completed before the cancel is real data.
	for _, c := range res.Cells {
		if c.Err == nil && c.Result.Injected == 0 {
			t.Errorf("completed cell %v carries an empty result", c.Cell)
		}
	}
}

func TestStreamDeliversAllCells(t *testing.T) {
	s := acceptanceSweep(3)
	got := make(map[int]bool)
	for cr := range s.Stream(context.Background()) {
		if cr.Err != nil {
			t.Fatalf("%v: %v", cr.Cell, cr.Err)
		}
		if got[cr.Cell.Index] {
			t.Fatalf("cell %d delivered twice", cr.Cell.Index)
		}
		got[cr.Cell.Index] = true
	}
	if len(got) != 32 {
		t.Errorf("stream delivered %d cells, want 32", len(got))
	}
}

func TestRoundsForResolvesPerTopology(t *testing.T) {
	s := &Sweep{
		Protocols:   []ProtocolSpec{Protocol("FIFO", func() sim.Protocol { return baseline.NewGreedy(baseline.FIFO{}) })},
		Topologies:  []TopologySpec{Path(8), Path(16)},
		Bounds:      []adversary.Bound{{Rho: rat.One, Sigma: 0}},
		Adversaries: []AdversarySpec{RandomAdversary(nil)},
		RoundsFor:   func(nw *network.Network) int { return 3 * nw.Len() },
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed %d cells: %v", res.Completed, res.FirstErr())
	}
	want := map[string]int{"path(8)": 24, "path(16)": 48}
	for _, c := range res.Cells {
		if c.Cell.Rounds != want[c.Cell.Topology] {
			t.Errorf("%s ran %d rounds, want %d", c.Cell.Topology, c.Cell.Rounds, want[c.Cell.Topology])
		}
		if c.Result.Rounds != c.Cell.Rounds {
			t.Errorf("%s: result says %d rounds, cell says %d", c.Cell.Topology, c.Result.Rounds, c.Cell.Rounds)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	cases := map[string]*Sweep{
		"no protocols": {Topologies: []TopologySpec{Path(4)}, Bounds: []adversary.Bound{{Rho: rat.One}},
			Adversaries: []AdversarySpec{RandomAdversary(nil)}, Rounds: []int{10}},
		"no topologies": {Protocols: []ProtocolSpec{Protocol("FIFO", func() sim.Protocol { return baseline.NewGreedy(baseline.FIFO{}) })},
			Bounds: []adversary.Bound{{Rho: rat.One}}, Adversaries: []AdversarySpec{RandomAdversary(nil)}, Rounds: []int{10}},
		"no bounds": {Protocols: []ProtocolSpec{Protocol("FIFO", func() sim.Protocol { return baseline.NewGreedy(baseline.FIFO{}) })},
			Topologies: []TopologySpec{Path(4)}, Adversaries: []AdversarySpec{RandomAdversary(nil)}, Rounds: []int{10}},
		"no adversaries": {Protocols: []ProtocolSpec{Protocol("FIFO", func() sim.Protocol { return baseline.NewGreedy(baseline.FIFO{}) })},
			Topologies: []TopologySpec{Path(4)}, Bounds: []adversary.Bound{{Rho: rat.One}}, Rounds: []int{10}},
		"no rounds": {Protocols: []ProtocolSpec{Protocol("FIFO", func() sim.Protocol { return baseline.NewGreedy(baseline.FIFO{}) })},
			Topologies: []TopologySpec{Path(4)}, Bounds: []adversary.Bound{{Rho: rat.One}},
			Adversaries: []AdversarySpec{RandomAdversary(nil)}},
	}
	for name, s := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Run(context.Background()); err == nil {
				t.Error("invalid sweep accepted")
			}
		})
	}
	// Duplicate axis names are rejected: cells resolve entries by name.
	dup := acceptanceSweep(1)
	dup.Protocols = append(dup.Protocols, Protocol("FIFO", func() sim.Protocol { return baseline.NewGreedy(baseline.FIFO{}) }))
	if _, err := dup.Run(context.Background()); err == nil {
		t.Error("duplicate protocol name accepted")
	}

	// An invalid sweep surfaces its error through Stream as well.
	bad := cases["no rounds"]
	var last CellResult
	for cr := range bad.Stream(context.Background()) {
		last = cr
	}
	if last.Err == nil {
		t.Error("Stream swallowed the validation error")
	}
}

// A failing cell is recorded without aborting the rest of the sweep.
func TestCellFailureIsIsolated(t *testing.T) {
	s := acceptanceSweep(2)
	s.Protocols = append(s.Protocols, ProtocolSpec{Name: "broken", New: func() (sim.Protocol, error) {
		return nil, fmt.Errorf("factory exploded")
	}})
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 8 { // broken × 2 topologies × 4 seeds
		t.Errorf("Failed = %d, want 8", res.Failed)
	}
	if res.Completed != 32 {
		t.Errorf("Completed = %d, want 32", res.Completed)
	}
	if res.FirstErr() == nil {
		t.Error("FirstErr lost the failure")
	}
}

// Per-cell observers and invariants are built fresh for every cell.
func TestPerCellInstrumentation(t *testing.T) {
	counters := make(chan *count, 64)
	s := acceptanceSweep(2)
	s.Seeds = []int64{1}
	s.VerifyAdversary = true
	s.Observers = func(c Cell, nw *network.Network) []sim.Observer {
		cc := &count{}
		counters <- cc
		return []sim.Observer{&roundCounter{c: cc}}
	}
	s.Invariants = func(c Cell, nw *network.Network) []sim.Invariant {
		return []sim.Invariant{func(v sim.View) error { return nil }}
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8 {
		t.Fatalf("completed %d, want 8: %v", res.Completed, res.FirstErr())
	}
	close(counters)
	n := 0
	for cc := range counters {
		n++
		if cc.rounds != 400 {
			t.Errorf("observer saw %d rounds, want 400", cc.rounds)
		}
	}
	if n != 8 {
		t.Errorf("%d observer instances, want 8", n)
	}
}

type count struct{ rounds int }

type roundCounter struct {
	sim.NopObserver
	c *count
}

func (r *roundCounter) OnRoundEnd(int, sim.View) { r.c.rounds++ }
