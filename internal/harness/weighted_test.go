package harness

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// checkCoverage asserts that got splits want exactly: contiguous,
// non-overlapping pieces, in order, never spanning a gap between input
// ranges.
func checkCoverage(t *testing.T, want, got []IndexRange) {
	t.Helper()
	wi := 0
	at := -1
	for _, g := range got {
		if g.Count() <= 0 {
			t.Fatalf("empty piece %v in %v", g, got)
		}
		if at < 0 {
			if wi >= len(want) || g.Lo != want[wi].Lo {
				t.Fatalf("piece %v does not start range %d of %v", g, wi, want)
			}
			at = g.Lo
		}
		if g.Lo != at {
			t.Fatalf("piece %v not contiguous at %d (pieces %v)", g, at, got)
		}
		at = g.Hi
		if at > want[wi].Hi {
			t.Fatalf("piece %v overruns range %v", g, want[wi])
		}
		if at == want[wi].Hi {
			wi++
			at = -1
		}
	}
	if wi != len(want) || at != -1 {
		t.Fatalf("pieces %v do not cover %v", got, want)
	}
}

func TestPartitionCellsWeighted(t *testing.T) {
	// Uniform weights behave like the unweighted partitioner: cover
	// exactly, near-equal cell counts.
	uniform := make([]int, 100)
	for i := range uniform {
		uniform[i] = 1
	}
	got := PartitionCellsWeighted(uniform, 8)
	checkCoverage(t, []IndexRange{{Lo: 0, Hi: 100}}, got)
	for _, g := range got {
		if g.Count() < 100/8 || g.Count() > 100/8+1 {
			t.Fatalf("uniform weights produced unbalanced piece %v in %v", g, got)
		}
	}

	// One cell carrying half the total weight gets a shard (nearly) to
	// itself while the rest share the light cells.
	skewed := make([]int, 64)
	for i := range skewed {
		skewed[i] = 1
	}
	skewed[0] = 63
	got = PartitionCellsWeighted(skewed, 4)
	checkCoverage(t, []IndexRange{{Lo: 0, Hi: 64}}, got)
	if got[0].Count() > 2 {
		t.Fatalf("heavy cell not isolated: first piece %v of %v", got[0], got)
	}

	// Deterministic: same inputs, same pieces.
	again := PartitionCellsWeighted(skewed, 4)
	if fmt.Sprint(got) != fmt.Sprint(again) {
		t.Fatalf("partition not deterministic: %v vs %v", got, again)
	}

	// Degenerate inputs.
	if PartitionCellsWeighted(nil, 4) != nil {
		t.Fatal("empty weights produced pieces")
	}
	if PartitionCellsWeighted(uniform, 0) != nil {
		t.Fatal("zero shards produced pieces")
	}
	// Non-positive weights are clamped to 1, never dropped.
	checkCoverage(t, []IndexRange{{Lo: 0, Hi: 3}}, PartitionCellsWeighted([]int{0, -5, 2}, 2))
}

func TestPartitionRangesWeighted(t *testing.T) {
	weights := make([]int, 40)
	for i := range weights {
		weights[i] = 1 + i%3
	}
	owed := []IndexRange{{Lo: 3, Hi: 10}, {Lo: 14, Hi: 15}, {Lo: 20, Hi: 38}}
	got := PartitionRangesWeighted(owed, weights, 5)
	checkCoverage(t, owed, got)

	// Pieces never span the gaps between input ranges.
	for _, g := range got {
		inside := false
		for _, o := range owed {
			if g.Lo >= o.Lo && g.Hi <= o.Hi {
				inside = true
			}
		}
		if !inside {
			t.Fatalf("piece %v spans a gap (owed %v)", g, owed)
		}
	}

	// More shards than cells: every cell its own piece at most.
	got = PartitionRangesWeighted([]IndexRange{{Lo: 0, Hi: 3}}, weights, 10)
	checkCoverage(t, []IndexRange{{Lo: 0, Hi: 3}}, got)
	if len(got) > 3 {
		t.Fatalf("%d pieces for 3 cells", len(got))
	}

	if PartitionRangesWeighted(nil, weights, 4) != nil {
		t.Fatal("no ranges produced pieces")
	}
}

// sinkRecorder collects appended records and can fail on demand.
type sinkRecorder struct {
	recs    []CellRecord
	failAt  int // fail when len(recs) reaches failAt (0 = never)
	sinkErr error
}

func (k *sinkRecorder) Append(r CellRecord) error {
	if k.failAt > 0 && len(k.recs)+1 >= k.failAt {
		return k.sinkErr
	}
	k.recs = append(k.recs, r)
	return nil
}

func TestSweepSkipAndSink(t *testing.T) {
	// Full run: the reference digest, with a sink attached — the sink
	// must see exactly the executed records.
	full := acceptanceSweep(4)
	sink := &sinkRecorder{}
	full.Sink = sink
	ref, err := full.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.recs) != 32 {
		t.Fatalf("sink saw %d records, want 32", len(sink.recs))
	}
	refDigest := ref.Digest()

	// Skip two ranges; the executed cells are exactly the complement, and
	// stitching the skipped cells back in reproduces the digest.
	skip := []IndexRange{{Lo: 4, Hi: 9}, {Lo: 20, Hi: 32}}
	part := acceptanceSweep(4)
	part.Skip = skip
	partRes, err := part.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	skipped := func(i int) bool {
		for _, r := range skip {
			if i >= r.Lo && i < r.Hi {
				return true
			}
		}
		return false
	}
	want := 0
	for i := 0; i < 32; i++ {
		if !skipped(i) {
			want++
		}
	}
	if len(partRes.Cells) != want {
		t.Fatalf("skip run executed %d cells, want %d", len(partRes.Cells), want)
	}
	stitched := partRes.Records()
	for _, rec := range ref.Records() {
		if skipped(rec.Index) {
			stitched = append(stitched, rec)
		}
	}
	if got := RecordsDigest(stitched); got != refDigest {
		t.Fatalf("stitched digest %s, full %s", got, refDigest)
	}

	// Malformed skip ranges are rejected up front.
	for _, bad := range [][]IndexRange{
		{{Lo: 5, Hi: 5}},                  // empty
		{{Lo: -1, Hi: 2}},                 // negative
		{{Lo: 8, Hi: 10}, {Lo: 2, Hi: 4}}, // descending
		{{Lo: 2, Hi: 6}, {Lo: 5, Hi: 9}},  // overlapping
	} {
		s := acceptanceSweep(1)
		s.Skip = bad
		if _, err := s.Run(context.Background()); err == nil {
			t.Fatalf("skip %v accepted", bad)
		}
	}
}

func TestSweepSinkErrorAbortsRun(t *testing.T) {
	s := acceptanceSweep(4)
	boom := errors.New("disk gone")
	s.Sink = &sinkRecorder{failAt: 5, sinkErr: boom}
	res, err := s.Run(context.Background())
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("sink failure not surfaced: %v", err)
	}
	if res == nil || !res.Interrupted {
		t.Fatalf("sink failure did not interrupt the sweep: %+v", res)
	}
}
