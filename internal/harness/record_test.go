package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"testing"

	"smallbuffers/internal/metrics"
)

func TestRecordsDigestOrderInvariant(t *testing.T) {
	recs := []CellRecord{
		{Index: 0, Cell: "a", MaxLoad: 3, Delivered: 10},
		{Index: 1, Cell: "b", MaxLoad: 4, Delivered: 20},
		{Index: 2, Cell: "c", Err: "boom"},
	}
	shuffled := []CellRecord{recs[2], recs[0], recs[1]}
	if RecordsDigest(recs) != RecordsDigest(shuffled) {
		t.Error("digest depends on record order; must be index-canonical")
	}
	if !strings.HasPrefix(RecordsDigest(recs), "sha256:") {
		t.Errorf("digest %q lacks the sha256: prefix", RecordsDigest(recs))
	}
}

func TestRecordsDigestSensitive(t *testing.T) {
	base := []CellRecord{{Index: 0, Cell: "a", MaxLoad: 3}}
	bumped := []CellRecord{{Index: 0, Cell: "a", MaxLoad: 4}}
	if RecordsDigest(base) == RecordsDigest(bumped) {
		t.Error("digest blind to a metric change")
	}
	failed := []CellRecord{{Index: 0, Cell: "a", Err: "x"}}
	if RecordsDigest(base) == RecordsDigest(failed) {
		t.Error("digest blind to a cell failure")
	}
	withMetrics := []CellRecord{{Index: 0, Cell: "a", MaxLoad: 3,
		Metrics: []metrics.Summary{{Name: "load_hist", Kind: metrics.KindHist, Hist: &metrics.HistRecord{Count: 1, Exact: []int{1}}}}}}
	if RecordsDigest(base) == RecordsDigest(withMetrics) {
		t.Error("digest blind to metric summaries")
	}
}

// TestRecordsDigestVersionGate pins the digest scheme: the version
// header is part of the hash input, so a schema bump (RecordsVersion)
// invalidates every stored digest instead of colliding with old ones —
// except that v3 is gated on use: record sets without a fault entry keep
// digesting under the v2 header (their bytes are unchanged), so stored
// pre-fault corpus digests stay valid.
func TestRecordsDigestVersionGate(t *testing.T) {
	headerHash := func(v int) string {
		h := sha256.New()
		fmt.Fprintf(h, "v%d\n", v)
		return "sha256:" + hex.EncodeToString(h.Sum(nil))
	}
	if got := RecordsDigest(nil); got != headerHash(2) {
		t.Errorf("empty digest = %s, want the v2 header hash %s", got, headerHash(2))
	}
	if RecordsVersion != 3 {
		t.Errorf("RecordsVersion = %d; the v3 scheme carries fault fields — bumping it requires regenerating stored digests", RecordsVersion)
	}
	lossFree := []CellRecord{{Index: 0, Cell: "a", MaxLoad: 3}}
	faulted := []CellRecord{{Index: 0, Cell: "a", MaxLoad: 3, Faults: "drop(1/20)", Dropped: 2}}
	if RecordsDigest(lossFree) == RecordsDigest(faulted) {
		t.Error("digest blind to fault fields")
	}
	// The version gate is observable through the header: a single
	// loss-free record digests under v2 (prefix hash of "v2\n"), a
	// faulted one under v3.
	v2Only := NewRecordsDigester()
	if err := v2Only.Add(lossFree[0]); err != nil {
		t.Fatal(err)
	}
	if got := v2Only.Sum(); got != RecordsDigest(lossFree) {
		t.Errorf("digester digest %s != RecordsDigest %s over loss-free records", got, RecordsDigest(lossFree))
	}
	v3Only := NewRecordsDigester()
	if err := v3Only.Add(faulted[0]); err != nil {
		t.Fatal(err)
	}
	if got := v3Only.Sum(); got != RecordsDigest(faulted) {
		t.Errorf("digester digest %s != RecordsDigest %s over faulted records", got, RecordsDigest(faulted))
	}
}

func TestCellResultRecord(t *testing.T) {
	cr := CellResult{Cell: Cell{Index: 7, Protocol: "PPTS", Topology: "path(16)", Adversary: "random", Seed: 3, Rounds: 100}}
	cr.Result.MaxLoad = 5
	cr.Result.Injected = 40
	cr.Result.Delivered = 38
	rec := cr.Record()
	if rec.Index != 7 || rec.MaxLoad != 5 || rec.Injected != 40 || rec.Delivered != 38 {
		t.Errorf("record mismatch: %+v", rec)
	}
	if !strings.Contains(rec.Cell, "PPTS") {
		t.Errorf("record label %q misses the protocol", rec.Cell)
	}

	failed := CellResult{Cell: Cell{Index: 1}, Err: errors.New("boom")}
	frec := failed.Record()
	if frec.Err != "boom" || frec.MaxLoad != 0 {
		t.Errorf("failed record mismatch: %+v", frec)
	}
}

// TestSweepDigestStableAcrossWorkerCounts is the service-tier guarantee
// in miniature: the same grid digests identically at any parallelism.
func TestSweepDigestStableAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) string {
		s := acceptanceSweep(workers)
		agg, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if agg.Failed > 0 {
			t.Fatalf("%d cells failed: %v", agg.Failed, agg.FirstErr())
		}
		return agg.Digest()
	}
	d1, d4 := run(1), run(4)
	if d1 != d4 {
		t.Errorf("digest varies with worker count: %s vs %s", d1, d4)
	}
}
