// Package harness is Tier 2 of the execution API: declarative, parallel
// parameter sweeps over the simulation engine.
//
// The paper's results are statements over families of runs — every
// (ρ,σ)-bounded adversary, every level count ℓ, every topology — so the
// natural workload shape is a grid of scenarios, not a single run. A Sweep
// names the axes of that grid (protocols × topologies × bounds ×
// adversaries × bandwidths × seeds × rounds), and the harness executes the cartesian
// product on a bounded worker pool, streaming per-cell results over a
// channel and folding them into an aggregated SweepResult.
//
// Reproducibility is structural: each cell derives its adversary seed
// deterministically from the sweep's BaseSeed and the cell's coordinates,
// never from worker identity or scheduling, so the same Sweep produces the
// same per-cell results at any worker count. Cancellation is cooperative:
// the engine honors ctx between rounds, so a cancelled sweep stops
// promptly and returns the cells that completed.
package harness

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/faults"
	"smallbuffers/internal/metrics"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
	"smallbuffers/internal/stats"
)

// ProtocolSpec is one point on the protocol axis. New is a factory because
// protocols are stateful per run: every cell gets a fresh instance.
type ProtocolSpec struct {
	Name string
	New  func() (sim.Protocol, error)
}

// Protocol wraps a stateless constructor as a ProtocolSpec.
func Protocol(name string, mk func() sim.Protocol) ProtocolSpec {
	return ProtocolSpec{Name: name, New: func() (sim.Protocol, error) { return mk(), nil }}
}

// TopologySpec is one point on the topology axis.
type TopologySpec struct {
	Name string
	New  func() (*network.Network, error)
}

// Path returns the path-topology spec on n nodes.
func Path(n int) TopologySpec {
	return TopologySpec{Name: fmt.Sprintf("path(%d)", n), New: func() (*network.Network, error) {
		return network.NewPath(n)
	}}
}

// AdversarySpec is one point on the adversary axis. New receives the cell's
// topology, bound, derived seed, and horizon (crafted bursts are sized to
// the horizon; randomized patterns consume the seed).
type AdversarySpec struct {
	Name string
	New  func(nw *network.Network, bound adversary.Bound, seed int64, rounds int) (adversary.Adversary, error)
}

// RandomAdversary is the AdversarySpec for the shaped random pattern
// injecting toward dests (the sinks if nil).
func RandomAdversary(dests []network.NodeID) AdversarySpec {
	return AdversarySpec{Name: "random", New: func(nw *network.Network, bound adversary.Bound, seed int64, _ int) (adversary.Adversary, error) {
		return adversary.NewRandom(nw, bound, dests, seed)
	}}
}

// FaultSpec is one point on the fault axis. New receives the cell's
// topology and derived seed and must return a fresh model already bound
// via Model.Reset — fault models are stateless-per-coordinate but carry
// their seed, and every cell gets its own instance.
type FaultSpec struct {
	Name string
	New  func(nw *network.Network, seed int64) (faults.Model, error)
}

// DropFault is the FaultSpec for i.i.d. per-link loss with probability p
// (labelled with p's exact value, e.g. "drop(1/20)").
func DropFault(p rat.Rat) FaultSpec {
	return FaultSpec{Name: fmt.Sprintf("drop(%v)", p), New: func(nw *network.Network, seed int64) (faults.Model, error) {
		m, err := faults.NewDrop(p)
		if err != nil {
			return nil, err
		}
		if err := m.Reset(nw, seed); err != nil {
			return nil, err
		}
		return m, nil
	}}
}

// Cell identifies one point of the sweep grid: the names of its coordinates
// plus the resolved seed and horizon.
type Cell struct {
	// Index is the cell's position in the row-major expansion of the
	// grid — the global ordering contract the distribution tier relies
	// on. For a fixed Sweep the expansion order is: topology (outermost),
	// then protocol, adversary, bound, bandwidth, fault, seed, rounds
	// (innermost) — see Cells — so Index names the same coordinates on
	// every machine, at any worker count, and in any shard. Results
	// stream in completion order and are re-sorted by Index; sharded
	// executions (ShardOffset/ShardCount) keep global indices, so
	// records from disjoint shards of the same grid reassemble by Index
	// alone into exactly the record set of an unsharded run.
	Index     int
	Protocol  string
	Topology  string
	Adversary string
	Bound     adversary.Bound
	// Bandwidth is the uniform link bandwidth imposed on the cell's
	// topology; 0 means "as built" (the topology's own bandwidths).
	Bandwidth int
	// Faults names the cell's fault-axis entry; "" means the loss-free
	// paper model (no fault axis, or none applied).
	Faults string
	// Seed is the grid seed; DerivedSeed is what the adversary factory
	// receives — a deterministic hash of BaseSeed and the cell coordinates,
	// so distinct cells never share an RNG stream even at equal grid seeds.
	Seed        int64
	DerivedSeed int64
	Rounds      int
}

// String renders a compact cell label for tables and errors. Optional
// axes (bandwidth, faults) appear only when set, so labels of sweeps that
// never touch them are unchanged.
func (c Cell) String() string {
	mid := ""
	if c.Bandwidth > 0 {
		mid = fmt.Sprintf("/B=%d", c.Bandwidth)
	}
	if c.Faults != "" {
		mid += "/faults=" + c.Faults
	}
	return fmt.Sprintf("%s/%s/%s/%v%s/seed=%d/T=%d", c.Protocol, c.Topology, c.Adversary, c.Bound, mid, c.Seed, c.Rounds)
}

// CellResult pairs a cell with its run outcome. Err is non-nil when the
// cell failed to build or its run aborted (invariant violation, protocol
// error); such cells carry a zero Result.
type CellResult struct {
	Cell   Cell
	Result sim.Result
	Err    error
}

// Sweep is a declarative cartesian grid of simulation runs. Protocols,
// Topologies, Bounds, and Adversaries are required axes; Seeds defaults to
// {1} and exactly one of Rounds or RoundsFor must be set.
type Sweep struct {
	Protocols   []ProtocolSpec
	Topologies  []TopologySpec
	Bounds      []adversary.Bound
	Adversaries []AdversarySpec
	Seeds       []int64
	Rounds      []int

	// Bandwidths is the optional link-capacity axis: each entry B ≥ 1 runs
	// the cell's topology with every link's bandwidth set to B. Empty means
	// "as built" (the topologies' own bandwidths, i.e. the paper's B = 1
	// unless a topology spec configured otherwise). The bandwidth is NOT
	// folded into the derived adversary seed: cells differing only in B
	// replay identical traffic, so a bandwidth sweep is a paired comparison
	// of the same demand under different link speeds.
	Bandwidths []int

	// Faults is the optional fault axis: each entry attaches its model to
	// every cell it expands into. Empty means every cell runs the
	// loss-free paper model. Like Bandwidths, the fault name is NOT folded
	// into the derived adversary seed — cells differing only in the fault
	// entry replay identical traffic, so a fault sweep is a paired
	// comparison of the same demand under different loss processes (a
	// loss-free baseline inside a fault sweep is the drop model at p=0).
	// Fault models draw their schedules from the cell's derived seed
	// through a domain-separated sub-stream (internal/faults), so
	// attaching one never perturbs the adversary's randomness.
	Faults []FaultSpec

	// RoundsFor derives the horizon from the cell's topology (e.g. 6·n);
	// it replaces the Rounds axis.
	RoundsFor func(nw *network.Network) int

	// BaseSeed is folded into every cell's derived seed; vary it to re-draw
	// the whole sweep's randomness at once.
	BaseSeed int64

	// ShardOffset and ShardCount restrict execution to the contiguous
	// cell-index range [ShardOffset, ShardOffset+ShardCount) of the
	// row-major expansion; ShardCount == 0 means the whole grid. Cells
	// keep their global Index, so the records of disjoint shards of the
	// same grid reassemble (sorted by index) into exactly the record set
	// — and RecordsDigest — an unsharded run produces. The expansion,
	// seed derivation, and horizon resolution are identical either way:
	// a shard changes which cells run, never what any cell computes.
	ShardOffset int
	ShardCount  int

	// Skip names global cell-index ranges to leave out of execution — the
	// resume path: cells whose records are already durable in a store
	// need not be re-run, and the sweep executes only the remainder.
	// Ranges must be disjoint and ascending (as Store.Covered reports
	// them); they compose with the shard, skipping within the shard's
	// cells. Skipped cells keep their global indices vacant: they do not
	// run, do not appear in the SweepResult, and the caller reassembles
	// the full record set (store + fresh records, sorted by index) for
	// digesting.
	Skip []IndexRange

	// Sink, when set, receives every executed cell's wire record as the
	// cell completes (completion order, not index order). An append error
	// cancels the sweep's remaining cells and fails Run. Records of cells
	// that died of the sweep's own cancellation are not appended — a
	// cancellation artifact is not a result, and persisting one would
	// poison resume with a record a fresh run would never produce.
	Sink RecordSink

	// RawSeeds passes each cell's grid seed to its adversary verbatim
	// instead of deriving a per-cell seed from BaseSeed and the cell
	// coordinates. The scenario layer sets it so that a serialized seed
	// pins exactly the traffic a single-run invocation with that seed
	// would see; grids that want decorrelated cells leave it off.
	RawSeeds bool

	// Workers bounds the worker pool; ≤ 0 means GOMAXPROCS.
	Workers int

	// VerifyAdversary re-checks every cell's injections against the
	// declared (ρ,σ) bound.
	VerifyAdversary bool

	// Observers and Invariants, when set, are called per cell to build the
	// run's instrumentation (fresh per run — observers are stateful).
	Observers  func(c Cell, nw *network.Network) []sim.Observer
	Invariants func(c Cell, nw *network.Network) []sim.Invariant

	// Metrics, when set, builds the per-cell metric collectors (fresh per
	// run — collectors are stateful); their summaries ride each cell's
	// Result.Metrics, the wire records, and the results digest. A build
	// error fails the cell. Unset means the default {max_load, latency}
	// set.
	Metrics func(c Cell, nw *network.Network) ([]metrics.Collector, error)
}

// validate checks the axes before expansion. Axis names must be unique:
// cells reference their axis entries by name, so a duplicate would
// silently execute the wrong spec.
func (s *Sweep) validate() error {
	if len(s.Protocols) == 0 {
		return fmt.Errorf("harness: sweep has no protocols")
	}
	if len(s.Topologies) == 0 {
		return fmt.Errorf("harness: sweep has no topologies")
	}
	if len(s.Bounds) == 0 {
		return fmt.Errorf("harness: sweep has no bounds")
	}
	if len(s.Adversaries) == 0 {
		return fmt.Errorf("harness: sweep has no adversaries")
	}
	names := make(map[string]bool)
	for _, p := range s.Protocols {
		if names["p:"+p.Name] {
			return fmt.Errorf("harness: duplicate protocol name %q", p.Name)
		}
		names["p:"+p.Name] = true
	}
	for _, t := range s.Topologies {
		if names["t:"+t.Name] {
			return fmt.Errorf("harness: duplicate topology name %q", t.Name)
		}
		names["t:"+t.Name] = true
	}
	for _, a := range s.Adversaries {
		if names["a:"+a.Name] {
			return fmt.Errorf("harness: duplicate adversary name %q", a.Name)
		}
		names["a:"+a.Name] = true
	}
	if len(s.Rounds) == 0 && s.RoundsFor == nil {
		return fmt.Errorf("harness: sweep needs Rounds or RoundsFor")
	}
	if len(s.Rounds) > 0 && s.RoundsFor != nil {
		return fmt.Errorf("harness: Rounds and RoundsFor are mutually exclusive")
	}
	for _, b := range s.Bandwidths {
		if b < 1 {
			return fmt.Errorf("harness: bandwidth axis entries must be ≥ 1, got %d", b)
		}
	}
	for _, f := range s.Faults {
		if f.Name == "" || f.New == nil {
			return fmt.Errorf("harness: fault axis entries need a name and a factory")
		}
		if names["f:"+f.Name] {
			return fmt.Errorf("harness: duplicate fault name %q", f.Name)
		}
		names["f:"+f.Name] = true
	}
	if s.ShardOffset < 0 || s.ShardCount < 0 {
		return fmt.Errorf("harness: negative shard range [%d,+%d)", s.ShardOffset, s.ShardCount)
	}
	if s.ShardOffset > 0 && s.ShardCount == 0 {
		return fmt.Errorf("harness: ShardOffset %d without a ShardCount", s.ShardOffset)
	}
	prev := IndexRange{Lo: -1, Hi: 0}
	for _, r := range s.Skip {
		if r.Lo < 0 || r.Hi <= r.Lo {
			return fmt.Errorf("harness: malformed skip range %v", r)
		}
		if r.Lo < prev.Hi {
			return fmt.Errorf("harness: skip ranges %v and %v out of order (must be disjoint ascending)", prev, r)
		}
		prev = r
	}
	return nil
}

// Cells expands the full grid in row-major order: topology (outermost),
// then protocol, adversary, bound, bandwidth, fault, seed, rounds. This
// order is a contract (see Cell.Index): it is what makes cell indices
// global, so it must never depend on workers, sharding, or scheduling.
// Cells ignores the shard (it always returns the whole expansion; see
// CellsToRun); cells whose horizon comes from RoundsFor carry Rounds == 0
// until execution resolves the topology.
func (s *Sweep) Cells() ([]Cell, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	rounds := s.Rounds
	if len(rounds) == 0 {
		rounds = []int{0} // resolved per topology by RoundsFor
	}
	bandwidths := s.Bandwidths
	if len(bandwidths) == 0 {
		bandwidths = []int{0} // as built
	}
	faultNames := []string{""}
	if len(s.Faults) > 0 {
		faultNames = make([]string, len(s.Faults))
		for i, f := range s.Faults {
			faultNames[i] = f.Name
		}
	}
	cells := make([]Cell, 0, len(s.Topologies)*len(s.Protocols)*len(s.Adversaries)*len(s.Bounds)*len(bandwidths)*len(faultNames)*len(seeds)*len(rounds))
	for _, topo := range s.Topologies {
		for _, proto := range s.Protocols {
			for _, adv := range s.Adversaries {
				for _, bound := range s.Bounds {
					for _, bw := range bandwidths {
						for _, fname := range faultNames {
							for _, seed := range seeds {
								for _, r := range rounds {
									c := Cell{
										Index:     len(cells),
										Protocol:  proto.Name,
										Topology:  topo.Name,
										Adversary: adv.Name,
										Bound:     bound,
										Bandwidth: bw,
										Faults:    fname,
										Seed:      seed,
										Rounds:    r,
									}
									if s.RawSeeds {
										c.DerivedSeed = seed
									} else {
										c.DerivedSeed = deriveSeed(s.BaseSeed, c)
									}
									cells = append(cells, c)
								}
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// deriveSeed hashes the sweep base seed and the cell coordinates into the
// seed handed to the cell's adversary. FNV-1a over the canonical cell label
// is stable across runs, platforms, and worker counts. Bandwidth and the
// fault entry are deliberately excluded: demand is a property of the
// adversary, not the links or their failures, so cells along those axes
// replay the same injections (fault schedules decorrelate from the
// adversary via the domain-separated sub-stream instead).
func deriveSeed(base int64, c Cell) int64 {
	h := fnv.New64a()
	hashWrite(h, fmt.Appendf(nil, "%d|%s|%s|%s|%v|%d|%d", base, c.Protocol, c.Topology, c.Adversary, c.Bound, c.Seed, c.Rounds))
	// Clear the sign bit: adversary constructors treat seeds as plain
	// numbers and negative seeds read poorly in reports.
	return int64(h.Sum64() &^ (1 << 63))
}

// CellsToRun expands the grid (see Cells) and applies the configured
// shard and skip ranges: exactly the cells Stream and Run will execute,
// in global index order.
func (s *Sweep) CellsToRun() ([]Cell, error) {
	cells, err := s.Cells()
	if err != nil {
		return nil, err
	}
	if s.ShardCount != 0 {
		if s.ShardOffset+s.ShardCount > len(cells) {
			return nil, fmt.Errorf("harness: shard [%d,%d) exceeds the %d-cell grid", s.ShardOffset, s.ShardOffset+s.ShardCount, len(cells))
		}
		cells = cells[s.ShardOffset : s.ShardOffset+s.ShardCount]
	}
	if len(s.Skip) == 0 {
		return cells, nil
	}
	kept := make([]Cell, 0, len(cells))
	si := 0
	for _, c := range cells {
		for si < len(s.Skip) && s.Skip[si].Hi <= c.Index {
			si++
		}
		if si < len(s.Skip) && s.Skip[si].Lo <= c.Index {
			continue
		}
		kept = append(kept, c)
	}
	return kept, nil
}

// Stream executes the sweep (or its configured shard) on the worker pool
// and streams per-cell results in completion order. The channel closes
// when every cell has been executed or ctx is cancelled; after
// cancellation the engine stops in-flight runs at the next round boundary
// and undispatched cells are dropped. Build errors (invalid axes) surface
// as a single CellResult with Err set.
//
// Callers must either drain the channel or cancel ctx: abandoning the
// range loop with a live context leaves the workers blocked on their next
// send.
func (s *Sweep) Stream(ctx context.Context) <-chan CellResult {
	cells, err := s.CellsToRun()
	if err != nil {
		out := make(chan CellResult)
		go func() {
			defer close(out)
			select {
			case out <- CellResult{Err: err}:
			case <-ctx.Done():
			}
		}()
		return out
	}
	return s.stream(ctx, cells)
}

// stream fans the pre-expanded cells out to the worker pool.
func (s *Sweep) stream(ctx context.Context, cells []Cell) <-chan CellResult {
	out := make(chan CellResult)
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	jobs := make(chan Cell)
	go func() {
		defer close(jobs)
		for _, c := range cells {
			select {
			case jobs <- c:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One engine per worker, reused across that worker's cells.
			var eng *sim.Engine
			for c := range jobs {
				res := s.runCell(ctx, &eng, c)
				select {
				case out <- res:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// runCell materializes one cell (topology, protocol, adversary, horizon)
// and executes it, reusing the worker's engine when possible.
func (s *Sweep) runCell(ctx context.Context, eng **sim.Engine, c Cell) CellResult {
	proto, topo, adv, err := s.lookup(c)
	if err != nil {
		return CellResult{Cell: c, Err: err}
	}
	nw, err := topo.New()
	if err != nil {
		return CellResult{Cell: c, Err: fmt.Errorf("harness: %v: topology: %w", c, err)}
	}
	if c.Bandwidth > 0 {
		nw, err = nw.WithBandwidths(network.WithUniformBandwidth(c.Bandwidth))
		if err != nil {
			return CellResult{Cell: c, Err: fmt.Errorf("harness: %v: bandwidth: %w", c, err)}
		}
	}
	if s.RoundsFor != nil {
		c.Rounds = s.RoundsFor(nw)
	}
	p, err := proto.New()
	if err != nil {
		return CellResult{Cell: c, Err: fmt.Errorf("harness: %v: protocol: %w", c, err)}
	}
	a, err := adv.New(nw, c.Bound, c.DerivedSeed, c.Rounds)
	if err != nil {
		return CellResult{Cell: c, Err: fmt.Errorf("harness: %v: adversary: %w", c, err)}
	}
	opts := make([]sim.Option, 0, 5)
	if c.Faults != "" {
		var fs *FaultSpec
		for i := range s.Faults {
			if s.Faults[i].Name == c.Faults {
				fs = &s.Faults[i]
				break
			}
		}
		if fs == nil {
			return CellResult{Cell: c, Err: fmt.Errorf("harness: cell %v names unknown fault entry %q", c, c.Faults)}
		}
		fm, err := fs.New(nw, c.DerivedSeed)
		if err != nil {
			return CellResult{Cell: c, Err: fmt.Errorf("harness: %v: faults: %w", c, err)}
		}
		opts = append(opts, sim.WithFaults(fm))
	}
	if s.VerifyAdversary {
		opts = append(opts, sim.WithVerifyAdversary())
	}
	if s.Observers != nil {
		opts = append(opts, sim.WithObservers(s.Observers(c, nw)...))
	}
	if s.Invariants != nil {
		opts = append(opts, sim.WithInvariants(s.Invariants(c, nw)...))
	}
	if s.Metrics != nil {
		cs, err := s.Metrics(c, nw)
		if err != nil {
			return CellResult{Cell: c, Err: fmt.Errorf("harness: %v: metrics: %w", c, err)}
		}
		opts = append(opts, sim.WithMetrics(cs...))
	}
	spec := sim.NewSpec(nw, p, a, c.Rounds, opts...)

	if *eng == nil {
		e, err := sim.NewEngine(spec)
		if err != nil {
			return CellResult{Cell: c, Err: fmt.Errorf("harness: %v: %w", c, err)}
		}
		*eng = e
	} else if err := (*eng).Reset(spec); err != nil {
		return CellResult{Cell: c, Err: fmt.Errorf("harness: %v: %w", c, err)}
	}
	res, err := (*eng).Run(ctx)
	if err != nil {
		return CellResult{Cell: c, Err: fmt.Errorf("harness: %v: %w", c, err)}
	}
	return CellResult{Cell: c, Result: res}
}

// lookup resolves a cell's axis entries by name.
func (s *Sweep) lookup(c Cell) (ProtocolSpec, TopologySpec, AdversarySpec, error) {
	var proto ProtocolSpec
	var topo TopologySpec
	var adv AdversarySpec
	found := 0
	for _, p := range s.Protocols {
		if p.Name == c.Protocol {
			proto = p
			found++
			break
		}
	}
	for _, t := range s.Topologies {
		if t.Name == c.Topology {
			topo = t
			found++
			break
		}
	}
	for _, a := range s.Adversaries {
		if a.Name == c.Adversary {
			adv = a
			found++
			break
		}
	}
	if found != 3 {
		return proto, topo, adv, fmt.Errorf("harness: cell %v names unknown axis entries", c)
	}
	return proto, topo, adv, nil
}

// SweepResult aggregates a sweep: the per-cell results (sorted by cell
// index) plus numeric summaries over the cells that ran cleanly.
type SweepResult struct {
	// Cells holds one entry per executed cell, ordered by Cell.Index.
	// Cancelled sweeps carry only the cells that completed.
	Cells []CellResult
	// Requested is the grid size; Completed counts cells that ran cleanly;
	// Failed counts cells whose Err is set.
	Requested int
	Completed int
	Failed    int
	// Interrupted is true when the sweep was cut short by cancellation.
	Interrupted bool

	// MaxLoad, AvgLatency, and Delivered summarize the clean cells
	// (mean/max/percentiles via stats.Summary).
	MaxLoad    stats.Summary
	AvgLatency stats.Summary
	Delivered  stats.Summary

	// Metrics aggregates the clean cells' metric summaries per collector
	// name, folded in cell-index order (see metrics.Merge: histograms
	// merge bucket-wise with re-derived quantiles, scalars merge by
	// maximum except anchored argmax groups, series drop).
	Metrics map[string]metrics.Summary
}

// FirstErr returns the lowest-indexed cell error, or nil.
func (r *SweepResult) FirstErr() error {
	for _, c := range r.Cells {
		if c.Err != nil {
			return c.Err
		}
	}
	return nil
}

// Run executes the sweep and aggregates every streamed cell. On
// cancellation it returns the partial SweepResult together with ctx's
// error; per-cell failures do not abort the sweep (they are recorded on
// the cells and counted in Failed).
func (s *Sweep) Run(ctx context.Context) (*SweepResult, error) {
	cells, err := s.CellsToRun()
	if err != nil {
		return nil, err
	}
	runCtx := ctx
	var cancel context.CancelFunc
	if s.Sink != nil {
		runCtx, cancel = context.WithCancel(ctx)
		defer cancel()
	}
	var sinkErr error
	agg := &SweepResult{Requested: len(cells)}
	for cr := range s.stream(runCtx, cells) {
		agg.Cells = append(agg.Cells, cr)
		if s.Sink != nil && sinkErr == nil && !isCancelArtifact(cr.Err) {
			if err := s.Sink.Append(cr.Record()); err != nil {
				sinkErr = err
				cancel()
			}
		}
		if cr.Err != nil {
			agg.Failed++
			continue
		}
		agg.Completed++
		agg.MaxLoad.AddInt(cr.Result.MaxLoad)
		agg.Delivered.AddInt(cr.Result.Delivered)
		if avg, ok := cr.Result.AvgLatency(); ok {
			agg.AvgLatency.Add(avg)
		}
	}
	sort.Slice(agg.Cells, func(i, j int) bool { return agg.Cells[i].Cell.Index < agg.Cells[j].Cell.Index })
	// Merge metric summaries in cell-index order — anchored merges break
	// ties toward the earlier fold argument, so the order must be
	// canonical (and match the service tier, which merges sorted
	// records), never worker-completion order. Same-name summaries
	// always merge cleanly (one collector per name per cell); an error
	// would mean mixed kinds under one name, which the registry rules
	// out — drop the aggregate rather than the sweep.
	var perCell []map[string]metrics.Summary
	for _, cr := range agg.Cells {
		if cr.Err == nil && len(cr.Result.Metrics) > 0 {
			perCell = append(perCell, cr.Result.Metrics)
		}
	}
	if merged, err := metrics.MergeAll(perCell); err == nil {
		agg.Metrics = merged
	}
	if err := ctx.Err(); err != nil {
		agg.Interrupted = true
		return agg, err
	}
	if sinkErr != nil {
		agg.Interrupted = true
		return agg, fmt.Errorf("harness: record sink: %w", sinkErr)
	}
	return agg, nil
}

// isCancelArtifact reports whether a cell error is the sweep's own
// cancellation surfacing through the engine rather than a result the
// cell deterministically produces.
func isCancelArtifact(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}
