package harness

import (
	"context"
	"encoding/json"
	"testing"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/baseline"
	"smallbuffers/internal/core"
	"smallbuffers/internal/faults"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
)

// faultSweep builds a two-protocol sweep over a drop and a link_flap
// entry, the shape the determinism tests shard across worker pools.
func faultSweep(workers int, faultAxis []FaultSpec) *Sweep {
	return &Sweep{
		Protocols: []ProtocolSpec{
			Protocol("pts", func() sim.Protocol { return core.NewPTS() }),
			Protocol("greedy", func() sim.Protocol { return baseline.NewGreedy(baseline.FIFO{}) }),
		},
		Topologies:  []TopologySpec{Path(12)},
		Bounds:      []adversary.Bound{{Rho: rat.New(1, 2), Sigma: 2}},
		Adversaries: []AdversarySpec{RandomAdversary(nil)},
		Seeds:       []int64{1, 2},
		Rounds:      []int{200},
		Faults:      faultAxis,
		Workers:     workers,
	}
}

func recordJSON(t *testing.T, rec CellRecord) string {
	t.Helper()
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func flapFault(p rat.Rat, period, down int) FaultSpec {
	return FaultSpec{Name: "flap", New: func(nw *network.Network, seed int64) (faults.Model, error) {
		m, err := faults.NewLinkFlap(p, period, down)
		if err != nil {
			return nil, err
		}
		if err := m.Reset(nw, seed); err != nil {
			return nil, err
		}
		return m, nil
	}}
}

// TestFaultSweepDeterministicAcrossWorkers is the reproducibility gate of
// the fault subsystem: the same faulted sweep produces byte-identical
// records — and therefore the same results digest — at sweep-worker
// counts 1, 3, and 8.
func TestFaultSweepDeterministicAcrossWorkers(t *testing.T) {
	axis := []FaultSpec{
		DropFault(rat.New(1, 10)),
		flapFault(rat.New(1, 2), 16, 4),
	}
	digests := make(map[string][]int)
	for _, workers := range []int{1, 3, 8} {
		res, err := faultSweep(workers, axis).Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Failed > 0 {
			t.Fatalf("workers=%d: %d cells failed: %v", workers, res.Failed, res.FirstErr())
		}
		digests[res.Digest()] = append(digests[res.Digest()], workers)
	}
	if len(digests) != 1 {
		t.Fatalf("worker counts disagree on the faulted digest: %v", digests)
	}
	// The drop cells actually dropped something (the axis is live).
	res, err := faultSweep(2, axis).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	dropped := 0
	for _, rec := range res.Records() {
		if rec.Faults == "drop(1/10)" {
			dropped += rec.Dropped
		}
		if rec.Faults == "" {
			t.Fatalf("cell %q carries no fault entry in a fully-faulted sweep", rec.Cell)
		}
	}
	if dropped == 0 {
		t.Fatal("drop(1/10) cells dropped nothing over 200 rounds")
	}
}

// TestZeroFaultAxisMatchesNoAxis checks the paired-comparison contract:
// a drop entry at p=0 replays exactly the traffic of the same sweep with
// no fault axis, and every record agrees on every scalar — only the cell
// label (and thus the digest version) differs.
func TestZeroFaultAxisMatchesNoAxis(t *testing.T) {
	base, err := faultSweep(3, nil).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	zero, err := faultSweep(3, []FaultSpec{DropFault(rat.New(0, 1))}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	baseRecs, zeroRecs := base.Records(), zero.Records()
	if len(baseRecs) != len(zeroRecs) {
		t.Fatalf("grid sizes differ: %d vs %d", len(baseRecs), len(zeroRecs))
	}
	for i, b := range baseRecs {
		z := zeroRecs[i]
		// Strip the axis label; everything else must match field-for-field.
		if z.Faults != "drop(0)" {
			t.Fatalf("record %d: fault label %q, want drop(0)", i, z.Faults)
		}
		z.Faults, z.Cell = "", b.Cell
		bj, zj := recordJSON(t, b), recordJSON(t, z)
		if bj != zj {
			t.Errorf("record %d diverges under a p=0 drop model:\nbase: %s\nzero: %s", i, bj, zj)
		}
	}
}
