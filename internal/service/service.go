// Package service is the network execution tier: an HTTP facade over the
// scenario layer that accepts declarative workloads (internal/scenario
// JSON), executes them on a bounded worker pool, and memoizes results in
// a digest-keyed, size-bounded LRU cache so identical workloads never
// re-simulate.
//
// # Endpoints
//
//	POST   /v1/runs              submit a scenario (JSON body); waits and
//	                             returns the full report, or ?wait=0 for 202
//	GET    /v1/runs              list known runs
//	GET    /v1/runs/{id}         report for one run (status + cells so far)
//	DELETE /v1/runs/{id}         cancel a run; streams then end with a
//	                             "cancelled" summary (idempotent)
//	GET    /v1/runs/{id}/stream  per-cell results as NDJSON (or SSE with
//	                             Accept: text/event-stream), then a summary
//	GET    /v1/runs/{id}/live    live snapshot: cells done/total, merged
//	                             metric summaries so far, cells/sec, ETA
//	GET    /v1/registry          the component catalog with param schemas
//	GET    /healthz              liveness
//	GET    /readyz               readiness: 503 with retryable JSON while
//	                             draining or the submit queue is full
//	GET    /metrics              Prometheus text exposition
//
// Error responses are structured JSON ({"error": ..., "retryable":
// true?}); transient rejections (submit-queue saturation, drain) carry
// retryable=true and a Retry-After header so a fleet coordinator can
// distinguish back-off from fail-over.
//
// # Execution model
//
// Submissions are keyed by Scenario.Digest(), the SHA-256 of the
// canonical scenario form. A digest that matches a completed run is
// served from the cache without simulating; a digest that matches an
// in-flight run joins it (single-flight). New digests are enqueued to a
// pool of Workers run-executors; each run executes its (possibly
// one-point) grid through harness.Sweep with SweepWorkers cell workers,
// so at most Workers × SweepWorkers cells are in flight at once. Every
// run gets its own context: when the last attached client disconnects
// before completion, the run is cancelled and its worker slot freed —
// abandoned work is never simulated to completion.
//
// Results are deterministic (integer metrics, seed-pinned traffic), so a
// cached report is byte-identical to a fresh one — the CI corpus gate
// compares the service's results digest against local aqtsim runs.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"smallbuffers/internal/harness"
	"smallbuffers/internal/live"
	"smallbuffers/internal/metrics"
	"smallbuffers/internal/registry"
	"smallbuffers/internal/scenario"
	"smallbuffers/internal/store"
)

// Config sizes the service. The zero value is usable: every field has a
// production-lean default.
type Config struct {
	// Workers is the run-executor pool size: how many submitted scenarios
	// execute concurrently. Default 4.
	Workers int
	// SweepWorkers is the per-run cell pool handed to harness.Sweep, so
	// total concurrent cells ≤ Workers × SweepWorkers. Default 1 (the
	// strictest bound; raise it to let big sweeps use more cores).
	SweepWorkers int
	// CacheCells bounds the result cache: the total number of sweep cells
	// whose reports may be retained (one single run costs one cell).
	// Default 4096; ≤ -1 disables caching. (0 means the default.)
	CacheCells int
	// QueueDepth bounds the submit queue; submissions beyond it are
	// rejected with 503. Default 256.
	QueueDepth int
	// Clock supplies the wall time behind the live views' elapsed/rate
	// fields (never anything digest-adjacent). Tests inject a fake;
	// nil means live.SystemClock.
	Clock live.Clock
	// SSEHeartbeat is the idle interval after which an SSE stream emits
	// a ": keepalive" comment so proxy/LB idle timeouts don't sever
	// long-running sweeps. Default 15s; < 0 disables heartbeats.
	SSEHeartbeat time.Duration
	// CacheDir, when set, makes the result cache durable: completed runs
	// persist to an internal/store entry under this directory, and a
	// restarted daemon serves a previously finished digest from disk —
	// digest-verified on load, corrupt entries evicted rather than served
	// — as a warm cache hit. The in-memory LRU's cost bound still governs
	// what stays resident; disk holds everything persisted. Empty
	// disables persistence (the pre-restart behavior, byte-identical).
	CacheDir string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.SweepWorkers <= 0 {
		c.SweepWorkers = 1
	}
	if c.CacheCells == 0 {
		c.CacheCells = 4096
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Clock == nil {
		c.Clock = live.SystemClock()
	}
	if c.SSEHeartbeat == 0 {
		c.SSEHeartbeat = 15 * time.Second
	}
	return c
}

// Run statuses, as reported in the "status" field of reports and the
// stream's summary event.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"      // every cell executed (per-cell failures are data, see Report.Failed)
	StatusCancelled = "cancelled" // run context cancelled before completion
)

// Summary aggregates a finished run: grid counts, the results digest
// (see harness.RecordsDigest), the headline statistics over clean cells,
// and the merged metric summaries (per collector name, histograms merged
// bucket-wise with re-derived quantiles — see metrics.Merge), so a
// streaming client gets the grid-wide latency/occupancy distributions in
// the summary event without refolding the cell frames.
type Summary struct {
	Requested     int     `json:"requested"`
	Completed     int     `json:"completed"`
	Failed        int     `json:"failed"`
	ResultsDigest string  `json:"results_digest"`
	MaxLoadMean   float64 `json:"max_load_mean"`
	MaxLoadMax    int     `json:"max_load_max"`
	// DeliveredMeanMillis is the mean delivered count per clean cell in
	// per-mille — ⌊total delivered · 1000 / completed⌋ — matching the
	// integer wire convention the rest of the stack enforces. (Its float
	// predecessor, delivered_mean, served its one-release deprecation
	// window and is gone.)
	DeliveredMeanMillis int `json:"delivered_mean_millis"`
	// DroppedTotal counts packets lost in transit across clean cells;
	// omitted for loss-free runs so their summary bytes are unchanged.
	DroppedTotal int               `json:"dropped_total,omitempty"`
	Metrics      []metrics.Summary `json:"metrics,omitempty"`
}

// Report is the wire form of a run: identity, lifecycle state, and (when
// finished) the per-cell records and summary. ResultsDigest is duplicated
// at the top level so shell pipelines can extract it without descending
// into the summary.
type Report struct {
	ID            string               `json:"id"`
	Name          string               `json:"name,omitempty"`
	Digest        string               `json:"digest"`
	Status        string               `json:"status"`
	Cached        bool                 `json:"cached"`
	Error         string               `json:"error,omitempty"`
	ResultsDigest string               `json:"results_digest,omitempty"`
	Summary       *Summary             `json:"summary,omitempty"`
	Cells         []harness.CellRecord `json:"cells,omitempty"`
}

// run is one submitted scenario's lifecycle. Records accumulate in
// completion order and are re-sorted by index for reports and digests;
// subscribers follow appends via the changed-channel-swap idiom (grab the
// current channel under the lock, wait for it to close).
type run struct {
	id        string
	digest    string
	name      string
	sweep     *harness.Sweep
	requested int
	span      harness.IndexRange // global index range of the run's cells

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	status   string
	records  []harness.CellRecord
	changed  chan struct{} // closed and replaced on every state change
	finished bool
	runErr   error
	summary  *Summary
	watchers int
	pinned   bool // async submissions run to completion without watchers
	done     chan struct{}

	// live is the run's merge-as-you-go observation view. It is fed
	// unconditionally from publish — the same work whether anyone is
	// watching or not — so attaching live watchers can never perturb
	// execution order or the records digest.
	live *live.Accumulator
}

// attach registers an interested client; detach deregisters it. When the
// last watcher of an unpinned, unfinished run detaches, the run is
// cancelled: nobody is listening, so the worker slot is worth more than
// the result.
func (r *run) attach() {
	r.mu.Lock()
	r.watchers++
	r.mu.Unlock()
}

func (r *run) detach() {
	r.mu.Lock()
	r.watchers--
	abandon := r.watchers == 0 && !r.pinned && !r.finished
	r.mu.Unlock()
	if abandon {
		r.cancel()
	}
}

func (r *run) pin() {
	r.mu.Lock()
	r.pinned = true
	r.mu.Unlock()
}

// publish appends one cell record and wakes subscribers. The live
// accumulator is fed outside r.mu (it has its own lock), so a snapshot
// reader never extends the publisher's critical section.
func (r *run) publish(rec harness.CellRecord) {
	r.mu.Lock()
	r.records = append(r.records, rec)
	close(r.changed)
	r.changed = make(chan struct{})
	r.mu.Unlock()
	r.live.Observe(rec)
}

// setStatus transitions the lifecycle state and wakes subscribers.
func (r *run) setStatus(status string) {
	r.mu.Lock()
	r.status = status
	close(r.changed)
	r.changed = make(chan struct{})
	r.mu.Unlock()
}

// report snapshots the run in wire form; includeCells controls whether
// the per-cell records ride along.
func (r *run) report(includeCells bool) Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := Report{ID: r.id, Name: r.name, Digest: r.digest, Status: r.status}
	if r.runErr != nil {
		rep.Error = r.runErr.Error()
	}
	if r.summary != nil {
		s := *r.summary
		rep.Summary = &s
		rep.ResultsDigest = s.ResultsDigest
	}
	if includeCells {
		rep.Cells = harness.RecordsSorted(r.records)
	}
	return rep
}

// Server is the scenario-execution service. Create it with New, mount it
// anywhere an http.Handler fits, and Drain/Close it on shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics promMetrics
	liveReg *live.Registry

	baseCtx context.Context
	stop    context.CancelFunc
	workers sync.WaitGroup
	inRuns  sync.WaitGroup // one count per enqueued run, released at finish
	queue   chan *run

	mu       sync.Mutex
	closed   bool
	draining int // Drain calls in flight; > 0 refuses new submissions
	seq      int
	runs     map[string]*run // by id; entries live exactly as long as their cache entry
	byDigest map[string]*run // in-flight and cleanly-finished runs, by scenario digest
	cache    *lru[*run]      // finished runs; eviction drops the id and digest indexes
}

// New starts a service with cfg's pool and cache bounds. The returned
// Server is an http.Handler; callers own its lifecycle (Drain, Close).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		metrics:  promMetrics{start: time.Now()},
		liveReg:  live.NewRegistry(),
		baseCtx:  ctx,
		stop:     cancel,
		queue:    make(chan *run, cfg.QueueDepth),
		runs:     make(map[string]*run),
		byDigest: make(map[string]*run),
	}
	s.cache = newLRU[*run](cfg.CacheCells, func(digest string, r *run) {
		// Runs under s.mu (every cache mutation is). Drop the indexes so
		// evicted ids 404 and evicted digests re-simulate; the live view
		// goes with them.
		delete(s.runs, r.id)
		if s.byDigest[digest] == r {
			delete(s.byDigest, digest)
		}
		s.liveReg.Remove(r.id)
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/runs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/runs/{id}/live", s.handleLive)
	s.mux.HandleFunc("GET /v1/registry", s.handleRegistry)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain waits until every accepted run has finished, or ctx expires.
// Call it after the HTTP listener stops accepting (graceful shutdown):
// in-flight work completes, nothing new arrives. While a Drain is in
// flight the server also refuses new submissions itself (503 with
// retryable=true) and reports unready on /readyz, so a coordinator
// holding an open connection backs off instead of queueing doomed work;
// once the drain returns the gate lifts, which matters only to callers
// using Drain as a quiesce barrier rather than for shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.draining--
		s.mu.Unlock()
	}()
	done := make(chan struct{})
	go func() {
		s.inRuns.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close cancels every in-flight run, stops the worker pool, and finishes
// any still-queued runs as cancelled. Safe after Drain (nothing left to
// cancel) and as a hard stop without it.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stop()
	s.workers.Wait()
	for {
		select {
		case r := <-s.queue:
			s.finish(r, context.Canceled)
		default:
			return
		}
	}
}

// worker executes queued runs until shutdown.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case r := <-s.queue:
			s.execute(r)
		case <-s.baseCtx.Done():
			return
		}
	}
}

// execute runs one scenario through the harness, streaming cell records
// to subscribers as they complete.
func (s *Server) execute(r *run) {
	if r.ctx.Err() != nil { // abandoned or shut down while queued
		s.finish(r, r.ctx.Err())
		return
	}
	r.setStatus(StatusRunning)
	r.live.Start()
	for cr := range r.sweep.Stream(r.ctx) {
		r.publish(cr.Record())
		s.metrics.cellsCompleted.Add(1)
	}
	s.finish(r, r.ctx.Err())
}

// finish seals a run: computes the summary and results digest, updates
// the cache and indexes, and wakes every waiter. Idempotent.
func (s *Server) finish(r *run, ctxErr error) {
	r.mu.Lock()
	if r.finished {
		r.mu.Unlock()
		return
	}
	r.finished = true
	recs := harness.RecordsSorted(r.records)
	sum := summarize(r.requested, recs)
	r.summary = sum
	if ctxErr != nil {
		r.status = StatusCancelled
		r.runErr = fmt.Errorf("run cancelled after %d of %d cells: %w", len(recs), r.requested, ctxErr)
	} else {
		r.status = StatusDone
	}
	close(r.changed)
	r.changed = make(chan struct{})
	close(r.done)
	status := r.status
	r.mu.Unlock()
	r.live.Finish(status)
	// Release the run's context so completed runs don't accumulate as
	// children of the server context (idempotent; status is already
	// sealed from the ctxErr snapshot above).
	r.cancel()

	s.mu.Lock()
	if ctxErr != nil {
		// Cancelled runs are partial: never serve them for their digest
		// again, and keep only the id entry until eviction.
		if s.byDigest[r.digest] == r {
			delete(s.byDigest, r.digest)
		}
		s.metrics.runsCancelled.Add(1)
	} else if sum.Failed > 0 {
		s.metrics.runsFailed.Add(1)
	} else {
		s.metrics.runsCompleted.Add(1)
	}
	// Complete runs — including ones with deterministic per-cell failures,
	// which re-running would reproduce — enter the cache at one cell of
	// cost per record. The eviction callback prunes the indexes.
	s.cache.add(r.digest, r, len(recs))
	s.mu.Unlock()

	if ctxErr == nil && s.cfg.CacheDir != "" && len(recs) > 0 {
		s.persist(r, recs, sum)
	}

	s.metrics.runsInFlight.Add(-1)
	s.inRuns.Done()
}

// persist writes a completed run's records to the durable cache, best
// effort: the run has already been served and cached in memory, so a
// persistence failure costs warmth after a restart, never correctness.
// Records the entry already covers (an earlier partial persist) are
// skipped; the digest is recorded once the span is whole.
func (s *Server) persist(r *run, recs []harness.CellRecord, sum *Summary) {
	st, err := store.Open(s.cfg.CacheDir, r.digest, r.span, store.Options{})
	if err != nil {
		// A format bump or span clash: the entry is stale by contract —
		// wipe it and recompute from this run's records.
		_ = store.Remove(s.cfg.CacheDir, r.digest)
		if st, err = store.Open(s.cfg.CacheDir, r.digest, r.span, store.Options{}); err != nil {
			return
		}
	}
	defer st.Close()
	for _, rec := range recs {
		if st.Has(rec.Index) {
			continue
		}
		if st.Append(rec) != nil {
			return
		}
	}
	if st.Complete() {
		_ = st.SetRecordsDigest(sum.ResultsDigest)
	}
}

// loadFromDisk probes the durable cache for a finished entry of the
// given digest. It returns the records only when the entry is complete
// and its stored bytes re-derive the recorded digest; anything less —
// partial, torn, bit-flipped, digest mismatch — is evicted or ignored,
// never served.
func (s *Server) loadFromDisk(digest string, span harness.IndexRange) []harness.CellRecord {
	if _, err := os.Stat(store.EntryDir(s.cfg.CacheDir, digest)); err != nil {
		return nil
	}
	st, err := store.Open(s.cfg.CacheDir, digest, span, store.Options{})
	if err != nil {
		_ = store.Remove(s.cfg.CacheDir, digest)
		return nil
	}
	defer st.Close()
	if !st.Complete() || st.RecordsDigest() == "" {
		return nil // a partial persist: not servable, but future runs may finish it
	}
	rederived, err := st.Digest()
	if err != nil || rederived != st.RecordsDigest() {
		st.Close()
		_ = store.Remove(s.cfg.CacheDir, digest)
		return nil
	}
	recs := make([]harness.CellRecord, 0, span.Count())
	if st.Scan(func(rec harness.CellRecord) error {
		recs = append(recs, rec)
		return nil
	}) != nil {
		return nil
	}
	return recs
}

// summarize folds sorted records into a Summary.
func summarize(requested int, recs []harness.CellRecord) *Summary {
	sum := &Summary{Requested: requested, ResultsDigest: harness.RecordsDigest(recs)}
	var loadSum, delivSum int
	var perCell []map[string]metrics.Summary
	for _, rec := range recs {
		if rec.Err != "" {
			sum.Failed++
			continue
		}
		sum.Completed++
		loadSum += rec.MaxLoad
		delivSum += rec.Delivered
		sum.DroppedTotal += rec.Dropped
		if rec.MaxLoad > sum.MaxLoadMax {
			sum.MaxLoadMax = rec.MaxLoad
		}
		if len(rec.Metrics) > 0 {
			m := make(map[string]metrics.Summary, len(rec.Metrics))
			for _, s := range rec.Metrics {
				m[s.Name] = s
			}
			perCell = append(perCell, m)
		}
	}
	if sum.Completed > 0 {
		sum.MaxLoadMean = float64(loadSum) / float64(sum.Completed)
		sum.DeliveredMeanMillis = delivSum * 1000 / sum.Completed
	}
	// One collector per name per cell, so same-name summaries merge
	// cleanly; on the impossible mixed-kind error the aggregate is
	// dropped, never the summary.
	if merged, err := metrics.MergeAll(perCell); err == nil {
		sum.Metrics = metrics.Records(merged)
	}
	return sum
}

// handleSubmit accepts a scenario, dedupes it against the digest index,
// and (by default) waits for the result. ?wait=0 detaches: the run is
// pinned to completion and a 202 with the run id is returned.
func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 4<<20))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("scenario body: %w", err))
		return
	}
	sc, err := scenario.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	digest, err := sc.Digest()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wait := req.URL.Query().Get("wait") != "0"

	// Fast path: the digest alone decides cache hits and in-flight
	// joins — no grid expansion for repeated workloads.
	s.mu.Lock()
	if s.rejectUnavailableLocked(w) {
		return
	}
	if s.serveExistingLocked(w, req, digest, wait) {
		return
	}
	s.mu.Unlock()

	// Miss: lift the scenario to its sweep outside the lock (Parse has
	// already validated the components, so failures here are rare).
	sw, err := sc.Sweep()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sw.Workers = s.cfg.SweepWorkers
	// CellsToRun honours a scenario shard: a sharded submission executes
	// (and is billed for) exactly its index range, with global indices.
	cells, err := sw.CellsToRun()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	span := harness.IndexRange{}
	if len(cells) > 0 {
		span = harness.IndexRange{Lo: cells[0].Index, Hi: cells[len(cells)-1].Index + 1}
	}

	// Probe the durable cache outside the lock (it reads and verifies the
	// whole entry); the re-check below keeps single-flight intact.
	var warmed []harness.CellRecord
	if s.cfg.CacheDir != "" && len(cells) > 0 {
		warmed = s.loadFromDisk(digest, span)
	}

	s.mu.Lock()
	if s.rejectUnavailableLocked(w) {
		return
	}
	// Re-check: an identical submission may have landed while the sweep
	// was being built; joining it preserves single-flight.
	if s.serveExistingLocked(w, req, digest, wait) {
		return
	}
	if warmed != nil {
		s.serveWarmedLocked(w, sc.Name, digest, span, warmed)
		return
	}
	s.metrics.cacheMisses.Add(1)
	s.seq++
	runCtx, cancel := context.WithCancel(s.baseCtx)
	r := &run{
		id:        fmt.Sprintf("r%d-%s", s.seq, strings.TrimPrefix(digest, scenario.DigestPrefix)[:12]),
		digest:    digest,
		name:      sc.Name,
		sweep:     sw,
		requested: len(cells),
		span:      span,
		ctx:       runCtx,
		cancel:    cancel,
		status:    StatusQueued,
		changed:   make(chan struct{}),
		done:      make(chan struct{}),
		watchers:  1, // the submitter, detached by respondJoined
	}
	r.live = live.NewAccumulator(r.id, len(cells), s.cfg.SweepWorkers, s.cfg.Clock)
	s.liveReg.Add(r.live)
	s.runs[r.id] = r
	s.byDigest[digest] = r
	s.metrics.runsStarted.Add(1)
	s.metrics.runsInFlight.Add(1)
	s.inRuns.Add(1)
	s.mu.Unlock()

	select {
	case s.queue <- r:
	default:
		// Reject, but through the normal lifecycle: finish seals the run
		// (waking any client that joined in the window above), drops its
		// digest reservation, and keeps every counter monotonic.
		r.cancel()
		s.finish(r, fmt.Errorf("queue full (%d runs waiting): %w", s.cfg.QueueDepth, context.Canceled))
		writeRetryable(w, http.StatusServiceUnavailable, retryAfterSeconds,
			fmt.Errorf("queue full (%d runs waiting)", s.cfg.QueueDepth))
		return
	}
	s.respondJoined(w, req, r, wait)
}

// serveWarmedLocked installs a digest-verified disk entry as a finished
// cached run — indexed, LRU-governed, and streamable exactly like a run
// this process executed — and serves it as a cache hit. Must be entered
// holding s.mu; always releases it.
func (s *Server) serveWarmedLocked(w http.ResponseWriter, name, digest string, span harness.IndexRange, recs []harness.CellRecord) {
	s.seq++
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // sealed from birth: nothing to abandon
	r := &run{
		id:        fmt.Sprintf("r%d-%s", s.seq, strings.TrimPrefix(digest, scenario.DigestPrefix)[:12]),
		digest:    digest,
		name:      name,
		requested: len(recs),
		span:      span,
		ctx:       ctx,
		cancel:    cancel,
		status:    StatusDone,
		finished:  true,
		records:   recs,
		summary:   summarize(len(recs), recs),
		changed:   make(chan struct{}),
		done:      make(chan struct{}),
	}
	close(r.done)
	r.live = live.NewAccumulator(r.id, len(recs), s.cfg.SweepWorkers, s.cfg.Clock)
	r.live.Finish(StatusDone)
	s.liveReg.Add(r.live)
	s.runs[r.id] = r
	s.byDigest[digest] = r
	s.cache.add(digest, r, len(recs))
	s.metrics.cacheHits.Add(1)
	s.metrics.runsCached.Add(1)
	s.mu.Unlock()
	rep := r.report(true)
	rep.Cached = true
	writeJSON(w, http.StatusOK, rep)
}

// serveExistingLocked serves the submission from an already-known digest
// — a completed cached run or an in-flight one to join. Must be entered
// holding s.mu; returns true when the request was handled (s.mu then
// released), false with s.mu still held.
func (s *Server) serveExistingLocked(w http.ResponseWriter, req *http.Request, digest string, wait bool) bool {
	existing, ok := s.byDigest[digest]
	if !ok {
		return false
	}
	existing.mu.Lock()
	finished := existing.finished
	if !finished {
		// Attach while both locks are held: the last current watcher
		// cannot slip out and cancel the run before we are counted.
		existing.watchers++
	}
	existing.mu.Unlock()
	if finished {
		s.metrics.cacheHits.Add(1)
		s.metrics.runsCached.Add(1)
		s.cache.get(digest) // refresh recency
		s.mu.Unlock()
		rep := existing.report(true)
		rep.Cached = true
		writeJSON(w, http.StatusOK, rep)
		return true
	}
	s.metrics.runsJoined.Add(1)
	s.metrics.cacheHits.Add(1)
	s.mu.Unlock()
	s.respondJoined(w, req, existing, wait)
	return true
}

// respondJoined completes a submission whose watcher is already counted:
// either waiting for the run (the default) or pinning it and answering
// 202. The caller's attach is always balanced here.
func (s *Server) respondJoined(w http.ResponseWriter, req *http.Request, r *run, wait bool) {
	if !wait {
		r.pin()
		r.detach()
		writeJSON(w, http.StatusAccepted, r.report(false))
		return
	}
	defer r.detach()
	select {
	case <-r.done:
	case <-req.Context().Done():
		// Client gone; detach (possibly cancelling the run) and stop.
		return
	}
	rep := r.report(true)
	code := http.StatusOK
	if rep.Status == StatusCancelled {
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, rep)
}

// lookup finds a run by id, refreshing its cache recency.
func (s *Server) lookup(id string) (*run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if ok {
		s.cache.get(r.digest)
	}
	return r, ok
}

func (s *Server) handleGet(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", req.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, r.report(true))
}

// handleCancel cancels a run by id: its streams drain the cells already
// executed and then end with a "cancelled" summary, and its digest is
// released for clean re-submission. Idempotent — cancelling a finished
// run reports its sealed state. This is the fleet coordinator's
// work-stealing primitive: cancel the victim shard, keep the cells it
// streamed, re-dispatch the uncovered remainder elsewhere.
func (s *Server) handleCancel(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", req.PathValue("id")))
		return
	}
	r.mu.Lock()
	finished := r.finished
	r.mu.Unlock()
	if finished {
		writeJSON(w, http.StatusOK, r.report(false))
		return
	}
	r.cancel()
	writeJSON(w, http.StatusAccepted, r.report(false))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	reps := make([]Report, 0, len(s.runs))
	runs := make([]*run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	for _, r := range runs {
		reps = append(reps, r.report(false))
	}
	// Stable order for clients: by id. Ids are "r<seq>-…", so shorter ids
	// sort first and equal lengths sort lexically — creation order.
	sort.Slice(reps, func(i, j int) bool {
		if len(reps[i].ID) != len(reps[j].ID) {
			return len(reps[i].ID) < len(reps[j].ID)
		}
		return reps[i].ID < reps[j].ID
	})
	writeJSON(w, http.StatusOK, map[string]any{"runs": reps})
}

// streamEvent is one NDJSON/SSE frame: a cell record or the final
// summary.
type streamEvent struct {
	Type string `json:"type"`
	harness.CellRecord
}

// handleStream follows a run: already-completed cells replay first, live
// cells follow as they finish, and a summary event closes the stream.
// Content is NDJSON by default, SSE when the client asks for
// text/event-stream. Disconnecting mid-stream detaches the client, which
// cancels the run if nobody else is watching.
func (s *Server) handleStream(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", req.PathValue("id")))
		return
	}
	sse := strings.Contains(req.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	r.attach()
	defer r.detach()

	// Idle SSE connections emit comment heartbeats so proxy/LB idle
	// timeouts don't sever a long-running sweep's stream. A nil channel
	// (NDJSON, or heartbeats disabled) never fires.
	var heartbeat <-chan time.Time
	if sse && s.cfg.SSEHeartbeat > 0 {
		ticker := time.NewTicker(s.cfg.SSEHeartbeat)
		defer ticker.Stop()
		heartbeat = ticker.C
	}

	emit := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", data)
		}
		if err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	next := 0
	for {
		r.mu.Lock()
		pending := append([]harness.CellRecord(nil), r.records[next:]...)
		changed := r.changed
		finished := r.finished
		r.mu.Unlock()
		next += len(pending)
		for _, rec := range pending {
			if !emit("cell", streamEvent{Type: "cell", CellRecord: rec}) {
				return
			}
		}
		if finished {
			rep := r.report(false)
			emit("summary", struct {
				Type string `json:"type"`
				Report
			}{Type: "summary", Report: rep})
			return
		}
		select {
		case <-changed:
		case <-heartbeat:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-req.Context().Done():
			return
		}
	}
}

// handleLive answers with the run's live snapshot: cells done/total,
// the merge-as-you-go metric summaries, cells/sec, and ETA. Reading it
// never attaches a watcher and never touches the run's own lock — a
// polling dashboard cannot keep an abandoned run alive or slow the
// publish path.
func (s *Server) handleLive(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", req.PathValue("id")))
		return
	}
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, r.live.View())
}

func (s *Server) handleRegistry(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, registry.Catalog())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.metrics.start).Seconds(),
		"in_flight":      s.metrics.runsInFlight.Load(),
	})
}

// handleReadyz is readiness, distinct from /healthz liveness: a live
// daemon that is draining, closed, or has a saturated submit queue
// answers 503 with a retryable body here, telling a coordinator to back
// off or route new shards elsewhere while the process itself stays up.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	closed, draining := s.closed, s.draining > 0
	s.mu.Unlock()
	switch {
	case closed:
		writeError(w, http.StatusServiceUnavailable, errors.New("not ready: service shutting down"))
	case draining:
		writeRetryable(w, http.StatusServiceUnavailable, retryAfterSeconds, errors.New("not ready: draining"))
	case len(s.queue) >= s.cfg.QueueDepth:
		writeRetryable(w, http.StatusServiceUnavailable, retryAfterSeconds, errors.New("not ready: submit queue full"))
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"status":         "ready",
			"queue_depth":    len(s.queue),
			"queue_capacity": s.cfg.QueueDepth,
		})
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	snap := snapshot{
		cacheEntries:  s.cache.len(),
		cacheCost:     s.cache.totalCost(),
		cacheCapacity: s.cfg.CacheCells,
		queueDepth:    len(s.queue),
		workers:       s.cfg.Workers,
	}
	s.mu.Unlock()
	// Per-run gauges cover in-flight runs only: finished runs linger in
	// the cache indefinitely, and unbounded label cardinality is how a
	// scrape endpoint dies.
	for _, v := range s.liveReg.Views() {
		if v.Status == StatusQueued || v.Status == StatusRunning {
			snap.live = append(snap.live, v)
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, snap)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the wire form of every error response. Retryable marks
// transient conditions — submit-queue saturation, drain — where the
// right client move is back-off-and-retry rather than fail-over; it is
// absent (not false) on permanent errors so their bytes are unchanged
// from the pre-fleet schema.
type apiError struct {
	Error     string `json:"error"`
	Retryable bool   `json:"retryable,omitempty"`
}

// retryAfterSeconds is the Retry-After hint on transient rejections:
// long enough for a queue slot or drain step to make progress, short
// enough that a backing-off coordinator stays responsive.
const retryAfterSeconds = 1

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// writeRetryable reports a transient rejection: structured JSON with
// retryable=true plus a Retry-After header hint in seconds.
func writeRetryable(w http.ResponseWriter, code, retryAfter int, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeJSON(w, code, apiError{Error: err.Error(), Retryable: true})
}

// rejectUnavailableLocked answers submissions the lifecycle can no
// longer accept: a hard close is permanent, a drain is retryable. Must
// be entered holding s.mu; returns true with s.mu released when the
// request was rejected, false with s.mu still held.
func (s *Server) rejectUnavailableLocked(w http.ResponseWriter) bool {
	switch {
	case s.closed:
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, errors.New("service shutting down"))
		return true
	case s.draining > 0:
		s.mu.Unlock()
		writeRetryable(w, http.StatusServiceUnavailable, retryAfterSeconds,
			errors.New("service draining: not accepting new runs"))
		return true
	}
	return false
}
