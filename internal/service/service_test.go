package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/baseline"
	"smallbuffers/internal/network"
	"smallbuffers/internal/registry"
	"smallbuffers/internal/scenario"
	"smallbuffers/internal/sim"
)

// A test-only registered protocol with a per-round delay, so tests can
// pin runs in flight deterministically (cancellation, pool contention).
// Registration is process-global but scoped to this test binary.
func init() {
	err := registry.RegisterProtocol(registry.Protocol{
		Name:   "test-slow-fifo",
		Doc:    "test-only: greedy FIFO with a per-round delay",
		Params: registry.Schema{{Name: "delay_us", Kind: registry.Int, Doc: "per-round delay in µs", Default: 0}},
		Build: func(p registry.Params) (sim.Protocol, error) {
			return &delayedProto{inner: baseline.NewGreedy(baseline.FIFO{}), delay: time.Duration(p.Int("delay_us")) * time.Microsecond}, nil
		},
	})
	if err != nil {
		panic(err)
	}
}

type delayedProto struct {
	inner sim.Protocol
	delay time.Duration
}

func (p *delayedProto) Name() string { return p.inner.Name() }

func (p *delayedProto) Attach(nw *network.Network, bound adversary.Bound, dests []network.NodeID) error {
	return p.inner.Attach(nw, bound, dests)
}

func (p *delayedProto) Decide(v sim.View) ([]sim.Forward, error) {
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	return p.inner.Decide(v)
}

// scenarioBody renders a small sweep scenario: `seeds` cells of `rounds`
// rounds each, with an optional per-round delay driving the test-slow
// protocol.
func scenarioBody(name string, seeds, rounds, delayUS int) string {
	seedList := make([]string, seeds)
	for i := range seedList {
		seedList[i] = strconv.Itoa(i + 1)
	}
	proto := `{"name": "ppts"}`
	if delayUS > 0 {
		proto = fmt.Sprintf(`{"name": "test-slow-fifo", "params": {"delay_us": %d}}`, delayUS)
	}
	return fmt.Sprintf(`{
		"name": %q,
		"topology": {"name": "path", "params": {"n": 16}},
		"protocol": %s,
		"adversary": {"name": "random", "params": {"d": 2}},
		"bound": {"rho": "1/2", "sigma": 2},
		"rounds": %d,
		"seeds": [%s]
	}`, name, proto, rounds, strings.Join(seedList, ", "))
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// post submits a scenario and decodes the report. Errors are reported
// with t.Error (not Fatal) so the helper is safe from spawned
// goroutines; callers see status 0 on transport failure.
func post(t *testing.T, url, body string) (int, Report) {
	t.Helper()
	resp, err := http.Post(url+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Errorf("POST /v1/runs: %v", err)
		return 0, Report{}
	}
	defer resp.Body.Close()
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Errorf("bad response body: %v", err)
		return resp.StatusCode, Report{}
	}
	return resp.StatusCode, rep
}

func metricValue(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
			if err != nil {
				t.Fatalf("bad metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// TestSubmitMatchesLocalRunAndCaches is the core acceptance property:
// the service's results digest equals a local scenario run's digest, and
// a repeated POST is served from the cache without re-simulating.
func TestSubmitMatchesLocalRunAndCaches(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	body := scenarioBody("match", 4, 300, 0)

	code, rep := post(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("POST = %d (%s)", code, rep.Error)
	}
	if rep.Cached {
		t.Error("first POST reported cached")
	}
	if rep.Status != StatusDone || rep.Summary == nil || rep.Summary.Failed > 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("report carries %d cells, want 4", len(rep.Cells))
	}

	sc, err := scenario.Parse([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if local := agg.Digest(); local != rep.ResultsDigest {
		t.Errorf("service digest %s ≠ local digest %s", rep.ResultsDigest, local)
	}
	wantDigest, err := sc.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Digest != wantDigest {
		t.Errorf("scenario digest %s ≠ %s", rep.Digest, wantDigest)
	}

	cellsBefore := metricValue(t, ts.URL, "aqtserve_cells_completed_total")
	code, rep2 := post(t, ts.URL, body)
	if code != http.StatusOK || !rep2.Cached {
		t.Fatalf("repeat POST = %d cached=%v, want 200 cached", code, rep2.Cached)
	}
	if rep2.ResultsDigest != rep.ResultsDigest {
		t.Errorf("cached digest diverges: %s vs %s", rep2.ResultsDigest, rep.ResultsDigest)
	}
	if cellsAfter := metricValue(t, ts.URL, "aqtserve_cells_completed_total"); cellsAfter != cellsBefore {
		t.Errorf("cache hit re-simulated: cells %v → %v", cellsBefore, cellsAfter)
	}
	if cached := metricValue(t, ts.URL, "aqtserve_runs_cached_total"); cached != 1 {
		t.Errorf("runs_cached_total = %v, want 1", cached)
	}

	// A semantically identical respelling (plural axes) hits the same
	// cache entry: digests are canonical, not byte-based.
	respelled := strings.Replace(body, `"topology":`, `"topologies":`, 1)
	if _, rep3 := post(t, ts.URL, respelled); !rep3.Cached {
		t.Error("respelled scenario missed the canonical digest cache")
	}
}

// TestMetricScenarioServedMatchesLocal is the metrics acceptance gate at
// the service tier: a scenario selecting load_series/load_hist/latency
// produces the same results digest served (at several sweep-worker
// counts) as locally, the cell records carry the selected summaries, and
// the run summary carries the merged grid-wide distributions.
func TestMetricScenarioServedMatchesLocal(t *testing.T) {
	body := `{
		"name": "metrics-acceptance",
		"topology": {"name": "path", "params": {"n": 24}},
		"protocol": {"name": "ppts"},
		"adversary": {"name": "random", "params": {"d": 4}},
		"bound": {"rho": "1", "sigma": 2},
		"rounds": 200,
		"seeds": [1, 2, 3],
		"metrics": [{"name": "load_series"}, {"name": "load_hist"}, {"name": "latency"}]
	}`
	sc, err := scenario.Parse([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	local := agg.Digest()

	for _, sweepWorkers := range []int{1, 3} {
		_, ts := newTestServer(t, Config{Workers: 2, SweepWorkers: sweepWorkers})
		code, rep := post(t, ts.URL, body)
		if code != http.StatusOK || rep.Summary == nil {
			t.Fatalf("POST (SweepWorkers=%d) = %d: %+v", sweepWorkers, code, rep)
		}
		if rep.ResultsDigest != local {
			t.Errorf("SweepWorkers=%d: served digest %s ≠ local %s", sweepWorkers, rep.ResultsDigest, local)
		}
		totalCount := 0
		for _, cell := range rep.Cells {
			if len(cell.Metrics) != 3 {
				t.Fatalf("cell %d carries %d metric summaries, want 3", cell.Index, len(cell.Metrics))
			}
			lat, ok := cell.MetricByName("latency")
			if !ok || lat.Scalar("count") != cell.Delivered {
				t.Errorf("cell %d latency summary %v disagrees with delivered %d", cell.Index, lat.Scalars, cell.Delivered)
			}
			totalCount += lat.Scalar("count")
		}
		merged := map[string]bool{}
		for _, m := range rep.Summary.Metrics {
			merged[m.Name] = true
			if m.Name == "latency" {
				if m.Scalar("count") != totalCount {
					t.Errorf("summary latency count %d, cells sum to %d", m.Scalar("count"), totalCount)
				}
				if m.Hist == nil || m.Hist.Count != totalCount {
					t.Errorf("summary latency histogram not merged: %+v", m.Hist)
				}
			}
		}
		for _, name := range []string{"latency", "load_hist", "load_series"} {
			if !merged[name] {
				t.Errorf("summary metrics missing %s: %+v", name, rep.Summary.Metrics)
			}
		}
	}
}

// TestAcceptanceConcurrency is the ISSUE's race gate: ≥50 concurrent
// in-flight requests against a 4-worker pool, mixing fresh digests,
// cache joins, streaming clients, and mid-stream disconnects.
func TestAcceptanceConcurrency(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 1024})

	const distinct = 10
	const postsPer = 5 // 50 waiting submissions
	digests := make([][]string, distinct)
	var wg sync.WaitGroup
	for i := 0; i < distinct; i++ {
		digests[i] = make([]string, postsPer)
		for j := 0; j < postsPer; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				body := scenarioBody(fmt.Sprintf("acc-%d", i), 3, 200+10*i, 0)
				code, rep := post(t, ts.URL, body)
				if code != http.StatusOK {
					t.Errorf("scenario %d post %d: status %d (%s)", i, j, code, rep.Error)
					return
				}
				digests[i][j] = rep.ResultsDigest
			}(i, j)
		}
	}

	// Streaming clients that disconnect mid-stream: their runs are
	// pinned (async submit), so walking away must not disturb them.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := scenarioBody(fmt.Sprintf("stream-%d", i), 6, 400, 200)
			resp, err := http.Post(ts.URL+"/v1/runs?wait=0", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			var rep Report
			if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("async submit: status %d", resp.StatusCode)
				return
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/runs/"+rep.ID+"/stream", nil)
			sresp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer sresp.Body.Close()
			// Read one event, then hang up mid-stream.
			br := bufio.NewReader(sresp.Body)
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				t.Errorf("stream read: %v", err)
			}
			cancel()
		}(i)
	}

	// Submitters that hang up before their run finishes (client-abort
	// path): distinct digests, so aborting cancels the whole run.
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := scenarioBody(fmt.Sprintf("abort-%d", i), 4, 2000, 500)
			ctx, cancel := context.WithCancel(context.Background())
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/runs", strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			go func() {
				time.Sleep(50 * time.Millisecond)
				cancel()
			}()
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				// The run may legitimately have finished before the abort.
				resp.Body.Close()
			}
		}(i)
	}

	wg.Wait()

	// Every post of the same scenario saw the same results digest.
	for i := range digests {
		for j := 1; j < postsPer; j++ {
			if digests[i][j] != digests[i][0] {
				t.Errorf("scenario %d: digest %d diverges: %s vs %s", i, j, digests[i][j], digests[i][0])
			}
		}
	}

	// The server is still healthy and consistent afterwards.
	if v := metricValue(t, ts.URL, "aqtserve_runs_in_flight"); v < 0 {
		t.Errorf("runs_in_flight went negative: %v", v)
	}
	code, rep := post(t, ts.URL, scenarioBody("post-storm", 2, 100, 0))
	if code != http.StatusOK || rep.Status != StatusDone {
		t.Errorf("post-storm submit failed: %d %+v", code, rep)
	}
}

// TestClientDisconnectCancelsRun pins the client-gone path: a synchronous
// submitter is the only watcher; hanging up cancels the run, frees the
// worker, and the digest is not poisoned — the next POST re-simulates.
func TestClientDisconnectCancelsRun(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	slow := scenarioBody("disconnect", 4, 5000, 1000) // ~20s if left alone

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/runs", strings.NewReader(slow))
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	time.Sleep(200 * time.Millisecond) // let the run start
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("aborted request returned a response")
	}

	// The worker must come free promptly: a fresh fast scenario runs to
	// completion on the 1-worker pool well before the slow run would
	// have finished.
	done := make(chan Report, 1)
	go func() {
		_, rep := post(t, ts.URL, scenarioBody("after-disconnect", 2, 100, 0))
		done <- rep
	}()
	select {
	case rep := <-done:
		if rep.Status != StatusDone {
			t.Fatalf("follow-up run: %+v", rep)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker slot not released after client disconnect")
	}

	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if v := metricValue(t, ts.URL, "aqtserve_runs_cancelled_total"); v < 1 {
		t.Errorf("runs_cancelled_total = %v, want ≥ 1", v)
	}

	// The cancelled digest is not served from cache: an async re-POST of
	// the same scenario gets a fresh 202 run, not a cached 200 partial.
	// (The cleanup's Close cancels it; we only care that it re-entered.)
	resp, err := http.Post(ts.URL+"/v1/runs?wait=0", "application/json", strings.NewReader(slow))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("re-POST after cancel: %d, want 202 (fresh run)", resp.StatusCode)
	}
}

// TestStreamFollowsRun drives the NDJSON stream end to end: replayed
// records, live records, and the closing summary event.
func TestStreamFollowsRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := scenarioBody("streamed", 5, 300, 100)

	resp, err := http.Post(ts.URL+"/v1/runs?wait=0", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit = %d", resp.StatusCode)
	}

	sresp, err := http.Get(ts.URL + "/v1/runs/" + rep.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	var cells int
	var summary *Report
	scn := bufio.NewScanner(sresp.Body)
	for scn.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(scn.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scn.Text(), err)
		}
		switch probe.Type {
		case "cell":
			cells++
		case "summary":
			var s struct {
				Report
			}
			if err := json.Unmarshal(scn.Bytes(), &s); err != nil {
				t.Fatal(err)
			}
			summary = &s.Report
		}
	}
	if err := scn.Err(); err != nil {
		t.Fatal(err)
	}
	if cells != 5 {
		t.Errorf("streamed %d cell events, want 5", cells)
	}
	if summary == nil || summary.Status != StatusDone || summary.ResultsDigest == "" {
		t.Errorf("summary event missing or wrong: %+v", summary)
	}

	// A second stream of the finished run replays everything instantly.
	sresp2, err := http.Get(ts.URL + "/v1/runs/" + rep.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	replay, err := io.ReadAll(sresp2.Body)
	sresp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(replay), `"type":"cell"`); got != 5 {
		t.Errorf("replayed stream carried %d cells, want 5", got)
	}
}

// TestStreamSSE asks for text/event-stream and gets SSE framing.
func TestStreamSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, rep := post(t, ts.URL, scenarioBody("sse", 2, 100, 0))

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/runs/"+rep.ID+"/stream", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "event: cell\ndata: ") || !strings.Contains(string(data), "event: summary\ndata: ") {
		t.Errorf("missing SSE framing:\n%s", data)
	}
}

func TestEndpointsAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Registry catalog.
	resp, err := http.Get(ts.URL + "/v1/registry")
	if err != nil {
		t.Fatal(err)
	}
	var cat registry.CatalogDesc
	if err := json.NewDecoder(resp.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(cat.Protocols) == 0 || len(cat.Topologies) == 0 || len(cat.Adversaries) == 0 {
		t.Errorf("catalog incomplete: %+v", cat)
	}

	// Healthz.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(health), `"ok"`) {
		t.Errorf("healthz: %d %s", resp.StatusCode, health)
	}

	// Invalid scenario → 400 with a useful error.
	code, rep := post(t, ts.URL, `{"protocol": {"name": "ptss"}}`)
	if code != http.StatusBadRequest || !strings.Contains(rep.Error, "") {
		t.Errorf("bad scenario: %d %+v", code, rep)
	}
	if code, _ := post(t, ts.URL, `not json`); code != http.StatusBadRequest {
		t.Errorf("non-JSON body: %d, want 400", code)
	}

	// Unknown run → 404.
	resp, err = http.Get(ts.URL + "/v1/runs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run: %d, want 404", resp.StatusCode)
	}

	// List runs.
	post(t, ts.URL, scenarioBody("listed", 2, 50, 0))
	resp, err = http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Runs []Report `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Runs) == 0 {
		t.Error("run list empty after a submission")
	}
}

// TestCacheEviction bounds the cache at a few cells and checks old
// digests re-simulate after eviction.
func TestCacheEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, CacheCells: 4})
	a := scenarioBody("evict-a", 3, 50, 0) // 3 cells
	b := scenarioBody("evict-b", 3, 60, 0) // 3 cells; displaces a

	_, repA := post(t, ts.URL, a)
	if repA.Status != StatusDone {
		t.Fatalf("a: %+v", repA)
	}
	post(t, ts.URL, b)
	_, repA2 := post(t, ts.URL, a)
	if repA2.Cached {
		t.Error("evicted digest still served from cache")
	}
	if repA2.ResultsDigest != repA.ResultsDigest {
		t.Errorf("re-simulated run digests differently: %s vs %s", repA2.ResultsDigest, repA.ResultsDigest)
	}
	// The evicted first run's id is gone from the index.
	resp, err := http.Get(ts.URL + "/v1/runs/" + repA.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted run id still resolves: %d", resp.StatusCode)
	}
}

// TestQueueFullRejects saturates a 1-worker, 1-deep queue: the third
// submission gets 503, the started counter stays monotonic (the
// rejected run is finished as cancelled, not un-counted), and the
// in-flight gauge returns to zero.
func TestQueueFullRejects(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	submitAsync := func(name string) (int, Report) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/runs?wait=0", "application/json",
			strings.NewReader(scenarioBody(name, 2, 2000, 500)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rep Report
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, rep
	}

	code, repA := submitAsync("qf-a")
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	// Wait until A occupies the worker, so B reliably sits in the queue.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/runs/" + repA.ID)
		if err != nil {
			t.Fatal(err)
		}
		var rep Report
		json.NewDecoder(resp.Body).Decode(&rep)
		resp.Body.Close()
		if rep.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run A never started: %+v", rep)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := submitAsync("qf-b"); code != http.StatusAccepted {
		t.Fatalf("second submit = %d, want 202 (queued)", code)
	}
	code, rep := submitAsync("qf-c")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("third submit = %d (%+v), want 503", code, rep)
	}

	if v := metricValue(t, ts.URL, "aqtserve_runs_started_total"); v != 3 {
		t.Errorf("runs_started_total = %v, want 3 (monotonic, rejection included)", v)
	}
	if v := metricValue(t, ts.URL, "aqtserve_runs_cancelled_total"); v < 1 {
		t.Errorf("runs_cancelled_total = %v, want ≥ 1 (the rejected run)", v)
	}

	svc.Close() // cancels A and B
	if v := metricValue(t, ts.URL, "aqtserve_runs_in_flight"); v != 0 {
		t.Errorf("runs_in_flight = %v after close, want 0", v)
	}
}

// TestDrainAndClose: drain waits for in-flight runs; close cancels
// everything and the server refuses new work.
func TestDrainAndClose(t *testing.T) {
	svc := New(Config{Workers: 2})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/runs?wait=0", "application/json",
		strings.NewReader(scenarioBody("drain", 3, 200, 100)))
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err = http.Get(ts.URL + "/v1/runs/" + rep.ID)
	if err != nil {
		t.Fatal(err)
	}
	var after Report
	json.NewDecoder(resp.Body).Decode(&after)
	resp.Body.Close()
	if after.Status != StatusDone {
		t.Errorf("drained run status %q, want done", after.Status)
	}

	svc.Close()
	code, _ := post(t, ts.URL, scenarioBody("late", 1, 10, 0))
	if code != http.StatusServiceUnavailable {
		t.Errorf("closed server accepted work: %d", code)
	}
}
