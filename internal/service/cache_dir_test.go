package service

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smallbuffers/internal/scenario"
	"smallbuffers/internal/store"
)

// restartableServer is newTestServer without the cleanup coupling, so a
// test can stop one daemon "process" and start another over the same
// cache directory.
func restartableServer(cfg Config) (*Server, *httptest.Server) {
	svc := New(cfg)
	return svc, httptest.NewServer(svc)
}

// TestCacheDirWarmRestart is the durable-cache acceptance: a daemon
// finishes a run, restarts (full process replacement — new Server, same
// CacheDir), and the second submission of the same scenario is a warm
// cache hit with a byte-identical digest, never re-simulated.
func TestCacheDirWarmRestart(t *testing.T) {
	dir := t.TempDir()
	body := scenarioBody("cache-dir-warm", 4, 100, 0)

	svc1, ts1 := restartableServer(Config{Workers: 2, CacheDir: dir})
	code, first := post(t, ts1.URL, body)
	if code != http.StatusOK || first.Status != StatusDone {
		t.Fatalf("first run: %d %+v", code, first)
	}
	if first.Cached {
		t.Fatal("first run reported cached")
	}
	ts1.Close()
	svc1.Close()

	svc2, ts2 := restartableServer(Config{Workers: 2, CacheDir: dir})
	defer func() { ts2.Close(); svc2.Close() }()
	code, second := post(t, ts2.URL, body)
	if code != http.StatusOK || second.Status != StatusDone {
		t.Fatalf("post-restart run: %d %+v", code, second)
	}
	if !second.Cached {
		t.Fatal("post-restart submission was not served from the durable cache")
	}
	if second.ResultsDigest != first.ResultsDigest {
		t.Fatalf("digest drifted across restart: %s vs %s", second.ResultsDigest, first.ResultsDigest)
	}
	if len(second.Cells) != len(first.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(second.Cells), len(first.Cells))
	}
	if second.Summary == nil || first.Summary == nil ||
		second.Summary.DeliveredMeanMillis != first.Summary.DeliveredMeanMillis {
		t.Fatalf("summaries differ across restart: %+v vs %+v", second.Summary, first.Summary)
	}
	if v := metricValue(t, ts2.URL, "aqtserve_runs_cached_total"); v != 1 {
		t.Errorf("aqtserve_runs_cached_total = %v after warm hit, want 1", v)
	}

	// Third POST on the same process hits the in-memory cache, not disk.
	code, third := post(t, ts2.URL, body)
	if code != http.StatusOK || !third.Cached {
		t.Fatalf("in-memory re-hit: %d %+v", code, third)
	}
}

// TestCacheDirCorruptEntryEvicted flips a byte in the persisted entry:
// the restarted daemon must refuse to serve it (digest verification),
// evict it, and re-simulate to the same digest.
func TestCacheDirCorruptEntryEvicted(t *testing.T) {
	dir := t.TempDir()
	body := scenarioBody("cache-dir-corrupt", 4, 100, 0)
	sc, err := scenario.Parse([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	dig, err := sc.Digest()
	if err != nil {
		t.Fatal(err)
	}

	svc1, ts1 := restartableServer(Config{Workers: 2, CacheDir: dir})
	_, first := post(t, ts1.URL, body)
	ts1.Close()
	svc1.Close()

	segs, err := filepath.Glob(filepath.Join(store.EntryDir(dir, dig), "seg-*.ndj"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no persisted segments: %v %v", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	at := strings.Index(string(data), `"delivered"`)
	if at < 0 {
		t.Fatal("no payload byte to flip")
	}
	data[at+3] ^= 0x01
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	svc2, ts2 := restartableServer(Config{Workers: 2, CacheDir: dir})
	defer func() { ts2.Close(); svc2.Close() }()
	code, second := post(t, ts2.URL, body)
	if code != http.StatusOK || second.Status != StatusDone {
		t.Fatalf("post-corruption run: %d %+v", code, second)
	}
	if second.Cached {
		t.Fatal("corrupt entry served as a cache hit")
	}
	if second.ResultsDigest != first.ResultsDigest {
		t.Fatalf("re-simulated digest %s, original %s", second.ResultsDigest, first.ResultsDigest)
	}
}

// TestCacheDirOffUnchanged: without CacheDir nothing is written to disk
// and nothing is probed — the zero-store path is byte-identical to the
// pre-persistence service.
func TestCacheDirOffUnchanged(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, rep := post(t, ts.URL, scenarioBody("cache-dir-off", 2, 50, 0))
	if code != http.StatusOK || rep.Cached {
		t.Fatalf("plain run: %d %+v", code, rep)
	}
}
