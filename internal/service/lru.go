package service

import "container/list"

// lru is a cost-bounded least-recently-used cache keyed by string. Each
// entry carries a cost (the service charges one unit per sweep cell, so a
// 500-cell sweep occupies 500× the budget of a single run) and the cache
// evicts from the cold end until the total cost fits the bound. Not
// goroutine-safe: the server serializes access under its own mutex.
type lru[V any] struct {
	maxCost int
	cost    int
	ll      *list.List               // front = most recently used
	idx     map[string]*list.Element // key → element
	// onEvict is called for every evicted or removed entry, while the
	// cache is mid-mutation: it must not call back into the cache.
	onEvict func(key string, val V)
}

type lruEntry[V any] struct {
	key  string
	val  V
	cost int
}

// newLRU returns a cache holding at most maxCost total cost; maxCost ≤ 0
// disables caching (every add is immediately evicted).
func newLRU[V any](maxCost int, onEvict func(key string, val V)) *lru[V] {
	return &lru[V]{maxCost: maxCost, ll: list.New(), idx: make(map[string]*list.Element), onEvict: onEvict}
}

// add inserts or replaces the entry under key and evicts cold entries
// until the budget fits. Entries whose own cost exceeds the budget are
// not retained (the eviction callback still fires for any displaced
// entry).
func (l *lru[V]) add(key string, val V, cost int) {
	if cost < 1 {
		cost = 1
	}
	if e, ok := l.idx[key]; ok {
		l.removeElement(e)
	}
	if cost > l.maxCost {
		if l.onEvict != nil {
			l.onEvict(key, val)
		}
		return
	}
	l.idx[key] = l.ll.PushFront(&lruEntry[V]{key: key, val: val, cost: cost})
	l.cost += cost
	for l.cost > l.maxCost {
		l.removeElement(l.ll.Back())
	}
}

// get returns the entry under key, marking it most recently used.
func (l *lru[V]) get(key string) (V, bool) {
	if e, ok := l.idx[key]; ok {
		l.ll.MoveToFront(e)
		return e.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// remove drops the entry under key, if present (onEvict fires).
func (l *lru[V]) remove(key string) {
	if e, ok := l.idx[key]; ok {
		l.removeElement(e)
	}
}

func (l *lru[V]) removeElement(e *list.Element) {
	ent := e.Value.(*lruEntry[V])
	l.ll.Remove(e)
	delete(l.idx, ent.key)
	l.cost -= ent.cost
	if l.onEvict != nil {
		l.onEvict(ent.key, ent.val)
	}
}

// len reports the number of cached entries; totalCost their combined
// cost.
func (l *lru[V]) len() int       { return l.ll.Len() }
func (l *lru[V]) totalCost() int { return l.cost }
