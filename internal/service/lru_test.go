package service

import "testing"

func TestLRUEvictsColdEntries(t *testing.T) {
	var evicted []string
	l := newLRU[int](3, func(k string, _ int) { evicted = append(evicted, k) })
	l.add("a", 1, 1)
	l.add("b", 2, 1)
	l.add("c", 3, 1)
	if _, ok := l.get("a"); !ok { // refresh a
		t.Fatal("a missing")
	}
	l.add("d", 4, 1) // evicts b (coldest)
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Errorf("evicted %v, want [b]", evicted)
	}
	if _, ok := l.get("b"); ok {
		t.Error("b still cached after eviction")
	}
	if _, ok := l.get("a"); !ok {
		t.Error("refreshed entry a evicted")
	}
}

func TestLRUCostAccounting(t *testing.T) {
	var evicted []string
	l := newLRU[int](10, func(k string, _ int) { evicted = append(evicted, k) })
	l.add("big", 1, 7)
	l.add("small", 2, 2)
	if l.totalCost() != 9 || l.len() != 2 {
		t.Fatalf("cost %d len %d, want 9/2", l.totalCost(), l.len())
	}
	l.add("medium", 3, 5) // must evict big (7) to fit 5 within 10
	if _, ok := l.get("big"); ok {
		t.Error("big survived a cost-bound eviction")
	}
	if l.totalCost() != 7 {
		t.Errorf("cost %d after eviction, want 7", l.totalCost())
	}
}

func TestLRUOversizedEntryNotRetained(t *testing.T) {
	calls := 0
	l := newLRU[int](4, func(string, int) { calls++ })
	l.add("huge", 1, 100)
	if l.len() != 0 || calls != 1 {
		t.Errorf("oversized entry retained (len %d, evict calls %d)", l.len(), calls)
	}
}

func TestLRUDisabled(t *testing.T) {
	l := newLRU[int](-1, nil)
	l.add("a", 1, 1)
	if _, ok := l.get("a"); ok {
		t.Error("disabled cache retained an entry")
	}
}

func TestLRUReplaceAndRemove(t *testing.T) {
	l := newLRU[int](5, nil)
	l.add("a", 1, 2)
	l.add("a", 2, 3) // replace: cost follows the new entry
	if v, ok := l.get("a"); !ok || v != 2 {
		t.Errorf("replace lost: %v %v", v, ok)
	}
	if l.totalCost() != 3 {
		t.Errorf("cost %d after replace, want 3", l.totalCost())
	}
	l.remove("a")
	if l.len() != 0 || l.totalCost() != 0 {
		t.Errorf("remove left len %d cost %d", l.len(), l.totalCost())
	}
	l.remove("a") // idempotent
}

func TestLRUMinimumCost(t *testing.T) {
	l := newLRU[int](2, nil)
	l.add("zero", 1, 0) // clamps to cost 1
	if l.totalCost() != 1 {
		t.Errorf("zero-cost entry accounted as %d, want 1", l.totalCost())
	}
}
