package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"smallbuffers/internal/harness"
	"smallbuffers/internal/scenario"
)

// TestReadyzDistinctFromHealthz drives the readiness states the fleet
// coordinator keys on: ready when idle, 503+retryable while a drain is
// in flight, and back to ready once the drain completes — with /healthz
// reporting live throughout.
func TestReadyzDistinctFromHealthz(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})

	get := func(path string) (int, apiError) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e apiError
		json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e
	}

	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("idle /readyz = %d, want 200", code)
	}

	// Pin a slow run, start a drain, and observe the not-ready window.
	resp, err := http.Post(ts.URL+"/v1/runs?wait=0", "application/json",
		strings.NewReader(scenarioBody("readyz-slow", 1, 2000, 500)))
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()

	drained := make(chan error, 1)
	go func() { drained <- svc.Drain(context.Background()) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := get("/readyz")
		if code == http.StatusServiceUnavailable {
			if !body.Retryable {
				t.Fatalf("draining /readyz body not retryable: %+v", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never went unready during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A submission during the drain is refused with the retryable shape
	// and a Retry-After hint.
	sresp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(scenarioBody("readyz-during-drain", 1, 10, 0)))
	if err != nil {
		t.Fatal(err)
	}
	var se apiError
	json.NewDecoder(sresp.Body).Decode(&se)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusServiceUnavailable || !se.Retryable {
		t.Errorf("submit during drain = %d %+v, want retryable 503", sresp.StatusCode, se)
	}
	if sresp.Header.Get("Retry-After") == "" {
		t.Error("submit during drain missing Retry-After")
	}
	// Liveness is unaffected.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz during drain != 200")
	}

	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("post-drain /readyz != 200")
	}
}

// TestCancelEndpoint exercises DELETE /v1/runs/{id}: a running run's
// stream drains its completed cells and ends with a cancelled summary,
// the cancel is idempotent, and unknown ids 404.
func TestCancelEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	del := func(id string) (int, Report) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rep Report
		json.NewDecoder(resp.Body).Decode(&rep)
		return resp.StatusCode, rep
	}

	if code, _ := del("nope"); code != http.StatusNotFound {
		t.Fatalf("DELETE unknown id = %d, want 404", code)
	}

	resp, err := http.Post(ts.URL+"/v1/runs?wait=0", "application/json",
		strings.NewReader(scenarioBody("cancel-me", 4, 3000, 300)))
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()

	// Attach a stream first, so we can watch the cancellation land.
	sresp, err := http.Get(ts.URL + "/v1/runs/" + rep.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()

	if code, _ := del(rep.ID); code != http.StatusAccepted {
		t.Fatalf("DELETE running = %d, want 202", code)
	}

	var summary struct {
		Type string `json:"type"`
		Report
	}
	sawSummary := false
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad stream line: %v: %s", err, sc.Text())
		}
		if probe.Type == "summary" {
			if err := json.Unmarshal(sc.Bytes(), &summary); err != nil {
				t.Fatal(err)
			}
			sawSummary = true
		}
	}
	if !sawSummary {
		t.Fatal("stream ended without a summary event")
	}
	if summary.Status != StatusCancelled {
		t.Errorf("cancelled run's summary status = %q, want %q", summary.Status, StatusCancelled)
	}

	// Idempotent: a second DELETE reports the sealed state with 200.
	code, rep2 := del(rep.ID)
	if code != http.StatusOK || rep2.Status != StatusCancelled {
		t.Errorf("second DELETE = %d %q, want 200 cancelled", code, rep2.Status)
	}
}

// TestShardedSubmissions splits one grid into shards, submits each as
// its own scenario, and requires the merged cell records to reproduce
// the unsharded run's results digest — the service-level form of the
// fleet merge invariant.
func TestShardedSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, SweepWorkers: 2})

	whole := scenarioBody("shard-whole", 6, 80, 0)
	_, wholeRep := post(t, ts.URL, whole)
	if wholeRep.Status != StatusDone || wholeRep.Summary == nil {
		t.Fatalf("whole run: %+v", wholeRep)
	}

	parent, err := scenario.Parse([]byte(whole))
	if err != nil {
		t.Fatal(err)
	}
	total, err := parent.GridSize()
	if err != nil {
		t.Fatal(err)
	}
	if total != 6 {
		t.Fatalf("grid = %d cells, want 6", total)
	}

	var recs []harness.CellRecord
	seen := map[string]bool{}
	for _, rng := range harness.PartitionCells(total, 3) {
		sub, err := parent.Slice(rng.Lo, rng.Count())
		if err != nil {
			t.Fatal(err)
		}
		body, err := sub.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		_, rep := post(t, ts.URL, string(body))
		if rep.Status != StatusDone || rep.Summary == nil {
			t.Fatalf("shard %v: %+v", rng, rep)
		}
		if rep.Summary.Requested != rng.Count() {
			t.Errorf("shard %v requested %d cells, want %d", rng, rep.Summary.Requested, rng.Count())
		}
		if seen[rep.Digest] {
			t.Errorf("shard %v digest %s collides", rng, rep.Digest)
		}
		seen[rep.Digest] = true
		for _, cr := range rep.Cells {
			if cr.Index < rng.Lo || cr.Index >= rng.Hi {
				t.Errorf("shard %v returned out-of-range cell %d", rng, cr.Index)
			}
		}
		recs = append(recs, rep.Cells...)
	}
	if got := harness.RecordsDigest(harness.RecordsSorted(recs)); got != wholeRep.ResultsDigest {
		t.Errorf("merged shard digest %s, want %s", got, wholeRep.ResultsDigest)
	}
}

// TestQueueFullIsRetryable pins the wire shape of the saturation error:
// retryable=true plus a Retry-After header.
func TestQueueFullIsRetryable(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	submit := func(name string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/runs?wait=0", "application/json",
			strings.NewReader(scenarioBody(name, 2, 2000, 500)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	first := submit("retryable-a")
	var repA Report
	json.NewDecoder(first.Body).Decode(&repA)
	first.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/runs/" + repA.ID)
		if err != nil {
			t.Fatal(err)
		}
		var rep Report
		json.NewDecoder(resp.Body).Decode(&rep)
		resp.Body.Close()
		if rep.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run A never started: %+v", rep)
		}
		time.Sleep(5 * time.Millisecond)
	}
	submit("retryable-b").Body.Close() // fills the queue

	var reject *http.Response
	for i := 0; ; i++ {
		reject = submit(fmt.Sprintf("retryable-c%d", i))
		if reject.StatusCode == http.StatusServiceUnavailable {
			break
		}
		reject.Body.Close()
		if i > 3 {
			t.Fatal("queue never saturated")
		}
	}
	defer reject.Body.Close()
	var e apiError
	json.NewDecoder(reject.Body).Decode(&e)
	if !e.Retryable {
		t.Errorf("queue-full body not retryable: %+v", e)
	}
	if !strings.Contains(e.Error, "queue full") {
		t.Errorf("queue-full error text: %q", e.Error)
	}
	if reject.Header.Get("Retry-After") == "" {
		t.Error("queue-full response missing Retry-After")
	}
}
