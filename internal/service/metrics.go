package service

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"smallbuffers/internal/live"
	"smallbuffers/internal/metrics"
)

// promMetrics is the service's instrumentation: lock-free counters for
// the run lifecycle and the cache, rendered in Prometheus text exposition
// format by write. Gauges that depend on mutex-guarded state (cache size,
// queue depth) are sampled by the server at scrape time and passed in.
// (Simulation measurement is a different thing entirely — see
// internal/metrics.)
type promMetrics struct {
	start time.Time

	runsStarted   atomic.Int64 // runs accepted and enqueued (cache misses)
	runsCompleted atomic.Int64 // runs that finished with every cell clean
	runsFailed    atomic.Int64 // runs that finished with failed cells or a run-level error
	runsCancelled atomic.Int64 // runs cancelled (client gone, shutdown)
	runsCached    atomic.Int64 // requests served entirely from the digest cache
	runsJoined    atomic.Int64 // requests coalesced onto an in-flight identical run
	runsInFlight  atomic.Int64 // queued or executing right now

	cellsCompleted atomic.Int64 // cells executed across all runs (cache hits excluded)

	cacheHits   atomic.Int64 // digest lookups that found a completed or in-flight run
	cacheMisses atomic.Int64 // digest lookups that found nothing
}

// snapshot carries the mutex-guarded gauges the server samples at scrape
// time, plus the live views of in-flight runs for the per-run gauges.
type snapshot struct {
	cacheEntries  int
	cacheCost     int
	cacheCapacity int
	queueDepth    int
	workers       int
	live          []live.View
}

// write renders the metrics in Prometheus text exposition format.
func (m *promMetrics) write(w io.Writer, s snapshot) {
	uptime := time.Since(m.start).Seconds()
	cells := m.cellsCompleted.Load()
	cellsPerSec := 0.0
	if uptime > 0 {
		cellsPerSec = float64(cells) / uptime
	}
	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	hitRatio := 0.0
	if hits+misses > 0 {
		hitRatio = float64(hits) / float64(hits+misses)
	}

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("aqtserve_runs_started_total", "Runs accepted and executed (cache misses).", m.runsStarted.Load())
	counter("aqtserve_runs_completed_total", "Runs that finished with every cell clean.", m.runsCompleted.Load())
	counter("aqtserve_runs_failed_total", "Runs that finished with failed cells or a run-level error.", m.runsFailed.Load())
	counter("aqtserve_runs_cancelled_total", "Runs cancelled before completion (client gone, shutdown).", m.runsCancelled.Load())
	counter("aqtserve_runs_cached_total", "Requests served entirely from the digest-keyed result cache.", m.runsCached.Load())
	counter("aqtserve_runs_joined_total", "Requests coalesced onto an identical in-flight run.", m.runsJoined.Load())
	gauge("aqtserve_runs_in_flight", "Runs queued or executing right now.", float64(m.runsInFlight.Load()))
	counter("aqtserve_cells_completed_total", "Sweep cells executed across all runs.", cells)
	gauge("aqtserve_cells_per_second", "Lifetime average cell execution rate.", cellsPerSec)
	counter("aqtserve_cache_hits_total", "Digest lookups that found a completed or in-flight run.", hits)
	counter("aqtserve_cache_misses_total", "Digest lookups that found nothing cached.", misses)
	gauge("aqtserve_cache_hit_ratio", "Fraction of digest lookups served from cache.", hitRatio)
	gauge("aqtserve_cache_entries", "Completed runs held in the result cache.", float64(s.cacheEntries))
	gauge("aqtserve_cache_cost_cells", "Total cost (in cells) of cached results.", float64(s.cacheCost))
	gauge("aqtserve_cache_capacity_cells", "Configured cache capacity (in cells).", float64(s.cacheCapacity))
	gauge("aqtserve_queue_depth", "Runs waiting for a worker.", float64(s.queueDepth))
	gauge("aqtserve_workers", "Configured worker pool size.", float64(s.workers))
	gauge("aqtserve_uptime_seconds", "Seconds since the service started.", uptime)
	writeRunGauges(w, s.live)
}

// writeRunGauges renders the per-run gauges for in-flight runs: sweep
// progress plus — when the run selected the windowed collectors — the
// recent occupancy p99 and drop rate from the merge-as-you-go view.
// Views arrive sorted by run id, so the exposition is stable scrape to
// scrape.
func writeRunGauges(w io.Writer, views []live.View) {
	if len(views) == 0 {
		return
	}
	header := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	perRun := func(name, help string, value func(live.View) (int, bool)) {
		wrote := false
		for _, v := range views {
			val, ok := value(v)
			if !ok {
				continue
			}
			if !wrote {
				header(name, help)
				wrote = true
			}
			fmt.Fprintf(w, "%s{run=%q} %d\n", name, v.ID, val)
		}
	}
	always := func(get func(live.View) int) func(live.View) (int, bool) {
		return func(v live.View) (int, bool) { return get(v), true }
	}
	scalar := func(metric, key string) func(live.View) (int, bool) {
		return func(v live.View) (int, bool) {
			s, ok := v.MetricByName(metric)
			if !ok {
				return 0, false
			}
			val, ok := s.Scalars[key]
			return val, ok
		}
	}
	perRun("aqtserve_run_cells_in_flight", "Cells executing right now for this run.",
		always(func(v live.View) int { return v.CellsInFlight }))
	perRun("aqtserve_run_cells_done", "Cells completed so far for this run.",
		always(func(v live.View) int { return v.CellsDone }))
	perRun("aqtserve_run_cells_total", "Cells requested by this run.",
		always(func(v live.View) int { return v.CellsTotal }))
	perRun("aqtserve_run_window_occupancy_p99", "Recent-window occupancy p99 (window_load collector).",
		scalar(metrics.NameWindowLoad, "window_p99"))
	perRun("aqtserve_run_drop_rate_permille", "Packets dropped per mille of forwards so far (drop_rate collector).",
		scalar(metrics.NameDropRate, "drop_permille"))
	perRun("aqtserve_run_drop_window_permille", "Recent-window drop rate in per mille (goodput_window collector).",
		scalar(metrics.NameGoodputWindow, "drop_window_permille"))
}
