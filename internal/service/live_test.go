package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"smallbuffers/internal/live"
	"smallbuffers/internal/scenario"
)

// windowScenarioBody is scenarioBody plus the windowed collectors, so
// live views carry merge-as-you-go window_load/goodput_window summaries.
func windowScenarioBody(name string, seeds, rounds, delayUS, window int) string {
	base := scenarioBody(name, seeds, rounds, delayUS)
	metrics := fmt.Sprintf(`"metrics": [
		{"name": "window_load", "params": {"window": %d}},
		{"name": "goodput_window", "params": {"window": %d}}
	],`, window, window)
	return strings.Replace(base, `"topology":`, metrics+` "topology":`, 1)
}

func getLive(t *testing.T, url, id string) (live.View, int) {
	t.Helper()
	resp, err := http.Get(url + "/v1/runs/" + id + "/live")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return live.View{}, resp.StatusCode
	}
	var v live.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v, resp.StatusCode
}

// TestLiveViewMidSweep is the tentpole acceptance at the service tier:
// mid-sweep, GET /v1/runs/{id}/live returns merged windowed summaries
// and progress; the per-run Prometheus gauges appear on /metrics while
// the run is in flight; and the attached poller leaves the results
// digest byte-identical to a local run.
func TestLiveViewMidSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SweepWorkers: 2})
	body := windowScenarioBody("live-mid", 6, 60, 2000, 16)

	resp, err := http.Post(ts.URL+"/v1/runs?wait=0", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit = %d", resp.StatusCode)
	}

	// Poll until the view shows a mid-sweep state: running, some cells
	// done, some still to go, and the windowed summaries merged so far.
	deadline := time.Now().Add(30 * time.Second)
	var mid live.View
	for {
		v, code := getLive(t, ts.URL, rep.ID)
		if code != http.StatusOK {
			t.Fatalf("/live = %d", code)
		}
		if v.Status == StatusRunning && v.CellsDone >= 1 && v.CellsDone < v.CellsTotal {
			if _, ok := v.MetricByName("window_load"); ok {
				mid = v
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no mid-sweep live view before deadline; last %+v", v)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if mid.CellsTotal != 6 {
		t.Errorf("cells_total = %d, want 6", mid.CellsTotal)
	}
	if mid.CellsInFlight < 1 || mid.CellsInFlight > 2 {
		t.Errorf("cells_in_flight = %d with 2 sweep workers", mid.CellsInFlight)
	}
	if p := mid.Progress(); p <= 0 || p >= 1000 {
		t.Errorf("mid-sweep progress = %d‰", p)
	}
	wl, _ := mid.MetricByName("window_load")
	if wl.Scalars["window"] != 16 || wl.Scalars["window_max"] <= 0 {
		t.Errorf("merged window_load scalars = %v", wl.Scalars)
	}
	gw, ok := mid.MetricByName("goodput_window")
	if !ok || gw.Scalars["window_delivered"] <= 0 {
		t.Errorf("merged goodput_window = %v %v", gw.Scalars, ok)
	}

	// The per-run gauges are exposed while the run is in flight.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, gauge := range []string{
		fmt.Sprintf("aqtserve_run_cells_total{run=%q} 6", rep.ID),
		fmt.Sprintf("aqtserve_run_cells_in_flight{run=%q}", rep.ID),
		fmt.Sprintf("aqtserve_run_window_occupancy_p99{run=%q}", rep.ID),
		fmt.Sprintf("aqtserve_run_drop_window_permille{run=%q}", rep.ID),
	} {
		if !strings.Contains(string(prom), gauge) {
			t.Errorf("/metrics missing %s while in flight", gauge)
		}
	}

	// Let the run finish; the final view freezes and the served digest
	// matches a local run — the attached poller observed, not perturbed.
	var final Report
	for {
		r, err := http.Get(ts.URL + "/v1/runs/" + rep.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(r.Body).Decode(&final)
		r.Body.Close()
		if final.Status == StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never finished: %+v", final)
		}
		time.Sleep(10 * time.Millisecond)
	}
	sc, err := scenario.Parse([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if local := agg.Digest(); final.ResultsDigest != local {
		t.Errorf("served digest %s ≠ local %s with live poller attached", final.ResultsDigest, local)
	}
	done, code := getLive(t, ts.URL, rep.ID)
	if code != http.StatusOK || done.Status != StatusDone || done.CellsDone != 6 || done.CellsInFlight != 0 {
		t.Errorf("final live view = %+v (%d)", done, code)
	}

	// Finished runs drop off the per-run gauges (cardinality stays
	// bounded by what's in flight).
	mresp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ = io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if strings.Contains(string(prom), fmt.Sprintf("run=%q", rep.ID)) {
		t.Error("finished run still exposed on the per-run gauges")
	}

	// Unknown run → 404.
	if _, code := getLive(t, ts.URL, "nope"); code != http.StatusNotFound {
		t.Errorf("/live for unknown run = %d", code)
	}
}

// TestSlowStreamConsumerDoesNotBlock pins the slow-watcher contract: a
// stream client that never reads must not stall sweep workers, the
// /live view, or other watchers; the digest stays byte-identical to a
// local run; and the stalled handler's goroutine unwinds once the
// client goes away.
func TestSlowStreamConsumerDoesNotBlock(t *testing.T) {
	before := runtime.NumGoroutine()
	_, ts := newTestServer(t, Config{Workers: 1, SweepWorkers: 2, SSEHeartbeat: -1})
	body := windowScenarioBody("live-stall", 6, 60, 2000, 16)

	resp, err := http.Post(ts.URL+"/v1/runs?wait=0", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// A raw TCP client that sends the stream request and then never
	// reads: the kernel buffers fill and the handler's writes block.
	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "GET /v1/runs/%s/stream HTTP/1.1\r\nHost: x\r\nAccept: text/event-stream\r\n\r\n", rep.ID)

	// The sweep still finishes promptly and /live stays responsive.
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, code := getLive(t, ts.URL, rep.ID)
		if code != http.StatusOK {
			t.Fatalf("/live = %d with stalled watcher", code)
		}
		if v.Status == StatusDone {
			if v.CellsDone != 6 {
				t.Errorf("final view cells_done = %d", v.CellsDone)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep stalled behind a slow stream consumer")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A fresh, well-behaved watcher replays the whole finished stream.
	sresp, err := http.Get(ts.URL + "/v1/runs/" + rep.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	replay, err := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(replay), `"type":"cell"`); got != 6 {
		t.Errorf("replay carried %d cells, want 6", got)
	}

	// Digest-neutrality: stalled watcher or not, the records digest is
	// the local one.
	var final Report
	r, err := http.Get(ts.URL + "/v1/runs/" + rep.ID)
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(r.Body).Decode(&final)
	r.Body.Close()
	sc, err := scenario.Parse([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if local := agg.Digest(); final.ResultsDigest != local {
		t.Errorf("digest with stalled watcher %s ≠ local %s", final.ResultsDigest, local)
	}

	// Hang up; the blocked handler goroutine must unwind.
	conn.Close()
	for {
		if runtime.NumGoroutine() <= before+8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSSEHeartbeat injects a short heartbeat interval and expects
// keepalive comments while the stream idles between cells.
func TestSSEHeartbeat(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SweepWorkers: 1, SSEHeartbeat: 10 * time.Millisecond})
	body := scenarioBody("sse-heartbeat", 2, 2000, 500) // ~1s per cell

	resp, err := http.Post(ts.URL+"/v1/runs?wait=0", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/runs/"+rep.ID+"/stream", nil)
	req.Header.Set("Accept", "text/event-stream")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()

	br := bufio.NewReader(sresp.Body)
	heartbeats := 0
	deadline := time.Now().Add(10 * time.Second)
	for heartbeats < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("saw only %d heartbeats before deadline", heartbeats)
		}
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended after %d heartbeats: %v", heartbeats, err)
		}
		if strings.HasPrefix(line, ": keepalive") {
			heartbeats++
		}
	}
	cancel() // abandon the stream; the pinned run keeps going (covered elsewhere)

	// NDJSON streams never carry SSE comments, whatever the interval.
	nresp, err := http.Get(ts.URL + "/v1/runs/" + rep.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	ndjson, err := io.ReadAll(nresp.Body)
	nresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(ndjson), ": keepalive") {
		t.Error("NDJSON stream carried SSE keepalive comments")
	}
}

// TestDeliveredMeanMillis pins the integer per-mille summary field and
// the absence of its retired float alias.
func TestDeliveredMeanMillis(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, rep := post(t, ts.URL, scenarioBody("delivered-millis", 3, 200, 0))
	if rep.Summary == nil {
		t.Fatalf("no summary: %+v", rep)
	}
	if rep.Summary.DeliveredMeanMillis <= 0 {
		t.Fatalf("delivered_mean_millis = %d", rep.Summary.DeliveredMeanMillis)
	}

	// Exactly one spelling on the wire: delivered_mean's one-release
	// deprecation window is over. The exact-key check matters —
	// "delivered_mean_millis" contains the old name as a substring.
	resp, err := http.Get(ts.URL + "/v1/runs/" + rep.ID)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), `"delivered_mean_millis"`) {
		t.Errorf("wire summary missing delivered_mean_millis:\n%s", raw)
	}
	if strings.Contains(string(raw), `"delivered_mean":`) {
		t.Errorf("retired delivered_mean still on the wire:\n%s", raw)
	}
}
