package adversary

import (
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/rat"
)

// Union merges adversaries into one pattern: each round injects the union
// of the parts' injections. The declared bound is the *sum* of the parts'
// bounds, which is always sound (each buffer sees at most the sum of the
// parts' demands) but pessimistic when the parts' routes are disjoint; use
// WithUnionBound to declare a tighter bound that a verifier has confirmed.
type Union struct {
	parts []Adversary
	bound Bound
	// explicit marks a caller-declared bound.
	explicit bool
}

var _ Adversary = (*Union)(nil)
var _ DestinationHinter = (*Union)(nil)

// NewUnion returns the union of the given adversaries with the summed
// bound.
func NewUnion(parts ...Adversary) *Union {
	u := &Union{parts: parts}
	rho := rat.Zero
	sigma := 0
	for _, p := range parts {
		b := p.Bound()
		rho = rho.Add(b.Rho)
		sigma += b.Sigma
	}
	// The sum is declared even past 1: on capacitated networks rates up to
	// the bottleneck bandwidth are admissible, and on unit links the
	// verifier's ValidateFor rejects the over-rate union with a clear error
	// instead of silently under-declaring it.
	u.bound = Bound{Rho: rho, Sigma: sigma}
	return u
}

// WithUnionBound overrides the derived bound (e.g. when the parts' routes
// are edge-disjoint, the max of the parts' bounds is valid). The caller is
// responsible for its soundness; VerifyPrefix can check it.
func (u *Union) WithUnionBound(b Bound) *Union {
	u.bound = b
	u.explicit = true
	return u
}

// Bound implements Adversary.
func (u *Union) Bound() Bound { return u.bound }

// Inject implements Adversary.
func (u *Union) Inject(round int) []packet.Injection {
	var out []packet.Injection
	for _, p := range u.parts {
		out = append(out, p.Inject(round)...)
	}
	return out
}

// Destinations implements DestinationHinter: the union of the parts'
// hints; nil if any part has no hint (unknown destinations).
func (u *Union) Destinations() []network.NodeID {
	seen := make(map[network.NodeID]bool)
	var out []network.NodeID
	for _, p := range u.parts {
		h, ok := p.(DestinationHinter)
		if !ok {
			return nil
		}
		for _, d := range h.Destinations() {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	return out
}

// Delayed shifts an adversary later in time: rounds [0, offset) are silent,
// and round t ≥ offset plays the inner round t − offset. Time-shifting
// preserves (ρ,σ)-boundedness.
type Delayed struct {
	inner  Adversary
	offset int
}

var _ Adversary = (*Delayed)(nil)

// NewDelayed wraps an adversary with a start offset ≥ 0.
func NewDelayed(inner Adversary, offset int) *Delayed {
	if offset < 0 {
		offset = 0
	}
	return &Delayed{inner: inner, offset: offset}
}

// Bound implements Adversary.
func (d *Delayed) Bound() Bound { return d.inner.Bound() }

// Inject implements Adversary.
func (d *Delayed) Inject(round int) []packet.Injection {
	if round < d.offset {
		return nil
	}
	return d.inner.Inject(round - d.offset)
}

// Destinations implements DestinationHinter when the inner adversary does.
func (d *Delayed) Destinations() []network.NodeID {
	if h, ok := d.inner.(DestinationHinter); ok {
		return h.Destinations()
	}
	return nil
}

// OnOff is a bursty source alternating active and silent periods: during
// an active period it emits at the peak link rate (one packet per round)
// along a single route; silence restores the budget. The duty cycle is
// chosen so the pattern is (ρ,σ)-bounded by construction: an active period
// lasts at most σ + 1 rounds (the burst budget plus the per-round
// allowance), and each silent period is long enough for the excess to
// decay to zero before the next burst. This is the classic on-off traffic
// model expressed inside the (ρ,σ) discipline.
type OnOff struct {
	bound    Bound
	src, dst network.NodeID
	onLen    int
	period   int
}

var _ Adversary = (*OnOff)(nil)
var _ DestinationHinter = (*OnOff)(nil)

// NewOnOff returns an on-off source src → dst under the given bound. The
// rate must be positive.
func NewOnOff(bound Bound, src, dst network.NodeID) (*OnOff, error) {
	if err := bound.Validate(); err != nil {
		return nil, err
	}
	if bound.Rho.Sign() <= 0 {
		return nil, errZeroRate
	}
	if bound.Sigma == 0 && !bound.Rho.Equal(rat.One) {
		// Any single injection creates excess 1−ρ > 0 = σ: only the empty
		// pattern is (ρ,0)-bounded at fractional rates.
		return nil, errNoBudget
	}
	// Active for a = σ+1 rounds; excess after the burst is a·(1−ρ) ≤ σ by
	// construction when a ≤ σ/(1−ρ) … choose a = max(1, ⌊σ/(1−ρ)⌋) capped
	// at σ+1, then silence until the excess a(1−ρ) decays at rate ρ.
	a := bound.Sigma + 1
	if !bound.Rho.Equal(rat.One) {
		// Largest a with a·(1−ρ) ≤ σ.
		maxA := rat.FromInt(int64(bound.Sigma)).Div(rat.One.Sub(bound.Rho)).Floor()
		if int(maxA) < a {
			a = int(maxA)
		}
		if a < 1 {
			a = 1
		}
	}
	// Silent rounds s so that a ≤ ρ·(a+s): s ≥ a(1−ρ)/ρ.
	s := rat.FromInt(int64(a)).Mul(rat.One.Sub(bound.Rho)).Div(bound.Rho).Ceil()
	return &OnOff{bound: bound, src: src, dst: dst, onLen: a, period: a + int(s)}, nil
}

var (
	errZeroRate = &onOffError{"adversary: on-off source needs ρ > 0"}
	errNoBudget = &onOffError{"adversary: (ρ<1, σ=0) admits no injections at all"}
)

type onOffError struct{ msg string }

func (e *onOffError) Error() string { return e.msg }

// Bound implements Adversary.
func (o *OnOff) Bound() Bound { return o.bound }

// Destinations implements DestinationHinter.
func (o *OnOff) Destinations() []network.NodeID { return []network.NodeID{o.dst} }

// OnLen returns the active-period length (rounds per burst).
func (o *OnOff) OnLen() int { return o.onLen }

// Period returns the full on+off cycle length.
func (o *OnOff) Period() int { return o.period }

// Inject implements Adversary.
func (o *OnOff) Inject(round int) []packet.Injection {
	if round%o.period < o.onLen {
		return []packet.Injection{{Src: o.src, Dst: o.dst}}
	}
	return nil
}
