package adversary

import (
	"fmt"
	"sort"

	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
)

// Replay is an adversary that plays back an explicit injection schedule.
// It is the vehicle for crafted worst-case patterns (this package) and the
// Section 5 lower-bound construction (package lowerbound).
type Replay struct {
	bound   Bound
	byRound map[int][]packet.Injection
	dests   []network.NodeID
}

var _ Adversary = (*Replay)(nil)
var _ DestinationHinter = (*Replay)(nil)

// NewReplay builds a replay adversary from a schedule. The declared bound
// is trusted here; use VerifyPrefix or Schedule.Verify to check it.
func NewReplay(bound Bound, byRound map[int][]packet.Injection) *Replay {
	destSet := make(map[network.NodeID]bool)
	copied := make(map[int][]packet.Injection, len(byRound))
	for r, injs := range byRound {
		copied[r] = append([]packet.Injection(nil), injs...)
		for _, in := range injs {
			destSet[in.Dst] = true
		}
	}
	dests := make([]network.NodeID, 0, len(destSet))
	for d := range destSet {
		dests = append(dests, d)
	}
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	return &Replay{bound: bound, byRound: copied, dests: dests}
}

// Bound implements Adversary.
func (r *Replay) Bound() Bound { return r.bound }

// Inject implements Adversary.
func (r *Replay) Inject(round int) []packet.Injection {
	injs := r.byRound[round]
	if len(injs) == 0 {
		return nil
	}
	return append([]packet.Injection(nil), injs...)
}

// Destinations implements DestinationHinter.
func (r *Replay) Destinations() []network.NodeID {
	return append([]network.NodeID(nil), r.dests...)
}

// LastRound returns the largest round with a scheduled injection, or -1.
func (r *Replay) LastRound() int {
	last := -1
	for t := range r.byRound {
		if t > last {
			last = t
		}
	}
	return last
}

// TotalInjections returns the number of scheduled packets.
func (r *Replay) TotalInjections() int {
	total := 0
	for _, injs := range r.byRound {
		total += len(injs)
	}
	return total
}

// Schedule is a fluent builder for replay adversaries.
type Schedule struct {
	byRound map[int][]packet.Injection
}

// NewSchedule returns an empty schedule.
func NewSchedule() *Schedule {
	return &Schedule{byRound: make(map[int][]packet.Injection)}
}

// At schedules an injection src→dst at the given round and returns the
// schedule for chaining.
func (s *Schedule) At(round int, src, dst network.NodeID) *Schedule {
	s.byRound[round] = append(s.byRound[round], packet.Injection{Src: src, Dst: dst})
	return s
}

// AtN schedules n identical injections src→dst at the given round.
func (s *Schedule) AtN(round, n int, src, dst network.NodeID) *Schedule {
	for i := 0; i < n; i++ {
		s.At(round, src, dst)
	}
	return s
}

// Build returns the replay adversary with the declared bound.
func (s *Schedule) Build(bound Bound) *Replay { return NewReplay(bound, s.byRound) }

// BuildVerified returns the replay adversary after checking the schedule
// against the declared bound for `rounds` rounds.
func (s *Schedule) BuildVerified(nw *network.Network, bound Bound, rounds int) (*Replay, error) {
	r := s.Build(bound)
	probe := NewReplay(bound, s.byRound) // fresh copy for consumption
	if err := VerifyPrefix(nw, probe, rounds); err != nil {
		return nil, fmt.Errorf("adversary: schedule fails declared bound: %w", err)
	}
	return r, nil
}

// Merge overlays another adversary's first `rounds` rounds onto a schedule.
// The combined schedule's bound must be re-declared (and ideally
// re-verified) by the caller: bounds do not compose additively unless the
// merged routes are disjoint.
func (s *Schedule) Merge(adv Adversary, rounds int) *Schedule {
	for t := 0; t < rounds; t++ {
		s.byRound[t] = append(s.byRound[t], adv.Inject(t)...)
	}
	return s
}

// Empty is an adversary that injects nothing; useful for draining phases
// and as a base case in tests.
type Empty struct{}

var _ Adversary = Empty{}

// Bound implements Adversary: the empty pattern is (0,0)-bounded.
func (Empty) Bound() Bound { return Bound{} }

// Inject implements Adversary.
func (Empty) Inject(int) []packet.Injection { return nil }
