package adversary

import (
	"fmt"
	"testing"
	"testing/quick"

	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
)

func TestUnionSumsBounds(t *testing.T) {
	a := NewStream(Bound{Rho: rat.New(1, 4), Sigma: 1}, 0, 3)
	b := NewStream(Bound{Rho: rat.New(1, 2), Sigma: 2}, 4, 7)
	u := NewUnion(a, b)
	got := u.Bound()
	if !got.Rho.Equal(rat.New(3, 4)) || got.Sigma != 3 {
		t.Errorf("Bound = %v, want (3/4, 3)", got)
	}
}

func TestUnionSumsRatePastOne(t *testing.T) {
	// Rates past 1 stay declared honestly: capacitated networks admit them
	// (ρ up to the bottleneck bandwidth), and on unit links the verifier
	// rejects the bound loudly rather than the union under-declaring it.
	a := NewStream(Bound{Rho: rat.New(3, 4), Sigma: 0}, 0, 3)
	b := NewStream(Bound{Rho: rat.New(3, 4), Sigma: 0}, 4, 7)
	if got := NewUnion(a, b).Bound(); !got.Rho.Equal(rat.New(3, 2)) {
		t.Errorf("ρ = %v, want the honest sum 3/2", got.Rho)
	}
	if _, err := NewVerifier(network.MustPath(4), Bound{Rho: rat.New(3, 2)}); err == nil {
		t.Error("verifier accepted ρ=3/2 on a unit-capacity path")
	}
}

func TestUnionInjectsBothParts(t *testing.T) {
	nw := network.MustPath(8)
	a := NewStream(Bound{Rho: rat.One, Sigma: 0}, 0, 3)
	b := NewStream(Bound{Rho: rat.One, Sigma: 0}, 4, 7)
	// Edge-disjoint routes: the tight per-buffer bound is (1, 0), declared
	// explicitly and verified.
	u := NewUnion(a, b).WithUnionBound(Bound{Rho: rat.One, Sigma: 0})
	if err := VerifyPrefix(nw, u, 100); err != nil {
		t.Errorf("disjoint union violated declared bound: %v", err)
	}
	u2 := NewUnion(
		NewStream(Bound{Rho: rat.One, Sigma: 0}, 0, 3),
		NewStream(Bound{Rho: rat.One, Sigma: 0}, 4, 7),
	)
	got := u2.Inject(0)
	if len(got) != 2 {
		t.Errorf("round 0 injections = %d, want 2", len(got))
	}
}

func TestUnionDestinations(t *testing.T) {
	u := NewUnion(
		NewStream(Bound{Rho: rat.New(1, 2), Sigma: 1}, 0, 3),
		NewStream(Bound{Rho: rat.New(1, 2), Sigma: 1}, 0, 5),
		NewStream(Bound{Rho: rat.New(1, 2), Sigma: 1}, 0, 3), // duplicate dest
	)
	dests := u.Destinations()
	if len(dests) != 2 {
		t.Errorf("Destinations = %v, want 2 distinct", dests)
	}
	// A part without a hint makes the union hint unknown.
	u2 := NewUnion(NewStream(Bound{Rho: rat.New(1, 2), Sigma: 1}, 0, 3), Empty{})
	if got := u2.Destinations(); got != nil {
		t.Errorf("Destinations = %v, want nil", got)
	}
}

func TestDelayed(t *testing.T) {
	inner := NewStream(Bound{Rho: rat.One, Sigma: 0}, 0, 5)
	d := NewDelayed(inner, 10)
	for r := 0; r < 10; r++ {
		if got := d.Inject(r); got != nil {
			t.Fatalf("round %d: injections before offset: %v", r, got)
		}
	}
	if got := d.Inject(10); len(got) != 1 {
		t.Errorf("round 10 injections = %v, want 1", got)
	}
	if got := d.Bound(); !got.Rho.Equal(rat.One) {
		t.Errorf("Bound = %v", got)
	}
	if got := d.Destinations(); len(got) != 1 || got[0] != 5 {
		t.Errorf("Destinations = %v", got)
	}
	if got := NewDelayed(Empty{}, -3); got.offset != 0 {
		t.Errorf("negative offset not clamped: %d", got.offset)
	}
	if got := NewDelayed(Empty{}, 1).Destinations(); got != nil {
		t.Errorf("Destinations = %v, want nil", got)
	}
}

func TestDelayedPreservesBound(t *testing.T) {
	nw := network.MustPath(8)
	inner := NewStream(Bound{Rho: rat.New(1, 2), Sigma: 1}, 0, 7)
	if err := VerifyPrefix(nw, NewDelayed(inner, 7), 120); err != nil {
		t.Errorf("delayed stream violated bound: %v", err)
	}
}

func TestOnOffValidation(t *testing.T) {
	if _, err := NewOnOff(Bound{Rho: rat.Zero, Sigma: 2}, 0, 5); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewOnOff(Bound{Rho: rat.New(1, 2), Sigma: 0}, 0, 5); err == nil {
		t.Error("(ρ<1, σ=0) accepted")
	}
	if _, err := NewOnOff(Bound{Rho: rat.New(3, 2), Sigma: 1}, 0, 5); err == nil {
		t.Error("ρ>1 accepted")
	}
	o, err := NewOnOff(Bound{Rho: rat.One, Sigma: 0}, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if o.Period() != o.OnLen() {
		t.Errorf("ρ=1 on-off should be always-on: on=%d period=%d", o.OnLen(), o.Period())
	}
}

func TestOnOffBurstShape(t *testing.T) {
	o, err := NewOnOff(Bound{Rho: rat.New(1, 2), Sigma: 3}, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	// a = min(σ+1, ⌊σ/(1−ρ)⌋) = min(4, 6) = 4; s = ⌈4·(1/2)/(1/2)⌉ = 4.
	if o.OnLen() != 4 || o.Period() != 8 {
		t.Errorf("on=%d period=%d, want 4, 8", o.OnLen(), o.Period())
	}
	// First period: 4 injections then 4 silent rounds.
	count := 0
	for r := 0; r < 8; r++ {
		count += len(o.Inject(r))
	}
	if count != 4 {
		t.Errorf("injections per period = %d, want 4", count)
	}
}

// Property: on-off sources are (ρ,σ)-bounded for every admissible (ρ,σ).
func TestQuickOnOffBounded(t *testing.T) {
	nw := network.MustPath(10)
	f := func(pRaw, qRaw, sRaw uint8) bool {
		q := int64(qRaw%6) + 1
		p := int64(pRaw%uint8(q)) + 1
		if p > q {
			p = q
		}
		rho := rat.New(p, q)
		sigma := int(sRaw%4) + 1
		o, err := NewOnOff(Bound{Rho: rho, Sigma: sigma}, 0, 9)
		if err != nil {
			return false
		}
		return VerifyPrefix(nw, o, 6*o.Period()+20) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// The union of edge-disjoint on-off sources tiles a line and stays within
// the max of the parts' bounds.
func TestUnionOfOnOffSources(t *testing.T) {
	nw := network.MustPath(12)
	mk := func(src, dst network.NodeID) Adversary {
		o, err := NewOnOff(Bound{Rho: rat.New(1, 2), Sigma: 2}, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	u := NewUnion(mk(0, 4), mk(4, 8), mk(8, 11)).
		WithUnionBound(Bound{Rho: rat.New(1, 2), Sigma: 2})
	if err := VerifyPrefix(nw, u, 300); err != nil {
		t.Errorf("disjoint on-off union violated tight bound: %v", err)
	}
}

func TestOnOffErrorStrings(t *testing.T) {
	for _, err := range []error{errZeroRate, errNoBudget} {
		if err.Error() == "" {
			t.Error("empty error string")
		}
	}
	if fmt.Sprint(errNoBudget) == "" {
		t.Error("unprintable")
	}
}
