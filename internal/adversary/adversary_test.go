package adversary

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/rat"
)

func TestBoundValidate(t *testing.T) {
	tests := []struct {
		name string
		b    Bound
		ok   bool
	}{
		{"full rate", Bound{Rho: rat.One, Sigma: 0}, true},
		{"half rate with burst", Bound{Rho: rat.New(1, 2), Sigma: 3}, true},
		{"zero", Bound{}, true},
		{"rate above one", Bound{Rho: rat.New(3, 2)}, false},
		{"negative rate", Bound{Rho: rat.New(-1, 2)}, false},
		{"negative burst", Bound{Rho: rat.One, Sigma: -1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.b.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate(%v) err=%v, want ok=%v", tt.b, err, tt.ok)
			}
		})
	}
}

func TestCrosses(t *testing.T) {
	nw := network.MustPath(6)
	in := packet.Injection{Src: 1, Dst: 4}
	wantCross := map[network.NodeID]bool{1: true, 2: true, 3: true}
	for v := network.NodeID(0); v < 6; v++ {
		if got := Crosses(nw, in, v); got != wantCross[v] {
			t.Errorf("Crosses(1→4, %d) = %v, want %v", v, got, wantCross[v])
		}
	}
	buffers := CrossedBuffers(nw, in)
	if len(buffers) != 3 || buffers[0] != 1 || buffers[2] != 3 {
		t.Errorf("CrossedBuffers = %v, want [1 2 3]", buffers)
	}
	if got := CrossedBuffers(nw, packet.Injection{Src: 4, Dst: 1}); got != nil {
		t.Errorf("CrossedBuffers(backward) = %v, want nil", got)
	}
}

func TestExcessRecursionBasics(t *testing.T) {
	nw := network.MustPath(4)
	e := NewExcess(nw, rat.New(1, 2))
	// Round 0: one packet 0→3 crosses buffers 0,1,2.
	e.Absorb([]packet.Injection{{Src: 0, Dst: 3}})
	if got := e.At(0); !got.Equal(rat.New(1, 2)) {
		t.Errorf("ξ(0) = %v, want 1/2", got)
	}
	if got := e.At(3); !got.IsZero() {
		t.Errorf("ξ(3) = %v, want 0 (destination buffer not crossed)", got)
	}
	// Round 1: nothing — excess decays by ρ, floored at 0.
	e.Absorb(nil)
	if got := e.At(0); !got.IsZero() {
		t.Errorf("ξ(0) after idle = %v, want 0", got)
	}
	// Two injections in one round: ξ = 2 − 1/2 = 3/2.
	e.Absorb([]packet.Injection{{Src: 0, Dst: 3}, {Src: 0, Dst: 2}})
	if got := e.At(0); !got.Equal(rat.New(3, 2)) {
		t.Errorf("ξ(0) after double = %v, want 3/2", got)
	}
	max, arg := e.Max()
	if !max.Equal(rat.New(3, 2)) || arg != 0 {
		t.Errorf("Max = %v@%d, want 3/2@0", max, arg)
	}
}

// Property: the excess recursion equals Definition 2.2 computed naïvely.
func TestQuickExcessMatchesDefinition(t *testing.T) {
	nw := network.MustPath(5)
	f := func(seed int64, rounds uint8, pNum, pDen uint8) bool {
		rho := rat.New(int64(pNum%4), int64(pDen%4)+1)
		if rat.One.Less(rho) {
			rho = rat.One
		}
		rng := rand.New(rand.NewSource(seed))
		T := int(rounds)%12 + 1
		history := make([][]packet.Injection, T)
		e := NewExcess(nw, rho)
		for t := 0; t < T; t++ {
			k := rng.Intn(3)
			for i := 0; i < k; i++ {
				src := network.NodeID(rng.Intn(4))
				dst := src + 1 + network.NodeID(rng.Intn(int(4-src)))
				history[t] = append(history[t], packet.Injection{Src: src, Dst: dst})
			}
			e.Absorb(history[t])
			for v := network.NodeID(0); v < 5; v++ {
				want := NaiveExcess(nw, rho, history, t, v)
				if !e.At(v).Equal(want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the verifier (excess ≤ σ) agrees with the naïve Definition 2.1
// check on random histories.
func TestQuickVerifierMatchesNaive(t *testing.T) {
	nw := network.MustPath(5)
	f := func(seed int64, sig uint8) bool {
		bound := Bound{Rho: rat.New(1, 2), Sigma: int(sig % 3)}
		rng := rand.New(rand.NewSource(seed))
		const T = 10
		history := make([][]packet.Injection, T)
		for t := 0; t < T; t++ {
			k := rng.Intn(3)
			for i := 0; i < k; i++ {
				src := network.NodeID(rng.Intn(4))
				dst := src + 1 + network.NodeID(rng.Intn(int(4-src)))
				history[t] = append(history[t], packet.Injection{Src: src, Dst: dst})
			}
		}
		ver, err := NewVerifier(nw, bound)
		if err != nil {
			return false
		}
		verOK := true
		for t := 0; t < T; t++ {
			if err := ver.Check(t, history[t]); err != nil {
				verOK = false
				break
			}
		}
		return verOK == NaiveBoundHolds(nw, bound, history)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestVerifierRejectsBadRoutes(t *testing.T) {
	nw := network.MustPath(4)
	ver, err := NewVerifier(nw, Bound{Rho: rat.One, Sigma: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := ver.Check(0, []packet.Injection{{Src: 3, Dst: 1}}); err == nil {
		t.Error("backward route accepted")
	}
}

func TestVerifierRejectsOutOfOrderRounds(t *testing.T) {
	nw := network.MustPath(4)
	ver, err := NewVerifier(nw, Bound{Rho: rat.One, Sigma: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := ver.Check(3, nil); err == nil {
		t.Error("out-of-order round accepted")
	}
}

func TestVerifierViolation(t *testing.T) {
	nw := network.MustPath(4)
	bound := Bound{Rho: rat.New(1, 2), Sigma: 1}
	ver, err := NewVerifier(nw, bound)
	if err != nil {
		t.Fatal(err)
	}
	// 2 packets crossing buffer 0: ξ = 2 − 1/2 = 3/2 > 1.
	err = ver.Check(0, []packet.Injection{{Src: 0, Dst: 3}, {Src: 0, Dst: 3}})
	if err == nil {
		t.Fatal("violation not detected")
	}
	var v *ViolationError
	if !asViolation(err, &v) {
		t.Fatalf("error %T is not a ViolationError", err)
	}
	if v.Buffer != 0 || v.Round != 0 {
		t.Errorf("violation at buffer %d round %d, want 0,0", v.Buffer, v.Round)
	}
	if v.Error() == "" {
		t.Error("empty error message")
	}
}

func asViolation(err error, target **ViolationError) bool {
	v, ok := err.(*ViolationError)
	if ok {
		*target = v
	}
	return ok
}

func TestReplayAndSchedule(t *testing.T) {
	nw := network.MustPath(5)
	bound := Bound{Rho: rat.One, Sigma: 1}
	s := NewSchedule().
		At(0, 0, 4).
		At(0, 1, 3).
		AtN(2, 2, 2, 4)
	adv, err := s.BuildVerified(nw, bound, 5)
	if err != nil {
		t.Fatalf("BuildVerified: %v", err)
	}
	if got := adv.Bound(); !got.Rho.Equal(rat.One) || got.Sigma != 1 {
		t.Errorf("Bound = %v", got)
	}
	if got := adv.Inject(0); len(got) != 2 {
		t.Errorf("round 0 injections = %v, want 2", got)
	}
	if got := adv.Inject(1); got != nil {
		t.Errorf("round 1 injections = %v, want none", got)
	}
	if got := adv.Inject(2); len(got) != 2 {
		t.Errorf("round 2 injections = %v, want 2", got)
	}
	dests := adv.Destinations()
	if len(dests) != 2 || dests[0] != 3 || dests[1] != 4 {
		t.Errorf("Destinations = %v, want [3 4]", dests)
	}
	if got := adv.LastRound(); got != 2 {
		t.Errorf("LastRound = %d, want 2", got)
	}
	if got := adv.TotalInjections(); got != 4 {
		t.Errorf("TotalInjections = %d, want 4", got)
	}
}

func TestScheduleBuildVerifiedRejectsViolation(t *testing.T) {
	nw := network.MustPath(5)
	bound := Bound{Rho: rat.New(1, 2), Sigma: 0}
	_, err := NewSchedule().At(0, 0, 4).BuildVerified(nw, bound, 3)
	if err == nil {
		t.Error("schedule exceeding bound was accepted")
	}
}

func TestEmptyAdversary(t *testing.T) {
	var e Empty
	if got := e.Inject(0); got != nil {
		t.Errorf("Empty.Inject = %v", got)
	}
	if b := e.Bound(); !b.Rho.IsZero() || b.Sigma != 0 {
		t.Errorf("Empty.Bound = %v", b)
	}
}

func TestStreamRate(t *testing.T) {
	nw := network.MustPath(8)
	tests := []struct {
		name string
		rho  rat.Rat
		T    int
		want int // total packets over T rounds
	}{
		{"full rate", rat.One, 10, 10},
		{"half rate", rat.New(1, 2), 10, 5},
		{"third rate", rat.New(1, 3), 9, 3},
		{"zero rate", rat.Zero, 10, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			st := NewStream(Bound{Rho: tt.rho, Sigma: 1}, 0, 7)
			total := 0
			for r := 0; r < tt.T; r++ {
				total += len(st.Inject(r))
			}
			if total != tt.want {
				t.Errorf("stream emitted %d, want %d", total, tt.want)
			}
			if tt.rho.Sign() > 0 {
				if err := VerifyPrefix(nw, NewStream(Bound{Rho: tt.rho, Sigma: 1}, 0, 7), tt.T); err != nil {
					t.Errorf("stream violates own bound: %v", err)
				}
			}
		})
	}
}

func TestRoundRobinCyclesDestinations(t *testing.T) {
	nw := network.MustPath(8)
	dests := []network.NodeID{5, 6, 7}
	rr := NewRoundRobin(Bound{Rho: rat.One, Sigma: 1}, 0, dests)
	seen := make(map[network.NodeID]int)
	for t2 := 0; t2 < 9; t2++ {
		for _, in := range rr.Inject(t2) {
			seen[in.Dst]++
		}
	}
	for _, d := range dests {
		if seen[d] != 3 {
			t.Errorf("dest %d got %d packets, want 3", d, seen[d])
		}
	}
	if err := VerifyPrefix(nw, NewRoundRobin(Bound{Rho: rat.One, Sigma: 1}, 0, dests), 20); err != nil {
		t.Errorf("round robin violates bound: %v", err)
	}
}

func TestRandomIsBoundedByConstruction(t *testing.T) {
	nw := network.MustPath(10)
	for _, sigma := range []int{0, 1, 3} {
		bound := Bound{Rho: rat.New(1, 2), Sigma: sigma}
		adv, err := NewRandom(nw, bound, nil, 42, WithAttempts(16))
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyPrefix(nw, adv, 200); err != nil {
			t.Errorf("σ=%d: random adversary violated its bound: %v", sigma, err)
		}
	}
}

func TestRandomMultiDestBounded(t *testing.T) {
	nw := network.MustPath(12)
	dests := []network.NodeID{6, 8, 11}
	bound := Bound{Rho: rat.One, Sigma: 2}
	adv, err := NewRandom(nw, bound, dests, 7)
	if err != nil {
		t.Fatal(err)
	}
	got := adv.Destinations()
	if len(got) != 3 || got[0] != 6 {
		t.Errorf("Destinations = %v", got)
	}
	if err := VerifyPrefix(nw, adv, 300); err != nil {
		t.Errorf("multi-dest random adversary violated bound: %v", err)
	}
}

func TestRandomOnTree(t *testing.T) {
	tree, err := network.CaterpillarTree(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	bound := Bound{Rho: rat.New(2, 3), Sigma: 2}
	adv, err := NewRandom(tree, bound, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPrefix(tree, adv, 200); err != nil {
		t.Errorf("tree random adversary violated bound: %v", err)
	}
}

func TestRandomActuallyInjects(t *testing.T) {
	nw := network.MustPath(10)
	adv, err := NewRandom(nw, Bound{Rho: rat.One, Sigma: 2}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for r := 0; r < 100; r++ {
		total += len(adv.Inject(r))
	}
	if total < 50 {
		t.Errorf("random adversary injected only %d packets in 100 rounds at rate 1", total)
	}
}

func TestRandomRejectsBadBound(t *testing.T) {
	nw := network.MustPath(4)
	if _, err := NewRandom(nw, Bound{Rho: rat.New(2, 1)}, nil, 1); err == nil {
		t.Error("rate 2 accepted")
	}
}

func TestReducedMapping(t *testing.T) {
	// Inner injects exactly one packet per round (rate 1).
	nw := network.MustPath(4)
	inner := NewStream(Bound{Rho: rat.One, Sigma: 0}, 0, 3)
	red := NewReduced(inner, 3)
	if got := red.Ell(); got != 3 {
		t.Errorf("Ell = %d", got)
	}
	b := red.Bound()
	if !b.Rho.Equal(rat.FromInt(3)) {
		t.Errorf("reduced ρ = %v, want 3", b.Rho)
	}
	// Reduced round 0 drains original round 0 only: 1 packet.
	if got := len(red.Inject(0)); got != 1 {
		t.Errorf("reduced round 0: %d packets, want 1", got)
	}
	// Reduced round 1 drains original rounds 1..3: 3 packets.
	if got := len(red.Inject(1)); got != 3 {
		t.Errorf("reduced round 1: %d packets, want 3", got)
	}
	if got := len(red.Inject(2)); got != 3 {
		t.Errorf("reduced round 2: %d packets, want 3", got)
	}
	_ = nw
}

func TestReducedPanicsOnBadEll(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewReduced(_,0) did not panic")
		}
	}()
	NewReduced(Empty{}, 0)
}

// Lemma 2.5: if A is (ρ,σ)-bounded then A_ℓ is (ℓρ,σ)-bounded. We verify on
// random shaped adversaries. The reduced pattern plays on a "reduced clock";
// boundedness is checked with the naive checker over the reduced history
// with rate ℓρ (capped at 1 for Bound.Validate, so we use NaiveBoundHolds
// directly with the derived bound).
func TestQuickLemma25ReductionBound(t *testing.T) {
	nw := network.MustPath(6)
	f := func(seed int64, ellRaw, sig uint8) bool {
		ell := int(ellRaw)%3 + 1
		sigma := int(sig) % 3
		rho := rat.New(1, int64(ell)) // ρ·ℓ = 1 as HPTS requires
		inner, err := NewRandom(nw, Bound{Rho: rho, Sigma: sigma}, nil, seed)
		if err != nil {
			return false
		}
		red := NewReduced(inner, ell)
		const T = 30
		history := make([][]packet.Injection, T)
		for t := 0; t < T; t++ {
			history[t] = red.Inject(t)
		}
		return NaiveBoundHolds(nw, red.Bound(), history)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReducedDestinationsDelegates(t *testing.T) {
	inner := NewStream(Bound{Rho: rat.One, Sigma: 0}, 0, 3)
	red := NewReduced(inner, 2)
	if got := red.Destinations(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Destinations = %v, want [3]", got)
	}
	red2 := NewReduced(Empty{}, 2)
	if got := red2.Destinations(); got != nil {
		t.Errorf("Destinations = %v, want nil", got)
	}
}

func TestCraftedPatternsVerify(t *testing.T) {
	nw := network.MustPath(16)
	t.Run("PTSBurst", func(t *testing.T) {
		for _, sigma := range []int{0, 2, 4} {
			adv, err := PTSBurst(nw, Bound{Rho: rat.One, Sigma: sigma}, 100)
			if err != nil {
				t.Fatalf("σ=%d: %v", sigma, err)
			}
			if adv.TotalInjections() == 0 {
				t.Error("pattern injects nothing")
			}
		}
	})
	t.Run("PTSBurst half rate", func(t *testing.T) {
		if _, err := PTSBurst(nw, Bound{Rho: rat.New(1, 2), Sigma: 3}, 100); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("PTSBurst rejects tree", func(t *testing.T) {
		tree, _ := network.CaterpillarTree(3, 1)
		if _, err := PTSBurst(tree, Bound{Rho: rat.One, Sigma: 1}, 10); err == nil {
			t.Error("tree accepted")
		}
	})
	t.Run("PPTSBurst", func(t *testing.T) {
		for _, d := range []int{1, 3, 8} {
			adv, err := PPTSBurst(nw, Bound{Rho: rat.One, Sigma: 2}, d, 120)
			if err != nil {
				t.Fatalf("d=%d: %v", d, err)
			}
			if got := len(adv.Destinations()); got != d {
				t.Errorf("d=%d: destinations = %d", d, got)
			}
		}
		if _, err := PPTSBurst(nw, Bound{Rho: rat.One, Sigma: 2}, 16, 50); err == nil {
			t.Error("d = n accepted")
		}
	})
	t.Run("TreeBurst", func(t *testing.T) {
		tree, err := network.SpiderTree(3, 4)
		if err != nil {
			t.Fatal(err)
		}
		root := tree.Sinks()[0]
		// Chain of destinations along one arm plus the root.
		dests := []network.NodeID{1, 2, 3, root}
		adv, err := TreeBurst(tree, Bound{Rho: rat.One, Sigma: 2}, dests, 80)
		if err != nil {
			t.Fatal(err)
		}
		if adv.TotalInjections() == 0 {
			t.Error("pattern injects nothing")
		}
	})
	t.Run("GreedyKiller", func(t *testing.T) {
		adv, err := GreedyKiller(nw, Bound{Rho: rat.One, Sigma: 1}, 4, 200)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(adv.Destinations()); got != 4 {
			t.Errorf("destinations = %d, want 4", got)
		}
		if _, err := GreedyKiller(nw, Bound{Rho: rat.One, Sigma: 1}, 8, 50); err == nil {
			t.Error("2d ≥ n accepted")
		}
	})
}
