// Package adversary implements the demand side of the AQT model: injection
// patterns, the (ρ,σ)-boundedness discipline of Definition 2.1, the excess
// measure of Definition 2.2, the ℓ-reduction of Definition 2.4, and
// verifiers that check any pattern against its declared bound.
//
// Conventions. Rounds are 0-based. A packet's trajectory is said to contain
// buffer v when v lies on the packet's route and v is not the destination:
// buffer v models the queue for the link out of v, so a packet terminating
// at v never crosses that link. This reading makes the paper's edge-disjoint
// injection sets (e.g. the Section 5 construction, whose consecutive routes
// share an endpoint node) exactly rate-ρ, as intended.
package adversary

import (
	"errors"
	"fmt"

	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/rat"
)

// Bound is a (ρ, σ) demand bound: over every interval I and buffer v, the
// adversary injects at most ρ·|I| + σ packets whose trajectories contain v.
type Bound struct {
	Rho   rat.Rat
	Sigma int
}

// String renders "(ρ,σ)=(1/2,3)".
func (b Bound) String() string { return fmt.Sprintf("(ρ,σ)=(%v,%d)", b.Rho, b.Sigma) }

// Validate rejects bounds outside 0 ≤ ρ ≤ 1, σ ≥ 0: the admissible demand
// of the paper's unit-capacity model. On capacitated networks use
// ValidateFor, which lets ρ range up to the bottleneck bandwidth.
func (b Bound) Validate() error {
	return b.validateAgainst(1)
}

// ValidateFor rejects bounds that no protocol could serve on nw: ρ must
// satisfy 0 ≤ ρ ≤ B_min where B_min is the bottleneck link bandwidth (a
// sustained per-buffer rate above the slowest link is undeliverable), and
// σ must be non-negative. On unit-capacity networks this is Validate.
func (b Bound) ValidateFor(nw *network.Network) error {
	return b.validateAgainst(nw.BottleneckBandwidth())
}

// ErrRateInadmissible marks bounds whose rate exceeds what the network's
// links can carry; callers distinguish "this demand needs faster links"
// from other construction errors with errors.Is.
var ErrRateInadmissible = errors.New("rate above the bottleneck bandwidth")

func (b Bound) validateAgainst(bmin int) error {
	if b.Rho.Sign() < 0 {
		return fmt.Errorf("adversary: rate ρ=%v negative", b.Rho)
	}
	if rat.FromInt(int64(bmin)).Less(b.Rho) {
		return fmt.Errorf("adversary: %w: ρ=%v outside [0,%d]", ErrRateInadmissible, b.Rho, bmin)
	}
	if b.Sigma < 0 {
		return fmt.Errorf("adversary: burst σ=%d negative", b.Sigma)
	}
	return nil
}

// Adversary produces the injections of each round. Implementations may be
// stateful; the engine calls Inject exactly once per round, in increasing
// round order, starting at round 0. The returned slice is owned by the
// caller.
type Adversary interface {
	// Bound returns the declared (ρ, σ) bound of the pattern.
	Bound() Bound
	// Inject returns the packets injected at the given round.
	Inject(round int) []packet.Injection
}

// DestinationHinter is an optional interface: adversaries that know their
// destination set up front expose it so protocols like PPTS can size their
// pseudo-buffer tables without discovery.
type DestinationHinter interface {
	Destinations() []network.NodeID
}

// Crosses reports whether the trajectory of an injection contains buffer v
// under the package convention (v on route, v ≠ destination).
func Crosses(nw *network.Network, in packet.Injection, v network.NodeID) bool {
	return v != in.Dst && nw.Reaches(in.Src, v) && nw.Reaches(v, in.Dst)
}

// CrossedBuffers returns all buffers contained in the injection's
// trajectory, in route order (src … dst-1 for a path).
func CrossedBuffers(nw *network.Network, in packet.Injection) []network.NodeID {
	route, err := nw.Route(in.Src, in.Dst)
	if err != nil {
		return nil
	}
	return route[:len(route)-1] // drop destination
}

// Excess tracks ξ_t(v) for every buffer of a network, exactly, using the
// token-bucket recursion
//
//	ξ_t(v) = max(0, ξ_{t−1}(v) + N_{t}(v) − ρ)
//
// which is equivalent to Definition 2.2 (proved by the accompanying property
// test against the naïve max-over-intervals form). By Lemma 2.3, a pattern
// is (ρ,σ)-bounded iff ξ_t(v) ≤ σ for all t, v.
type Excess struct {
	nw  *network.Network
	rho rat.Rat
	xi  []rat.Rat
	// counts is scratch space: N_{t}(v) of the round being absorbed.
	counts []int
}

// NewExcess returns a tracker with ξ ≡ 0 for the given network and rate.
func NewExcess(nw *network.Network, rho rat.Rat) *Excess {
	return &Excess{
		nw:     nw,
		rho:    rho,
		xi:     make([]rat.Rat, nw.Len()),
		counts: make([]int, nw.Len()),
	}
}

// Absorb advances the tracker by one round with the given injections,
// updating ξ for every buffer. It must be called once per round in order.
func (e *Excess) Absorb(injections []packet.Injection) {
	for i := range e.counts {
		e.counts[i] = 0
	}
	for _, in := range injections {
		for _, v := range CrossedBuffers(e.nw, in) {
			e.counts[v]++
		}
	}
	for v := range e.xi {
		next := e.xi[v].Add(rat.FromInt(int64(e.counts[v]))).Sub(e.rho)
		e.xi[v] = next.Max(rat.Zero)
	}
}

// At returns the current ξ(v).
func (e *Excess) At(v network.NodeID) rat.Rat { return e.xi[v] }

// Max returns the largest current excess over all buffers and its location.
func (e *Excess) Max() (rat.Rat, network.NodeID) {
	best, arg := rat.Zero, network.NodeID(0)
	for v, x := range e.xi {
		if best.Less(x) {
			best, arg = x, network.NodeID(v)
		}
	}
	return best, arg
}

// WouldExceed reports whether absorbing one additional packet crossing
// buffer v this round (on top of `already` packets absorbed for v this
// round) would push ξ(v) above sigma. It is the primitive used by traffic
// shapers to stay bounded by construction.
//
// After absorbing k packets this round, ξ' = max(0, ξ_prev + k − ρ); one
// more gives max(0, ξ_prev + k + 1 − ρ).
func (e *Excess) WouldExceed(v network.NodeID, already int, sigma int) bool {
	next := e.xi[v].Add(rat.FromInt(int64(already + 1))).Sub(e.rho)
	return rat.FromInt(int64(sigma)).Less(next)
}
