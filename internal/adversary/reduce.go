package adversary

import (
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
)

// Reduced is the ℓ-reduction A_ℓ of an adversary A (Definition 2.4): the
// injections of ℓ consecutive source rounds are presented together, so one
// reduced round stands for ℓ original rounds. By Lemma 2.5, if A is
// (ρ,σ)-bounded then A_ℓ is (ℓ·ρ, σ)-bounded; Bound() reports that derived
// bound.
//
// With this package's 0-based rounds, original round u maps to reduced
// round ⌈u/ℓ⌉: a packet injected exactly on a multiple of ℓ is available at
// that reduced step, and everything injected strictly inside a phase becomes
// available at the phase's end. Reduced round k therefore collects original
// rounds {(k−1)ℓ+1, …, kℓ}, and reduced round 0 collects exactly original
// round 0 — the 0-based image of the paper's 1-based convention.
type Reduced struct {
	inner Adversary
	ell   int
	// nextSrc is the next unconsumed original round.
	nextSrc int
}

var _ Adversary = (*Reduced)(nil)

// NewReduced wraps an adversary in its ℓ-reduction. ℓ must be ≥ 1.
func NewReduced(inner Adversary, ell int) *Reduced {
	if ell < 1 {
		panic("adversary: ℓ-reduction needs ℓ ≥ 1")
	}
	return &Reduced{inner: inner, ell: ell}
}

// Bound implements Adversary, deriving (ℓ·ρ, σ) per Lemma 2.5.
func (r *Reduced) Bound() Bound {
	b := r.inner.Bound()
	return Bound{Rho: b.Rho.MulInt(int64(r.ell)), Sigma: b.Sigma}
}

// Ell returns the reduction factor ℓ.
func (r *Reduced) Ell() int { return r.ell }

// Inject implements Adversary. Reduced round k drains original rounds up to
// and including kℓ.
func (r *Reduced) Inject(round int) []packet.Injection {
	lastSrc := round * r.ell
	var out []packet.Injection
	for ; r.nextSrc <= lastSrc; r.nextSrc++ {
		out = append(out, r.inner.Inject(r.nextSrc)...)
	}
	return out
}

// Destinations implements DestinationHinter by delegating to the inner
// adversary when it exposes a hint, and returning nil otherwise.
func (r *Reduced) Destinations() []network.NodeID {
	if h, ok := r.inner.(DestinationHinter); ok {
		return h.Destinations()
	}
	return nil
}
