package adversary

import (
	"math/rand"
	"sort"

	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
)

// Loads exposes the current buffer occupancies to adaptive adversaries
// without coupling this package to the engine.
type Loads func(v network.NodeID) int

// Adaptive is an optional Adversary extension: implementations may observe
// the post-forwarding configuration of the previous round when choosing
// injections. The AQT model quantifies over *all* (ρ,σ)-bounded patterns,
// so adaptivity does not change the theorems — but an adaptive adversary
// explores the pattern space far more aggressively than an oblivious one,
// which makes it a sharper stress test for the upper bounds.
type Adaptive interface {
	Adversary
	// InjectAdaptive returns the round's injections given read access to
	// the current occupancies. Engines call this instead of Inject when
	// available.
	InjectAdaptive(round int, loads Loads) []packet.Injection
}

// HotSpot is an adaptive adversary that aims all admissible traffic at the
// currently fullest buffer: every round it finds the argmax-load buffer and
// proposes injections whose routes cross it, shaped through the exact
// excess tracker so the pattern remains (ρ,σ)-bounded by construction.
type HotSpot struct {
	nw       *network.Network
	bound    Bound
	rng      *rand.Rand
	dests    []network.NodeID
	excess   *Excess
	attempts int
	perRound []int
}

var _ Adaptive = (*HotSpot)(nil)
var _ DestinationHinter = (*HotSpot)(nil)

// NewHotSpot returns a hot-spot adversary injecting toward the given
// destinations (the sinks if none). Deterministic given the seed.
func NewHotSpot(nw *network.Network, bound Bound, dests []network.NodeID, seed int64) (*HotSpot, error) {
	if err := bound.ValidateFor(nw); err != nil {
		return nil, err
	}
	if len(dests) == 0 {
		dests = nw.Sinks()
	}
	dests = append([]network.NodeID(nil), dests...)
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	return &HotSpot{
		nw:       nw,
		bound:    bound,
		rng:      rand.New(rand.NewSource(seed)),
		dests:    dests,
		excess:   NewExcess(nw, bound.Rho),
		attempts: defaultAttempts(bound),
		perRound: make([]int, nw.Len()),
	}, nil
}

// Bound implements Adversary.
func (h *HotSpot) Bound() Bound { return h.bound }

// Destinations implements DestinationHinter.
func (h *HotSpot) Destinations() []network.NodeID {
	return append([]network.NodeID(nil), h.dests...)
}

// Inject implements Adversary: without load feedback, behave like an
// unfocused shaped generator (uniform hotspot assumption at node 0).
func (h *HotSpot) Inject(round int) []packet.Injection {
	return h.InjectAdaptive(round, func(network.NodeID) int { return 0 })
}

// InjectAdaptive implements Adaptive.
func (h *HotSpot) InjectAdaptive(round int, loads Loads) []packet.Injection {
	_ = round
	// Find the hottest buffer.
	hot := network.NodeID(0)
	best := -1
	for v := 0; v < h.nw.Len(); v++ {
		if l := loads(network.NodeID(v)); l > best {
			best = l
			hot = network.NodeID(v)
		}
	}
	for i := range h.perRound {
		h.perRound[i] = 0
	}
	var out []packet.Injection
	for a := 0; a < h.attempts; a++ {
		in, ok := h.propose(hot)
		if !ok {
			continue
		}
		if h.admit(in) {
			out = append(out, in)
		}
	}
	h.excess.Absorb(out)
	return out
}

// propose picks a route crossing the hot buffer when possible: a
// destination strictly beyond it and a source at or before it.
func (h *HotSpot) propose(hot network.NodeID) (packet.Injection, bool) {
	// Candidate destinations beyond the hot spot.
	var beyond []network.NodeID
	for _, d := range h.dests {
		if d != hot && h.nw.Reaches(hot, d) {
			beyond = append(beyond, d)
		}
	}
	if len(beyond) == 0 {
		// Hot spot is past every destination; fall back to any route.
		d := h.dests[h.rng.Intn(len(h.dests))]
		var srcs []network.NodeID
		for v := 0; v < h.nw.Len(); v++ {
			id := network.NodeID(v)
			if id != d && h.nw.Reaches(id, d) {
				srcs = append(srcs, id)
			}
		}
		if len(srcs) == 0 {
			return packet.Injection{}, false
		}
		return packet.Injection{Src: srcs[h.rng.Intn(len(srcs))], Dst: d}, true
	}
	d := beyond[h.rng.Intn(len(beyond))]
	// Sources from which the route crosses the hot buffer: ancestors of hot
	// (inclusive). Prefer injecting directly at the hot spot half the time.
	if h.rng.Intn(2) == 0 {
		return packet.Injection{Src: hot, Dst: d}, true
	}
	var srcs []network.NodeID
	for v := 0; v < h.nw.Len(); v++ {
		id := network.NodeID(v)
		if id != d && h.nw.Reaches(id, hot) {
			srcs = append(srcs, id)
		}
	}
	if len(srcs) == 0 {
		return packet.Injection{Src: hot, Dst: d}, true
	}
	return packet.Injection{Src: srcs[h.rng.Intn(len(srcs))], Dst: d}, true
}

// admit charges the candidate against the shaper.
func (h *HotSpot) admit(in packet.Injection) bool {
	route := CrossedBuffers(h.nw, in)
	for _, v := range route {
		if h.excess.WouldExceed(v, h.perRound[v], h.bound.Sigma) {
			return false
		}
	}
	for _, v := range route {
		h.perRound[v]++
	}
	return true
}
