package adversary

import (
	"fmt"

	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/rat"
)

// ViolationError reports where a pattern exceeded its declared bound.
type ViolationError struct {
	Round  int
	Buffer network.NodeID
	Excess rat.Rat
	Bound  Bound
}

func (e *ViolationError) Error() string {
	return fmt.Sprintf("adversary: bound %v violated at round %d, buffer %d: excess %v > σ",
		e.Bound, e.Round, e.Buffer, e.Excess)
}

// Verifier checks a stream of injections online against a declared bound:
// route validity for every injection and ξ_t(v) ≤ σ for every buffer after
// every round (equivalent to Definition 2.1 by Lemma 2.3).
type Verifier struct {
	nw     *network.Network
	bound  Bound
	excess *Excess
	round  int
}

// NewVerifier returns a verifier with zeroed history. The bound is
// admitted against nw's bottleneck bandwidth: ρ may range up to B_min.
func NewVerifier(nw *network.Network, bound Bound) (*Verifier, error) {
	if err := bound.ValidateFor(nw); err != nil {
		return nil, err
	}
	return &Verifier{nw: nw, bound: bound, excess: NewExcess(nw, bound.Rho)}, nil
}

// Check absorbs one round of injections, returning an error if any
// injection has an invalid route or the (ρ,σ) bound is violated. Rounds
// must be checked in order starting at 0.
func (v *Verifier) Check(round int, injections []packet.Injection) error {
	if round != v.round {
		return fmt.Errorf("adversary: verifier expected round %d, got %d", v.round, round)
	}
	v.round++
	for _, in := range injections {
		if err := in.Validate(v.nw); err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
	}
	v.excess.Absorb(injections)
	if x, node := v.excess.Max(); rat.FromInt(int64(v.bound.Sigma)).Less(x) {
		return &ViolationError{Round: round, Buffer: node, Excess: x, Bound: v.bound}
	}
	return nil
}

// Excess exposes the underlying tracker (read-only use).
func (v *Verifier) Excess() *Excess { return v.excess }

// VerifyPrefix runs an adversary for the given number of rounds through a
// fresh verifier and returns the first violation, if any. The adversary is
// consumed (stateful adversaries cannot be reused afterwards).
func VerifyPrefix(nw *network.Network, adv Adversary, rounds int) error {
	ver, err := NewVerifier(nw, adv.Bound())
	if err != nil {
		return err
	}
	for t := 0; t < rounds; t++ {
		if err := ver.Check(t, adv.Inject(t)); err != nil {
			return err
		}
	}
	return nil
}

// NaiveBoundHolds checks Definition 2.1 directly: for every buffer v and
// every interval [s,t] of the recorded history, N_{[s,t]}(v) ≤ ρ(t−s+1)+σ.
// It is O(rounds² · buffers) and exists to cross-validate the excess
// recursion in tests.
func NaiveBoundHolds(nw *network.Network, bound Bound, history [][]packet.Injection) bool {
	n := nw.Len()
	counts := make([][]int, len(history))
	for t, injs := range history {
		counts[t] = make([]int, n)
		for _, in := range injs {
			for _, v := range CrossedBuffers(nw, in) {
				counts[t][v]++
			}
		}
	}
	sigma := rat.FromInt(int64(bound.Sigma))
	for v := 0; v < n; v++ {
		for s := 0; s < len(history); s++ {
			sum := 0
			for t := s; t < len(history); t++ {
				sum += counts[t][v]
				budget := bound.Rho.MulInt(int64(t - s + 1)).Add(sigma)
				if budget.Less(rat.FromInt(int64(sum))) {
					return false
				}
			}
		}
	}
	return true
}

// NaiveExcess computes ξ_t(v) by Definition 2.2 directly (max over all
// interval suffixes), for cross-validation of the recursion.
func NaiveExcess(nw *network.Network, rho rat.Rat, history [][]packet.Injection, t int, v network.NodeID) rat.Rat {
	best := rat.Zero
	sum := 0
	for s := t; s >= 0; s-- {
		for _, in := range history[s] {
			if Crosses(nw, in, v) {
				sum++
			}
		}
		val := rat.FromInt(int64(sum)).Sub(rho.MulInt(int64(t - s + 1)))
		best = best.Max(val)
	}
	return best
}
