package adversary

import (
	"math/rand"
	"sort"

	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
)

// Random is a randomized adversary that is (ρ,σ)-bounded *by construction*:
// every round it draws candidate injections (random source, random
// destination from a configured set) and passes them through a shaper that
// admits a candidate only if the excess of every buffer on its route stays
// at most σ. With enough candidates per round the pattern tracks the bound
// closely, which is what makes it a useful stress test for the upper-bound
// theorems.
type Random struct {
	nw    *network.Network
	bound Bound
	rng   *rand.Rand
	dests []network.NodeID
	// sources[i] lists the valid injection sites for dests[i].
	sources   [][]network.NodeID
	excess    *Excess
	attempts  int
	roundSeen int
	// perRound counts packets admitted this round per buffer (shaper input).
	perRound []int
}

var _ Adversary = (*Random)(nil)
var _ DestinationHinter = (*Random)(nil)

// defaultAttempts sizes the per-round candidate pool. At ρ ≤ 1 it is the
// historical 4σ+4 (kept bit-for-bit so fixed seeds replay identically);
// super-unit rates draw proportionally more candidates, since a round must
// be able to admit ~ρ packets just to track the rate term.
func defaultAttempts(b Bound) int {
	n := 4*b.Sigma + 4
	if extra := int(b.Rho.Ceil()) - 1; extra > 0 {
		n += 4 * extra
	}
	return n
}

// RandomOption configures a Random adversary.
type RandomOption func(*Random)

// WithAttempts sets how many candidate injections are drawn per round
// (default: 4·σ + 4, plus 4·(⌈ρ⌉−1) at super-unit rates so the generator
// can keep pace with capacitated links). More attempts saturate the bound
// more tightly at the cost of simulation time.
func WithAttempts(n int) RandomOption {
	return func(r *Random) {
		if n > 0 {
			r.attempts = n
		}
	}
}

// NewRandom returns a shaped random adversary injecting toward the given
// destinations (all sinks if none are provided). The generator is
// deterministic given the seed.
func NewRandom(nw *network.Network, bound Bound, dests []network.NodeID, seed int64, opts ...RandomOption) (*Random, error) {
	if err := bound.ValidateFor(nw); err != nil {
		return nil, err
	}
	if len(dests) == 0 {
		dests = nw.Sinks()
	}
	dests = append([]network.NodeID(nil), dests...)
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	sources := make([][]network.NodeID, len(dests))
	for i, d := range dests {
		for v := 0; v < nw.Len(); v++ {
			id := network.NodeID(v)
			if id != d && nw.Reaches(id, d) {
				sources[i] = append(sources[i], id)
			}
		}
	}
	r := &Random{
		nw:       nw,
		bound:    bound,
		rng:      rand.New(rand.NewSource(seed)),
		dests:    dests,
		sources:  sources,
		excess:   NewExcess(nw, bound.Rho),
		attempts: defaultAttempts(bound),
		perRound: make([]int, nw.Len()),
	}
	for _, o := range opts {
		o(r)
	}
	return r, nil
}

// Bound implements Adversary.
func (r *Random) Bound() Bound { return r.bound }

// Destinations implements DestinationHinter.
func (r *Random) Destinations() []network.NodeID {
	return append([]network.NodeID(nil), r.dests...)
}

// Inject implements Adversary.
func (r *Random) Inject(round int) []packet.Injection {
	_ = round // stateful: rounds are consumed in order by contract
	for i := range r.perRound {
		r.perRound[i] = 0
	}
	var out []packet.Injection
	for a := 0; a < r.attempts; a++ {
		di := r.rng.Intn(len(r.dests))
		if len(r.sources[di]) == 0 {
			continue
		}
		src := r.sources[di][r.rng.Intn(len(r.sources[di]))]
		in := packet.Injection{Src: src, Dst: r.dests[di]}
		if r.admit(in) {
			out = append(out, in)
		}
	}
	r.excess.Absorb(out)
	return out
}

// admit checks the candidate against the shaper and, if admitted, charges
// its route in the per-round counters.
func (r *Random) admit(in packet.Injection) bool {
	route := CrossedBuffers(r.nw, in)
	for _, v := range route {
		if r.excess.WouldExceed(v, r.perRound[v], r.bound.Sigma) {
			return false
		}
	}
	for _, v := range route {
		r.perRound[v]++
	}
	return true
}

// Stream is a deterministic constant-rate adversary: it injects one packet
// src→dst whenever the accumulated rate budget ⌊ρ·(t+1)⌋ increases, i.e. a
// perfectly smooth rate-ρ flow along a single route. It is (ρ,1)-bounded
// (the +1 absorbs the rounding) and (ρ,0)-bounded when ρ = 1.
type Stream struct {
	bound    Bound
	src, dst network.NodeID
	// emitted counts packets so far; the next is due when budget ≥ emitted+1.
	emitted int64
}

var _ Adversary = (*Stream)(nil)
var _ DestinationHinter = (*Stream)(nil)

// NewStream returns a smooth rate-ρ stream src→dst.
func NewStream(bound Bound, src, dst network.NodeID) *Stream {
	return &Stream{bound: bound, src: src, dst: dst}
}

// Bound implements Adversary.
func (s *Stream) Bound() Bound { return s.bound }

// Destinations implements DestinationHinter.
func (s *Stream) Destinations() []network.NodeID { return []network.NodeID{s.dst} }

// Inject implements Adversary.
func (s *Stream) Inject(round int) []packet.Injection {
	budget := s.bound.Rho.MulInt(int64(round + 1)).Floor()
	if budget >= s.emitted+1 {
		s.emitted++
		return []packet.Injection{{Src: s.src, Dst: s.dst}}
	}
	return nil
}

// RoundRobin injects a smooth aggregate rate-ρ flow from a single source,
// cycling destinations in order. Used to spread load over d destinations
// while remaining (ρ,1)-bounded at every buffer (all routes share the
// prefix from src).
type RoundRobin struct {
	bound   Bound
	src     network.NodeID
	dests   []network.NodeID
	emitted int64
}

var _ Adversary = (*RoundRobin)(nil)
var _ DestinationHinter = (*RoundRobin)(nil)

// NewRoundRobin returns a round-robin multi-destination stream.
func NewRoundRobin(bound Bound, src network.NodeID, dests []network.NodeID) *RoundRobin {
	return &RoundRobin{bound: bound, src: src, dests: append([]network.NodeID(nil), dests...)}
}

// Bound implements Adversary.
func (rr *RoundRobin) Bound() Bound { return rr.bound }

// Destinations implements DestinationHinter.
func (rr *RoundRobin) Destinations() []network.NodeID {
	return append([]network.NodeID(nil), rr.dests...)
}

// Inject implements Adversary.
func (rr *RoundRobin) Inject(round int) []packet.Injection {
	budget := rr.bound.Rho.MulInt(int64(round + 1)).Floor()
	var out []packet.Injection
	for budget >= rr.emitted+1 {
		d := rr.dests[int(rr.emitted)%len(rr.dests)]
		if d != rr.src {
			out = append(out, packet.Injection{Src: rr.src, Dst: d})
		}
		rr.emitted++
	}
	return out
}
