package adversary

import (
	"testing"

	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
)

func TestHotSpotRejectsBadBound(t *testing.T) {
	nw := network.MustPath(8)
	if _, err := NewHotSpot(nw, Bound{Rho: rat.New(2, 1)}, nil, 1); err == nil {
		t.Error("rate 2 accepted")
	}
}

func TestHotSpotIsBoundedByConstruction(t *testing.T) {
	nw := network.MustPath(12)
	for _, sigma := range []int{0, 2, 4} {
		bound := Bound{Rho: rat.One, Sigma: sigma}
		adv, err := NewHotSpot(nw, bound, []network.NodeID{6, 9, 11}, 5)
		if err != nil {
			t.Fatal(err)
		}
		// Drive it via the plain Inject path (oblivious fallback) through
		// the exact verifier.
		if err := VerifyPrefix(nw, adv, 300); err != nil {
			t.Errorf("σ=%d: hot-spot adversary violated bound: %v", sigma, err)
		}
	}
}

func TestHotSpotAdaptiveTargetsHotBuffer(t *testing.T) {
	nw := network.MustPath(10)
	adv, err := NewHotSpot(nw, Bound{Rho: rat.One, Sigma: 3}, []network.NodeID{9}, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Claim buffer 4 is hot; injected routes should cross it.
	loads := func(v network.NodeID) int {
		if v == 4 {
			return 5
		}
		return 0
	}
	crossing, total := 0, 0
	for r := 0; r < 50; r++ {
		for _, in := range adv.InjectAdaptive(r, loads) {
			total++
			if Crosses(nw, in, 4) {
				crossing++
			}
		}
	}
	if total == 0 {
		t.Fatal("no injections")
	}
	if crossing*2 < total {
		t.Errorf("only %d/%d injections cross the hot buffer", crossing, total)
	}
}

func TestHotSpotDestinations(t *testing.T) {
	nw := network.MustPath(10)
	adv, err := NewHotSpot(nw, Bound{Rho: rat.One, Sigma: 1}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	dests := adv.Destinations()
	if len(dests) != 1 || dests[0] != 9 {
		t.Errorf("Destinations = %v, want [9] (sink default)", dests)
	}
	if b := adv.Bound(); b.Sigma != 1 {
		t.Errorf("Bound = %v", b)
	}
}

func TestHotSpotPastAllDestinationsFallsBack(t *testing.T) {
	nw := network.MustPath(10)
	adv, err := NewHotSpot(nw, Bound{Rho: rat.One, Sigma: 2}, []network.NodeID{3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Hot buffer 7 is past the only destination 3: the adversary must still
	// inject valid routes (toward 3).
	loads := func(v network.NodeID) int {
		if v == 7 {
			return 9
		}
		return 0
	}
	total := 0
	for r := 0; r < 30; r++ {
		for _, in := range adv.InjectAdaptive(r, loads) {
			total++
			if in.Dst != 3 {
				t.Fatalf("unexpected destination %d", in.Dst)
			}
		}
	}
	if total == 0 {
		t.Error("fallback produced no injections")
	}
}
