package adversary

import (
	"fmt"

	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
)

// Crafted worst-case patterns. Each targets the tightness of one of the
// paper's upper bounds: the goal is to drive some buffer as close as
// possible to the bound while remaining (ρ,σ)-bounded. All constructors
// return verified Replay adversaries (construction fails if the schedule
// would violate its own declared bound, so the patterns are trustworthy by
// construction).

// maxBurst returns the largest integer burst admissible in a single round
// at a buffer with zero excess: ⌊ρ + σ⌋.
func maxBurst(b Bound) int {
	return int(b.Rho.Add(rat.FromInt(int64(b.Sigma))).Floor())
}

// smoother emits a rate-ρ stream with credit capped at one packet, so the
// emission count over any window of w rounds is at most ρ·w + 1 and a pause
// never causes a catch-up burst.
type smoother struct {
	rho    rat.Rat
	credit rat.Rat
}

// tick advances one round and reports whether a packet is due.
func (s *smoother) tick() bool {
	s.credit = s.credit.Add(s.rho).Min(rat.One)
	if rat.One.LessEq(s.credit) {
		s.credit = s.credit.Sub(rat.One)
		return true
	}
	return false
}

// pause forfeits all accumulated credit (used around bursts so the burst
// can spend the full σ headroom).
func (s *smoother) pause() { s.credit = rat.Zero }

// quietWindow returns how many silent rounds fully drain any residual
// excess at rate ρ: ⌈1/ρ⌉ (excess from a capped smoother never exceeds 1).
func quietWindow(rho rat.Rat) int {
	if rho.IsZero() {
		return 1
	}
	return int(rho.Inv().Ceil())
}

// PTSBurst targets Proposition 3.1 (PTS ≤ 2 + σ): a smooth rate-ρ stream
// 0 → n−1 keeps the line occupied; after a quiet window that drains the
// stream's excess, a one-round burst of ⌊ρ+σ⌋ packets lands on a mid-line
// buffer. Rounds [0, horizon) are scheduled; the burst fires near
// horizon/2.
func PTSBurst(nw *network.Network, bound Bound, horizon int) (*Replay, error) {
	if !nw.IsPath() {
		return nil, fmt.Errorf("adversary: PTSBurst needs a path")
	}
	if err := bound.ValidateFor(nw); err != nil {
		return nil, err
	}
	n := nw.Len()
	dst := network.NodeID(n - 1)
	mid := network.NodeID(n / 2)
	if mid == dst {
		mid = dst - 1
	}
	burstRound := horizon / 2
	quiet := quietWindow(bound.Rho)
	s := NewSchedule()
	sm := smoother{rho: bound.Rho}
	for t := 0; t < horizon; t++ {
		if t >= burstRound-quiet && t <= burstRound {
			sm.pause()
			if t == burstRound {
				s.AtN(t, maxBurst(bound), mid, dst)
			}
			continue
		}
		if sm.tick() {
			s.At(t, 0, dst)
		}
	}
	return s.BuildVerified(nw, bound, horizon)
}

// PPTSBurst targets Proposition 3.2 (PPTS ≤ 1 + d + σ): the last d nodes
// are destinations; a rate-ρ round-robin stream from node 0 fills one
// pseudo-buffer per destination at the line head, then a burst of ⌊ρ+σ⌋
// packets stacks one pseudo-buffer. All routes share the prefix from node
// 0, so the per-buffer rate equals the aggregate rate.
func PPTSBurst(nw *network.Network, bound Bound, d, horizon int) (*Replay, error) {
	if !nw.IsPath() {
		return nil, fmt.Errorf("adversary: PPTSBurst needs a path")
	}
	if err := bound.ValidateFor(nw); err != nil {
		return nil, err
	}
	n := nw.Len()
	if d < 1 || d >= n {
		return nil, fmt.Errorf("adversary: PPTSBurst needs 1 ≤ d < n, got d=%d n=%d", d, n)
	}
	dests := make([]network.NodeID, d)
	for k := 0; k < d; k++ {
		dests[k] = network.NodeID(n - d + k)
	}
	burstRound := horizon / 2
	quiet := quietWindow(bound.Rho)
	s := NewSchedule()
	sm := smoother{rho: bound.Rho}
	emitted := 0
	for t := 0; t < horizon; t++ {
		if t >= burstRound-quiet && t <= burstRound {
			sm.pause()
			if t == burstRound {
				s.AtN(t, maxBurst(bound), 0, dests[d-1])
			}
			continue
		}
		if sm.tick() {
			s.At(t, 0, dests[emitted%d])
			emitted++
		}
	}
	return s.BuildVerified(nw, bound, horizon)
}

// TreeBurst targets Proposition 3.5 on trees: every destination of `dests`
// receives a smooth share of a rate-ρ stream injected at a deepest leaf
// that reaches all of them, and a burst of ⌊ρ+σ⌋ packets fires mid-run from
// that leaf toward the last destination.
func TreeBurst(nw *network.Network, bound Bound, dests []network.NodeID, horizon int) (*Replay, error) {
	if err := bound.ValidateFor(nw); err != nil {
		return nil, err
	}
	if len(dests) == 0 {
		dests = nw.Sinks()
	}
	// Injection site: a deepest leaf that reaches all destinations.
	src := network.None
	for _, leaf := range nw.Leaves() {
		ok := true
		for _, d := range dests {
			if !nw.Reaches(leaf, d) {
				ok = false
				break
			}
		}
		if ok && (src == network.None || nw.Depth(leaf) > nw.Depth(src)) {
			src = leaf
		}
	}
	if src == network.None {
		return nil, fmt.Errorf("adversary: no leaf reaches all %d destinations", len(dests))
	}
	burstRound := horizon / 2
	quiet := quietWindow(bound.Rho)
	last := dests[len(dests)-1]
	s := NewSchedule()
	sm := smoother{rho: bound.Rho}
	emitted := 0
	for t := 0; t < horizon; t++ {
		if t >= burstRound-quiet && t <= burstRound {
			sm.pause()
			if t == burstRound && src != last {
				s.AtN(t, maxBurst(bound), src, last)
			}
			continue
		}
		if sm.tick() {
			d := dests[emitted%len(dests)]
			emitted++
			if d != src {
				s.At(t, src, d)
			}
		}
	}
	return s.BuildVerified(nw, bound, horizon)
}

// GreedyKiller is the multi-destination stress pattern the introduction
// attributes to [17]: on a line with d distinct destinations and rate
// ρ > 1/2, greedy protocols are forced to store Ω(d) packets in one buffer.
// The pattern alternates feeding the d destination pseudo-buffers of a
// single staging node and then starving the head of the line so greedy
// policies drag everything into one hot buffer. It is also a useful
// adversary for PPTS (whose load stays ≤ 1 + d + σ, the point of E7).
func GreedyKiller(nw *network.Network, bound Bound, d, horizon int) (*Replay, error) {
	if !nw.IsPath() {
		return nil, fmt.Errorf("adversary: GreedyKiller needs a path")
	}
	if err := bound.ValidateFor(nw); err != nil {
		return nil, err
	}
	n := nw.Len()
	if d < 1 || 2*d >= n {
		return nil, fmt.Errorf("adversary: GreedyKiller needs 1 ≤ 2d < n, got d=%d n=%d", d, n)
	}
	// Destinations: every other node in the right half, so routes from the
	// left half cross a long shared prefix.
	dests := make([]network.NodeID, d)
	for k := 0; k < d; k++ {
		dests[k] = network.NodeID(n - 2*d + 2*k + 1)
	}
	s := NewSchedule()
	sm := smoother{rho: bound.Rho}
	emitted := 0
	for t := 0; t < horizon; t++ {
		if sm.tick() {
			// Phase-alternate injection site: first from node 0 (long routes),
			// then right next to the first destination (short routes that
			// greedy policies interleave badly).
			src := network.NodeID(0)
			if (t/n)%2 == 1 {
				src = dests[0] - 1
			}
			dst := dests[emitted%d]
			emitted++
			if src != dst && nw.Reaches(src, dst) {
				s.At(t, src, dst)
			}
		}
	}
	return s.BuildVerified(nw, bound, horizon)
}
