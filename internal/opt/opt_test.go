package opt

import (
	"context"
	"testing"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/baseline"
	"smallbuffers/internal/core"
	"smallbuffers/internal/lowerbound"
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
)

func fullRate(sigma int) adversary.Bound {
	return adversary.Bound{Rho: rat.One, Sigma: sigma}
}

func TestSolveValidation(t *testing.T) {
	nw := network.MustPath(3)
	if _, err := Solve(Config{Adversary: adversary.Empty{}, Rounds: 1}); err == nil {
		t.Error("nil net accepted")
	}
	if _, err := Solve(Config{Net: nw, Rounds: 1}); err == nil {
		t.Error("nil adversary accepted")
	}
	if _, err := Solve(Config{Net: nw, Adversary: adversary.Empty{}, Rounds: -1}); err == nil {
		t.Error("negative horizon accepted")
	}
	tree, err := network.CaterpillarTree(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(Config{Net: tree, Adversary: adversary.Empty{}, Rounds: 1}); err == nil {
		t.Error("tree accepted")
	}
}

func TestSolveEmptyPattern(t *testing.T) {
	nw := network.MustPath(4)
	res, err := Solve(Config{Net: nw, Adversary: adversary.Empty{}, Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.OptMaxLoad != 0 {
		t.Errorf("OptMaxLoad = %d, want 0", res.OptMaxLoad)
	}
}

func TestSolveSinglePacket(t *testing.T) {
	nw := network.MustPath(4)
	adv := adversary.NewSchedule().At(0, 0, 3).Build(fullRate(0))
	res, err := Solve(Config{Net: nw, Adversary: adv, Rounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.OptMaxLoad != 1 {
		t.Errorf("OptMaxLoad = %d, want 1", res.OptMaxLoad)
	}
}

func TestSolveForcedCollision(t *testing.T) {
	// Two packets injected at the same node in one round: load 2 is forced
	// at injection, and the optimum is exactly 2.
	nw := network.MustPath(5)
	adv := adversary.NewSchedule().
		At(0, 0, 4).At(0, 0, 3).
		Build(fullRate(1))
	res, err := Solve(Config{Net: nw, Adversary: adv, Rounds: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.OptMaxLoad != 2 {
		t.Errorf("OptMaxLoad = %d, want 2", res.OptMaxLoad)
	}
}

func TestSolveSpreadAvoidsCollision(t *testing.T) {
	// Packets injected at different nodes with enough headroom: a good
	// schedule keeps every buffer at 1.
	nw := network.MustPath(6)
	adv := adversary.NewSchedule().
		At(0, 0, 5).
		At(1, 2, 5).
		At(3, 0, 4).
		Build(fullRate(1))
	res, err := Solve(Config{Net: nw, Adversary: adv, Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.OptMaxLoad != 1 {
		t.Errorf("OptMaxLoad = %d, want 1", res.OptMaxLoad)
	}
}

// TestOptimumNeverExceedsProtocols: the exhaustive optimum lower-bounds
// every online protocol on the same instance.
func TestOptimumNeverExceedsProtocols(t *testing.T) {
	nw := network.MustPath(6)
	mk := func() adversary.Adversary {
		return adversary.NewSchedule().
			At(0, 0, 5).At(0, 1, 4).
			At(1, 0, 5).
			At(2, 0, 3).At(2, 1, 5).
			At(4, 0, 5).
			Build(fullRate(2))
	}
	const rounds = 10
	res, err := Solve(Config{Net: nw, Adversary: mk(), Rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range []sim.Protocol{core.NewPPTS(), baseline.NewGreedy(baseline.LIS{})} {
		simRes, err := sim.Run(context.Background(), sim.NewSpec(nw, proto, mk(), rounds))
		if err != nil {
			t.Fatal(err)
		}
		if simRes.MaxLoad < res.OptMaxLoad {
			t.Errorf("%s beat the optimum: %d < %d", proto.Name(), simRes.MaxLoad, res.OptMaxLoad)
		}
	}
}

// TestOptimumRespectsLowerBoundPattern runs the exhaustive search on a tiny
// Section 5 instance (m=2, ℓ=2: 13 nodes, 8 rounds) — the exact offline
// optimum must respect the (trivial at this scale, but mechanical) floor.
func TestOptimumRespectsLowerBoundPattern(t *testing.T) {
	lb, err := lowerbound.New(2, 2, rat.New(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := lb.Network()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(Config{
		Net: nw, Adversary: lb, Rounds: lb.Rounds(),
		MaxStates: 4_000_000, MaxBranch: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	floor := int(lb.PredictedBound().Ceil())
	if res.OptMaxLoad < floor {
		t.Errorf("optimum %d below predicted floor %d", res.OptMaxLoad, floor)
	}
	t.Logf("exact optimum on m=2,ℓ=2 pattern: %d (floor %d, states %d)", res.OptMaxLoad, floor, res.StatesExplored)
}

func TestBranchBudgetEnforced(t *testing.T) {
	nw := network.MustPath(8)
	s := adversary.NewSchedule()
	// Many distinct destinations at many nodes → combinatorial decisions.
	for v := 0; v < 6; v++ {
		for d := v + 1; d < 8; d++ {
			s.At(0, network.NodeID(v), network.NodeID(d))
		}
	}
	adv := s.Build(fullRate(20))
	if _, err := Solve(Config{Net: nw, Adversary: adv, Rounds: 4, MaxBranch: 8}); err == nil {
		t.Error("branch budget not enforced")
	}
}

func TestStateBudgetEnforced(t *testing.T) {
	nw := network.MustPath(6)
	s := adversary.NewSchedule()
	for r := 0; r < 6; r++ {
		s.At(r, 0, 5).At(r, 1, 4)
	}
	adv := s.Build(fullRate(4))
	if _, err := Solve(Config{Net: nw, Adversary: adv, Rounds: 6, MaxStates: 3}); err == nil {
		t.Error("state budget not enforced")
	}
}

func TestSolveRejectsInvalidInjection(t *testing.T) {
	nw := network.MustPath(4)
	adv := adversary.NewReplay(fullRate(1), map[int][]packet.Injection{0: {{Src: 3, Dst: 0}}})
	if _, err := Solve(Config{Net: nw, Adversary: adv, Rounds: 1}); err == nil {
		t.Error("backward injection accepted")
	}
}
