// Package opt computes the exact offline optimum of the buffer-minimization
// game on tiny instances: the minimal achievable worst-case buffer
// occupancy over all forwarding schedules, for a fixed injection pattern on
// a path. Theorem 5.1 lower-bounds this quantity for the Section 5 pattern;
// this package provides the ground truth to compare against (experiment
// E9), and doubles as an optimality check for PTS/PPTS on small cases.
//
// The state space is exponential, so Solve is deliberately guarded by an
// explicit budget: it is a verification tool, not a protocol.
package opt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
)

// Config bounds the search.
type Config struct {
	// Net is the path to schedule on.
	Net *network.Network
	// Adversary supplies the injections; it is consumed for Rounds rounds.
	Adversary adversary.Adversary
	// Rounds is the horizon. The objective is the maximum, over rounds and
	// buffers, of the post-injection occupancy L_t.
	Rounds int
	// MaxStates caps the memo table size (default 2_000_000). Solve fails
	// rather than exceed it.
	MaxStates int
	// MaxBranch caps the number of decision combinations explored per state
	// (default 4096). Solve fails rather than exceed it.
	MaxBranch int
}

// Result reports the optimum.
type Result struct {
	// OptMaxLoad is the minimal achievable maximum buffer occupancy.
	OptMaxLoad int
	// StatesExplored counts memoized states.
	StatesExplored int
}

// state is a canonical configuration: per node, the sorted multiset of
// packet destinations (only destinations matter for future loads).
type state struct {
	// dests[v] sorted ascending.
	dests [][]int16
}

func (s *state) key(round int) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(round))
	for v, ds := range s.dests {
		if len(ds) == 0 {
			continue
		}
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(v))
		b.WriteByte(':')
		for _, d := range ds {
			b.WriteString(strconv.Itoa(int(d)))
			b.WriteByte(',')
		}
	}
	return b.String()
}

func (s *state) clone() *state {
	c := &state{dests: make([][]int16, len(s.dests))}
	for v, ds := range s.dests {
		if len(ds) > 0 {
			c.dests[v] = append([]int16(nil), ds...)
		}
	}
	return c
}

func (s *state) maxLoad() int {
	m := 0
	for _, ds := range s.dests {
		if len(ds) > m {
			m = len(ds)
		}
	}
	return m
}

func (s *state) insert(v network.NodeID, dst int16) {
	ds := s.dests[v]
	i := sort.Search(len(ds), func(i int) bool { return ds[i] >= dst })
	ds = append(ds, 0)
	copy(ds[i+1:], ds[i:])
	ds[i] = dst
	s.dests[v] = ds
}

// removeOne removes one packet with the given destination from v.
func (s *state) removeOne(v network.NodeID, dst int16) {
	ds := s.dests[v]
	i := sort.Search(len(ds), func(i int) bool { return ds[i] >= dst })
	s.dests[v] = append(ds[:i], ds[i+1:]...)
}

type solver struct {
	cfg        Config
	injections [][]packet.Injection
	memo       map[string]int
	maxStates  int
	maxBranch  int
}

// Solve computes the optimum. It returns an error if the search exceeds its
// budgets or the configuration is invalid.
func Solve(cfg Config) (Result, error) {
	if cfg.Net == nil || cfg.Adversary == nil {
		return Result{}, fmt.Errorf("opt: nil network or adversary")
	}
	if !cfg.Net.IsPath() {
		return Result{}, fmt.Errorf("opt: exhaustive search supports paths only")
	}
	if cfg.Rounds < 0 {
		return Result{}, fmt.Errorf("opt: negative horizon")
	}
	s := &solver{
		cfg:       cfg,
		memo:      make(map[string]int),
		maxStates: cfg.MaxStates,
		maxBranch: cfg.MaxBranch,
	}
	if s.maxStates <= 0 {
		s.maxStates = 2_000_000
	}
	if s.maxBranch <= 0 {
		s.maxBranch = 4096
	}
	// Pre-draw the injection schedule (adversaries are stateful).
	s.injections = make([][]packet.Injection, cfg.Rounds)
	for t := 0; t < cfg.Rounds; t++ {
		injs := cfg.Adversary.Inject(t)
		for _, in := range injs {
			if err := in.Validate(cfg.Net); err != nil {
				return Result{}, fmt.Errorf("opt: round %d: %w", t, err)
			}
		}
		s.injections[t] = injs
	}
	init := &state{dests: make([][]int16, cfg.Net.Len())}
	opt, err := s.solve(0, init)
	if err != nil {
		return Result{}, err
	}
	return Result{OptMaxLoad: opt, StatesExplored: len(s.memo)}, nil
}

// solve returns the minimal achievable max load over rounds [round, Rounds)
// starting from st (pre-injection at `round`).
func (s *solver) solve(round int, st *state) (int, error) {
	if round >= s.cfg.Rounds {
		return 0, nil
	}
	key := st.key(round)
	if v, ok := s.memo[key]; ok {
		return v, nil
	}
	if len(s.memo) >= s.maxStates {
		return 0, fmt.Errorf("opt: state budget (%d) exceeded", s.maxStates)
	}

	// Injection step (deterministic).
	work := st.clone()
	for _, in := range s.injections[round] {
		work.insert(in.Src, int16(in.Dst))
	}
	loadNow := work.maxLoad()

	// Enumerate decision combinations: per occupied non-sink node, forward
	// one of its distinct destination classes or nothing.
	type option struct {
		node  network.NodeID
		dests []int16 // distinct
	}
	var opts []option
	for v := 0; v < s.cfg.Net.Len(); v++ {
		node := network.NodeID(v)
		if s.cfg.Net.Next(node) == network.None || len(work.dests[node]) == 0 {
			continue
		}
		distinct := work.dests[node][:0:0]
		var last int16 = -1
		for _, d := range work.dests[node] {
			if d != last {
				distinct = append(distinct, d)
				last = d
			}
		}
		opts = append(opts, option{node: node, dests: distinct})
	}
	combos := 1
	for _, o := range opts {
		combos *= len(o.dests) + 1
		if combos > s.maxBranch {
			return 0, fmt.Errorf("opt: branch budget (%d) exceeded at round %d", s.maxBranch, round)
		}
	}

	best := int(^uint(0) >> 1) // max int
	choice := make([]int, len(opts))
	for {
		// Apply the current choice vector.
		next := work.clone()
		for i, o := range opts {
			if choice[i] == 0 {
				continue
			}
			dst := o.dests[choice[i]-1]
			to := s.cfg.Net.Next(o.node)
			next.removeOne(o.node, dst)
			if int16(to) != dst {
				next.insert(to, dst)
			}
		}
		sub, err := s.solve(round+1, next)
		if err != nil {
			return 0, err
		}
		if sub < best {
			best = sub
		}
		if best <= loadNow {
			break // cannot do better than the forced current load
		}
		// Advance the mixed-radix choice vector.
		i := 0
		for ; i < len(opts); i++ {
			choice[i]++
			if choice[i] <= len(opts[i].dests) {
				break
			}
			choice[i] = 0
		}
		if i == len(opts) {
			break
		}
	}
	if best < loadNow {
		best = loadNow
	}
	s.memo[key] = best
	return best, nil
}
