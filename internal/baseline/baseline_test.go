package baseline

import (
	"context"
	"testing"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
)

func TestPolicyOrdering(t *testing.T) {
	nw := network.MustPath(10)
	// a: injected earlier, arrived later, farther to go.
	a := packet.Packet{ID: 1, Inject: 0, Arrived: 5, Dst: 9}
	b := packet.Packet{ID: 2, Inject: 3, Arrived: 2, Dst: 6}
	at := network.NodeID(4)
	tests := []struct {
		policy Policy
		aFirst bool
	}{
		{FIFO{}, false}, // b arrived earlier
		{LIFO{}, true},  // a arrived later
		{LIS{}, true},   // a injected earlier
		{SIS{}, false},  // b injected later
		{NTG{}, false},  // b is nearer (dist 2 vs 5)
		{FTG{}, true},   // a is farther
	}
	for _, tt := range tests {
		t.Run(tt.policy.Name(), func(t *testing.T) {
			if got := tt.policy.Less(nw, at, a, b); got != tt.aFirst {
				t.Errorf("%s.Less(a,b) = %v, want %v", tt.policy.Name(), got, tt.aFirst)
			}
		})
	}
}

func TestGreedyDeliversEverything(t *testing.T) {
	nw := network.MustPath(12)
	for _, g := range All() {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			adv, err := adversary.NewRandom(nw, adversary.Bound{Rho: rat.New(1, 2), Sigma: 2}, nil, 3)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(context.Background(), sim.NewSpec(nw, g, adv, 400))
			if err != nil {
				t.Fatal(err)
			}
			if res.Injected == 0 {
				t.Fatal("no traffic")
			}
			// Greedy protocols at rate 1/2 on a line are stable: almost all
			// packets should be delivered within the horizon.
			if res.Residual > 14 {
				t.Errorf("residual %d of %d injected", res.Residual, res.Injected)
			}
		})
	}
}

func TestGreedyWorksOnTrees(t *testing.T) {
	tree, err := network.SpiderTree(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := adversary.NewRandom(tree, adversary.Bound{Rho: rat.New(1, 2), Sigma: 1}, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), sim.NewSpec(tree, NewGreedy(LIS{}), adv, 300))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Error("nothing delivered on tree")
	}
}

func TestGreedyName(t *testing.T) {
	if got := NewGreedy(NTG{}).Name(); got != "Greedy-NTG" {
		t.Errorf("Name = %q", got)
	}
}

func TestGreedyAttachNil(t *testing.T) {
	if err := NewGreedy(FIFO{}).Attach(nil, adversary.Bound{}, nil); err == nil {
		t.Error("nil network accepted")
	}
}

func TestGreedyDeterministicTieBreak(t *testing.T) {
	// Two packets identical under FIFO (same arrival): lowest ID wins.
	nw := network.MustPath(4)
	adv := adversary.NewReplay(adversary.Bound{Rho: rat.One, Sigma: 1}, map[int][]packet.Injection{
		0: {{Src: 0, Dst: 3}, {Src: 0, Dst: 2}},
	})
	g := NewGreedy(FIFO{})
	var firstMove packet.ID
	obs := &moveRecorder{first: &firstMove}
	if _, err := sim.Run(context.Background(), sim.NewSpec(nw, g, adv, 2, sim.WithObservers(obs))); err != nil {
		t.Fatal(err)
	}
	if firstMove != 0 {
		t.Errorf("first forwarded packet = #%d, want #0 (lowest ID)", firstMove)
	}
}

type moveRecorder struct {
	sim.NopObserver
	first *packet.ID
	seen  bool
}

func (m *moveRecorder) OnForward(round int, moves []sim.Move) {
	if !m.seen && len(moves) > 0 {
		*m.first = moves[0].Pkt.ID
		m.seen = true
	}
}

func TestAllReturnsSixPolicies(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("All() = %d protocols, want 6", len(all))
	}
	seen := make(map[string]bool)
	for _, g := range all {
		if seen[g.Name()] {
			t.Errorf("duplicate %s", g.Name())
		}
		seen[g.Name()] = true
	}
}
