// Package baseline implements the classical greedy scheduling policies of
// adversarial queuing theory as comparison baselines: FIFO, LIFO, LIS
// ("longest in system"), SIS, NTG ("nearest to go"), and FTG. A greedy
// protocol forwards a packet from every non-empty buffer every round; the
// policy only chooses which packet. The paper's introduction (citing [2]
// and [17]) notes that greediness is a real handicap for buffer space: on a
// line with d destinations and rate ρ > 1/2, greedy policies are forced
// into Ω(d)-size buffers, which experiment E7 reproduces against PPTS and
// HPTS.
package baseline

import (
	"fmt"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/sim"
)

// Policy ranks packets within one buffer; the greedy protocol forwards the
// packet that Less ranks first. Ties beyond the comparator are broken by
// packet ID (injection order) for determinism.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Less reports whether a has priority over b at node v.
	Less(nw *network.Network, v network.NodeID, a, b packet.Packet) bool
}

// Greedy is the work-conserving protocol driven by a Policy: every
// non-empty non-sink buffer forwards its policy-preferred packets each
// round — up to B(v) of them on capacitated links (exactly one in the
// paper's unit-capacity model).
type Greedy struct {
	policy Policy
	nw     *network.Network
}

var _ sim.Protocol = (*Greedy)(nil)

// NewGreedy returns a greedy protocol with the given intra-buffer policy.
func NewGreedy(policy Policy) *Greedy { return &Greedy{policy: policy} }

// Name implements sim.Protocol.
func (g *Greedy) Name() string { return "Greedy-" + g.policy.Name() }

// Attach implements sim.Protocol. Greedy runs on any in-forest.
func (g *Greedy) Attach(nw *network.Network, _ adversary.Bound, _ []network.NodeID) error {
	if nw == nil {
		return fmt.Errorf("baseline: nil network")
	}
	g.nw = nw
	return nil
}

// Decide implements sim.Protocol: each non-sink buffer forwards its
// min(B(v), load) policy-preferred packets, selected greedily so that at
// B = 1 the choice coincides with the classical single-packet rule.
func (g *Greedy) Decide(v sim.View) ([]sim.Forward, error) {
	var out []sim.Forward
	var scratch []packet.Packet
	for i := 0; i < g.nw.Len(); i++ {
		node := network.NodeID(i)
		if g.nw.Next(node) == network.None {
			continue
		}
		pkts := v.Packets(node)
		if len(pkts) == 0 {
			continue
		}
		b := v.Bandwidth(node)
		if b > len(pkts) {
			b = len(pkts)
		}
		scratch = append(scratch[:0], pkts...)
		// Partial selection: repeatedly extract the policy minimum (ID
		// tiebreak). b is tiny relative to buffer sizes, so the O(b·load)
		// scan beats sorting the whole buffer.
		for k := 0; k < b; k++ {
			bi := k
			for j := k + 1; j < len(scratch); j++ {
				if g.policy.Less(g.nw, node, scratch[j], scratch[bi]) ||
					(!g.policy.Less(g.nw, node, scratch[bi], scratch[j]) && scratch[j].ID < scratch[bi].ID) {
					bi = j
				}
			}
			scratch[k], scratch[bi] = scratch[bi], scratch[k]
			out = append(out, sim.Forward{From: node, Pkt: scratch[k].ID})
		}
	}
	return out, nil
}

// FIFO forwards the packet that arrived at the buffer earliest.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "FIFO" }

// Less implements Policy.
func (FIFO) Less(_ *network.Network, _ network.NodeID, a, b packet.Packet) bool {
	return a.Arrived < b.Arrived
}

// LIFO forwards the packet that arrived at the buffer latest.
type LIFO struct{}

// Name implements Policy.
func (LIFO) Name() string { return "LIFO" }

// Less implements Policy.
func (LIFO) Less(_ *network.Network, _ network.NodeID, a, b packet.Packet) bool {
	return a.Arrived > b.Arrived
}

// LIS ("longest in system") forwards the packet injected earliest.
type LIS struct{}

// Name implements Policy.
func (LIS) Name() string { return "LIS" }

// Less implements Policy.
func (LIS) Less(_ *network.Network, _ network.NodeID, a, b packet.Packet) bool {
	return a.Inject < b.Inject
}

// SIS ("shortest in system") forwards the packet injected latest.
type SIS struct{}

// Name implements Policy.
func (SIS) Name() string { return "SIS" }

// Less implements Policy.
func (SIS) Less(_ *network.Network, _ network.NodeID, a, b packet.Packet) bool {
	return a.Inject > b.Inject
}

// NTG ("nearest to go") forwards the packet with the fewest remaining hops.
type NTG struct{}

// Name implements Policy.
func (NTG) Name() string { return "NTG" }

// Less implements Policy.
func (NTG) Less(nw *network.Network, v network.NodeID, a, b packet.Packet) bool {
	da, _ := nw.Dist(v, a.Dst)
	db, _ := nw.Dist(v, b.Dst)
	return da < db
}

// FTG ("furthest to go") forwards the packet with the most remaining hops.
type FTG struct{}

// Name implements Policy.
func (FTG) Name() string { return "FTG" }

// Less implements Policy.
func (FTG) Less(nw *network.Network, v network.NodeID, a, b packet.Packet) bool {
	da, _ := nw.Dist(v, a.Dst)
	db, _ := nw.Dist(v, b.Dst)
	return da > db
}

// All returns one greedy protocol per classical policy, in a stable order.
func All() []*Greedy {
	return []*Greedy{
		NewGreedy(FIFO{}),
		NewGreedy(LIFO{}),
		NewGreedy(LIS{}),
		NewGreedy(SIS{}),
		NewGreedy(NTG{}),
		NewGreedy(FTG{}),
	}
}
