package registry

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"smallbuffers/internal/rat"
)

// Kind is the type of a component parameter. Parameters arrive as decoded
// JSON (float64, bool, string, []any) and are coerced to one canonical Go
// representation per kind, so that a scenario's canonical form is
// deterministic and exact: rationals travel as strings ("1/2"), never as
// floats.
type Kind int

const (
	// Int is a plain integer; JSON numbers must be integral.
	Int Kind = iota
	// Bool is a boolean flag.
	Bool
	// RatKind is an exact rational, canonically a string such as "3/4";
	// integral JSON numbers are accepted and canonicalized.
	RatKind
	// Ints is a list of integers (e.g. an explicit destination set).
	Ints
	// String is free-form text.
	String
)

// String names the kind for error messages and schema listings.
func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Bool:
		return "bool"
	case RatKind:
		return "rat"
	case Ints:
		return "[]int"
	case String:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Param declares one typed parameter of a component schema.
type Param struct {
	Name string
	Kind Kind
	Doc  string
	// Default is the canonical value used when the parameter is omitted
	// (int, bool, rat.Rat, []int, or string according to Kind). Ignored
	// when Required is set.
	Default any
	// Required rejects scenarios that omit the parameter.
	Required bool
}

// Schema is an ordered list of parameter declarations.
type Schema []Param

// Params holds resolved parameter values in canonical form: int, bool,
// rat.Rat, []int, or string per the declaring schema.
type Params map[string]any

// Resolve validates raw (decoded JSON) parameter values against the schema:
// unknown names are rejected with a suggestion, values are coerced to their
// declared kind, defaults fill omitted parameters, and missing required
// parameters are errors. The result is a fully populated canonical Params.
func (s Schema) Resolve(raw map[string]any) (Params, error) {
	out := make(Params, len(s))
	// Collect unknown names and report the alphabetically first:
	// iterating the raw map directly would make the error's choice of
	// parameter (and its did-you-mean suggestion) vary run to run.
	var unknown []string
	for name := range raw {
		if s.find(name) == nil {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		name := unknown[0]
		return nil, fmt.Errorf("unknown parameter %q%s (schema: %s)", name, didYouMean(name, s.names()), s.describe())
	}
	for _, p := range s {
		v, ok := raw[p.Name]
		if !ok {
			if p.Required {
				return nil, fmt.Errorf("missing required parameter %q (%s)", p.Name, p.Doc)
			}
			out[p.Name] = p.Default
			continue
		}
		cv, err := coerce(p.Kind, v)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %w", p.Name, err)
		}
		out[p.Name] = cv
	}
	return out, nil
}

func (s Schema) find(name string) *Param {
	for i := range s {
		if s[i].Name == name {
			return &s[i]
		}
	}
	return nil
}

func (s Schema) names() []string {
	out := make([]string, len(s))
	for i, p := range s {
		out[i] = p.Name
	}
	return out
}

// describe renders "name:kind, name:kind" for error messages; "(none)" for
// parameterless components.
func (s Schema) describe() string {
	if len(s) == 0 {
		return " (none)"
	}
	parts := make([]string, len(s))
	for i, p := range s {
		parts[i] = fmt.Sprintf("%s:%s", p.Name, p.Kind)
	}
	return " " + strings.Join(parts, ", ")
}

// coerce converts one decoded-JSON value to the canonical representation of
// the kind.
func coerce(k Kind, v any) (any, error) {
	switch k {
	case Int:
		return toInt(v)
	case Bool:
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("want bool, got %T", v)
		}
		return b, nil
	case RatKind:
		switch x := v.(type) {
		case string:
			r, err := rat.Parse(x)
			if err != nil {
				return nil, err
			}
			return r, nil
		case rat.Rat:
			return x, nil
		default:
			n, err := toInt(v)
			if err != nil {
				return nil, fmt.Errorf("want a rational string such as \"1/2\" or an integer, got %T", v)
			}
			return rat.FromInt(int64(n)), nil
		}
	case Ints:
		switch x := v.(type) {
		case nil:
			return []int(nil), nil
		case []int:
			return append([]int(nil), x...), nil
		case []any:
			out := make([]int, len(x))
			for i, e := range x {
				n, err := toInt(e)
				if err != nil {
					return nil, fmt.Errorf("element %d: %w", i, err)
				}
				out[i] = n
			}
			return out, nil
		default:
			return nil, fmt.Errorf("want a list of integers, got %T", v)
		}
	case String:
		sv, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("want string, got %T", v)
		}
		return sv, nil
	default:
		return nil, fmt.Errorf("registry: unhandled kind %v", k)
	}
}

// toInt accepts int, int64, and integral float64 (the JSON decoding of a
// whole number).
func toInt(v any) (int, error) {
	switch x := v.(type) {
	case int:
		return x, nil
	case int64:
		return int(x), nil
	case float64:
		if x != math.Trunc(x) || math.Abs(x) > 1<<52 {
			return 0, fmt.Errorf("want integer, got %v", x)
		}
		return int(x), nil
	default:
		return 0, fmt.Errorf("want integer, got %T", v)
	}
}

// Int returns the named parameter as an int (zero if absent — Resolve
// guarantees presence for schema-declared names).
func (p Params) Int(name string) int {
	v, _ := p[name].(int)
	return v
}

// Bool returns the named parameter as a bool.
func (p Params) Bool(name string) bool {
	v, _ := p[name].(bool)
	return v
}

// Rat returns the named parameter as an exact rational.
func (p Params) Rat(name string) rat.Rat {
	v, _ := p[name].(rat.Rat)
	return v
}

// Ints returns the named parameter as an integer list.
func (p Params) Ints(name string) []int {
	v, _ := p[name].([]int)
	return v
}

// String returns the named parameter as a string.
func (p Params) String(name string) string {
	v, _ := p[name].(string)
	return v
}

// JSONMap renders the params in their canonical JSON form: ints and bools
// as themselves, rationals as exact strings, lists as []int. Keys marshal
// in sorted order (encoding/json sorts map keys), so the output is
// deterministic.
func (p Params) JSONMap() map[string]any {
	if len(p) == 0 {
		return nil
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make(map[string]any, len(p))
	for _, k := range keys {
		switch x := p[k].(type) {
		case rat.Rat:
			out[k] = x.String()
		case []int:
			if len(x) == 0 {
				continue // empty list ≡ omitted; keep the canonical form minimal
			}
			out[k] = x
		default:
			out[k] = p[k]
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// didYouMean suggests the closest candidate within a small edit distance,
// rendered as `, did you mean "x"?` or empty.
func didYouMean(name string, candidates []string) string {
	best, dist := "", 3 // suggest only within edit distance 2
	sort.Strings(candidates)
	for _, c := range candidates {
		if d := editDistance(strings.ToLower(name), strings.ToLower(c)); d < dist {
			best, dist = c, d
		}
	}
	if best == "" {
		return ""
	}
	return fmt.Sprintf(", did you mean %q?", best)
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
