package registry

import (
	"strings"
	"testing"
)

// TestResolveUnknownParamDeterministic pins which unknown parameter
// Resolve reports when several are present: always the alphabetically
// first, regardless of map iteration order. Resolve used to range the raw
// map directly, so the reported name (and its did-you-mean suggestion)
// varied run to run.
func TestResolveUnknownParamDeterministic(t *testing.T) {
	s := Schema{{Name: "n", Kind: Int, Default: 8}}
	raw := map[string]any{"zeta": 1.0, "alpha": 2.0, "mid": 3.0}
	for i := 0; i < 30; i++ {
		_, err := s.Resolve(raw)
		if err == nil {
			t.Fatal("want error")
		}
		if !strings.Contains(err.Error(), `unknown parameter "alpha"`) {
			t.Fatalf("run %d: error %q does not name the alphabetically first unknown", i, err)
		}
	}
}
