package registry

import (
	"fmt"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/baseline"
	"smallbuffers/internal/core"
	"smallbuffers/internal/faults"
	"smallbuffers/internal/local"
	"smallbuffers/internal/lowerbound"
	"smallbuffers/internal/metrics"
	"smallbuffers/internal/network"
	"smallbuffers/internal/sim"
)

// This file registers the built-in catalog: every component the paper's
// reproduction uses, under the stable names scenario files and the CLIs
// share. Parameter names deliberately match the historical CLI flags
// (n, spine, legs, arms, len, height, ell, drain, d, src, dst, m), so a
// flag invocation and its scenario file read the same.

func init() {
	registerTopologies()
	registerProtocols()
	registerAdversaries()
	registerInvariants()
	registerMetrics()
	registerFaults()
}

func registerTopologies() {
	mustRegister(RegisterTopology(Topology{
		Name:   "path",
		Doc:    "the directed path 0 → 1 → … → n−1 (§2)",
		Params: Schema{{Name: "n", Kind: Int, Doc: "path length", Default: 64}},
		Build: func(p Params) (*network.Network, error) {
			return network.NewPath(p.Int("n"))
		},
	}))
	mustRegister(RegisterTopology(Topology{
		Name: "caterpillar",
		Doc:  "a spine path with legs leaves per spine node",
		Params: Schema{
			{Name: "spine", Kind: Int, Doc: "spine length", Default: 8},
			{Name: "legs", Kind: Int, Doc: "leaves per spine node", Default: 2},
		},
		Build: func(p Params) (*network.Network, error) {
			return network.CaterpillarTree(p.Int("spine"), p.Int("legs"))
		},
	}))
	mustRegister(RegisterTopology(Topology{
		Name:   "binary",
		Doc:    "a complete binary in-tree of the given height",
		Params: Schema{{Name: "height", Kind: Int, Doc: "tree height", Default: 4}},
		Build: func(p Params) (*network.Network, error) {
			return network.BinaryTree(p.Int("height"))
		},
	}))
	mustRegister(RegisterTopology(Topology{
		Name: "spider",
		Doc:  "arms directed paths of the given length merging into one root",
		Params: Schema{
			{Name: "arms", Kind: Int, Doc: "arm count", Default: 4},
			{Name: "len", Kind: Int, Doc: "arm length", Default: 4},
		},
		Build: func(p Params) (*network.Network, error) {
			return network.SpiderTree(p.Int("arms"), p.Int("len"))
		},
	}))
}

func registerProtocols() {
	drain := Schema{{Name: "drain", Kind: Bool, Doc: "enable drain-when-idle", Default: false}}
	mustRegister(RegisterProtocol(Protocol{
		Name:   "pts",
		Doc:    "Peak-to-Sink (Algorithm 1): single destination, ≤ 2+σ",
		Params: drain,
		Build: func(p Params) (sim.Protocol, error) {
			if p.Bool("drain") {
				return core.NewPTS(core.WithDrain()), nil
			}
			return core.NewPTS(), nil
		},
		Note: func(_ Params, b adversary.Bound) string {
			return fmt.Sprintf("Proposition 3.1: max load ≤ 2+σ = %d", 2+b.Sigma)
		},
	}))
	mustRegister(RegisterProtocol(Protocol{
		Name:   "ppts",
		Doc:    "Parallel Peak-to-Sink (Algorithm 2): d destinations, ≤ 1+d+σ",
		Params: drain,
		Build: func(p Params) (sim.Protocol, error) {
			if p.Bool("drain") {
				return core.NewPPTS(core.PPTSWithDrain()), nil
			}
			return core.NewPPTS(), nil
		},
		Note: func(Params, adversary.Bound) string {
			return "Proposition 3.2: max load ≤ 1+d+σ (d = distinct destinations observed)"
		},
	}))
	mustRegister(RegisterProtocol(Protocol{
		Name:   "tree-pts",
		Doc:    "directed-tree PTS (Appendix B.2): ≤ 2+σ",
		Params: drain,
		Build: func(p Params) (sim.Protocol, error) {
			if p.Bool("drain") {
				return core.NewTreePTS(core.TreePTSWithDrain()), nil
			}
			return core.NewTreePTS(), nil
		},
		Note: func(_ Params, b adversary.Bound) string {
			return fmt.Sprintf("Proposition B.3: max load ≤ 2+σ = %d", 2+b.Sigma)
		},
	}))
	mustRegister(RegisterProtocol(Protocol{
		Name: "tree-ppts",
		Doc:  "directed-tree PPTS (Proposition 3.5): ≤ 1+d′+σ",
		Build: func(Params) (sim.Protocol, error) {
			return core.NewTreePPTS(), nil
		},
		Note: func(Params, adversary.Bound) string {
			return "Proposition 3.5: max load ≤ 1+d′+σ"
		},
	}))
	mustRegister(RegisterProtocol(Protocol{
		Name:   "hpts",
		Doc:    "Hierarchical Peak-to-Sink (Algorithms 3–5) on n = m^ℓ nodes",
		Params: Schema{{Name: "ell", Kind: Int, Doc: "hierarchy levels ℓ", Default: 2}},
		Build: func(p Params) (sim.Protocol, error) {
			return core.NewHPTS(p.Int("ell")), nil
		},
		Note: func(p Params, _ adversary.Bound) string {
			ell := p.Int("ell")
			return fmt.Sprintf("Theorem 4.1: max load ≤ ℓ·n^(1/ℓ)+σ+1 (requires ρ ≤ 1/%d and n = m^%d)", ell, ell)
		},
	}))
	mustRegister(RegisterProtocol(Protocol{
		Name: "downhill",
		Doc:  "naive locality-1 rule: forward down the buffer gradient",
		Build: func(Params) (sim.Protocol, error) {
			return local.NewDownhill(), nil
		},
		Note: func(Params, adversary.Bound) string {
			return "naive local rule: Θ(n) staircase under full pressure (E10)"
		},
	}))
	mustRegister(RegisterProtocol(Protocol{
		Name: "oddeven",
		Doc:  "parity-staggered downhill variant; sustains ρ ≤ 1/2",
		Build: func(Params) (sim.Protocol, error) {
			return local.NewOddEven(), nil
		},
		Note: func(Params, adversary.Bound) string {
			return "parity-staggered local rule: sustains ρ ≤ 1/2 (E10)"
		},
	}))
	registerGreedy()
}

// registerGreedy registers the classical policies and one "greedy-<name>"
// protocol per policy, derived from the policy table — one loop, no
// switch.
func registerGreedy() {
	for _, pol := range []Policy{
		{Name: "fifo", Doc: "first in, first out", Policy: baseline.FIFO{}},
		{Name: "lifo", Doc: "last in, first out", Policy: baseline.LIFO{}},
		{Name: "lis", Doc: "longest in system", Policy: baseline.LIS{}},
		{Name: "sis", Doc: "shortest in system", Policy: baseline.SIS{}},
		{Name: "ntg", Doc: "nearest to go", Policy: baseline.NTG{}},
		{Name: "ftg", Doc: "farthest to go", Policy: baseline.FTG{}},
	} {
		mustRegister(RegisterPolicy(pol))
	}
	for _, name := range PolicyNames() {
		pol, err := LookupPolicy(name)
		mustRegister(err)
		p := pol.Policy
		mustRegister(RegisterProtocol(Protocol{
			Name: "greedy-" + pol.Name,
			Doc:  "work-conserving greedy baseline, " + pol.Doc,
			Build: func(Params) (sim.Protocol, error) {
				return baseline.NewGreedy(p), nil
			},
			Note: func(Params, adversary.Bound) string {
				return "greedy baseline (no space guarantee; see E7)"
			},
		}))
	}
}

// destSchema is the destination-selection schema shared by the randomized
// multi-destination patterns: an explicit dests list wins; otherwise d
// spread-out destinations are derived from the topology.
var destSchema = Schema{
	{Name: "d", Kind: Int, Doc: "destination count when dests is omitted", Default: 4},
	{Name: "dests", Kind: Ints, Doc: "explicit destination nodes (overrides d)", Default: []int(nil)},
}

// resolveDests applies the destSchema convention.
func resolveDests(nw *network.Network, p Params) []network.NodeID {
	if ds := p.Ints("dests"); len(ds) > 0 {
		out := make([]network.NodeID, len(ds))
		for i, d := range ds {
			out[i] = network.NodeID(d)
		}
		return out
	}
	return SpreadDestinations(nw, p.Int("d"))
}

// SpreadDestinations picks d spread-out destinations: the last d nodes of
// a path, or (for trees) up to d ancestors ending at the root along the
// deepest leaf's route. It is the shared default destination set of the
// randomized multi-destination patterns.
func SpreadDestinations(nw *network.Network, d int) []network.NodeID {
	if nw.IsPath() {
		n := nw.Len()
		if d < 1 {
			d = 1
		}
		if d >= n {
			d = n - 1
		}
		out := make([]network.NodeID, d)
		for k := 0; k < d; k++ {
			out[k] = network.NodeID(n - d + k)
		}
		return out
	}
	deepest := nw.Leaves()[0]
	for _, l := range nw.Leaves() {
		if nw.Depth(l) > nw.Depth(deepest) {
			deepest = l
		}
	}
	var out []network.NodeID
	for v := nw.Next(deepest); v != network.None; v = nw.Next(v) {
		out = append(out, v)
	}
	if len(out) > d && d > 0 {
		out = out[len(out)-d:]
	}
	return out
}

func registerAdversaries() {
	mustRegister(RegisterAdversary(Adversary{
		Name:   "random",
		Doc:    "shaped random pattern, (ρ,σ)-bounded by construction",
		Params: destSchema,
		Build: func(ctx AdversaryContext, p Params) (adversary.Adversary, error) {
			return adversary.NewRandom(ctx.Net, ctx.Bound, resolveDests(ctx.Net, p), ctx.Seed)
		},
	}))
	mustRegister(RegisterAdversary(Adversary{
		Name:   "hotspot",
		Doc:    "adaptive pattern aiming every admissible injection at the fullest buffer",
		Params: destSchema,
		Build: func(ctx AdversaryContext, p Params) (adversary.Adversary, error) {
			return adversary.NewHotSpot(ctx.Net, ctx.Bound, resolveDests(ctx.Net, p), ctx.Seed)
		},
	}))
	mustRegister(RegisterAdversary(Adversary{
		Name: "stream",
		Doc:  "smooth rate-ρ single-route stream src → dst",
		Params: Schema{
			{Name: "src", Kind: Int, Doc: "source node", Default: 0},
			{Name: "dst", Kind: Int, Doc: "destination node; −1 means the first sink", Default: -1},
		},
		Build: func(ctx AdversaryContext, p Params) (adversary.Adversary, error) {
			dst := network.NodeID(p.Int("dst"))
			if dst < 0 {
				dst = ctx.Net.Sinks()[0]
			}
			return adversary.NewStream(ctx.Bound, network.NodeID(p.Int("src")), dst), nil
		},
	}))
	mustRegister(RegisterAdversary(Adversary{
		Name: "roundrobin",
		Doc:  "smooth aggregate rate-ρ flow from src cycling the destinations",
		Params: append(Schema{
			{Name: "src", Kind: Int, Doc: "source node", Default: 0},
		}, destSchema...),
		Build: func(ctx AdversaryContext, p Params) (adversary.Adversary, error) {
			return adversary.NewRoundRobin(ctx.Bound, network.NodeID(p.Int("src")), resolveDests(ctx.Net, p)), nil
		},
	}))
	mustRegister(RegisterAdversary(Adversary{
		Name:   "burst",
		Doc:    "crafted near-tight burst for Propositions 3.1/3.2/3.5",
		Params: Schema{{Name: "d", Kind: Int, Doc: "destination count (paths; ≤ 1 targets PTS)", Default: 1}},
		Build: func(ctx AdversaryContext, p Params) (adversary.Adversary, error) {
			d := p.Int("d")
			if ctx.Net.IsPath() {
				if d <= 1 {
					return adversary.PTSBurst(ctx.Net, ctx.Bound, ctx.Rounds)
				}
				return adversary.PPTSBurst(ctx.Net, ctx.Bound, d, ctx.Rounds)
			}
			return adversary.TreeBurst(ctx.Net, ctx.Bound, nil, ctx.Rounds)
		},
	}))
	mustRegister(RegisterAdversary(Adversary{
		Name:   "greedykiller",
		Doc:    "multi-destination stress pattern of §1/[17]",
		Params: Schema{{Name: "d", Kind: Int, Doc: "destination count", Default: 4}},
		Build: func(ctx AdversaryContext, p Params) (adversary.Adversary, error) {
			return adversary.GreedyKiller(ctx.Net, ctx.Bound, p.Int("d"), ctx.Rounds)
		},
	}))
	mustRegister(RegisterAdversary(Adversary{
		Name: "lowerbound",
		Doc:  "the Section 5 construction; dictates its own topology, bound, and horizon",
		Params: Schema{
			{Name: "m", Kind: Int, Doc: "base m (phase length)", Default: 4},
			{Name: "ell", Kind: Int, Doc: "hierarchy depth ℓ", Default: 2},
		},
		Prepare: func(bound adversary.Bound, p Params) (*Prepared, error) {
			lb, err := lowerbound.New(p.Int("m"), p.Int("ell"), bound.Rho)
			if err != nil {
				return nil, err
			}
			nw, err := lb.Network()
			if err != nil {
				return nil, err
			}
			return &Prepared{
				Net:       nw,
				Adversary: lb,
				Bound:     lb.Bound(), // (ρ,1)-bounded regardless of the declared σ
				Rounds:    lb.Rounds(),
				Note:      fmt.Sprintf("Theorem 5.1 floor: max load ≥ ~%v", lb.PredictedBound()),
			}, nil
		},
	}))
}

func registerInvariants() {
	mustRegister(RegisterInvariant(Invariant{
		Name:   "max-load",
		Doc:    "every buffer stays at or below the given packet count",
		Params: Schema{{Name: "bound", Kind: Int, Doc: "maximum allowed buffer occupancy", Required: true}},
		Build: func(nw *network.Network, p Params) (sim.Invariant, error) {
			return core.MaxLoadInvariant(nw, p.Int("bound")), nil
		},
	}))
}

// seriesSchema is the bound shared by the series-producing collectors:
// cap downsampled points (stride-doubled over the whole run) plus an
// exact tail of the most recent rounds. Both are capped at
// maxSeriesParam — these params size allocations and scenarios arrive
// over the network (aqtserve), so an unbounded value would let one POST
// exhaust the daemon's memory.
const maxSeriesParam = 1 << 16

var seriesSchema = Schema{
	{Name: "cap", Kind: Int, Doc: "maximum downsampled points retained, ≤ 65536 (memory stays O(cap) at any horizon)", Default: 512},
	{Name: "tail", Kind: Int, Doc: "exact per-round tail length, ≤ 65536 (0 disables the tail)", Default: 64},
}

// seriesParams validates the shared series bounds.
func seriesParams(p Params) (capPoints, tail int, err error) {
	capPoints, tail = p.Int("cap"), p.Int("tail")
	if capPoints > maxSeriesParam || tail > maxSeriesParam {
		return 0, 0, fmt.Errorf("series cap/tail %d/%d exceed the %d limit", capPoints, tail, maxSeriesParam)
	}
	return capPoints, tail, nil
}

// windowSchema is the exact-window bound shared by the windowed
// collectors. Like cap/tail it sizes an allocation from
// network-supplied input, so it is capped at the same 2¹⁶ limit.
var windowSchema = Schema{
	{Name: "window", Kind: Int, Doc: "exact window length in rounds, 1..65536", Default: 64},
}

// windowParam validates the shared window bound.
func windowParam(p Params) (int, error) {
	win := p.Int("window")
	if win < 1 || win > maxSeriesParam {
		return 0, fmt.Errorf("window %d outside 1..%d", win, maxSeriesParam)
	}
	return win, nil
}

// optionalWindowSchema is the opt-in variant for collectors whose
// primary payload predates the windowed family: window defaults to 0
// (off), keeping the unwindowed summary — and every pinned corpus
// digest that selects these collectors — byte-identical.
var optionalWindowSchema = Schema{
	{Name: "window", Kind: Int, Doc: "exact recent-history window in rounds, 0..65536 (0 disables the window scalars)", Default: 0},
	{Name: "decay", Kind: Int, Doc: "per-round retention of the beyond-window decayed max, in permille 0..1000", Default: 990},
}

// optionalWindowParams validates the opt-in window bounds (window may
// be 0 = off, unlike windowParam).
func optionalWindowParams(p Params) (win, decay int, err error) {
	win = p.Int("window")
	if win < 0 || win > maxSeriesParam {
		return 0, 0, fmt.Errorf("window %d outside 0..%d", win, maxSeriesParam)
	}
	decay = p.Int("decay")
	if decay < 0 || decay > 1000 {
		return 0, 0, fmt.Errorf("decay %d outside the permille range 0..1000", decay)
	}
	return win, decay, nil
}

func registerMetrics() {
	mustRegister(RegisterMetric(Metric{
		Name: metrics.NameMaxLoad,
		Doc:  "the historical headline scalars: maximum visible/physical occupancy and its first node/round",
		Build: func(Params) (metrics.Collector, error) {
			return metrics.NewMaxLoad(), nil
		},
	}))
	mustRegister(RegisterMetric(Metric{
		Name:   metrics.NameLoadSeries,
		Doc:    "per-round max/total occupancy as a bounded series (stride-doubling + exact tail)",
		Params: seriesSchema,
		Build: func(p Params) (metrics.Collector, error) {
			capPoints, tail, err := seriesParams(p)
			if err != nil {
				return nil, err
			}
			return metrics.NewLoadSeries(capPoints, tail), nil
		},
	}))
	mustRegister(RegisterMetric(Metric{
		Name: metrics.NameLoadHist,
		Doc:  "occupancy distribution over all nodes and rounds at L_t (exact low buckets + log2 tail)",
		Build: func(Params) (metrics.Collector, error) {
			return metrics.NewLoadHist(), nil
		},
	}))
	mustRegister(RegisterMetric(Metric{
		Name:   metrics.NameLatency,
		Doc:    "delivery-latency distribution with p50/p90/p99/max; optional exact recent-latency window",
		Params: optionalWindowSchema,
		Build: func(p Params) (metrics.Collector, error) {
			win, decay, err := optionalWindowParams(p)
			if err != nil {
				return nil, err
			}
			return metrics.NewLatencyWindowed(win, decay), nil
		},
	}))
	mustRegister(RegisterMetric(Metric{
		Name:   metrics.NameLinkUtilSeries,
		Doc:    "packets forwarded per round as a bounded series, plus the busiest link by utilization; optional exact recent-forwards window",
		Params: append(append(Schema{}, seriesSchema...), optionalWindowSchema...),
		Build: func(p Params) (metrics.Collector, error) {
			capPoints, tail, err := seriesParams(p)
			if err != nil {
				return nil, err
			}
			win, decay, err := optionalWindowParams(p)
			if err != nil {
				return nil, err
			}
			return metrics.NewLinkUtilSeriesWindowed(capPoints, tail, win, decay), nil
		},
	}))
	mustRegister(RegisterMetric(Metric{
		Name:   metrics.NameDropRate,
		Doc:    "packets lost in transit by the fault model: totals, drop permille, per-round drop series",
		Params: seriesSchema,
		Build: func(p Params) (metrics.Collector, error) {
			capPoints, tail, err := seriesParams(p)
			if err != nil {
				return nil, err
			}
			return metrics.NewDropRate(capPoints, tail), nil
		},
	}))
	mustRegister(RegisterMetric(Metric{
		Name:   metrics.NameGoodput,
		Doc:    "delivered-versus-injected flow: exact totals, goodput permille, per-round bounded series of both",
		Params: seriesSchema,
		Build: func(p Params) (metrics.Collector, error) {
			capPoints, tail, err := seriesParams(p)
			if err != nil {
				return nil, err
			}
			return metrics.NewGoodput(capPoints, tail), nil
		},
	}))
	mustRegister(RegisterMetric(Metric{
		Name: metrics.NameDelivery,
		Doc:  "the packet ledger: delivered/dropped/in-flight counts that always sum to injected",
		Build: func(Params) (metrics.Collector, error) {
			return metrics.NewDelivery(), nil
		},
	}))
	mustRegister(RegisterMetric(Metric{
		Name: metrics.NameWindowLoad,
		Doc:  "recent occupancy: exact last-N-round max/mean/p99 plus an exponentially decayed max of older rounds",
		Params: append(append(Schema{}, windowSchema...), Param{
			Name: "decay", Kind: Int,
			Doc:     "per-round retention of the beyond-window decayed tail, in permille 0..1000",
			Default: 990,
		}),
		Build: func(p Params) (metrics.Collector, error) {
			win, err := windowParam(p)
			if err != nil {
				return nil, err
			}
			decay := p.Int("decay")
			if decay < 0 || decay > 1000 {
				return nil, fmt.Errorf("decay %d outside the permille range 0..1000", decay)
			}
			return metrics.NewWindowLoad(win, decay), nil
		},
	}))
	mustRegister(RegisterMetric(Metric{
		Name:   metrics.NameGoodputWindow,
		Doc:    "recent delivered-versus-injected flow: exact last-N-round counts and windowed goodput/drop permille",
		Params: windowSchema,
		Build: func(p Params) (metrics.Collector, error) {
			win, err := windowParam(p)
			if err != nil {
				return nil, err
			}
			return metrics.NewGoodputWindow(win), nil
		},
	}))
	mustRegister(RegisterMetric(Metric{
		Name: metrics.NameInjectionConcentration,
		Doc:  "adversary spatial profile via the OnInject hook: distinct sources and the hottest source's share",
		Build: func(Params) (metrics.Collector, error) {
			return metrics.NewInjectionConcentration(), nil
		},
	}))
}

// registerFaults registers the fault-injection models. Every parameter is
// bounded at build time — probabilities are exact rationals validated into
// [0, 1] and window lengths are capped at faults.MaxWindow (the same 2¹⁶
// limit as the series params) — because fault specs arrive over the
// network through aqtserve's POST /v1/runs.
func registerFaults() {
	mustRegister(RegisterFault(Fault{
		Name:   faults.DropName,
		Doc:    "each forwarded packet is lost in transit i.i.d. with probability p",
		Params: Schema{{Name: "p", Kind: RatKind, Doc: "drop probability in [0,1], e.g. \"1/20\"", Required: true}},
		Build: func(p Params) (faults.Model, error) {
			return faults.NewDrop(p.Rat("p"))
		},
	}))
	mustRegister(RegisterFault(Fault{
		Name: faults.LinkFlapName,
		Doc:  "transient link outages: per (link, window) a seeded coin p downs the link for the first `down` rounds of the window",
		Params: Schema{
			{Name: "p", Kind: RatKind, Doc: "per-window outage probability in [0,1]", Required: true},
			{Name: "period", Kind: Int, Doc: "window length in rounds, 1..65536", Default: 32},
			{Name: "down", Kind: Int, Doc: "outage length in rounds, 0..period", Default: 8},
		},
		Build: func(p Params) (faults.Model, error) {
			return faults.NewLinkFlap(p.Rat("p"), p.Int("period"), p.Int("down"))
		},
	}))
	mustRegister(RegisterFault(Fault{
		Name: faults.NodeCrashName,
		Doc:  "one node forwards nothing during rounds [at, at+for)",
		Params: Schema{
			{Name: "node", Kind: Int, Doc: "the crashing node", Required: true},
			{Name: "at", Kind: Int, Doc: "first silent round", Default: 0},
			{Name: "for", Kind: Int, Doc: "outage length in rounds, 0..65536", Default: 64},
		},
		Build: func(p Params) (faults.Model, error) {
			return faults.NewNodeCrash(network.NodeID(p.Int("node")), p.Int("at"), p.Int("for"))
		},
	}))
}
