// Package registry is the name-based component catalog behind the
// declarative scenario API: protocols, topologies, adversaries, greedy
// policies, and invariants register under stable names with typed
// parameter schemas, and scenario files (internal/scenario) resolve
// against it. The registry is the single source of truth for what a name
// means — the CLIs carry no per-command construction switches.
//
// All tables support runtime extension (the facade re-exports
// RegisterProtocol and friends), so downstream code can drop new
// components into the same scenario machinery: register a name once and
// every scenario file, sweep, and CLI invocation can use it.
//
// Lookups of unknown names fail with an enumeration of the registered
// names and a "did you mean" suggestion when a close match exists.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/baseline"
	"smallbuffers/internal/faults"
	"smallbuffers/internal/metrics"
	"smallbuffers/internal/network"
	"smallbuffers/internal/sim"
)

// Topology is a registered topology family: a named constructor with a
// parameter schema. Build receives resolved canonical params. Bandwidths
// are not a topology parameter — scenarios impose them uniformly on the
// built network (the harness's bandwidth axis), keeping "shape" and "link
// speed" independent axes.
type Topology struct {
	Name string
	Doc  string
	// Params declares the schema; Build receives values resolved against it.
	Params Schema
	Build  func(p Params) (*network.Network, error)
}

// Protocol is a registered forwarding protocol. Note, when non-nil,
// renders the paper's predicted-bound annotation for reports.
type Protocol struct {
	Name   string
	Doc    string
	Params Schema
	Build  func(p Params) (sim.Protocol, error)
	Note   func(p Params, bound adversary.Bound) string
}

// AdversaryContext carries the scenario-level inputs an adversary
// constructor may consume: the built topology, the declared (ρ,σ) bound,
// the cell's seed, and the run horizon (crafted bursts size themselves to
// it).
type AdversaryContext struct {
	Net    *network.Network
	Bound  adversary.Bound
	Seed   int64
	Rounds int
}

// Prepared is the output of a self-hosting adversary (see
// Adversary.Prepare): the pattern dictates its own topology, bound, and
// horizon.
type Prepared struct {
	Net       *network.Network
	Adversary adversary.Adversary
	Bound     adversary.Bound
	Rounds    int
	// Note annotates reports (e.g. the Theorem 5.1 floor).
	Note string
}

// Adversary is a registered injection pattern. Exactly one of Build or
// Prepare is set: Build constructs a pattern for a scenario-chosen
// topology and horizon; Prepare marks a self-hosting construction (the
// Section 5 lower bound) that dictates topology, bound, and horizon
// itself — scenarios using it declare no topology or rounds.
type Adversary struct {
	Name    string
	Doc     string
	Params  Schema
	Build   func(ctx AdversaryContext, p Params) (adversary.Adversary, error)
	Prepare func(bound adversary.Bound, p Params) (*Prepared, error)
}

// SelfHosting reports whether the pattern dictates its own topology and
// horizon.
func (a Adversary) SelfHosting() bool { return a.Prepare != nil }

// Policy is a registered greedy scheduling policy (the intra-buffer order
// of the classical baselines).
type Policy struct {
	Name   string
	Doc    string
	Policy baseline.Policy
}

// Invariant is a registered per-round predicate; scenarios attach them by
// name to turn the paper's bound statements into executable checks.
type Invariant struct {
	Name   string
	Doc    string
	Params Schema
	Build  func(nw *network.Network, p Params) (sim.Invariant, error)
}

// Metric is a registered measurement collector: scenarios select metrics
// by name (the "metrics" axis) and every selected run gets a fresh
// collector instance, whose Summary rides Result.Metrics, cell records,
// and result digests. Build must return a new collector per call —
// collectors are stateful and single-run.
type Metric struct {
	Name   string
	Doc    string
	Params Schema
	Build  func(p Params) (metrics.Collector, error)
}

// Fault is a registered fault-injection model: scenarios attach one by
// name (the "faults" axis) and every faulted run gets a fresh model
// instance, bound to the run's topology and derived seed via Model.Reset
// before the engine starts. Build must validate its parameters against
// the registry-side bounds (probabilities in [0,1], window lengths
// capped) — fault params arrive over the network through aqtserve, so a
// hostile scenario must not be able to request degenerate schedules.
type Fault struct {
	Name   string
	Doc    string
	Params Schema
	Build  func(p Params) (faults.Model, error)
}

// table is one mutex-guarded name→entry catalog.
type table[T any] struct {
	kind    string
	mu      sync.RWMutex
	entries map[string]T
}

func newTable[T any](kind string) *table[T] {
	return &table[T]{kind: kind, entries: make(map[string]T)}
}

func (t *table[T]) register(name string, e T) error {
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("registry: %s with empty name", t.kind)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.entries[name]; dup {
		return fmt.Errorf("registry: duplicate %s %q", t.kind, name)
	}
	t.entries[name] = e
	return nil
}

func (t *table[T]) lookup(name string) (T, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if e, ok := t.entries[name]; ok {
		return e, nil
	}
	var zero T
	return zero, fmt.Errorf("registry: unknown %s %q%s (registered: %s)",
		t.kind, name, didYouMean(name, t.namesLocked()), strings.Join(t.namesLocked(), ", "))
}

func (t *table[T]) names() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.namesLocked()
}

func (t *table[T]) namesLocked() []string {
	out := make([]string, 0, len(t.entries))
	for n := range t.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

var (
	topologies  = newTable[Topology]("topology")
	protocols   = newTable[Protocol]("protocol")
	adversaries = newTable[Adversary]("adversary")
	policies    = newTable[Policy]("greedy policy")
	invariants  = newTable[Invariant]("invariant")
	metricsTbl  = newTable[Metric]("metric")
	faultsTbl   = newTable[Fault]("fault model")
)

// RegisterTopology adds a topology family under its name; duplicate names
// are rejected.
func RegisterTopology(t Topology) error { return topologies.register(t.Name, t) }

// RegisterProtocol adds a forwarding protocol under its name.
func RegisterProtocol(p Protocol) error {
	if p.Build == nil {
		return fmt.Errorf("registry: protocol %q has no Build", p.Name)
	}
	return protocols.register(p.Name, p)
}

// RegisterAdversary adds an injection pattern under its name; exactly one
// of Build and Prepare must be set.
func RegisterAdversary(a Adversary) error {
	if (a.Build == nil) == (a.Prepare == nil) {
		return fmt.Errorf("registry: adversary %q must set exactly one of Build and Prepare", a.Name)
	}
	return adversaries.register(a.Name, a)
}

// RegisterPolicy adds a greedy policy under its name.
func RegisterPolicy(p Policy) error { return policies.register(p.Name, p) }

// RegisterInvariant adds a named per-round predicate.
func RegisterInvariant(i Invariant) error { return invariants.register(i.Name, i) }

// RegisterMetric adds a measurement collector under its name.
func RegisterMetric(m Metric) error {
	if m.Build == nil {
		return fmt.Errorf("registry: metric %q has no Build", m.Name)
	}
	return metricsTbl.register(m.Name, m)
}

// RegisterFault adds a fault-injection model under its name.
func RegisterFault(f Fault) error {
	if f.Build == nil {
		return fmt.Errorf("registry: fault model %q has no Build", f.Name)
	}
	return faultsTbl.register(f.Name, f)
}

// LookupTopology resolves a topology by name.
func LookupTopology(name string) (Topology, error) { return topologies.lookup(name) }

// LookupProtocol resolves a protocol by name.
func LookupProtocol(name string) (Protocol, error) { return protocols.lookup(name) }

// LookupAdversary resolves an adversary by name.
func LookupAdversary(name string) (Adversary, error) { return adversaries.lookup(name) }

// LookupPolicy resolves a greedy policy by name.
func LookupPolicy(name string) (Policy, error) { return policies.lookup(name) }

// LookupInvariant resolves an invariant by name.
func LookupInvariant(name string) (Invariant, error) { return invariants.lookup(name) }

// LookupMetric resolves a measurement collector by name.
func LookupMetric(name string) (Metric, error) { return metricsTbl.lookup(name) }

// LookupFault resolves a fault model by name.
func LookupFault(name string) (Fault, error) { return faultsTbl.lookup(name) }

// TopologyNames enumerates the registered topology names, sorted.
func TopologyNames() []string { return topologies.names() }

// ProtocolNames enumerates the registered protocol names, sorted.
func ProtocolNames() []string { return protocols.names() }

// AdversaryNames enumerates the registered adversary names, sorted.
func AdversaryNames() []string { return adversaries.names() }

// PolicyNames enumerates the registered greedy policy names, sorted.
func PolicyNames() []string { return policies.names() }

// InvariantNames enumerates the registered invariant names, sorted.
func InvariantNames() []string { return invariants.names() }

// MetricNames enumerates the registered metric names, sorted.
func MetricNames() []string { return metricsTbl.names() }

// FaultNames enumerates the registered fault model names, sorted.
func FaultNames() []string { return faultsTbl.names() }

// mustRegister panics on registration errors; built-in registration runs
// at init time where a failure is a programming error.
func mustRegister(err error) {
	if err != nil {
		panic(err)
	}
}
