package registry

import (
	"encoding/json"
	"testing"
)

func TestCatalogCoversRegistry(t *testing.T) {
	c := Catalog()
	if len(c.Topologies) != len(TopologyNames()) {
		t.Errorf("catalog lists %d topologies, registry has %d", len(c.Topologies), len(TopologyNames()))
	}
	if len(c.Protocols) != len(ProtocolNames()) {
		t.Errorf("catalog lists %d protocols, registry has %d", len(c.Protocols), len(ProtocolNames()))
	}
	if len(c.Adversaries) != len(AdversaryNames()) {
		t.Errorf("catalog lists %d adversaries, registry has %d", len(c.Adversaries), len(AdversaryNames()))
	}
	if len(c.Invariants) != len(InvariantNames()) {
		t.Errorf("catalog lists %d invariants, registry has %d", len(c.Invariants), len(InvariantNames()))
	}
	if len(c.Metrics) != len(MetricNames()) {
		t.Errorf("catalog lists %d metrics, registry has %d", len(c.Metrics), len(MetricNames()))
	}
	for i := 1; i < len(c.Protocols); i++ {
		if c.Protocols[i-1].Name >= c.Protocols[i].Name {
			t.Errorf("protocols not sorted: %q before %q", c.Protocols[i-1].Name, c.Protocols[i].Name)
		}
	}
}

func TestCatalogEntryDetail(t *testing.T) {
	c := Catalog()
	var path *EntryDesc
	for i := range c.Topologies {
		if c.Topologies[i].Name == "path" {
			path = &c.Topologies[i]
		}
	}
	if path == nil {
		t.Fatal("catalog misses the path topology")
	}
	if len(path.Params) != 1 || path.Params[0].Name != "n" || path.Params[0].Kind != "int" {
		t.Errorf("path params wrong: %+v", path.Params)
	}
	if path.Params[0].Default != 64 {
		t.Errorf("path n default = %v, want 64", path.Params[0].Default)
	}

	var lb *EntryDesc
	for i := range c.Adversaries {
		if c.Adversaries[i].Name == "lowerbound" {
			lb = &c.Adversaries[i]
		}
	}
	if lb == nil {
		t.Fatal("catalog misses the lowerbound adversary")
	}
	if !lb.SelfHosting {
		t.Error("lowerbound not marked self-hosting")
	}
}

// The catalog is what /v1/registry serves: it must survive a JSON round
// trip without loss (no unmarshalable defaults such as raw rat.Rat).
func TestCatalogSerializable(t *testing.T) {
	data, err := json.Marshal(Catalog())
	if err != nil {
		t.Fatal(err)
	}
	var back CatalogDesc
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Protocols) != len(Catalog().Protocols) {
		t.Error("catalog lost protocols in the JSON round trip")
	}
}
