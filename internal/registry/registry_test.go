package registry

import (
	"strings"
	"testing"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
)

func TestBuiltinCatalog(t *testing.T) {
	wantTopos := []string{"binary", "caterpillar", "path", "spider"}
	if got := TopologyNames(); strings.Join(got, ",") != strings.Join(wantTopos, ",") {
		t.Errorf("topologies = %v, want %v", got, wantTopos)
	}
	for _, name := range []string{"pts", "ppts", "tree-pts", "tree-ppts", "hpts", "downhill", "oddeven",
		"greedy-fifo", "greedy-lifo", "greedy-lis", "greedy-sis", "greedy-ntg", "greedy-ftg"} {
		if _, err := LookupProtocol(name); err != nil {
			t.Errorf("LookupProtocol(%q): %v", name, err)
		}
	}
	for _, name := range []string{"random", "hotspot", "stream", "roundrobin", "burst", "greedykiller", "lowerbound"} {
		if _, err := LookupAdversary(name); err != nil {
			t.Errorf("LookupAdversary(%q): %v", name, err)
		}
	}
	if len(PolicyNames()) != 6 {
		t.Errorf("PolicyNames() = %v, want 6 policies", PolicyNames())
	}
	if _, err := LookupInvariant("max-load"); err != nil {
		t.Errorf("LookupInvariant(max-load): %v", err)
	}
	wantMetrics := []string{"delivery", "drop_rate", "goodput", "goodput_window",
		"injection_concentration", "latency", "link_util_series", "load_hist",
		"load_series", "max_load", "window_load"}
	if got := MetricNames(); strings.Join(got, ",") != strings.Join(wantMetrics, ",") {
		t.Errorf("metrics = %v, want %v", got, wantMetrics)
	}
	m, err := LookupMetric("load_series")
	if err != nil {
		t.Fatalf("LookupMetric(load_series): %v", err)
	}
	p, err := m.Params.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c, err := m.Build(p); err != nil || c.Name() != "load_series" {
		t.Errorf("Build(load_series) = %v, %v", c, err)
	}
	// cap/tail size allocations and arrive over the network: oversized
	// values must be rejected, not allocated.
	huge, err := m.Params.Resolve(map[string]any{"tail": 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Build(huge); err == nil {
		t.Error("Build accepted a 2^30-round tail")
	}
}

func TestLookupDidYouMean(t *testing.T) {
	_, err := LookupProtocol("ptss")
	if err == nil {
		t.Fatal("want error for unknown protocol")
	}
	for _, want := range []string{`did you mean "pts"?`, "registered:"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	// Far-off names get the enumeration but no suggestion.
	_, err = LookupTopology("zzzzzzz")
	if err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Errorf("want suggestion-free error, got %v", err)
	}
}

func TestSchemaResolve(t *testing.T) {
	s := Schema{
		{Name: "n", Kind: Int, Default: 64},
		{Name: "drain", Kind: Bool, Default: false},
		{Name: "rho", Kind: RatKind, Default: rat.One},
		{Name: "dests", Kind: Ints, Default: []int(nil)},
	}

	t.Run("defaults fill omitted params", func(t *testing.T) {
		p, err := s.Resolve(nil)
		if err != nil {
			t.Fatal(err)
		}
		if p.Int("n") != 64 || p.Bool("drain") || !p.Rat("rho").Equal(rat.One) {
			t.Errorf("defaults not applied: %v", p)
		}
	})

	t.Run("JSON-decoded values coerce", func(t *testing.T) {
		p, err := s.Resolve(map[string]any{
			"n": float64(16), "drain": true, "rho": "1/2", "dests": []any{float64(3), float64(5)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if p.Int("n") != 16 || !p.Bool("drain") || !p.Rat("rho").Equal(rat.New(1, 2)) {
			t.Errorf("coercion wrong: %v", p)
		}
		if d := p.Ints("dests"); len(d) != 2 || d[0] != 3 || d[1] != 5 {
			t.Errorf("dests = %v", d)
		}
	})

	t.Run("integral rats accepted, canonicalized", func(t *testing.T) {
		p, err := s.Resolve(map[string]any{"rho": float64(2)})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Rat("rho").Equal(rat.FromInt(2)) {
			t.Errorf("rho = %v", p.Rat("rho"))
		}
	})

	t.Run("unknown param suggests", func(t *testing.T) {
		_, err := s.Resolve(map[string]any{"drian": true})
		if err == nil || !strings.Contains(err.Error(), `did you mean "drain"?`) {
			t.Errorf("got %v", err)
		}
	})

	t.Run("fractional float rejected for int", func(t *testing.T) {
		if _, err := s.Resolve(map[string]any{"n": 1.5}); err == nil {
			t.Error("want error for fractional int")
		}
	})

	t.Run("bad rat rejected", func(t *testing.T) {
		if _, err := s.Resolve(map[string]any{"rho": "1/0"}); err == nil {
			t.Error("want error for 1/0")
		}
	})

	t.Run("required param enforced", func(t *testing.T) {
		req := Schema{{Name: "bound", Kind: Int, Required: true}}
		if _, err := req.Resolve(nil); err == nil || !strings.Contains(err.Error(), "required") {
			t.Errorf("got %v", err)
		}
	})
}

func TestParamsJSONMapCanonicalizesRats(t *testing.T) {
	p := Params{"rho": rat.New(2, 4), "n": 8, "drain": true}
	m := p.JSONMap()
	if m["rho"] != "1/2" {
		t.Errorf("rho marshals as %v, want \"1/2\"", m["rho"])
	}
	if m["n"] != 8 || m["drain"] != true {
		t.Errorf("m = %v", m)
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := RegisterProtocol(Protocol{Name: "pts", Build: func(Params) (sim.Protocol, error) { return nil, nil }}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := RegisterProtocol(Protocol{Name: "no-build"}); err == nil {
		t.Error("Build-less protocol accepted")
	}
	if err := RegisterAdversary(Adversary{Name: "neither"}); err == nil {
		t.Error("adversary with neither Build nor Prepare accepted")
	}
	if err := RegisterTopology(Topology{Name: "  "}); err == nil {
		t.Error("blank name accepted")
	}
}

func TestSpreadDestinations(t *testing.T) {
	path := network.MustPath(8)
	d := SpreadDestinations(path, 3)
	if len(d) != 3 || d[0] != 5 || d[2] != 7 {
		t.Errorf("path dests = %v", d)
	}
	// Oversized d clamps to n−1.
	if got := SpreadDestinations(path, 99); len(got) != 7 {
		t.Errorf("clamped dests = %v", got)
	}
	spider, err := network.SpiderTree(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	td := SpreadDestinations(spider, 2)
	if len(td) == 0 {
		t.Error("tree destinations empty")
	}
	for _, v := range td {
		if !spider.Valid(v) {
			t.Errorf("invalid destination %d", v)
		}
	}
}

func TestLowerboundPrepare(t *testing.T) {
	adv, err := LookupAdversary("lowerbound")
	if err != nil {
		t.Fatal(err)
	}
	if !adv.SelfHosting() {
		t.Fatal("lowerbound must be self-hosting")
	}
	p, err := adv.Params.Resolve(map[string]any{"m": 4, "ell": 2})
	if err != nil {
		t.Fatal(err)
	}
	prep, err := adv.Prepare(adversary.Bound{Rho: rat.New(3, 4), Sigma: 99}, p)
	if err != nil {
		t.Fatal(err)
	}
	if prep.Bound.Sigma != 1 {
		t.Errorf("lowerbound σ = %d, want the construction's 1", prep.Bound.Sigma)
	}
	if prep.Rounds != 64 { // m^(ℓ+1)
		t.Errorf("rounds = %d, want 64", prep.Rounds)
	}
	if prep.Net == nil || prep.Adversary == nil || prep.Note == "" {
		t.Error("incomplete Prepared")
	}
}

// TestWindowParamsBounded pins that the windowed collectors' window and
// decay params — network-supplied via aqtserve — are validated at build
// time.
func TestWindowParamsBounded(t *testing.T) {
	m, err := LookupMetric("window_load")
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Params.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c, err := m.Build(p); err != nil || c.Name() != "window_load" {
		t.Fatalf("Build(window_load) = %v, %v", c, err)
	}
	for _, bad := range []map[string]any{
		{"window": 1 << 30},
		{"window": 0},
		{"decay": 1001},
		{"decay": -1},
	} {
		p, err := m.Params.Resolve(bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Build(p); err == nil {
			t.Errorf("Build accepted %v", bad)
		}
	}
	gw, err := LookupMetric("goodput_window")
	if err != nil {
		t.Fatal(err)
	}
	p, err = gw.Params.Resolve(map[string]any{"window": 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Build(p); err == nil {
		t.Error("goodput_window accepted a 2^20-round window")
	}
}

// TestOptionalWindowParamsBounded covers the opt-in windows on latency
// and link_util_series: window 0 (the default) is off and legal, the
// same 2^16 / permille ceilings apply, and the unwindowed defaults
// still build.
func TestOptionalWindowParamsBounded(t *testing.T) {
	for _, name := range []string{"latency", "link_util_series"} {
		m, err := LookupMetric(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.Params.Resolve(nil)
		if err != nil {
			t.Fatal(err)
		}
		if c, err := m.Build(p); err != nil || c.Name() != name {
			t.Fatalf("Build(%s) with defaults = %v, %v", name, c, err)
		}
		p, err = m.Params.Resolve(map[string]any{"window": 64, "decay": 500})
		if err != nil {
			t.Fatal(err)
		}
		if c, err := m.Build(p); err != nil || c.Name() != name {
			t.Fatalf("Build(%s) windowed = %v, %v", name, c, err)
		}
		for _, bad := range []map[string]any{
			{"window": 1 << 30},
			{"window": -1},
			{"decay": 1001},
			{"decay": -1},
		} {
			p, err := m.Params.Resolve(bad)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Build(p); err == nil {
				t.Errorf("%s accepted %v", name, bad)
			}
		}
	}
}
