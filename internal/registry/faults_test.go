package registry

import (
	"strings"
	"testing"
)

func TestBuiltinFaultCatalog(t *testing.T) {
	want := []string{"drop", "link_flap", "node_crash"}
	if got := FaultNames(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("faults = %v, want %v", got, want)
	}
	f, err := LookupFault("drop")
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Params.Resolve(map[string]any{"p": "1/20"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := f.Build(p)
	if err != nil || m.Name() != "drop" {
		t.Fatalf("Build(drop) = %v, %v", m, err)
	}
	if _, err := f.Params.Resolve(nil); err == nil {
		t.Error("drop accepted a missing required p")
	}
	c := Catalog()
	if len(c.Faults) != 3 {
		t.Errorf("Catalog().Faults has %d entries, want 3", len(c.Faults))
	}
}

// TestFaultParamsBounded is the hardening gate: fault params arrive over
// the network through aqtserve, so probabilities outside [0,1] and
// degenerate window lengths must fail at Build, before anything runs.
func TestFaultParamsBounded(t *testing.T) {
	cases := []struct {
		fault  string
		params map[string]any
	}{
		{"drop", map[string]any{"p": "3/2"}},
		{"drop", map[string]any{"p": "-1/100"}},
		{"link_flap", map[string]any{"p": "2"}},
		{"link_flap", map[string]any{"p": "1/2", "period": 0}},
		{"link_flap", map[string]any{"p": "1/2", "period": 1 << 20}},
		{"link_flap", map[string]any{"p": "1/2", "period": 8, "down": 9}},
		{"node_crash", map[string]any{"node": 0, "at": -1}},
		{"node_crash", map[string]any{"node": 0, "for": 1 << 20}},
	}
	for _, tc := range cases {
		f, err := LookupFault(tc.fault)
		if err != nil {
			t.Fatal(err)
		}
		p, err := f.Params.Resolve(tc.params)
		if err != nil {
			continue // rejected at coercion is fine too
		}
		if _, err := f.Build(p); err == nil {
			t.Errorf("%s accepted degenerate params %v", tc.fault, tc.params)
		}
	}
}
