package registry

import (
	"smallbuffers/internal/rat"
)

// ParamDesc is the serializable description of one schema parameter, as
// exposed by the service tier's /v1/registry endpoint: the name, the kind
// rendered as its schema string ("int", "bool", "rat", "[]int",
// "string"), and the canonical default (rationals as exact strings).
type ParamDesc struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Doc      string `json:"doc,omitempty"`
	Default  any    `json:"default,omitempty"`
	Required bool   `json:"required,omitempty"`
}

// EntryDesc is the serializable description of one registered component.
type EntryDesc struct {
	Name string `json:"name"`
	Doc  string `json:"doc,omitempty"`
	// SelfHosting marks adversaries that dictate their own topology,
	// bound, and horizon (scenarios using them declare no topology or
	// rounds).
	SelfHosting bool        `json:"self_hosting,omitempty"`
	Params      []ParamDesc `json:"params,omitempty"`
}

// CatalogDesc is the full component catalog in serializable form: every
// registered topology, protocol, adversary, greedy policy, and invariant
// with its parameter schema. It is the single document a remote client
// needs to author valid scenarios against a running service.
type CatalogDesc struct {
	Topologies  []EntryDesc `json:"topologies"`
	Protocols   []EntryDesc `json:"protocols"`
	Adversaries []EntryDesc `json:"adversaries"`
	Policies    []EntryDesc `json:"policies"`
	Invariants  []EntryDesc `json:"invariants"`
	Metrics     []EntryDesc `json:"metrics"`
	Faults      []EntryDesc `json:"faults"`
}

// Catalog snapshots the registry in serializable form, every section
// sorted by name. Runtime-registered components are included, so a
// service restarted after extension advertises the extended catalog.
func Catalog() CatalogDesc {
	var c CatalogDesc
	for _, name := range TopologyNames() {
		e, err := LookupTopology(name)
		if err != nil {
			continue // raced with a concurrent registration; skip
		}
		c.Topologies = append(c.Topologies, EntryDesc{Name: e.Name, Doc: e.Doc, Params: describeSchema(e.Params)})
	}
	for _, name := range ProtocolNames() {
		e, err := LookupProtocol(name)
		if err != nil {
			continue
		}
		c.Protocols = append(c.Protocols, EntryDesc{Name: e.Name, Doc: e.Doc, Params: describeSchema(e.Params)})
	}
	for _, name := range AdversaryNames() {
		e, err := LookupAdversary(name)
		if err != nil {
			continue
		}
		c.Adversaries = append(c.Adversaries, EntryDesc{
			Name: e.Name, Doc: e.Doc, SelfHosting: e.SelfHosting(), Params: describeSchema(e.Params),
		})
	}
	for _, name := range PolicyNames() {
		e, err := LookupPolicy(name)
		if err != nil {
			continue
		}
		c.Policies = append(c.Policies, EntryDesc{Name: e.Name, Doc: e.Doc})
	}
	for _, name := range InvariantNames() {
		e, err := LookupInvariant(name)
		if err != nil {
			continue
		}
		c.Invariants = append(c.Invariants, EntryDesc{Name: e.Name, Doc: e.Doc, Params: describeSchema(e.Params)})
	}
	for _, name := range MetricNames() {
		e, err := LookupMetric(name)
		if err != nil {
			continue
		}
		c.Metrics = append(c.Metrics, EntryDesc{Name: e.Name, Doc: e.Doc, Params: describeSchema(e.Params)})
	}
	for _, name := range FaultNames() {
		e, err := LookupFault(name)
		if err != nil {
			continue
		}
		c.Faults = append(c.Faults, EntryDesc{Name: e.Name, Doc: e.Doc, Params: describeSchema(e.Params)})
	}
	return c
}

// describeSchema renders a schema's parameters with canonical JSON
// defaults.
func describeSchema(s Schema) []ParamDesc {
	if len(s) == 0 {
		return nil
	}
	out := make([]ParamDesc, len(s))
	for i, p := range s {
		out[i] = ParamDesc{
			Name:     p.Name,
			Kind:     p.Kind.String(),
			Doc:      p.Doc,
			Required: p.Required,
		}
		if !p.Required {
			out[i].Default = canonicalDefault(p.Default)
		}
	}
	return out
}

// canonicalDefault renders a schema default in canonical JSON form:
// rationals as exact strings, empty lists omitted.
func canonicalDefault(v any) any {
	switch x := v.(type) {
	case rat.Rat:
		return x.String()
	case []int:
		if len(x) == 0 {
			return nil
		}
		return x
	default:
		return v
	}
}
