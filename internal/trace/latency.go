package trace

import (
	"smallbuffers/internal/sim"
	"smallbuffers/internal/stats"
)

// LatencyRecorder is an engine observer that collects per-packet delivery
// latencies (delivery round − injection round) into a summary with
// percentiles — finer-grained than the engine Result's total/max.
type LatencyRecorder struct {
	sim.NopObserver
	summary stats.Summary
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder { return &LatencyRecorder{} }

// OnForward implements sim.Observer.
func (l *LatencyRecorder) OnForward(round int, moves []sim.Move) {
	for _, m := range moves {
		if m.Delivered {
			l.summary.AddInt(round - m.Pkt.Inject)
		}
	}
}

// Summary returns the collected latency distribution.
func (l *LatencyRecorder) Summary() *stats.Summary { return &l.summary }

// P returns the p-th latency percentile (0 for an empty recorder).
func (l *LatencyRecorder) P(p float64) float64 { return l.summary.Percentile(p) }

// Count returns the number of recorded deliveries.
func (l *LatencyRecorder) Count() int { return l.summary.Count }
