package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/baseline"
	"smallbuffers/internal/core"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
)

func recordRun(t *testing.T, rounds int) *Recorder {
	t.Helper()
	nw := network.MustPath(8)
	adv := adversary.NewStream(adversary.Bound{Rho: rat.One, Sigma: 0}, 0, 7)
	rec := NewRecorder()
	_, err := sim.Run(context.Background(), sim.NewSpec(nw, baseline.NewGreedy(baseline.FIFO{}), adv, rounds,
		sim.WithObservers(rec)))
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRecorderCaptures(t *testing.T) {
	rec := recordRun(t, 20)
	if len(rec.Loads) != 20 {
		t.Errorf("Loads rows = %d, want 20", len(rec.Loads))
	}
	kinds := make(map[string]int)
	for _, e := range rec.Events {
		kinds[e.Kind]++
	}
	if kinds["inject"] != 20 {
		t.Errorf("inject events = %d, want 20", kinds["inject"])
	}
	if kinds["deliver"] == 0 {
		t.Error("no deliveries recorded")
	}
	if kinds["forward"] == 0 {
		t.Error("no forwards recorded")
	}
}

func TestRecorderEventsOptional(t *testing.T) {
	nw := network.MustPath(4)
	adv := adversary.NewStream(adversary.Bound{Rho: rat.One, Sigma: 0}, 0, 3)
	rec := &Recorder{CaptureEvents: false}
	if _, err := sim.Run(context.Background(), sim.NewSpec(nw, baseline.NewGreedy(baseline.FIFO{}), adv, 10,
		sim.WithObservers(rec))); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != 0 {
		t.Errorf("events captured despite CaptureEvents=false: %d", len(rec.Events))
	}
	if len(rec.Loads) != 10 {
		t.Errorf("loads not captured: %d", len(rec.Loads))
	}
}

func TestWriteJSON(t *testing.T) {
	rec := recordRun(t, 5)
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Events []Event `json:"events"`
		Loads  [][]int `json:"loads"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.Loads) != 5 {
		t.Errorf("JSON loads = %d, want 5", len(doc.Loads))
	}
}

func TestRenderHeatmap(t *testing.T) {
	rec := recordRun(t, 100)
	var buf bytes.Buffer
	if err := rec.RenderHeatmap(&buf, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "occupancy heatmap") {
		t.Error("missing header")
	}
	lines := strings.Count(out, "\n")
	if lines > 13 {
		t.Errorf("heatmap not subsampled: %d lines", lines)
	}
	empty := &Recorder{}
	buf.Reset()
	if err := empty.RenderHeatmap(&buf, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no rounds") {
		t.Error("empty recorder message missing")
	}
}

func TestMaxLoadSeriesAndSparkline(t *testing.T) {
	rec := recordRun(t, 30)
	series := rec.MaxLoadSeries()
	if len(series) != 30 {
		t.Fatalf("series = %d", len(series))
	}
	var buf bytes.Buffer
	if err := RenderSparkline(&buf, series, 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "max load per round") {
		t.Error("sparkline header missing")
	}
	buf.Reset()
	if err := RenderSparkline(&buf, nil, 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty series") {
		t.Error("empty series message missing")
	}
	buf.Reset()
	if err := RenderSparkline(&buf, []int{0, 0, 0}, 20); err != nil {
		t.Fatal(err) // zero max must not divide by zero
	}
}

func TestRenderFigure1MatchesPaper(t *testing.T) {
	h, err := core.NewHierarchy(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderFigure1(&buf, h, 0, 13); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"n = 16, m = 2, ℓ = 4",
		"j=3", "j=0",
		"0000", "1101", "1111",
		"virtual trajectory of a packet 0 → 13",
		"lv=3", "lv=2", "lv=0",
		"segment [0,8]", "segment [8,12]", "segment [12,13]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "lv=1") {
		t.Error("figure shows a level-1 segment; 0→13 must skip level 1")
	}
}

func TestRenderFigure1NoTrajectory(t *testing.T) {
	h, err := core.NewHierarchy(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderFigure1(&buf, h, -1, -1); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "virtual trajectory") {
		t.Error("trajectory rendered despite being omitted")
	}
}
