package trace

import (
	"context"
	"testing"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/baseline"
	"smallbuffers/internal/network"
	"smallbuffers/internal/rat"
	"smallbuffers/internal/sim"
)

func TestLatencyRecorder(t *testing.T) {
	nw := network.MustPath(6)
	adv := adversary.NewStream(adversary.Bound{Rho: rat.One, Sigma: 0}, 0, 5)
	lat := NewLatencyRecorder()
	res, err := sim.Run(context.Background(), sim.NewSpec(nw, baseline.NewGreedy(baseline.FIFO{}), adv, 50,
		sim.WithObservers(lat)))
	if err != nil {
		t.Fatal(err)
	}
	if lat.Count() != res.Delivered {
		t.Errorf("recorded %d deliveries, result says %d", lat.Count(), res.Delivered)
	}
	// A clean rate-1 pipeline delivers every packet in exactly 4 rounds
	// (first forward happens in the injection round).
	if got := lat.P(50); got != 4 {
		t.Errorf("p50 latency = %v, want 4", got)
	}
	if got := lat.P(100); got != float64(res.MaxLatency) {
		t.Errorf("p100 = %v, max = %d", got, res.MaxLatency)
	}
	if s := lat.Summary(); s.Mean != 4 {
		t.Errorf("mean = %v, want 4", s.Mean)
	}
}

func TestLatencyRecorderEmpty(t *testing.T) {
	lat := NewLatencyRecorder()
	if lat.Count() != 0 || lat.P(50) != 0 {
		t.Error("empty recorder not zero")
	}
}
