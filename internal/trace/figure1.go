package trace

import (
	"fmt"
	"io"
	"strings"

	"smallbuffers/internal/core"
)

// RenderFigure1 reproduces Figure 1 of the paper for an arbitrary
// hierarchy: one row per level (top = highest), with boxes marking the
// level's intervals, plus the base-m digit labels of every node. If
// 0 ≤ src < dst < n, the virtual trajectory of a packet src→dst is drawn
// underneath: for each of its segments, the covered span at the segment's
// level.
//
// For m=2, ℓ=4, src=0, dst=13 the output matches the paper's figure: the
// 16-node line, rows j = 3..0, and a trajectory descending through levels
// 3, 2, 0.
func RenderFigure1(w io.Writer, h *core.Hierarchy, src, dst int) error {
	n := h.N()
	cell := len(fmt.Sprintf("%d", n-1)) // width of a node label
	if digits := h.Levels(); digits > cell {
		cell = digits
	}
	cellW := cell + 1 // one space of padding

	header := fmt.Sprintf("Hierarchical partition: n = %d, m = %d, ℓ = %d", n, h.M(), h.Levels())
	if _, err := fmt.Fprintf(w, "%s\n%s\n", header, strings.Repeat("=", len(header))); err != nil {
		return err
	}

	// Interval rows, top level first.
	for j := h.Levels() - 1; j >= 0; j-- {
		var sb strings.Builder
		sb.WriteString(fmt.Sprintf("j=%d  ", j))
		for r := 0; r < h.IntervalCount(j); r++ {
			lo, hi := h.Interval(j, r)
			span := (hi - lo + 1) * cellW
			label := fmt.Sprintf("I%d,%d", j, r)
			if len(label)+2 > span {
				label = ""
			}
			pad := span - 2 - len(label)
			sb.WriteString("[" + label + strings.Repeat("-", pad) + "]")
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}

	// Node digit labels.
	var nodes strings.Builder
	nodes.WriteString("node ")
	for i := 0; i < n; i++ {
		digits := make([]byte, h.Levels())
		for j := 0; j < h.Levels(); j++ {
			digits[h.Levels()-1-j] = byte('0' + h.Digit(i, j))
		}
		label := string(digits)
		nodes.WriteString(fmt.Sprintf("%-*s", cellW, label))
	}
	if _, err := fmt.Fprintln(w, nodes.String()); err != nil {
		return err
	}

	// Virtual trajectory.
	if src >= 0 && dst > src && dst < n {
		if _, err := fmt.Fprintf(w, "\nvirtual trajectory of a packet %d → %d:\n", src, dst); err != nil {
			return err
		}
		for _, seg := range h.Segments(src, dst) {
			var sb strings.Builder
			sb.WriteString(fmt.Sprintf("lv=%d ", seg.Level))
			for i := 0; i < n; i++ {
				ch := " "
				switch {
				case i == seg.From:
					ch = "●"
				case i == seg.To:
					ch = "►"
				case i > seg.From && i < seg.To:
					ch = "─"
				}
				sb.WriteString(fmt.Sprintf("%-*s", cellW, ch))
			}
			sb.WriteString(fmt.Sprintf(" segment [%d,%d]", seg.From, seg.To))
			if _, err := fmt.Fprintln(w, sb.String()); err != nil {
				return err
			}
		}
	}
	return nil
}
