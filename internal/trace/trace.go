// Package trace records executions and renders them: JSON event logs for
// machine consumption, ASCII occupancy heatmaps for eyeballing runs, and
// the Figure 1 hierarchical-partition diagram.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"smallbuffers/internal/network"
	"smallbuffers/internal/packet"
	"smallbuffers/internal/sim"
)

// Event is one recorded simulation event.
type Event struct {
	Round int    `json:"round"`
	Kind  string `json:"kind"` // "inject", "accept", "forward", "deliver"
	Pkt   uint64 `json:"pkt"`
	Src   int    `json:"src"`
	Dst   int    `json:"dst"`
	From  int    `json:"from,omitempty"`
	To    int    `json:"to,omitempty"`
}

// Recorder is an engine observer that captures events and the per-round
// occupancy matrix.
type Recorder struct {
	sim.NopObserver
	// Events in order. Disable with CaptureEvents=false for long runs.
	Events        []Event
	CaptureEvents bool
	// Loads[t][v] is the post-forwarding occupancy of buffer v at round t.
	Loads [][]int
}

// NewRecorder returns a recorder capturing both events and loads.
func NewRecorder() *Recorder { return &Recorder{CaptureEvents: true} }

// OnInject implements sim.Observer.
func (r *Recorder) OnInject(round int, pkts []packet.Packet) {
	if !r.CaptureEvents {
		return
	}
	for _, p := range pkts {
		r.Events = append(r.Events, Event{
			Round: round, Kind: "inject", Pkt: uint64(p.ID), Src: int(p.Src), Dst: int(p.Dst),
		})
	}
}

// OnForward implements sim.Observer.
func (r *Recorder) OnForward(round int, moves []sim.Move) {
	if !r.CaptureEvents {
		return
	}
	for _, m := range moves {
		kind := "forward"
		if m.Delivered {
			kind = "deliver"
		}
		r.Events = append(r.Events, Event{
			Round: round, Kind: kind, Pkt: uint64(m.Pkt.ID),
			Src: int(m.Pkt.Src), Dst: int(m.Pkt.Dst),
			From: int(m.From), To: int(m.To),
		})
	}
}

// OnRoundEnd implements sim.Observer.
func (r *Recorder) OnRoundEnd(round int, v sim.View) {
	row := make([]int, v.Net().Len())
	for i := range row {
		row[i] = v.Load(network.NodeID(i))
	}
	r.Loads = append(r.Loads, row)
}

// WriteJSON emits the recorded events and load matrix as a single JSON
// document.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Events []Event `json:"events,omitempty"`
		Loads  [][]int `json:"loads"`
	}{Events: r.Events, Loads: r.Loads})
}

// heatRunes maps occupancy to a glyph; occupancies past the scale saturate.
var heatRunes = []rune(" .:-=+*#%@")

// RenderHeatmap draws the load matrix as ASCII: one row per sampled round
// (subsampled to at most maxRows), one column per buffer. Darker glyphs are
// fuller buffers; values ≥ len(scale) render as the last glyph.
func (r *Recorder) RenderHeatmap(w io.Writer, maxRows int) error {
	if len(r.Loads) == 0 {
		_, err := fmt.Fprintln(w, "(no rounds recorded)")
		return err
	}
	if maxRows <= 0 {
		maxRows = 40
	}
	step := 1
	if len(r.Loads) > maxRows {
		step = (len(r.Loads) + maxRows - 1) / maxRows
	}
	if _, err := fmt.Fprintf(w, "occupancy heatmap: %d rounds × %d buffers (scale \"%s\", step %d)\n",
		len(r.Loads), len(r.Loads[0]), string(heatRunes), step); err != nil {
		return err
	}
	for t := 0; t < len(r.Loads); t += step {
		var sb strings.Builder
		maxInRow := 0
		for _, load := range r.Loads[t] {
			idx := load
			if idx >= len(heatRunes) {
				idx = len(heatRunes) - 1
			}
			sb.WriteRune(heatRunes[idx])
			if load > maxInRow {
				maxInRow = load
			}
		}
		if _, err := fmt.Fprintf(w, "t=%6d |%s| max=%d\n", t, sb.String(), maxInRow); err != nil {
			return err
		}
	}
	return nil
}

// MaxLoadSeries returns the per-round maximum occupancy.
func (r *Recorder) MaxLoadSeries() []int {
	out := make([]int, len(r.Loads))
	for t, row := range r.Loads {
		m := 0
		for _, l := range row {
			if l > m {
				m = l
			}
		}
		out[t] = m
	}
	return out
}

// RenderSparkline draws a compact per-round max-load series.
func RenderSparkline(w io.Writer, series []int, width int) error {
	return RenderSeries(w, "max load per round", series, width)
}

// RenderSeries draws an arbitrary integer series as a unicode sparkline
// labeled "<label> (peak …): …"; wider series downsample by bucket
// maximum.
func RenderSeries(w io.Writer, label string, series []int, width int) error {
	if len(series) == 0 {
		_, err := fmt.Fprintln(w, "(empty series)")
		return err
	}
	if width <= 0 {
		width = 72
	}
	step := 1
	if len(series) > width {
		step = (len(series) + width - 1) / width
	}
	maxVal := 0
	for _, v := range series {
		if v > maxVal {
			maxVal = v
		}
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	var sb strings.Builder
	for i := 0; i < len(series); i += step {
		// Bucket max over the step window.
		v := 0
		for j := i; j < i+step && j < len(series); j++ {
			if series[j] > v {
				v = series[j]
			}
		}
		idx := 0
		if maxVal > 0 {
			idx = v * (len(ticks) - 1) / maxVal
		}
		sb.WriteRune(ticks[idx])
	}
	prefix := ""
	if label != "" {
		prefix = label + " "
	}
	_, err := fmt.Fprintf(w, "%s(peak %d): %s\n", prefix, maxVal, sb.String())
	return err
}
