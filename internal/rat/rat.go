// Package rat implements exact rational arithmetic for the small magnitudes
// that arise in adversarial-queuing accounting (rates ρ = p/q, excess values,
// load budgets). Using exact rationals instead of floats keeps the
// (ρ,σ)-boundedness verifier and the excess recursion of Definition 2.2 free
// of rounding drift over long executions.
//
// The implementation uses int64 numerators/denominators and normalizes
// eagerly. All operations check for overflow and panic with a descriptive
// message if an intermediate product would not fit; simulation-scale values
// (rates with denominators ≤ 10^6, horizons ≤ 10^9 rounds) are far below the
// overflow threshold.
package rat

import (
	"fmt"
	"strconv"
	"strings"
)

// Rat is an immutable rational number p/q in lowest terms with q > 0.
// The zero value is 0/1 and is ready to use.
type Rat struct {
	p int64 // numerator, sign carrier
	q int64 // denominator, always ≥ 1 after normalization (0 only pre-normalize)
}

// Zero is the rational 0.
var Zero = Rat{0, 1}

// One is the rational 1.
var One = Rat{1, 1}

// New returns the rational p/q in lowest terms. It panics if q == 0.
func New(p, q int64) Rat {
	if q == 0 {
		panic("rat: zero denominator")
	}
	if q < 0 {
		p, q = -p, -q
	}
	g := gcd64(abs64(p), q)
	if g > 1 {
		p /= g
		q /= g
	}
	return Rat{p, q}
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return Rat{n, 1} }

// Parse parses a rational from "p/q", "p" (integer), or a decimal such as
// "0.25". It returns an error for malformed input or a zero denominator.
func Parse(s string) (Rat, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Rat{}, fmt.Errorf("rat: empty input")
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		p, err := strconv.ParseInt(strings.TrimSpace(s[:i]), 10, 64)
		if err != nil {
			return Rat{}, fmt.Errorf("rat: bad numerator %q: %w", s[:i], err)
		}
		q, err := strconv.ParseInt(strings.TrimSpace(s[i+1:]), 10, 64)
		if err != nil {
			return Rat{}, fmt.Errorf("rat: bad denominator %q: %w", s[i+1:], err)
		}
		if q == 0 {
			return Rat{}, fmt.Errorf("rat: zero denominator in %q", s)
		}
		return New(p, q), nil
	}
	if i := strings.IndexByte(s, '.'); i >= 0 {
		whole, frac := s[:i], s[i+1:]
		if frac == "" {
			return Rat{}, fmt.Errorf("rat: trailing decimal point in %q", s)
		}
		neg := strings.HasPrefix(whole, "-")
		w := int64(0)
		if whole != "" && whole != "-" && whole != "+" {
			var err error
			w, err = strconv.ParseInt(whole, 10, 64)
			if err != nil {
				return Rat{}, fmt.Errorf("rat: bad integer part %q: %w", whole, err)
			}
		}
		f, err := strconv.ParseInt(frac, 10, 64)
		if err != nil || f < 0 {
			return Rat{}, fmt.Errorf("rat: bad fractional part %q", frac)
		}
		den := int64(1)
		for range frac {
			den = mulCheck(den, 10)
		}
		num := mulCheck(abs64(w), den) + f
		if neg {
			num = -num
		}
		return New(num, den), nil
	}
	p, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return Rat{}, fmt.Errorf("rat: bad integer %q: %w", s, err)
	}
	return FromInt(p), nil
}

// MustParse is Parse but panics on error; intended for constants in tests
// and example programs.
func MustParse(s string) Rat {
	r, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return r
}

// Num returns the numerator in lowest terms (sign carrier).
func (r Rat) Num() int64 { return r.norm().p }

// Den returns the denominator in lowest terms (always ≥ 1).
func (r Rat) Den() int64 { return r.norm().q }

// norm repairs a zero-value Rat (0/0 layout from `var r Rat`) to 0/1.
func (r Rat) norm() Rat {
	if r.q == 0 {
		return Rat{0, 1}
	}
	return r
}

// Add returns r + s.
func (r Rat) Add(s Rat) Rat {
	r, s = r.norm(), s.norm()
	// p1/q1 + p2/q2 = (p1*(q2/g) + p2*(q1/g)) / lcm
	g := gcd64(r.q, s.q)
	q1, q2 := r.q/g, s.q/g
	num := addCheck(mulCheck(r.p, q2), mulCheck(s.p, q1))
	den := mulCheck(r.q, q2)
	return New(num, den)
}

// Sub returns r − s.
func (r Rat) Sub(s Rat) Rat { return r.Add(s.Neg()) }

// Neg returns −r.
func (r Rat) Neg() Rat { r = r.norm(); return Rat{-r.p, r.q} }

// Mul returns r · s.
func (r Rat) Mul(s Rat) Rat {
	r, s = r.norm(), s.norm()
	// Cross-reduce before multiplying to delay overflow.
	g1 := gcd64(abs64(r.p), s.q)
	g2 := gcd64(abs64(s.p), r.q)
	return New(mulCheck(r.p/g1, s.p/g2), mulCheck(r.q/g2, s.q/g1))
}

// MulInt returns r · n.
func (r Rat) MulInt(n int64) Rat { return r.Mul(FromInt(n)) }

// Div returns r / s. It panics if s is zero.
func (r Rat) Div(s Rat) Rat {
	s = s.norm()
	if s.p == 0 {
		panic("rat: division by zero")
	}
	return r.Mul(Rat{s.q, s.p}.canon())
}

// canon normalizes the sign so the denominator is positive.
func (r Rat) canon() Rat {
	if r.q < 0 {
		return Rat{-r.p, -r.q}
	}
	return r
}

// Inv returns 1/r. It panics if r is zero.
func (r Rat) Inv() Rat { return One.Div(r) }

// Cmp compares r and s, returning −1, 0, or +1.
func (r Rat) Cmp(s Rat) int {
	d := r.Sub(s)
	switch {
	case d.p < 0:
		return -1
	case d.p > 0:
		return 1
	default:
		return 0
	}
}

// Less reports whether r < s.
func (r Rat) Less(s Rat) bool { return r.Cmp(s) < 0 }

// LessEq reports whether r ≤ s.
func (r Rat) LessEq(s Rat) bool { return r.Cmp(s) <= 0 }

// Equal reports whether r == s.
func (r Rat) Equal(s Rat) bool { return r.Cmp(s) == 0 }

// Sign returns −1, 0, or +1 according to the sign of r.
func (r Rat) Sign() int {
	r = r.norm()
	switch {
	case r.p < 0:
		return -1
	case r.p > 0:
		return 1
	default:
		return 0
	}
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.norm().p == 0 }

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.norm().q == 1 }

// Floor returns ⌊r⌋ as an int64.
func (r Rat) Floor() int64 {
	r = r.norm()
	q := r.p / r.q
	if r.p%r.q != 0 && r.p < 0 {
		q--
	}
	return q
}

// Ceil returns ⌈r⌉ as an int64.
func (r Rat) Ceil() int64 {
	r = r.norm()
	q := r.p / r.q
	if r.p%r.q != 0 && r.p > 0 {
		q++
	}
	return q
}

// Max returns the larger of r and s.
func (r Rat) Max(s Rat) Rat {
	if r.Cmp(s) >= 0 {
		return r.norm()
	}
	return s.norm()
}

// Min returns the smaller of r and s.
func (r Rat) Min(s Rat) Rat {
	if r.Cmp(s) <= 0 {
		return r.norm()
	}
	return s.norm()
}

// Float64 returns the nearest float64 (for display only; accounting stays
// exact).
func (r Rat) Float64() float64 {
	r = r.norm()
	return float64(r.p) / float64(r.q)
}

// String renders "p/q", or "p" when the value is an integer.
func (r Rat) String() string {
	r = r.norm()
	if r.q == 1 {
		return strconv.FormatInt(r.p, 10)
	}
	return strconv.FormatInt(r.p, 10) + "/" + strconv.FormatInt(r.q, 10)
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

func mulCheck(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	c := a * b
	if c/b != a {
		panic(fmt.Sprintf("rat: multiplication overflow %d*%d", a, b))
	}
	return c
}

func addCheck(a, b int64) int64 {
	c := a + b
	if (b > 0 && c < a) || (b < 0 && c > a) {
		panic(fmt.Sprintf("rat: addition overflow %d+%d", a, b))
	}
	return c
}
